(** Per-(src, dst) frame coalescing for multiplexed transports.

    Buffers frames pushed towards the same (src, dst) pair and delivers
    the accumulated batch to [flush] once per coalescing window: the
    first push to an empty buffer arms a flush event [window] from now;
    every later push until the flush rides the same batch.  Frame order
    within a batch is push order, and batches towards one pair flush in
    arm order, so a FIFO transport stays FIFO end to end.

    Transport-agnostic: [flush] does whatever "send one packet" means
    for the embedder (the shard mux turns a batch into one network
    message carrying many Raft groups' frames). *)

type 'frame t

(** [flush] is invoked from an engine event — never re-entrantly from
    inside {!push} — with the batch in push order. *)
val create :
  engine:Engine.t ->
  window:float ->
  flush:(src:string -> dst:string -> 'frame list -> unit) ->
  unit ->
  'frame t

val window : 'frame t -> float

(** Buffer one frame towards (src, dst); arms a flush [window] from now
    if the pair's buffer was empty. *)
val push : 'frame t -> src:string -> dst:string -> 'frame -> unit

(** Drain every buffer immediately (shutdown or deterministic test
    endpoints); the armed events then no-op. *)
val flush_all : 'frame t -> unit

(** Frames currently buffered across all pairs. *)
val pending_frames : 'frame t -> int

(** Engine time of the last flush towards (src, dst); [neg_infinity] if
    the pair never flushed.  This is what the heartbeat-suppression
    carrier check reads. *)
val last_flush_at : 'frame t -> src:string -> dst:string -> float

(** Total batches flushed / frames pushed since creation. *)
val flushes : 'frame t -> int

val frames_pushed : 'frame t -> int
