(* Array-backed binary min-heap keyed by (time, sequence).

   The sequence number breaks ties so that events scheduled at the same
   virtual instant fire in scheduling order, which keeps runs
   deterministic.

   Stored as a structure of arrays: keys live in a flat [float array]
   (unboxed), so steady-state push/pop allocates nothing beyond the
   occasional capacity doubling.  This heap sits under every simulated
   event, so it is the hottest allocation site in the whole harness. *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

let create () = { keys = [||]; seqs = [||]; values = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let less t i j =
  let ki = t.keys.(i) and kj = t.keys.(j) in
  ki < kj || (ki = kj && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t value =
  let capacity = max 16 (2 * Array.length t.keys) in
  let keys = Array.make capacity 0.0 in
  let seqs = Array.make capacity 0 in
  let values = Array.make capacity value in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.values <- values

let push t ~key ~seq value =
  if t.size = Array.length t.keys then grow t value;
  let i = t.size in
  t.keys.(i) <- key;
  t.seqs.(i) <- seq;
  t.values.(i) <- value;
  t.size <- t.size + 1;
  sift_up t i

(* Precondition for [min_key] and [pop_min]: the heap is non-empty. *)
let min_key t = t.keys.(0)

let pop_min t =
  let top = t.values.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    t.keys.(0) <- t.keys.(n);
    t.seqs.(0) <- t.seqs.(n);
    t.values.(0) <- t.values.(n);
    (* alias the live root instead of retaining the moved-out value *)
    t.values.(n) <- t.values.(0);
    sift_down t 0
  end;
  top
