(* Per-node clock: a view of the engine's global (true) time through a
   local oscillator that may run fast or slow (rate drift) and may be
   stepped forwards or backwards (NTP-style jumps, firmware resets).

   The model keeps a single wall reading: [now] is affected by both rate
   and steps, exactly like CLOCK_REALTIME on a box whose oscillator
   drifts.  Timers, however, are armed as countdowns ([schedule] converts
   the requested local delay to a true delay using the rate in effect at
   arm time): a step never moves an already-armed timer, and a rate
   change only affects timers armed after it — matching a hardware timer
   that counts its own oscillator's ticks from the moment it is set.

   A pristine clock (rate 1.0, never stepped) reads exactly the engine's
   time and schedules exactly like the engine, so code threaded through a
   clock behaves identically to before unless a fault is injected. *)

type t = {
  engine : Engine.t;
  mutable rate : float; (* local microseconds per true microsecond *)
  mutable base_true : float; (* true time at the last rebase *)
  mutable base_local : float; (* local reading at the last rebase *)
}

let create ~engine () =
  let now = Engine.now engine in
  { engine; rate = 1.0; base_true = now; base_local = now }

let now t =
  if t.rate = 1.0 && t.base_local = t.base_true then Engine.now t.engine
  else t.base_local +. ((Engine.now t.engine -. t.base_true) *. t.rate)

let rate t = t.rate

(* Local minus true time: how far this node's wall reading has diverged. *)
let skew t = now t -. Engine.now t.engine

(* Rebase so past readings stay fixed while [rate] changes take effect
   only from this instant forward (continuity across rate faults). *)
let rebase t =
  let local = now t in
  t.base_true <- Engine.now t.engine;
  t.base_local <- local

let set_rate t r =
  if r <= 0.0 then invalid_arg "Clock.set_rate: rate must be positive";
  rebase t;
  t.rate <- r

let step t delta =
  rebase t;
  t.base_local <- t.base_local +. delta

(* Snap back to true time at rate 1.0 — an external resync (NTP step
   after the fault clears).  The snap itself is a step and is observable
   as one by monotonicity watchdogs. *)
let reset t =
  let now = Engine.now t.engine in
  t.rate <- 1.0;
  t.base_true <- now;
  t.base_local <- now

let pristine t = t.rate = 1.0 && skew t = 0.0

(* [delay] is local microseconds; the countdown runs on this oscillator. *)
let schedule t ~delay fn = Engine.schedule t.engine ~delay:(max 0.0 (delay /. t.rate)) fn

let schedule_at t ~time fn = schedule t ~delay:(max 0.0 (time -. now t)) fn
