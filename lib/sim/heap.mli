(** Array-backed binary min-heap keyed by (key, seq).

    The sequence number breaks ties so same-instant events pop in push
    order, keeping simulation runs deterministic.  Keys, sequence
    numbers and values live in parallel flat arrays, so the hot
    push/pop cycle allocates nothing on steady state. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:float -> seq:int -> 'a -> unit

(** Smallest key currently in the heap.  Precondition: non-empty. *)
val min_key : 'a t -> float

(** Remove and return the value with the smallest (key, seq).
    Precondition: non-empty. *)
val pop_min : 'a t -> 'a
