(* Discrete-event simulation engine.

   Virtual time is a float measured in MICROSECONDS, matching the unit the
   paper reports commit latencies in.  The engine owns a single event
   queue; [schedule] registers a thunk to run after a delay, [run_until]
   advances virtual time executing due events in (time, seq) order. *)

type handle = { mutable cancelled : bool }

type t = {
  mutable now : float;
  mutable seq : int;
  queue : (handle * (unit -> unit)) Heap.t;
  rng : Rng.t;
  mutable executed : int;
}

let us = 1.0
let ms = 1_000.0
let s = 1_000_000.0

let create ?(seed = 42) () =
  { now = 0.0; seq = 0; queue = Heap.create (); rng = Rng.of_int seed; executed = 0 }

let now t = t.now

let rng t = t.rng

let executed_events t = t.executed

let schedule t ~delay fn =
  assert (delay >= 0.0);
  let handle = { cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:(t.now +. delay) ~seq:t.seq (handle, fn);
  handle

let schedule_at t ~time fn =
  let delay = max 0.0 (time -. t.now) in
  schedule t ~delay fn

let cancel handle = handle.cancelled <- true

let cancelled handle = handle.cancelled

(* Run events until the queue is exhausted or virtual time would exceed
   [limit].  Time is left at [limit] when the horizon is reached, so
   consecutive [run_until] calls compose. *)
let run_until t limit =
  let rec loop () =
    if (not (Heap.is_empty t.queue)) && Heap.min_key t.queue <= limit then begin
      let key = Heap.min_key t.queue in
      let handle, fn = Heap.pop_min t.queue in
      t.now <- max t.now key;
      if not handle.cancelled then begin
        t.executed <- t.executed + 1;
        fn ()
      end;
      loop ()
    end
    else t.now <- max t.now limit
  in
  loop ()

let run_for t duration = run_until t (t.now +. duration)

(* Drain the queue completely; safe only for workloads that terminate. *)
let run t ~max_events =
  let rec loop n =
    if n >= max_events then failwith "Engine.run: event budget exhausted"
    else if Heap.is_empty t.queue then ()
    else begin
      let key = Heap.min_key t.queue in
      let handle, fn = Heap.pop_min t.queue in
      t.now <- max t.now key;
      if handle.cancelled then loop n
      else begin
        t.executed <- t.executed + 1;
        fn ();
        loop (n + 1)
      end
    end
  in
  loop 0

let pending t = Heap.length t.queue
