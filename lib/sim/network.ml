(* Simulated message network.

   Typed over the protocol's message type.  Delivery incurs a one-way
   latency drawn from the latency model; messages to crashed nodes or
   across a partition are silently dropped (the transports the paper's
   systems run over are not reliable either — Raft tolerates loss).

   The network also keeps per-(src,dst) and per-region-pair byte counters,
   which the proxying evaluation (§4.2.2) reads to compare cross-region
   bandwidth with and without PROXY_OP forwarding. *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
}

(* Per-node / per-link message fault model (the lossy-link conditions of
   "From Consensus to Chaos"): each delivery rolls independently against
   every spec that covers it — the link itself plus both endpoints. *)
type fault_spec = {
  drop : float; (* P(message silently lost) *)
  duplicate : float; (* P(a second copy is delivered) *)
  reorder : float; (* P(an extra random delay shuffles this message) *)
  reorder_delay : float; (* max extra delay for reordered/duplicated copies, µs *)
  extra_latency : float; (* deterministic added latency — a transient spike, µs *)
}

let no_faults =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; reorder_delay = 0.0; extra_latency = 0.0 }

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  latency : Latency.t;
  rng : Rng.t;
  handlers : (Topology.node_id, src:Topology.node_id -> 'msg -> unit) Hashtbl.t;
  down : (Topology.node_id, unit) Hashtbl.t;
  (* Partitions are sets of unordered region pairs plus isolated nodes. *)
  cut_region_pairs : (Topology.region * Topology.region, unit) Hashtbl.t;
  isolated : (Topology.node_id, unit) Hashtbl.t;
  link_stats : (Topology.node_id * Topology.node_id, stats) Hashtbl.t;
  region_stats : (Topology.region * Topology.region, stats) Hashtbl.t;
  (* Per-node-pair one-way latency overrides (e.g. a client colocated
     with the primary, or a client pinned at 10 ms from it). *)
  link_latency : (Topology.node_id * Topology.node_id, float) Hashtbl.t;
  (* Links carry ordered streams (TCP): a message never overtakes an
     earlier one on the same directed link, however the jittered latency
     samples land.  Tracks the latest scheduled delivery per link; only
     explicit reorder/duplicate faults may escape the stream. *)
  link_fifo_at : (Topology.node_id * Topology.node_id, float) Hashtbl.t;
  (* Optional per-node egress capacity (bytes/µs): when set, sends from
     that node serialize through its NIC — the leader-hotspot effect
     proxying exists to relieve (§4.2). *)
  egress_rate : (Topology.node_id, float) Hashtbl.t;
  egress_free_at : (Topology.node_id, float) Hashtbl.t;
  egress_queue_delay : (Topology.node_id, float ref) Hashtbl.t;
  node_faults : (Topology.node_id, fault_spec) Hashtbl.t;
  link_faults : (Topology.node_id * Topology.node_id, fault_spec) Hashtbl.t;
  (* Split lazily on first fault installation so fault-free runs keep the
     exact RNG streams they had before the fault model existed, while
     chaos runs stay fully determined by the engine seed. *)
  mutable fault_rng : Rng.t option;
  mutable dropped : int;
  mutable fault_dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let create engine topology ?(latency = Latency.default) () =
  {
    engine;
    topology;
    latency;
    rng = Rng.split (Engine.rng engine);
    handlers = Hashtbl.create 32;
    down = Hashtbl.create 8;
    cut_region_pairs = Hashtbl.create 4;
    isolated = Hashtbl.create 4;
    link_stats = Hashtbl.create 64;
    region_stats = Hashtbl.create 16;
    link_latency = Hashtbl.create 8;
    link_fifo_at = Hashtbl.create 64;
    egress_rate = Hashtbl.create 4;
    egress_free_at = Hashtbl.create 4;
    egress_queue_delay = Hashtbl.create 4;
    node_faults = Hashtbl.create 4;
    link_faults = Hashtbl.create 4;
    fault_rng = None;
    dropped = 0;
    fault_dropped = 0;
    duplicated = 0;
    reordered = 0;
  }

(* Fix the one-way latency between two nodes (both directions). *)
let set_link_latency t ~a ~b ~latency =
  Hashtbl.replace t.link_latency (a, b) latency;
  Hashtbl.replace t.link_latency (b, a) latency

(* Cap a node's egress bandwidth; messages it sends serialize through
   the NIC and queue behind each other. *)
let set_egress_rate t node ~bytes_per_s =
  Hashtbl.replace t.egress_rate node (bytes_per_s /. 1_000_000.0 (* per µs *))

(* Cumulative time messages spent queued behind [node]'s NIC. *)
let egress_queue_delay t node =
  match Hashtbl.find_opt t.egress_queue_delay node with Some r -> !r | None -> 0.0

(* NIC serialization + queueing delay for sending [size] bytes now. *)
let egress_delay t ~src ~size =
  match Hashtbl.find_opt t.egress_rate src with
  | None -> 0.0
  | Some rate ->
    let now = Engine.now t.engine in
    let start = max now (Option.value (Hashtbl.find_opt t.egress_free_at src) ~default:now) in
    let serialization = float_of_int size /. rate in
    Hashtbl.replace t.egress_free_at src (start +. serialization);
    let queued = start -. now in
    (match Hashtbl.find_opt t.egress_queue_delay src with
    | Some r -> r := !r +. queued
    | None -> Hashtbl.replace t.egress_queue_delay src (ref queued));
    queued +. serialization

let topology t = t.topology

let register t node handler = Hashtbl.replace t.handlers node handler

let unregister t node = Hashtbl.remove t.handlers node

let set_down t node = Hashtbl.replace t.down node ()

let set_up t node = Hashtbl.remove t.down node

let is_up t node = not (Hashtbl.mem t.down node)

let ordered_pair a b = if a <= b then (a, b) else (b, a)

let cut_regions t r1 r2 = Hashtbl.replace t.cut_region_pairs (ordered_pair r1 r2) ()

let heal_regions t r1 r2 = Hashtbl.remove t.cut_region_pairs (ordered_pair r1 r2)

let isolate_node t node = Hashtbl.replace t.isolated node ()

let heal_node t node = Hashtbl.remove t.isolated node

(* ----- message fault model ----- *)

let fault_rng t =
  match t.fault_rng with
  | Some rng -> rng
  | None ->
    let rng = Rng.split t.rng in
    t.fault_rng <- Some rng;
    rng

let set_node_faults t node spec =
  ignore (fault_rng t);
  if spec = no_faults then Hashtbl.remove t.node_faults node
  else Hashtbl.replace t.node_faults node spec

let clear_node_faults t node = Hashtbl.remove t.node_faults node

let node_faults t node =
  Option.value (Hashtbl.find_opt t.node_faults node) ~default:no_faults

let set_link_faults t ~src ~dst spec =
  ignore (fault_rng t);
  if spec = no_faults then Hashtbl.remove t.link_faults (src, dst)
  else Hashtbl.replace t.link_faults (src, dst) spec

let clear_link_faults t ~src ~dst = Hashtbl.remove t.link_faults (src, dst)

let faulted_nodes t = Hashtbl.fold (fun n _ acc -> n :: acc) t.node_faults []

let heal_all t =
  Hashtbl.reset t.cut_region_pairs;
  Hashtbl.reset t.isolated;
  Hashtbl.reset t.node_faults;
  Hashtbl.reset t.link_faults

let partitioned t src dst =
  Hashtbl.mem t.isolated src || Hashtbl.mem t.isolated dst
  ||
  let rs = Topology.region_of t.topology src
  and rd = Topology.region_of t.topology dst in
  Hashtbl.mem t.cut_region_pairs (ordered_pair rs rd)

let bump table key ~bytes =
  let st =
    match Hashtbl.find_opt table key with
    | Some st -> st
    | None ->
      let st = { messages = 0; bytes = 0 } in
      Hashtbl.replace table key st;
      st
  in
  st.messages <- st.messages + 1;
  st.bytes <- st.bytes + bytes

(* The fault specs covering a (src, dst) delivery: the directed link plus
   both endpoints.  Usually empty — chaos runs install a handful. *)
let specs_for t ~src ~dst =
  let add acc = function Some s -> s :: acc | None -> acc in
  add
    (add (add [] (Hashtbl.find_opt t.link_faults (src, dst))) (Hashtbl.find_opt t.node_faults src))
    (Hashtbl.find_opt t.node_faults dst)

let schedule_delivery t ~src ~dst ~delay msg =
  ignore
    (Engine.schedule t.engine ~delay (fun () ->
         if Hashtbl.mem t.down dst || partitioned t src dst then
           t.dropped <- t.dropped + 1
         else
           match Hashtbl.find_opt t.handlers dst with
           | Some handler -> handler ~src msg
           | None -> t.dropped <- t.dropped + 1))

(* Send a message.  [size] is the wire size in bytes and is accounted even
   for messages that are later dropped at delivery (the sender spent the
   bandwidth either way). *)
let send t ~src ~dst ~size msg =
  let src_region = Topology.region_of t.topology src in
  let dst_region = Topology.region_of t.topology dst in
  bump t.link_stats (src, dst) ~bytes:size;
  bump t.region_stats (src_region, dst_region) ~bytes:size;
  if Hashtbl.mem t.down src || partitioned t src dst then t.dropped <- t.dropped + 1
  else begin
    let specs = specs_for t ~src ~dst in
    let lost =
      specs <> []
      && List.exists (fun s -> s.drop > 0.0 && Rng.float (fault_rng t) < s.drop) specs
    in
    if lost then begin
      t.dropped <- t.dropped + 1;
      t.fault_dropped <- t.fault_dropped + 1
    end
    else begin
      let base_delay =
        egress_delay t ~src ~size
        +. (match Hashtbl.find_opt t.link_latency (src, dst) with
           | Some fixed -> fixed
           | None -> Latency.one_way t.latency ~src_region ~dst_region t.rng)
        +. List.fold_left (fun acc s -> acc +. s.extra_latency) 0.0 specs
      in
      (* FIFO stream semantics: clamp the delivery behind the link's
         latest in-order delivery, so jittered latency samples cannot
         reorder a healthy link (pipelined AppendEntries depend on it,
         just as real implementations depend on TCP ordering). *)
      let now = Engine.now t.engine in
      let fifo_at =
        max (now +. base_delay)
          (Option.value (Hashtbl.find_opt t.link_fifo_at (src, dst)) ~default:0.0)
      in
      let reorder_extra =
        List.fold_left
          (fun d s ->
            if s.reorder > 0.0 && Rng.float (fault_rng t) < s.reorder then begin
              t.reordered <- t.reordered + 1;
              d +. Rng.uniform (fault_rng t) ~lo:0.0 ~hi:s.reorder_delay
            end
            else d)
          0.0 specs
      in
      if reorder_extra > 0.0 then
        (* The reorder fault ejects this message from the stream: it is
           delayed past its slot and deliberately does NOT hold the fifo
           clock back, so later messages overtake it. *)
        schedule_delivery t ~src ~dst ~delay:(fifo_at -. now +. reorder_extra) msg
      else begin
        Hashtbl.replace t.link_fifo_at (src, dst) fifo_at;
        schedule_delivery t ~src ~dst ~delay:(fifo_at -. now) msg
      end;
      (* Duplication: a second copy arrives after an extra random delay,
         outside the stream, so the two copies may arrive out of order. *)
      List.iter
        (fun s ->
          if s.duplicate > 0.0 && Rng.float (fault_rng t) < s.duplicate then begin
            t.duplicated <- t.duplicated + 1;
            let extra = Rng.uniform (fault_rng t) ~lo:0.0 ~hi:(max s.reorder_delay 1.0) in
            schedule_delivery t ~src ~dst ~delay:(fifo_at -. now +. extra) msg
          end)
        specs
    end
  end

let dropped t = t.dropped

let fault_dropped t = t.fault_dropped

let duplicated t = t.duplicated

let reordered t = t.reordered

let link_bytes t ~src ~dst =
  match Hashtbl.find_opt t.link_stats (src, dst) with Some st -> st.bytes | None -> 0

let link_messages t ~src ~dst =
  match Hashtbl.find_opt t.link_stats (src, dst) with Some st -> st.messages | None -> 0

let region_pair_bytes t ~src ~dst =
  match Hashtbl.find_opt t.region_stats (src, dst) with Some st -> st.bytes | None -> 0

(* Total bytes that crossed a region boundary, in either direction. *)
let cross_region_bytes t =
  Hashtbl.fold
    (fun (rs, rd) st acc -> if rs <> rd then acc + st.bytes else acc)
    t.region_stats 0

let total_bytes t = Hashtbl.fold (fun _ st acc -> acc + st.bytes) t.region_stats 0

let total_messages t = Hashtbl.fold (fun _ st acc -> acc + st.messages) t.region_stats 0

(* Per-directed-link (src, dst, messages, bytes) rows, sorted, for
   metric exports (Obs cannot be depended on from sim — the caller
   builds its registry from these). *)
let link_stat_rows t =
  Hashtbl.fold
    (fun (src, dst) st acc -> (src, dst, st.messages, st.bytes) :: acc)
    t.link_stats []
  |> List.sort compare

let region_stat_rows t =
  Hashtbl.fold
    (fun (rs, rd) st acc -> (rs, rd, st.messages, st.bytes) :: acc)
    t.region_stats []
  |> List.sort compare

let reset_stats t =
  Hashtbl.reset t.link_stats;
  Hashtbl.reset t.region_stats;
  t.dropped <- 0;
  t.fault_dropped <- 0;
  t.duplicated <- 0;
  t.reordered <- 0
