(** Per-node clock: the engine's true time seen through a local
    oscillator with injectable rate drift and step faults.

    [now] is the node's wall reading (affected by rate and steps).
    [schedule] arms a countdown in local microseconds, converting to a
    true delay with the rate in effect at arm time: steps never move an
    armed timer, and rate changes only affect timers armed afterwards.
    A pristine clock (rate 1.0, never stepped) behaves identically to
    using the engine directly. *)

type t

val create : engine:Engine.t -> unit -> t

(** This node's wall reading, in local microseconds. *)
val now : t -> float

(** Local microseconds per true microsecond (1.0 = healthy). *)
val rate : t -> float

(** Local minus true time — accumulated divergence. *)
val skew : t -> float

(** Inject rate drift from this instant; past readings are unchanged.
    Raises [Invalid_argument] when the rate is not positive. *)
val set_rate : t -> float -> unit

(** Jump the wall reading by [delta] local microseconds (either sign). *)
val step : t -> float -> unit

(** Snap back to true time at rate 1.0 (external resync after a fault);
    the snap itself is observable as a step. *)
val reset : t -> unit

val pristine : t -> bool

(** Arm a countdown of [delay] {e local} microseconds. *)
val schedule : t -> delay:float -> (unit -> unit) -> Engine.handle

(** Arm for an absolute {e local} time (clamped to now). *)
val schedule_at : t -> time:float -> (unit -> unit) -> Engine.handle
