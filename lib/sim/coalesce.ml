(* Per-(src, dst) frame coalescing for multiplexed transports.

   Many logical streams sharing one physical link (multi-Raft groups on
   the same nodes) would otherwise pay one network message per logical
   send.  This primitive buffers frames pushed towards the same (src,
   dst) pair and hands the accumulated batch to [flush] once per
   coalescing window: the first push to an empty buffer arms a flush
   event [window] from now; every push until then rides the same batch.
   With window = 0 the flush event still goes through the engine (delay
   0 preserves FIFO order with respect to other zero-delay events), so a
   frame is never delivered re-entrantly from inside [push].

   The structure is transport-agnostic: it never touches the network
   itself — [flush] does whatever "send one packet" means for the
   embedder. *)

type key = string * string (* (src, dst) *)

type 'frame pending = { mutable frames : 'frame list (* newest first *) }

type 'frame t = {
  engine : Engine.t;
  window : float;
  flush : src:string -> dst:string -> 'frame list -> unit;
  buffers : (key, 'frame pending) Hashtbl.t;
  last_flush : (key, float) Hashtbl.t;
  mutable flushes : int;
  mutable frames_pushed : int;
}

let create ~engine ~window ~flush () =
  if window < 0.0 then invalid_arg "Coalesce.create: negative window";
  {
    engine;
    window;
    flush;
    buffers = Hashtbl.create 64;
    last_flush = Hashtbl.create 64;
    flushes = 0;
    frames_pushed = 0;
  }

let window t = t.window

let flush_key t key =
  match Hashtbl.find_opt t.buffers key with
  | None -> ()
  | Some pending ->
    Hashtbl.remove t.buffers key;
    let src, dst = key in
    let frames = List.rev pending.frames in
    t.flushes <- t.flushes + 1;
    Hashtbl.replace t.last_flush key (Engine.now t.engine);
    t.flush ~src ~dst frames

let push t ~src ~dst frame =
  let key = (src, dst) in
  t.frames_pushed <- t.frames_pushed + 1;
  match Hashtbl.find_opt t.buffers key with
  | Some pending -> pending.frames <- frame :: pending.frames
  | None ->
    Hashtbl.replace t.buffers key { frames = [ frame ] };
    ignore
      (Engine.schedule t.engine ~delay:t.window (fun () -> flush_key t key)
        : Engine.handle)

(* Drain every buffer immediately (shutdown, deterministic test
   endpoints).  The armed flush events then find empty buffers and
   no-op. *)
let flush_all t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.buffers [] in
  List.iter (flush_key t) keys

let pending_frames t =
  Hashtbl.fold (fun _ p acc -> acc + List.length p.frames) t.buffers 0

let last_flush_at t ~src ~dst =
  match Hashtbl.find_opt t.last_flush (src, dst) with
  | Some time -> time
  | None -> neg_infinity

let flushes t = t.flushes

let frames_pushed t = t.frames_pushed
