(* Generic write-availability probe.

   Issues a probe operation every [interval]; the embedder's [issue]
   closure performs the actual write and reports the outcome (or never
   calls back, in which case the timeout records a failure).  Downtime is
   measured client-side as the largest gap between consecutive successes
   — the metric behind Table 2. *)

type t = {
  engine : Engine.t;
  interval : float;
  timeout : float;
  issue : on_outcome:(bool -> unit) -> unit;
  mutable success_times : float list; (* newest first *)
  mutable failure_times : float list;
  mutable running : bool;
}

let successes t = List.length t.success_times

let failures t = List.length t.failure_times

let success_times t = List.rev t.success_times

let attempt t =
  let settled = ref false in
  t.issue ~on_outcome:(fun ok ->
      (* [t.running] gate: a probe stopped mid-flight must not record
         outcomes delivered (or timed out) after [stop]. *)
      if (not !settled) && t.running then begin
        settled := true;
        let now = Engine.now t.engine in
        if ok then t.success_times <- now :: t.success_times
        else t.failure_times <- now :: t.failure_times
      end);
  ignore
    (Engine.schedule t.engine ~delay:t.timeout (fun () ->
         if (not !settled) && t.running then begin
           settled := true;
           t.failure_times <- Engine.now t.engine :: t.failure_times
         end))

let start ?(interval = 5.0 *. Engine.ms) ?(timeout = 1.0 *. Engine.s) engine ~issue =
  let t =
    {
      engine;
      interval;
      timeout;
      issue;
      success_times = [];
      failure_times = [];
      running = true;
    }
  in
  let rec tick () =
    if t.running then begin
      attempt t;
      ignore (Engine.schedule engine ~delay:t.interval tick)
    end
  in
  ignore (Engine.schedule engine ~delay:t.interval tick);
  t

let stop t = t.running <- false

(* Largest gap between consecutive successful commits in the window. *)
let max_downtime t ~start_time ~end_time =
  let times = List.filter (fun x -> x >= start_time && x <= end_time) (success_times t) in
  match times with
  | [] -> end_time -. start_time
  | first :: rest ->
    let rec scan prev best = function
      | [] -> max best (end_time -. prev)
      | x :: tail -> scan x (max best (x -. prev)) tail
    in
    scan first (first -. start_time) rest
