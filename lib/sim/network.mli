(** Simulated message network, typed over the protocol's message type.

    Delivery incurs a one-way latency from the latency model; messages
    to crashed nodes or across partitions are silently dropped (Raft
    tolerates loss).  Per-link and per-region-pair byte counters support
    the proxying bandwidth evaluation (§4.2.2). *)

type 'msg t

(** Per-node / per-link message fault model.  Every delivery rolls
    independently against each spec that covers it (the directed link
    plus both endpoints); rolls come from an RNG split off the network's
    stream, so fault runs are fully determined by the engine seed and
    fault-free runs draw nothing. *)
type fault_spec = {
  drop : float;  (** P(message silently lost) *)
  duplicate : float;  (** P(a second copy is delivered) *)
  reorder : float;  (** P(an extra random delay shuffles this message) *)
  reorder_delay : float;  (** max extra delay for reordered/duplicate copies, µs *)
  extra_latency : float;  (** deterministic added latency — a transient spike, µs *)
}

(** All probabilities zero. *)
val no_faults : fault_spec

val create : Engine.t -> Topology.t -> ?latency:Latency.t -> unit -> 'msg t

val topology : 'msg t -> Topology.t

(** Install the receive handler for a node. *)
val register : 'msg t -> Topology.node_id -> (src:Topology.node_id -> 'msg -> unit) -> unit

val unregister : 'msg t -> Topology.node_id -> unit

(** Crashed nodes neither send nor receive. *)
val set_down : 'msg t -> Topology.node_id -> unit

val set_up : 'msg t -> Topology.node_id -> unit

val is_up : 'msg t -> Topology.node_id -> bool

(** Region-pair partitions and single-node isolation. *)
val cut_regions : 'msg t -> Topology.region -> Topology.region -> unit

val heal_regions : 'msg t -> Topology.region -> Topology.region -> unit

val isolate_node : 'msg t -> Topology.node_id -> unit

val heal_node : 'msg t -> Topology.node_id -> unit

(** Install/clear the fault spec covering every message a node sends or
    receives.  Setting {!no_faults} clears. *)
val set_node_faults : 'msg t -> Topology.node_id -> fault_spec -> unit

val clear_node_faults : 'msg t -> Topology.node_id -> unit

(** The spec currently installed for a node ({!no_faults} when none). *)
val node_faults : 'msg t -> Topology.node_id -> fault_spec

(** Install/clear a fault spec on one directed link. *)
val set_link_faults :
  'msg t -> src:Topology.node_id -> dst:Topology.node_id -> fault_spec -> unit

val clear_link_faults : 'msg t -> src:Topology.node_id -> dst:Topology.node_id -> unit

val faulted_nodes : 'msg t -> Topology.node_id list

(** Clears partitions, isolations AND all installed fault specs. *)
val heal_all : 'msg t -> unit

(** Fix the one-way latency between two nodes (both directions),
    overriding the region model. *)
val set_link_latency : 'msg t -> a:Topology.node_id -> b:Topology.node_id -> latency:float -> unit

(** Cap a node's egress bandwidth: its sends serialize through the NIC
    and queue behind each other (the leader-hotspot effect, §4.2). *)
val set_egress_rate : 'msg t -> Topology.node_id -> bytes_per_s:float -> unit

(** Cumulative time spent queued behind a node's NIC, microseconds. *)
val egress_queue_delay : 'msg t -> Topology.node_id -> float

(** [send t ~src ~dst ~size msg] accounts [size] bytes and schedules
    delivery; dropped silently when partitioned or either end is down. *)
val send : 'msg t -> src:Topology.node_id -> dst:Topology.node_id -> size:int -> 'msg -> unit

(** Messages dropped so far (down nodes, partitions and fault-model
    losses all feed this counter). *)
val dropped : 'msg t -> int

(** The subset of {!dropped} lost by the probabilistic fault model. *)
val fault_dropped : 'msg t -> int

(** Extra copies delivered by the duplication fault. *)
val duplicated : 'msg t -> int

(** Messages that received an extra reordering delay. *)
val reordered : 'msg t -> int

val link_bytes : 'msg t -> src:Topology.node_id -> dst:Topology.node_id -> int

val link_messages : 'msg t -> src:Topology.node_id -> dst:Topology.node_id -> int

val region_pair_bytes : 'msg t -> src:Topology.region -> dst:Topology.region -> int

(** Total bytes that crossed any region boundary. *)
val cross_region_bytes : 'msg t -> int

val total_bytes : 'msg t -> int

val total_messages : 'msg t -> int

(** Sorted (src, dst, messages, bytes) rows per directed link — the raw
    material for metric exports. *)
val link_stat_rows : 'msg t -> (Topology.node_id * Topology.node_id * int * int) list

(** Sorted (src_region, dst_region, messages, bytes) rows. *)
val region_stat_rows : 'msg t -> (Topology.region * Topology.region * int * int) list

val reset_stats : 'msg t -> unit
