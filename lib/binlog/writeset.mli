(** WRITESET-based transaction dependency tracking
    (binlog_transaction_dependency_tracking = WRITESET).  The primary
    keeps a bounded history of (table, key) hashes → last writer index
    and stamps each transaction at flush time with a MySQL-style
    dependency interval; a replica may execute it in parallel with
    anything later than [last_committed].  Hash collisions only create
    false dependencies (a later last_committed), never missed ones.
    When the history exceeds its capacity it is reset and the floor
    raised, like MySQL's m_writeset_history_size. *)

type t

val create : capacity:int -> t

(** Number of tracked key hashes currently in the history. *)
val size : t -> int

(** Lower bound every stamp is clamped to (raised on history reset). *)
val floor : t -> int

(** Forget everything (role change: a fresh primary starts a new
    dependency epoch). *)
val clear : t -> unit

(** [stamp t ~index ~keys] records the transaction at log [index]
    writing [keys] ((table, key) pairs) and returns its
    [last_committed]; always < [index]. *)
val stamp : t -> index:int -> keys:(string * string) list -> int

(** Stamp a transaction whose write set cannot be derived: serialize it
    against everything earlier; returns [index - 1]. *)
val stamp_serial : t -> index:int -> int
