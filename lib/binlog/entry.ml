(* A Raft log entry as stored in the binlog.

   One entry = one replicated unit: a whole transaction (its GTID plus its
   row events), a leader-assertion no-op, a membership change, or a
   replicated rotate marker.  Raft stamps the OpId; the checksum is
   computed at that moment (§3.4) so corruption can be detected when the
   log abstraction later re-reads the entry from disk. *)

type payload =
  | Transaction of { gtid : Gtid.t; events : Event.t list }
  | Noop
  | Config_change of { description : string; encoded : string }
  | Rotate_marker of { next_file : string }

(* WRITESET dependency interval stamped into the Gtid_event header at
   flush time (§ Parallel apply): a replica may execute this transaction
   concurrently with anything whose index is > [last_committed].  Kept
   outside the payload checksum — in the real binlog these live in the
   42-byte Gtid_event whose size we already account for, and they are
   header metadata stamped by the primary, not client payload. *)
type deps = { last_committed : int; sequence_number : int }

type t = {
  opid : Opid.t;
  payload : payload;
  serialized : string;
    (* the payload's wire form, computed exactly once at [make] time and
       shared by every later read (replication, checksum verification,
       proxy reconstitution).  Re-marshalling on each touch used to be
       the single largest per-entry allocation on the commit path. *)
  checksum : int32;
  size : int;
  mutable deps : deps option;
}

let serialize payload = Marshal.to_string payload []

let payload_size payload =
  match payload with
  | Transaction { events; _ } ->
    List.fold_left (fun acc e -> acc + Event.size e) 0 events
  | Noop -> 31
  | Config_change { encoded; _ } -> 40 + String.length encoded
  | Rotate_marker { next_file } -> 27 + String.length next_file

let make ~opid payload =
  let serialized = serialize payload in
  let checksum = Checksum.string serialized in
  {
    opid;
    payload;
    serialized;
    checksum;
    size = payload_size payload + 16 (* opid + checksum framing *);
    deps = None;
  }

(* The memoized serialized form: repeated calls return the same physical
   string — callers may slice it but must never mutate it. *)
let payload_bytes t = t.serialized

let opid t = t.opid

let term t = Opid.term t.opid

let index t = Opid.index t.opid

let payload t = t.payload

let size t = t.size

let checksum t = t.checksum

let verify t = Int32.equal (Checksum.string t.serialized) t.checksum

let deps t = t.deps

let set_deps t ~last_committed ~sequence_number =
  t.deps <- Some { last_committed; sequence_number }

let gtid t = match t.payload with Transaction { gtid; _ } -> Some gtid | _ -> None

let is_transaction t = match t.payload with Transaction _ -> true | _ -> false

(* Re-stamp an existing payload with a new OpId: used when a leader
   replicates a client transaction whose payload was built before Raft
   assigned the slot. *)
let with_opid t ~opid = { t with opid }

(* ----- fault injection (chaos) ----- *)

type corruption = Header | Body

(* A bit-rotted copy of [t], as re-read from a disk whose platter flipped
   bits under the entry.  [Header] flips a bit inside the stored checksum
   field; [Body] mutates the payload while keeping the now-stale checksum.
   Either way [verify] must fail on the result.  The mutated payload stays
   structurally well-formed (no mangled Marshal bytes to trip over): the
   point is silent content damage only the CRC can catch.  Entries whose
   payload has no distinguishable body bytes fall back to the header
   flavour. *)
let corrupt t flavor =
  let flip_header () = { t with checksum = Int32.logxor t.checksum 0x00010000l } in
  match flavor with
  | Header -> flip_header ()
  | Body ->
    let mangled =
      match t.payload with
      | Transaction { gtid; events = _ :: rest } ->
        (* an event vanishes: acked row changes silently gone *)
        Some (Transaction { gtid; events = rest })
      | Transaction { events = []; _ } | Noop -> None
      | Config_change c ->
        Some (Config_change { c with description = c.description ^ "\x00" })
      | Rotate_marker { next_file } -> Some (Rotate_marker { next_file = next_file ^ "\x00" })
    in
    (match mangled with
    (* the bit-rotted copy re-serializes its mangled payload (the stored
       bytes changed); the checksum stays stale, so [verify] fails *)
    | Some payload -> { t with payload; serialized = serialize payload }
    | None -> flip_header ())

let describe t =
  let body =
    match t.payload with
    | Transaction { gtid; events } ->
      Printf.sprintf "txn %s (%d events)" (Gtid.to_string gtid) (List.length events)
    | Noop -> "noop"
    | Config_change { description; _ } -> "config: " ^ description
    | Rotate_marker { next_file } -> "rotate -> " ^ next_file
  in
  Printf.sprintf "[%s] %s" (Opid.to_string t.opid) body
