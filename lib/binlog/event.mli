(** Binlog events (row-based replication): a transaction's payload is a
    GTID event, table map + rows events, and a commit (XID) event.
    Rotate events are replicated through Raft so file boundaries stay
    identical across the replica set (§A.1). *)

type row_op =
  | Insert of { key : string; value : string }
  | Update of { key : string; before : string; after : string }
  | Delete of { key : string; before : string }

type body =
  | Format_description
  | Previous_gtids of Gtid_set.t
  | Gtid_event of Gtid.t
  | Table_map of { table : string }
  | Write_rows of { table : string; ops : row_op list }
  | Query of { sql : string }
  | Xid of { xid : int64 }
  | Rotate of { next_file : string }

type t

val make : body -> t

val body : t -> body

(** The row key a row op touches (the writeset member it contributes). *)
val row_op_key : row_op -> string

val row_op_size : row_op -> int

(** Approximate on-disk size in bytes (19-byte common header + body),
    close enough to the real binlog format for bandwidth accounting. *)
val size : t -> int

val describe : t -> string
