(* Binlog events.

   The deployment the paper describes runs row-based replication, so a
   transaction's payload is a GTID event, table map + rows events carrying
   before/after images, and a commit (XID) event.  Rotate events are
   replicated through Raft so log file boundaries stay identical across
   the replica set (§A.1). *)

type row_op =
  | Insert of { key : string; value : string }
  | Update of { key : string; before : string; after : string }
  | Delete of { key : string; before : string }

type body =
  | Format_description
  | Previous_gtids of Gtid_set.t
  | Gtid_event of Gtid.t
  | Table_map of { table : string }
  | Write_rows of { table : string; ops : row_op list }
  | Query of { sql : string }
  | Xid of { xid : int64 }
  | Rotate of { next_file : string }

type t = { body : body }

let make body = { body }

let body t = t.body

let row_op_key = function
  | Insert { key; _ } | Update { key; _ } | Delete { key; _ } -> key

let row_op_size = function
  | Insert { key; value } -> 8 + String.length key + String.length value
  | Update { key; before; after } ->
    8 + String.length key + String.length before + String.length after
  | Delete { key; before } -> 8 + String.length key + String.length before

(* Approximate on-disk size in bytes: a 19-byte common header plus the
   body, mirroring the real binlog format closely enough for bandwidth
   accounting. *)
let size t =
  let header = 19 in
  let body_size =
    match t.body with
    | Format_description -> 84
    | Previous_gtids set -> 8 + (16 * List.length (Gtid_set.sources set))
    | Gtid_event _ -> 42
    | Table_map { table } -> 12 + String.length table
    | Write_rows { table; ops } ->
      10 + String.length table + List.fold_left (fun acc op -> acc + row_op_size op) 0 ops
    | Query { sql } -> 13 + String.length sql
    | Xid _ -> 8
    | Rotate { next_file } -> 8 + String.length next_file
  in
  header + body_size

let describe t =
  match t.body with
  | Format_description -> "FORMAT_DESCRIPTION"
  | Previous_gtids set -> "PREVIOUS_GTIDS(" ^ Gtid_set.to_string set ^ ")"
  | Gtid_event g -> "GTID(" ^ Gtid.to_string g ^ ")"
  | Table_map { table } -> "TABLE_MAP(" ^ table ^ ")"
  | Write_rows { table; ops } -> Printf.sprintf "WRITE_ROWS(%s,%d ops)" table (List.length ops)
  | Query { sql } -> "QUERY(" ^ sql ^ ")"
  | Xid { xid } -> Printf.sprintf "XID(%Ld)" xid
  | Rotate { next_file } -> "ROTATE(" ^ next_file ^ ")"
