(* GTID sets: per-source sorted lists of disjoint inclusive intervals,
   exactly the structure behind MySQL's "uuid:1-5:7-9" notation.

   These sets are the replica-position metadata MyRaft preserves: the
   Previous-GTIDs header of every binlog file, gtid_executed on each
   server, and the adjustments made when a demoted leader's log suffix is
   truncated. *)

type interval = { lo : int; hi : int } (* inclusive, lo <= hi *)

module Source_map = Map.Make (String)

(* Intervals are sorted by lo DESCENDING, disjoint, non-adjacent.  The
   hot operation by far is a server appending the next gno at the tip of
   its gtid_executed set (every binlog append on every node), which with
   this ordering only touches the list head — no sort, no rebuild. *)
type t = interval list Source_map.t

let empty = Source_map.empty

let is_empty = Source_map.is_empty

(* Normalize an ASCENDING-sorted interval list: merge overlapping or
   adjacent runs.  Only used on the rare paths (union, remove) that
   rebuild a whole list. *)
let rec merge_sorted = function
  | a :: b :: rest ->
    if b.lo <= a.hi + 1 then merge_sorted ({ lo = a.lo; hi = max a.hi b.hi } :: rest)
    else a :: merge_sorted (b :: rest)
  | short -> short

(* Canonical descending form from an arbitrary interval bag. *)
let normalize_desc intervals =
  List.rev (merge_sorted (List.sort (fun a b -> compare a.lo b.lo) intervals))

(* Insert [lo, hi] into a descending list, merging where it overlaps or
   touches.  Appending at the tip — the steady-state case — is O(1). *)
let rec insert_desc ivs ~lo ~hi =
  match ivs with
  | [] -> [ { lo; hi } ]
  | a :: rest ->
    if lo > a.hi + 1 then { lo; hi } :: ivs (* strictly above the head *)
    else if hi < a.lo - 1 then a :: insert_desc rest ~lo ~hi (* strictly below *)
    else absorb_desc rest ~lo:(min lo a.lo) ~hi:(max hi a.hi)

(* The merged interval may keep swallowing lower neighbours. *)
and absorb_desc ivs ~lo ~hi =
  match ivs with
  | b :: rest when b.hi + 1 >= lo -> absorb_desc rest ~lo:(min lo b.lo) ~hi
  | _ -> { lo; hi } :: ivs

let add_interval t ~source ~lo ~hi =
  if lo > hi || lo < 1 then invalid_arg "Gtid_set.add_interval";
  let existing = Option.value (Source_map.find_opt source t) ~default:[] in
  Source_map.add source (insert_desc existing ~lo ~hi) t

let add t gtid = add_interval t ~source:(Gtid.source gtid) ~lo:(Gtid.gno gtid) ~hi:(Gtid.gno gtid)

let remove t gtid =
  let source = Gtid.source gtid and g = Gtid.gno gtid in
  match Source_map.find_opt source t with
  | None -> t
  | Some intervals ->
    let split acc iv =
      if g < iv.lo || g > iv.hi then iv :: acc
      else begin
        let acc = if g > iv.lo then { lo = iv.lo; hi = g - 1 } :: acc else acc in
        if g < iv.hi then { lo = g + 1; hi = iv.hi } :: acc else acc
      end
    in
    let remaining = normalize_desc (List.fold_left split [] intervals) in
    if remaining = [] then Source_map.remove source t else Source_map.add source remaining t

let contains t gtid =
  match Source_map.find_opt (Gtid.source gtid) t with
  | None -> false
  | Some intervals ->
    let g = Gtid.gno gtid in
    List.exists (fun iv -> iv.lo <= g && g <= iv.hi) intervals

let union a b =
  Source_map.union (fun _ ia ib -> Some (normalize_desc (ia @ ib))) a b

let cardinal t =
  Source_map.fold
    (fun _ intervals acc ->
      acc + List.fold_left (fun n iv -> n + iv.hi - iv.lo + 1) 0 intervals)
    t 0

let subset a b =
  Source_map.for_all
    (fun source intervals ->
      match Source_map.find_opt source b with
      | None -> false
      | Some super ->
        List.for_all
          (fun iv -> List.exists (fun s -> s.lo <= iv.lo && iv.hi <= s.hi) super)
          intervals)
    a

let equal a b = subset a b && subset b a

(* Largest gno present for a source, 0 if none: used to continue a gno
   sequence after promotion. *)
let max_gno t ~source =
  match Source_map.find_opt source t with
  | None -> 0
  | Some intervals -> List.fold_left (fun acc iv -> max acc iv.hi) 0 intervals

let sources t = List.map fst (Source_map.bindings t)

let fold_gtids t ~init f =
  Source_map.fold
    (fun source intervals acc ->
      List.fold_left
        (fun acc iv ->
          let acc = ref acc in
          for g = iv.lo to iv.hi do
            acc := f !acc (Gtid.make ~source ~gno:g)
          done;
          !acc)
        acc intervals)
    t init

let to_string t =
  if is_empty t then "<empty>"
  else
    Source_map.bindings t
    |> List.map (fun (source, intervals) ->
           let ivs =
             List.rev_map
               (fun iv ->
                 if iv.lo = iv.hi then string_of_int iv.lo
                 else Printf.sprintf "%d-%d" iv.lo iv.hi)
               intervals
           in
           source ^ ":" ^ String.concat ":" ivs)
    |> String.concat ","

let pp fmt t = Format.pp_print_string fmt (to_string t)
