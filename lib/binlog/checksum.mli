(** CRC-32 (IEEE 802.3, reflected) — the checksum MySQL stamps on binlog
    events.  MyRaft generates it at OpId-assignment time (§3.4).

    Runs on native ints (no per-byte boxing) and exposes a streaming API
    so structured digests fold fields in directly instead of marshalling
    them into a throwaway string first. *)

val string : string -> int32

(** {2 Streaming interface}

    [finalize (feed_string init s)] equals [string s].  The state is an
    immediate value; threading it through a fold allocates nothing. *)

type state

val init : state

val feed_string : state -> string -> state

(** Feed a native int as 8 little-endian bytes. *)
val feed_int : state -> int -> state

(** Feed the 4 bytes of an [int32] (little-endian). *)
val feed_int32 : state -> int32 -> state

val finalize : state -> int32
