(* CRC-32 (IEEE 802.3 polynomial, reflected), the checksum MySQL stamps on
   binlog events.  MyRaft generates it at OpId-assignment time to detect
   later corruption; we verify it when the log abstraction reads entries
   back for lagging followers.

   The arithmetic runs on native [int]s (the running CRC fits 32 bits, an
   OCaml int holds 63): a boxed-[Int32] loop allocates a fresh box per
   input byte, which on the commit hot path — one CRC per flushed entry
   plus one per engine commit per node — dominated the minor heap.  The
   streaming [feed_*] API exists for digests computed over structured
   fields (the engine's commit-digest chain): callers fold fields in
   directly instead of marshalling them into a throwaway string first. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

(* Running (pre-inversion) CRC state: an immediate int, never boxed. *)
type state = int

let init = 0xFFFFFFFF

let[@inline] feed_byte table crc b = table.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let feed_string crc s =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = 0 to String.length s - 1 do
    crc := feed_byte table !crc (Char.code (String.unsafe_get s i))
  done;
  !crc

(* Feed a native int as 8 little-endian bytes (ints on the hot path are
   log indexes, terms and GNOs — all well under 2^63). *)
let feed_int crc n =
  let table = Lazy.force table in
  let crc = ref crc in
  for shift = 0 to 7 do
    crc := feed_byte table !crc ((n lsr (shift * 8)) land 0xFF)
  done;
  !crc

let feed_int32 crc v = feed_int crc (Int32.to_int v land 0xFFFFFFFF)

let finalize crc = Int32.of_int (crc lxor 0xFFFFFFFF)

let string s = finalize (feed_string init s)
