(* WRITESET-based transaction dependency tracking
   (binlog_transaction_dependency_tracking = WRITESET).

   The primary keeps a bounded history mapping hashes of the (table, key)
   pairs a transaction wrote to the log index of the last transaction
   that wrote them.  At flush time each transaction is stamped with a
   MySQL-style dependency interval:

     sequence_number = its own log index
     last_committed  = max over its writeset of the last writer's index
                       (the history floor when no key matches)

   A replica may execute the transaction in parallel with anything later
   than [last_committed]: every earlier transaction it conflicts with is
   at or below that index.  Hash collisions only ever merge distinct keys
   into one slot, which produces a *later* last_committed — a false
   dependency, never a missed one, so collisions cost parallelism but not
   correctness.

   When the history exceeds its capacity it is reset and the floor raised
   to the current index, exactly like MySQL's
   m_writeset_history_size / m_last_history_reset_seqno: transactions
   stamped after a reset conservatively depend on everything before it. *)

type t = {
  history : (int, int) Hashtbl.t; (* hash (table, key) -> last writer index *)
  capacity : int;
  mutable floor : int; (* raised on history reset; lower bound for stamps *)
}

let create ~capacity = { history = Hashtbl.create 1024; capacity = max 1 capacity; floor = 0 }

let size t = Hashtbl.length t.history

let floor t = t.floor

(* Forget everything (role change: a fresh primary starts a new dependency
   epoch; the leader's no-op barrier fences it from the previous one). *)
let clear t =
  Hashtbl.reset t.history;
  t.floor <- 0

let key_hash (table, key) = Hashtbl.hash (table, key)

(* Stamp the transaction at [index] writing [keys]; returns its
   [last_committed].  Always < index: a transaction cannot depend on
   itself or the future. *)
let stamp t ~index ~keys =
  let hashes = List.map key_hash keys in
  let last_committed =
    List.fold_left
      (fun acc h ->
        match Hashtbl.find_opt t.history h with Some i -> max acc i | None -> acc)
      t.floor hashes
  in
  List.iter (fun h -> Hashtbl.replace t.history h index) hashes;
  if Hashtbl.length t.history > t.capacity then begin
    Hashtbl.reset t.history;
    t.floor <- index
  end;
  min last_committed (index - 1)

(* Stamp a transaction whose write set cannot be derived (non-RBR
   statements): serialize it against everything earlier. *)
let stamp_serial t ~index =
  t.floor <- max t.floor (index - 1);
  index - 1
