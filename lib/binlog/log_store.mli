(** The MySQL replication log, usable as Raft's replicated log.

    A store is a sequence of log files plus an index file.  It runs in
    [Binlog] mode (a primary writing its binary log) or [Relay] mode (a
    replica's relay log fed by Raft); switching between the two —
    "rewiring" — is a promotion/demotion orchestration step (§3.2).

    Invariants: the entry at Raft index i lives at slot i; file ranges
    partition the unpurged index space; terms are non-decreasing. *)

type mode = Binlog | Relay

type t

(** [metrics] receives the binlog.* counters (appends, bytes_appended,
    fsyncs, truncations, entries_truncated, rotations) and the
    [binlog.fsync_batch_entries] histogram. *)
val create : ?metrics:Obs.Metrics.t -> ?mode:mode -> unit -> t

val mode : t -> mode

val last_index : t -> int

(** [Opid.zero] when empty. *)
val last_opid : t -> Opid.t

(** [None] for out-of-range or purged indexes. *)
val entry_at : t -> int -> Entry.t option

(** Term at an index; [Some 0] at index 0, [None] when unknown/purged. *)
val term_at : t -> int -> int option

(** Append the next entry.  Raises [Invalid_argument] on index gaps or
    term regressions. *)
val append : t -> Entry.t -> unit

(** Present entries in [from_index, from_index+max_count); stops early at
    a purged hole. *)
val entries_from : t -> from_index:int -> max_count:int -> Entry.t list

(** Remove all entries with index >= [from_index]; returns them
    (ascending) so callers can clean up GTID metadata (§3.3 step 4). *)
val truncate_from : t -> from_index:int -> Entry.t list

(** Close the current file and open a new one (FLUSH BINARY LOGS). *)
val rotate : t -> unit

(** SHOW BINARY LOGS view: (file name, byte size, entry count). *)
val file_list : t -> (string * int * int) list

val file_names : t -> string list

(** (name, first index, last index, closed) per file; first = 0 when the
    file has no entries yet. *)
val file_ranges : t -> (string * int * int * bool) list

(** PURGE LOGS TO [file]: drop whole files strictly older than [file].
    The caller is responsible for the §A.1 safety heuristics. *)
val purge_to : t -> file:string -> unit

(** Entries below this index may have been purged. *)
val purged_below : t -> int

(** OpId of the highest purged entry — the snapshot-style boundary whose
    term stays answerable through {!term_at}. *)
val purge_boundary_opid : t -> Opid.t

(** Rebase the store at a snapshot boundary (InstallSnapshot receipt).
    If the boundary entry is already present with the matching term, the
    prefix through it is purged in place and the tail retained;
    otherwise the whole log is discarded and the store becomes an empty
    log whose purge boundary is [last] and GTID set is [gtids].  Returns
    the dropped conflicting tail (ascending; [] in the retain case).
    Raises [Invalid_argument] on a zero boundary. *)
val install_snapshot : t -> last:Opid.t -> gtids:Gtid_set.t -> Entry.t list

(** All GTIDs currently present in the log. *)
val gtid_set : t -> Gtid_set.t

val fsync_count : t -> int

(** {2 Durability / crash-recovery fault model}

    Normally every append fsyncs (sync_binlog=1) and {!synced_index}
    tracks the tail.  Chaos runs flip the store into buffered mode (an
    fsync stall) and arm a torn-tail budget; {!crash_recover_log} then
    models the post-power-loss restart that loses the unsynced tail —
    the situation §3.3's demotion truncation must cope with. *)

(** Highest index known durable (= [last_index] unless buffered). *)
val synced_index : t -> int

val unsynced_count : t -> int

(** Flush the buffered tail (one batched fsync). *)
val sync : t -> unit

(** Enter/leave the fsync-stall fault; leaving flushes. *)
val set_buffered : t -> bool -> unit

val buffered : t -> bool

(** Group-commit: run [f] with appends buffered, then flush the whole
    tail with a single fsync.  Passthrough when the store is already
    buffered (the outer owner syncs). *)
val with_batched_fsync : t -> (unit -> 'a) -> 'a

(** Arm the torn-tail crash fault: the next {!crash_recover_log} loses
    up to [max_lost] of the unsynced tail. *)
val set_torn_tail : t -> max_lost:int -> unit

(** Simulated log-subsystem restart: drops the unsynced tail bounded by
    the armed torn-tail budget, returns the lost entries (ascending) and
    clears both fault modes.  A no-op [[]] on a healthy store. *)
val crash_recover_log : t -> Entry.t list

(** {2 Disk-corruption fault + recovery scan}

    Unlike the torn tail (which only ever loses {e unacked} data), bit
    rot can hit entries Raft already counted toward commit — recovery
    must detect it by CRC and report the loss so the embedder can
    re-fetch through replication and fence elections meanwhile. *)

(** Bit-rot the stored copy of [index] in place ({!Entry.corrupt});
    false when the slot is absent (purged / beyond the tail).  Counted
    in [binlog.corruption_injected]. *)
val corrupt_entry : t -> index:int -> flavor:Entry.corruption -> bool

type corruption_report = {
  cr_first_corrupt : int;  (** index the scan truncated from *)
  cr_dropped : Entry.t list;  (** everything truncated, ascending *)
  cr_detected : int;  (** dropped entries that failed their CRC *)
  cr_pre_truncation_tail : Opid.t;  (** log tail before the truncate *)
}

(** Restart-time CRC sweep over every stored entry: on the first
    mismatch, truncate from it (the suffix beyond a corrupt entry is
    untrustworthy) and report.  The caller must treat the report as
    possible loss of acked data: re-fetch via replication and hold votes
    below [cr_pre_truncation_tail] until restored (the Raft node's vote
    floor).  [None] = clean.  Counted in
    [binlog.corruption_detected] / [binlog.corruption_truncated]. *)
val scan_for_corruption : t -> corruption_report option

(** Rewire between binlog and relay-log personas (§3.2); entries are
    untouched, only future file naming changes. *)
val switch_mode : t -> mode -> unit

val all_entries : t -> Entry.t list

val describe : t -> string
