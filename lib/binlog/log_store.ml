(* The MySQL replication log, usable as Raft's replicated log.

   A store is a sequence of log files plus an index file.  The same store
   can be in [Binlog] mode (the node is a primary writing its own binary
   log) or [Relay] mode (the node is a replica whose log is fed by Raft's
   AppendEntries path); switching between the two — "rewiring" — is one of
   the promotion/demotion orchestration steps (§3.2).  Entries are stored
   once in a flat vector indexed by Raft log index; files hold [first,
   last] ranges over that vector, so rotation and purge are pure metadata
   operations, exactly like MySQL's index file manipulation.

   Invariants:
   - entry at vector slot i (i >= 1) has Raft index i; slot 0 is a sentinel
   - file ranges partition [purged+1, last_index]
   - terms are non-decreasing along the log. *)

type mode = Binlog | Relay

type file = {
  file_name : string;
  previous_gtids : Gtid_set.t; (* header: GTIDs in all earlier files *)
  mutable first : int; (* first entry index in this file; 0 = none yet *)
  mutable last : int; (* last entry index; first-1 when empty *)
  mutable closed : bool;
}

type t = {
  mutable mode : mode;
  mutable files : file list; (* oldest first; last is the open file *)
  entries : Entry.t option Vec.t; (* slot per index; None once purged *)
  mutable purged_below : int; (* entries with index < this may be purged *)
  mutable next_file_seq : int;
  mutable gtids : Gtid_set.t; (* all GTIDs currently present in the log *)
  mutable fsyncs : int; (* flush count, for introspection *)
  (* The tail OpId is cached: reading the tail slot is wrong once a purge
     has emptied the slots of a freshly-rotated (empty) current file. *)
  mutable last_cached : Opid.t;
  mutable purge_boundary : Opid.t; (* opid of the highest purged entry *)
  (* Durability model for crash-recovery faults.  Normally every append
     fsyncs (sync_binlog=1) and [synced_index] tracks the tail.  Under the
     buffered fault (an fsync stall) appends stay in the page cache until
     an explicit [sync]; a crash then tears off up to [torn_tail_k] of the
     unsynced tail — the situation §3.3's demotion truncation must cope
     with. *)
  mutable synced_index : int; (* highest index known durable *)
  mutable buffered : bool; (* true: appends don't fsync until [sync] *)
  mutable torn_tail_k : int; (* max unsynced entries lost at crash *)
  m_appends : Obs.Metrics.counter;
  m_bytes_appended : Obs.Metrics.counter;
  m_fsyncs : Obs.Metrics.counter;
  m_truncations : Obs.Metrics.counter;
  m_entries_truncated : Obs.Metrics.counter;
  m_rotations : Obs.Metrics.counter;
  m_fsync_batch : Obs.Metrics.histogram; (* entries flushed per fsync *)
  m_corruption_injected : Obs.Metrics.counter;
  m_corruption_detected : Obs.Metrics.counter;
  m_corruption_truncated : Obs.Metrics.counter;
}

let mode_prefix = function Binlog -> "binlog" | Relay -> "relaylog"

let fresh_file t =
  let name = Printf.sprintf "%s.%06d" (mode_prefix t.mode) t.next_file_seq in
  t.next_file_seq <- t.next_file_seq + 1;
  { file_name = name; previous_gtids = t.gtids; first = 0; last = -1; closed = false }

let create ?metrics ?(mode = Binlog) () =
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let t =
    {
      mode;
      files = [];
      entries = Vec.create ~dummy:None;
      purged_below = 1;
      next_file_seq = 1;
      gtids = Gtid_set.empty;
      fsyncs = 0;
      last_cached = Opid.zero;
      purge_boundary = Opid.zero;
      synced_index = 0;
      buffered = false;
      torn_tail_k = 0;
      m_appends = Obs.Metrics.counter m "binlog.appends";
      m_bytes_appended = Obs.Metrics.counter m "binlog.bytes_appended";
      m_fsyncs = Obs.Metrics.counter m "binlog.fsyncs";
      m_truncations = Obs.Metrics.counter m "binlog.truncations";
      m_entries_truncated = Obs.Metrics.counter m "binlog.entries_truncated";
      m_rotations = Obs.Metrics.counter m "binlog.rotations";
      m_fsync_batch = Obs.Metrics.histogram m "binlog.fsync_batch_entries";
      m_corruption_injected = Obs.Metrics.counter m "binlog.corruption_injected";
      m_corruption_detected = Obs.Metrics.counter m "binlog.corruption_detected";
      m_corruption_truncated = Obs.Metrics.counter m "binlog.corruption_truncated";
    }
  in
  Vec.push t.entries None (* sentinel slot 0 *);
  t.files <- [ fresh_file t ];
  t

let mode t = t.mode

let last_index t = Vec.length t.entries - 1

let last_opid t = t.last_cached

let entry_at t index =
  if index <= 0 || index > last_index t then None else Vec.get t.entries index

(* The purge boundary acts like Raft's (last_included_index, term)
   snapshot marker: its term stays answerable so replication whose
   prev-entry sits exactly at the boundary keeps working after PURGE. *)
let term_at t index =
  if index = 0 then Some 0
  else
    match entry_at t index with
    | Some e -> Some (Entry.term e)
    | None ->
      if index = Opid.index t.purge_boundary then Some (Opid.term t.purge_boundary)
      else None

let current_file t =
  match List.rev t.files with
  | f :: _ -> f
  | [] -> assert false

let append t entry =
  let index = Entry.index entry in
  if index <> last_index t + 1 then
    invalid_arg
      (Printf.sprintf "Log_store.append: index %d but log ends at %d" index (last_index t));
  (match term_at t (last_index t) with
  | Some prev_term when Entry.term entry < prev_term ->
    invalid_arg "Log_store.append: term regression"
  | _ -> ());
  Vec.push t.entries (Some entry);
  t.last_cached <- Entry.opid entry;
  let f = current_file t in
  if f.first = 0 then f.first <- index;
  f.last <- index;
  Obs.Metrics.incr t.m_appends;
  Obs.Metrics.add t.m_bytes_appended (Entry.size entry);
  if not t.buffered then begin
    t.fsyncs <- t.fsyncs + 1;
    t.synced_index <- index;
    Obs.Metrics.incr t.m_fsyncs;
    Obs.Metrics.record t.m_fsync_batch 1.0
  end;
  (match Entry.gtid entry with
  | Some g -> t.gtids <- Gtid_set.add t.gtids g
  | None -> ())

(* Entries in [from_index, from_index + max_count) that are still present.
   Stops early at a purged hole. *)
let entries_from t ~from_index ~max_count =
  let rec collect idx n acc =
    if n = 0 || idx > last_index t then List.rev acc
    else
      match Vec.get t.entries idx with
      | Some e -> collect (idx + 1) (n - 1) (e :: acc)
      | None -> List.rev acc
  in
  collect (max 1 from_index) max_count []

(* Remove all entries with index >= [from_index]; returns them (ascending)
   so the caller can clean up GTID metadata (§3.3 demotion step 4). *)
let truncate_from t ~from_index =
  if from_index <= t.purged_below - 1 then invalid_arg "Log_store.truncate_from: purged range";
  if from_index > last_index t then []
  else begin
    let removed = Vec.truncate_to t.entries from_index in
    let removed = List.filter_map (fun e -> e) removed in
    (t.last_cached <-
       (match Vec.get_opt t.entries (from_index - 1) with
       | Some (Some e) -> Entry.opid e
       | Some None -> t.purge_boundary (* tail now ends inside the purged range *)
       | None -> Opid.zero));
    List.iter
      (fun e ->
        match Entry.gtid e with
        | Some g -> t.gtids <- Gtid_set.remove t.gtids g
        | None -> ())
      removed;
    (* Rewind file ranges; drop files that became entirely empty except a
       single open file. *)
    let keep =
      List.filter_map
        (fun f ->
          if f.first = 0 || f.first >= from_index then None
          else begin
            if f.last >= from_index then begin
              f.last <- from_index - 1;
              f.closed <- false
            end;
            Some f
          end)
        t.files
    in
    t.files <- (if keep = [] then [ fresh_file t ] else keep);
    (match List.rev t.files with f :: _ -> f.closed <- false | [] -> ());
    t.synced_index <- min t.synced_index (from_index - 1);
    Obs.Metrics.incr t.m_truncations;
    Obs.Metrics.add t.m_entries_truncated (List.length removed);
    removed
  end

(* Close the current file and open a new one (FLUSH BINARY LOGS).  The
   rotate entry itself is replicated through Raft by the caller; this
   call only performs the local file switch. *)
let rotate t =
  let f = current_file t in
  f.closed <- true;
  Obs.Metrics.incr t.m_rotations;
  t.files <- t.files @ [ fresh_file t ]

(* SHOW BINARY LOGS view: (file name, size in bytes, entry count). *)
let file_list t =
  List.map
    (fun f ->
      let indices = if f.first = 0 then [] else List.init (f.last - f.first + 1) (fun i -> f.first + i) in
      let size =
        List.fold_left
          (fun acc i ->
            match Vec.get t.entries i with Some e -> acc + Entry.size e | None -> acc)
          0 indices
      in
      (f.file_name, size, List.length indices))
    t.files

let file_names t = List.map (fun f -> f.file_name) t.files

(* (name, first index, last index, closed) per file; first = 0 when the
   file has no entries yet. *)
let file_ranges t =
  List.map (fun f -> (f.file_name, f.first, f.last, f.closed)) t.files

(* PURGE LOGS TO <file>: drop whole files strictly older than [file].
   The caller (MySQL consulting Raft, §A.1) is responsible for ensuring
   the purged entries are consensus-committed and shipped. *)
let purge_to t ~file =
  if not (List.exists (fun f -> f.file_name = file) t.files) then
    invalid_arg ("Log_store.purge_to: unknown file " ^ file);
  let rec drop = function
    | f :: rest when f.file_name <> file ->
      if f.first > 0 then begin
        (match Vec.get t.entries f.last with
        | Some e -> t.purge_boundary <- Entry.opid e
        | None -> ());
        for i = f.first to f.last do
          Vec.set t.entries i None
        done;
        t.purged_below <- max t.purged_below (f.last + 1)
      end;
      drop rest
    | rest -> rest
  in
  t.files <- drop t.files

let purged_below t = t.purged_below

(* OpId of the highest purged entry ([Opid.zero] if nothing purged). *)
let purge_boundary_opid t = t.purge_boundary

(* Rebase the store at a snapshot boundary (InstallSnapshot receipt).
   If the local log already holds the boundary entry with the matching
   term, only the prefix through the boundary is purged and the tail is
   retained (Raft's retain-following-entries rule); like [purge_to], the
   purged entries' GTIDs stay in the set (they live on in Previous-GTIDs
   headers), now unioned with the snapshot's.  Otherwise the whole log is
   discarded: the store becomes an empty log whose purge boundary is
   [last] and whose GTID set is the snapshot's.  Returns the conflicting
   tail entries that were dropped (ascending; [] in the retain case) so
   the embedder can clean up GTID metadata and fence its applier. *)
let install_snapshot t ~last ~gtids =
  let b = Opid.index last in
  if b <= 0 then invalid_arg "Log_store.install_snapshot: zero boundary";
  if b < t.purged_below - 1 then [] (* already purged past this snapshot *)
  else if term_at t b = Some (Opid.term last) then begin
    (* retain: purge [purged_below, b] in place *)
    for i = t.purged_below to min b (last_index t) do
      Vec.set t.entries i None
    done;
    let keep =
      List.filter_map
        (fun f ->
          if f.first > 0 && f.last <= b then None
          else begin
            if f.first > 0 && f.first <= b then f.first <- b + 1;
            Some f
          end)
        t.files
    in
    t.files <- (if keep = [] then [ fresh_file t ] else keep);
    t.purged_below <- max t.purged_below (b + 1);
    if b >= Opid.index t.purge_boundary then t.purge_boundary <- last;
    if last_index t <= b then t.last_cached <- last;
    t.synced_index <- max t.synced_index b;
    t.gtids <- Gtid_set.union t.gtids gtids;
    []
  end
  else begin
    (* conflicting or missing boundary: drop the whole remaining log *)
    let removed =
      if last_index t >= t.purged_below then truncate_from t ~from_index:t.purged_below
      else []
    in
    while last_index t < b do
      Vec.push t.entries None
    done;
    t.purged_below <- b + 1;
    t.purge_boundary <- last;
    t.last_cached <- last;
    t.synced_index <- b (* the snapshot itself is durable *);
    t.gtids <- gtids;
    t.files <- [ fresh_file t ];
    removed
  end

let gtid_set t = t.gtids

let fsync_count t = t.fsyncs

(* ----- durability / crash-recovery fault model ----- *)

let synced_index t = t.synced_index

let unsynced_count t = last_index t - t.synced_index

(* Flush the buffered tail (one batched fsync, like a stalled disk
   finally draining). *)
let sync t =
  if t.synced_index < last_index t then begin
    let batch = last_index t - t.synced_index in
    t.synced_index <- last_index t;
    t.fsyncs <- t.fsyncs + 1;
    Obs.Metrics.incr t.m_fsyncs;
    Obs.Metrics.record t.m_fsync_batch (float_of_int batch)
  end

(* Enter/leave the fsync-stall fault: while buffered, appends stay
   unsynced until [sync].  Leaving the mode flushes. *)
let set_buffered t buffered =
  t.buffered <- buffered;
  if not buffered then sync t

let buffered t = t.buffered

(* Group-commit: run [f] with appends buffered, then flush the whole
   tail with a single fsync — the sync_binlog group-commit optimisation
   applied to batches admitted in the same tick.  Nested inside an
   already-buffered scope (e.g. the chaos fsync-stall fault) it is a
   passthrough: the outer owner decides when to sync. *)
let with_batched_fsync t f =
  if t.buffered then f ()
  else begin
    t.buffered <- true;
    let finish () =
      t.buffered <- false;
      sync t
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* Arm the torn-tail crash fault: the next [crash_recover_log] loses up
   to [max_lost] of the unsynced tail. *)
let set_torn_tail t ~max_lost = t.torn_tail_k <- max max_lost 0

(* Simulated restart of the log subsystem: the unsynced tail (bounded by
   the armed torn-tail budget) is gone, exactly as after a power loss
   with sync_binlog=0.  Returns the lost entries (ascending) so the
   embedder can clean up GTIDs; clears both fault modes. *)
let crash_recover_log t =
  let lose = min t.torn_tail_k (unsynced_count t) in
  let removed =
    if lose <= 0 then []
    else truncate_from t ~from_index:(last_index t - lose + 1)
  in
  t.buffered <- false;
  t.torn_tail_k <- 0;
  t.synced_index <- last_index t;
  removed

(* ----- disk-corruption fault + recovery scan ----- *)

(* Bit-rot the stored copy of [index] in place (the durable bytes, not
   any in-flight copy): a later [scan_for_corruption] must find it.
   False when the slot is absent (purged / beyond the tail). *)
let corrupt_entry t ~index ~flavor =
  match entry_at t index with
  | None -> false
  | Some e ->
    Vec.set t.entries index (Some (Entry.corrupt e flavor));
    Obs.Metrics.incr t.m_corruption_injected;
    true

type corruption_report = {
  cr_first_corrupt : int; (* index the scan truncated from *)
  cr_dropped : Entry.t list; (* everything truncated, ascending *)
  cr_detected : int; (* how many dropped entries failed their CRC *)
  cr_pre_truncation_tail : Opid.t; (* log tail before the truncate *)
}

(* Restart-time CRC sweep (mysqlbinlog-style verification of every event
   against its stored checksum): on the first mismatching entry, truncate
   it and everything after — the suffix beyond a corrupt entry cannot be
   trusted either — and report what was dropped.  The caller must treat
   the report as a possible loss of *acked* data: re-fetch through normal
   replication and fence votes below [cr_pre_truncation_tail] until the
   log is restored (a quorum that ignores entries this node helped commit
   must not form).  [None] means every stored entry verified. *)
let scan_for_corruption t =
  let rec find i =
    if i > last_index t then None
    else
      match Vec.get t.entries i with
      | Some e when not (Entry.verify e) -> Some i
      | _ -> find (i + 1)
  in
  match find 1 with
  | None -> None
  | Some first ->
    let tail = last_opid t in
    let dropped = truncate_from t ~from_index:first in
    let detected = List.length (List.filter (fun e -> not (Entry.verify e)) dropped) in
    Obs.Metrics.add t.m_corruption_detected detected;
    Obs.Metrics.add t.m_corruption_truncated (List.length dropped);
    Some
      {
        cr_first_corrupt = first;
        cr_dropped = dropped;
        cr_detected = detected;
        cr_pre_truncation_tail = tail;
      }

(* Rewire the log between binlog and relay-log personas (§3.2).  The
   entries are untouched — only the naming of future files changes, which
   is exactly what promotion's "rewiring" step does. *)
let switch_mode t new_mode =
  if t.mode <> new_mode then begin
    t.mode <- new_mode;
    let f = current_file t in
    if f.first = 0 then
      (* current file is empty: replace it so its name matches the mode *)
      t.files <- List.filteri (fun i _ -> i < List.length t.files - 1) t.files @ [ fresh_file t ]
    else rotate t
  end

let all_entries t =
  List.filter_map (fun e -> e) (Vec.to_list t.entries)

let describe t =
  Printf.sprintf "%s log: %d files, last=%s, gtids=%s"
    (mode_prefix t.mode) (List.length t.files)
    (Opid.to_string (last_opid t))
    (Gtid_set.to_string t.gtids)
