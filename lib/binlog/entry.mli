(** A Raft log entry as stored in the binlog: one replicated unit — a
    whole transaction, a leader-assertion no-op, a membership change, or
    a replicated rotate marker.  The checksum is computed when Raft
    stamps the OpId (§3.4) so later corruption is detectable. *)

type payload =
  | Transaction of { gtid : Gtid.t; events : Event.t list }
  | Noop
  | Config_change of { description : string; encoded : string }
  | Rotate_marker of { next_file : string }

(** WRITESET dependency interval stamped by the primary at flush time
    (binlog_transaction_dependency_tracking = WRITESET): a replica may
    execute this transaction concurrently with any entry whose index is
    greater than [last_committed].  Header metadata, not payload: it is
    outside the checksum, like the fields of the real 42-byte
    Gtid_event. *)
type deps = { last_committed : int; sequence_number : int }

type t

val make : opid:Opid.t -> payload -> t

val opid : t -> Opid.t

val term : t -> int

val index : t -> int

val payload : t -> payload

(** The payload's serialized wire form, computed once at {!make} time and
    memoized: repeated calls return the same physical string (no
    re-marshalling).  Callers may share and slice it but must not mutate
    it. *)
val payload_bytes : t -> string

(** Approximate wire/disk size in bytes. *)
val size : t -> int

val checksum : t -> int32

(** Recompute and compare the checksum. *)
val verify : t -> bool

val deps : t -> deps option

val set_deps : t -> last_committed:int -> sequence_number:int -> unit

(** The transaction's GTID, if this entry is a transaction. *)
val gtid : t -> Gtid.t option

val is_transaction : t -> bool

(** Re-stamp an existing payload with a new OpId. *)
val with_opid : t -> opid:Opid.t -> t

(** Disk-corruption flavours: [Header] flips a bit in the stored checksum
    field; [Body] silently mutates the payload under a now-stale
    checksum. *)
type corruption = Header | Body

(** A bit-rotted copy of the entry, as re-read from a failing disk:
    {!verify} fails on the result.  Payloads with no distinguishable body
    bytes degrade to the [Header] flavour. *)
val corrupt : t -> corruption -> t

val describe : t -> string
