(** Shard-leader placement balancer for multi-Raft deployments.

    Computes a placement that spreads group leaders evenly — first
    across regions, then across nodes — and applies it with graceful
    TransferLeadership.  Generic over the [group] closure record so the
    control plane does not depend on the shard library. *)

type group = {
  g_index : int;  (** shard number, for reporting *)
  g_leader : unit -> string option;  (** current leader node, if any *)
  g_region_of : string -> string option;  (** node -> region *)
  g_candidates : unit -> string list;
      (** nodes able to host this group's leader (primary-capable,
          healthy), in preference order *)
  g_transfer : target:string -> (unit, string) result;
      (** graceful TransferLeadership on the group's current leader *)
}

type move = { mv_group : int; mv_from : string option; mv_to : string }

type plan = { moves : move list; balanced : bool }

(** Deterministic round-robin assignment: groups in index order each
    take the least-loaded candidate (region load, then node load, with
    a stability bonus for the incumbent leader).  Repeated calls
    converge rather than oscillate. *)
val desired_placement : groups:group list -> (group * string option) list

(** The transfers that would bring the current placement to the desired
    one; [balanced] when none are needed. *)
val plan : groups:group list -> plan

(** Apply {!plan} with one graceful transfer per misplaced group;
    transfers complete asynchronously in simulation time.  Returns the
    plan and any per-group transfer errors. *)
val rebalance : groups:group list -> plan * (int * string) list
