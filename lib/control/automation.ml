(* Membership automation (§2.2): "membership changes are always initiated
   by automation" — detect a member that needs replacing, allocate and
   prepare a new one, and drive AddMember/RemoveMember on the leader one
   change at a time. *)

type replacement_report = {
  removed : string;
  added : string;
  duration_us : float;
}

let s = Sim.Engine.s

let leader_raft cluster =
  match Myraft.Cluster.raft_leader cluster with
  | Some id -> Myraft.Cluster.raft_of cluster id
  | None -> None

(* A config change is settled once the change entry is committed (the
   pending-change latch clears), not merely appended. *)
let wait_config_settled cluster ~pred =
  Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
      match leader_raft cluster with
      | Some r ->
        Raft.Node.commit_index r > 0
        && (not (Raft.Node.has_pending_config_change r))
        && pred (Raft.Node.config r)
      | None -> false)

(* §A.1's external rotation automation: watch the primary's current
   binlog file size in a monitoring loop and call FLUSH BINARY LOGS when
   it exceeds the budget; opportunistically PURGE files that Raft's
   region watermarks have cleared, keeping at most [keep_files]. *)
type janitor = { mutable running : bool; mutable rotations : int; mutable purges : int }

let rotations j = j.rotations

let purges j = j.purges

let stop_janitor j = j.running <- false

let current_file_bytes server =
  match List.rev (Binlog.Log_store.file_list (Myraft.Server.log server)) with
  | (_, size, _) :: _ -> size
  | [] -> 0

let start_binlog_janitor ?(interval = 2.0 *. s) ?(keep_files = 3) cluster =
  let j = { running = true; rotations = 0; purges = 0 } in
  let engine = Myraft.Cluster.engine cluster in
  let rec tick () =
    if j.running then begin
      (match Myraft.Cluster.primary cluster with
      | Some primary ->
        let budget = (Myraft.Cluster.params cluster).Myraft.Params.max_binlog_bytes in
        if current_file_bytes primary > budget then (
          match Myraft.Server.flush_binary_logs primary with
          | Ok () -> j.rotations <- j.rotations + 1
          | Error _ -> ());
        if
          List.length (Binlog.Log_store.file_names (Myraft.Server.log primary))
          > keep_files
        then begin
          let purged = Myraft.Server.purge_binary_logs primary in
          if purged > 0 then j.purges <- j.purges + purged
        end
      | None -> ());
      ignore (Sim.Engine.schedule engine ~delay:interval tick)
    end
  in
  ignore (Sim.Engine.schedule engine ~delay:interval tick);
  j

(* Replace [dead] with a freshly allocated member of the same kind and
   region, redundancy-first: allocate and prepare the newcomer
   (optionally seeding it from a backup — required when the history it
   needs has been purged from the ring), AddMember it as a learner, wait
   until it has caught up, promote it to the corpse's voter grade, and
   only then RemoveMember the corpse.  The ring never has fewer healthy
   copies mid-swap than it started with, and a failure at any step
   leaves the original membership's redundancy intact. *)
let replace_member ?backup cluster ~dead ~replacement_id =
  let started = Myraft.Cluster.now cluster in
  match leader_raft cluster with
  | None -> Error "no leader to drive the membership change"
  | Some leader -> (
    match Raft.Types.find_member (Raft.Node.config leader) dead with
    | None -> Error (dead ^ " is not a member")
    | Some old_member -> (
      (* allocate and prepare the new member (outside the ring) *)
      let spec =
        match old_member.Raft.Types.kind with
        | Raft.Types.Mysql_server ->
          Myraft.Cluster.mysql ~voter:false replacement_id old_member.Raft.Types.region
        | Raft.Types.Logtailer ->
          Myraft.Cluster.logtailer replacement_id old_member.Raft.Types.region
      in
      Myraft.Cluster.add_server cluster spec;
      (match backup with
      | Some b -> (
        match
          (match Myraft.Cluster.server cluster replacement_id with
          | Some srv -> Downstream.Backup.restore_into_server b srv
          | None -> (
            match Myraft.Cluster.tailer cluster replacement_id with
            | Some lt -> Downstream.Backup.restore_into_tailer b lt
            | None -> Error "replacement node vanished"))
        with
        | Ok () -> ()
        | Error e -> failwith ("backup restore: " ^ e))
      | None -> ());
      match
        Raft.Node.add_member leader
          {
            Raft.Types.id = replacement_id;
            region = old_member.Raft.Types.region;
            voter = false; (* joins as a learner; promoted after catch-up *)
            kind = old_member.Raft.Types.kind;
          }
      with
      | Error e -> Error ("AddMember: " ^ e)
      | Ok _ ->
        let caught_up () =
          match Myraft.Cluster.raft_of cluster replacement_id with
          | Some r ->
            Raft.Types.is_member (Raft.Node.config r) replacement_id
            && Binlog.Opid.index (Raft.Node.last_opid r)
               >= Raft.Node.commit_index leader
          | None -> false
        in
        if
          not
            (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
                 caught_up ()))
        then Error "replacement did not catch up"
        else
          let promote () =
            if not old_member.Raft.Types.voter then Ok ()
            else
              (* the AddMember must have committed before the next change *)
              if not (wait_config_settled cluster ~pred:(fun c ->
                          Raft.Types.is_member c replacement_id))
              then Error "AddMember did not commit"
              else
                match Raft.Node.promote_learner leader replacement_id with
                | Error e -> Error ("Promote: " ^ e)
                | Ok _ ->
                  if
                    wait_config_settled cluster ~pred:(fun c ->
                        match Raft.Types.find_member c replacement_id with
                        | Some m -> m.Raft.Types.voter
                        | None -> false)
                  then Ok ()
                  else Error "Promote did not commit"
          in
          match promote () with
          | Error e -> Error e
          | Ok () -> (
            match Raft.Node.remove_member leader dead with
            | Error e -> Error ("RemoveMember: " ^ e)
            | Ok _ ->
              if
                not
                  (wait_config_settled cluster ~pred:(fun c ->
                       not (Raft.Types.is_member c dead)))
              then Error "RemoveMember did not commit"
              else
                Ok
                  {
                    removed = dead;
                    added = replacement_id;
                    duration_us = Myraft.Cluster.now cluster -. started;
                  })))
