(* Shard-leader placement balancer.

   With many Raft groups multiplexed on the same nodes, where each
   group's leader sits decides both the per-node write load and the
   cross-region byte flow (Fast Raft's fan-out argument: cross-region
   traffic should not scale with group count).  This module computes and
   applies a placement that spreads leaders evenly — first across
   regions, then across nodes within a region — using graceful
   TransferLeadership, never elections.

   Deliberately generic: it sees consensus groups only through the
   [group] record of closures, so the control plane does not depend on
   the shard library (shard depends on control, not the reverse). *)

type group = {
  g_index : int; (* shard number, for reporting *)
  g_leader : unit -> string option; (* current leader node, if any *)
  g_region_of : string -> string option; (* node -> region *)
  g_candidates : unit -> string list;
      (* nodes able to host this group's leader (primary-capable,
         healthy), in preference order *)
  g_transfer : target:string -> (unit, string) result;
      (* graceful TransferLeadership on the group's current leader *)
}

type move = { mv_group : int; mv_from : string option; mv_to : string }

type plan = { moves : move list; balanced : bool }

(* Round-robin assignment: walk the groups in index order handing each
   the least-loaded candidate, counting load first by region then by
   node.  Deterministic for a given input order, so repeated calls
   converge instead of oscillating. *)
let desired_placement ~groups =
  let region_load = Hashtbl.create 8 in
  let node_load = Hashtbl.create 8 in
  let load tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
  let bump tbl k = Hashtbl.replace tbl k (load tbl k + 1) in
  List.map
    (fun g ->
      let candidates = g.g_candidates () in
      let scored =
        List.mapi
          (fun pos n ->
            let region =
              Option.value (g.g_region_of n) ~default:"?"
            in
            (* Lexicographic: region load, node load, stability (keep
               the current leader when tied), then candidate order. *)
            let keep = if g.g_leader () = Some n then 0 else 1 in
            ((load region_load region, load node_load n, keep, pos), n))
          candidates
      in
      match List.sort compare scored with
      | [] -> (g, None)
      | (_, best) :: _ ->
        bump node_load best;
        (match g.g_region_of best with Some r -> bump region_load r | None -> ());
        (g, Some best))
    groups

let plan ~groups =
  let assignment = desired_placement ~groups in
  let moves =
    List.filter_map
      (fun (g, want) ->
        match want with
        | None -> None
        | Some target ->
          let current = g.g_leader () in
          if current = Some target then None
          else Some { mv_group = g.g_index; mv_from = current; mv_to = target })
      assignment
  in
  { moves; balanced = moves = [] }

(* Apply the plan: one graceful transfer per misplaced group.  Transfers
   are asynchronous (quiesce, catch-up, TimeoutNow) — the caller decides
   how long to let the simulation settle and whether to re-plan.
   Returns the moves attempted and any per-group transfer errors. *)
let rebalance ~groups =
  let p = plan ~groups in
  let errors =
    List.filter_map
      (fun mv ->
        match List.find_opt (fun g -> g.g_index = mv.mv_group) groups with
        | None -> None
        | Some g -> (
          match g.g_transfer ~target:mv.mv_to with
          | Ok () -> None
          | Error e -> Some (mv.mv_group, e)))
      p.moves
  in
  (p, errors)
