(** Membership automation (§2.2) and the §A.1 binlog janitor.

    "Membership changes are always initiated by automation": detect a
    member that needs replacing, allocate and prepare a new one, and
    drive the change on the leader one safe step at a time —
    add-as-learner, catch up (snapshot-fed if necessary), promote to the
    corpse's voter grade, then evict the corpse, so redundancy never
    dips below the starting point mid-swap. *)

type replacement_report = {
  removed : string;
  added : string;
  duration_us : float;
}

(** {2 Binlog rotation/purge janitor (§A.1)} *)

type janitor

(** Watch the primary's current binlog file in a monitoring loop: FLUSH
    BINARY LOGS past the size budget ([Params.max_binlog_bytes]), PURGE
    watermark-cleared files beyond [keep_files]. *)
val start_binlog_janitor : ?interval:float -> ?keep_files:int -> Myraft.Cluster.t -> janitor

val stop_janitor : janitor -> unit

val rotations : janitor -> int

val purges : janitor -> int

(** {2 Member replacement} *)

(** Replace [dead] with a freshly allocated member of the same kind and
    region, redundancy-first: the newcomer joins as a learner, catches
    up, is promoted to the corpse's voter grade, and only then is the
    corpse removed.  Pass [backup] to seed the newcomer when the history
    it needs has been purged from the ring. *)
val replace_member :
  ?backup:Downstream.Backup.t ->
  Myraft.Cluster.t ->
  dead:string ->
  replacement_id:string ->
  (replacement_report, string) result
