(* The Raft replica state machine (the kuduraft stand-in), with the
   paper's three extensions: FlexiRaft quorums (§4.1), proxying (§4.2),
   and mock elections (§4.3).

   The node is deliberately unaware of MySQL: it reads and writes its log
   through [log_ops] (the log abstraction of §3.1 that the plugin
   specializes to binlogs) and drives the database through [callbacks]
   (the orchestration API of §3.3).  Witnesses are nodes whose log_ops
   wrap a bare log with no state machine behind it.

   Faithful kuduraft behaviours kept on purpose:
   - no automatic leader step-down: a leader that loses its quorum keeps
     the role until it observes a higher term (§4.1);
   - graceful TransferLeadership runs no pre-election; mock elections
     fill that gap (§4.3);
   - one membership change at a time (§2.2). *)

type node_id = Types.node_id

(* Log abstraction (§3.1): everything Raft needs from a log, supplied by
   the embedder.  The MySQL plugin backs it with binlog/relay-log files. *)
type log_ops = {
  append : Binlog.Entry.t -> unit;
  entry_at : int -> Binlog.Entry.t option;
  last_opid : unit -> Binlog.Opid.t;
  term_at : int -> int option;
  truncate_from : int -> Binlog.Entry.t list;
  durable_index : unit -> int;
      (* Highest index the log has fsynced.  Raft only acknowledges
         replication (and only counts its own vote toward commit) up to
         here, so a crash that tears off the unsynced tail can never lose
         an acked entry. *)
  run_batched : (unit -> unit) -> unit;
      (* Run a batch of appends under one coalesced fsync (group commit):
         [durable_index] covers the whole batch after return.  Logs
         without group commit may use [fun f -> f ()]. *)
  purged_below : unit -> int;
      (* Entries below this index may have been compacted away; the
         leader cannot construct an AppendEntries prev anchor below it
         (minus one: the boundary's own term stays answerable). *)
  install_snapshot :
    last:Binlog.Opid.t -> gtids:Binlog.Gtid_set.t -> Binlog.Entry.t list;
      (* Rebase the log at a snapshot boundary (InstallSnapshot receipt):
         retain a matching tail or discard a conflicting one; returns the
         dropped suffix for the same cleanup a truncation gets. *)
}

let log_ops_of_store (store : Binlog.Log_store.t) =
  {
    append = Binlog.Log_store.append store;
    entry_at = (fun i -> Binlog.Log_store.entry_at store i);
    last_opid = (fun () -> Binlog.Log_store.last_opid store);
    term_at = (fun i -> Binlog.Log_store.term_at store i);
    truncate_from = (fun i -> Binlog.Log_store.truncate_from store ~from_index:i);
    durable_index = (fun () -> Binlog.Log_store.synced_index store);
    run_batched = (fun f -> Binlog.Log_store.with_batched_fsync store f);
    purged_below = (fun () -> Binlog.Log_store.purged_below store);
    install_snapshot =
      (fun ~last ~gtids -> Binlog.Log_store.install_snapshot store ~last ~gtids);
  }

(* Orchestration callbacks from Raft into the state machine (§3.3). *)
type callbacks = {
  mutable on_leader_start : noop_index:int -> unit;
  mutable on_step_down : unit -> unit;
  mutable on_commit_advance : commit_index:int -> unit;
  mutable on_entries_appended : Binlog.Entry.t list -> unit;
  mutable on_truncated : Binlog.Entry.t list -> unit;
  mutable on_quiesce : unit -> unit;
  mutable on_transfer_aborted : reason:string -> unit;
  mutable on_config_change : Types.config -> unit;
  mutable take_snapshot : unit -> Snapshot.t option;
  (* Produce an engine-checkpoint snapshot to rescue a peer wedged behind
     the purge boundary.  None = no checkpoint source (witness, or the
     embedder declined); the wedge then stays visible as a counter. *)
  mutable install_snapshot : snapshot:Snapshot.t -> unit;
  (* Restore the engine from a received checkpoint.  Called after the
     log has been rebased at the boundary but before the commit index
     advances over it. *)
}

let default_callbacks () =
  {
    on_leader_start = (fun ~noop_index:_ -> ());
    on_step_down = (fun () -> ());
    on_commit_advance = (fun ~commit_index:_ -> ());
    on_entries_appended = (fun _ -> ());
    on_truncated = (fun _ -> ());
    on_quiesce = (fun () -> ());
    on_transfer_aborted = (fun ~reason:_ -> ());
    on_config_change = (fun _ -> ());
    take_snapshot = (fun () -> None);
    install_snapshot = (fun ~snapshot:_ -> ());
  }

type params = {
  heartbeat_interval : float; (* 500 ms in production (§6.2) *)
  missed_heartbeats : int; (* 3 consecutive misses trigger an election *)
  election_jitter : float; (* randomized extra timeout *)
  quorum_mode : Quorum.mode;
  proxying : bool;
  max_entries_per_ae : int;
  max_inflight_aes : int;
  (* Sliding replication window: how many entry-carrying AppendEntries
     may be outstanding per peer before the leader must wait for an ack.
     1 degenerates to stop-and-wait (one batch per RTT). *)
  max_bytes_per_ae : int;
  (* Ceiling of the adaptive per-peer byte budget for one AppendEntries
     batch; the AIMD controller shrinks it under loss or ack-latency
     inflation and grows it back on clean acks.  At least one entry
     always ships, so a single oversized transaction still progresses. *)
  retransmit_timeout : float;
  (* Floor before the oldest unacknowledged windowed send is resent; the
     effective timeout is max(this, 4 x smoothed ack RTT).  This is what
     lets replication survive a lost AppendEntries *response* without
     waiting for a leadership change. *)
  proxy_wait : float; (* wait before degrading a PROXY_OP to heartbeat *)
  proxy_retry_interval : float;
  mock_election_timeout : float;
  (* §4.3 "lagging": a voter in the candidate's region rejects a mock vote
     when it trails the leader's snapshot by more than this many entries —
     replication-pipeline distance is fine, an unhealthy logtailer is not. *)
  mock_lag_allowance : int;
  transfer_timeout : float;
  use_pre_elections : bool;
  use_mock_elections : bool;
  (* kuduraft does NOT implement automatic step down (§4.1): an isolated
     leader keeps the role (and its uncommittable tail grows) until it
     sees a higher term.  This optional extension steps the leader down
     after [auto_step_down_after] without any data-quorum contact,
     failing clients fast instead of letting them block. 0 = disabled
     (the paper's production behaviour). *)
  auto_step_down_after : float;
  cache_bytes : int;
  use_leader_lease : bool;
  (* Lease fast path for linearizable reads: the leader may serve a read
     at its commit index without a confirmation round while its lease is
     valid.  The lease is computed from quorum-acked AppendEntries send
     times (below) and never outlives the window in which a follower
     could start an election. *)
  lease_drift_margin : float;
  (* Safety margin subtracted from the lease duration to absorb clock
     rate drift between leader and voters (LeaseGuard).  A margin at or
     above the election timeout disables the lease entirely. *)
  max_clock_drift : float;
  (* Maximum relative oscillator drift the deployment is specified for
     (0.05 = clocks may run up to 5% fast or slow).  The lease duration
     is scaled down by this factor so a lease measured on a clock that is
     slow by up to this much still expires, in true time, before any
     correct voter's election timeout.  Drift beyond the spec is handled
     by detection (heartbeat-interval watchdog, quorum timestamp
     cross-check, backward-step monotonicity), which suppresses the lease
     rather than trusting it.  0 = assume perfect clocks (the pre-clock-
     model behaviour). *)
  snapshot_chunk_bytes : int;
  (* Payload bytes per InstallSnapshot chunk (stop-and-wait: one chunk
     in flight per transfer). *)
  snapshot_rate_bytes_per_s : float;
  (* Pacing for the chunk stream, so a bulk install cannot starve the
     entry-AE pipeline to the healthy peers.  0 disables pacing. *)
  snapshot_retransmit_timeout : float;
  (* Resend the unacked chunk from the last acked offset after this
     long; what lets a transfer survive a lost chunk or ack. *)
  hb_suppress_limit : int;
  (* Multi-Raft heartbeat coalescing: when a shared transport reports it
     recently carried traffic to a peer's node, an idle leader may skip
     up to this many consecutive empty AppendEntries to that peer — the
     follower's failover clock is reset by the transport's per-node
     liveness tap instead (note_transport_liveness).  Suppression only
     ever *shortens* the lease-extension stream, never lengthens a
     follower's patience beyond its configured election timeout, so it
     is safe by construction.  0 disables (single-group behaviour). *)
}

let default_params =
  {
    heartbeat_interval = 500.0 *. Sim.Engine.ms;
    missed_heartbeats = 3;
    election_jitter = 500.0 *. Sim.Engine.ms;
    quorum_mode = Quorum.Single_region_dynamic;
    proxying = true;
    max_entries_per_ae = 64;
    max_inflight_aes = 8;
    max_bytes_per_ae = 128 * 1024;
    retransmit_timeout = 250.0 *. Sim.Engine.ms;
    proxy_wait = 200.0 *. Sim.Engine.ms;
    proxy_retry_interval = 20.0 *. Sim.Engine.ms;
    mock_election_timeout = 300.0 *. Sim.Engine.ms;
    mock_lag_allowance = 2_000;
    transfer_timeout = 3.0 *. Sim.Engine.s;
    use_pre_elections = true;
    use_mock_elections = true;
    auto_step_down_after = 0.0;
    cache_bytes = 4 * 1024 * 1024;
    use_leader_lease = true;
    lease_drift_margin = 50.0 *. Sim.Engine.ms;
    max_clock_drift = 0.0;
    snapshot_chunk_bytes = 64 * 1024;
    snapshot_rate_bytes_per_s = 8.0 *. 1024.0 *. 1024.0;
    snapshot_retransmit_timeout = 500.0 *. Sim.Engine.ms;
    hb_suppress_limit = 0;
  }

(* Durable per-identity state (survives crashes): the Raft term and vote,
   plus the FlexiRaft constraints — the authoritative last known leader
   and the highest-term candidate granted a vote (voting history, §4.1).
   Forgetting either across a restart could let a quorum form that fails
   to intersect committed data, exactly like forgetting voted_for. *)
type durable = {
  mutable current_term : int;
  mutable voted_for : node_id option;
  mutable last_known_leader : (int * string) option; (* (term, region) *)
  mutable vote_constraint : (int * string) option; (* (term, region) *)
  mutable d_config : (Types.cfg_id * Types.config) option;
  (* Logless reconfiguration: the installed config IS durable state, not
     log state.  Forgetting it across a restart could resurrect a config
     this node already voted or acked past, letting two disjoint quorums
     form. *)
}

let fresh_durable () =
  {
    current_term = 0;
    voted_for = None;
    last_known_leader = None;
    vote_constraint = None;
    d_config = None;
  }

(* One entry-carrying AppendEntries outstanding in a peer's window.
   Windows hold contiguous index ranges, oldest first; empty AEs
   (heartbeats/probes) are never windowed — there is nothing to resend. *)
type inflight = {
  if_seq : int; (* the AE's [seq], echoed in its response *)
  if_first : int; (* first entry index carried *)
  if_last : int; (* last entry index carried *)
  if_bytes : int;
  if_sent_at : float; (* leader's local clock at send *)
  if_sent_global : float;
  (* engine (true) time at the same instant: the partner stamp from
     which the lease's expired-by-global-time oracle is derived *)
}

(* One in-progress snapshot transfer to a peer: stop-and-wait chunks,
   resent from the acked offset on timeout, paced by the configured byte
   rate between acks.  The snapshot itself is immutable for the span of
   the transfer (the leader keeps replicating and purging around it). *)
type snap_xfer = {
  sx_id : int; (* leader-unique transfer id *)
  sx_snapshot : Snapshot.t;
  mutable sx_acked : int; (* contiguous bytes the follower confirmed *)
  mutable sx_timer : Sim.Engine.handle option; (* pacing or retransmit *)
}

type peer_state = {
  peer_id : node_id;
  mutable next_index : int; (* send frontier: next index to ship *)
  mutable match_index : int; (* durable AND confirmed-matching prefix *)
  mutable inflight : inflight list; (* sliding window, oldest first *)
  mutable send_seq : int; (* seq of the most recent AE to this peer *)
  mutable rewind_seq : int;
  (* Nack fence: failure responses with request_seq <= this answer sends
     from before the last window rewind; acting on each would rewind
     once per in-flight AE of the drained window. *)
  mutable delivered : int;
  (* Highest index any response confirmed the follower's log matches
     ours through (cumulative over out-of-order responses).  The leader
     trusts only its own bookkeeping here — never the follower's raw log
     tail, which may be an uncommitted stale-term suffix. *)
  mutable srtt : float; (* EWMA of ack RTT; 0 until first sample *)
  mutable ae_budget : int; (* AIMD byte budget for one batch *)
  mutable retransmit_timer : Sim.Engine.handle option;
  mutable last_ack : float;
  mutable responded : bool; (* has acked this leader at least once *)
  mutable acked_send_time : float;
  (* Latest local send time of an AppendEntries this peer has
     acknowledged at the current term.  The follower reset its election
     timer no earlier than this instant, which is what the leader-lease
     computation quantifies over. *)
  mutable acked_send_global : float;
  (* The engine-time partner stamp of [acked_send_time], maintained in
     lockstep so the lease's global-time oracle tracks the same event. *)
  mutable hb_sent : (int * float * float) list;
  (* (seq, local send time, global send time) of recent empty AEs,
     newest first and bounded: heartbeats are never windowed, so their
     send times live here for the [acked_send_time] lookup. *)
  mutable offset_sample : (float * float) option;
  (* (follower_time, our local receipt time) from this peer's last ack:
     the baseline for the clock-rate cross-check.  Between two acks the
     follower-reported interval and our locally measured interval must
     agree within the configured drift spec — a larger disagreement
     means one of the two oscillators is off and the lease cannot be
     trusted. *)
  mutable snap : snap_xfer option;
  (* In-flight snapshot install; entry replication and heartbeats to
     this peer pause until it completes or aborts. *)
  mutable wedged : bool;
  (* The peer's frontier sits below the purge boundary and cannot be
     served from the log.  Dedups the raft.purge_wedges counter to one
     bump per episode. *)
  mutable sent_commit : int;
  (* Highest commit_index shipped to this peer in any AppendEntries.
     Heartbeat suppression requires sent_commit >= commit_index: a
     transport liveness tap carries no commit marker, so a heartbeat
     whose only job is to propagate a commit advance must not be
     skipped. *)
  mutable hb_suppressed : int;
  (* Consecutive empty AEs skipped in favour of transport liveness;
     capped at hb_suppress_limit so a real (commit-bearing, ack-
     soliciting) heartbeat still flows periodically. *)
  mutable cfg_acked : Types.cfg_id;
  (* Newest config identity any response from this peer has reported
     installed.  Gates config gossip (the membership body rides the AE
     only while this trails the leader's cfg_id) and feeds the C1
     reconfig precondition (a quorum of the current config holds the
     current config in the current term). *)
}

type election = {
  phase : Message.vote_phase;
  election_term : int;
  mutable votes : node_id list;
  mutable auth_hint : (int * string) option; (* best authoritative leader seen *)
  mutable vote_hint : (int * string) option; (* best granted-vote constraint seen *)
  mock_requester : node_id option; (* respond here when phase = Mock *)
  mutable decided : bool;
}

type transfer = {
  transfer_target : node_id;
  mutable quiesced : bool;
  transfer_deadline : Sim.Engine.handle;
}

(* One ReadIndex confirmation round (batched: every read that arrived
   while the previous round was in flight shares the next one).  The
   round completes when responses to AppendEntries sent *after* the
   round started satisfy the data quorum — piggybacked on the pipelined
   replication stream rather than a dedicated RPC. *)
type read_round = {
  rr_index : int; (* commit index captured at round start *)
  rr_marks : (node_id * int) list;
  (* per-peer send_seq at round start: only responses to later sends
     prove leadership was held after the capture *)
  mutable rr_acks : node_id list;
  rr_waiters : ((int, string) result -> unit) list;
  mutable rr_deadline : Sim.Engine.handle option;
}

(* Metric handles resolved once at node creation; hot-path recording is a
   single field update (see Obs.Metrics). *)
type meters = {
  m_elections_started : Obs.Metrics.counter;
  m_elections_won : Obs.Metrics.counter;
  m_votes_granted : Obs.Metrics.counter;
  m_votes_rejected : Obs.Metrics.counter;
  m_heartbeats_sent : Obs.Metrics.counter;
  m_ae_sent : Obs.Metrics.counter;
  m_ae_rejected : Obs.Metrics.counter;
  m_proxy_forwards : Obs.Metrics.counter;
  m_proxy_degraded : Obs.Metrics.counter;
  m_proxy_reconstitutions : Obs.Metrics.counter;
  m_commit_advances : Obs.Metrics.counter;
  m_retransmits : Obs.Metrics.counter;
  m_nacks : Obs.Metrics.counter;
  m_regressions : Obs.Metrics.counter; (* follower log ends below match_index *)
  m_window : Obs.Metrics.gauge; (* in-flight entry AEs across all peers *)
  m_batch_bytes : Obs.Metrics.histogram; (* payload bytes per entry AE *)
  m_election_latency : Obs.Metrics.histogram; (* us, Real-phase start -> won *)
  m_commit_latency : Obs.Metrics.histogram; (* us, local append -> commit *)
  m_readindex_rounds : Obs.Metrics.counter;
  m_readindex_forwarded : Obs.Metrics.counter;
  m_lease_extensions : Obs.Metrics.counter;
  m_lease_revocations : Obs.Metrics.counter;
  m_readindex_batch : Obs.Metrics.histogram; (* waiters sharing one round *)
  m_backward_steps : Obs.Metrics.counter; (* local clock ran backwards *)
  m_clock_suspects : Obs.Metrics.counter; (* lease suppressed on clock anomaly *)
  m_stale_serves : Obs.Metrics.counter; (* lease reads past global expiry (oracle) *)
  m_purge_wedges : Obs.Metrics.counter; (* peer frontier fell behind the purge boundary *)
  m_snapshots_taken : Obs.Metrics.counter; (* checkpoints produced for installs *)
  m_snapshot_chunks_sent : Obs.Metrics.counter;
  m_snapshot_bytes_sent : Obs.Metrics.counter;
  m_snapshot_retransmits : Obs.Metrics.counter; (* chunk resends after timeout *)
  m_snapshots_sent : Obs.Metrics.counter; (* transfers completed (leader side) *)
  m_snapshots_installed : Obs.Metrics.counter; (* installs applied (follower side) *)
  m_snapshot_aborts : Obs.Metrics.counter; (* failed verify / refused install *)
  m_hb_suppressed : Obs.Metrics.counter; (* empty AEs skipped, mux carried liveness *)
  m_transport_resets : Obs.Metrics.counter; (* failover clock resets from mux taps *)
  m_reconfig_changes : Obs.Metrics.counter; (* membership changes initiated (leader) *)
  m_reconfig_adoptions : Obs.Metrics.counter; (* configs installed (any source) *)
  m_reconfig_vote_denials : Obs.Metrics.counter; (* votes denied to staler-config candidates *)
  m_reconfig_gossip_bodies : Obs.Metrics.counter; (* AEs that carried a full config body *)
}

let make_meters m =
  {
    m_elections_started = Obs.Metrics.counter m "raft.elections_started";
    m_elections_won = Obs.Metrics.counter m "raft.elections_won";
    m_votes_granted = Obs.Metrics.counter m "raft.votes_granted";
    m_votes_rejected = Obs.Metrics.counter m "raft.votes_rejected";
    m_heartbeats_sent = Obs.Metrics.counter m "raft.heartbeats_sent";
    m_ae_sent = Obs.Metrics.counter m "raft.ae_sent";
    m_ae_rejected = Obs.Metrics.counter m "raft.ae_rejected";
    m_proxy_forwards = Obs.Metrics.counter m "raft.proxy_forwards";
    m_proxy_degraded = Obs.Metrics.counter m "raft.proxy_degraded";
    m_proxy_reconstitutions = Obs.Metrics.counter m "raft.proxy_reconstitutions";
    m_commit_advances = Obs.Metrics.counter m "raft.commit_advances";
    m_retransmits = Obs.Metrics.counter m "raft.retransmits";
    m_nacks = Obs.Metrics.counter m "raft.nacks";
    m_regressions = Obs.Metrics.counter m "raft.follower_log_regressions";
    m_window = Obs.Metrics.gauge m "raft.window_inflight";
    m_batch_bytes = Obs.Metrics.histogram m "raft.ae_batch_bytes";
    m_election_latency = Obs.Metrics.histogram m "raft.election_latency_us";
    m_commit_latency = Obs.Metrics.histogram m "raft.commit_latency_us";
    m_readindex_rounds = Obs.Metrics.counter m "raft.readindex_rounds";
    m_readindex_forwarded = Obs.Metrics.counter m "raft.readindex_forwarded";
    m_lease_extensions = Obs.Metrics.counter m "raft.lease_extensions";
    m_lease_revocations = Obs.Metrics.counter m "raft.lease_revocations";
    m_readindex_batch = Obs.Metrics.histogram m "raft.readindex_batch";
    m_backward_steps = Obs.Metrics.counter m "clock.backward_steps";
    m_clock_suspects = Obs.Metrics.counter m "clock.suspect_events";
    m_stale_serves = Obs.Metrics.counter m "raft.lease_stale_serves";
    m_purge_wedges = Obs.Metrics.counter m "raft.purge_wedges";
    m_snapshots_taken = Obs.Metrics.counter m "snapshot.taken";
    m_snapshot_chunks_sent = Obs.Metrics.counter m "snapshot.chunks_sent";
    m_snapshot_bytes_sent = Obs.Metrics.counter m "snapshot.bytes_sent";
    m_snapshot_retransmits = Obs.Metrics.counter m "snapshot.chunk_retransmits";
    m_snapshots_sent = Obs.Metrics.counter m "snapshot.sends_completed";
    m_snapshots_installed = Obs.Metrics.counter m "snapshot.installs";
    m_snapshot_aborts = Obs.Metrics.counter m "snapshot.aborts";
    m_hb_suppressed = Obs.Metrics.counter m "raft.heartbeats_suppressed";
    m_transport_resets = Obs.Metrics.counter m "raft.transport_liveness_resets";
    m_reconfig_changes = Obs.Metrics.counter m "reconfig.changes";
    m_reconfig_adoptions = Obs.Metrics.counter m "reconfig.adoptions";
    m_reconfig_vote_denials = Obs.Metrics.counter m "reconfig.vote_denials";
    m_reconfig_gossip_bodies = Obs.Metrics.counter m "reconfig.gossip_bodies";
  }

(* Follower side of an InstallSnapshot transfer: chunks accumulate here
   until the payload is complete and verified.  Keyed by (leader, id) so
   a duplicate or crossed transfer restarts cleanly. *)
type pending_install = {
  pi_leader : node_id;
  pi_id : int;
  pi_meta : Snapshot.meta;
  pi_buf : Buffer.t;
}

type t = {
  engine : Sim.Engine.t;
  clock : Sim.Clock.t;
  (* this node's view of time: every timeout, timestamp and lease
     interval below is measured on it, never on the engine directly
     (except the global-time lease oracle, which exists to catch exactly
     that class of bug) *)
  id : node_id;
  region : string;
  group : int;
  (* Multi-Raft: which consensus group this instance belongs to.  Pure
     tagging — the group never changes the protocol, only how the shard
     mux frames and demultiplexes this node's traffic. *)
  send : dst:node_id -> Message.t -> unit;
  log : log_ops;
  durable : durable;
  params : params;
  trace : Sim.Trace.t;
  rng : Sim.Rng.t;
  callbacks : callbacks;
  cache : Log_cache.t;
  mutable role : Types.role;
  mutable leader_id : node_id option;
  mutable commit_index : int;
  mutable cfg : Types.config;
  mutable cfg_id : Types.cfg_id;
  (* The installed config and its (version, term) identity — logless
     reconfiguration: configs never ride the log, they live here, are
     gossiped on AppendEntries/RequestVote, and a strictly newer identity
     always wins.  Mirrored into [durable.d_config] on every install. *)
  peers : (node_id, peer_state) Hashtbl.t;
  mutable election : election option;
  mutable election_timer : Sim.Engine.handle option;
  mutable heartbeat_timer : Sim.Engine.handle option;
  mutable transfer : transfer option;
  mutable force_election_quorum : bool; (* Quorum Fixer override *)
  mutable stopped : bool;
  mutable last_leader_contact : float;
  mutable elections_started : int;
  mutable times_elected : int;
  metrics : Obs.Metrics.t;
  meters : meters;
  tracebuf : Obs.Tracebuf.t option;
  (* local append time per index, consumed (and removed) when the index
     commits — feeds raft.commit_latency_us *)
  append_times : (int, float) Hashtbl.t;
  mutable election_started_at : float; (* neg_infinity when no election *)
  (* --- consistency-tiered read path --- *)
  mutable lease_until : float; (* leader lease expiry, local clock; neg_infinity = none *)
  mutable lease_until_global : float;
  (* The same lease interval evaluated on the engine's true clock: the
     instant after which a correct-clock voter could have completed an
     election.  Serving past it while the local reading still looks
     valid is the stale-lease bug; [stale_lease_serves] counts it and
     the chaos checker fails the run on any nonzero count. *)
  mutable lease_blocked : bool;
  (* Set for the span of a leadership transfer: TimeoutNow lets the
     target win an election without waiting out a timeout, so lease
     intervals computed from pre-transfer acks are void and no new ones
     may be taken until the transfer resolves (LeaseGuard). *)
  mutable read_round : read_round option; (* in-flight confirmation round *)
  mutable read_queue : ((int, string) result -> unit) list;
  (* reads awaiting the next round, newest first *)
  mutable next_read_rid : int;
  pending_remote_reads :
    (int, ((int, string) result -> unit) * Sim.Engine.handle) Hashtbl.t;
  (* follower side: rid -> (continuation, forward timeout) *)
  mutable freshness : float * int;
  (* Staleness anchor (leader_time, commit_index) from the freshest
     AppendEntries whose [leader_last_index] our log covers: every write
     acknowledged before leader_time has index <= that commit_index, so
     an engine applied through it is fresh as of leader_time. *)
  (* --- clock-anomaly defences (LeaseGuard) --- *)
  mutable last_local_now : float;
  (* High-water mark of local readings: a reading below it means the
     clock stepped backwards, which voids every interval measured across
     the step. *)
  mutable clock_suspect_until : float;
  (* Local instant until which the lease fast path is suppressed because
     a clock anomaly was detected (backward step, heartbeat-interval
     mismatch, or rate disagreement with the quorum).  The suppression
     window exceeds the lease duration, so any lease granted before the
     anomaly has locally expired by the time the path re-opens. *)
  mutable last_hb_tick_local : float;
  (* Local reading at the previous heartbeat tick; the tick fires on a
     countdown armed before any mid-flight rate fault, so the measured
     local interval diverging from [heartbeat_interval] is a watchdog
     for rate steps even when no ack can reach us.  neg_infinity between
     leaderships. *)
  mutable stale_lease_serves : int; (* oracle: lease reads past global expiry *)
  mutable next_snapshot_id : int; (* leader-unique InstallSnapshot transfer ids *)
  mutable pending_install : pending_install option; (* follower-side transfer *)
  mutable vote_floor : Binlog.Opid.t option;
  (* Set when corruption recovery truncated entries this node may have
     acknowledged: until its log regains an entry at least as up-to-date
     as the floor, it must not vote for (or campaign as) a candidate
     whose log is behind the floor — its missing ack could otherwise
     complete a quorum that fails to cover a committed entry. *)
  mutable transport_carrier : (dst:node_id -> bool) option;
  (* Shard-mux hook: answers "did the shared transport recently carry a
     frame from this node to [dst]'s node?".  When it did, an idle
     leader may suppress its empty AppendEntries to [dst] (see
     hb_suppress_limit); the follower's failover clock is reset by the
     transport's liveness tap instead. *)
  mutable last_transport_reset : float;
  (* Local time of the last transport-driven election-timer reset;
     rate-limits note_transport_liveness so a busy mux link does not
     re-arm the timer on every delivered packet. *)
}

let id t = t.id

let region t = t.region

let group t = t.group

let role t = t.role

let is_leader t = t.role = Types.Leader

let current_term t = t.durable.current_term

let commit_index t = t.commit_index

let leader_id t = t.leader_id

let last_opid t = t.log.last_opid ()

let last_index t = Binlog.Opid.index (last_opid t)

let config t = t.cfg

let config_id t = t.cfg_id

let quorum_mode t = t.params.quorum_mode

let elections_started t = t.elections_started

let times_elected t = t.times_elected

let cache t = t.cache

let metrics t = t.metrics

(* Stamp the local-append time of an entry; consumed when it commits. *)
let note_append t entry =
  Hashtbl.replace t.append_times (Binlog.Entry.index entry) (Sim.Clock.now t.clock);
  (* Corruption-recovery vote floor: once the log regains an entry at
     least as up-to-date as what was truncated, normal voting resumes. *)
  match t.vote_floor with
  | Some fl when Binlog.Opid.at_least_as_up_to_date_as (Binlog.Entry.opid entry) fl ->
    t.vote_floor <- None
  | _ -> ()

(* Commit-index advanced over (from_index-1, to_index]: count it, observe
   append->commit latency for locally stamped indexes, and emit one
   "consensus-commit" trace event per index so a transaction's consensus
   step is visible on every node that learned of the commit. *)
let note_commit t ~from_index ~to_index =
  let now = Sim.Clock.now t.clock in
  Obs.Metrics.incr t.meters.m_commit_advances;
  for idx = from_index to to_index do
    (match Hashtbl.find_opt t.append_times idx with
    | Some appended_at ->
      Hashtbl.remove t.append_times idx;
      Obs.Metrics.record t.meters.m_commit_latency (now -. appended_at)
    | None -> ());
    match t.tracebuf with
    | Some tb ->
      let term = Option.value (t.log.term_at idx) ~default:0 in
      Obs.Tracebuf.record tb ~time:now ~node:t.id ~stage:"consensus-commit" ~term
        ~index:idx ()
    | None -> ()
  done

let me t = Types.find_member (config t) t.id

let is_voter t = match me t with Some m -> m.Types.voter | None -> false

let set_force_election_quorum t v = t.force_election_quorum <- v

(* The highest term at which this node knows data may have committed —
   from an authoritative leader or from a vote it granted. *)
let constraint_term t =
  let term = function Some (x, _) -> x | None -> 0 in
  max (term t.durable.last_known_leader) (term t.durable.vote_constraint)

let tracef t tag fmt = Sim.Trace.record t.trace ~tag fmt

(* ----- timers ----- *)

let cancel_timer = function Some h -> Sim.Engine.cancel h | None -> ()

let election_timeout t =
  (float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval)
  +. Sim.Rng.uniform t.rng ~lo:0.0 ~hi:t.params.election_jitter

let rec reset_election_timer t =
  cancel_timer t.election_timer;
  t.election_timer <- None;
  if (not t.stopped) && t.role <> Types.Leader && is_voter t then
    t.election_timer <-
      Some (Sim.Clock.schedule t.clock ~delay:(election_timeout t) (fun () ->
                on_election_timeout t))

and on_election_timeout t =
  if (not t.stopped) && t.role <> Types.Leader && is_voter t then begin
    if t.params.use_pre_elections then begin_election t ~phase:Message.Pre
    else begin_election t ~phase:Message.Real;
    reset_election_timer t
  end

(* ----- clock-anomaly defences ----- *)

(* Suppress the lease fast path for a full election window of local time.
   The window exceeds any lease duration, so whatever lease interval was
   granted before the anomaly has locally expired by the time the path
   re-opens; while suppressed, linearizable reads pay a ReadIndex round,
   which is anomaly-proof (it re-confirms leadership through the quorum
   rather than through elapsed time). *)
and suspect_clock t ~local_now:lnow ~reason =
  let window =
    (float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval)
    +. t.params.election_jitter
  in
  if lnow +. window > t.clock_suspect_until then begin
    if t.clock_suspect_until <= lnow then begin
      Obs.Metrics.incr t.meters.m_clock_suspects;
      tracef t "clock" "%s: clock suspect (%s); lease suppressed" t.id reason
    end;
    t.clock_suspect_until <- lnow +. window
  end;
  revoke_lease t ~reason

(* Every read of the local clock doubles as a monotonicity watchdog: a
   reading below the high-water mark means the clock stepped backwards,
   voiding every interval measured across the step. *)
and local_now t =
  let lnow = Sim.Clock.now t.clock in
  if lnow +. 1e-6 < t.last_local_now then begin
    Obs.Metrics.incr t.meters.m_backward_steps;
    tracef t "clock" "%s: backward clock step (%.0f -> %.0f us)" t.id t.last_local_now
      lnow;
    suspect_clock t ~local_now:lnow ~reason:"backward clock step"
  end;
  if lnow > t.last_local_now then t.last_local_now <- lnow;
  lnow

(* Does the post-corruption vote floor rule out a log ending at [opid]?
   The floor is the pre-truncation tail recorded by crash recovery: logs
   below it may be missing committed entries and must neither campaign
   nor collect votes until replication restores them past it. *)
and vote_floor_blocks t opid =
  match t.vote_floor with
  | None -> false
  | Some fl -> not (Binlog.Opid.at_least_as_up_to_date_as opid fl)

(* ----- sending with optional proxy routing ----- *)

and send_routed t ~hops ~final msg =
  match hops with
  | [] -> t.send ~dst:final msg
  | h :: rest -> t.send ~dst:h (Message.Proxied { next_hops = rest @ [ final ]; inner = msg })

(* Pick the designated proxy for a remote region: the most caught-up
   responsive member there.  The proxy itself receives full AppendEntries
   payloads directly; its region-mates receive PROXY_OPs through it.
   Returns None when no healthy member exists (route around, §4.2.3). *)
and designated_proxy t ~region =
  let now = local_now t in
  let healthy_cutoff = 3.0 *. t.params.heartbeat_interval in
  let candidates =
    Hashtbl.fold
      (fun pid p acc ->
        match Types.find_member (config t) pid with
        | Some m when m.Types.region = region ->
          (* A proxy must have acknowledged this leader at least once —
             a node that has never responded may be dead and would
             blackhole its whole region (§4.2.3 route-around). *)
          if p.responded && now -. p.last_ack <= healthy_cutoff then
            (p.match_index, pid) :: acc
          else acc
        | _ -> acc)
      t.peers []
  in
  match List.sort (fun a b -> compare b a) candidates with
  | (_, pid) :: _ -> Some pid
  | [] -> None

(* ----- replication (leader side): windowed pipeline ----- *)

and update_window_gauge t =
  let total = Hashtbl.fold (fun _ p acc -> acc + List.length p.inflight) t.peers 0 in
  Obs.Metrics.set_gauge t.meters.m_window (float_of_int total)

(* AIMD byte budget: halve on loss/latency signals, grow additively on
   clean acks.  The floor keeps rewind probes small but useful. *)
and shrink_budget peer = peer.ae_budget <- max 4096 (peer.ae_budget / 2)

and grow_budget t peer =
  peer.ae_budget <-
    min t.params.max_bytes_per_ae (peer.ae_budget + max 1024 (peer.ae_budget / 4))

and cancel_retransmit peer =
  (match peer.retransmit_timer with Some h -> Sim.Engine.cancel h | None -> ());
  peer.retransmit_timer <- None

and cancel_snap_timer xfer =
  (match xfer.sx_timer with Some h -> Sim.Engine.cancel h | None -> ());
  xfer.sx_timer <- None

and cancel_snap peer =
  match peer.snap with
  | Some xfer ->
    cancel_snap_timer xfer;
    peer.snap <- None
  | None -> ()

and drain_window t peer =
  peer.inflight <- [];
  cancel_retransmit peer;
  update_window_gauge t

and reset_peers t =
  Hashtbl.iter
    (fun _ p ->
      cancel_retransmit p;
      cancel_snap p)
    t.peers;
  Hashtbl.reset t.peers

(* Effective retransmission timeout: the configured floor or a smoothed-
   RTT multiple, so cross-region peers are not spuriously resent. *)
and retransmit_after t peer = max t.params.retransmit_timeout (4.0 *. peer.srtt)

and arm_retransmit t peer ~delay =
  (* Floor of 1 us: a sub-ulp delay at a large virtual time rounds to
     "now" and the timer would fire in place forever. *)
  let delay = max delay 1.0 in
  if not t.stopped then
    peer.retransmit_timer <-
      Some
        (Sim.Clock.schedule t.clock ~delay (fun () ->
             peer.retransmit_timer <- None;
             on_retransmit_timeout t peer))

and on_retransmit_timeout t peer =
  (* The peer record may be stale: leadership or membership changes reset
     the table, so only act when this exact record is still installed. *)
  let live =
    (not t.stopped)
    && t.role = Types.Leader
    && (match Hashtbl.find_opt t.peers peer.peer_id with
       | Some p -> p == peer
       | None -> false)
  in
  if live then
    match peer.inflight with
    | [] -> ()
    | oldest :: _ ->
      let age = local_now t -. oldest.if_sent_at in
      let timeout = retransmit_after t peer in
      if age +. 1e-3 >= timeout then begin
        (* The oldest windowed send (or its response) is presumed lost:
           rewind to its start and resend.  Without this, one lost
           AppendEntries *response* stalled the peer until a leadership
           change. *)
        Obs.Metrics.incr t.meters.m_retransmits;
        tracef t "raft" "%s: retransmit to %s from index %d (window %d)" t.id
          peer.peer_id oldest.if_first
          (List.length peer.inflight);
        drain_window t peer;
        peer.rewind_seq <- peer.send_seq;
        peer.next_index <- max (peer.match_index + 1) oldest.if_first;
        shrink_budget peer;
        replicate_to t peer ~allow_empty:true
      end
      else arm_retransmit t peer ~delay:(timeout -. age)

(* Attach the membership body only while the peer's acknowledged config
   identity trails ours; after one ack the stream drops back to the bare
   identity, keeping steady-state AE bandwidth flat. *)
and gossip_body t peer =
  if Types.cfg_id_newer t.cfg_id peer.cfg_acked then begin
    Obs.Metrics.incr t.meters.m_reconfig_gossip_bodies;
    Some t.cfg
  end
  else None

(* Ship one byte-budgeted batch from the send frontier; returns false
   when there is nothing sendable (hole at the frontier or purged prev). *)
and send_entry_batch t peer =
  let from_index = peer.next_index in
  let entries =
    Log_cache.read_slice t.cache ~max_bytes:peer.ae_budget ~from_index
      ~max_count:t.params.max_entries_per_ae ~read_log:t.log.entry_at ()
  in
  if Array.length entries = 0 then false
  else begin
    let prev_index = from_index - 1 in
    match t.log.term_at prev_index with
    | None ->
      tracef t "raft" "%s: cannot replicate to %s: index %d purged" t.id peer.peer_id
        prev_index;
      note_purge_wedge t peer;
      false
    | Some prev_term ->
      let prev_opid = Binlog.Opid.make ~term:prev_term ~index:prev_index in
      peer.send_seq <- peer.send_seq + 1;
      let last = entries.(Array.length entries - 1) in
      let last_idx = Binlog.Entry.index last in
      let bytes = Array.fold_left (fun acc e -> acc + Binlog.Entry.size e) 0 entries in
      let sent_local = local_now t in
      let cfg_body = gossip_body t peer in
      let ae reply_route payload =
        {
          Message.term = t.durable.current_term;
          leader_id = t.id;
          leader_region = t.region;
          prev_opid;
          payload;
          commit_index = t.commit_index;
          seq = peer.send_seq;
          reply_route;
          leader_time = sent_local;
          leader_last_index = last_index t;
          cfg_id = t.cfg_id;
          cfg = cfg_body;
        }
      in
      peer.inflight <-
        peer.inflight
        @ [
            {
              if_seq = peer.send_seq;
              if_first = from_index;
              if_last = last_idx;
              if_bytes = bytes;
              if_sent_at = sent_local;
              if_sent_global = Sim.Engine.now t.engine;
            };
          ];
      peer.next_index <- last_idx + 1;
      peer.sent_commit <- max peer.sent_commit t.commit_index;
      peer.hb_suppressed <- 0;
      if peer.retransmit_timer = None then
        arm_retransmit t peer ~delay:(retransmit_after t peer);
      update_window_gauge t;
      Obs.Metrics.incr t.meters.m_ae_sent;
      Obs.Metrics.record t.meters.m_batch_bytes (float_of_int bytes);
      let peer_region =
        match Types.find_member (config t) peer.peer_id with
        | Some m -> m.Types.region
        | None -> t.region
      in
      let proxy =
        match
          if t.params.proxying && peer_region <> t.region then
            designated_proxy t ~region:peer_region
          else None
        with
        | Some p when p <> peer.peer_id -> Some p
        | _ -> None (* the designated proxy itself gets the full payload *)
      in
      (match proxy with
      | Some proxy_id ->
        (* PROXY_OP: ship metadata only; the proxy reconstitutes the
           payload from its own log (§4.2.1). *)
        Obs.Metrics.incr t.meters.m_proxy_forwards;
        let refs =
          Message.Refs
            {
              first_index = from_index;
              last_index = last_idx;
              last_term = Binlog.Entry.term last;
            }
        in
        send_routed t ~hops:[ proxy_id ] ~final:peer.peer_id
          (Message.Append_entries (ae [ proxy_id ] refs))
      | None ->
        t.send ~dst:peer.peer_id (Message.Append_entries (ae [] (Message.Entries entries))));
      true
  end

(* Empty AEs are never windowed (nothing to resend).  With the window
   open they anchor at [match_index] — known to match, so they cannot
   race the in-flight entries into a spurious nack; with it empty they
   anchor at the frontier and double as a probe. *)
and send_heartbeat t peer =
  let prev_index =
    if peer.inflight = [] then peer.next_index - 1 else peer.match_index
  in
  match t.log.term_at prev_index with
  | None ->
    tracef t "raft" "%s: cannot heartbeat %s: index %d purged" t.id peer.peer_id
      prev_index;
    note_purge_wedge t peer
  | Some prev_term ->
    peer.send_seq <- peer.send_seq + 1;
    let now = local_now t in
    (* Remember the send time (bounded) so the ack can feed the lease. *)
    let keep = (2 * t.params.max_inflight_aes) + 8 in
    peer.hb_sent <-
      (peer.send_seq, now, Sim.Engine.now t.engine)
      :: List.filteri (fun i _ -> i < keep) peer.hb_sent;
    Obs.Metrics.incr t.meters.m_heartbeats_sent;
    peer.sent_commit <- max peer.sent_commit t.commit_index;
    peer.hb_suppressed <- 0;
    t.send ~dst:peer.peer_id
      (Message.Append_entries
         {
           Message.term = t.durable.current_term;
           leader_id = t.id;
           leader_region = t.region;
           prev_opid = Binlog.Opid.make ~term:prev_term ~index:prev_index;
           payload = Message.Entries [||];
           commit_index = t.commit_index;
           seq = peer.send_seq;
           reply_route = [];
           leader_time = now;
           leader_last_index = last_index t;
           cfg_id = t.cfg_id;
           cfg = gossip_body t peer;
         })

(* Multi-Raft heartbeat coalescing: may the empty AE to [peer] be
   skipped this tick?  Only when this group is fully idle towards the
   peer (nothing in flight, log and commit marker both caught up, peer
   has acked this leadership) and the shared transport vouches that the
   peer's node saw a frame from us recently — some co-located group's
   beat carries the liveness for all of them.  The consecutive-skip cap
   bounds how long the peer can go without a real, ack-soliciting AE
   (the lease and the clock cross-check both feed on acks). *)
and hb_suppressible t peer =
  t.params.hb_suppress_limit > 0
  && peer.hb_suppressed < t.params.hb_suppress_limit
  && peer.inflight = []
  && peer.snap = None
  && peer.responded
  && peer.match_index >= last_index t
  && peer.sent_commit >= t.commit_index
  && (match t.transport_carrier with
     | Some carried -> carried ~dst:peer.peer_id
     | None -> false)

and replicate_to t peer ~allow_empty =
  (* A peer mid-install gets neither entries nor heartbeats: its log is
     about to be rebased, and a crossing AppendEntries could anchor at an
     index the install is removing.  The chunk stream doubles as the
     leader's liveness signal to it. *)
  if t.role = Types.Leader && peer.snap = None then begin
    if peer.next_index < t.log.purged_below () then
      (* The frontier fell into the purged hole: no prev anchor exists,
         so ordinary replication cannot make progress.  Flag the wedge
         and try the snapshot rescue. *)
      note_purge_wedge t peer
    else begin
      peer.wedged <- false;
      let sent_entries = ref false in
      let blocked = ref false in
      while
        (not !blocked)
        && List.length peer.inflight < t.params.max_inflight_aes
        && peer.next_index <= last_index t
      do
        if send_entry_batch t peer then sent_entries := true else blocked := true
      done;
      if (not !sent_entries) && allow_empty then
        if hb_suppressible t peer then begin
          peer.hb_suppressed <- peer.hb_suppressed + 1;
          Obs.Metrics.incr t.meters.m_hb_suppressed
        end
        else send_heartbeat t peer
    end
  end

and replicate_all t ~allow_empty =
  Hashtbl.iter (fun _ peer -> replicate_to t peer ~allow_empty) t.peers

(* ----- commit marker ----- *)

and advance_commit t =
  if t.role = Types.Leader then begin
    let cfg = config t in
    let self_index = last_index t in
    let self_durable = t.log.durable_index () in
    let rec scan n best =
      if n > self_index then best
      else begin
        let acks =
          (* The leader's own ack counts only once its log has fsynced
             the entry — symmetrical with followers reporting their
             durable index. *)
          (if self_durable >= n then [ t.id ] else [])
          @ Hashtbl.fold
              (fun pid p acc -> if p.match_index >= n then pid :: acc else acc)
              t.peers []
        in
        let quorum =
          Quorum.data_quorum_satisfied t.params.quorum_mode cfg ~leader_region:t.region
            ~acks
        in
        if quorum then scan (n + 1) (Some n) else best
      end
    in
    match scan (t.commit_index + 1) None with
    | Some n when n > t.commit_index ->
      (* Raft safety: only commit entries from the current term directly. *)
      let term_ok =
        match t.log.term_at n with
        | Some term -> term = t.durable.current_term
        | None -> false
      in
      if term_ok then begin
        let prev_commit = t.commit_index in
        t.commit_index <- n;
        note_commit t ~from_index:(prev_commit + 1) ~to_index:n;
        t.callbacks.on_commit_advance ~commit_index:n;
        (* Reads queued behind "no current-term commit yet" can start
           their confirmation round now. *)
        maybe_start_read_round t
      end
    | _ -> ()
  end

(* ----- linearizable read path: ReadIndex rounds + leader lease ----- *)

(* A fresh leader's commit index is authoritative only once it has
   committed an entry of its own term (the no-op appended on election);
   before that, entries committed by a predecessor may sit above it. *)
and committed_in_current_term t =
  match t.log.term_at t.commit_index with
  | Some term -> term = t.durable.current_term
  | None -> false

and lease_duration t =
  (* Measured on the leader's own clock.  Scaling the election window by
     (1 - max_clock_drift) is what makes the margin actually cover the
     configured drift: a leader slow by up to the spec still sees this
     many local microseconds elapse within
       (window * (1 - drift) - margin) / (1 - drift) < window - margin
     true microseconds — strictly inside any correct voter's election
     timeout. *)
  (float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval
  *. (1.0 -. t.params.max_clock_drift))
  -. t.params.lease_drift_margin

(* The same interval on the engine's true clock: the bound a correct
   voter's election timeout actually guarantees.  Feeds the oracle only —
   no node decision may read it. *)
and lease_duration_global t =
  (float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval)
  -. t.params.lease_drift_margin

(* Extend the lease from quorum-acked send times: find the latest T such
   that {self} and every peer whose [acked_send_time] >= T satisfy the
   data quorum.  Each such peer reset its election timer at or after T,
   so no election it participates in can complete before
   T + election timeout > T + lease duration + drift margin; and because
   FlexiRaft election quorums intersect data quorums (§4.1), any new
   leader's quorum contains such a voter. *)
and extend_lease t =
  if
    t.role = Types.Leader && t.params.use_leader_lease && (not t.lease_blocked)
    && lease_duration t > 0.0
  then begin
    (* Candidate thresholds are (local, global) stamp pairs of the same
       send events; quorum selection runs entirely on the local stamps
       (the only ones a real node has), the global partner just keeps
       the oracle pointed at the same event. *)
    let candidates =
      (local_now t, Sim.Engine.now t.engine)
      :: Hashtbl.fold
           (fun _ p acc ->
             if p.acked_send_time > neg_infinity then
               (p.acked_send_time, p.acked_send_global) :: acc
             else acc)
           t.peers []
    in
    let cfg = config t in
    let quorum_at (threshold, _) =
      let acks =
        t.id
        :: Hashtbl.fold
             (fun pid p acc -> if p.acked_send_time >= threshold then pid :: acc else acc)
             t.peers []
      in
      Quorum.data_quorum_satisfied t.params.quorum_mode cfg ~leader_region:t.region ~acks
    in
    let sorted = List.sort_uniq (fun a b -> compare b a) candidates in
    match List.find_opt quorum_at sorted with
    | Some (threshold, threshold_global) ->
      let until = threshold +. lease_duration t in
      if until > t.lease_until then begin
        t.lease_until <- until;
        t.lease_until_global <- threshold_global +. lease_duration_global t;
        Obs.Metrics.incr t.meters.m_lease_extensions
      end
    | None -> ()
  end

and revoke_lease t ~reason =
  if t.lease_until > neg_infinity then begin
    tracef t "raft" "%s: lease revoked (%s)" t.id reason;
    Obs.Metrics.incr t.meters.m_lease_revocations
  end;
  t.lease_until <- neg_infinity;
  t.lease_until_global <- neg_infinity

(* Fail every queued and in-flight read; on leadership loss the reads
   must re-resolve against the new leader, not silently time out. *)
and fail_reads t ~reason =
  let queued = List.rev t.read_queue in
  t.read_queue <- [];
  let round_waiters =
    match t.read_round with
    | Some round ->
      (match round.rr_deadline with Some h -> Sim.Engine.cancel h | None -> ());
      t.read_round <- None;
      round.rr_waiters
    | None -> []
  in
  List.iter (fun k -> k (Error reason)) (round_waiters @ queued)

and maybe_start_read_round t =
  if
    t.role = Types.Leader && (not t.stopped) && t.read_round = None
    && t.read_queue <> []
    && committed_in_current_term t
  then begin
    let waiters = List.rev t.read_queue in
    t.read_queue <- [];
    let marks = Hashtbl.fold (fun pid p acc -> (pid, p.send_seq) :: acc) t.peers [] in
    let round =
      {
        rr_index = t.commit_index;
        rr_marks = marks;
        rr_acks = [];
        rr_waiters = waiters;
        rr_deadline = None;
      }
    in
    t.read_round <- Some round;
    Obs.Metrics.incr t.meters.m_readindex_rounds;
    Obs.Metrics.record t.meters.m_readindex_batch (float_of_int (List.length waiters));
    let deadline =
      float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval
    in
    round.rr_deadline <-
      Some
        (Sim.Clock.schedule t.clock ~delay:deadline (fun () ->
             match t.read_round with
             | Some r when r == round ->
               t.read_round <- None;
               List.iter (fun k -> k (Error "read-index round timed out")) round.rr_waiters;
               maybe_start_read_round t
             | _ -> ()));
    (* The confirmation piggybacks on the replication stream: top up
       windows (or heartbeat) now rather than waiting for the tick. *)
    replicate_all t ~allow_empty:true;
    check_read_round t round (* single-voter rings confirm immediately *)
  end

and check_read_round t round =
  match t.read_round with
  | Some r when r == round ->
    let acks = t.id :: round.rr_acks in
    if
      Quorum.data_quorum_satisfied t.params.quorum_mode (config t)
        ~leader_region:t.region ~acks
    then begin
      (match round.rr_deadline with Some h -> Sim.Engine.cancel h | None -> ());
      t.read_round <- None;
      List.iter (fun k -> k (Ok round.rr_index)) round.rr_waiters;
      maybe_start_read_round t
    end
  | _ -> ()

(* A success response from [from] to a send issued after the round
   started proves [from] still recognized this leader after the commit
   index was captured. *)
and note_read_ack t ~from ~request_seq =
  match t.read_round with
  | Some round ->
    let mark =
      match List.assoc_opt from round.rr_marks with Some m -> m | None -> max_int
    in
    if request_seq > mark && not (List.mem from round.rr_acks) then begin
      round.rr_acks <- from :: round.rr_acks;
      check_read_round t round
    end
  | None -> ()

(* Resolve a linearizable read index on the leader: the caller receives
   the commit index captured at round start once a data quorum has
   confirmed leadership after the capture (or immediately off the lease
   fast path, when valid). *)
and read_index t k =
  if t.stopped then k (Error "stopped")
  else if t.role <> Types.Leader then k (Error "not the leader")
  else if lease_valid t then begin
    (* Safety oracle: the lease just passed the node's *local* check, but
       was it still live by the engine's global clock?  A serve past
       [lease_until_global] means the drift margin failed to cover the
       injected clock fault — the exact violation the chaos campaign
       hunts.  Counted, never blocked: the checker must see the bug. *)
    if Sim.Engine.now t.engine > t.lease_until_global then begin
      t.stale_lease_serves <- t.stale_lease_serves + 1;
      Obs.Metrics.incr t.meters.m_stale_serves;
      tracef t "raft" "%s: lease read served %.0f us past global expiry" t.id
        (Sim.Engine.now t.engine -. t.lease_until_global)
    end;
    k (Ok t.commit_index)
  end
  else begin
    t.read_queue <- k :: t.read_queue;
    maybe_start_read_round t
  end

and lease_valid t =
  t.role = Types.Leader && t.params.use_leader_lease && (not t.lease_blocked)
  && committed_in_current_term t
  &&
  (* The lease is measured on this node's own clock: validity must be
     judged by the same (possibly faulty) clock, with [lease_duration]'s
     drift margin — not the engine's global time, which a real server
     cannot read.  A clock-suspect verdict suppresses the fast path until
     the suspicion window has drained. *)
  let lnow = local_now t in
  lnow >= t.clock_suspect_until && lnow < t.lease_until

(* ----- config handling (logless reconfiguration) ----- *)

(* Install a config with identity [cfg_id] as this node's current one.
   The single write path for configs from every source — leader change,
   AE gossip, vote-response gossip, snapshot metadata — so the durable
   mirror, peer table, callback and metrics stay consistent.  Callers
   must have checked the ordering ([cfg_id] strictly newer, or the
   leader's own version bump / term rewrite). *)
and install_config t ~cfg_id ~cfg ~why =
  let old = t.cfg in
  t.cfg <- cfg;
  t.cfg_id <- cfg_id;
  t.durable.d_config <- Some (cfg_id, cfg);
  Obs.Metrics.incr t.meters.m_reconfig_adoptions;
  sync_peers t;
  tracef t "raft" "%s: config %s [%s] (%s)" t.id
    (Types.cfg_id_to_string cfg_id)
    (Types.describe_config cfg) why;
  if not (Types.same_members old cfg) then begin
    t.callbacks.on_config_change cfg;
    (* Membership changed under us: re-arm (or disarm) the failover
       clock — this node may have just become, or ceased to be, a
       voter. *)
    reset_election_timer t
  end

(* Keep the leader's peer table in sync with the current config. *)
and sync_peers t =
  if t.role = Types.Leader then begin
    let cfg = config t in
    List.iter
      (fun m ->
        if m.Types.id <> t.id && not (Hashtbl.mem t.peers m.Types.id) then
          Hashtbl.replace t.peers m.Types.id
            {
              peer_id = m.Types.id;
              next_index = last_index t + 1;
              match_index = 0;
              inflight = [];
              send_seq = 0;
              rewind_seq = 0;
              delivered = 0;
              srtt = 0.0;
              ae_budget = t.params.max_bytes_per_ae;
              retransmit_timer = None;
              last_ack = local_now t;
              responded = false;
              acked_send_time = neg_infinity;
              acked_send_global = neg_infinity;
              hb_sent = [];
              offset_sample = None;
              snap = None;
              wedged = false;
              sent_commit = 0;
              hb_suppressed = 0;
              cfg_acked = Types.cfg_id_zero;
            })
      cfg.Types.members;
    let stale =
      Hashtbl.fold
        (fun pid _ acc -> if Types.is_member cfg pid then acc else pid :: acc)
        t.peers []
    in
    List.iter (Hashtbl.remove t.peers) stale
  end

(* ----- role transitions ----- *)

and step_down t ~term ~new_leader =
  let was_leader = t.role = Types.Leader in
  if term > t.durable.current_term then begin
    t.durable.current_term <- term;
    t.durable.voted_for <- None
  end;
  t.role <- Types.Follower;
  t.leader_id <- new_leader;
  t.election <- None;
  (match t.transfer with
  | Some tr ->
    Sim.Engine.cancel tr.transfer_deadline;
    t.transfer <- None
  | None -> ());
  cancel_timer t.heartbeat_timer;
  t.heartbeat_timer <- None;
  t.last_hb_tick_local <- neg_infinity;
  if was_leader then begin
    tracef t "raft" "%s: stepping down at term %d" t.id t.durable.current_term;
    (* §3.3 demotion: the lease dies with the role — a deposed leader
       must never serve another lease read — and in-flight ReadIndex
       rounds fail over to the new leader. *)
    revoke_lease t ~reason:"step-down";
    t.lease_blocked <- false;
    fail_reads t ~reason:"stepped down";
    reset_peers t;
    t.callbacks.on_step_down ()
  end;
  reset_election_timer t

and become_leader t =
  t.role <- Types.Leader;
  t.leader_id <- Some t.id;
  t.election <- None;
  t.durable.last_known_leader <- Some (t.durable.current_term, t.region);
  t.times_elected <- t.times_elected + 1;
  Obs.Metrics.incr t.meters.m_elections_won;
  if t.election_started_at > neg_infinity then begin
    Obs.Metrics.record t.meters.m_election_latency
      (Sim.Engine.now t.engine -. t.election_started_at);
    t.election_started_at <- neg_infinity
  end;
  cancel_timer t.election_timer;
  t.election_timer <- None;
  (* A new term starts with no lease and no read state; extensions
     resume from this term's own acks. *)
  t.lease_until <- neg_infinity;
  t.lease_until_global <- neg_infinity;
  t.last_hb_tick_local <- neg_infinity;
  t.lease_blocked <- false;
  fail_reads t ~reason:"new leadership term";
  reset_peers t;
  sync_peers t;
  (* Logless reconfiguration: rewrite the installed config's term to our
     own (version kept).  The rewritten identity dominates any config a
     deposed leader may have installed on a minority at a lower term, so
     gossip converges the ring on OUR config — the config-state analogue
     of the no-op below overwriting an uncommitted log tail. *)
  if t.cfg_id.Types.cfg_term <> t.durable.current_term then
    install_config t
      ~cfg_id:
        {
          Types.cfg_version = t.cfg_id.Types.cfg_version;
          cfg_term = t.durable.current_term;
        }
      ~cfg:t.cfg ~why:"election term rewrite";
  (* Assert leadership with a no-op entry; committing it consensus-commits
     the whole tail of the log (§3.3 promotion step 1). *)
  let noop_index = last_index t + 1 in
  let entry =
    Binlog.Entry.make
      ~opid:(Binlog.Opid.make ~term:t.durable.current_term ~index:noop_index)
      Binlog.Entry.Noop
  in
  t.log.append entry;
  Log_cache.put t.cache entry;
  note_append t entry;
  tracef t "raft" "%s: elected leader at term %d (noop %d)" t.id t.durable.current_term
    noop_index;
  start_heartbeats t;
  replicate_all t ~allow_empty:true;
  advance_commit t (* single-voter rings commit immediately *);
  t.callbacks.on_leader_start ~noop_index

(* Optional auto step-down (extension; see params): has a data quorum
   acknowledged this leader within the configured window? *)
and quorum_contact_recent t =
  let now = local_now t in
  let acks =
    t.id
    :: Hashtbl.fold
         (fun pid p acc ->
           if now -. p.last_ack <= t.params.auto_step_down_after then pid :: acc else acc)
         t.peers []
  in
  Quorum.data_quorum_satisfied t.params.quorum_mode (config t) ~leader_region:t.region
    ~acks

and start_heartbeats t =
  cancel_timer t.heartbeat_timer;
  let rec tick () =
    if t.role = Types.Leader && not t.stopped then begin
      (* Tick-interval watchdog: the countdown below was armed for
         [heartbeat_interval] local microseconds at the rate in effect
         then.  If the oscillator's rate changed while the tick was in
         flight, the local elapsed time measured now disagrees with what
         was requested — the one local observable a rate step cannot
         hide, and the only drift detector that still works when a
         partition is starving the ack-based cross-check. *)
      let lnow = local_now t in
      if t.last_hb_tick_local > neg_infinity then begin
        let elapsed = lnow -. t.last_hb_tick_local in
        let tol =
          max (5.0 *. Sim.Engine.ms) (0.02 *. t.params.heartbeat_interval)
        in
        if
          t.params.max_clock_drift > 0.0
          && abs_float (elapsed -. t.params.heartbeat_interval) > tol
        then suspect_clock t ~local_now:lnow ~reason:"heartbeat tick off-interval"
      end;
      t.last_hb_tick_local <- lnow;
      if
        t.params.auto_step_down_after > 0.0
        && (not (quorum_contact_recent t))
        && last_index t > t.commit_index
      then begin
        (* no data-quorum contact within the window and an uncommittable
           tail is building: abdicate instead of blocking clients *)
        tracef t "raft" "%s: auto step-down (no quorum contact)" t.id;
        step_down t ~term:t.durable.current_term ~new_leader:None
      end
      else begin
        (* Loss recovery is the per-peer retransmit timer's job now; the
           tick only tops up windows and keeps followers' failover clocks
           reset. *)
        replicate_all t ~allow_empty:true;
        t.heartbeat_timer <-
          Some (Sim.Clock.schedule t.clock ~delay:t.params.heartbeat_interval tick)
      end
    end
  in
  t.heartbeat_timer <-
    Some (Sim.Clock.schedule t.clock ~delay:t.params.heartbeat_interval tick)

(* ----- elections ----- *)

and begin_election ?(transfer = false) t ~phase =
  let cfg = config t in
  if vote_floor_blocks t (last_opid t) then
    (* Corruption recovery truncated entries this node may once have
       acked: until replication restores a log at least as up-to-date as
       the pre-truncation tail, campaigning could elect a leader whose
       log misses committed data.  Sit out; the timer re-arms. *)
    tracef t "raft" "%s: election suppressed (log below vote floor)" t.id
  else if is_voter t then begin
    let election_term =
      match phase with
      | Message.Real ->
        t.durable.current_term <- t.durable.current_term + 1;
        t.durable.voted_for <- Some t.id;
        t.durable.current_term
      | Message.Pre | Message.Mock _ -> t.durable.current_term + 1
    in
    (match phase with
    | Message.Real ->
      t.role <- Types.Candidate;
      t.elections_started <- t.elections_started + 1;
      Obs.Metrics.incr t.meters.m_elections_started;
      (* Anchor election latency at the first Real attempt of this outage;
         back-to-back retries extend the same measurement. *)
      if t.election_started_at = neg_infinity then
        t.election_started_at <- Sim.Engine.now t.engine
    | _ -> ());
    let election =
      {
        phase;
        election_term;
        votes = [ t.id ];
        auth_hint = t.durable.last_known_leader;
        vote_hint = t.durable.vote_constraint;
        mock_requester = None;
        decided = false;
      }
    in
    t.election <- Some election;
    tracef t "raft" "%s: starting %s election for term %d" t.id
      (Message.phase_to_string phase) election_term;
    let request =
      Message.Request_vote
        {
          term = election_term;
          candidate = t.id;
          candidate_region = t.region;
          last_opid = last_opid t;
          phase;
          candidate_constraint_term = constraint_term t;
          transfer;
          cfg_id = t.cfg_id;
        }
    in
    List.iter
      (fun m ->
        if m.Types.id <> t.id && m.Types.voter then t.send ~dst:m.Types.id request)
      cfg.Types.members;
    (* A single-voter ring elects itself instantly. *)
    check_election_quorum t election
  end

and begin_mock_election t ~snapshot ~requester =
  let cfg = config t in
  let election_term = t.durable.current_term + 1 in
  let election =
    {
      phase = Message.Mock { snapshot };
      election_term;
      votes = [ t.id ];
      auth_hint = t.durable.last_known_leader;
      vote_hint = t.durable.vote_constraint;
      mock_requester = Some requester;
      decided = false;
    }
  in
  t.election <- Some election;
  tracef t "raft" "%s: running mock election (snapshot %s)" t.id
    (Binlog.Opid.to_string snapshot);
  let request =
    Message.Request_vote
      {
        term = election_term;
        candidate = t.id;
        candidate_region = t.region;
        last_opid = last_opid t;
        phase = Message.Mock { snapshot };
        candidate_constraint_term = constraint_term t;
        transfer = false;
        cfg_id = t.cfg_id;
      }
  in
  List.iter
    (fun m -> if m.Types.id <> t.id && m.Types.voter then t.send ~dst:m.Types.id request)
    cfg.Types.members;
  (* Guard against vote loss: decide "failed" after a timeout. *)
  ignore
    (Sim.Clock.schedule t.clock ~delay:t.params.mock_election_timeout (fun () ->
         match t.election with
         | Some e when e.phase = Message.Mock { snapshot } && not e.decided ->
           e.decided <- true;
           t.election <- None;
           t.send ~dst:requester
             (Message.Mock_election_result
                { ok = false; target = t.id; votes = List.length e.votes })
         | _ -> ()));
  check_election_quorum t election

and best_hint a b =
  match (a, b) with
  | None, h | h, None -> h
  | Some (ta, _), Some (tb, _) -> if tb > ta then b else a

and check_election_quorum t election =
  if not election.decided then begin
    let cfg = config t in
    let satisfied =
      t.force_election_quorum
      || Quorum.election_quorum_satisfied t.params.quorum_mode cfg
           ~candidate_region:t.region
           ~last_leader:(best_hint t.durable.last_known_leader election.auth_hint)
           ~vote_constraint:(best_hint t.durable.vote_constraint election.vote_hint)
           ~votes:election.votes
    in
    if satisfied then begin
      election.decided <- true;
      match election.phase with
      | Message.Real ->
        t.election <- None;
        become_leader t
      | Message.Pre ->
        t.election <- None;
        begin_election t ~phase:Message.Real
      | Message.Mock _ ->
        t.election <- None;
        (match election.mock_requester with
        | Some requester ->
          t.send ~dst:requester
            (Message.Mock_election_result
               { ok = true; target = t.id; votes = List.length election.votes })
        | None -> ())
    end
  end

(* ----- vote handling ----- *)

and handle_request_vote t (rv : Message.request_vote) =
  let my_last = last_opid t in
  let log_ok =
    Binlog.Opid.at_least_as_up_to_date_as rv.last_opid my_last
    (* Corruption fence: this node once held (and may have acked) entries
       up to its vote floor; a candidate whose log ends below the floor
       could win without them.  Withhold until the candidate catches up. *)
    && not (vote_floor_blocks t rv.last_opid)
  in
  let now = local_now t in
  let heard_from_leader_recently =
    t.leader_id <> None
    && now -. t.last_leader_contact
       < float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval
  in
  (* FlexiRaft voting history (§4.1): never vote for a candidate whose
     constraint knowledge is staler than ours — its election quorum might
     miss a region that committed data.  The denial response carries our
     constraints, so the candidate learns and retries correctly. *)
  let history_ok = rv.candidate_constraint_term >= constraint_term t in
  (* Logless reconfiguration election restriction: never vote for a
     candidate whose installed config is strictly staler than ours — it
     could assemble a quorum of a config that was already replaced, one
     that need not overlap the quorums committing entries under the
     newer config.  The denial ships our config back (below) so the
     candidate adopts it and retries under the right membership. *)
  let config_ok = Types.cfg_id_at_least rv.cfg_id t.cfg_id in
  if not config_ok then Obs.Metrics.incr t.meters.m_reconfig_vote_denials;
  let granted =
    match rv.phase with
    | Message.Pre ->
      (* Pre-votes don't disturb state; leader stickiness applies. *)
      rv.term > t.durable.current_term && log_ok && history_ok && config_ok
      && not heard_from_leader_recently
    | Message.Mock { snapshot } ->
      (* §4.3: reject when this voter lags the leader's snapshot and sits
         in the candidate's region — it could not serve in the new data
         quorum.  Ordinary replication-pipeline distance is allowed. *)
      let in_candidate_region = t.region = rv.candidate_region in
      let lagging =
        Binlog.Opid.index snapshot - Binlog.Opid.index my_last > t.params.mock_lag_allowance
      in
      rv.term > t.durable.current_term && not (in_candidate_region && lagging)
    | Message.Real ->
      if rv.term > t.durable.current_term then step_down t ~term:rv.term ~new_leader:None;
      rv.term = t.durable.current_term && log_ok && history_ok && config_ok
      && (t.durable.voted_for = None || t.durable.voted_for = Some rv.candidate)
      (* Leader stickiness applies to Real votes too, not just Pre.  The
         lease-safety argument needs it: a voter that recently acked the
         leader stays sticky for missed_heartbeats·hb, which outlasts the
         drift-margined lease anchored at that ack — so no election
         quorum (which must intersect the lease's data quorum) can seat
         a new leader while the old lease is live.  Pre-vote alone does
         not give this: a forced election (chaos storm, or any path that
         skips Pre) goes straight to Real.  TimeoutNow-initiated
         transfers are exempt — the initiating leader already voided its
         lease — otherwise handoff to a freshly-heartbeaten target would
         deadlock. *)
      && (rv.transfer || not heard_from_leader_recently)
  in
  (match rv.phase with
  | Message.Real when granted ->
    t.durable.voted_for <- Some rv.candidate;
    (* Voting history: the candidate may win, so its (term, region) is
       now a possible data-quorum location future elections must
       intersect. *)
    (match t.durable.vote_constraint with
    | Some (term, _) when term >= rv.term -> ()
    | _ -> t.durable.vote_constraint <- Some (rv.term, rv.candidate_region));
    (* Granting a real vote fences the erstwhile leader's view and resets
       our failover clock. *)
    if t.role = Types.Leader then step_down t ~term:rv.term ~new_leader:None;
    reset_election_timer t
  | _ -> ());
  (match rv.phase with
  | Message.Real ->
    Obs.Metrics.incr
      (if granted then t.meters.m_votes_granted else t.meters.m_votes_rejected)
  | _ -> ());
  t.send ~dst:rv.candidate
    (Message.Request_vote_response
       {
         term = t.durable.current_term;
         from = t.id;
         granted;
         phase = rv.phase;
         last_known_leader = t.durable.last_known_leader;
         vote_constraint = t.durable.vote_constraint;
         cfg =
           (if Types.cfg_id_newer t.cfg_id rv.cfg_id then Some (t.cfg_id, t.cfg)
            else None);
       })

and handle_vote_response t (vr : Message.vote_response) =
  if vr.term > t.durable.current_term then step_down t ~term:vr.term ~new_leader:None
  else begin
    (* Config gossip on the vote path: a denial from a newer-config voter
       carries the config; adopt it.  If we are no longer a voter under
       it, the candidacy was illegitimate — stand down instead of
       spamming a ring that has moved on. *)
    (match vr.cfg with
    | Some (cid, cfg) when Types.cfg_id_newer cid t.cfg_id ->
      install_config t ~cfg_id:cid ~cfg ~why:("vote gossip from " ^ vr.from);
      if not (is_voter t) then begin
        t.election <- None;
        if t.role = Types.Candidate then t.role <- Types.Follower
      end
    | _ -> ());
    match t.election with
    | Some election when election.phase = vr.phase && not election.decided ->
      election.auth_hint <- best_hint election.auth_hint vr.last_known_leader;
      election.vote_hint <- best_hint election.vote_hint vr.vote_constraint;
      if vr.granted && not (List.mem vr.from election.votes) then begin
        election.votes <- vr.from :: election.votes;
        check_election_quorum t election
      end
    | _ -> ()
  end

(* ----- append entries (follower side) ----- *)

and handle_append_entries t ~src:_ (ae : Message.append_entries) =
  (* Responses retrace the proxy route back to the leader (§4.2.1). *)
  let reply response =
    send_routed t ~hops:ae.reply_route ~final:ae.leader_id
      (Message.Append_entries_response response)
  in
  if ae.term < t.durable.current_term then begin
    Obs.Metrics.incr t.meters.m_ae_rejected;
    reply
      {
        Message.term = t.durable.current_term;
        from = t.id;
        success = false;
        last_log_index = last_index t;
        last_appended_index = last_index t;
        request_seq = ae.seq;
        cfg_id = t.cfg_id;
        follower_time = local_now t;
      }
  end
  else begin
    if ae.term > t.durable.current_term || t.role <> Types.Follower then
      step_down t ~term:ae.term ~new_leader:(Some ae.leader_id);
    t.leader_id <- Some ae.leader_id;
    t.last_leader_contact <- local_now t;
    (match t.durable.last_known_leader with
    | Some (term, _) when term >= ae.term -> ()
    | _ -> t.durable.last_known_leader <- Some (ae.term, ae.leader_region));
    reset_election_timer t;
    (* Logless config gossip: adopt a strictly newer config before the
       prev check — membership is orthogonal to log matching, and the
       reply's [cfg_id] echo must reflect what we now hold either way. *)
    (match ae.cfg with
    | Some cfg when Types.cfg_id_newer ae.cfg_id t.cfg_id ->
      install_config t ~cfg_id:ae.cfg_id ~cfg ~why:("gossip from " ^ ae.leader_id)
    | _ -> ());
    let prev = ae.prev_opid in
    let prev_index = Binlog.Opid.index prev in
    let ok_prev =
      prev_index <= last_index t
      && t.log.term_at prev_index = Some (Binlog.Opid.term prev)
    in
    if not ok_prev then begin
      Obs.Metrics.incr t.meters.m_ae_rejected;
      let hint = if prev_index > last_index t then last_index t else prev_index - 1 in
      reply
        {
          Message.term = t.durable.current_term;
          from = t.id;
          success = false;
          last_log_index = max 0 hint;
          last_appended_index = last_index t;
          request_seq = ae.seq;
          cfg_id = t.cfg_id;
          follower_time = local_now t;
        }
    end
    else begin
      let entries =
        match ae.payload with
        | Message.Entries entries -> entries
        | Message.Refs _ ->
          (* A PROXY_OP reached a final destination un-reconstituted; treat
             as a heartbeat (degraded, §4.2.1). *)
          [||]
      in
      let appended = ref [] in
      let apply_entries () =
        Array.iter
          (fun entry ->
            let idx = Binlog.Entry.index entry in
            let have = t.log.term_at idx in
            match have with
            | Some term when term = Binlog.Entry.term entry -> () (* already have it *)
            | Some _ ->
              (* Conflicting suffix: truncate, clean up GTIDs (§3.3
                 demotion step 4), then append.  Configs are log-free
                 state now — truncation does not touch them. *)
              let removed = t.log.truncate_from idx in
              Log_cache.truncate_from t.cache ~index:idx;
              if removed <> [] then t.callbacks.on_truncated removed;
              t.log.append entry;
              Log_cache.put t.cache entry;
              note_append t entry;
              appended := entry :: !appended
            | None ->
              if idx = last_index t + 1 then begin
                t.log.append entry;
                Log_cache.put t.cache entry;
                note_append t entry;
                appended := entry :: !appended
              end)
          entries
      in
      (* Coalesce the batch's appends into one fsync (group commit); the
         durable index read for the reply below covers the whole batch. *)
      if Array.length entries = 0 then apply_entries ()
      else t.log.run_batched apply_entries;
      let appended = List.rev !appended in
      if appended <> [] then t.callbacks.on_entries_appended appended;
      (* How far THIS request verified our log matches the leader's: the
         prev check plus the entries it carried.  The raw log tail is
         not usable in anything below — after a leadership change it may
         hold a stale-term suffix awaiting truncation, and an old
         leader's divergent entries must never be committed or anchor
         freshness just because a new leader's heartbeat (anchored at a
         low match_index) happened to carry a high commit index. *)
      let confirmed = prev_index + Array.length entries in
      (* Staleness anchor for bounded reads: once our VERIFIED prefix
         covers the leader's tail as of [leader_time], every write acked
         before that instant (index <= commit_index) is in our log; the
         engine catches up to [commit_index] to actually serve it. *)
      if confirmed >= ae.leader_last_index && ae.leader_time > fst t.freshness then
        t.freshness <- (ae.leader_time, ae.commit_index);
      let new_commit = min ae.commit_index confirmed in
      if new_commit > t.commit_index then begin
        let prev_commit = t.commit_index in
        t.commit_index <- new_commit;
        note_commit t ~from_index:(prev_commit + 1) ~to_index:new_commit;
        t.callbacks.on_commit_advance ~commit_index:new_commit
      end;
      reply
        {
          Message.term = t.durable.current_term;
          from = t.id;
          success = true;
          (* Ack only the durable prefix: an fsync-stalled follower must
             not let the leader commit on entries a crash could tear off. *)
          last_log_index = t.log.durable_index ();
          (* Deliberately [confirmed], never the raw log tail — a
             leftover stale-term suffix beyond what the request covered
             must not look like an ack. *)
          last_appended_index = confirmed;
          request_seq = ae.seq;
          cfg_id = t.cfg_id;
          follower_time = local_now t;
        }
    end
  end

and handle_append_response t (r : Message.append_response) =
  if r.term > t.durable.current_term then step_down t ~term:r.term ~new_leader:None
  else if t.role = Types.Leader then
    match Hashtbl.find_opt t.peers r.from with
    | None -> ()
    | Some peer ->
      let now = local_now t in
      peer.last_ack <- now;
      peer.responded <- true;
      (* Config gossip bookkeeping: success or failure, the response says
         which config the peer holds — newest wins, and once it matches
         ours the AE stream stops attaching the membership body. *)
      if Types.cfg_id_newer r.cfg_id peer.cfg_acked then peer.cfg_acked <- r.cfg_id;
      (* Quorum clock cross-check: between two acks from the same peer,
         the interval measured on our clock and the interval between the
         peer's reply stamps must agree to within twice the configured
         drift spec (either clock may drift) plus scheduling slack.  A
         leader whose oscillator runs outside spec relative to its quorum
         sees every peer disagree with it and must stop trusting lease
         intervals it measured itself.  This is the detector that catches
         steady-state over-spec drift, which no local observation can. *)
      if t.params.max_clock_drift > 0.0 then begin
        (match peer.offset_sample with
        | Some (prev_ft, prev_local) when now > prev_local +. 1.0 ->
          let d_local = now -. prev_local in
          let d_peer = r.follower_time -. prev_ft in
          let allowed =
            (2.0 *. t.params.max_clock_drift *. d_local) +. (5.0 *. Sim.Engine.ms)
          in
          if abs_float (d_peer -. d_local) > allowed then
            suspect_clock t ~local_now:now ~reason:"clock rate disagrees with quorum"
        | _ -> ());
        peer.offset_sample <- Some (r.follower_time, now)
      end;
      if r.success then begin
        (* RTT sample when the answered send is still in the window. *)
        (match List.find_opt (fun f -> f.if_seq = r.request_seq) peer.inflight with
        | Some f ->
          let rtt = now -. f.if_sent_at in
          if peer.srtt <= 0.0 then peer.srtt <- rtt
          else peer.srtt <- (0.8 *. peer.srtt) +. (0.2 *. rtt);
          (* Ack latency inflating well past the smoothed RTT means the
             peer (or path) is congested: back the batch size off. *)
          if rtt > 4.0 *. peer.srtt then shrink_budget peer
        | None -> ());
        (* Recover the acked send's send time (windowed entry AE or
           remembered heartbeat) for the lease computation.  The local and
           global stamps of the same send event travel in lockstep: the
           local one feeds the lease, the global twin feeds the
           stale-by-global-time oracle. *)
        (match
           List.find_opt (fun f -> f.if_seq = r.request_seq) peer.inflight
         with
        | Some f ->
          if f.if_sent_at > peer.acked_send_time then begin
            peer.acked_send_time <- f.if_sent_at;
            peer.acked_send_global <- f.if_sent_global
          end
        | None -> (
          match List.find_opt (fun (seq, _, _) -> seq = r.request_seq) peer.hb_sent with
          | Some (_, sent_local, sent_global) ->
            if sent_local > peer.acked_send_time then begin
              peer.acked_send_time <- sent_local;
              peer.acked_send_global <- sent_global
            end;
            peer.hb_sent <-
              List.filter (fun (seq, _, _) -> seq > r.request_seq) peer.hb_sent
          | None -> ()));
        extend_lease t;
        note_read_ack t ~from:r.from ~request_seq:r.request_seq;
        (* [last_appended_index] says how far this response confirmed the
           follower matches our log; cumulative across responses it
           retires every fully-covered send, tolerating response loss,
           duplication and reordering. *)
        if r.last_appended_index > peer.delivered then
          peer.delivered <- r.last_appended_index;
        let retired, still =
          List.partition (fun f -> f.if_last <= peer.delivered) peer.inflight
        in
        peer.inflight <- still;
        if still = [] then cancel_retransmit peer;
        update_window_gauge t;
        if List.exists (fun f -> f.if_seq = r.request_seq) still then begin
          (* Success that leaves its own send outstanding: the payload
             never arrived (PROXY_OP degraded to a heartbeat en route).
             Replay the window from its start now rather than waiting out
             the retransmit timer. *)
          let first = List.fold_left (fun acc f -> min acc f.if_first) max_int still in
          drain_window t peer;
          peer.rewind_seq <- peer.send_seq;
          peer.next_index <- max (peer.match_index + 1) first;
          shrink_budget peer
        end
        else if retired <> [] then grow_budget t peer;
        (* Commit-countable ack = durable AND confirmed matching. *)
        let ack = min r.last_log_index peer.delivered in
        if ack > peer.match_index then peer.match_index <- ack;
        advance_commit t;
        check_transfer_progress t;
        replicate_to t peer ~allow_empty:false
      end
      else if r.request_seq > peer.rewind_seq then begin
        (* Nack: the follower diverges before the window.  Drain it and
           fence the outstanding seqs — the cascade of failures the same
           divergence produces for every in-flight AE must rewind only
           once — then step back and re-probe. *)
        Obs.Metrics.incr t.meters.m_nacks;
        drain_window t peer;
        peer.rewind_seq <- peer.send_seq;
        (* A follower whose advertised log end sits below its recorded
           match has REGRESSED: crash recovery truncated entries this
           leader had already confirmed matching (torn tail, or the
           corruption scan's truncate-and-refetch).  The monotonicity
           assumption behind [match_index] is void for such a peer — if
           the rewind stays clamped above its log end, every re-probe
           anchors at an index the follower no longer has and
           replication wedges forever.  Dropping the match to the
           surviving prefix is safe: truncation only removes suffixes,
           so everything at or below the new log end was confirmed
           matching before and still is. *)
        if r.last_log_index < peer.match_index then begin
          Obs.Metrics.incr t.meters.m_regressions;
          tracef t "raft" "%s: %s log regressed to %d (match was %d); resetting match"
            t.id r.from r.last_log_index peer.match_index;
          peer.match_index <- r.last_log_index;
          peer.delivered <- min peer.delivered r.last_log_index
        end;
        peer.next_index <-
          max (peer.match_index + 1)
            (max 1 (min (peer.next_index - 1) (r.last_log_index + 1)));
        shrink_budget peer;
        replicate_to t peer ~allow_empty:true
      end

(* ----- snapshot shipping (InstallSnapshot) ----- *)

(* The purged-hole wedge: binlog purge removed the prefix this peer still
   needs, so no AppendEntries prev anchor below the boundary can be
   constructed and ordinary replication is stuck forever — the bug this
   subsystem exists to fix.  Count the episode once and try to rescue
   with an engine-checkpoint install. *)
(* Same liveness notion as the safe-purge floor: a peer that acked
   within twice the failure-detection window is assumed reachable. *)
and peer_recently_acked t peer =
  let grace =
    2.0 *. float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval
  in
  local_now t -. peer.last_ack <= grace

and note_purge_wedge t peer =
  if t.role = Types.Leader && peer.next_index < t.log.purged_below () then begin
    if not peer.wedged then begin
      peer.wedged <- true;
      Obs.Metrics.incr t.meters.m_purge_wedges;
      tracef t "raft" "%s: %s wedged behind purge boundary %d (next_index %d)" t.id
        peer.peer_id
        (t.log.purged_below ())
        peer.next_index
    end;
    (* Only ship a checkpoint to a peer that has recently answered:
       starting a transfer toward a presumed-down peer freezes the
       boundary at today's state, and by the time the peer returns the
       stale image forces it to replay everything committed since.
       Probing instead means the rescue starts on the peer's first
       contact, with a checkpoint taken at that moment. *)
    if peer_recently_acked t peer then maybe_install_snapshot t peer;
    (* If no transfer is running (peer presumed down, or no checkpoint
       source), keep contact: a wedged peer gets neither entries nor
       ordinary heartbeats (no prev anchor exists below the boundary),
       and a live one would otherwise start elections.  The probe's
       nack refreshes [last_ack], arming the next wedge check. *)
    if peer.snap = None then probe_wedged_peer t peer
  end

(* Empty AppendEntries anchored at the purge boundary — the lowest index
   whose term the compacted log still answers.  A peer behind the
   boundary nacks it (keeping the exchange alive); a peer whose frontier
   was only spuriously rewound confirms it and unwedges. *)
and probe_wedged_peer t peer =
  let boundary = t.log.purged_below () - 1 in
  match t.log.term_at boundary with
  | None -> ()
  | Some prev_term ->
    peer.send_seq <- peer.send_seq + 1;
    let now = local_now t in
    let keep = (2 * t.params.max_inflight_aes) + 8 in
    peer.hb_sent <-
      (peer.send_seq, now, Sim.Engine.now t.engine)
      :: List.filteri (fun i _ -> i < keep) peer.hb_sent;
    Obs.Metrics.incr t.meters.m_heartbeats_sent;
    t.send ~dst:peer.peer_id
      (Message.Append_entries
         {
           Message.term = t.durable.current_term;
           leader_id = t.id;
           leader_region = t.region;
           prev_opid = Binlog.Opid.make ~term:prev_term ~index:boundary;
           payload = Message.Entries [||];
           commit_index = t.commit_index;
           seq = peer.send_seq;
           reply_route = [];
           leader_time = now;
           leader_last_index = last_index t;
           cfg_id = t.cfg_id;
           cfg = gossip_body t peer;
         })

and maybe_install_snapshot t peer =
  if t.role = Types.Leader && (not t.stopped) && peer.snap = None then begin
    match t.callbacks.take_snapshot () with
    | None ->
      (* No checkpoint source (witness leader, or the embedder declined):
         the wedge stays detectable through raft.purge_wedges. *)
      ()
    | Some snapshot
      when Binlog.Opid.index (Snapshot.last snapshot) < t.log.purged_below () - 1 ->
      (* The checkpoint ends below the purge boundary; installing it
         would leave the same hole between checkpoint and log. *)
      tracef t "raft" "%s: checkpoint %s cannot cover purge boundary %d" t.id
        (Binlog.Opid.to_string (Snapshot.last snapshot))
        (t.log.purged_below ())
    | Some snapshot ->
      Obs.Metrics.incr t.meters.m_snapshots_taken;
      t.next_snapshot_id <- t.next_snapshot_id + 1;
      let xfer =
        { sx_id = t.next_snapshot_id; sx_snapshot = snapshot; sx_acked = 0; sx_timer = None }
      in
      (* Entry replication to this peer pauses: drain its window so a
         late ack cannot move the frontier mid-install. *)
      drain_window t peer;
      peer.rewind_seq <- peer.send_seq;
      peer.snap <- Some xfer;
      tracef t "raft" "%s: installing %s on %s (#%d)" t.id
        (Snapshot.describe snapshot)
        peer.peer_id xfer.sx_id;
      send_snapshot_chunk t peer xfer
  end

(* Is this exact transfer still the live one for this exact peer record?
   Leadership and membership changes reset the peer table, so timers must
   re-validate both identities before acting. *)
and snap_live t peer xfer =
  (not t.stopped)
  && t.role = Types.Leader
  && (match Hashtbl.find_opt t.peers peer.peer_id with
     | Some p -> p == peer
     | None -> false)
  && (match peer.snap with Some x -> x == xfer | None -> false)

and send_snapshot_chunk t peer xfer =
  if snap_live t peer xfer then begin
    let snapshot = xfer.sx_snapshot in
    let chunk =
      Snapshot.chunk snapshot ~offset:xfer.sx_acked
        ~max_bytes:t.params.snapshot_chunk_bytes
    in
    Obs.Metrics.incr t.meters.m_snapshot_chunks_sent;
    Obs.Metrics.add t.meters.m_snapshot_bytes_sent (String.length chunk);
    t.send ~dst:peer.peer_id
      (Message.Install_snapshot
         {
           term = t.durable.current_term;
           leader_id = t.id;
           snapshot_id = xfer.sx_id;
           meta = Snapshot.meta snapshot;
           offset = xfer.sx_acked;
           chunk;
         });
    (* Stop-and-wait: one chunk outstanding per transfer.  A lost chunk
       or ack is resent from the acked offset after the timeout. *)
    cancel_snap_timer xfer;
    xfer.sx_timer <-
      Some
        (Sim.Clock.schedule t.clock ~delay:t.params.snapshot_retransmit_timeout
           (fun () ->
             xfer.sx_timer <- None;
             if snap_live t peer xfer then begin
               Obs.Metrics.incr t.meters.m_snapshot_retransmits;
               send_snapshot_chunk t peer xfer
             end))
  end

and handle_install_snapshot_response t (r : Message.install_snapshot_response) =
  if r.term > t.durable.current_term then step_down t ~term:r.term ~new_leader:None
  else if t.role = Types.Leader then
    match Hashtbl.find_opt t.peers r.from with
    | None -> ()
    | Some peer -> (
      match peer.snap with
      | Some xfer when xfer.sx_id = r.snapshot_id ->
        peer.last_ack <- local_now t;
        peer.responded <- true;
        if not r.success then begin
          (* Checksum failure or refusal: drop the transfer.  If the peer
             is still wedged, the next replication attempt starts a fresh
             one from a fresh checkpoint. *)
          Obs.Metrics.incr t.meters.m_snapshot_aborts;
          cancel_snap_timer xfer;
          peer.snap <- None;
          tracef t "raft" "%s: snapshot #%d to %s aborted by follower" t.id xfer.sx_id
            r.from
        end
        else begin
          let total = Snapshot.size xfer.sx_snapshot in
          if r.received_through >= total then begin
            (* Installed: the follower holds the engine state and an
               empty (or matching) log tail at the boundary; resume
               ordinary replication from just above it.  The boundary
               counts toward commit — the checkpoint covers applied,
               committed state, now durably on the follower. *)
            cancel_snap_timer xfer;
            peer.snap <- None;
            peer.wedged <- false;
            let b = Binlog.Opid.index (Snapshot.last xfer.sx_snapshot) in
            peer.next_index <- b + 1;
            peer.match_index <- max peer.match_index b;
            peer.delivered <- max peer.delivered b;
            Obs.Metrics.incr t.meters.m_snapshots_sent;
            tracef t "raft" "%s: snapshot #%d installed on %s (boundary %d)" t.id
              xfer.sx_id r.from b;
            advance_commit t;
            replicate_to t peer ~allow_empty:true
          end
          else begin
            if r.received_through > xfer.sx_acked then
              xfer.sx_acked <- r.received_through;
            (* Pace the stream so a bulk install cannot monopolize the
               link the entry-AE pipeline shares. *)
            let delay =
              if t.params.snapshot_rate_bytes_per_s <= 0.0 then 1.0
              else
                float_of_int t.params.snapshot_chunk_bytes
                /. t.params.snapshot_rate_bytes_per_s *. Sim.Engine.s
            in
            cancel_snap_timer xfer;
            xfer.sx_timer <-
              Some
                (Sim.Clock.schedule t.clock ~delay (fun () ->
                     xfer.sx_timer <- None;
                     send_snapshot_chunk t peer xfer))
          end
        end
      | _ -> ())

(* ----- snapshot receipt (follower side) ----- *)

and handle_install_snapshot t (is : Message.install_snapshot) =
  let reply success received_through =
    t.send ~dst:is.leader_id
      (Message.Install_snapshot_response
         {
           term = t.durable.current_term;
           from = t.id;
           snapshot_id = is.snapshot_id;
           received_through;
           success;
         })
  in
  if is.term < t.durable.current_term then reply false 0
  else begin
    (* Same authority rules as AppendEntries: the sender is this term's
       live leader, so adopt it and hold elections off. *)
    if is.term > t.durable.current_term || t.role <> Types.Follower then
      step_down t ~term:is.term ~new_leader:(Some is.leader_id);
    t.leader_id <- Some is.leader_id;
    t.last_leader_contact <- local_now t;
    reset_election_timer t;
    let last = is.meta.Snapshot.last in
    let boundary = Binlog.Opid.index last in
    if t.log.term_at boundary = Some (Binlog.Opid.term last) then
      (* Our log already matches through the boundary: nothing to
         install (duplicate transfer, or we caught up in the interim).
         A full ack completes the leader's transfer. *)
      reply true is.meta.Snapshot.total_bytes
    else begin
      let pi =
        match t.pending_install with
        | Some pi when pi.pi_id = is.snapshot_id && pi.pi_leader = is.leader_id -> pi
        | _ ->
          let pi =
            {
              pi_leader = is.leader_id;
              pi_id = is.snapshot_id;
              pi_meta = is.meta;
              pi_buf = Buffer.create (max 64 is.meta.Snapshot.total_bytes);
            }
          in
          t.pending_install <- Some pi;
          pi
      in
      let have = Buffer.length pi.pi_buf in
      (* In-order chunk: append.  Duplicate or gap: just re-ack the
         contiguous prefix; the stop-and-wait sender resumes from it. *)
      if is.offset = have then Buffer.add_string pi.pi_buf is.chunk;
      let have = Buffer.length pi.pi_buf in
      if have >= is.meta.Snapshot.total_bytes then begin
        t.pending_install <- None;
        let data = Buffer.contents pi.pi_buf in
        if not (Snapshot.verify_data pi.pi_meta data) then begin
          (* Corrupted in transit (or a mixed-up transfer): refuse, which
             aborts the leader's transfer and lets it restart cleanly. *)
          Obs.Metrics.incr t.meters.m_snapshot_aborts;
          tracef t "raft" "%s: snapshot #%d failed verification; refusing" t.id
            is.snapshot_id;
          reply false 0
        end
        else begin
          finish_install t ~meta:pi.pi_meta ~data;
          reply true have
        end
      end
      else reply true have
    end
  end

(* Apply a complete, verified snapshot: rebase the log at the boundary,
   splice the membership history, restore the engine, and advance the
   commit index over the prefix that no longer exists. *)
and finish_install t ~meta ~data =
  let last = meta.Snapshot.last in
  let b = Binlog.Opid.index last in
  tracef t "raft" "%s: installing snapshot at %s (%d bytes)" t.id
    (Binlog.Opid.to_string last) (String.length data);
  (* A conflicting tail dropped by the rebase gets the same §3.3-step-4
     cleanup a truncation does. *)
  let removed = t.log.install_snapshot ~last ~gtids:meta.Snapshot.gtids in
  Log_cache.truncate_from t.cache ~index:1;
  if removed <> [] then t.callbacks.on_truncated removed;
  (* Logless reconfiguration: the snapshot carries the config identity
     as of the boundary; ordinary newest-wins ordering decides adoption
     (a node restored from an old checkpoint must not regress a config
     it already held). *)
  if Types.cfg_id_newer meta.Snapshot.cfg_id t.cfg_id then
    install_config t ~cfg_id:meta.Snapshot.cfg_id ~cfg:meta.Snapshot.config
      ~why:"snapshot install";
  t.callbacks.install_snapshot ~snapshot:{ Snapshot.meta; data };
  Obs.Metrics.incr t.meters.m_snapshots_installed;
  (* Everything the checkpoint covers is committed by definition. *)
  if b > t.commit_index then begin
    let prev = t.commit_index in
    t.commit_index <- b;
    note_commit t ~from_index:(prev + 1) ~to_index:b;
    t.callbacks.on_commit_advance ~commit_index:b
  end;
  (* The restored state is at least as up-to-date as anything this node
     ever acked below the boundary: a post-corruption vote floor at or
     below the tail is satisfied. *)
  match t.vote_floor with
  | Some fl when Binlog.Opid.at_least_as_up_to_date_as (last_opid t) fl ->
    t.vote_floor <- None
  | _ -> ()

(* ----- leadership transfer (§2.2 promotion + §4.3 mock elections) ----- *)

and abort_transfer t ~reason =
  match t.transfer with
  | None -> ()
  | Some tr ->
    Sim.Engine.cancel tr.transfer_deadline;
    t.transfer <- None;
    (* The transfer died before TimeoutNow went out: no election was
       enabled to bypass a timeout, so lease extensions may resume. *)
    t.lease_blocked <- false;
    tracef t "raft" "%s: transfer to %s aborted: %s" t.id tr.transfer_target reason;
    if tr.quiesced then t.callbacks.on_transfer_aborted ~reason

and start_transfer_catchup t tr =
  (* Quiesce: stop accepting client writes, then push the target to the
     tail of the log and fire TimeoutNow. *)
  tr.quiesced <- true;
  t.callbacks.on_quiesce ();
  (match Hashtbl.find_opt t.peers tr.transfer_target with
  | Some peer -> replicate_to t peer ~allow_empty:true
  | None -> ());
  check_transfer_progress t

and check_transfer_progress t =
  match t.transfer with
  | Some tr when tr.quiesced && t.role = Types.Leader -> (
    match Hashtbl.find_opt t.peers tr.transfer_target with
    | Some peer when peer.match_index >= last_index t ->
      tracef t "raft" "%s: target %s caught up; sending TimeoutNow" t.id tr.transfer_target;
      t.send ~dst:tr.transfer_target (Message.Timeout_now { term = t.durable.current_term });
      Sim.Engine.cancel tr.transfer_deadline;
      t.transfer <- None
    | _ -> ())
  | _ -> ()

let transfer_leadership t ~target =
  if t.role <> Types.Leader then Error "not the leader"
  else if target = t.id then Error "cannot transfer to self"
  else
    match Types.find_member (config t) target with
    | None -> Error "target is not a member"
    | Some m when not m.Types.voter -> Error "target is not a voter"
    | Some _ ->
      if t.transfer <> None then Error "transfer already in progress"
      else begin
        let deadline =
          Sim.Clock.schedule t.clock ~delay:t.params.transfer_timeout (fun () ->
              abort_transfer t ~reason:"timeout")
        in
        let tr = { transfer_target = target; quiesced = false; transfer_deadline = deadline } in
        t.transfer <- Some tr;
        (* LeaseGuard: the mock election / TimeoutNow path lets the
           target win without waiting out an election timeout, voiding
           the timing argument behind the lease.  Revoke it and block
           re-extension for the span of the transfer; it stays blocked
           after TimeoutNow fires until the new term is observed. *)
        t.lease_blocked <- true;
        revoke_lease t ~reason:"leadership transfer";
        if t.params.use_mock_elections then begin
          tracef t "raft" "%s: mock election on %s before transfer" t.id target;
          t.send ~dst:target
            (Message.Run_mock_election
               { term = t.durable.current_term; snapshot = last_opid t; requester = t.id })
        end
        else start_transfer_catchup t tr;
        Ok ()
      end

let handle_mock_result t (ok, target) =
  match t.transfer with
  | Some tr when tr.transfer_target = target && not tr.quiesced ->
    if ok then start_transfer_catchup t tr
    else abort_transfer t ~reason:"mock election failed"
  | _ -> ()

(* ----- client/API operations ----- *)

let client_append t payload =
  if t.role <> Types.Leader then Error "not the leader"
  else begin
    let opid =
      Binlog.Opid.make ~term:t.durable.current_term ~index:(last_index t + 1)
    in
    let entry = Binlog.Entry.make ~opid payload in
    t.log.append entry;
    Log_cache.put t.cache entry;
    note_append t entry;
    replicate_all t ~allow_empty:false;
    advance_commit t;
    Ok opid
  end

(* C1 (config commitment): a data quorum of the CURRENT config holds the
   current config in the current term.  Until it does, the previous
   config may still be live on a quorum and a further change could strand
   the ring between two non-overlapping memberships. *)
let config_committed t =
  t.role = Types.Leader
  && t.cfg_id.Types.cfg_term = t.durable.current_term
  &&
  let acks =
    t.id
    :: Hashtbl.fold
         (fun pid p acc ->
           if Types.cfg_id_at_least p.cfg_acked t.cfg_id then pid :: acc else acc)
         t.peers []
  in
  Quorum.data_quorum_satisfied t.params.quorum_mode t.cfg ~leader_region:t.region ~acks

(* C2 (oplog commitment overlap): everything committed in the current
   term is already replicated to a data quorum of the NEW config, so no
   committed entry depends on a quorum the new config cannot reproduce. *)
let oplog_covers t new_config =
  committed_in_current_term t
  &&
  let n = t.commit_index in
  let acks =
    (if t.log.durable_index () >= n then [ t.id ] else [])
    @ Hashtbl.fold
        (fun pid p acc -> if p.match_index >= n then pid :: acc else acc)
        t.peers []
  in
  Quorum.data_quorum_satisfied t.params.quorum_mode new_config ~leader_region:t.region
    ~acks

let change_membership t new_config ~description =
  let ids = Types.member_ids new_config in
  if t.role <> Types.Leader then Error "not the leader"
  else if not (config_committed t) then
    Error "a membership change is already in progress"
  else if Types.voters new_config = [] then Error "new config has no voters"
  else if List.length (List.sort_uniq compare ids) <> List.length ids then
    Error "duplicate member ids"
  else
    match Types.find_member new_config t.id with
    | None -> Error "leader cannot remove itself (transfer first)"
    | Some m when not m.Types.voter ->
      Error "leader cannot demote itself (transfer first)"
    | Some _ ->
      if not (oplog_covers t new_config) then
        Error "current-term commits not yet covered by a quorum of the new config"
      else begin
        let cfg_id =
          {
            Types.cfg_version = t.cfg_id.Types.cfg_version + 1;
            cfg_term = t.durable.current_term;
          }
        in
        Obs.Metrics.incr t.meters.m_reconfig_changes;
        install_config t ~cfg_id ~cfg:new_config ~why:description;
        (* Gossip immediately: the change "commits" (C1 for the *next*
           change) once a quorum of the new config acks this identity. *)
        replicate_all t ~allow_empty:true;
        Ok cfg_id
      end

let add_member t member =
  let cfg = config t in
  if Types.is_member cfg member.Types.id then Error "already a member"
  else
    change_membership t
      { Types.members = cfg.Types.members @ [ member ] }
      ~description:("add " ^ Types.describe_member member)

let remove_member t member_id =
  let cfg = config t in
  if member_id = t.id then Error "leader cannot remove itself (transfer first)"
  else if not (Types.is_member cfg member_id) then Error "not a member"
  else
    change_membership t
      { Types.members = List.filter (fun m -> m.Types.id <> member_id) cfg.Types.members }
      ~description:("remove " ^ member_id)

let promote_learner t member_id =
  let cfg = config t in
  match Types.find_member cfg member_id with
  | None -> Error "not a member"
  | Some m when m.Types.voter -> Error "already a voter"
  | Some m ->
    let members =
      List.map
        (fun x -> if x.Types.id = member_id then { m with Types.voter = true } else x)
        cfg.Types.members
    in
    change_membership t { Types.members } ~description:("promote " ^ member_id)

let demote_voter t member_id =
  let cfg = config t in
  match Types.find_member cfg member_id with
  | None -> Error "not a member"
  | Some m when not m.Types.voter -> Error "already a learner"
  | Some m ->
    let members =
      List.map
        (fun x -> if x.Types.id = member_id then { m with Types.voter = false } else x)
        cfg.Types.members
    in
    change_membership t { Types.members } ~description:("demote " ^ member_id)

(* Chain an additional observer behind whatever the embedder already
   wired: config events fan out to the state machine first, then to
   late subscribers (shard router caches, healers, tests). *)
let subscribe_config_change t f =
  let prev = t.callbacks.on_config_change in
  t.callbacks.on_config_change <- (fun cfg -> prev cfg; f cfg)

(* Derived, never stored: a change is "pending" while its config has not
   yet been acknowledged by a quorum of itself in the current term.  A
   leader crash mid-reconfig therefore cannot wedge the successor — the
   new leader's term rewrite starts a fresh commitment cycle, and a
   demoted or restarted node reports false (it is not the leader). *)
let has_pending_config_change t = t.role = Types.Leader && not (config_committed t)

let trigger_election t =
  if t.role <> Types.Leader && is_voter t then begin_election t ~phase:Message.Real

(* Region watermark: the highest log index known to have reached at least
   one member of [region]; the purge heuristics of §A.1 take the minimum
   across regions so a file is only purged once shipped out of every
   region. *)
let region_watermark t ~region:r =
  if t.role <> Types.Leader then 0
  else
    Hashtbl.fold
      (fun pid p acc ->
        match Types.find_member (config t) pid with
        | Some m when m.Types.region = r -> max acc p.match_index
        | _ -> acc)
      t.peers
      (if t.region = r then last_index t else 0)

let safe_purge_index t =
  if t.role <> Types.Leader then 0
  else begin
    (* §A.1 region watermarks: a file may only go once its contents have
       been shipped into every voter region. *)
    let regions = Types.regions_with_voters (config t) in
    let watermark =
      List.fold_left (fun acc r -> min acc (region_watermark t ~region:r)) max_int regions
    in
    (* Cluster-wide floor: learners and other non-voting members tail
       this log too, and the region watermarks ignore them — purging past
       a live peer's confirmed prefix (or under the base of its in-flight
       window) wedges it behind the hole the moment its next batch needs
       a prev anchor there.  A peer is live while it acked within a grace
       window; one silent longer is presumed down and excluded, since
       holding the floor for it forever would mean never purging (the
       snapshot rescue covers it when it returns).  An in-flight snapshot
       install fences the floor at its boundary so the tail the install
       resumes into stays intact. *)
    let grace =
      2.0 *. float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval
    in
    let now = local_now t in
    let peer_floor =
      Hashtbl.fold
        (fun _ p acc ->
          match p.snap with
          | Some xfer -> min acc (Binlog.Opid.index (Snapshot.last xfer.sx_snapshot))
          | None ->
            if now -. p.last_ack <= grace then
              min acc
                (List.fold_left
                   (fun m f -> min m (f.if_first - 1))
                   p.match_index p.inflight)
            else acc)
        t.peers max_int
    in
    min (min watermark peer_floor) t.commit_index
  end

let match_index_of t ~peer =
  match Hashtbl.find_opt t.peers peer with Some p -> Some p.match_index | None -> None

let window_of t ~peer =
  match Hashtbl.find_opt t.peers peer with
  | Some p -> Some (List.length p.inflight)
  | None -> None

let snapshot_in_flight t ~peer =
  match Hashtbl.find_opt t.peers peer with
  | Some p -> p.snap <> None
  | None -> false

let purge_wedges t = Obs.Metrics.counter_value t.meters.m_purge_wedges

let snapshots_sent t = Obs.Metrics.counter_value t.meters.m_snapshots_sent

let snapshots_installed t = Obs.Metrics.counter_value t.meters.m_snapshots_installed

(* The embedder coalesced a group of its own appends into one fsync
   (group commit on the leader's write path): the local durable index
   just advanced, so entries may now commit — quorums the leader's own
   vote completes (e.g. single-voter rings) would otherwise stall until
   the next response arrives. *)
let notify_log_synced t = advance_commit t

(* ----- read-path API ----- *)

(* Resolve a read index from any role: leaders run {!read_index}
   locally, followers/learners forward to the last known leader and wait
   (bounded) for its reply. *)
let remote_read_index t k =
  if t.stopped then k (Error "stopped")
  else if t.role = Types.Leader then read_index t k
  else
    match t.leader_id with
    | None -> k (Error "no known leader")
    | Some leader ->
      let rid = t.next_read_rid in
      t.next_read_rid <- rid + 1;
      let timeout =
        float_of_int t.params.missed_heartbeats *. t.params.heartbeat_interval
      in
      let timer =
        Sim.Clock.schedule t.clock ~delay:timeout (fun () ->
            match Hashtbl.find_opt t.pending_remote_reads rid with
            | Some (k, _) ->
              Hashtbl.remove t.pending_remote_reads rid;
              k (Error "read-index forward timed out")
            | None -> ())
      in
      Hashtbl.replace t.pending_remote_reads rid (k, timer);
      t.send ~dst:leader (Message.Read_index_request { rid; from = t.id })

let lease_valid t = lease_valid t

let lease_until t = t.lease_until

let lease_until_global t = t.lease_until_global

let lease_blocked t = t.lease_blocked

(* Stale-lease oracle readout: lease fast-path serves issued after the
   lease had expired by *global* time.  Any non-zero delta between checker
   sweeps is a linearizability-safety violation. *)
let lease_stale_serves t = t.stale_lease_serves

let clock t = t.clock

(* Recovery hook: crash recovery truncated the log at a corrupt entry;
   [opid] is the pre-truncation tail.  Until replication restores the log
   past it, this node neither campaigns nor votes for candidates whose
   logs end below it (see [vote_floor_blocks]). *)
let set_vote_floor t opid =
  if not (Binlog.Opid.at_least_as_up_to_date_as (last_opid t) opid) then begin
    t.vote_floor <- Some opid;
    tracef t "raft" "%s: vote floor set at %s (post-corruption)" t.id
      (Binlog.Opid.to_string opid)
  end

let staleness_anchor t =
  if t.role = Types.Leader then (Sim.Clock.now t.clock, t.commit_index) else t.freshness

let committed_in_current_term t = committed_in_current_term t

(* ----- proxy forwarding (§4.2) ----- *)

let deliver_reconstituted t ~dst (ae : Message.append_entries) ~first_index ~last_index:last ~expected_last_term =
  (* Reconstitute the PROXY_OP payload from our local log.  If our copy of
     [last] does not carry the term the leader expects, our log has not
     caught up to the leader's view; degrade rather than ship stale data. *)
  let rec gather idx acc =
    if idx > last then Some (Array.of_list (List.rev acc))
    else
      match t.log.entry_at idx with
      | Some e -> gather (idx + 1) (e :: acc)
      | None -> None
  in
  let entries =
    if t.log.term_at last = Some expected_last_term then gather first_index [] else None
  in
  let payload =
    match entries with
    | Some entries ->
      Obs.Metrics.incr t.meters.m_proxy_reconstitutions;
      Message.Entries entries
    | None ->
      Obs.Metrics.incr t.meters.m_proxy_degraded;
      Message.Entries [||] (* degraded to heartbeat *)
  in
  t.send ~dst (Message.Append_entries { ae with payload })

let handle_proxied t ~next_hops ~inner =
  match next_hops with
  | [] -> None (* malformed; treat inner as addressed to us *)
  | [ dst ] -> (
    match inner with
    | Message.Append_entries
        ({ payload = Message.Refs { first_index; last_index = last; last_term }; _ } as ae)
      ->
      (* We are the final proxy: wait (bounded) for our log to contain the
         referenced entries, then reconstitute. *)
      let expected_last_term = last_term in
      let deadline = Sim.Clock.now t.clock +. t.params.proxy_wait in
      let rec attempt () =
        if t.stopped then ()
        else if
          Binlog.Opid.index (t.log.last_opid ()) >= last
          || Sim.Clock.now t.clock >= deadline
        then
          deliver_reconstituted t ~dst ae ~first_index ~last_index:last ~expected_last_term
        else
          ignore (Sim.Clock.schedule t.clock ~delay:t.params.proxy_retry_interval attempt)
      in
      attempt ();
      Some ()
    | _ ->
      t.send ~dst inner;
      Some ())
  | h :: rest ->
    t.send ~dst:h (Message.Proxied { next_hops = rest; inner });
    Some ()

(* ----- message dispatch ----- *)

let rec handle_message t ~src msg =
  if not t.stopped then
    match msg with
    | Message.Append_entries ae -> handle_append_entries t ~src ae
    | Message.Append_entries_response r -> handle_append_response t r
    | Message.Request_vote rv -> handle_request_vote t rv
    | Message.Request_vote_response vr -> handle_vote_response t vr
    | Message.Timeout_now { term } ->
      if term >= t.durable.current_term && is_voter t && t.role <> Types.Leader then begin
        tracef t "raft" "%s: TimeoutNow received; starting election" t.id;
        begin_election t ~phase:Message.Real ~transfer:true
      end
    | Message.Run_mock_election { snapshot; requester; _ } ->
      begin_mock_election t ~snapshot ~requester
    | Message.Mock_election_result { ok; target; _ } -> handle_mock_result t (ok, target)
    | Message.Read_index_request { rid; from } ->
      if t.role = Types.Leader then begin
        Obs.Metrics.incr t.meters.m_readindex_forwarded;
        read_index t (fun result ->
            let index, error =
              match result with Ok i -> (i, None) | Error e -> (0, Some e)
            in
            t.send ~dst:from (Message.Read_index_reply { rid; index; error }))
      end
      else
        t.send ~dst:from
          (Message.Read_index_reply { rid; index = 0; error = Some "not the leader" })
    | Message.Install_snapshot is -> handle_install_snapshot t is
    | Message.Install_snapshot_response r -> handle_install_snapshot_response t r
    | Message.Read_index_reply { rid; index; error } -> (
      match Hashtbl.find_opt t.pending_remote_reads rid with
      | Some (k, timer) ->
        Hashtbl.remove t.pending_remote_reads rid;
        Sim.Engine.cancel timer;
        (match error with Some e -> k (Error e) | None -> k (Ok index))
      | None -> ())
    | Message.Proxied { next_hops; inner } -> (
      match handle_proxied t ~next_hops ~inner with
      | Some () -> ()
      | None -> handle_message t ~src inner)

(* ----- lifecycle ----- *)

let create ?metrics ?tracebuf ?clock ?(group = 0) ~engine ~id ~region ~send ~log
    ~callbacks ~params ~initial_config ~durable ~trace () =
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create ~node:id () in
  let clock =
    match clock with Some c -> c | None -> Sim.Clock.create ~engine ()
  in
  (* Logless reconfiguration: the durable mirror outranks the bootstrap
     config on restart — the log is not scanned (configs never ride it). *)
  let init_cfg_id, init_cfg =
    match durable.d_config with
    | Some (cid, c) -> (cid, c)
    | None -> (Types.cfg_id_zero, initial_config)
  in
  let t =
    {
      engine;
      clock;
      id;
      region;
      group;
      send;
      log;
      durable;
      params;
      trace;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      callbacks;
      cache = Log_cache.create ~metrics ~max_bytes:params.cache_bytes ();
      role = Types.Follower;
      leader_id = None;
      commit_index = 0;
      cfg = init_cfg;
      cfg_id = init_cfg_id;
      peers = Hashtbl.create 16;
      election = None;
      election_timer = None;
      heartbeat_timer = None;
      transfer = None;
      force_election_quorum = false;
      stopped = false;
      last_leader_contact = neg_infinity;
      elections_started = 0;
      times_elected = 0;
      metrics;
      meters = make_meters metrics;
      tracebuf;
      append_times = Hashtbl.create 256;
      election_started_at = neg_infinity;
      lease_until = neg_infinity;
      lease_until_global = neg_infinity;
      lease_blocked = false;
      read_round = None;
      read_queue = [];
      next_read_rid = 0;
      pending_remote_reads = Hashtbl.create 16;
      freshness = (neg_infinity, 0);
      last_local_now = Sim.Clock.now clock;
      clock_suspect_until = neg_infinity;
      last_hb_tick_local = neg_infinity;
      stale_lease_serves = 0;
      next_snapshot_id = 0;
      pending_install = None;
      vote_floor = None;
      transport_carrier = None;
      last_transport_reset = neg_infinity;
    }
  in
  reset_election_timer t;
  t

let stop t =
  t.stopped <- true;
  cancel_timer t.election_timer;
  cancel_timer t.heartbeat_timer;
  t.election_timer <- None;
  t.heartbeat_timer <- None;
  Hashtbl.iter
    (fun _ p ->
      cancel_retransmit p;
      cancel_snap p)
    t.peers;
  t.pending_install <- None;
  t.lease_until <- neg_infinity;
  t.lease_until_global <- neg_infinity;
  fail_reads t ~reason:"node stopped";
  let remote = Hashtbl.fold (fun rid v acc -> (rid, v) :: acc) t.pending_remote_reads [] in
  Hashtbl.reset t.pending_remote_reads;
  List.iter
    (fun (_, (k, timer)) ->
      Sim.Engine.cancel timer;
      k (Error "node stopped"))
    remote

let is_stopped t = t.stopped

(* ----- shard-mux transport liveness (multi-Raft) ----- *)

let set_transport_carrier t f = t.transport_carrier <- Some f

(* The shared transport delivered a frame from [from]'s node to ours:
   the process hosting our leader is alive and reachable, which is
   exactly what an empty AppendEntries would have proven.  Reset the
   failover clock iff [from] is the leader we are currently following —
   frames from anyone else say nothing about our leader.  Rate-limited
   to half a heartbeat interval so a busy link does not re-arm the timer
   on every packet. *)
let note_transport_liveness t ~from =
  if (not t.stopped) && t.role = Types.Follower && t.leader_id = Some from then begin
    let lnow = local_now t in
    if lnow -. t.last_transport_reset >= 0.5 *. t.params.heartbeat_interval then begin
      t.last_transport_reset <- lnow;
      t.last_leader_contact <- lnow;
      Obs.Metrics.incr t.meters.m_transport_resets;
      reset_election_timer t
    end
  end

let describe t =
  Printf.sprintf "%s: %s term=%d commit=%d last=%s leader=%s" t.id
    (Types.role_to_string t.role) t.durable.current_term t.commit_index
    (Binlog.Opid.to_string (last_opid t))
    (Option.value t.leader_id ~default:"?")
