(** Engine-checkpoint snapshots for log compaction (InstallSnapshot).

    A snapshot pairs an opaque engine checkpoint with the metadata Raft
    needs to rebase a follower at the boundary: the
    (last_included_index, term) OpId, the covered GTID set, the
    membership config as of the boundary, and the writeset dependency
    epoch.  The checksum covers the payload so chunked transfers verify
    end-to-end before anything is restored. *)

type meta = {
  last : Binlog.Opid.t;  (** last included (index, term) *)
  gtids : Binlog.Gtid_set.t;  (** GTIDs covered by the checkpoint *)
  config : Types.config;  (** membership as of [last] *)
  cfg_id : Types.cfg_id;
      (** identity of [config]; adopted on install only if strictly
          newer than the restored node's own *)
  dep_epoch : int;  (** writeset dependency epoch (boundary index) *)
  checksum : int32;  (** digest of the payload *)
  total_bytes : int;
}

type t = { meta : meta; data : string }

(** [dep_epoch] defaults to the boundary index; [cfg_id] to
    {!Types.cfg_id_zero} (never adopted). *)
val make :
  ?dep_epoch:int ->
  ?cfg_id:Types.cfg_id ->
  last:Binlog.Opid.t ->
  gtids:Binlog.Gtid_set.t ->
  config:Types.config ->
  data:string ->
  unit ->
  t

val meta : t -> meta

val data : t -> string

val last : t -> Binlog.Opid.t

(** Payload size in bytes. *)
val size : t -> int

(** End-to-end integrity of a (possibly chunk-reassembled) payload. *)
val verify_data : meta -> string -> bool

val verify : t -> bool

(** The chunk starting at [offset], at most [max_bytes] long.  Raises
    [Invalid_argument] when [offset] is outside the payload. *)
val chunk : t -> offset:int -> max_bytes:int -> string

val describe : t -> string
