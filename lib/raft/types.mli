(** Raft ring membership types — the role mapping of Table 1: a MySQL
    follower is a voter with a storage engine, a learner is a non-voter
    with an engine, a witness (logtailer) is a voter without one. *)

type node_id = string

type role = Leader | Follower | Candidate

val role_to_string : role -> string

type member_kind = Mysql_server | Logtailer

type member = {
  id : node_id;
  region : string;
  voter : bool;
  kind : member_kind;
}

val is_witness : member -> bool

val is_learner : member -> bool

type config = { members : member list }

val config_members : config -> member list

val find_member : config -> node_id -> member option

val is_member : config -> node_id -> bool

val voters : config -> member list

val voter_ids : config -> node_id list

val learners : config -> member list

val voters_in_region : config -> string -> member list

(** Regions hosting at least one voter, in member order. *)
val regions_with_voters : config -> string list

val member_ids : config -> node_id list

(** Config changes ride the log as opaque strings so the log layer stays
    independent of Raft. *)
val encode_config : config -> string

val decode_config : string -> config

(** {2 Logless dynamic reconfiguration}

    Configs live in per-node state, not the oplog (Schultz et al.,
    arXiv 2102.11960), identified and ordered lexicographically by
    [(cfg_term, cfg_version)]: a leader bumps the version on every
    membership change and rewrites the term to its own on election. *)

type cfg_id = { cfg_version : int; cfg_term : int }

val cfg_id_zero : cfg_id

(** Lexicographic on (term, version). *)
val cfg_id_compare : cfg_id -> cfg_id -> int

(** [cfg_id_newer a b]: [a] is strictly newer than [b]. *)
val cfg_id_newer : cfg_id -> cfg_id -> bool

val cfg_id_at_least : cfg_id -> cfg_id -> bool

val cfg_id_to_string : cfg_id -> string

(** Same membership (ids, regions, voter flags, kinds), identity aside. *)
val same_members : config -> config -> bool

(** The two configs share at least one voter — the necessary condition
    for quorum overlap between consecutive configs. *)
val voters_overlap : config -> config -> bool

(** Size of the voter-set symmetric difference; safe single steps keep
    it at most 1. *)
val voter_delta : config -> config -> int

(** Wire size of a gossiped config (bandwidth accounting). *)
val config_wire_size : config -> int

val describe_member : member -> string

val describe_config : config -> string
