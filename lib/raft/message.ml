(* Raft RPCs, including the proxying extensions of §4.2.

   [Proxied] wraps any message with the remaining hop list: a node
   receiving [Proxied { next_hops = [d]; inner }] is the final proxy for
   [inner] and must deliver it to [d] — reconstituting the payload from
   its own log when the inner AppendEntries carries [Refs] instead of
   entry bodies (PROXY_OP).  Responses travel the reverse route carried in
   [reply_route]. *)

type node_id = Types.node_id

type ae_payload =
  | Entries of Binlog.Entry.t array
    (* an array, not a list: the leader assembles each batch as one
       right-sized slice from its log cache (no per-entry cells), and
       receivers index it directly *)
  | Refs of { first_index : int; last_index : int; last_term : int }
    (* PROXY_OP: metadata only; [last_term] lets the proxy verify its local
       copy matches the leader's view before reconstituting *)

type append_entries = {
  term : int;
  leader_id : node_id;
  leader_region : string;
  prev_opid : Binlog.Opid.t;
  payload : ae_payload;
  commit_index : int;
  seq : int; (* per-peer send sequence; echoed in the response *)
  reply_route : node_id list; (* hops the response retraces to the leader *)
  leader_time : float;
    (* leader clock at send; the follower's staleness anchor for
       bounded-staleness reads once its log covers [leader_last_index] *)
  leader_last_index : int; (* leader log tail at send *)
  cfg_id : Types.cfg_id;
    (* identity of the leader's current config (logless reconfiguration):
       always carried, so a follower can tell it is stale even when the
       membership body was elided *)
  cfg : Types.config option;
    (* the membership body, gossiped only while the leader has not yet
       seen this peer acknowledge [cfg_id]; a follower adopts it iff
       [cfg_id] is strictly newer than its own *)
}

type append_response = {
  term : int;
  from : node_id;
  success : bool;
  last_log_index : int;
    (* the durable (fsynced) prefix on success — the ack the leader may
       count toward commit; the probe hint on failure *)
  last_appended_index : int;
    (* follower's log tail after processing, regardless of fsync.  Lets
       the leader distinguish "appended but not yet durable" (fsync
       stall) from "never arrived" (degraded PROXY_OP / loss), which is
       what decides whether a windowed send must be replayed. *)
  request_seq : int; (* the [seq] of the AppendEntries being answered *)
  cfg_id : Types.cfg_id;
    (* identity of the config installed on the responder; the leader
       stops attaching the membership body once this catches up *)
  follower_time : float;
    (* follower clock at reply; the leader cross-checks its own clock's
       rate against these (a leader whose oscillator drifts relative to
       its quorum must not trust lease intervals it measured itself) *)
}

type vote_phase = Pre | Real | Mock of { snapshot : Binlog.Opid.t }

type request_vote = {
  term : int; (* proposed term for Pre/Mock, actual for Real *)
  candidate : node_id;
  candidate_region : string;
  last_opid : Binlog.Opid.t;
  phase : vote_phase;
  (* FlexiRaft voting history: the highest constraint term the candidate
     knows (max of its authoritative last-leader term and its granted-vote
     term).  A voter holding a higher-term constraint denies the vote and
     ships its constraints back, so a candidate can never win an election
     whose quorum fails to cover a region that may hold committed data. *)
  candidate_constraint_term : int;
  (* True only for elections started by a TimeoutNow from the current
     leader (leadership transfer / logtailer handoff).  Such elections
     may bypass voter leader-stickiness: the initiating leader has
     already voided its own lease, so an immediate successor cannot
     enable a stale lease read.  Any other Real election — including a
     disruptive forced one — must wait out the stickiness window, which
     outlasts every lease the deposed leader could still hold. *)
  transfer : bool;
  cfg_id : Types.cfg_id;
    (* identity of the candidate's installed config: a voter holding a
       strictly newer config denies the vote (logless reconfiguration
       election restriction) and ships its config back *)
}

type vote_response = {
  term : int;
  from : node_id;
  granted : bool;
  phase : vote_phase;
  (* FlexiRaft hints: the most recent authoritative leader this voter
     knows of, and the highest-term candidate it has granted a vote to —
     both feed the candidate's intersection-region computation. *)
  last_known_leader : (int * string) option;
  vote_constraint : (int * string) option;
  cfg : (Types.cfg_id * Types.config) option;
    (* carried when the voter's installed config is strictly newer than
       the candidate's: lets a stale candidate adopt it immediately
       (and, if no longer a voter, stand down) instead of waiting for
       leader gossip *)
}

(* One chunk of a snapshot transfer (InstallSnapshot).  The full
   metadata rides on every chunk — it is small next to the payload and
   makes the stop-and-wait transfer resumable from any chunk: a follower
   that lost the transfer state acks [received_through = 0] and the
   leader restarts from there. *)
type install_snapshot = {
  term : int;
  leader_id : node_id;
  snapshot_id : int; (* leader-unique transfer id *)
  meta : Snapshot.meta; (* boundary OpId, GTIDs, config, checksum, size *)
  offset : int; (* byte offset of this chunk within the payload *)
  chunk : string;
}

type install_snapshot_response = {
  term : int;
  from : node_id;
  snapshot_id : int;
  received_through : int;
    (* contiguous payload bytes the follower now holds; equal to the
       payload size once the install has been applied *)
  success : bool; (* false aborts the transfer (checksum failure etc.) *)
}

type t =
  | Append_entries of append_entries
  | Append_entries_response of append_response
  | Request_vote of request_vote
  | Request_vote_response of vote_response
  | Timeout_now of { term : int }
  | Run_mock_election of { term : int; snapshot : Binlog.Opid.t; requester : node_id }
  | Mock_election_result of { ok : bool; target : node_id; votes : int }
  | Read_index_request of { rid : int; from : node_id }
  | Read_index_reply of { rid : int; index : int; error : string option }
  | Install_snapshot of install_snapshot
  | Install_snapshot_response of install_snapshot_response
  | Proxied of { next_hops : node_id list; inner : t }

(* Wire sizes in bytes, used for the §4.2.2 bandwidth accounting.  Header
   overhead matches the paper's back-of-the-envelope framing (tens of
   bytes of metadata per RPC, ~500 byte average data payloads). *)
let rec size = function
  | Append_entries ae ->
    let payload_size =
      match ae.payload with
      | Entries entries ->
        Array.fold_left (fun acc e -> acc + Binlog.Entry.size e) 0 entries
      | Refs _ -> 12
    in
    let cfg_size =
      match ae.cfg with None -> 0 | Some c -> Types.config_wire_size c
    in
    60 + (4 * List.length ae.reply_route) + payload_size + cfg_size
  | Append_entries_response _ -> 44
  | Request_vote _ -> 56
  | Request_vote_response vr ->
    44
    + (match vr.cfg with None -> 0 | Some (_, c) -> 8 + Types.config_wire_size c)
  | Timeout_now _ -> 16
  | Run_mock_election _ -> 32
  | Mock_election_result _ -> 24
  | Read_index_request _ -> 20
  | Read_index_reply _ -> 24
  | Install_snapshot is -> 64 + String.length is.chunk
  | Install_snapshot_response _ -> 28
  | Proxied { next_hops; inner } -> 16 + (4 * List.length next_hops) + size inner

let phase_to_string = function
  | Pre -> "pre"
  | Real -> "real"
  | Mock _ -> "mock"

let rec describe = function
  | Append_entries ae ->
    let payload =
      match ae.payload with
      | Entries [||] -> "heartbeat"
      | Entries es -> Printf.sprintf "%d entries" (Array.length es)
      | Refs { first_index; last_index; _ } ->
        Printf.sprintf "PROXY_OP %d..%d" first_index last_index
    in
    Printf.sprintf "AE(t%d from %s, prev %s, %s, commit %d, cfg %s%s)" ae.term
      ae.leader_id
      (Binlog.Opid.to_string ae.prev_opid) payload ae.commit_index
      (Types.cfg_id_to_string ae.cfg_id)
      (match ae.cfg with None -> "" | Some _ -> "+body")
  | Append_entries_response r ->
    Printf.sprintf "AE-resp(t%d from %s, %s, last %d)" r.term r.from
      (if r.success then "ok" else "fail")
      r.last_log_index
  | Request_vote rv ->
    Printf.sprintf "Vote-req(%s%s, t%d, %s, last %s)" (phase_to_string rv.phase)
      (if rv.transfer then "/transfer" else "")
      rv.term rv.candidate
      (Binlog.Opid.to_string rv.last_opid)
  | Request_vote_response vr ->
    Printf.sprintf "Vote-resp(%s, t%d from %s, %s)" (phase_to_string vr.phase) vr.term
      vr.from
      (if vr.granted then "granted" else "denied")
  | Timeout_now { term } -> Printf.sprintf "TimeoutNow(t%d)" term
  | Run_mock_election { term; _ } -> Printf.sprintf "RunMockElection(t%d)" term
  | Mock_election_result { ok; _ } ->
    Printf.sprintf "MockResult(%s)" (if ok then "ok" else "failed")
  | Read_index_request { rid; from } -> Printf.sprintf "ReadIndex-req(#%d from %s)" rid from
  | Read_index_reply { rid; index; error } ->
    Printf.sprintf "ReadIndex-reply(#%d, %s)" rid
      (match error with Some e -> "error: " ^ e | None -> Printf.sprintf "index %d" index)
  | Install_snapshot is ->
    Printf.sprintf "InstallSnapshot(t%d from %s, #%d, last %s, bytes %d..%d/%d)" is.term
      is.leader_id is.snapshot_id
      (Binlog.Opid.to_string is.meta.Snapshot.last)
      is.offset
      (is.offset + String.length is.chunk)
      is.meta.Snapshot.total_bytes
  | Install_snapshot_response r ->
    Printf.sprintf "InstallSnapshot-resp(t%d from %s, #%d, through %d, %s)" r.term r.from
      r.snapshot_id r.received_through
      (if r.success then "ok" else "abort")
  | Proxied { next_hops; inner } ->
    Printf.sprintf "Proxied(via %s: %s)" (String.concat "," next_hops) (describe inner)
