(* Raft ring membership types.

   The role mapping of Table 1: a MySQL follower is a voter with a
   storage engine; a learner is a non-voter with an engine (non-failover
   replica); a witness (logtailer) is a voter without an engine. *)

type node_id = string

type role = Leader | Follower | Candidate

let role_to_string = function
  | Leader -> "leader"
  | Follower -> "follower"
  | Candidate -> "candidate"

type member_kind = Mysql_server | Logtailer

type member = {
  id : node_id;
  region : string;
  voter : bool;
  kind : member_kind;
}

(* A witness is a voter with no storage engine; a learner is a non-voting
   MySQL replica. *)
let is_witness m = m.kind = Logtailer

let is_learner m = (not m.voter) && m.kind = Mysql_server

type config = { members : member list }

let config_members c = c.members

let find_member c id = List.find_opt (fun m -> m.id = id) c.members

let is_member c id = Option.is_some (find_member c id)

let voters c = List.filter (fun m -> m.voter) c.members

let voter_ids c = List.map (fun m -> m.id) (voters c)

let learners c = List.filter is_learner c.members

let voters_in_region c region = List.filter (fun m -> m.region = region) (voters c)

let regions_with_voters c =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun m ->
      if m.voter && not (Hashtbl.mem seen m.region) then begin
        Hashtbl.replace seen m.region ();
        Some m.region
      end
      else None)
    c.members

let member_ids c = List.map (fun m -> m.id) c.members

(* Config changes are carried in the log as opaque strings so the log
   layer stays independent of Raft. *)
let encode_config c = Marshal.to_string c []

let decode_config s : config = Marshal.from_string s 0

(* ----- logless dynamic reconfiguration ----- *)

(* Configs live in per-node state, not the oplog (Schultz et al.,
   arXiv 2102.11960): every config carries an identity ordered
   lexicographically by (config_term, config_version).  A leader bumps
   the version on every membership change and rewrites the term to its
   own on election, so an uncommitted config installed by a deposed
   leader always loses to the new leader's rewrite. *)
type cfg_id = { cfg_version : int; cfg_term : int }

let cfg_id_zero = { cfg_version = 0; cfg_term = 0 }

let cfg_id_compare a b =
  compare (a.cfg_term, a.cfg_version) (b.cfg_term, b.cfg_version)

let cfg_id_newer a b = cfg_id_compare a b > 0

let cfg_id_at_least a b = cfg_id_compare a b >= 0

let cfg_id_to_string c = Printf.sprintf "v%d@t%d" c.cfg_version c.cfg_term

(* Set equality on full member records: two configs with the same
   membership (ids, regions, voter flags, kinds) are interchangeable for
   callback purposes even when their identities differ (a term rewrite
   changes the id, not the ring). *)
let same_members a b =
  let key m = (m.id, m.region, m.voter, m.kind) in
  let sort c = List.sort compare (List.map key c.members) in
  sort a = sort b

(* Necessary condition for quorum overlap between consecutive configs:
   they share at least one voter.  Single-step changes (the only kind
   the planner emits) always satisfy it. *)
let voters_overlap a b =
  let va = voter_ids a and vb = voter_ids b in
  List.exists (fun v -> List.mem v vb) va

(* Size of the voter-set symmetric difference — how many voters a change
   adds plus removes.  Safe single steps keep it at most 1. *)
let voter_delta a b =
  let va = voter_ids a and vb = voter_ids b in
  List.length (List.filter (fun v -> not (List.mem v vb)) va)
  + List.length (List.filter (fun v -> not (List.mem v va)) vb)

(* Wire size of a gossiped config for bandwidth accounting: per member,
   the id and region strings plus flags. *)
let config_wire_size c =
  List.fold_left
    (fun acc m -> acc + String.length m.id + String.length m.region + 4)
    8 c.members

let describe_member m =
  Printf.sprintf "%s@%s(%s%s)" m.id m.region
    (match m.kind with Mysql_server -> "mysql" | Logtailer -> "logtailer")
    (if m.voter then ",voter" else ",non-voter")

let describe_config c =
  String.concat ", " (List.map describe_member c.members)
