(** Raft RPCs, including the proxying extensions of §4.2.

    [Proxied] wraps any message with the remaining hop list: the final
    proxy reconstitutes [Refs] payloads (PROXY_OPs) from its own log
    before delivery; responses retrace [reply_route]. *)

type node_id = Types.node_id

type ae_payload =
  | Entries of Binlog.Entry.t array
      (** assembled as one right-sized slice from the leader's log cache *)
  | Refs of { first_index : int; last_index : int; last_term : int }
      (** PROXY_OP: metadata only; [last_term] lets the proxy verify its
          local copy matches the leader's view before reconstituting *)

type append_entries = {
  term : int;
  leader_id : node_id;
  leader_region : string;
  prev_opid : Binlog.Opid.t;
  payload : ae_payload;
  commit_index : int;
  seq : int;  (** per-peer send sequence; echoed in the response *)
  reply_route : node_id list;  (** hops the response retraces to the leader *)
  leader_time : float;
      (** leader clock at send — the follower's staleness anchor for
          bounded-staleness reads once its log covers [leader_last_index] *)
  leader_last_index : int;  (** leader log tail at send *)
  cfg_id : Types.cfg_id;
      (** identity of the leader's current config (logless
          reconfiguration) — always carried *)
  cfg : Types.config option;
      (** membership body, attached only while the leader has not seen
          this peer acknowledge [cfg_id]; adopted iff strictly newer *)
}

type append_response = {
  term : int;
  from : node_id;
  success : bool;
  last_log_index : int;
      (** durable (fsynced) prefix on success — the commit-countable ack;
          probe hint on failure *)
  last_appended_index : int;
      (** log tail after processing regardless of fsync: distinguishes
          "appended, sync pending" from "never arrived" for the leader's
          send-window bookkeeping *)
  request_seq : int;  (** the [seq] of the AppendEntries being answered *)
  cfg_id : Types.cfg_id;
      (** config installed on the responder; gates further gossip *)
  follower_time : float;
      (** follower clock at reply — the leader's cross-check that its own
          clock's rate agrees with its quorum's before trusting a lease *)
}

type vote_phase = Pre | Real | Mock of { snapshot : Binlog.Opid.t }

type request_vote = {
  term : int;
  candidate : node_id;
  candidate_region : string;
  last_opid : Binlog.Opid.t;
  phase : vote_phase;
  candidate_constraint_term : int;
      (** FlexiRaft voting history: the highest constraint term the
          candidate knows; staler-than-voter candidates are denied *)
  transfer : bool;
      (** started by the leader's TimeoutNow (leadership transfer):
          exempt from voter leader-stickiness, because the initiating
          leader already voided its own lease *)
  cfg_id : Types.cfg_id;
      (** candidate's installed config; voters with strictly newer
          configs deny the vote (logless election restriction) *)
}

type vote_response = {
  term : int;
  from : node_id;
  granted : bool;
  phase : vote_phase;
  last_known_leader : (int * string) option;
  vote_constraint : (int * string) option;
  cfg : (Types.cfg_id * Types.config) option;
      (** the voter's config when strictly newer than the candidate's,
          so a stale candidate adopts it without waiting for gossip *)
}

(** One chunk of a snapshot transfer (InstallSnapshot).  The metadata
    rides on every chunk, so the stop-and-wait transfer is resumable
    from any offset a follower acks. *)
type install_snapshot = {
  term : int;
  leader_id : node_id;
  snapshot_id : int;  (** leader-unique transfer id *)
  meta : Snapshot.meta;
  offset : int;  (** byte offset of this chunk within the payload *)
  chunk : string;
}

type install_snapshot_response = {
  term : int;
  from : node_id;
  snapshot_id : int;
  received_through : int;
      (** contiguous payload bytes held; the payload size once the
          install has been applied *)
  success : bool;  (** false aborts the transfer (checksum failure etc.) *)
}

type t =
  | Append_entries of append_entries
  | Append_entries_response of append_response
  | Request_vote of request_vote
  | Request_vote_response of vote_response
  | Timeout_now of { term : int }
  | Run_mock_election of { term : int; snapshot : Binlog.Opid.t; requester : node_id }
  | Mock_election_result of { ok : bool; target : node_id; votes : int }
  | Read_index_request of { rid : int; from : node_id }
      (** follower → leader: run a ReadIndex round on my behalf *)
  | Read_index_reply of { rid : int; index : int; error : string option }
      (** leader → follower: the confirmed read index (or why not) *)
  | Install_snapshot of install_snapshot
  | Install_snapshot_response of install_snapshot_response
  | Proxied of { next_hops : node_id list; inner : t }

(** Wire size in bytes for bandwidth accounting (§4.2.2). *)
val size : t -> int

val phase_to_string : vote_phase -> string

val describe : t -> string
