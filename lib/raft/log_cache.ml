(* Leader-side in-memory cache of recent log entries (§3.1, §3.4).

   The leader compresses and caches each transaction it appends so that
   replication to (mostly caught-up) followers never touches the log
   files.  When a follower has fallen far enough behind that the entries
   it needs have been evicted, the leader falls back to the log
   abstraction — "parsing historical binary log files" — which we surface
   as a [disk_reads] counter so tests can assert the fallback happened.

   Eviction is FIFO by index with a total-bytes budget, matching a cache
   over a strictly appended sequence. *)

type t = {
  entries : (int, Binlog.Entry.t) Hashtbl.t;
  mutable first_cached : int; (* lowest index still cached; 0 when empty *)
  mutable last_cached : int;
  mutable bytes : int;
  max_bytes : int;
  mutable disk_reads : int;
  mutable hits : int;
  m_hits : Obs.Metrics.counter;
  m_disk_reads : Obs.Metrics.counter;
  m_bytes : Obs.Metrics.gauge;
}

let create ?metrics ?(max_bytes = 4 * 1024 * 1024) () =
  (* Absent a registry, handles resolve against a throwaway one so the
     hot path never branches on an option. *)
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    entries = Hashtbl.create 1024;
    first_cached = 0;
    last_cached = 0;
    bytes = 0;
    max_bytes;
    disk_reads = 0;
    hits = 0;
    m_hits = Obs.Metrics.counter m "raft.log_cache.hits";
    m_disk_reads = Obs.Metrics.counter m "raft.log_cache.disk_reads";
    m_bytes = Obs.Metrics.gauge m "raft.log_cache.bytes";
  }

let evict_oldest t =
  match Hashtbl.find_opt t.entries t.first_cached with
  | Some e ->
    Hashtbl.remove t.entries t.first_cached;
    t.bytes <- t.bytes - Binlog.Entry.size e;
    t.first_cached <- t.first_cached + 1
  | None -> t.first_cached <- t.first_cached + 1

let put t entry =
  let index = Binlog.Entry.index entry in
  if t.first_cached = 0 then t.first_cached <- index;
  (* Re-inserting an index replaces the old entry; release its bytes so
     the budget tracks what the table actually holds. *)
  (match Hashtbl.find_opt t.entries index with
  | Some old -> t.bytes <- t.bytes - Binlog.Entry.size old
  | None -> ());
  Hashtbl.replace t.entries index entry;
  t.last_cached <- max t.last_cached index;
  t.bytes <- t.bytes + Binlog.Entry.size entry;
  while t.bytes > t.max_bytes && t.first_cached < t.last_cached do
    evict_oldest t
  done;
  Obs.Metrics.set_gauge t.m_bytes (float_of_int t.bytes)

(* Drop cached entries at or above [index] (log truncation on the leader
   is impossible in Raft, but a demoted leader reuses the same cache). *)
let truncate_from t ~index =
  for i = index to t.last_cached do
    match Hashtbl.find_opt t.entries i with
    | Some e ->
      Hashtbl.remove t.entries i;
      t.bytes <- t.bytes - Binlog.Entry.size e
    | None -> ()
  done;
  if t.last_cached >= index then t.last_cached <- index - 1;
  if t.first_cached > t.last_cached then begin
    t.first_cached <- 0;
    t.last_cached <- 0;
    t.bytes <- 0
  end;
  Obs.Metrics.set_gauge t.m_bytes (float_of_int t.bytes)

(* Read [from_index, from_index+max_count) preferring the cache, falling
   back to [read_log] for the cold prefix.  [max_bytes] additionally
   bounds the batch: collection stops before the entry that would exceed
   the budget, except that the first entry always ships so an oversized
   transaction still makes progress one-per-AE. *)
let read t ?(max_bytes = max_int) ~from_index ~max_count ~read_log () =
  let rec collect idx n bytes acc =
    if n = 0 then List.rev acc
    else
      let keep ~from_cache e =
        let sz = Binlog.Entry.size e in
        if acc <> [] && bytes + sz > max_bytes then List.rev acc
        else begin
          if from_cache then begin
            t.hits <- t.hits + 1;
            Obs.Metrics.incr t.m_hits
          end
          else begin
            t.disk_reads <- t.disk_reads + 1;
            Obs.Metrics.incr t.m_disk_reads
          end;
          collect (idx + 1) (n - 1) (bytes + sz) (e :: acc)
        end
      in
      match Hashtbl.find_opt t.entries idx with
      | Some e -> keep ~from_cache:true e
      | None -> (
        match read_log idx with
        | Some e -> keep ~from_cache:false e
        | None -> List.rev acc)
  in
  collect from_index max_count 0 []

let contains t ~index = Hashtbl.mem t.entries index

let disk_reads t = t.disk_reads

let hits t = t.hits

let cached_bytes t = t.bytes
