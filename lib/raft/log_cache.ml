(* Leader-side in-memory cache of recent log entries (§3.1, §3.4).

   The leader compresses and caches each transaction it appends so that
   replication to (mostly caught-up) followers never touches the log
   files.  When a follower has fallen far enough behind that the entries
   it needs have been evicted, the leader falls back to the log
   abstraction — "parsing historical binary log files" — which we surface
   as a [disk_reads] counter so tests can assert the fallback happened.

   Storage is a power-of-two ring over the contiguous index range
   [first_cached, last_cached]: slot for index i is [i land (cap - 1)].
   Appends, evictions and lookups are O(1) with no per-entry cells to
   allocate or collect — the Hashtbl this replaced paid a bucket cons per
   [put] and hashed on every probe of the replication hot loop.  Eviction
   is FIFO by index with a total-bytes budget, matching a cache over a
   strictly appended sequence.

   Batch reads come in two shapes: [read_slice] (the hot path) fills an
   internal scratch buffer and returns a right-sized array — one
   allocation per AppendEntries batch, no list cells, no [List.rev] — and
   [read] wraps it for callers that want a list.  Returned slices hold
   the entries themselves (immutable, their serialized bytes memoized),
   so they stay valid however the cache evicts afterwards. *)

type t = {
  mutable ring : Binlog.Entry.t array; (* slot for index i = i land (cap-1) *)
  mutable cap : int; (* power of two, = Array.length ring *)
  dummy : Binlog.Entry.t; (* fills unused slots so they retain nothing live *)
  mutable first_cached : int; (* lowest index still cached; 0 when empty *)
  mutable last_cached : int;
  mutable bytes : int;
  max_bytes : int;
  mutable scratch : Binlog.Entry.t array; (* reused by read_slice *)
  mutable disk_reads : int;
  mutable hits : int;
  m_hits : Obs.Metrics.counter;
  m_disk_reads : Obs.Metrics.counter;
  m_bytes : Obs.Metrics.gauge;
}

let create ?metrics ?(max_bytes = 4 * 1024 * 1024) () =
  (* Absent a registry, handles resolve against a throwaway one so the
     hot path never branches on an option. *)
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let dummy = Binlog.Entry.make ~opid:Binlog.Opid.zero Binlog.Entry.Noop in
  {
    ring = Array.make 1024 dummy;
    cap = 1024;
    dummy;
    first_cached = 0;
    last_cached = 0;
    bytes = 0;
    max_bytes;
    scratch = Array.make 64 dummy;
    disk_reads = 0;
    hits = 0;
    m_hits = Obs.Metrics.counter m "raft.log_cache.hits";
    m_disk_reads = Obs.Metrics.counter m "raft.log_cache.disk_reads";
    m_bytes = Obs.Metrics.gauge m "raft.log_cache.bytes";
  }

let is_empty t = t.first_cached = 0

let[@inline] slot t index = index land (t.cap - 1)

let[@inline] get_cached t index =
  if (not (is_empty t)) && index >= t.first_cached && index <= t.last_cached then
    Some t.ring.(slot t index)
  else None

let contains t ~index =
  (not (is_empty t)) && index >= t.first_cached && index <= t.last_cached

let evict_oldest t =
  let i = slot t t.first_cached in
  t.bytes <- t.bytes - Binlog.Entry.size t.ring.(i);
  t.ring.(i) <- t.dummy;
  t.first_cached <- t.first_cached + 1

(* Double the ring until [count] entries fit, re-seating live slots. *)
let grow t count =
  let cap = ref t.cap in
  while count > !cap do
    cap := !cap * 2
  done;
  let ring = Array.make !cap t.dummy in
  for i = t.first_cached to t.last_cached do
    ring.(i land (!cap - 1)) <- t.ring.(slot t i)
  done;
  t.ring <- ring;
  t.cap <- !cap

let put t entry =
  let index = Binlog.Entry.index entry in
  if is_empty t then begin
    t.first_cached <- index;
    t.last_cached <- index - 1
  end
  else if index >= t.first_cached && index <= t.last_cached then begin
    (* Re-inserting an index replaces the old entry; release its bytes so
       the budget tracks what the ring actually holds. *)
    let i = slot t index in
    t.bytes <- t.bytes - Binlog.Entry.size t.ring.(i);
    t.ring.(i) <- t.dummy
  end
  else if index <> t.last_cached + 1 then begin
    (* Non-contiguous with the cached range (cannot happen on a Raft log,
       which appends at the tail; kept for safety): restart the cache at
       this entry. *)
    Array.fill t.ring 0 t.cap t.dummy;
    t.bytes <- 0;
    t.first_cached <- index;
    t.last_cached <- index - 1
  end;
  if index > t.last_cached then begin
    if index - t.first_cached + 1 > t.cap then grow t (index - t.first_cached + 1);
    t.last_cached <- index
  end;
  t.ring.(slot t index) <- entry;
  t.bytes <- t.bytes + Binlog.Entry.size entry;
  while t.bytes > t.max_bytes && t.first_cached < t.last_cached do
    evict_oldest t
  done;
  Obs.Metrics.set_gauge t.m_bytes (float_of_int t.bytes)

(* Drop cached entries at or above [index] (log truncation on the leader
   is impossible in Raft, but a demoted leader reuses the same cache). *)
let truncate_from t ~index =
  if not (is_empty t) then begin
    for i = max index t.first_cached to t.last_cached do
      let s = slot t i in
      t.bytes <- t.bytes - Binlog.Entry.size t.ring.(s);
      t.ring.(s) <- t.dummy
    done;
    if t.last_cached >= index then t.last_cached <- index - 1;
    if t.first_cached > t.last_cached then begin
      t.first_cached <- 0;
      t.last_cached <- 0;
      t.bytes <- 0
    end
  end;
  Obs.Metrics.set_gauge t.m_bytes (float_of_int t.bytes)

(* Read [from_index, from_index+max_count) preferring the cache, falling
   back to [read_log] for the cold prefix, into the scratch buffer.
   [max_bytes] additionally bounds the batch: collection stops before the
   entry that would exceed the budget, except that the first entry always
   ships so an oversized transaction still makes progress one-per-AE.
   Returns the number of entries filled. *)
let read_scratch t ~max_bytes ~from_index ~max_count ~read_log =
  if max_count > Array.length t.scratch then
    t.scratch <- Array.make (max max_count (2 * Array.length t.scratch)) t.dummy;
  let n = ref 0 in
  let bytes = ref 0 in
  let stop = ref false in
  while (not !stop) && !n < max_count do
    let idx = from_index + !n in
    let entry, from_cache =
      match get_cached t idx with
      | Some e -> (Some e, true)
      | None -> (read_log idx, false)
    in
    match entry with
    | None -> stop := true
    | Some e ->
      let sz = Binlog.Entry.size e in
      if !n > 0 && !bytes + sz > max_bytes then stop := true
      else begin
        if from_cache then begin
          t.hits <- t.hits + 1;
          Obs.Metrics.incr t.m_hits
        end
        else begin
          t.disk_reads <- t.disk_reads + 1;
          Obs.Metrics.incr t.m_disk_reads
        end;
        t.scratch.(!n) <- e;
        incr n;
        bytes := !bytes + sz
      end
  done;
  !n

let read_slice t ?(max_bytes = max_int) ~from_index ~max_count ~read_log () =
  let n = read_scratch t ~max_bytes ~from_index ~max_count ~read_log in
  let out = Array.sub t.scratch 0 n in
  (* don't let the scratch keep evicted entries alive between batches *)
  Array.fill t.scratch 0 n t.dummy;
  out

let read t ?(max_bytes = max_int) ~from_index ~max_count ~read_log () =
  Array.to_list (read_slice t ~max_bytes ~from_index ~max_count ~read_log ())

let disk_reads t = t.disk_reads

let hits t = t.hits

let cached_bytes t = t.bytes
