(** Leader-side in-memory cache of recent log entries (§3.1, §3.4).

    Replication to caught-up followers never touches the log files; when
    a follower has fallen behind the eviction horizon the leader falls
    back to the log abstraction — "parsing historical binary log files" —
    surfaced by the [disk_reads] counter. *)

type t

(** [metrics] receives [raft.log_cache.hits] / [raft.log_cache.disk_reads]
    counters and a [raft.log_cache.bytes] gauge. *)
val create : ?metrics:Obs.Metrics.t -> ?max_bytes:int -> unit -> t

val put : t -> Binlog.Entry.t -> unit

(** Drop cached entries at or above [index] (a demoted leader reuses the
    cache). *)
val truncate_from : t -> index:int -> unit

(** Read a range preferring the cache, calling [read_log] for cold
    indexes; stops at the first missing entry.  [max_bytes] bounds the
    total payload: collection stops before exceeding the budget, but the
    first entry always ships so oversized transactions still progress.

    The hot-path shape: one right-sized array per call (no list cells).
    The array holds the entries themselves — immutable, serialized bytes
    memoized — so it stays valid however the cache evicts afterwards. *)
val read_slice :
  t -> ?max_bytes:int -> from_index:int -> max_count:int ->
  read_log:(int -> Binlog.Entry.t option) -> unit ->
  Binlog.Entry.t array

(** [read_slice] as a list, for callers off the hot path. *)
val read :
  t -> ?max_bytes:int -> from_index:int -> max_count:int ->
  read_log:(int -> Binlog.Entry.t option) -> unit ->
  Binlog.Entry.t list

val contains : t -> index:int -> bool

val disk_reads : t -> int

val hits : t -> int

val cached_bytes : t -> int
