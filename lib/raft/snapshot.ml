(* Engine-checkpoint snapshots for log compaction (InstallSnapshot).

   A snapshot is an opaque engine checkpoint ([data], produced by the
   embedder — for a MySQL server, [Storage.Engine.encode_checkpoint])
   plus the metadata Raft needs to rebase a follower at the boundary:
   the (last_included_index, term) OpId, the GTID set the checkpoint
   covers, the membership config as of the boundary (the follower's log
   prefix — including any config entries in it — vanishes on install),
   and the writeset dependency epoch (the boundary index: a restored
   applier may treat every dependency at or below it as satisfied, the
   same fence a term-opening no-op provides).

   The checksum covers [data] so a transfer reassembled from chunks is
   verified end-to-end before anything is restored. *)

type meta = {
  last : Binlog.Opid.t; (* last included (index, term) *)
  gtids : Binlog.Gtid_set.t; (* GTIDs covered by the checkpoint *)
  config : Types.config; (* membership as of [last] *)
  cfg_id : Types.cfg_id;
    (* identity of [config] (logless reconfiguration): the restored
       node adopts it only when strictly newer than what it holds *)
  dep_epoch : int; (* writeset dependency epoch (boundary index) *)
  checksum : int32; (* digest of [data] *)
  total_bytes : int;
}

type t = { meta : meta; data : string }

let make ?dep_epoch ?(cfg_id = Types.cfg_id_zero) ~last ~gtids ~config ~data () =
  let dep_epoch = Option.value dep_epoch ~default:(Binlog.Opid.index last) in
  {
    meta =
      {
        last;
        gtids;
        config;
        cfg_id;
        dep_epoch;
        checksum = Binlog.Checksum.string data;
        total_bytes = String.length data;
      };
    data;
  }

let meta t = t.meta

let data t = t.data

let last t = t.meta.last

let size t = String.length t.data

(* End-to-end integrity of a (possibly chunk-reassembled) payload
   against the advertised metadata. *)
let verify_data meta data =
  String.length data = meta.total_bytes && Binlog.Checksum.string data = meta.checksum

let verify t = verify_data t.meta t.data

(* The chunk starting at [offset], at most [max_bytes] long. *)
let chunk t ~offset ~max_bytes =
  if offset < 0 || offset > size t then invalid_arg "Snapshot.chunk: offset out of range";
  String.sub t.data offset (min max_bytes (size t - offset))

let describe t =
  Printf.sprintf "snapshot(last %s, %d bytes, %d gtids, epoch %d)"
    (Binlog.Opid.to_string t.meta.last)
    t.meta.total_bytes
    (Binlog.Gtid_set.cardinal t.meta.gtids)
    t.meta.dep_epoch
