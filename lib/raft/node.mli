(** The Raft replica state machine (the kuduraft stand-in) with the
    paper's extensions: FlexiRaft quorums (§4.1), proxying (§4.2) and
    mock elections (§4.3).

    The node is unaware of MySQL: it reads/writes its log through
    {!log_ops} (the log abstraction of §3.1) and drives the database
    through {!callbacks} (the orchestration API of §3.3).  Witnesses are
    nodes whose log has no state machine behind it.

    kuduraft behaviours kept on purpose: no automatic leader step-down;
    graceful TransferLeadership runs no pre-election (mock elections
    fill that gap); one membership change at a time.

    Membership is managed by logless dynamic reconfiguration (Schultz et
    al., arXiv 2102.11960): configs live in per-node durable state keyed
    by a [(version, term)] identity, ride AppendEntries/RequestVote
    instead of the log, and newest identity wins.  A change is accepted
    only when the current config is committed (installed by a data
    quorum of itself in the current term) and the current term's commits
    are covered by a data quorum of the new config. *)

type node_id = Types.node_id

(** Log abstraction (§3.1): everything Raft needs from a log.  The MySQL
    plugin backs it with binlog/relay-log files. *)
type log_ops = {
  append : Binlog.Entry.t -> unit;
  entry_at : int -> Binlog.Entry.t option;
  last_opid : unit -> Binlog.Opid.t;
  term_at : int -> int option;
  truncate_from : int -> Binlog.Entry.t list;
  durable_index : unit -> int;
      (** Highest index the log has fsynced.  Raft only acknowledges
          replication (and counts its own vote toward commit) up to here,
          so a crash that tears off the unsynced tail can never lose an
          acked entry. *)
  run_batched : (unit -> unit) -> unit;
      (** Run a batch of appends under one coalesced fsync (group
          commit): [durable_index] covers the whole batch after return.
          Logs without group commit may use [fun f -> f ()]. *)
  purged_below : unit -> int;
      (** Entries below this index may have been compacted away; no
          AppendEntries prev anchor below it (minus one) exists. *)
  install_snapshot :
    last:Binlog.Opid.t -> gtids:Binlog.Gtid_set.t -> Binlog.Entry.t list;
      (** Rebase the log at a snapshot boundary: retain a matching tail
          or discard a conflicting one; returns the dropped suffix. *)
}

(** Specialize the abstraction to a {!Binlog.Log_store}. *)
val log_ops_of_store : Binlog.Log_store.t -> log_ops

(** Orchestration callbacks from Raft into the state machine (§3.3);
    mutable so the embedder can wire them after construction. *)
type callbacks = {
  mutable on_leader_start : noop_index:int -> unit;
  mutable on_step_down : unit -> unit;
  mutable on_commit_advance : commit_index:int -> unit;
  mutable on_entries_appended : Binlog.Entry.t list -> unit;
  mutable on_truncated : Binlog.Entry.t list -> unit;
  mutable on_quiesce : unit -> unit;
  mutable on_transfer_aborted : reason:string -> unit;
  mutable on_config_change : Types.config -> unit;
  mutable take_snapshot : unit -> Snapshot.t option;
      (** Produce an engine-checkpoint snapshot to rescue a peer wedged
          behind the purge boundary; [None] = no checkpoint source (the
          wedge stays visible as [raft.purge_wedges]). *)
  mutable install_snapshot : snapshot:Snapshot.t -> unit;
      (** Restore the engine from a received, verified checkpoint; the
          log has already been rebased at the boundary. *)
}

(** All callbacks are no-ops. *)
val default_callbacks : unit -> callbacks

type params = {
  heartbeat_interval : float;  (** 500 ms in production (§6.2) *)
  missed_heartbeats : int;  (** consecutive misses before an election *)
  election_jitter : float;
  quorum_mode : Quorum.mode;
  proxying : bool;
  max_entries_per_ae : int;
  max_inflight_aes : int;
      (** sliding replication window: entry-carrying AppendEntries
          outstanding per peer before the leader waits for an ack; 1 is
          stop-and-wait *)
  max_bytes_per_ae : int;
      (** ceiling of the adaptive (AIMD) per-peer byte budget for one
          AppendEntries batch; at least one entry always ships *)
  retransmit_timeout : float;
      (** floor before the oldest unacknowledged windowed send is
          resent; effective timeout is max(this, 4 x smoothed ack RTT) *)
  proxy_wait : float;  (** wait before degrading a PROXY_OP to heartbeat *)
  proxy_retry_interval : float;
  mock_election_timeout : float;
  mock_lag_allowance : int;
      (** §4.3 "lagging": an in-candidate-region voter rejects a mock
          vote when it trails the snapshot by more than this many
          entries *)
  transfer_timeout : float;
  use_pre_elections : bool;
  use_mock_elections : bool;
  auto_step_down_after : float;
      (** optional extension (0 = disabled, the kuduraft behaviour of
          §4.1): an isolated leader with an uncommittable tail abdicates
          after this long without data-quorum contact *)
  cache_bytes : int;
  use_leader_lease : bool;
      (** lease fast path for linearizable reads: serve at the commit
          index without a confirmation round while the lease (computed
          from quorum-acked AppendEntries send times) is valid *)
  lease_drift_margin : float;
      (** safety margin subtracted from the lease duration to absorb
          clock rate drift between leader and voters; a margin at or
          above the election timeout disables the lease *)
  max_clock_drift : float;
      (** clock-fault spec the lease must survive: the largest absolute
          per-node oscillator rate error (e.g. 0.01 = ±1%) the deployment
          promises.  Scales the lease duration down by (1 - drift) so a
          fast local clock still locally expires the lease before any
          healthy voter's election timer can fire, and arms the drift
          detectors (ack cross-check, tick watchdog).  0 (default)
          disables both, preserving the pre-clock-model behaviour. *)
  snapshot_chunk_bytes : int;
      (** payload bytes per InstallSnapshot chunk (stop-and-wait) *)
  snapshot_rate_bytes_per_s : float;
      (** pacing of the chunk stream so a bulk install cannot starve the
          entry pipeline; 0 disables pacing *)
  snapshot_retransmit_timeout : float;
      (** resend the unacked chunk from the acked offset after this long *)
  hb_suppress_limit : int;
      (** multi-Raft heartbeat coalescing: maximum consecutive empty
          AppendEntries an idle leader may skip to a peer while the
          shard mux vouches it recently carried a frame to that peer's
          node (the follower's failover clock is reset by
          {!note_transport_liveness} instead).  Suppression can only
          shorten the lease-extension stream, never extend a follower's
          patience, so it cannot create a second leader.  0 = disabled
          (single-group behaviour). *)
}

val default_params : params

(** Durable per-identity state (survives crashes): term, vote, the
    FlexiRaft last-known-leader / voting-history constraints, and the
    installed config with its identity (logless reconfiguration). *)
type durable

val fresh_durable : unit -> durable

type t

(** [metrics] receives the node's raft.* counters and latency histograms
    (a private registry is created when omitted); [tracebuf] receives
    OpId-correlated "consensus-commit" events as the commit index
    advances; [clock] is this node's local clock (a pristine one is
    created when omitted) — every election, heartbeat, lease and
    staleness interval the node measures runs on it, so injected clock
    faults distort exactly what they would on a real server. *)
val create :
  ?metrics:Obs.Metrics.t ->
  ?tracebuf:Obs.Tracebuf.t ->
  ?clock:Sim.Clock.t ->
  ?group:int ->
  engine:Sim.Engine.t ->
  id:node_id ->
  region:string ->
  send:(dst:node_id -> Message.t -> unit) ->
  log:log_ops ->
  callbacks:callbacks ->
  params:params ->
  initial_config:Types.config ->
  durable:durable ->
  trace:Sim.Trace.t ->
  unit ->
  t

(** Cancel timers; the node ignores everything afterwards (crash). *)
val stop : t -> unit

val is_stopped : t -> bool

(** Deliver one RPC (the embedder owns the network). *)
val handle_message : t -> src:node_id -> Message.t -> unit

(** {2 Client operations (leader only)} *)

(** Append a payload; Raft assigns the OpId and starts replication. *)
val client_append : t -> Binlog.Entry.payload -> (Binlog.Opid.t, string) result

(** Membership changes (§2.2) — one at a time, logless.  On success the
    new config is installed locally with the returned identity and
    gossiped; it is committed once {!has_pending_config_change} drops.
    Errors: not the leader, previous change still uncommitted, the two
    safety preconditions unmet, no voters, duplicate ids, or the leader
    removing/demoting itself (transfer first). *)
val change_membership :
  t -> Types.config -> description:string -> (Types.cfg_id, string) result

val add_member : t -> Types.member -> (Types.cfg_id, string) result

val remove_member : t -> node_id -> (Types.cfg_id, string) result

val promote_learner : t -> node_id -> (Types.cfg_id, string) result

val demote_voter : t -> node_id -> (Types.cfg_id, string) result

(** Observe installed-config events (adoption, local change, snapshot,
    election term rewrite with a membership delta).  Chains behind any
    callback the embedder wired; survives until the node object is
    rebuilt (i.e. re-subscribe after a restart). *)
val subscribe_config_change : t -> (Types.config -> unit) -> unit

(** Graceful transfer: optional mock election, quiesce, catch-up,
    TimeoutNow (§2.2, §4.3).  Completion/abort is reported through the
    callbacks. *)
val transfer_leadership : t -> target:node_id -> (unit, string) result

(** Start a real election immediately (bootstrap, TimeoutNow path,
    Quorum Fixer). *)
val trigger_election : t -> unit

(** {2 Linearizable read path (ReadIndex + leader lease)}

    [read_index t k] resolves, on the leader, the index a linearizable
    read must wait for the state machine to apply: the commit index,
    captured and then confirmed by one round of AppendEntries responses
    satisfying the FlexiRaft data quorum (concurrent requests batch into
    a single round, piggybacked on the pipelined replication stream).
    With a valid leader lease the round is skipped entirely.  [k]
    receives [Error _] on leadership loss, round timeout, or when called
    on a non-leader.

    Lease safety: the lease expires [missed_heartbeats x
    heartbeat_interval - lease_drift_margin] after the latest send time
    T such that responses from a data quorum prove every quorum member
    reset its election timer at or after T; because FlexiRaft election
    quorums intersect data quorums, no election bypassing that timer can
    complete while the lease holds.  The TimeoutNow / mock-election
    transfer path *does* bypass it, so {!transfer_leadership} revokes
    the lease and blocks re-extension; {!trigger_election} (bootstrap /
    Quorum Fixer) is the one remaining bypass and must not be aimed at a
    ring whose leader is serving lease reads. *)

val read_index : t -> ((int, string) result -> unit) -> unit

(** Like {!read_index} from any role: followers/learners forward the
    request to the last known leader and relay its answer (bounded by
    the election timeout). *)
val remote_read_index : t -> ((int, string) result -> unit) -> unit

(** The lease is valid: leader, lease not blocked by a transfer, a
    current-term entry has committed, and the expiry is in the future. *)
val lease_valid : t -> bool

(** Current lease expiry on this node's local clock ([neg_infinity] when
    none). *)
val lease_until : t -> float

(** The same lease's expiry by the engine's global clock — the safety
    oracle the chaos checker compares serves against; real servers have
    no analogue of this. *)
val lease_until_global : t -> float

(** Lease extension is blocked by an unresolved leadership transfer. *)
val lease_blocked : t -> bool

(** Lease fast-path serves issued after the lease had expired by global
    time: the stale-read safety oracle's count.  Any increase between
    checker sweeps is a linearizability violation. *)
val lease_stale_serves : t -> int

(** This node's local clock (fault-injection point for chaos). *)
val clock : t -> Sim.Clock.t

(** Post-corruption fence: crash recovery truncated the log at a corrupt
    entry and [opid] was the pre-truncation tail.  Until replication
    restores this node's log to at least [opid], it neither campaigns nor
    grants votes (Pre or Real) to candidates whose logs end below it —
    entries up to [opid] may have been acked toward commit, so a quorum
    ignorant of them must not form.  No-op if the log already covers
    [opid]; cleared automatically once an append reaches it. *)
val set_vote_floor : t -> Binlog.Opid.t -> unit

(** [(as_of, index)]: the engine is fresh as of [as_of] once it has
    applied through [index] — the leader's own clock and commit index,
    or on a follower the anchor propagated on AppendEntries.  Serves
    bounded-staleness reads. *)
val staleness_anchor : t -> float * int

(** A current-term entry has committed (fresh leaders' commit indexes
    are not authoritative before this). *)
val committed_in_current_term : t -> bool

(** {2 Introspection} *)

val id : t -> node_id

val region : t -> string

(** Multi-Raft group tag this instance was created with (default 0).
    Purely identifying: the shard mux stamps it on every frame so many
    groups can share one physical node and one network packet. *)
val group : t -> int

(** {2 Shard-mux transport liveness (multi-Raft)}

    With many Raft groups multiplexed on the same nodes, per-group
    heartbeats would dominate the wire.  The shard mux instead offers
    two hooks: the leader asks [carrier ~dst] whether the shared
    transport recently carried any frame from this node to [dst]'s node
    (and if so may skip up to [hb_suppress_limit] consecutive empty
    AppendEntries to it); the follower side receives
    [note_transport_liveness ~from] whenever any frame from [from]'s
    node is delivered locally, resetting its failover clock iff [from]
    is the leader it currently follows. *)

val set_transport_carrier : t -> (dst:node_id -> bool) -> unit

val note_transport_liveness : t -> from:node_id -> unit

val role : t -> Types.role

val is_leader : t -> bool

val current_term : t -> int

val commit_index : t -> int

val leader_id : t -> node_id option

val last_opid : t -> Binlog.Opid.t

val last_index : t -> int

val config : t -> Types.config

(** Identity of the installed config: [(version, term)], bumped by
    {!change_membership}, term-rewritten on election win. *)
val config_id : t -> Types.cfg_id

(** The installed config has been acknowledged by a data quorum of
    itself in the current term — the C1 precondition for the next
    change.  Always false on non-leaders. *)
val config_committed : t -> bool

val quorum_mode : t -> Quorum.mode

val is_voter : t -> bool

(** Derived (never stored): leader and the installed config is not yet
    committed.  A demoted or restarted node therefore reports false —
    a leader crash mid-reconfig cannot wedge its successor. *)
val has_pending_config_change : t -> bool

val elections_started : t -> int

val times_elected : t -> int

val cache : t -> Log_cache.t

(** The registry this node records into. *)
val metrics : t -> Obs.Metrics.t

(** Leader-side replication progress of one peer. *)
val match_index_of : t -> peer:node_id -> int option

(** Entry-carrying AppendEntries currently in a peer's sliding window. *)
val window_of : t -> peer:node_id -> int option

(** A snapshot install to this peer is in progress (entry replication to
    it is paused). *)
val snapshot_in_flight : t -> peer:node_id -> bool

(** Episodes of a peer frontier falling behind the purge boundary
    (the [raft.purge_wedges] counter). *)
val purge_wedges : t -> int

(** Snapshot transfers this leader completed ([snapshot.sends_completed]). *)
val snapshots_sent : t -> int

(** Snapshots this node installed as a follower ([snapshot.installs]). *)
val snapshots_installed : t -> int

(** Tell Raft the embedder coalesced a group of leader-side appends into
    one fsync: the local durable index advanced, so commit may too. *)
val notify_log_synced : t -> unit

(** Highest index known to have reached at least one member of a region
    (purge heuristics, §A.1). *)
val region_watermark : t -> region:string -> int

(** Highest index safe to purge: shipped to every region and committed. *)
val safe_purge_index : t -> int

(** Quorum Fixer override (§5.3): when set, this node's elections are
    satisfied by its own vote. *)
val set_force_election_quorum : t -> bool -> unit

val describe : t -> string
