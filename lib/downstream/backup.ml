(* Backup and restore (§3, §5.1): the binlog-based backup service that
   MyRaft had to keep working, exercised by shadow testing alongside CDC.

   A backup is a consistent snapshot of a member's consensus-committed
   binlog prefix plus its position.  Restore replays it into a fresh
   server — engine state is rebuilt by applying the row events, exactly
   like a physical backup + binlog replay — which is also how new
   members are seeded when the history they need has already been purged
   from the ring (Raft's snapshot-install step, done by the backup
   service in Meta's deployment). *)

type t = {
  taken_from : string;
  position : Binlog.Opid.t; (* last entry included *)
  entries : Binlog.Entry.t list; (* ascending, consensus-committed only *)
  gtid_executed : Binlog.Gtid_set.t;
}

let position t = t.position

let taken_from t = t.taken_from

let entry_count t = List.length t.entries

let gtid_executed t = t.gtid_executed

(* Assemble a backup from an entry list (ascending, contiguous from
   index 1) — used by migration tooling that already holds the stream. *)
let of_entries ~taken_from entries =
  {
    taken_from;
    position =
      (match List.rev entries with
      | last :: _ -> Binlog.Entry.opid last
      | [] -> Binlog.Opid.zero);
    entries;
    gtid_executed =
      List.fold_left
        (fun acc e ->
          match Binlog.Entry.gtid e with
          | Some g -> Binlog.Gtid_set.add acc g
          | None -> acc)
        Binlog.Gtid_set.empty entries;
  }

(* Take a backup from a live member: its committed binlog prefix.  Fails
   if the member's history has holes (purged below its own commit point
   before it was ever backed up — cannot happen for members that joined
   with full history or via restore). *)
let take server =
  if Myraft.Server.is_crashed server then Error "source is down"
  else begin
    let raft = Myraft.Server.raft server in
    let commit = Raft.Node.commit_index raft in
    let log = Myraft.Server.log server in
    let rec collect idx acc =
      if idx > commit then Ok (List.rev acc)
      else
        match Binlog.Log_store.entry_at log idx with
        | Some e ->
          if Binlog.Entry.verify e then collect (idx + 1) (e :: acc)
          else Error (Printf.sprintf "checksum failure at index %d" idx)
        | None -> Error (Printf.sprintf "history purged at index %d" idx)
    in
    let from_index = Binlog.Log_store.purged_below log in
    if from_index > 1 then Error "source's local history is already purged"
    else
      match collect 1 [] with
      | Error e -> Error e
      | Ok entries ->
        let position =
          match List.rev entries with
          | last :: _ -> Binlog.Entry.opid last
          | [] -> Binlog.Opid.zero
        in
        Ok
          {
            taken_from = Myraft.Server.id server;
            position;
            entries;
            gtid_executed =
              List.fold_left
                (fun acc e ->
                  match Binlog.Entry.gtid e with
                  | Some g -> Binlog.Gtid_set.add acc g
                  | None -> acc)
                Binlog.Gtid_set.empty entries;
          }
  end

(* Replay a backup into a fresh (empty) MySQL server: seed the log and
   rebuild the engine by applying each transaction. *)
let restore_into_server backup server =
  let log = Myraft.Server.log server in
  if Binlog.Log_store.last_index log <> 0 then Error "target server is not empty"
  else begin
    let storage = Myraft.Server.storage server in
    List.iter
      (fun entry ->
        Binlog.Log_store.append log entry;
        match Binlog.Entry.payload entry with
        | Binlog.Entry.Transaction { gtid; events } ->
          let writes =
            List.concat_map
              (fun ev ->
                match Binlog.Event.body ev with
                | Binlog.Event.Write_rows { table; ops } ->
                  List.map (fun op -> (table, op)) ops
                | _ -> [])
              events
          in
          Storage.Engine.prepare storage ~gtid ~writes;
          Storage.Engine.commit_prepared storage ~gtid ~opid:(Binlog.Entry.opid entry)
        | _ -> ())
      backup.entries;
    (* The applier was started on an empty server; its cursor must move
       to the seeded position before Raft starts feeding entries. *)
    Myraft.Server.reposition_applier server;
    Ok ()
  end

(* Seed a fresh logtailer (log only, no engine). *)
let restore_into_tailer backup tailer =
  let log = Myraft.Logtailer.log tailer in
  if Binlog.Log_store.last_index log <> 0 then Error "target logtailer is not empty"
  else begin
    List.iter (fun entry -> Binlog.Log_store.append log entry) backup.entries;
    Ok ()
  end

(* Verify a backup against a live member: every backed-up transaction
   must be engine-committed there with identical content — the §5.1
   backup-consistency check. *)
let verify_against backup server =
  let log = Myraft.Server.log server in
  let mismatch =
    List.find_opt
      (fun e ->
        match Binlog.Log_store.entry_at log (Binlog.Entry.index e) with
        | Some live ->
          not
            (Binlog.Opid.equal (Binlog.Entry.opid live) (Binlog.Entry.opid e)
            && Int32.equal (Binlog.Entry.checksum live) (Binlog.Entry.checksum e))
        | None -> false (* purged on the live side; nothing to compare *))
      backup.entries
  in
  match mismatch with
  | Some e -> Error ("backup diverges from live log at " ^ Binlog.Entry.describe e)
  | None -> Ok ()
