(** Simulated transactional storage engine (the InnoDB/MyRocks stand-in),
    modelling exactly the surface MyRaft's commit path touches: 2PC
    prepare markers, durable commit with GTID + OpId bookkeeping, online
    rollback, row locks, and crash recovery (§3.4, §3.3, §A.2). *)

type t

exception Lock_conflict of { table : string; key : string; holder : Binlog.Gtid.t }

val create : unit -> t

(** Stage a transaction, acquiring row locks.  Raises {!Lock_conflict}
    if another prepared transaction holds a touched key, and
    [Invalid_argument] on duplicate gtids. *)
val prepare : t -> gtid:Binlog.Gtid.t -> writes:(string * Binlog.Event.row_op) list -> unit

val is_prepared : t -> Binlog.Gtid.t -> bool

val prepared_gtids : t -> Binlog.Gtid.t list

(** Durably apply a prepared transaction, stamping the Raft OpId and
    releasing its locks. *)
val commit_prepared : t -> gtid:Binlog.Gtid.t -> opid:Binlog.Opid.t -> unit

(** Register a commit listener, fired after every {!commit_prepared}
    once the transaction is fully applied ([gtid_executed] and
    [last_committed_opid] already include it).  This is what replaces
    polling for WAIT_FOR_EXECUTED_GTID_SET-style waits and drives the
    read path's applied-index cursor. *)
val subscribe_commit : t -> (Binlog.Gtid.t -> Binlog.Opid.t -> unit) -> unit

(** Discard a prepared transaction (no-op if not prepared). *)
val rollback_prepared : t -> gtid:Binlog.Gtid.t -> unit

(** Restart semantics: roll back every prepared transaction; committed
    state survives.  Returns how many were rolled back. *)
val crash_recover : t -> int

val get : t -> table:string -> key:string -> string option

(** Engine-durable executed-GTID set. *)
val gtid_executed : t -> Binlog.Gtid_set.t

val has_committed : t -> Binlog.Gtid.t -> bool

(** "Last transaction committed in engine": the recovery cursor for the
    applier (§3.3 step 5). *)
val last_committed_opid : t -> Binlog.Opid.t

val committed_count : t -> int

val rolled_back_count : t -> int

val row_count : t -> table:string -> int

(** Content digest for the shadow-testing checksum comparisons between
    leader and followers (§5.1). *)
val checksum : t -> int32

(** Digest of the first [count] commits in commit order ([0l] when
    [count = 0]) — lets a lagging replica's whole history be compared
    against the same-length prefix of a reference replica.  Raises
    [Invalid_argument] when [count] exceeds {!committed_count}. *)
val checksum_at : t -> count:int -> int32

(** The [n]th committed transaction (0-based, commit order). *)
val nth_commit : t -> int -> (Binlog.Gtid.t * Binlog.Opid.t) option

(** A full engine state capture for snapshot shipping: table content,
    executed-GTID set, recovery cursor, and the cumulative commit-digest
    chain (so a restored replica still proves history convergence). *)
type checkpoint

val checkpoint : t -> checkpoint

(** Reseat the engine from a checkpoint: prepared transactions are
    rolled back (as in crash recovery), committed state is replaced
    wholesale; commit listeners survive. *)
val restore : t -> checkpoint -> unit

(** Serialization for the InstallSnapshot wire payload. *)
val encode_checkpoint : checkpoint -> string

val decode_checkpoint : string -> checkpoint
