(* Simulated transactional storage engine (the InnoDB/MyRocks stand-in).

   Models exactly the surface MyRaft's commit path touches:
   - [prepare] writes prepare markers (2PC with the binlog): the
     transaction's effects are staged but not visible;
   - [commit_prepared] durably applies a prepared transaction and records
     its GTID and OpId (the engine is the recovery source of truth for
     "last transaction committed in engine", §3.3 demotion step 5);
   - [rollback_prepared] discards a prepared transaction online (demotion
     step 1, and crash recovery cases 1-3 of §A.2);
   - [crash_recover] is what restart does: every prepared-but-uncommitted
     transaction is rolled back, committed data survives.

   Row-level locks are modelled as per-key ownership so that conflicting
   writes queue behind the prepared transaction holding the lock, which
   is what makes group-commit stalls visible in latency. *)

type row = { value : string; mutable last_writer : Binlog.Gtid.t option }

type prepared = {
  gtid : Binlog.Gtid.t;
  writes : (string * Binlog.Event.row_op) list; (* (table, op) *)
  locked_keys : (string * string) list; (* (table, key) *)
}

exception Lock_conflict of { table : string; key : string; holder : Binlog.Gtid.t }

type t = {
  tables : (string, (string, row) Hashtbl.t) Hashtbl.t;
  prepared : (Binlog.Gtid.t, prepared) Hashtbl.t;
  locks : (string * string, Binlog.Gtid.t) Hashtbl.t;
  mutable gtid_executed : Binlog.Gtid_set.t; (* engine-durable *)
  mutable last_committed_opid : Binlog.Opid.t;
  mutable committed_count : int;
  mutable rolled_back_count : int;
  (* Cumulative digest chain: slot i-1 holds the digest of the first i
     commits, in commit order.  Lets consistency checks compare a lagging
     replica's whole history against the same-length prefix of a
     reference replica (§5.1 checksum comparisons). *)
  commit_digests : int32 Vec.t;
  commit_log : (Binlog.Gtid.t * Binlog.Opid.t) Vec.t; (* commit order *)
  mutable commit_listeners : (Binlog.Gtid.t -> Binlog.Opid.t -> unit) list;
  (* fired (in subscription order) after each commit_prepared has fully
     applied: gtid_executed and last_committed_opid already reflect the
     transaction when a listener runs *)
}

let create () =
  {
    tables = Hashtbl.create 8;
    prepared = Hashtbl.create 64;
    locks = Hashtbl.create 64;
    gtid_executed = Binlog.Gtid_set.empty;
    last_committed_opid = Binlog.Opid.zero;
    committed_count = 0;
    rolled_back_count = 0;
    commit_digests = Vec.create ~dummy:0l;
    commit_log = Vec.create ~dummy:(Binlog.Gtid.make ~source:"none" ~gno:1, Binlog.Opid.zero);
    commit_listeners = [];
  }

let subscribe_commit t f = t.commit_listeners <- t.commit_listeners @ [ f ]

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.replace t.tables name tbl;
    tbl

let key_of_op = function
  | Binlog.Event.Insert { key; _ } | Update { key; _ } | Delete { key; _ } -> key

(* Stage a transaction.  Raises [Lock_conflict] if another prepared
   transaction holds a lock on any touched key. *)
let prepare t ~gtid ~writes =
  if Hashtbl.mem t.prepared gtid then invalid_arg "Engine.prepare: duplicate gtid";
  let locked_keys = List.map (fun (tbl, op) -> (tbl, key_of_op op)) writes in
  List.iter
    (fun (tbl, key) ->
      match Hashtbl.find_opt t.locks (tbl, key) with
      | Some holder when not (Binlog.Gtid.equal holder gtid) ->
        raise (Lock_conflict { table = tbl; key; holder })
      | _ -> ())
    locked_keys;
  List.iter (fun k -> Hashtbl.replace t.locks k gtid) locked_keys;
  Hashtbl.replace t.prepared gtid { gtid; writes; locked_keys }

let is_prepared t gtid = Hashtbl.mem t.prepared gtid

let prepared_gtids t = Hashtbl.fold (fun g _ acc -> g :: acc) t.prepared []

let release_locks t p = List.iter (fun k -> Hashtbl.remove t.locks k) p.locked_keys

(* Fold one commit's identity into the digest chain: previous digest,
   GTID, OpId, then each write's table/op-tag/fields.  Streaming the
   fields through the CRC allocates nothing; the old form marshalled the
   triple into a throwaway string and concatenated it on every commit on
   every node.  The digest is deterministic across replicas because the
   folded fields are exactly the replicated transaction identity. *)
let commit_digest ~prev ~gtid ~opid writes =
  let open Binlog.Checksum in
  let st = feed_int32 init prev in
  let st = feed_string st (Binlog.Gtid.source gtid) in
  let st = feed_int st (Binlog.Gtid.gno gtid) in
  let st = feed_int st (Binlog.Opid.term opid) in
  let st = feed_int st (Binlog.Opid.index opid) in
  let st =
    List.fold_left
      (fun st (tbl, op) ->
        let st = feed_string st tbl in
        match op with
        | Binlog.Event.Insert { key; value } ->
          feed_string (feed_string (feed_int st 1) key) value
        | Binlog.Event.Update { key; before; after } ->
          feed_string (feed_string (feed_string (feed_int st 2) key) before) after
        | Binlog.Event.Delete { key; before } ->
          feed_string (feed_string (feed_int st 3) key) before)
      st writes
  in
  finalize st

let apply_op t gtid (tbl_name, op) =
  let tbl = table t tbl_name in
  match op with
  | Binlog.Event.Insert { key; value } | Update { key; after = value; _ } ->
    Hashtbl.replace tbl key { value; last_writer = Some gtid }
  | Delete { key; _ } -> Hashtbl.remove tbl key

(* Durably commit a prepared transaction, stamping the Raft OpId. *)
let commit_prepared t ~gtid ~opid =
  match Hashtbl.find_opt t.prepared gtid with
  | None -> invalid_arg ("Engine.commit_prepared: not prepared: " ^ Binlog.Gtid.to_string gtid)
  | Some p ->
    List.iter (apply_op t gtid) p.writes;
    release_locks t p;
    Hashtbl.remove t.prepared gtid;
    t.gtid_executed <- Binlog.Gtid_set.add t.gtid_executed gtid;
    if Binlog.Opid.compare opid t.last_committed_opid > 0 then
      t.last_committed_opid <- opid;
    t.committed_count <- t.committed_count + 1;
    let prev = match Vec.last_opt t.commit_digests with Some d -> d | None -> 0l in
    Vec.push t.commit_digests (commit_digest ~prev ~gtid ~opid p.writes);
    Vec.push t.commit_log (gtid, opid);
    List.iter (fun f -> f gtid opid) t.commit_listeners

let rollback_prepared t ~gtid =
  match Hashtbl.find_opt t.prepared gtid with
  | None -> ()
  | Some p ->
    release_locks t p;
    Hashtbl.remove t.prepared gtid;
    t.rolled_back_count <- t.rolled_back_count + 1

(* Restart semantics: prepared transactions are rolled back; committed
   state, gtid_executed, and last_committed_opid survive (they live in
   the engine's WAL). *)
let crash_recover t =
  let pending = prepared_gtids t in
  List.iter (fun gtid -> rollback_prepared t ~gtid) pending;
  List.length pending

let get t ~table:tbl_name ~key =
  match Hashtbl.find_opt t.tables tbl_name with
  | None -> None
  | Some tbl -> Option.map (fun r -> r.value) (Hashtbl.find_opt tbl key)

let gtid_executed t = t.gtid_executed

let has_committed t gtid = Binlog.Gtid_set.contains t.gtid_executed gtid

let last_committed_opid t = t.last_committed_opid

let committed_count t = t.committed_count

let rolled_back_count t = t.rolled_back_count

let row_count t ~table:tbl_name =
  match Hashtbl.find_opt t.tables tbl_name with None -> 0 | Some tbl -> Hashtbl.length tbl

(* Content digest used by the shadow-testing checksum comparisons between
   leader and followers (§5.1). *)
let checksum t =
  let rows = ref [] in
  Hashtbl.iter
    (fun tbl_name tbl ->
      Hashtbl.iter (fun key r -> rows := (tbl_name, key, r.value) :: !rows) tbl)
    t.tables;
  let sorted = List.sort compare !rows in
  Binlog.Checksum.string (Marshal.to_string sorted [])

(* Digest of the first [count] commits (in commit order); [0l] for an
   empty prefix.  Two replicas agree on every shared prefix iff they
   committed the same transactions in the same order. *)
let checksum_at t ~count =
  if count < 0 || count > t.committed_count then
    invalid_arg
      (Printf.sprintf "Engine.checksum_at: count %d outside [0, %d]" count t.committed_count);
  if count = 0 then 0l else Vec.get t.commit_digests (count - 1)

(* The [n]th committed transaction (0-based, commit order). *)
let nth_commit t n = Vec.get_opt t.commit_log n

(* ----- engine-checkpoint snapshots (log compaction / InstallSnapshot) ----- *)

(* Everything a snapshot must carry to reseat a follower's engine:
   committed table content, the executed-GTID set, the recovery cursor,
   and the cumulative commit-digest chain — without the chain a restored
   replica could no longer prove history convergence against its peers
   (the §5.1 prefix-checksum comparisons). *)
type checkpoint = {
  ck_rows : (string * (string * string * Binlog.Gtid.t option) list) list;
  ck_gtid_executed : Binlog.Gtid_set.t;
  ck_last_committed_opid : Binlog.Opid.t;
  ck_committed_count : int;
  ck_digests : int32 list;
  ck_commit_log : (Binlog.Gtid.t * Binlog.Opid.t) list;
}

let checkpoint t =
  let rows =
    Hashtbl.fold
      (fun tbl_name tbl acc ->
        let rows =
          Hashtbl.fold (fun key r acc -> (key, r.value, r.last_writer) :: acc) tbl []
        in
        (tbl_name, rows) :: acc)
      t.tables []
  in
  {
    ck_rows = rows;
    ck_gtid_executed = t.gtid_executed;
    ck_last_committed_opid = t.last_committed_opid;
    ck_committed_count = t.committed_count;
    ck_digests = Vec.to_list t.commit_digests;
    ck_commit_log = Vec.to_list t.commit_log;
  }

(* Reseat the engine from a checkpoint.  Prepared-but-uncommitted
   transactions don't survive (same as crash recovery); commit listeners
   do — they belong to the server wiring, not the replicated state. *)
let restore t ck =
  ignore (crash_recover t);
  Hashtbl.reset t.tables;
  Hashtbl.reset t.locks;
  List.iter
    (fun (tbl_name, rows) ->
      let tbl = table t tbl_name in
      List.iter
        (fun (key, value, last_writer) -> Hashtbl.replace tbl key { value; last_writer })
        rows)
    ck.ck_rows;
  t.gtid_executed <- ck.ck_gtid_executed;
  t.last_committed_opid <- ck.ck_last_committed_opid;
  t.committed_count <- ck.ck_committed_count;
  ignore (Vec.truncate_to t.commit_digests 0);
  List.iter (Vec.push t.commit_digests) ck.ck_digests;
  ignore (Vec.truncate_to t.commit_log 0);
  List.iter (Vec.push t.commit_log) ck.ck_commit_log

let encode_checkpoint ck = Marshal.to_string ck []

let decode_checkpoint s : checkpoint = Marshal.from_string s 0
