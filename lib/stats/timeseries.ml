(* Fixed-width-bucket time series of counts (commits per unit time).

   Used for the throughput panels (Figure 5b/5d): record one event per
   commit with its virtual timestamp; [series] returns commits-per-bucket
   rows; [render] draws the two series side by side. *)

type t = {
  bucket_width : float; (* microseconds *)
  counts : (int, int ref) Hashtbl.t;
  mutable first : float;
  mutable last : float;
  mutable total : int;
}

let create ~bucket_width =
  assert (bucket_width > 0.0);
  { bucket_width; counts = Hashtbl.create 64; first = infinity; last = neg_infinity; total = 0 }

let record t time =
  let b = int_of_float (time /. t.bucket_width) in
  (match Hashtbl.find_opt t.counts b with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counts b (ref 1));
  if time < t.first then t.first <- time;
  if time > t.last then t.last <- time;
  t.total <- t.total + 1

let total t = t.total

let bucket_width t = t.bucket_width

(* (bucket_start_time, count) rows covering the full observed range, with
   zero-filled gaps. *)
let series t =
  if t.total = 0 then []
  else begin
    let b0 = int_of_float (t.first /. t.bucket_width) in
    let b1 = int_of_float (t.last /. t.bucket_width) in
    List.init
      (b1 - b0 + 1)
      (fun i ->
        let b = b0 + i in
        let c = match Hashtbl.find_opt t.counts b with Some r -> !r | None -> 0 in
        (float_of_int b *. t.bucket_width, c))
  end

let mean_rate_per_bucket t =
  match series t with
  | [] -> 0.0
  | rows ->
    let sum = List.fold_left (fun acc (_, c) -> acc + c) 0 rows in
    float_of_int sum /. float_of_int (List.length rows)

(* Render two aligned series, one character column per bucket. *)
let render_pair ~label_a a ~label_b b ~width =
  let rows_a = series a and rows_b = series b in
  let take rows =
    let arr = Array.of_list (List.map snd rows) in
    if Array.length arr <= width then arr
    else begin
      (* downsample by averaging groups *)
      let group = (Array.length arr + width - 1) / width in
      Array.init
        ((Array.length arr + group - 1) / group)
        (fun i ->
          let start = i * group in
          let stop = min (Array.length arr) (start + group) in
          let sum = ref 0 in
          for j = start to stop - 1 do
            sum := !sum + arr.(j)
          done;
          (* Round to nearest rather than floor: floor renders low-rate
             groups (avg < 1 event/bucket) as blank even though activity
             happened there.  Any nonzero group stays >= 1. *)
          let n = stop - start in
          let avg = ((2 * !sum) + n) / (2 * n) in
          if !sum > 0 then max 1 avg else 0)
    end
  in
  let va = take rows_a and vb = take rows_b in
  let maxc =
    max (Array.fold_left max 1 va) (Array.fold_left max 1 vb)
  in
  let line arr =
    String.init (Array.length arr) (fun i ->
        let level = arr.(i) * 8 / maxc in
        (* nonzero counts always show at least the faintest glyph *)
        let level = if arr.(i) > 0 then max 1 level else level in
        " .:-=+*#%".[min 8 level])
  in
  Printf.sprintf "  %-12s |%s|\n  %-12s |%s|\n  (peak bucket = %d commits)\n" label_a
    (line va) label_b (line vb) maxc
