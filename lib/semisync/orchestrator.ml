(* The prior setup's external control plane: health monitoring, dead
   primary failover, and graceful promotion, all orchestrated from
   *outside* the database (§1.1) — the design whose slow, heavy-tailed
   remediation Table 2 contrasts with Raft's in-server failover.

   The orchestrator is itself a network participant: it detects a dead
   primary by pinging it over the simulated network, so partitions and
   crashes look exactly like they would to real automation. *)

type ctx = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  rng : Sim.Rng.t;
  params : Params.t;
  discovery : Myraft.Service_discovery.t;
  replicaset : string;
  orchestrator_id : string;
  send : dst:string -> Wire.t -> unit;
  servers : unit -> Server.t list;
  ackers : unit -> Acker.t list;
  (* shipping peers (id, is_acker) a given primary should serve *)
  peers_for : string -> (string * bool) list;
}

type t = {
  ctx : ctx;
  mutable current_primary : string;
  mutable misses : int;
  mutable next_ping : int;
  pending_pings : (int, Sim.Engine.handle) Hashtbl.t;
  mutable in_failover : bool;
  mutable monitoring : bool;
  mutable failovers : int;
  mutable promotions : int;
}

let tracef t fmt = Sim.Trace.record t.ctx.trace ~tag:"orchestrator" fmt

let current_primary t = t.current_primary

let failovers t = t.failovers

let promotions t = t.promotions

let create ctx ~initial_primary =
  {
    ctx;
    current_primary = initial_primary;
    misses = 0;
    next_ping = 1;
    pending_pings = Hashtbl.create 8;
    in_failover = false;
    monitoring = false;
    failovers = 0;
    promotions = 0;
  }

let server t id = List.find (fun s -> Server.id s = id) (t.ctx.servers ())

let live_replicas t =
  List.filter
    (fun s ->
      Server.id s <> t.current_primary
      && (not (Server.is_crashed s))
      && Server.role s = Server.Replica)
    (t.ctx.servers ())

(* ----- repointing helpers ----- *)

let repoint_everyone t ~new_primary =
  List.iter
    (fun s -> if Server.id s <> new_primary then Server.repoint s ~new_upstream:new_primary)
    (t.ctx.servers ());
  List.iter (fun a -> Acker.repoint a ~new_upstream:new_primary) (t.ctx.ackers ())

let publish t ~new_primary =
  Myraft.Service_discovery.publish_primary t.ctx.discovery ~replicaset:t.ctx.replicaset
    ~primary:new_primary ~delay:t.ctx.params.Params.publish_delay

(* ----- dead primary failover ----- *)

let rec failover_catchup_then_promote t ~target ~on_done =
  let target_server = server t target in
  if Server.applied_seq target_server >= Server.last_seq target_server then begin
    Server.start_as_primary target_server ~peers:(t.ctx.peers_for target);
    repoint_everyone t ~new_primary:target;
    (* Sequential CHANGE MASTER TO on every other replica. *)
    let others = List.length (live_replicas t) in
    let repoint_total = float_of_int others *. t.ctx.params.Params.repoint_delay in
    ignore
      (Sim.Engine.schedule t.ctx.engine ~delay:repoint_total (fun () ->
           publish t ~new_primary:target;
           t.current_primary <- target;
           t.failovers <- t.failovers + 1;
           t.in_failover <- false;
           t.misses <- 0;
           tracef t "failover complete: %s is primary" target;
           on_done ()))
  end
  else
    ignore
      (Sim.Engine.schedule t.ctx.engine ~delay:t.ctx.params.Params.catchup_poll (fun () ->
           failover_catchup_then_promote t ~target ~on_done))

let start_failover t ~on_done =
  if not t.in_failover then begin
    t.in_failover <- true;
    tracef t "primary %s declared dead; starting failover" t.current_primary;
    let p = t.ctx.params in
    (* 1. distributed lock, 2. per-replica position queries, 3. the
       heavy-tailed automation overhead (worker queues, retries). *)
    let lock =
      Sim.Rng.uniform t.ctx.rng ~lo:p.Params.lock_delay_lo ~hi:p.Params.lock_delay_hi
    in
    let queries =
      float_of_int (List.length (live_replicas t)) *. p.Params.position_query_delay
    in
    let remediation =
      Sim.Rng.lognormal t.ctx.rng ~mu:p.Params.remediation_mu
        ~sigma:p.Params.remediation_sigma
    in
    ignore
      (Sim.Engine.schedule t.ctx.engine ~delay:(lock +. queries +. remediation) (fun () ->
           match
             List.sort
               (fun a b -> compare (Server.last_seq b) (Server.last_seq a))
               (live_replicas t)
           with
           | [] ->
             tracef t "failover aborted: no live replica";
             t.in_failover <- false;
             on_done ()
           | best :: _ ->
             tracef t "failover target: %s (seq %d)" (Server.id best) (Server.last_seq best);
             failover_catchup_then_promote t ~target:(Server.id best) ~on_done))
  end

(* ----- health monitoring ----- *)

let handle_message t ~src:_ msg =
  match msg with
  | Wire.Pong { ping_id } -> (
    match Hashtbl.find_opt t.pending_pings ping_id with
    | Some timeout_handle ->
      Sim.Engine.cancel timeout_handle;
      Hashtbl.remove t.pending_pings ping_id;
      t.misses <- 0
    | None -> ())
  | Wire.Replicate _ | Wire.Ack _ | Wire.Write_request _ | Wire.Write_reply _
  | Wire.Read_request _ | Wire.Read_reply _ | Wire.Ping _ ->
    ()

let rec monitor_tick t =
  if t.monitoring then begin
    if not t.in_failover then begin
      let ping_id = t.next_ping in
      t.next_ping <- t.next_ping + 1;
      let timeout_handle =
        Sim.Engine.schedule t.ctx.engine ~delay:t.ctx.params.Params.ping_timeout (fun () ->
            Hashtbl.remove t.pending_pings ping_id;
            t.misses <- t.misses + 1;
            tracef t "ping %d to %s timed out (%d/%d)" ping_id t.current_primary t.misses
              t.ctx.params.Params.confirmations;
            if t.misses >= t.ctx.params.Params.confirmations then
              start_failover t ~on_done:(fun () -> ()))
      in
      Hashtbl.replace t.pending_pings ping_id timeout_handle;
      t.ctx.send ~dst:t.current_primary (Wire.Ping { ping_id })
    end;
    ignore
      (Sim.Engine.schedule t.ctx.engine ~delay:t.ctx.params.Params.poll_interval (fun () ->
           monitor_tick t))
  end

let start_monitoring t =
  if not t.monitoring then begin
    t.monitoring <- true;
    monitor_tick t
  end

let stop_monitoring t = t.monitoring <- false

(* ----- graceful promotion ----- *)

let rec promotion_wait_catchup t ~old_primary ~target ~on_done =
  let old_server = server t old_primary and target_server = server t target in
  if
    (* the old primary's pipeline must drain (in-flight commits finish)
       and the target must have received and applied the full log *)
    Server.pipeline_in_flight old_server = 0
    && Server.last_seq target_server >= Server.last_seq old_server
    && Server.applied_seq target_server >= Server.last_seq old_server
  then begin
    let p = t.ctx.params in
    let overhead =
      Sim.Rng.lognormal t.ctx.rng ~mu:p.Params.promotion_overhead_mu
        ~sigma:p.Params.promotion_overhead_sigma
    in
    ignore
      (Sim.Engine.schedule t.ctx.engine
         ~delay:(overhead +. p.Params.promotion_step_delay)
         (fun () ->
           Server.demote old_server ~new_upstream:(Some target);
           Server.start_as_primary (server t target) ~peers:(t.ctx.peers_for target);
           repoint_everyone t ~new_primary:target;
           publish t ~new_primary:target;
           t.current_primary <- target;
           t.promotions <- t.promotions + 1;
           tracef t "graceful promotion complete: %s is primary" target;
           on_done ()))
  end
  else
    ignore
      (Sim.Engine.schedule t.ctx.engine ~delay:t.ctx.params.Params.catchup_poll (fun () ->
           promotion_wait_catchup t ~old_primary ~target ~on_done))

let graceful_promotion t ~target ~on_done =
  if t.in_failover then Error "failover in progress"
  else if target = t.current_primary then Error "target is already primary"
  else begin
    let old_primary = t.current_primary in
    tracef t "graceful promotion %s -> %s" old_primary target;
    (* Quiesce the old primary first: client downtime starts here. *)
    Server.disable_writes (server t old_primary);
    ignore
      (Sim.Engine.schedule t.ctx.engine ~delay:t.ctx.params.Params.promotion_step_delay
         (fun () -> promotion_wait_catchup t ~old_primary ~target ~on_done));
    Ok ()
  end
