(** Messages of the prior setup: primary->replica shipping, semi-sync
    acks, client writes and reads, and the orchestrator's health pings. *)

type t =
  | Replicate of { entries : Binlog.Entry.t list }
  | Ack of { seq : int; from_acker : bool }
  | Write_request of {
      write_id : int;
      table : string;
      ops : Binlog.Event.row_op list;
      client : string;
    }
  | Write_reply of { write_id : int; ok : bool; gtid : Binlog.Gtid.t option }
      (** [gtid] is the committed transaction's GTID — the session token
          for read-your-writes on replicas *)
  | Read_request of {
      read_id : int;
      level : Read.Level.t;
      table : string;
      key : string;
      client : string;
    }
  | Read_reply of { read_id : int; value : (string option, string) result }
  | Ping of { ping_id : int }
  | Pong of { ping_id : int }

(** Wire size in bytes for bandwidth accounting. *)
val size : t -> int
