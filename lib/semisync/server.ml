(* A MySQL server under the prior setup (§1.1, §6): semi-synchronous
   replication to in-region acker logtailers, asynchronous replication to
   remote replicas, and *no* internal failure handling — role changes are
   performed from outside by the Orchestrator.

   The commit pipeline is the same three-stage MySQL group-commit engine
   as MyRaft's (flush / wait / engine-commit); the difference is that the
   wait stage is released by the first semi-sync acker acknowledgement
   instead of Raft's consensus-commit marker, and there is no term/fencing
   machinery: an isolated primary simply blocks (its clients time out),
   which is exactly the behaviour whose operational cost §6.2 quantifies. *)

type role = Primary | Replica

type peer = {
  peer_id : string;
  is_acker : bool;
  mutable acked_seq : int;
  mutable ship_inflight : bool;
  mutable last_ship : float;
}

type t = {
  id : string;
  region : string;
  replicaset : string;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  costs : Myraft.Params.t; (* shared MySQL cost model *)
  params : Params.t;
  send : dst:string -> Wire.t -> unit;
  discovery : Myraft.Service_discovery.t;
  storage : Storage.Engine.t;
  log : Binlog.Log_store.t;
  mutable pipeline : Myraft.Pipeline.t;
  mutable role : role;
  mutable writes_enabled : bool;
  mutable crashed : bool;
  mutable upstream : string option; (* replica: who we accept entries from *)
  peers : (string, peer) Hashtbl.t; (* primary: shipping state *)
  mutable semisync_acked : int; (* highest seq acked by an acker *)
  mutable next_gno : int;
  mutable next_xid : int64;
  mutable ship_timer : Sim.Engine.handle option;
  (* replica apply loop *)
  mutable apply_queue : Binlog.Entry.t Queue.t;
  mutable apply_busy : bool;
  mutable applied_seq : int;
  mutable writes_committed : int;
  mutable writes_rejected : int;
}

let id t = t.id

let region t = t.region

let role t = t.role

let writes_enabled t = t.writes_enabled

let is_crashed t = t.crashed

let storage t = t.storage

let log t = t.log

let last_seq t = Binlog.Opid.index (Binlog.Log_store.last_opid t.log)

let applied_seq t = t.applied_seq

let writes_committed t = t.writes_committed

let pipeline_in_flight t = Myraft.Pipeline.in_flight t.pipeline

let tracef t fmt = Sim.Trace.record t.trace ~tag:"semisync" fmt

(* ----- primary: shipping ----- *)

let ship_to t peer =
  if t.role = Primary && not peer.ship_inflight then begin
    let from_seq = peer.acked_seq + 1 in
    let entries =
      Binlog.Log_store.entries_from t.log ~from_index:from_seq
        ~max_count:t.params.Params.max_entries_per_ship
    in
    if entries <> [] then begin
      peer.ship_inflight <- true;
      peer.last_ship <- Sim.Engine.now t.engine;
      t.send ~dst:peer.peer_id (Wire.Replicate { entries })
    end
  end

let ship_all t = Hashtbl.iter (fun _ peer -> ship_to t peer) t.peers

let rec ship_tick t =
  if t.role = Primary && not t.crashed then begin
    (* Retransmission: clear the in-flight marker only for peers whose
       last ship is stale (lost message or dead peer), so slow-but-alive
       cross-region links are not flooded with duplicates. *)
    let now = Sim.Engine.now t.engine in
    Hashtbl.iter
      (fun _ p ->
        if now -. p.last_ship > 5.0 *. t.params.Params.ship_interval then
          p.ship_inflight <- false)
      t.peers;
    ship_all t;
    t.ship_timer <-
      Some (Sim.Engine.schedule t.engine ~delay:t.params.Params.ship_interval (fun () -> ship_tick t))
  end

(* ----- client write path ----- *)

(* [reply] receives [Some gtid] on commit, [None] on rejection. *)
let reject t ~reply =
  t.writes_rejected <- t.writes_rejected + 1;
  reply None

let submit_write t ~table ~ops ~reply =
  if t.crashed then ()
  else if t.role <> Primary || not t.writes_enabled then reject t ~reply
  else
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.costs.Myraft.Params.prepare_us (fun () ->
           if t.crashed || t.role <> Primary || not t.writes_enabled then reject t ~reply
           else begin
             let gtid = Binlog.Gtid.make ~source:t.id ~gno:t.next_gno in
             t.next_gno <- t.next_gno + 1;
             let writes = List.map (fun op -> (table, op)) ops in
             match Storage.Engine.prepare t.storage ~gtid ~writes with
             | exception Storage.Engine.Lock_conflict _ -> reject t ~reply
             | () ->
               let xid = t.next_xid in
               t.next_xid <- Int64.add t.next_xid 1L;
               let events =
                 [
                   Binlog.Event.make (Binlog.Event.Gtid_event gtid);
                   Binlog.Event.make (Binlog.Event.Table_map { table });
                   Binlog.Event.make (Binlog.Event.Write_rows { table; ops });
                   Binlog.Event.make (Binlog.Event.Xid { xid });
                 ]
               in
               let seq = ref 0 in
               Myraft.Pipeline.submit t.pipeline
                 {
                   Myraft.Pipeline.label = Binlog.Gtid.to_string gtid;
                   flush =
                     (fun () ->
                       let index = last_seq t + 1 in
                       let entry =
                         Binlog.Entry.make
                           ~opid:(Binlog.Opid.make ~term:1 ~index)
                           (Binlog.Entry.Transaction { gtid; events })
                       in
                       Binlog.Log_store.append t.log entry;
                       seq := index;
                       ship_all t;
                       Ok index);
                   finish =
                     (fun ~ok ->
                       if ok && Storage.Engine.is_prepared t.storage gtid then begin
                         Storage.Engine.commit_prepared t.storage ~gtid
                           ~opid:(Binlog.Opid.make ~term:1 ~index:!seq);
                         t.writes_committed <- t.writes_committed + 1;
                         reply (Some gtid)
                       end
                       else begin
                         Storage.Engine.rollback_prepared t.storage ~gtid;
                         reject t ~reply
                       end);
                 }
           end))

(* ----- read path (prior setup) -----

   The semi-sync stack has no ReadIndex, no leases and no staleness
   propagation, so the tiers degrade exactly as §1.1 describes:
   [Linearizable] reads must go to the (believed) primary — and are
   genuinely unsafe during the orchestrator's failover window, which is
   the A/B point; [Bounded_staleness] cannot be verified on replicas and
   is only honoured on the primary; [Read_your_writes] uses the engine's
   GTID set; [Eventual] reads any replica. *)

let serve_read t ~level ~table ~key k =
  if t.crashed then ()
  else begin
    let value () = Ok (Storage.Engine.get t.storage ~table ~key) in
    match level with
    | Read.Level.Eventual | Read.Level.Read_your_writes None -> k (value ())
    | Read.Level.Read_your_writes (Some gtid) ->
      if Storage.Engine.has_committed t.storage gtid then k (value ())
      else k (Error "read-your-writes: session write not yet applied here")
    | Read.Level.Linearizable | Read.Level.Bounded_staleness _ ->
      if t.role = Primary && t.writes_enabled then k (value ())
      else k (Error "consistent reads require the primary (no staleness tracking)")
  end

(* ----- replica: receive + apply ----- *)

let rec apply_loop t =
  if (not t.apply_busy) && not t.crashed then
    match Queue.take_opt t.apply_queue with
    | None -> ()
    | Some entry ->
      t.apply_busy <- true;
      ignore
        (Sim.Engine.schedule t.engine ~delay:t.costs.Myraft.Params.apply_per_txn_us
           (fun () ->
             (match Binlog.Entry.payload entry with
             | Binlog.Entry.Transaction { gtid; events } ->
               if not (Storage.Engine.has_committed t.storage gtid) then begin
                 let writes =
                   List.concat_map
                     (fun ev ->
                       match Binlog.Event.body ev with
                       | Binlog.Event.Write_rows { table; ops } ->
                         List.map (fun op -> (table, op)) ops
                       | _ -> [])
                     events
                 in
                 match Storage.Engine.prepare t.storage ~gtid ~writes with
                 | () ->
                   (* Async apply: no consensus gate in the prior setup. *)
                   Storage.Engine.commit_prepared t.storage ~gtid
                     ~opid:(Binlog.Entry.opid entry)
                 | exception Storage.Engine.Lock_conflict _ -> ()
               end
             | Binlog.Entry.Rotate_marker _ -> Binlog.Log_store.rotate t.log
             | Binlog.Entry.Noop | Binlog.Entry.Config_change _ -> ());
             t.applied_seq <- max t.applied_seq (Binlog.Entry.index entry);
             t.apply_busy <- false;
             apply_loop t))

let handle_replicate t ~src entries =
  if t.role = Replica && t.upstream = Some src then begin
    List.iter
      (fun entry ->
        if Binlog.Entry.index entry = last_seq t + 1 then begin
          Binlog.Log_store.append t.log entry;
          Queue.add entry t.apply_queue
        end)
      entries;
    apply_loop t;
    t.send ~dst:src (Wire.Ack { seq = last_seq t; from_acker = false })
  end

let handle_ack t ~src ~seq ~from_acker =
  if t.role = Primary then begin
    (match Hashtbl.find_opt t.peers src with
    | Some peer ->
      peer.ship_inflight <- false;
      if seq > peer.acked_seq then peer.acked_seq <- seq;
      ship_to t peer
    | None -> ());
    if from_acker && seq > t.semisync_acked then begin
      t.semisync_acked <- seq;
      Myraft.Pipeline.notify_commit_index t.pipeline seq
    end
  end

(* ----- role changes (driven by the Orchestrator) ----- *)

let disable_writes t = t.writes_enabled <- false

(* How far a replica's relay log position is — the orchestrator queries
   this to pick the best failover target. *)
let position t = (last_seq t, t.applied_seq)

let promote t ~peers:peer_list =
  t.role <- Primary;
  t.upstream <- None;
  Binlog.Log_store.switch_mode t.log Binlog.Log_store.Binlog;
  Hashtbl.reset t.peers;
  List.iter
    (fun (peer_id, is_acker) ->
      if peer_id <> t.id then
        Hashtbl.replace t.peers peer_id
          { peer_id; is_acker; acked_seq = 0; ship_inflight = false; last_ship = 0.0 })
    peer_list;
  t.semisync_acked <- 0;
  t.pipeline <-
    Myraft.Pipeline.create ~engine:t.engine ~params:t.costs ~is_primary_path:false ();
  t.next_gno <- Binlog.Gtid_set.max_gno (Binlog.Log_store.gtid_set t.log) ~source:t.id + 1;
  t.writes_enabled <- true;
  tracef t "%s: promoted to primary (semisync)" t.id

let demote t ~new_upstream =
  if t.role = Primary then begin
    ignore (Myraft.Pipeline.abort_all t.pipeline);
    List.iter
      (fun gtid -> Storage.Engine.rollback_prepared t.storage ~gtid)
      (Storage.Engine.prepared_gtids t.storage)
  end;
  t.role <- Replica;
  t.writes_enabled <- false;
  t.upstream <- new_upstream;
  Binlog.Log_store.switch_mode t.log Binlog.Log_store.Relay;
  t.applied_seq <- Binlog.Opid.index (Storage.Engine.last_committed_opid t.storage);
  tracef t "%s: demoted to replica (semisync)" t.id

let repoint t ~new_upstream =
  t.upstream <- Some new_upstream;
  tracef t "%s: repointed to %s" t.id new_upstream

let start_as_primary t ~peers:peer_list =
  promote t ~peers:peer_list;
  ship_tick t

(* ----- crash / restart ----- *)

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    t.writes_enabled <- false;
    (match t.ship_timer with Some h -> Sim.Engine.cancel h | None -> ());
    t.ship_timer <- None;
    ignore (Myraft.Pipeline.abort_all t.pipeline);
    Queue.clear t.apply_queue;
    t.apply_busy <- false;
    tracef t "%s: CRASHED" t.id
  end

let restart t ~upstream =
  if t.crashed then begin
    t.crashed <- false;
    ignore (Storage.Engine.crash_recover t.storage);
    t.pipeline <-
      Myraft.Pipeline.create ~engine:t.engine ~params:t.costs ~is_primary_path:false ();
    t.role <- Replica;
    t.upstream <- upstream;
    Binlog.Log_store.switch_mode t.log Binlog.Log_store.Relay;
    t.applied_seq <- Binlog.Opid.index (Storage.Engine.last_committed_opid t.storage);
    (* Prior-setup rejoin repair: discard the binlog tail beyond the
       engine's recovery point — a possibly divergent suffix written
       before the crash.  (Automation did this with binlog surgery; the
       lack of a principled protocol here is part of why Raft won.) *)
    ignore (Binlog.Log_store.truncate_from t.log ~from_index:(t.applied_seq + 1));
    tracef t "%s: restarted as replica" t.id
  end

(* ----- message dispatch ----- *)

let handle_message t ~src msg =
  if not t.crashed then
    match msg with
    | Wire.Replicate { entries } -> handle_replicate t ~src entries
    | Wire.Ack { seq; from_acker } -> handle_ack t ~src ~seq ~from_acker
    | Wire.Write_request { write_id; table; ops; client } ->
      submit_write t ~table ~ops ~reply:(fun gtid ->
          t.send ~dst:client
            (Wire.Write_reply { write_id; ok = gtid <> None; gtid }))
    | Wire.Read_request { read_id; level; table; key; client } ->
      serve_read t ~level ~table ~key (fun value ->
          t.send ~dst:client (Wire.Read_reply { read_id; value }))
    | Wire.Write_reply _ | Wire.Read_reply _ -> ()
    | Wire.Ping { ping_id } -> t.send ~dst:src (Wire.Pong { ping_id })
    | Wire.Pong _ -> ()

let create ~engine ~id ~region ~replicaset ~send ~discovery ~costs ~params ~trace () =
  {
    id;
    region;
    replicaset;
    engine;
    trace;
    costs;
    params;
    send;
    discovery;
    storage = Storage.Engine.create ();
    log = Binlog.Log_store.create ~mode:Binlog.Log_store.Relay ();
    pipeline = Myraft.Pipeline.create ~engine ~params:costs ~is_primary_path:false ();
    role = Replica;
    writes_enabled = false;
    crashed = false;
    upstream = None;
    peers = Hashtbl.create 16;
    semisync_acked = 0;
    next_gno = 1;
    next_xid = 1L;
    ship_timer = None;
    apply_queue = Queue.create ();
    apply_busy = false;
    applied_seq = 0;
    writes_committed = 0;
    writes_rejected = 0;
  }
