(* A semi-sync acker: the prior-setup role of the in-region logtailer
   (Table 1).  It tails the primary's binlog into a local log and
   acknowledges receipt; the primary's commit pipeline waits for the
   first acker acknowledgement. *)

type t = {
  id : string;
  region : string;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  send : dst:string -> Wire.t -> unit;
  log : Binlog.Log_store.t;
  mutable upstream : string option;
  mutable crashed : bool;
  mutable acks_sent : int;
}

let id t = t.id

let log t = t.log

let is_crashed t = t.crashed

let acks_sent t = t.acks_sent

let last_seq t = Binlog.Opid.index (Binlog.Log_store.last_opid t.log)

let create ~engine ~id ~region ~send ~trace () =
  {
    id;
    region;
    engine;
    trace;
    send;
    log = Binlog.Log_store.create ~mode:Binlog.Log_store.Relay ();
    upstream = None;
    crashed = false;
    acks_sent = 0;
  }

let repoint t ~new_upstream = t.upstream <- Some new_upstream

let handle_message t ~src msg =
  if not t.crashed then
    match msg with
    | Wire.Replicate { entries } ->
      if t.upstream = Some src then begin
        List.iter
          (fun entry ->
            let index = Binlog.Entry.index entry in
            if index = last_seq t + 1 then Binlog.Log_store.append t.log entry
            else if index <= last_seq t then begin
              (* After a failover the acker may be ahead of the new
                 primary (it acked entries that never committed); follow
                 the new stream by truncating the divergent tail — ackers
                 hold no database, only a disposable log. *)
              match Binlog.Log_store.entry_at t.log index with
              | Some existing
                when not (Binlog.Opid.equal (Binlog.Entry.opid existing) (Binlog.Entry.opid entry))
                     || not (Int32.equal (Binlog.Entry.checksum existing) (Binlog.Entry.checksum entry)) ->
                ignore (Binlog.Log_store.truncate_from t.log ~from_index:index);
                Binlog.Log_store.append t.log entry
              | _ -> ()
            end)
          entries;
        t.acks_sent <- t.acks_sent + 1;
        t.send ~dst:src (Wire.Ack { seq = last_seq t; from_acker = true })
      end
    | Wire.Ping { ping_id } -> t.send ~dst:src (Wire.Pong { ping_id })
    | Wire.Ack _ | Wire.Write_request _ | Wire.Write_reply _ | Wire.Read_request _
    | Wire.Read_reply _ | Wire.Pong _ ->
      ()

let crash t =
  t.crashed <- true;
  Sim.Trace.record t.trace ~tag:"semisync" "%s: acker CRASHED" t.id

let restart t = t.crashed <- false
