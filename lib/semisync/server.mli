(** A MySQL server under the prior setup (§1.1, §6): semi-sync
    replication to acker logtailers, async replication to replicas, and
    no internal failure handling — the {!Orchestrator} changes roles
    from outside.  The commit pipeline is MyRaft's, but the wait stage
    is released by the first semi-sync acker acknowledgement. *)

type role = Primary | Replica

type t

val create :
  engine:Sim.Engine.t ->
  id:string ->
  region:string ->
  replicaset:string ->
  send:(dst:string -> Wire.t -> unit) ->
  discovery:Myraft.Service_discovery.t ->
  costs:Myraft.Params.t ->
  params:Params.t ->
  trace:Sim.Trace.t ->
  unit ->
  t

val id : t -> string

val region : t -> string

val role : t -> role

val writes_enabled : t -> bool

val is_crashed : t -> bool

val storage : t -> Storage.Engine.t

val log : t -> Binlog.Log_store.t

(** Binlog sequence number (log index). *)
val last_seq : t -> int

(** Highest sequence applied to the engine (replica side). *)
val applied_seq : t -> int

val writes_committed : t -> int

val pipeline_in_flight : t -> int

(** (last received, last applied): the positions the orchestrator
    queries to pick a failover target. *)
val position : t -> int * int

(** [reply] receives [Some gtid] on commit, [None] on rejection. *)
val submit_write :
  t ->
  table:string ->
  ops:Binlog.Event.row_op list ->
  reply:(Binlog.Gtid.t option -> unit) ->
  unit

(** Serve a read at the given consistency level under the prior setup's
    (weaker) guarantees: no ReadIndex, no leases, no staleness
    propagation.  [Linearizable] and [Bounded_staleness] are honoured on
    the (believed) primary only; the continuation receives the value or
    a rejection reason. *)
val serve_read :
  t ->
  level:Read.Level.t ->
  table:string ->
  key:string ->
  ((string option, string) result -> unit) ->
  unit

(** {2 Role changes (driven by the Orchestrator)} *)

val disable_writes : t -> unit

(** Become the primary serving [peers] (id, is_acker). *)
val promote : t -> peers:(string * bool) list -> unit

(** Promote and start the shipping loop. *)
val start_as_primary : t -> peers:(string * bool) list -> unit

val demote : t -> new_upstream:string option -> unit

(** CHANGE MASTER TO equivalent. *)
val repoint : t -> new_upstream:string -> unit

(** {2 Lifecycle} *)

val crash : t -> unit

(** Restart as a replica of [upstream]; the binlog tail beyond the
    engine recovery point is discarded (rejoin repair). *)
val restart : t -> upstream:string option -> unit

val handle_message : t -> src:string -> Wire.t -> unit
