(* Prior-setup replicaset assembly: MySQL servers + semi-sync ackers on
   the simulated network with an out-of-band orchestrator.  Mirrors
   [Myraft.Cluster]'s surface so the A/B experiments of §6 can drive both
   stacks identically. *)

type node = Mysql_node of Server.t | Acker_node of Acker.t

type t = {
  engine : Sim.Engine.t;
  topology : Sim.Topology.t;
  network : Wire.t Sim.Network.t;
  trace : Sim.Trace.t;
  discovery : Myraft.Service_discovery.t;
  replicaset : string;
  costs : Myraft.Params.t;
  ss_params : Params.t;
  nodes : (string, node) Hashtbl.t;
  member_order : string list;
  member_kinds : (string * Raft.Types.member_kind) list;
  mutable orchestrator : Orchestrator.t option;
}

let engine t = t.engine

let network t = t.network

let trace t = t.trace

let discovery t = t.discovery

let replicaset_name t = t.replicaset

let member_ids t = t.member_order

let orchestrator t = Option.get t.orchestrator

let server t id =
  match Hashtbl.find_opt t.nodes id with Some (Mysql_node s) -> Some s | _ -> None

let acker t id =
  match Hashtbl.find_opt t.nodes id with Some (Acker_node a) -> Some a | _ -> None

let servers t = List.filter_map (fun id -> server t id) t.member_order

(* MySQL members only: valid client read targets (ackers hold no tables). *)
let mysql_ids t = List.filter (fun id -> server t id <> None) t.member_order

let ackers t = List.filter_map (fun id -> acker t id) t.member_order

let primary t =
  List.find_opt
    (fun s ->
      Server.role s = Server.Primary && Server.writes_enabled s && not (Server.is_crashed s))
    (servers t)

(* Shipping peers for a given primary: every other member; ackers are the
   semi-sync voters. *)
let peers_for t primary_id =
  List.filter_map
    (fun (id, kind) ->
      if id = primary_id then None else Some (id, kind = Raft.Types.Logtailer))
    t.member_kinds

let orchestrator_node_id = "orchestrator"

let create ?(seed = 7) ?(costs = Myraft.Params.default) ?(ss_params = Params.default)
    ?(latency = Sim.Latency.default) ?(echo_trace = false) ~replicaset ~members () =
  let engine = Sim.Engine.create ~seed () in
  let topology = Sim.Topology.create () in
  List.iter
    (fun s ->
      Sim.Topology.add_node topology ~id:s.Myraft.Cluster.spec_id
        ~region:s.Myraft.Cluster.spec_region)
    members;
  Sim.Topology.add_node topology ~id:orchestrator_node_id ~region:"control";
  let network = Sim.Network.create engine topology ~latency () in
  let trace = Sim.Trace.create ~echo:echo_trace engine in
  let discovery = Myraft.Service_discovery.create engine in
  let t =
    {
      engine;
      topology;
      network;
      trace;
      discovery;
      replicaset;
      costs;
      ss_params;
      nodes = Hashtbl.create 16;
      member_order = List.map (fun s -> s.Myraft.Cluster.spec_id) members;
      member_kinds =
        List.map (fun s -> (s.Myraft.Cluster.spec_id, s.Myraft.Cluster.spec_kind)) members;
      orchestrator = None;
    }
  in
  let send ~src ~dst msg = Sim.Network.send network ~src ~dst ~size:(Wire.size msg) msg in
  List.iter
    (fun s ->
      let id = s.Myraft.Cluster.spec_id in
      let send_from ~dst msg = send ~src:id ~dst msg in
      let n =
        match s.Myraft.Cluster.spec_kind with
        | Raft.Types.Mysql_server ->
          Mysql_node
            (Server.create ~engine ~id ~region:s.Myraft.Cluster.spec_region ~replicaset
               ~send:send_from ~discovery ~costs ~params:ss_params ~trace ())
        | Raft.Types.Logtailer ->
          Acker_node
            (Acker.create ~engine ~id ~region:s.Myraft.Cluster.spec_region ~send:send_from
               ~trace ())
      in
      Hashtbl.replace t.nodes id n;
      Sim.Network.register network id (fun ~src msg ->
          match Hashtbl.find_opt t.nodes id with
          | Some (Mysql_node srv) -> Server.handle_message srv ~src msg
          | Some (Acker_node a) -> Acker.handle_message a ~src msg
          | None -> ()))
    members;
  let ctx =
    {
      Orchestrator.engine;
      trace;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      params = ss_params;
      discovery;
      replicaset;
      orchestrator_id = orchestrator_node_id;
      send = (fun ~dst msg -> send ~src:orchestrator_node_id ~dst msg);
      servers = (fun () -> servers t);
      ackers = (fun () -> ackers t);
      peers_for = (fun primary_id -> peers_for t primary_id);
    }
  in
  let orch = Orchestrator.create ctx ~initial_primary:"" in
  t.orchestrator <- Some orch;
  Sim.Network.register network orchestrator_node_id (fun ~src msg ->
      Orchestrator.handle_message orch ~src msg);
  t

(* ----- time control (mirrors Myraft.Cluster) ----- *)

let run_for t duration = Sim.Engine.run_for t.engine duration

let now t = Sim.Engine.now t.engine

let run_until t ?(step = 10.0 *. Sim.Engine.ms) ~timeout pred =
  let deadline = Sim.Engine.now t.engine +. timeout in
  let rec loop () =
    if pred () then true
    else if Sim.Engine.now t.engine >= deadline then false
    else begin
      Sim.Engine.run_for t.engine step;
      loop ()
    end
  in
  loop ()

(* ----- bootstrap ----- *)

(* Start [leader_id] as the semi-sync primary, point everyone at it,
   publish discovery, and start health monitoring. *)
let bootstrap t ~leader_id =
  (match server t leader_id with
  | None -> invalid_arg ("Semisync bootstrap: unknown server " ^ leader_id)
  | Some srv ->
    Server.start_as_primary srv ~peers:(peers_for t leader_id);
    List.iter
      (fun s -> if Server.id s <> leader_id then Server.repoint s ~new_upstream:leader_id)
      (servers t);
    List.iter (fun a -> Acker.repoint a ~new_upstream:leader_id) (ackers t);
    Myraft.Service_discovery.publish_primary t.discovery ~replicaset:t.replicaset
      ~primary:leader_id ~delay:(10.0 *. Sim.Engine.ms));
  let orch = orchestrator t in
  orch.Orchestrator.current_primary <- leader_id;
  ignore
    (Sim.Engine.schedule t.engine ~delay:Sim.Engine.ms (fun () ->
         Orchestrator.start_monitoring orch));
  (* propagate the promotion + discovery publication *)
  Sim.Engine.run_for t.engine (100.0 *. Sim.Engine.ms)

(* ----- fault injection ----- *)

let crash t id =
  (match Hashtbl.find_opt t.nodes id with
  | Some (Mysql_node s) -> Server.crash s
  | Some (Acker_node a) -> Acker.crash a
  | None -> invalid_arg ("Semisync crash: unknown node " ^ id));
  Sim.Network.set_down t.network id

let restart t id =
  Sim.Network.set_up t.network id;
  match Hashtbl.find_opt t.nodes id with
  | Some (Mysql_node s) ->
    let upstream =
      Option.map Server.id (primary t)
    in
    Server.restart s ~upstream
  | Some (Acker_node a) ->
    Acker.restart a;
    (match primary t with
    | Some p -> Acker.repoint a ~new_upstream:(Server.id p)
    | None -> ())
  | None -> invalid_arg ("Semisync restart: unknown node " ^ id)

(* ----- clients ----- *)

let register_client t ~id ~region ~handler =
  Sim.Topology.add_node t.topology ~id ~region;
  Sim.Network.register t.network id handler

let send_from_client t ~client ~dst msg =
  Sim.Network.send t.network ~src:client ~dst ~size:(Wire.size msg) msg

let set_link_latency t ~a ~b ~latency = Sim.Network.set_link_latency t.network ~a ~b ~latency

(* A write-availability probe identical in shape to MyRaft's. *)
let start_probe ?(region = "r1") ?(probe_interval = 5.0 *. Sim.Engine.ms)
    ?(write_timeout = 1.0 *. Sim.Engine.s) ?(client_latency = 500.0 *. Sim.Engine.us) t
    ~client_id =
  let outstanding = Hashtbl.create 64 in
  register_client t ~id:client_id ~region ~handler:(fun ~src:_ msg ->
      match msg with
      | Wire.Write_reply { write_id; ok; _ } -> (
        match Hashtbl.find_opt outstanding write_id with
        | Some settle ->
          Hashtbl.remove outstanding write_id;
          settle ok
        | None -> ())
      | _ -> ());
  List.iter
    (fun member -> set_link_latency t ~a:client_id ~b:member ~latency:client_latency)
    t.member_order;
  let next_id = ref 1 in
  let issue ~on_outcome =
    match Myraft.Service_discovery.primary_of t.discovery ~replicaset:t.replicaset with
    | None -> on_outcome false
    | Some dst ->
      let write_id = !next_id in
      incr next_id;
      Hashtbl.replace outstanding write_id on_outcome;
      let key = Printf.sprintf "probe-%s-%d" client_id write_id in
      send_from_client t ~client:client_id ~dst
        (Wire.Write_request
           {
             write_id;
             table = "probe";
             ops = [ Binlog.Event.Insert { key; value = "x" } ];
             client = client_id;
           })
  in
  Sim.Probe.start ~interval:probe_interval ~timeout:write_timeout t.engine ~issue

let describe t =
  String.concat "\n"
    (List.map
       (fun id ->
         match Hashtbl.find_opt t.nodes id with
         | Some (Mysql_node s) ->
           Printf.sprintf "%s [%s%s] seq=%d applied=%d" id
             (match Server.role s with Server.Primary -> "primary" | Server.Replica -> "replica")
             (if Server.writes_enabled s then ",rw" else ",ro")
             (Server.last_seq s) (Server.applied_seq s)
         | Some (Acker_node a) ->
           Printf.sprintf "%s [acker] seq=%d" id (Acker.last_seq a)
         | None -> id ^ ": ?")
       t.member_order)
