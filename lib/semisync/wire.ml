(* Messages of the prior setup: primary->replica shipping, semi-sync
   acks, client writes and reads, and the orchestrator's out-of-band
   health pings. *)

type t =
  | Replicate of { entries : Binlog.Entry.t list }
  | Ack of { seq : int; from_acker : bool }
  | Write_request of {
      write_id : int;
      table : string;
      ops : Binlog.Event.row_op list;
      client : string;
    }
  | Write_reply of { write_id : int; ok : bool; gtid : Binlog.Gtid.t option }
    (* [gtid] carries the committed transaction's GTID so clients can do
       read-your-writes against replicas (WAIT_FOR_EXECUTED_GTID_SET) *)
  | Read_request of {
      read_id : int;
      level : Read.Level.t;
      table : string;
      key : string;
      client : string;
    }
  | Read_reply of { read_id : int; value : (string option, string) result }
  | Ping of { ping_id : int }
  | Pong of { ping_id : int }

let size = function
  | Replicate { entries } ->
    48 + List.fold_left (fun acc e -> acc + Binlog.Entry.size e) 0 entries
  | Ack _ -> 40
  | Write_request { ops; table; _ } ->
    48 + String.length table
    + List.fold_left (fun acc op -> acc + Binlog.Event.row_op_size op) 0 ops
  | Write_reply _ -> 44
  | Read_request { table; key; level; _ } ->
    40 + String.length table + String.length key + Read.Level.wire_size level
  | Read_reply { value = Ok v; _ } ->
    24 + (match v with Some s -> String.length s | None -> 0)
  | Read_reply { value = Error reason; _ } -> 32 + String.length reason
  | Ping _ | Pong _ -> 24
