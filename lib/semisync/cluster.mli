(** Prior-setup replicaset assembly: MySQL servers + semi-sync ackers on
    the simulated network with an out-of-band orchestrator.  Mirrors
    [Myraft.Cluster]'s surface so the §6 A/B experiments drive both
    stacks identically. *)

type node = Mysql_node of Server.t | Acker_node of Acker.t

type t

val create :
  ?seed:int ->
  ?costs:Myraft.Params.t ->
  ?ss_params:Params.t ->
  ?latency:Sim.Latency.t ->
  ?echo_trace:bool ->
  replicaset:string ->
  members:Myraft.Cluster.member_spec list ->
  unit ->
  t

val engine : t -> Sim.Engine.t

val network : t -> Wire.t Sim.Network.t

val trace : t -> Sim.Trace.t

val discovery : t -> Myraft.Service_discovery.t

val replicaset_name : t -> string

val member_ids : t -> string list

val orchestrator : t -> Orchestrator.t

val server : t -> string -> Server.t option

val acker : t -> string -> Acker.t option

val servers : t -> Server.t list

(** MySQL members only — valid client read targets (ackers hold no
    tables). *)
val mysql_ids : t -> string list

val ackers : t -> Acker.t list

val primary : t -> Server.t option

(** Shipping peers (id, is_acker) a given primary serves. *)
val peers_for : t -> string -> (string * bool) list

val run_for : t -> float -> unit

val now : t -> float

val run_until : t -> ?step:float -> timeout:float -> (unit -> bool) -> bool

(** Start [leader_id] as primary, repoint everyone, publish discovery,
    begin health monitoring. *)
val bootstrap : t -> leader_id:string -> unit

val crash : t -> string -> unit

val restart : t -> string -> unit

val register_client :
  t -> id:string -> region:string -> handler:(src:string -> Wire.t -> unit) -> unit

val send_from_client : t -> client:string -> dst:string -> Wire.t -> unit

val set_link_latency : t -> a:string -> b:string -> latency:float -> unit

(** A write-availability probe identical in shape to MyRaft's. *)
val start_probe :
  ?region:string ->
  ?probe_interval:float ->
  ?write_timeout:float ->
  ?client_latency:float ->
  t ->
  client_id:string ->
  Sim.Probe.t

val describe : t -> string
