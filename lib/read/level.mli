(** Consistency levels for the tiered read path. *)

type t =
  | Linearizable
      (** reflects every write acknowledged before the read was issued
          (ReadIndex round or leader-lease fast path) *)
  | Read_your_writes of Binlog.Gtid.t option
      (** reflects the session's own last acknowledged write; [None] =
          no writes yet, served like {!Eventual} *)
  | Bounded_staleness of float
      (** served locally when the replica proves its engine fresh within
          the bound (virtual µs); else rejected with a retry hint *)
  | Eventual  (** whatever the local engine holds right now *)

val to_string : t -> string

(** Parse a CLI/config spelling: [linearizable]/[lin], [ryw],
    [bounded:<ms>], [eventual]. *)
val parse : string -> (t, string) result

(** Stable per-tier metric-name segment ("linearizable", "ryw",
    "bounded", "eventual"). *)
val label : t -> string

(** Wire size of the level descriptor inside a read request. *)
val wire_size : t -> int
