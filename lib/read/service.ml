(* The consistency-tiered read service: one per server, generic over an
   [ops] record so the same tiering logic runs on leaders, followers and
   learners (Table 1: every role serves reads).

   Level dispatch:
   - Linearizable: resolve a read index (leader-lease fast path, else a
     batched ReadIndex round; followers forward to the leader), wait for
     the local engine to apply through it, then read locally.
   - Read_your_writes: wait for the session's carried GTID to commit in
     the local engine, then read.
   - Bounded_staleness: served immediately when the replica can prove
     its engine fresh within the bound (staleness anchor propagated on
     AppendEntries); else rejected with a retry hint sized to the
     replication heartbeat.
   - Eventual: read the local engine as-is.

   Every read carries a service-level deadline: continuations parked on
   apply/commit waiters die silently when leadership moves or the node
   crashes, and the deadline converts that into a retryable rejection. *)

type outcome =
  | Value of string option
  | Rejected of { reason : string; retry_after : float option }

type ops = {
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> unit;
  read_index : ((int, string) result -> unit) -> unit;
      (* resolve the linearizable read index from any role *)
  lease_valid : unit -> bool; (* metric attribution: fast path vs round *)
  staleness_anchor : unit -> float * int; (* (as_of, index), see Raft.Node *)
  applied_index : unit -> int;
      (* highest log index the local engine has applied through *)
  wait_applied : int -> (unit -> unit) -> unit;
      (* call back once applied_index reaches the argument; never fires
         early, may never fire (the deadline guards) *)
  wait_gtid : Binlog.Gtid.t -> timeout:float -> (bool -> unit) -> unit;
  get : table:string -> key:string -> string option;
}

type params = {
  read_timeout : float; (* service-level deadline per read *)
  retry_hint : float; (* suggested client backoff on rejection *)
}

let default_params =
  { read_timeout = 2.0 *. Sim.Engine.s; retry_hint = 100.0 *. Sim.Engine.ms }

type tier_meters = {
  tm_served : Obs.Metrics.counter;
  tm_rejected : Obs.Metrics.counter;
  tm_latency : Obs.Metrics.histogram;
}

type t = {
  ops : ops;
  params : params;
  m_lease : Obs.Metrics.counter; (* linearizable reads off the lease *)
  m_quorum : Obs.Metrics.counter; (* linearizable reads via a round *)
  m_timeouts : Obs.Metrics.counter;
  tiers : (string * tier_meters) list; (* keyed by Level.label *)
}

let tier_meters m label =
  {
    tm_served = Obs.Metrics.counter m (Printf.sprintf "read.%s.served" label);
    tm_rejected = Obs.Metrics.counter m (Printf.sprintf "read.%s.rejected" label);
    tm_latency = Obs.Metrics.histogram m (Printf.sprintf "read.%s.latency_us" label);
  }

let create ?(params = default_params) ~metrics ~ops () =
  {
    ops;
    params;
    m_lease = Obs.Metrics.counter metrics "read.lease_served";
    m_quorum = Obs.Metrics.counter metrics "read.quorum_served";
    m_timeouts = Obs.Metrics.counter metrics "read.timeouts";
    tiers =
      List.map
        (fun label -> (label, tier_meters metrics label))
        [ "linearizable"; "ryw"; "bounded"; "eventual" ];
  }

let serve t ~level ~table ~key k =
  let ops = t.ops in
  let start = ops.now () in
  let tier = List.assoc (Level.label level) t.tiers in
  let finished = ref false in
  (* Single-fire guard: apply/commit waiters have no cancellation, so
     the deadline and the happy path race to finish the read. *)
  let finish outcome =
    if not !finished then begin
      finished := true;
      (match outcome with
      | Value _ ->
        Obs.Metrics.incr tier.tm_served;
        Obs.Metrics.record tier.tm_latency (ops.now () -. start)
      | Rejected _ -> Obs.Metrics.incr tier.tm_rejected);
      k outcome
    end
  in
  let reject reason = finish (Rejected { reason; retry_after = Some t.params.retry_hint }) in
  ops.schedule ~delay:t.params.read_timeout (fun () ->
      if not !finished then begin
        Obs.Metrics.incr t.m_timeouts;
        reject "read timed out"
      end);
  let read_local () = finish (Value (ops.get ~table ~key)) in
  let after_applied index =
    if ops.applied_index () >= index then read_local ()
    else ops.wait_applied index (fun () -> if not !finished then read_local ())
  in
  match level with
  | Level.Eventual -> read_local ()
  | Level.Read_your_writes None -> read_local ()
  | Level.Read_your_writes (Some gtid) ->
    ops.wait_gtid gtid ~timeout:t.params.read_timeout (fun committed ->
        if committed then read_local ()
        else reject "read-your-writes: session write not yet applied here")
  | Level.Bounded_staleness bound ->
    let as_of, index = ops.staleness_anchor () in
    let age = ops.now () -. as_of in
    if as_of = neg_infinity || age > bound then
      reject
        (Printf.sprintf "staleness bound exceeded (%.0fus behind, bound %.0fus)" age bound)
    else if ops.applied_index () >= index then read_local ()
    else reject "staleness bound met but engine still applying"
  | Level.Linearizable ->
    let via_lease = ops.lease_valid () in
    ops.read_index (fun result ->
        match result with
        | Error e -> reject e
        | Ok index ->
          if not !finished then begin
            Obs.Metrics.incr (if via_lease then t.m_lease else t.m_quorum);
            after_applied index
          end)
