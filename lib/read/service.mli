(** The consistency-tiered read service: one per server, generic over an
    {!ops} record so the same tiering logic runs on leaders, followers
    and learners.  See {!Level} for what each tier promises. *)

type outcome =
  | Value of string option
  | Rejected of { reason : string; retry_after : float option }
      (** [retry_after] is a client backoff hint (virtual µs) *)

(** Closures over the embedding server; all must tolerate being called
    at any point of the server's lifecycle. *)
type ops = {
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> unit;
  read_index : ((int, string) result -> unit) -> unit;
      (** resolve the linearizable read index from any role (leader
          locally, follower/learner by forwarding) *)
  lease_valid : unit -> bool;
      (** metric attribution: lease fast path vs confirmation round *)
  staleness_anchor : unit -> float * int;  (** see {!Raft.Node.staleness_anchor} *)
  applied_index : unit -> int;
      (** highest log index the local engine has applied through *)
  wait_applied : int -> (unit -> unit) -> unit;
      (** call back once [applied_index] reaches the argument; never
          fires early and may never fire — the service deadline guards *)
  wait_gtid : Binlog.Gtid.t -> timeout:float -> (bool -> unit) -> unit;
      (** call back with whether the GTID committed locally in time *)
  get : table:string -> key:string -> string option;
}

type params = {
  read_timeout : float;  (** service-level deadline per read *)
  retry_hint : float;  (** suggested client backoff on rejection *)
}

val default_params : params

type t

(** [metrics] receives the read.* counters and per-tier latency
    histograms. *)
val create : ?params:params -> metrics:Obs.Metrics.t -> ops:ops -> unit -> t

(** Serve one read at the given consistency level; [k] fires exactly
    once, possibly synchronously. *)
val serve :
  t ->
  level:Level.t ->
  table:string ->
  key:string ->
  (outcome -> unit) ->
  unit
