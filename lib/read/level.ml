(* Consistency levels for the tiered read path (Table 1: leader,
   follower and learner all serve reads; replicas may lag — the level
   says how much lag, if any, a client tolerates). *)

type t =
  | Linearizable
      (* reflects every write acknowledged before the read was issued;
         ReadIndex confirmation round or leader-lease fast path *)
  | Read_your_writes of Binlog.Gtid.t option
      (* reflects the session's own last acknowledged write (the
         carried GTID); None = session has no writes yet *)
  | Bounded_staleness of float
      (* served locally when the replica can prove its engine is fresh
         within the bound (virtual microseconds); else rejected with a
         retry hint *)
  | Eventual (* whatever the local engine holds right now *)

let to_string = function
  | Linearizable -> "linearizable"
  | Read_your_writes None -> "ryw"
  | Read_your_writes (Some gtid) -> "ryw@" ^ Binlog.Gtid.to_string gtid
  | Bounded_staleness bound -> Printf.sprintf "bounded:%.0fms" (bound /. 1000.0)
  | Eventual -> "eventual"

(* Level names as the CLI / generator config spells them; the RYW GTID
   token is attached programmatically, not parsed. *)
let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "linearizable" | "lin" -> Ok Linearizable
  | "ryw" | "read-your-writes" -> Ok (Read_your_writes None)
  | "eventual" -> Ok Eventual
  | other ->
    let prefix = "bounded:" in
    let plen = String.length prefix in
    if String.length other > plen && String.sub other 0 plen = prefix then
      match float_of_string_opt (String.sub other plen (String.length other - plen)) with
      | Some ms when ms > 0.0 -> Ok (Bounded_staleness (ms *. 1000.0))
      | _ -> Error (Printf.sprintf "bad staleness bound in %S" s)
    else
      Error
        (Printf.sprintf "unknown read level %S (linearizable|ryw|bounded:<ms>|eventual)" s)

(* Metric-name segment: one stable label per tier (RYW tokens and
   staleness bounds don't explode the metric namespace). *)
let label = function
  | Linearizable -> "linearizable"
  | Read_your_writes _ -> "ryw"
  | Bounded_staleness _ -> "bounded"
  | Eventual -> "eventual"

(* Wire size of the level descriptor inside a read request. *)
let wire_size = function
  | Linearizable | Eventual -> 1
  | Bounded_staleness _ -> 9
  | Read_your_writes None -> 2
  | Read_your_writes (Some _) -> 14
