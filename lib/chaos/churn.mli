(** Membership-churn chaos scenarios: directed reconfiguration drills
    run under the {!Invariants} checker (including the logless-reconfig
    oracles — config integrity, quorum overlap, no committed-entry loss
    across a reconfig), each gated on zero violations plus end-of-run
    convergence over the {e final} membership.

    - [evacuation]: drain a whole region through the planner — every r3
      member replaced under a new id in a fresh region r4 while an
      open-loop workload keeps writing;
    - [replace-partitioned]: a region is partitioned away, a voter
      elsewhere is permanently killed, and the self-healing driver must
      restore full redundancy before the partition heals;
    - [storm-churn]: continuous membership changes racing an
      election-storm-heavy nemesis mix;
    - [sharded-churn]: per-group voter/learner churn on a multi-Raft
      deployment, one invariant set per group. *)

type report = {
  c_scenario : string;
  c_seed : int;
  c_reconfigs : int;  (** committed membership changes *)
  c_replacements : (string * string) list;  (** (corpse, replacement) *)
  c_committed : int;  (** highest Raft index seen committed *)
  c_workload_committed : int;  (** client writes acknowledged committed *)
  c_converged : bool;
  c_violations : Invariants.violation list;
  c_metrics : Obs.Metrics.snapshot;
}

val report_summary : report -> string

(** A probe whose [probe_up] also requires membership in the newest
    installed config — evicted corpses leave the convergence check,
    provisioned replacements join it (via {!Invariants.add_probe}). *)
val member_probe : Myraft.Cluster.t -> string -> Invariants.probe

val rolling_evacuation : ?seed:int -> unit -> report

val replace_while_partitioned : ?seed:int -> unit -> report

val storm_churn : ?seed:int -> ?steps:int -> unit -> report

val sharded_churn : ?seed:int -> ?groups:int -> ?cycles:int -> unit -> report

(** CLI names: evacuation, replace-partitioned, storm-churn,
    sharded-churn. *)
val scenario_names : string list

val run_scenario : name:string -> seed:int -> (report, string) result

(** Every scenario over every seed — the chaos-smoke membership leg. *)
val sweep : seeds:int list -> unit -> report list
