(** Continuous Raft safety checker.

    Walks a live cluster through {!probe}s and asserts, on every
    {!check}: election safety (at most one leader per term, ever),
    commit safety + log matching on committed prefixes (across crashes,
    restarts and torn tails), leader completeness, engine-history
    convergence, no lease-path read served past the lease's global-time
    expiry, no committed entry failing its checksum, and the logless
    reconfiguration oracles: one membership per config identity,
    quorum overlap between consecutive adopted configs, and no
    committed-entry loss across a reconfig (every leader first seen
    under a new config identity must still hold the full committed
    prefix).  Violations are recorded rather than raised so a chaos run
    can finish and report them all alongside the repro seed. *)

(** One cluster member, observed through closures so the same checker
    serves full MyRaft clusters and bare Raft test harnesses.  All
    closures must tolerate being called while the member is down. *)
type probe = {
  probe_id : string;
  probe_up : unit -> bool;
  probe_raft : unit -> Raft.Node.t option;
  probe_store : unit -> Binlog.Log_store.t option;
  probe_engine : unit -> Storage.Engine.t option;
}

type violation = {
  v_time : float;
  v_invariant : string;
  v_detail : string;
  v_metrics : Obs.Metrics.snapshot option;
      (** cluster metrics captured when the violation was first seen *)
}

val violation_to_string : violation -> string

type t

(** [snapshot] is called at the instant each new violation is recorded
    and the result attached as [v_metrics]. *)
val create :
  ?snapshot:(unit -> Obs.Metrics.snapshot) ->
  now:(unit -> float) ->
  probes:probe list ->
  unit ->
  t

(** Add a probe mid-run (membership churn provisions brand-new nodes
    that must fall under the same checks).  Idempotent per probe id. *)
val add_probe : t -> probe -> unit

(** Run every invariant once; new violations are recorded
    (deduplicated). *)
val check : t -> unit

(** Record a violation found by an external checker (e.g. the
    linearizable-read register check) through the same deduplicated
    pipeline. *)
val report : t -> invariant:string -> detail:string -> unit

(** End-of-run check (call after healing + settling): all up members
    must hold identical logs and identical engine content. *)
val check_converged : t -> unit

(** Violations recorded so far, oldest first. *)
val violations : t -> violation list

val violation_count : t -> int

(** Highest Raft index the checker has seen committed anywhere. *)
val max_committed : t -> int

(** Distinct committed indexes pinned in the global table. *)
val committed_entries : t -> int
