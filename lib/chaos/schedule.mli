(** Fault schedule: the declarative half of the nemesis — a weighted mix
    of fault kinds plus the knobs each kind reads.  The nemesis draws
    from the mix each step, bounded by [max_concurrent] outstanding
    faults and a [min_up] floor, and auto-heals after a random delay. *)

type fault_kind =
  | Crash_restart  (** crash a random node; restart at heal *)
  | Leader_crash  (** crash the current Raft leader; restart at heal *)
  | Graceful_transfer  (** ask the leader to transfer to a random peer *)
  | Partition_regions  (** cut a random region pair; reconnect at heal *)
  | Isolate_node  (** disconnect one node; reconnect at heal *)
  | Msg_drop  (** probabilistic loss on all of a node's traffic *)
  | Msg_duplicate  (** probabilistic duplication *)
  | Msg_reorder  (** probabilistic extra delivery delay *)
  | Latency_spike  (** deterministic added latency *)
  | Torn_tail  (** buffer fsyncs, crash, lose the unsynced tail *)
  | Fsync_stall  (** buffer fsyncs; flush at heal *)
  | Clock_drift  (** skew the leader's clock rate beyond the lease margin *)
  | Clock_step  (** step the leader's clock by a fixed skew *)
  | Disk_corrupt  (** flip bytes in a stored log entry, then crash *)
  | Asym_partition  (** drop follower->leader traffic only (ack starvation) *)
  | Election_storm  (** force simultaneous elections on several followers *)

val kind_to_string : fault_kind -> string

(** CLI names: crash, leader-crash, transfer, partition, isolate, drop,
    dup, reorder, spike, torn-tail, fsync-stall, clock-drift,
    clock-step, corrupt, asym-partition, storm. *)
val kind_of_string : string -> fault_kind option

(** The original crash/partition/message-fault repertoire — the
    [default] mix. *)
val classic_kinds : fault_kind list

(** The adversarial attack families (clock, corruption, asymmetric
    partition, election storm) — added by [campaign]. *)
val attack_kinds : fault_kind list

val all_kinds : fault_kind list

type t = {
  mix : (fault_kind * float) list;  (** weighted fault mix, drawn each step *)
  inject_p : float;  (** P(attempt an injection) per step *)
  max_concurrent : int;  (** outstanding (un-healed) faults at once *)
  min_up : int;  (** never crash below this many live nodes *)
  heal_after_lo : float;  (** auto-heal delay window, µs *)
  heal_after_hi : float;
  drop_p : float;  (** per-message probabilities for the Msg_* faults *)
  dup_p : float;
  reorder_p : float;
  reorder_delay : float;  (** max extra delay for reordered/dup copies, µs *)
  spike_latency : float;  (** added one-way latency for Latency_spike, µs *)
  torn_tail_k : int;  (** max unsynced entries lost by Torn_tail *)
  drift_rate : float;
      (** Clock_drift: fractional rate skew (0.05 = 5% fast/slow) *)
  step_skew : float;  (** Clock_step: magnitude of the one-shot jump, µs *)
  storm_nodes : int;
      (** Election_storm: followers forced to campaign at once *)
}

(** The classic mix only; chaos-smoke keeps its historical behavior. *)
val default : t

(** Every attack family plus the classic kinds, uniformly weighted, so
    attacks land on an already-perturbed cluster;
    [with_faults default (fault_names campaign)] replays the identical
    mix. *)
val campaign : t

(** Restrict the mix to the named kinds (the CLI's --faults list);
    [Error] on an unknown name or an empty list. *)
val with_faults : t -> string list -> (t, string) result

val fault_names : t -> string list

(** Weighted draw from the mix.  Entries with weight [<= 0.0] are never
    sampled; [None] iff no entry has positive weight. *)
val draw : t -> Sim.Rng.t -> fault_kind option

val heal_delay : t -> Sim.Rng.t -> float
