(* Continuous Raft safety checker.

   The checker walks a live cluster through [probe]s (one per member —
   servers, logtailers, or bare test-harness nodes) and asserts, on every
   call to [check]:

   - election safety: at most one leader per term, ever;
   - commit safety + log matching: once any node commits index i, every
     node's committed prefix holds the identical entry at i (same term,
     same checksum) — across crashes, restarts and torn tails;
   - leader completeness: a newly observed leader's log contains every
     globally committed entry;
   - engine convergence: every replica's commit history is a prefix of
     the most advanced replica's history (per-commit digest chain).

   Violations are recorded (deduplicated) rather than raised, so a chaos
   run can finish and report them all alongside the repro seed. *)

type probe = {
  probe_id : string;
  probe_up : unit -> bool;
  probe_raft : unit -> Raft.Node.t option;
  probe_store : unit -> Binlog.Log_store.t option;
  probe_engine : unit -> Storage.Engine.t option;
}

type violation = {
  v_time : float;
  v_invariant : string;
  v_detail : string;
  v_metrics : Obs.Metrics.snapshot option;
}

let violation_to_string v =
  Printf.sprintf "[%.3fs] %s: %s" (v.v_time /. Sim.Engine.s) v.v_invariant v.v_detail

(* What the checker remembers about a committed index: the entry's term
   and stamped checksum, plus who first reported it (for messages). *)
type committed_entry = { c_term : int; c_sum : int32; c_reporter : string }

type t = {
  now : unit -> float;
  mutable probes : probe list;
  snapshot : (unit -> Obs.Metrics.snapshot) option;
  committed : (int, committed_entry) Hashtbl.t;
  leaders_by_term : (int, string) Hashtbl.t;
  checked_leaderships : (int * string, unit) Hashtbl.t;
  checked_to : (string, int) Hashtbl.t; (* per-probe verified commit prefix *)
  stale_serves_seen : (string, int) Hashtbl.t; (* per-probe lease_stale_serves high-water *)
  crc_cursor : (string, int) Hashtbl.t; (* per-probe rotating CRC re-verify cursor *)
  seen_violations : (string * string, unit) Hashtbl.t; (* dedup key *)
  configs_seen : (int * int, string * string) Hashtbl.t;
      (* (cfg_term, cfg_version) -> (membership signature, first reporter) *)
  checked_reconfig : (int * int * string, unit) Hashtbl.t;
      (* (cfg_term, cfg_version, leader) completeness re-verifications *)
  mutable newest_cfg : (Raft.Types.cfg_id * Raft.Types.config) option;
  mutable max_committed : int;
  mutable violations : violation list; (* newest first *)
}

let create ?snapshot ~now ~probes () =
  {
    now;
    probes;
    snapshot;
    committed = Hashtbl.create 4096;
    leaders_by_term = Hashtbl.create 16;
    checked_leaderships = Hashtbl.create 16;
    checked_to = Hashtbl.create 16;
    stale_serves_seen = Hashtbl.create 16;
    crc_cursor = Hashtbl.create 16;
    seen_violations = Hashtbl.create 16;
    configs_seen = Hashtbl.create 16;
    checked_reconfig = Hashtbl.create 16;
    newest_cfg = None;
    max_committed = 0;
    violations = [];
  }

(* Probes may join mid-run: membership churn provisions brand-new nodes
   that must fall under the same committed-prefix and convergence
   checks.  Idempotent per probe id. *)
let add_probe t probe =
  if not (List.exists (fun p -> p.probe_id = probe.probe_id) t.probes) then
    t.probes <- t.probes @ [ probe ]

let violate t invariant fmt =
  Printf.ksprintf
    (fun detail ->
      if not (Hashtbl.mem t.seen_violations (invariant, detail)) then begin
        Hashtbl.replace t.seen_violations (invariant, detail) ();
        (* Capture the metrics state at the instant of detection, so a
           violation report carries the counters that led up to it. *)
        let v_metrics = Option.map (fun f -> f ()) t.snapshot in
        t.violations <-
          { v_time = t.now (); v_invariant = invariant; v_detail = detail; v_metrics }
          :: t.violations
      end)
    fmt

(* External checkers (e.g. the linearizable-read register check) record
   their violations through the same deduplicated pipeline. *)
let report t ~invariant ~detail = violate t invariant "%s" detail

let entry_sig e = (Binlog.Entry.term e, Binlog.Entry.checksum e)

(* ----- election safety: at most one leader per term, ever ----- *)

let check_election_safety t =
  List.iter
    (fun p ->
      if p.probe_up () then
        match p.probe_raft () with
        | Some raft when Raft.Node.is_leader raft -> (
          let term = Raft.Node.current_term raft in
          match Hashtbl.find_opt t.leaders_by_term term with
          | Some other when other <> p.probe_id ->
            violate t "election-safety" "term %d has two leaders: %s and %s" term other
              p.probe_id
          | Some _ -> ()
          | None -> Hashtbl.replace t.leaders_by_term term p.probe_id)
        | _ -> ())
    t.probes

(* ----- commit safety + log matching on committed prefixes ----- *)

(* Walk each node's newly committed indexes and pin them in the global
   table; any disagreement with an already pinned index is a violation.
   The verified prefix per probe only ever grows, so the walk is
   incremental — a restart (commit index back to 0) rescans nothing. *)
let check_commit_safety t =
  List.iter
    (fun p ->
      if p.probe_up () then
        match (p.probe_raft (), p.probe_store ()) with
        | Some raft, Some store ->
          let ci = Raft.Node.commit_index raft in
          let from = Option.value (Hashtbl.find_opt t.checked_to p.probe_id) ~default:0 in
          for i = from + 1 to ci do
            match Binlog.Log_store.entry_at store i with
            | None -> () (* purged before we saw it; nothing to compare *)
            | Some e -> (
              let term, sum = entry_sig e in
              match Hashtbl.find_opt t.committed i with
              | None ->
                Hashtbl.replace t.committed i { c_term = term; c_sum = sum; c_reporter = p.probe_id }
              | Some c when c.c_term <> term || c.c_sum <> sum ->
                violate t "commit-safety"
                  "index %d committed as (term %d, sum %ld) by %s but %s committed (term %d, sum %ld)"
                  i c.c_term c.c_sum c.c_reporter p.probe_id term sum
              | Some _ -> ())
          done;
          if ci > from then Hashtbl.replace t.checked_to p.probe_id ci;
          if ci > t.max_committed then t.max_committed <- ci
        | _ -> ())
    t.probes

(* ----- leader completeness ----- *)

(* A node elected leader must hold every entry the cluster has committed
   (Raft's leader-completeness property).  Checked once per (term,
   leader) when first observed. *)
let check_leader_completeness t =
  List.iter
    (fun p ->
      if p.probe_up () then
        match (p.probe_raft (), p.probe_store ()) with
        | Some raft, Some store when Raft.Node.is_leader raft ->
          let key = (Raft.Node.current_term raft, p.probe_id) in
          if not (Hashtbl.mem t.checked_leaderships key) then begin
            Hashtbl.replace t.checked_leaderships key ();
            let purged = Binlog.Log_store.purged_below store in
            Hashtbl.iter
              (fun i c ->
                if i >= purged then
                  match Binlog.Log_store.entry_at store i with
                  | None ->
                    violate t "leader-completeness"
                      "leader %s (term %d) is missing committed index %d" p.probe_id
                      (fst key) i
                  | Some e ->
                    let term, sum = entry_sig e in
                    if term <> c.c_term || sum <> c.c_sum then
                      violate t "leader-completeness"
                        "leader %s (term %d) holds a different entry at committed index %d"
                        p.probe_id (fst key) i)
              t.committed
          end
        | _ -> ())
    t.probes

(* ----- engine convergence ----- *)

(* Every replica's engine history must be a prefix of the most advanced
   replica's history: same transactions, same order (per-commit digest
   chain, §5.1's checksum comparison made lag-proof). *)
let check_engine_convergence t =
  let engines =
    List.filter_map
      (fun p ->
        if p.probe_up () then
          match p.probe_engine () with
          | Some e -> Some (p.probe_id, e)
          | None -> None
        else None)
      t.probes
  in
  match engines with
  | [] | [ _ ] -> ()
  | engines ->
    let ref_id, ref_engine =
      List.fold_left
        (fun ((_, best) as acc) ((_, e) as cand) ->
          if Storage.Engine.committed_count e > Storage.Engine.committed_count best then cand
          else acc)
        (List.hd engines) (List.tl engines)
    in
    List.iter
      (fun (id, e) ->
        if id <> ref_id then
          let c = Storage.Engine.committed_count e in
          if
            c > 0
            && Storage.Engine.checksum_at e ~count:c
               <> Storage.Engine.checksum_at ref_engine ~count:c
          then begin
            (* Binary-search the first diverging commit position — the
               digest chain is cumulative, so prefixes agree up to it. *)
            let lo = ref 1 and hi = ref c in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if
                Storage.Engine.checksum_at e ~count:mid
                <> Storage.Engine.checksum_at ref_engine ~count:mid
              then hi := mid
              else lo := mid + 1
            done;
            let describe engine =
              match Storage.Engine.nth_commit engine (!lo - 1) with
              | Some (gtid, opid) ->
                Printf.sprintf "%s@%s" (Binlog.Gtid.to_string gtid)
                  (Binlog.Opid.to_string opid)
              | None -> "?"
            in
            violate t "engine-convergence"
              "%s's %d-commit history diverges from the same prefix on %s at commit %d \
               (%s committed %s, %s committed %s)"
              id c ref_id !lo id (describe e) ref_id (describe ref_engine)
          end)
      engines

(* ----- lease validity against global time ----- *)

(* A leader must never serve a lease-path read after the lease has
   expired in *global* (true) time, no matter what its skewed local
   clock claims.  The Raft node counts such serves against its
   engine-time oracle ([lease_stale_serves]); any increase is a
   violation.  A restart resets the counter (fresh node object), so the
   high-water mark re-pins whenever the observed value goes backwards. *)
let check_stale_lease_reads t =
  List.iter
    (fun p ->
      if p.probe_up () then
        match p.probe_raft () with
        | Some raft ->
          let n = Raft.Node.lease_stale_serves raft in
          let seen =
            Option.value (Hashtbl.find_opt t.stale_serves_seen p.probe_id) ~default:0
          in
          if n > seen then
            violate t "stale-lease-read"
              "%s served %d lease read(s) past the lease's global-time expiry" p.probe_id
              (n - seen);
          if n <> seen then Hashtbl.replace t.stale_serves_seen p.probe_id n
        | None -> ())
    t.probes

(* ----- no committed entry may fail its checksum ----- *)

(* Disk corruption must never survive into a served committed prefix:
   recovery is required to detect a CRC mismatch and truncate-and-refetch
   (or refuse to serve) rather than silently keep the bytes.  Re-verifies
   committed entries with a budgeted rotating cursor per probe, so a
   persistent corrupt entry is always caught within a few checks without
   making each check O(log size). *)
let crc_budget = 128

let check_committed_crc t =
  List.iter
    (fun p ->
      if p.probe_up () then
        match (p.probe_raft (), p.probe_store ()) with
        | Some raft, Some store ->
          let ci = Raft.Node.commit_index raft in
          let lo = max 1 (Binlog.Log_store.purged_below store) in
          if ci >= lo then begin
            let start =
              match Hashtbl.find_opt t.crc_cursor p.probe_id with
              | Some c when c >= lo && c <= ci -> c
              | _ -> lo
            in
            let cursor = ref start in
            for _ = 1 to min crc_budget (ci - lo + 1) do
              (match Binlog.Log_store.entry_at store !cursor with
              | Some e when not (Binlog.Entry.verify e) ->
                violate t "corrupt-entry-served"
                  "%s holds a committed entry at index %d that fails its checksum"
                  p.probe_id !cursor
              | _ -> ());
              cursor := if !cursor >= ci then lo else !cursor + 1
            done;
            Hashtbl.replace t.crc_cursor p.probe_id !cursor
          end
        | _ -> ())
    t.probes

(* ----- logless reconfiguration safety ----- *)

let membership_signature cfg =
  String.concat ","
    (List.sort compare
       (List.map
          (fun m ->
            Printf.sprintf "%s%s@%s" m.Raft.Types.id
              (if m.Raft.Types.voter then "*" else "-")
              m.Raft.Types.region)
          (Raft.Types.config_members cfg)))

(* Three oracles over the gossiped config state:

   - config integrity: one identity, one membership — two nodes holding
     the same (term, version) with different member lists mean the
     gossip forked;
   - quorum-overlap safety: consecutive adopted configs must share a
     voter (checked whenever the observed newest identity advances by
     exactly one version, i.e. no step was missed between checks);
   - no committed-entry loss across reconfig: whenever a leader is first
     seen under a new config identity, every globally pinned committed
     entry must still be in its log (the reconfig counterpart of leader
     completeness — a membership swap must not strand committed data on
     evicted members only). *)
let check_config_integrity t =
  List.iter
    (fun p ->
      if p.probe_up () then
        match p.probe_raft () with
        | None -> ()
        | Some raft ->
          let cid = Raft.Node.config_id raft in
          let cfg = Raft.Node.config raft in
          let key = (cid.Raft.Types.cfg_term, cid.Raft.Types.cfg_version) in
          let sg = membership_signature cfg in
          (* The zero identity is the pre-gossip bootstrap placeholder:
             a freshly provisioned joiner snapshots the membership of
             the moment as its starting view and only learns the real
             config identity from its first AppendEntries, so bodies
             under v0@t0 legitimately differ between joiners provisioned
             at different instants.  Only adopted identities (v >= 1)
             make the one-membership-per-identity claim. *)
          if key = (0, 0) then ()
          else
          (match Hashtbl.find_opt t.configs_seen key with
          | None -> Hashtbl.replace t.configs_seen key (sg, p.probe_id)
          | Some (sg0, reporter) when sg0 <> sg ->
            violate t "config-integrity"
              "config %s is [%s] on %s but [%s] on %s"
              (Raft.Types.cfg_id_to_string cid)
              sg0 reporter sg p.probe_id
          | Some _ -> ());
          (match t.newest_cfg with
          | Some (best, best_cfg) when Raft.Types.cfg_id_newer cid best ->
            if
              cid.Raft.Types.cfg_version <= best.Raft.Types.cfg_version + 1
              && not (Raft.Types.voters_overlap best_cfg cfg)
            then
              violate t "reconfig-overlap"
                "config %s [%s] shares no voter with its predecessor %s [%s]"
                (Raft.Types.cfg_id_to_string cid)
                sg
                (Raft.Types.cfg_id_to_string best)
                (membership_signature best_cfg);
            t.newest_cfg <- Some (cid, cfg)
          | Some _ -> ()
          | None -> t.newest_cfg <- Some (cid, cfg));
          if Raft.Node.is_leader raft then begin
            let rkey =
              (cid.Raft.Types.cfg_term, cid.Raft.Types.cfg_version, p.probe_id)
            in
            if not (Hashtbl.mem t.checked_reconfig rkey) then begin
              Hashtbl.replace t.checked_reconfig rkey ();
              match p.probe_store () with
              | None -> ()
              | Some store ->
                let purged = Binlog.Log_store.purged_below store in
                Hashtbl.iter
                  (fun i c ->
                    if i >= purged then
                      match Binlog.Log_store.entry_at store i with
                      | None ->
                        violate t "reconfig-completeness"
                          "leader %s under config %s lost committed index %d"
                          p.probe_id
                          (Raft.Types.cfg_id_to_string cid)
                          i
                      | Some e ->
                        let term, sum = entry_sig e in
                        if term <> c.c_term || sum <> c.c_sum then
                          violate t "reconfig-completeness"
                            "leader %s under config %s holds a different entry at \
                             committed index %d"
                            p.probe_id
                            (Raft.Types.cfg_id_to_string cid)
                            i)
                  t.committed
            end
          end)
    t.probes

let check t =
  check_election_safety t;
  check_commit_safety t;
  check_leader_completeness t;
  check_engine_convergence t;
  check_stale_lease_reads t;
  check_committed_crc t;
  check_config_integrity t

(* ----- end-of-run convergence (after healing + settling) ----- *)

(* With every fault healed and the cluster settled, all up members must
   agree exactly: same log tail, pairwise-identical entries, identical
   engine content. *)
let check_converged t =
  let stores =
    List.filter_map
      (fun p ->
        if p.probe_up () then
          Option.map (fun s -> (p.probe_id, s)) (p.probe_store ())
        else None)
      t.probes
  in
  (match stores with
  | [] | [ _ ] -> ()
  | (ref_id, ref_store) :: rest ->
    List.iter
      (fun (id, store) ->
        if Binlog.Log_store.last_index store <> Binlog.Log_store.last_index ref_store then
          violate t "convergence" "%s log ends at %d but %s ends at %d" id
            (Binlog.Log_store.last_index store) ref_id
            (Binlog.Log_store.last_index ref_store)
        else begin
          let lo =
            max (Binlog.Log_store.purged_below store) (Binlog.Log_store.purged_below ref_store)
          in
          for i = lo to Binlog.Log_store.last_index store do
            match (Binlog.Log_store.entry_at store i, Binlog.Log_store.entry_at ref_store i) with
            | Some a, Some b when entry_sig a <> entry_sig b ->
              violate t "convergence" "%s and %s disagree at log index %d" id ref_id i
            | _ -> ()
          done
        end)
      rest);
  let engines =
    List.filter_map
      (fun p ->
        if p.probe_up () then
          Option.map (fun e -> (p.probe_id, e)) (p.probe_engine ())
        else None)
      t.probes
  in
  match engines with
  | [] | [ _ ] -> ()
  | (ref_id, ref_engine) :: rest ->
    List.iter
      (fun (id, e) ->
        if Storage.Engine.checksum e <> Storage.Engine.checksum ref_engine then
          violate t "convergence" "%s engine content differs from %s" id ref_id)
      rest

let violations t = List.rev t.violations

let violation_count t = List.length t.violations

let max_committed t = t.max_committed

let committed_entries t = Hashtbl.length t.committed
