(* Membership-churn chaos: directed reconfiguration scenarios run under
   the invariant checker (including the logless-reconfig oracles), each
   gated on zero violations plus end-of-run convergence.

   - {!rolling_evacuation}: drain a whole region through the planner —
     every member of r3 is replaced by a fresh node in a new region r4
     (staged learner adds, catch-up promotes, voter drain, eviction)
     while an open-loop workload keeps writing;
   - {!replace_while_partitioned}: a region is partitioned away, a voter
     elsewhere is killed permanently, and the self-healing driver must
     restore full redundancy while the partition is still up;
   - {!storm_churn}: continuous membership changes (voter/learner
     toggles, add/remove of an extra node) racing an election-storm
     nemesis mix — term churn in the middle of config gossip;
   - {!sharded_churn}: per-group membership churn on a multi-Raft
     deployment, every group checked by its own invariant set.

   Churn needs dynamic probes: replacements are brand-new nodes, and
   evicted members must leave the convergence check.  Each probe's
   [probe_up] therefore also requires membership in the newest installed
   config across live nodes. *)

let s = Sim.Engine.s

let leader_raft cluster =
  match Myraft.Cluster.raft_leader cluster with
  | Some id -> Myraft.Cluster.raft_of cluster id
  | None -> None

type report = {
  c_scenario : string;
  c_seed : int;
  c_reconfigs : int; (* committed membership changes *)
  c_replacements : (string * string) list; (* corpse, replacement *)
  c_committed : int;
  c_workload_committed : int;
  c_converged : bool;
  c_violations : Invariants.violation list;
  c_metrics : Obs.Metrics.snapshot;
}

let report_summary r =
  Printf.sprintf
    "%s seed %d · %d reconfigs · %d replacements · committed idx %d · %d client commits · converged %b · %d violations"
    r.c_scenario r.c_seed r.c_reconfigs
    (List.length r.c_replacements)
    r.c_committed r.c_workload_committed r.c_converged
    (List.length r.c_violations)

(* ----- membership-aware probes ----- *)

let member_probe cluster id =
  {
    Invariants.probe_id = id;
    probe_up =
      (fun () ->
        (not (Myraft.Cluster.is_crashed cluster id))
        &&
        match Reconfig.Healer.newest_config cluster with
        | Some cfg -> Raft.Types.is_member cfg id
        | None -> true);
    probe_raft = (fun () -> Myraft.Cluster.raft_of cluster id);
    probe_store =
      (fun () ->
        match Myraft.Cluster.node cluster id with
        | Some (Myraft.Cluster.Mysql_node sv) -> Some (Myraft.Server.log sv)
        | Some (Myraft.Cluster.Tailer_node l) -> Some (Myraft.Logtailer.log l)
        | None -> None);
    probe_engine =
      (fun () ->
        match Myraft.Cluster.node cluster id with
        | Some (Myraft.Cluster.Mysql_node sv) -> Some (Myraft.Server.storage sv)
        | _ -> None);
  }

(* Idempotent: newly provisioned nodes gain a probe, existing ids are
   left alone. *)
let sync_probes inv cluster =
  List.iter
    (fun id -> Invariants.add_probe inv (member_probe cluster id))
    (Myraft.Cluster.member_ids cluster)

(* ----- settling: current members only ----- *)

(* Full convergence over the *current* membership: equal commit indexes
   and log tails, drained appliers, and one agreed config identity.
   Evicted nodes (and permanently dead corpses) are out of scope — the
   membership-aware probes exclude them from [check_converged] too. *)
let members_settled cluster =
  match (Myraft.Cluster.raft_leader cluster, Reconfig.Healer.newest_config cluster) with
  | None, _ | _, None -> false
  | Some _, Some cfg -> (
    let ids =
      List.filter
        (fun id -> not (Myraft.Cluster.is_crashed cluster id))
        (Raft.Types.member_ids cfg)
    in
    let rafts = List.filter_map (Myraft.Cluster.raft_of cluster) ids in
    match rafts with
    | [] -> false
    | r0 :: rest ->
      let i = Raft.Node.commit_index r0 in
      let tl = Binlog.Opid.index (Raft.Node.last_opid r0) in
      let cid = Raft.Node.config_id r0 in
      i > 0
      && List.for_all (fun r -> Raft.Node.commit_index r = i) rest
      && List.for_all (fun r -> Binlog.Opid.index (Raft.Node.last_opid r) = tl) rest
      && List.for_all (fun r -> Raft.Node.config_id r = cid) rest
      && List.for_all
           (fun id ->
             match Myraft.Cluster.server cluster id with
             | Some srv -> Myraft.Server.applied_through srv >= i
             | None -> true)
           ids)

(* ----- the classic-cluster harness ----- *)

type harness = {
  h_cluster : Myraft.Cluster.t;
  h_gen : Workload.Generator.t;
  h_inv : Invariants.t;
}

let classic_harness ~seed =
  let params =
    {
      Myraft.Params.default with
      raft =
        {
          Myraft.Params.default.Myraft.Params.raft with
          Raft.Node.quorum_mode = Raft.Quorum.Single_region_dynamic;
        };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"churn"
      ~members:(Nemesis.chaos_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"my1";
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"churn-client" ~region:"r1" ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:100.0;
  let inv =
    Invariants.create
      ~snapshot:(fun () -> Myraft.Cluster.metrics_snapshot cluster)
      ~now:(fun () -> Myraft.Cluster.now cluster)
      ~probes:[] ()
  in
  sync_probes inv cluster;
  { h_cluster = cluster; h_gen = gen; h_inv = inv }

let finish h ~scenario ~seed ~reconfigs ~replacements ~extra_metrics =
  Workload.Generator.stop h.h_gen;
  sync_probes h.h_inv h.h_cluster;
  let settled =
    Myraft.Cluster.run_until h.h_cluster ~timeout:(60.0 *. s) (fun () ->
        members_settled h.h_cluster)
  in
  Invariants.check h.h_inv;
  if settled then Invariants.check_converged h.h_inv;
  {
    c_scenario = scenario;
    c_seed = seed;
    c_reconfigs = reconfigs;
    c_replacements = replacements;
    c_committed = Invariants.max_committed h.h_inv;
    c_workload_committed =
      (Workload.Generator.stats h.h_gen).Workload.Generator.committed;
    c_converged = settled;
    c_violations = Invariants.violations h.h_inv;
    c_metrics =
      Obs.Metrics.merge_all ~node:"churn"
        (Myraft.Cluster.metrics_snapshot h.h_cluster :: extra_metrics);
  }

(* ----- scenario 1: rolling region evacuation ----- *)

let rolling_evacuation ?(seed = 7) () =
  let h = classic_harness ~seed in
  Myraft.Cluster.run_for h.h_cluster (2.0 *. s);
  let reconfigs = ref 0 in
  (match leader_raft h.h_cluster with
  | None -> Invariants.report h.h_inv ~invariant:"evacuation" ~detail:"no leader"
  | Some leader ->
    (* Target: every r3 member replaced by a fresh same-kind node in the
       brand-new region r4, voter grades preserved. *)
    let target =
      {
        Raft.Types.members =
          List.concat_map
            (fun m ->
              if m.Raft.Types.region = "r3" then
                [ { m with Raft.Types.id = m.Raft.Types.id ^ "-evac"; region = "r4" } ]
              else [ m ])
            (Raft.Types.config_members (Raft.Node.config leader));
      }
    in
    match
      Reconfig.Healer.apply_target h.h_cluster ~target ~on_step:(fun _ ->
          incr reconfigs;
          sync_probes h.h_inv h.h_cluster;
          Invariants.check h.h_inv)
    with
    | Ok _ -> ()
    | Error e ->
      Invariants.report h.h_inv ~invariant:"evacuation" ~detail:("did not complete: " ^ e));
  (* The evacuated region must be fully gone from the membership. *)
  (match Reconfig.Healer.newest_config h.h_cluster with
  | Some cfg when List.exists (fun m -> m.Raft.Types.region = "r3") (Raft.Types.config_members cfg)
    ->
    Invariants.report h.h_inv ~invariant:"evacuation"
      ~detail:"r3 members remain after evacuation"
  | _ -> ());
  finish h ~scenario:"evacuation" ~seed ~reconfigs:!reconfigs ~replacements:[]
    ~extra_metrics:[]

(* ----- scenario 2: replace while partitioned ----- *)

let replace_while_partitioned ?(seed = 7) () =
  let h = classic_harness ~seed in
  let cluster = h.h_cluster in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let net = Myraft.Cluster.network cluster in
  (* r2 loses contact with the rest of the world... *)
  Sim.Network.cut_regions net "r1" "r2";
  Sim.Network.cut_regions net "r3" "r2";
  (* ...and a voter in r3 dies for good. *)
  Myraft.Cluster.crash cluster "lt3a";
  let healer =
    Reconfig.Healer.start ~check_interval:(0.25 *. s) ~dead_after:(2.0 *. s) cluster
  in
  let deadline = Myraft.Cluster.now cluster +. (60.0 *. s) in
  while
    Reconfig.Healer.replacements healer = []
    && Myraft.Cluster.now cluster < deadline
  do
    Myraft.Cluster.run_for cluster (0.25 *. s);
    sync_probes h.h_inv cluster;
    Invariants.check h.h_inv
  done;
  if Reconfig.Healer.replacements healer = [] then
    Invariants.report h.h_inv ~invariant:"self-healing"
      ~detail:"replacement did not complete while partitioned";
  Reconfig.Healer.stop healer;
  Sim.Network.heal_regions net "r1" "r2";
  Sim.Network.heal_regions net "r3" "r2";
  let replacements =
    List.map
      (fun r -> (r.Reconfig.Healer.r_corpse, r.Reconfig.Healer.r_replacement))
      (Reconfig.Healer.replacements healer)
  in
  finish h ~scenario:"replace-partitioned" ~seed
    ~reconfigs:(3 * List.length replacements)
    ~replacements
    ~extra_metrics:[ Reconfig.Healer.metrics_snapshot healer ]

(* ----- scenario 3: membership churn under election storms ----- *)

let storm_spec =
  {
    Schedule.default with
    Schedule.mix =
      [
        (Schedule.Election_storm, 2.0);
        (Schedule.Leader_crash, 1.0);
        (Schedule.Graceful_transfer, 1.0);
      ];
    inject_p = 0.5;
  }

(* One churn cycle: toggle an existing voter through learner and back,
   then walk an extra node through its whole life (join as learner,
   promote, demote, remove).  Every op is retried until the leader of
   the moment accepts it — "change already in progress" and "not the
   leader" are normal weather under storms. *)
let cycle_ops cluster n =
  let extra = Printf.sprintf "churn-extra%d" n in
  [
    (fun l -> Raft.Node.demote_voter l "lt2b");
    (fun l -> Raft.Node.promote_learner l "lt2b");
    (fun l ->
      if Myraft.Cluster.node cluster extra = None then
        Myraft.Cluster.add_server cluster (Myraft.Cluster.mysql ~voter:false extra "r1");
      Raft.Node.add_member l
        {
          Raft.Types.id = extra;
          region = "r1";
          voter = false;
          kind = Raft.Types.Mysql_server;
        });
    (fun l -> Raft.Node.promote_learner l extra);
    (fun l -> Raft.Node.demote_voter l extra);
    (fun l -> Raft.Node.remove_member l extra);
  ]

let storm_churn ?(seed = 7) ?(steps = 60) () =
  let h = classic_harness ~seed in
  let cluster = h.h_cluster in
  let nemesis =
    Nemesis.create
      ~engine:(Myraft.Cluster.engine cluster)
      ~trace:(Myraft.Cluster.trace cluster)
      ~rng:(Sim.Rng.of_int (seed lxor 0x6368726e))
      ~spec:storm_spec
      ~ops:(Nemesis.ops_of_cluster cluster)
  in
  let queue = ref [] in
  let cycle = ref 0 in
  let applied = ref 0 in
  let churn_step () =
    (if !queue = [] then begin
       incr cycle;
       queue := cycle_ops cluster !cycle
     end);
    match leader_raft cluster with
    | Some leader when not (Raft.Node.has_pending_config_change leader) -> (
      match !queue with
      | op :: rest -> (
        match op leader with
        | Ok _ ->
          incr applied;
          queue := rest
        | Error _ -> () (* retried next step *))
      | [] -> ())
    | _ -> ()
  in
  for _ = 1 to steps do
    Nemesis.step nemesis;
    churn_step ();
    Myraft.Cluster.run_for cluster (0.25 *. s);
    sync_probes h.h_inv cluster;
    Invariants.check h.h_inv
  done;
  Nemesis.heal_now nemesis;
  finish h ~scenario:"storm-churn" ~seed ~reconfigs:!applied ~replacements:[]
    ~extra_metrics:[ Nemesis.metrics_snapshot nemesis ]

(* ----- sharded: per-group membership churn ----- *)

(* Every group cycles a voter through learner grade and back on its own
   schedule — group g works on a different member than group g+1 at any
   instant, so the deployment always has groups mid-reconfig while
   others are stable.  Gates: per-group invariants (incl. the config
   oracles), per-group convergence, and every group having committed its
   full quota of changes. *)
let sharded_churn ?(seed = 7) ?(groups = 3) ?(cycles = 4) () =
  let multi =
    Shard.Multi.create ~seed ~members:(Nemesis.chaos_members ()) ~groups ()
  in
  Shard.Multi.bootstrap multi;
  let backend = Shard.Multi.backend multi in
  let gen =
    Workload.Generator.create ~backend ~client_id:"churn-client" ~region:"r1" ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:100.0;
  let invs =
    List.map
      (fun c ->
        Invariants.create
          ~snapshot:(fun () -> Myraft.Cluster.metrics_snapshot c)
          ~now:(fun () -> Myraft.Cluster.now c)
          ~probes:(Nemesis.probes_of_cluster c) ())
      (Shard.Multi.clusters multi)
  in
  let check_all () = List.iter Invariants.check invs in
  (* group g toggles lt2b or lt3b depending on parity, voters first *)
  let victims = [| "lt2b"; "lt3b" |] in
  let wanted = 2 * cycles in
  let applied = Array.make groups 0 in
  let steps = ref 0 in
  let max_steps = 80 * cycles in
  while Array.exists (fun a -> a < wanted) applied && !steps < max_steps do
    incr steps;
    List.iteri
      (fun g c ->
        if applied.(g) < wanted then
          match
            match Myraft.Cluster.raft_leader c with
            | Some id -> Myraft.Cluster.raft_of c id
            | None -> None
          with
          | Some leader when not (Raft.Node.has_pending_config_change leader) ->
            let victim = victims.((g + (applied.(g) / 2)) mod 2) in
            let result =
              if applied.(g) mod 2 = 0 then Raft.Node.demote_voter leader victim
              else Raft.Node.promote_learner leader victim
            in
            (match result with
            | Ok _ -> applied.(g) <- applied.(g) + 1
            | Error _ -> ())
          | _ -> ())
      (Shard.Multi.clusters multi);
    Shard.Multi.run_for multi (0.25 *. s);
    check_all ()
  done;
  Workload.Generator.stop gen;
  let settled =
    Shard.Multi.run_until multi ~timeout:(60.0 *. s) (fun () ->
        List.for_all members_settled (Shard.Multi.clusters multi))
  in
  check_all ();
  if settled then List.iter Invariants.check_converged invs;
  let total_applied = Array.fold_left ( + ) 0 applied in
  let violations = List.concat_map Invariants.violations invs in
  let violations =
    if Array.exists (fun a -> a < wanted) applied then
      {
        Invariants.v_time = Shard.Multi.now multi;
        v_invariant = "sharded-churn";
        v_detail = "some group did not complete its churn quota";
        v_metrics = None;
      }
      :: violations
    else violations
  in
  {
    c_scenario = Printf.sprintf "sharded-churn[%d groups]" groups;
    c_seed = seed;
    c_reconfigs = total_applied;
    c_replacements = [];
    c_committed =
      List.fold_left (fun acc inv -> max acc (Invariants.max_committed inv)) 0 invs;
    c_workload_committed = (Workload.Generator.stats gen).Workload.Generator.committed;
    c_converged = settled;
    c_violations = violations;
    c_metrics = Shard.Multi.metrics_snapshot multi;
  }

(* ----- the CI sweep ----- *)

let scenarios =
  [
    ("evacuation", fun seed -> rolling_evacuation ~seed ());
    ("replace-partitioned", fun seed -> replace_while_partitioned ~seed ());
    ("storm-churn", fun seed -> storm_churn ~seed ());
    ("sharded-churn", fun seed -> sharded_churn ~seed ());
  ]

let run_scenario ~name ~seed =
  match List.assoc_opt name scenarios with
  | Some f -> Ok (f seed)
  | None -> Error (Printf.sprintf "unknown churn scenario %S" name)

let scenario_names = List.map fst scenarios

(* Classic + sharded membership-churn legs for the chaos-smoke gate:
   every scenario over every seed. *)
let sweep ~seeds () =
  List.concat_map (fun (_, f) -> List.map f seeds) scenarios
