(* Register-semantics linearizability checker for the read path.

   One writer session appends monotonically increasing values to a
   single register key, strictly one write outstanding at a time, so the
   committed value sequence is monotone: the register's linearized value
   at any instant is the largest acknowledged value.  Concurrently,
   reader sessions issue [Linearizable] reads against random MySQL
   members (exercising both the leader's ReadIndex/lease path and
   follower forwarding) and [Eventual] reads against the same members.

   The check: a Linearizable read must return a value at least as new as
   every write acknowledged BEFORE the read was issued (the floor
   captured at issue time).  Anything older is a real-time ordering
   violation and is reported into {!Invariants}.  Eventual reads are
   held to no such standard — we merely count how often they observe
   staleness (value below the floor at completion), which the acceptance
   run requires to be non-zero: proof the checker can tell the tiers
   apart. *)

type stats = {
  mutable writes_acked : int;
  mutable lin_issued : int;
  mutable lin_ok : int;
  mutable lin_rejected : int; (* rejected or timed out: no safety claim *)
  mutable lin_violations : int;
  mutable ev_issued : int;
  mutable ev_ok : int;
  mutable ev_stale : int; (* eventual reads that observed staleness *)
}

type t = {
  backend : Workload.Backend.t;
  inv : Invariants.t;
  rng : Sim.Rng.t;
  client : string;
  write_gap : float;
  read_gap : float;
  timeout : float;
  stats : stats;
  pending_writes : (int, bool -> unit) Hashtbl.t;
  pending_reads : (int, Workload.Backend.read_outcome -> unit) Hashtbl.t;
  mutable next_value : int;
  mutable floor : int; (* largest acknowledged value *)
  mutable next_read_id : int;
  mutable running : bool;
}

let table = "linreg"

let key = "register"

let stats t = t.stats

let floor_value t = t.floor

let stop t = t.running <- false

let encode v = Printf.sprintf "%012d" v

let decode s = int_of_string (String.trim s)

let schedule t ~delay f =
  ignore (Sim.Engine.schedule t.backend.Workload.Backend.engine ~delay f)

(* ----- the single monotone writer ----- *)

(* One write in flight at a time: on ack raise the floor, then (either
   way) pause one gap and write the next value.  Timeouts are settled by
   our own timer since a crashed primary never replies. *)
let rec write_loop t =
  if t.running then begin
    let v = t.next_value in
    t.next_value <- t.next_value + 1;
    let write_id = v in
    let settle ok =
      if Hashtbl.mem t.pending_writes write_id then begin
        Hashtbl.remove t.pending_writes write_id;
        if ok then begin
          t.stats.writes_acked <- t.stats.writes_acked + 1;
          if v > t.floor then t.floor <- v
        end;
        schedule t ~delay:t.write_gap (fun () -> write_loop t)
      end
    in
    Hashtbl.replace t.pending_writes write_id settle;
    let sent =
      t.backend.Workload.Backend.send_write ~client:t.client ~write_id ~table
        ~ops:[ Binlog.Event.Insert { key; value = encode v } ]
    in
    if not sent then settle false
    else schedule t ~delay:t.timeout (fun () -> settle false)
  end

(* ----- readers ----- *)

let pick t l = List.nth l (Sim.Rng.int t.rng (List.length l))

let observed_value = function
  | Workload.Backend.Read_ok (Some s) -> ( try Some (decode s) with _ -> None)
  | Workload.Backend.Read_ok None -> Some 0 (* register never written *)
  | Workload.Backend.Read_rejected _ -> None

let rec read_loop t ~level =
  if t.running then begin
    let read_id = t.next_read_id in
    t.next_read_id <- t.next_read_id + 1;
    let floor_at_issue = t.floor in
    let is_lin = level = Read.Level.Linearizable in
    if is_lin then t.stats.lin_issued <- t.stats.lin_issued + 1
    else t.stats.ev_issued <- t.stats.ev_issued + 1;
    let settle outcome =
      if Hashtbl.mem t.pending_reads read_id then begin
        Hashtbl.remove t.pending_reads read_id;
        (match (is_lin, outcome, observed_value outcome) with
        | true, Workload.Backend.Read_ok _, Some v ->
          t.stats.lin_ok <- t.stats.lin_ok + 1;
          if v < floor_at_issue then begin
            t.stats.lin_violations <- t.stats.lin_violations + 1;
            Invariants.report t.inv ~invariant:"linearizability"
              ~detail:
                (Printf.sprintf
                   "linearizable read %d observed value %d older than acknowledged write %d"
                   read_id v floor_at_issue)
          end
        | true, _, _ -> t.stats.lin_rejected <- t.stats.lin_rejected + 1
        | false, Workload.Backend.Read_ok _, Some v ->
          t.stats.ev_ok <- t.stats.ev_ok + 1;
          (* staleness vs the CURRENT floor: a weaker observation, not a
             violation — eventual reads promise nothing *)
          if v < t.floor then t.stats.ev_stale <- t.stats.ev_stale + 1
        | false, _, _ -> ());
        schedule t ~delay:t.read_gap (fun () -> read_loop t ~level)
      end
    in
    Hashtbl.replace t.pending_reads read_id settle;
    let targets = t.backend.Workload.Backend.read_targets () in
    let sent =
      targets <> []
      && t.backend.Workload.Backend.send_read ~client:t.client ~read_id ~level ~table ~key
           ~target:(Some (pick t targets))
    in
    if not sent then
      settle (Workload.Backend.Read_rejected { reason = "no target"; retry_after = None })
    else
      schedule t ~delay:t.timeout (fun () ->
          settle
            (Workload.Backend.Read_rejected
               { reason = "read timed out"; retry_after = None }))
  end

let start ?(region = "r1") ?(write_gap = 15.0 *. Sim.Engine.ms)
    ?(read_gap = 5.0 *. Sim.Engine.ms) ?(timeout = 2.0 *. Sim.Engine.s)
    ?(lin_readers = 2) ?(ev_readers = 1) ~backend ~invariants () =
  let t =
    {
      backend;
      inv = invariants;
      rng = Sim.Rng.split (Sim.Engine.rng backend.Workload.Backend.engine);
      client = "linreg-client";
      write_gap;
      read_gap;
      timeout;
      stats =
        {
          writes_acked = 0;
          lin_issued = 0;
          lin_ok = 0;
          lin_rejected = 0;
          lin_violations = 0;
          ev_issued = 0;
          ev_ok = 0;
          ev_stale = 0;
        };
      pending_writes = Hashtbl.create 64;
      pending_reads = Hashtbl.create 256;
      next_value = 1;
      floor = 0;
      next_read_id = 1;
      running = true;
    }
  in
  backend.Workload.Backend.register_client ~id:t.client ~region
    ~on_reply:(fun ~write_id ~ok ~gtid:_ ->
      match Hashtbl.find_opt t.pending_writes write_id with
      | Some settle -> settle ok
      | None -> ())
    ~on_read_reply:(fun ~read_id ~outcome ->
      match Hashtbl.find_opt t.pending_reads read_id with
      | Some settle -> settle outcome
      | None -> ());
  write_loop t;
  for _ = 1 to lin_readers do
    schedule t ~delay:(Sim.Rng.uniform t.rng ~lo:0.0 ~hi:read_gap) (fun () ->
        read_loop t ~level:Read.Level.Linearizable)
  done;
  for _ = 1 to ev_readers do
    schedule t ~delay:(Sim.Rng.uniform t.rng ~lo:0.0 ~hi:read_gap) (fun () ->
        read_loop t ~level:Read.Level.Eventual)
  done;
  t

let summary t =
  let s = t.stats in
  Printf.sprintf
    "linreg: %d writes acked (floor %d) · lin %d/%d ok, %d rejected, %d violations · eventual %d/%d ok, %d stale"
    s.writes_acked t.floor s.lin_ok s.lin_issued s.lin_rejected s.lin_violations s.ev_ok
    s.ev_issued s.ev_stale
