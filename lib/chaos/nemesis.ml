(* The nemesis: draws faults from a Schedule, applies them through an
   [ops] record (so the same engine drives a full MyRaft cluster or the
   bare Raft test harness), bounds how many are outstanding, and
   auto-heals each one after a random delay.

   Everything stochastic flows through one split RNG, so a chaos run is
   fully determined by its seed — the repro command printed on a
   violation replays the identical schedule. *)

(* Control surface over the system under test.  [Sim.Network.t] is typed
   over the protocol message, so the nemesis reaches it through closures
   rather than holding it directly. *)
type ops = {
  node_ids : string list;
  region_of : string -> string;
  is_up : string -> bool;
  leader : unit -> string option;
  crash : string -> unit;
  restart : string -> unit;
  isolate : string -> unit;
  heal_node : string -> unit;
  cut_regions : string -> string -> unit;
  heal_regions : string -> string -> unit;
  set_node_faults : string -> Sim.Network.fault_spec -> unit;
  clear_node_faults : string -> unit;
  heal_all_network : unit -> unit;
  store_of : string -> Binlog.Log_store.t option;
  transfer : target:string -> (unit, string) result;
  clock_of : string -> Sim.Clock.t option;
  set_link_faults : src:string -> dst:string -> Sim.Network.fault_spec -> unit;
  clear_link_faults : src:string -> dst:string -> unit;
  force_election : string -> unit;
}

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  rng : Sim.Rng.t;
  spec : Schedule.t;
  ops : ops;
  regions : string list;
  injected : (Schedule.fault_kind, int) Hashtbl.t;
  msg_faulted : (string, unit) Hashtbl.t; (* nodes with an installed message fault *)
  clock_faulted : (string, unit) Hashtbl.t; (* nodes with a skewed clock *)
  asym_faulted : (string, unit) Hashtbl.t; (* sources of a one-way link cut *)
  metrics : Obs.Metrics.t; (* chaos.* counters, merged into the run report *)
  mutable corrupting : bool; (* at most one disk corruption in flight *)
  mutable active : int; (* outstanding (un-healed) faults *)
  mutable total : int;
}

let create ~engine ~trace ~rng ~spec ~ops =
  let regions =
    List.fold_left
      (fun acc id ->
        let r = ops.region_of id in
        if List.mem r acc then acc else acc @ [ r ])
      [] ops.node_ids
  in
  {
    engine;
    trace;
    rng;
    spec;
    ops;
    regions;
    injected = Hashtbl.create 16;
    msg_faulted = Hashtbl.create 8;
    clock_faulted = Hashtbl.create 8;
    asym_faulted = Hashtbl.create 8;
    metrics = Obs.Metrics.create ~node:"nemesis" ();
    corrupting = false;
    active = 0;
    total = 0;
  }

let notef t fmt =
  Printf.ksprintf (fun msg -> Sim.Trace.record t.trace ~tag:"nemesis" "%s" msg) fmt

let up_nodes t = List.filter t.ops.is_up t.ops.node_ids

let pick_from t = function
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int t.rng (List.length l)))

(* Can we afford to take one more node down? *)
let can_crash t = List.length (up_nodes t) - 1 >= t.spec.Schedule.min_up

let record_injection t kind =
  t.total <- t.total + 1;
  Obs.Metrics.bump t.metrics ("chaos.injected." ^ Schedule.kind_to_string kind);
  Hashtbl.replace t.injected kind
    (1 + Option.value (Hashtbl.find_opt t.injected kind) ~default:0)

let schedule_heal t ~delay heal =
  t.active <- t.active + 1;
  ignore
    (Sim.Engine.schedule t.engine ~delay (fun () ->
         heal ();
         t.active <- t.active - 1))

(* ----- the individual faults ----- *)

let inject_crash t node =
  t.ops.crash node;
  record_injection t Schedule.Crash_restart;
  notef t "crash %s" node;
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      if not (t.ops.is_up node) then begin
        t.ops.restart node;
        notef t "restart %s" node
      end)

let inject_leader_crash t leader =
  t.ops.crash leader;
  record_injection t Schedule.Leader_crash;
  notef t "crash leader %s" leader;
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      if not (t.ops.is_up leader) then begin
        t.ops.restart leader;
        notef t "restart %s" leader
      end)

let inject_transfer t ~leader ~target =
  record_injection t Schedule.Graceful_transfer;
  (match t.ops.transfer ~target with
  | Ok () -> notef t "transfer %s -> %s requested" leader target
  | Error e -> notef t "transfer %s -> %s rejected: %s" leader target e)

let inject_partition t r1 r2 =
  t.ops.cut_regions r1 r2;
  record_injection t Schedule.Partition_regions;
  notef t "partition %s | %s" r1 r2;
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      t.ops.heal_regions r1 r2;
      notef t "heal partition %s | %s" r1 r2)

let inject_isolate t node =
  t.ops.isolate node;
  record_injection t Schedule.Isolate_node;
  notef t "isolate %s" node;
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      t.ops.heal_node node;
      notef t "heal isolation of %s" node)

let inject_msg_fault t kind node =
  let s = t.spec in
  let fault =
    match kind with
    | Schedule.Msg_drop -> { Sim.Network.no_faults with drop = s.Schedule.drop_p }
    | Schedule.Msg_duplicate ->
      { Sim.Network.no_faults with
        duplicate = s.Schedule.dup_p;
        reorder_delay = s.Schedule.reorder_delay
      }
    | Schedule.Msg_reorder ->
      { Sim.Network.no_faults with
        reorder = s.Schedule.reorder_p;
        reorder_delay = s.Schedule.reorder_delay
      }
    | Schedule.Latency_spike ->
      { Sim.Network.no_faults with extra_latency = s.Schedule.spike_latency }
    | _ -> assert false
  in
  t.ops.set_node_faults node fault;
  Hashtbl.replace t.msg_faulted node ();
  record_injection t kind;
  notef t "%s fault on %s" (Schedule.kind_to_string kind) node;
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      t.ops.clear_node_faults node;
      Hashtbl.remove t.msg_faulted node;
      notef t "heal %s fault on %s" (Schedule.kind_to_string kind) node)

(* Torn tail: buffer the node's fsyncs so a tail accumulates, crash it
   mid-window (losing up to [torn_tail_k] unsynced entries when the
   restart runs log recovery), restart at heal. *)
let inject_torn_tail t node store =
  Binlog.Log_store.set_buffered store true;
  Binlog.Log_store.set_torn_tail store ~max_lost:t.spec.Schedule.torn_tail_k;
  record_injection t Schedule.Torn_tail;
  notef t "torn-tail armed on %s (k=%d)" node t.spec.Schedule.torn_tail_k;
  let delay = Schedule.heal_delay t.spec t.rng in
  ignore
    (Sim.Engine.schedule t.engine ~delay:(0.5 *. delay) (fun () ->
         if t.ops.is_up node && can_crash t then begin
           t.ops.crash node;
           notef t "torn-tail crash of %s (%d unsynced)" node
             (Binlog.Log_store.unsynced_count store)
         end));
  schedule_heal t ~delay (fun () ->
      if not (t.ops.is_up node) then begin
        t.ops.restart node;
        notef t "restart %s after torn-tail" node
      end
      else
        (* the crash was skipped (min_up floor); just flush the buffer *)
        Binlog.Log_store.set_buffered store false)

let inject_fsync_stall t node store =
  Binlog.Log_store.set_buffered store true;
  record_injection t Schedule.Fsync_stall;
  notef t "fsync stall on %s" node;
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      Binlog.Log_store.set_buffered store false;
      notef t "fsync stall on %s drained (%d entries)" node
        (Binlog.Log_store.last_index store - Binlog.Log_store.synced_index store))

(* ----- the adversarial attack families ----- *)

(* Clock-rate drift on a node (by preference the leader, whose lease
   arithmetic is the target): run its oscillator fast or slow by
   [drift_rate], resync at heal.  The drift magnitude is chosen to sit
   beyond any [max_clock_drift] margin the Raft layer assumes, so an
   under-margined lease would serve stale reads. *)
let inject_clock_attack t kind node clock =
  let sign = if Sim.Rng.float t.rng < 0.5 then 1.0 else -1.0 in
  (match kind with
  | Schedule.Clock_drift ->
    let rate = 1.0 +. (sign *. t.spec.Schedule.drift_rate) in
    Sim.Clock.set_rate clock rate;
    notef t "clock drift on %s (rate %.3f)" node rate
  | Schedule.Clock_step ->
    let skew = sign *. t.spec.Schedule.step_skew in
    Sim.Clock.step clock skew;
    notef t "clock step on %s (%+.0f us)" node skew
  | _ -> assert false);
  Hashtbl.replace t.clock_faulted node ();
  record_injection t kind;
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      Sim.Clock.reset clock;
      Hashtbl.remove t.clock_faulted node;
      notef t "clock resync on %s" node)

(* Byte-level rot in a stored entry, then a crash: at-rest corruption is
   only discovered when the page cache is gone and recovery re-reads the
   log, so the crash is what surfaces it.  At most one corruption is in
   flight at a time — combined with the [min_up] floor this guarantees
   intact copies of every committed entry survive somewhere. *)
let inject_disk_corrupt t node store =
  let last = Binlog.Log_store.last_index store in
  let lo = max 1 (Binlog.Log_store.purged_below store) in
  if last >= lo then begin
    let index = lo + Sim.Rng.int t.rng (last - lo + 1) in
    let flavor =
      if Sim.Rng.float t.rng < 0.5 then Binlog.Entry.Header else Binlog.Entry.Body
    in
    if Binlog.Log_store.corrupt_entry store ~index ~flavor then begin
      t.corrupting <- true;
      record_injection t Schedule.Disk_corrupt;
      notef t "corrupt %s entry at index %d on %s; crashing it"
        (match flavor with Binlog.Entry.Header -> "header" | Binlog.Entry.Body -> "body")
        index node;
      t.ops.crash node;
      schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
          t.corrupting <- false;
          if not (t.ops.is_up node) then begin
            t.ops.restart node;
            notef t "restart %s after corruption (recovery scan runs)" node
          end)
    end
  end

(* One-directional partition aimed at the leader's lease-refresh acks:
   drop everything every follower sends to the leader while the leader's
   own traffic (heartbeats, entries) still arrives.  The leader stops
   hearing acks — its lease cannot be extended — yet clients still reach
   it; meanwhile the followers, free to talk among themselves, elect a
   new leader the old one never learns about.  The classic lease-safety
   stress: only lease arithmetic stands between the deposed leader and a
   stale read. *)
let inject_asym_partition t ~leader ~followers =
  List.iter
    (fun src -> t.ops.set_link_faults ~src ~dst:leader { Sim.Network.no_faults with drop = 1.0 })
    followers;
  Hashtbl.replace t.asym_faulted leader ();
  record_injection t Schedule.Asym_partition;
  notef t "asym partition: inbound traffic to leader %s dropped (%d links)" leader
    (List.length followers);
  schedule_heal t ~delay:(Schedule.heal_delay t.spec t.rng) (fun () ->
      List.iter (fun src -> t.ops.clear_link_faults ~src ~dst:leader) followers;
      Hashtbl.remove t.asym_faulted leader;
      notef t "heal asym partition around %s" leader)

(* Election storm: force several followers to campaign simultaneously.
   Forced elections skip the Pre-Vote phase, so they bypass leader
   stickiness and drive real term churn — the revoke-on-higher-term path
   of the lease must hold. *)
let inject_election_storm t followers =
  record_injection t Schedule.Election_storm;
  notef t "election storm: forcing %s to campaign"
    (String.concat ", " followers);
  List.iter t.ops.force_election followers

(* ----- the step function ----- *)

(* One scheduling tick: with probability [inject_p], draw a fault from
   the mix and apply it if its preconditions hold.  Preconditions that
   fail (no leader, too few live nodes, every node already faulted) turn
   the draw into a no-op — the step never blocks. *)
let step t =
  if t.active < t.spec.Schedule.max_concurrent && Sim.Rng.float t.rng < t.spec.Schedule.inject_p
  then begin
    match Schedule.draw t.spec t.rng with
    | None -> ()
    | Some Schedule.Crash_restart ->
      if can_crash t then
        Option.iter (inject_crash t) (pick_from t (up_nodes t))
    | Some Schedule.Leader_crash -> (
      if can_crash t then
        match t.ops.leader () with
        | Some l when t.ops.is_up l -> inject_leader_crash t l
        | _ -> ())
    | Some Schedule.Graceful_transfer -> (
      match t.ops.leader () with
      | Some leader ->
        let candidates = List.filter (fun n -> n <> leader) (up_nodes t) in
        Option.iter (fun target -> inject_transfer t ~leader ~target) (pick_from t candidates)
      | None -> ())
    | Some Schedule.Partition_regions ->
      if List.length t.regions >= 2 then begin
        let r1 = List.nth t.regions (Sim.Rng.int t.rng (List.length t.regions)) in
        let rest = List.filter (fun r -> r <> r1) t.regions in
        let r2 = List.nth rest (Sim.Rng.int t.rng (List.length rest)) in
        inject_partition t r1 r2
      end
    | Some Schedule.Isolate_node -> Option.iter (inject_isolate t) (pick_from t (up_nodes t))
    | Some
        ((Schedule.Msg_drop | Schedule.Msg_duplicate | Schedule.Msg_reorder | Schedule.Latency_spike)
         as kind) ->
      let candidates =
        List.filter (fun n -> not (Hashtbl.mem t.msg_faulted n)) (up_nodes t)
      in
      Option.iter (inject_msg_fault t kind) (pick_from t candidates)
    | Some Schedule.Torn_tail ->
      let candidates =
        List.filter
          (fun n ->
            match t.ops.store_of n with
            | Some s -> not (Binlog.Log_store.buffered s)
            | None -> false)
          (up_nodes t)
      in
      Option.iter
        (fun node ->
          match t.ops.store_of node with
          | Some store -> inject_torn_tail t node store
          | None -> ())
        (pick_from t candidates)
    | Some Schedule.Fsync_stall ->
      let candidates =
        List.filter
          (fun n ->
            match t.ops.store_of n with
            | Some s -> not (Binlog.Log_store.buffered s)
            | None -> false)
          (up_nodes t)
      in
      Option.iter
        (fun node ->
          match t.ops.store_of node with
          | Some store -> inject_fsync_stall t node store
          | None -> ())
        (pick_from t candidates)
    | Some ((Schedule.Clock_drift | Schedule.Clock_step) as kind) ->
      (* Aim at the leader (its lease arithmetic is the target); fall
         back to a random node so followers' election timers get skewed
         too. *)
      let target =
        match t.ops.leader () with
        | Some l when t.ops.is_up l && not (Hashtbl.mem t.clock_faulted l) -> Some l
        | _ ->
          pick_from t
            (List.filter (fun n -> not (Hashtbl.mem t.clock_faulted n)) (up_nodes t))
      in
      Option.iter
        (fun node ->
          match t.ops.clock_of node with
          | Some clock -> inject_clock_attack t kind node clock
          | None -> ())
        target
    | Some Schedule.Disk_corrupt ->
      if (not t.corrupting) && can_crash t then begin
        let candidates =
          List.filter
            (fun n ->
              match t.ops.store_of n with
              | Some s -> not (Binlog.Log_store.buffered s)
              | None -> false)
            (up_nodes t)
        in
        Option.iter
          (fun node ->
            match t.ops.store_of node with
            | Some store -> inject_disk_corrupt t node store
            | None -> ())
          (pick_from t candidates)
      end
    | Some Schedule.Asym_partition -> (
      match t.ops.leader () with
      | Some leader when t.ops.is_up leader && not (Hashtbl.mem t.asym_faulted leader) ->
        let followers = List.filter (fun n -> n <> leader) (up_nodes t) in
        if followers <> [] then inject_asym_partition t ~leader ~followers
      | _ -> ())
    | Some Schedule.Election_storm -> (
      match t.ops.leader () with
      | Some leader ->
        let followers = List.filter (fun n -> n <> leader) (up_nodes t) in
        let rec take acc n pool =
          if n = 0 then List.rev acc
          else
            match pick_from t pool with
            | None -> List.rev acc
            | Some x -> take (x :: acc) (n - 1) (List.filter (fun y -> y <> x) pool)
        in
        let victims = take [] t.spec.Schedule.storm_nodes followers in
        if victims <> [] then inject_election_storm t victims
      | None -> ())
  end

(* Force-heal everything (end of run): reconnect the network, flush every
   buffered store, restart every down node. *)
let heal_now t =
  t.ops.heal_all_network ();
  Hashtbl.reset t.msg_faulted;
  Hashtbl.reset t.asym_faulted;
  Hashtbl.reset t.clock_faulted;
  t.corrupting <- false;
  List.iter
    (fun node ->
      (match t.ops.store_of node with
      | Some store ->
        Binlog.Log_store.set_torn_tail store ~max_lost:0;
        Binlog.Log_store.set_buffered store false
      | None -> ());
      (match t.ops.clock_of node with
      | Some clock -> if not (Sim.Clock.pristine clock) then Sim.Clock.reset clock
      | None -> ());
      if not (t.ops.is_up node) then t.ops.restart node)
    t.ops.node_ids;
  notef t "heal all"

let metrics_snapshot t = Obs.Metrics.snapshot t.metrics

let active t = t.active

let total_injections t = t.total

let injections t =
  List.filter_map
    (fun k -> Option.map (fun n -> (k, n)) (Hashtbl.find_opt t.injected k))
    Schedule.all_kinds

(* ----- adapters ----- *)

let ops_of_cluster c =
  let net = Myraft.Cluster.network c in
  let store_of id =
    match Myraft.Cluster.node c id with
    | Some (Myraft.Cluster.Mysql_node s) -> Some (Myraft.Server.log s)
    | Some (Myraft.Cluster.Tailer_node l) -> Some (Myraft.Logtailer.log l)
    | None -> None
  in
  {
    node_ids = Myraft.Cluster.member_ids c;
    region_of = (fun id -> Sim.Topology.region_of (Sim.Network.topology net) id);
    is_up = (fun id -> not (Myraft.Cluster.is_crashed c id));
    leader = (fun () -> Myraft.Cluster.raft_leader c);
    crash = Myraft.Cluster.crash c;
    restart = Myraft.Cluster.restart c;
    isolate = Myraft.Cluster.isolate c;
    heal_node = Myraft.Cluster.heal c;
    cut_regions = (fun r1 r2 -> Sim.Network.cut_regions net r1 r2);
    heal_regions = (fun r1 r2 -> Sim.Network.heal_regions net r1 r2);
    set_node_faults = Sim.Network.set_node_faults net;
    clear_node_faults = Sim.Network.clear_node_faults net;
    heal_all_network = (fun () -> Sim.Network.heal_all net);
    store_of;
    transfer = (fun ~target -> Myraft.Cluster.transfer_leadership c ~target);
    clock_of = (fun id -> Myraft.Cluster.clock_of c id);
    set_link_faults = (fun ~src ~dst spec -> Sim.Network.set_link_faults net ~src ~dst spec);
    clear_link_faults = (fun ~src ~dst -> Sim.Network.clear_link_faults net ~src ~dst);
    force_election =
      (fun id ->
        match Myraft.Cluster.raft_of c id with
        | Some r -> Raft.Node.trigger_election r
        | None -> ());
  }

let probes_of_cluster c =
  List.map
    (fun id ->
      {
        Invariants.probe_id = id;
        probe_up = (fun () -> not (Myraft.Cluster.is_crashed c id));
        probe_raft = (fun () -> Myraft.Cluster.raft_of c id);
        probe_store =
          (fun () ->
            match Myraft.Cluster.node c id with
            | Some (Myraft.Cluster.Mysql_node s) -> Some (Myraft.Server.log s)
            | Some (Myraft.Cluster.Tailer_node l) -> Some (Myraft.Logtailer.log l)
            | None -> None);
        probe_engine =
          (fun () ->
            match Myraft.Cluster.node c id with
            | Some (Myraft.Cluster.Mysql_node s) -> Some (Myraft.Server.storage s)
            | _ -> None);
      })
    (Myraft.Cluster.member_ids c)

(* ----- the full-cluster chaos runner ----- *)

type report = {
  r_seed : int;
  r_steps : int;
  r_shards : int; (* Raft groups multiplexed on the ring (1 = classic) *)
  r_quorum : Raft.Quorum.mode;
  r_lease : bool; (* leader-lease fast path enabled? *)
  r_max_clock_drift : float; (* drift margin the Raft layer was told to absorb *)
  r_faults : string list;
  r_injections : (Schedule.fault_kind * int) list;
  r_total_injections : int;
  r_committed : int; (* highest Raft index the checker saw committed *)
  r_workload_committed : int; (* client writes acknowledged committed *)
  r_lin_reads_ok : int; (* linearizable register reads served *)
  r_lin_violations : int; (* linearizable reads that saw stale values *)
  r_stale_eventual : int; (* eventual reads that observed staleness *)
  r_violations : Invariants.violation list;
  r_trace_digest : int32;
  r_fault_dropped : int;
  r_duplicated : int;
  r_reordered : int;
  r_metrics : Obs.Metrics.snapshot; (* end-of-run cluster-wide metrics *)
}

(* The canonical chaos topology: three regions, each a MySQL server plus
   two logtailers — big enough for region partitions, FlexiRaft dynamic
   quorums and three-way engine convergence. *)
let chaos_members () =
  [
    Myraft.Cluster.mysql "my1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "my2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
    Myraft.Cluster.mysql "my3" "r3";
    Myraft.Cluster.logtailer "lt3a" "r3";
    Myraft.Cluster.logtailer "lt3b" "r3";
  ]

let digest_trace trace =
  List.fold_left
    (fun acc (e : Sim.Trace.entry) ->
      Binlog.Checksum.string
        (Printf.sprintf "%ld|%.1f|%s|%s" acc e.time e.tag e.message))
    0l (Sim.Trace.entries trace)

let quorum_name = function
  | Raft.Quorum.Majority -> "majority"
  | Raft.Quorum.Single_region_dynamic -> "flexi"
  | Raft.Quorum.Region_majorities -> "region-majorities"

let repro_command r =
  Printf.sprintf
    "dune exec bin/myraft_cli.exe -- chaos --seed %d --steps %d --faults %s --quorum %s%s%s%s"
    r.r_seed r.r_steps (String.concat "," r.r_faults) (quorum_name r.r_quorum)
    (if r.r_lease then "" else " --no-lease")
    (if r.r_max_clock_drift > 0.0 then
       Printf.sprintf " --max-clock-drift %g" r.r_max_clock_drift
     else "")
    (if r.r_shards > 1 then Printf.sprintf " --shards %d" r.r_shards else "")

(* Run a seeded chaos schedule against a full MyRaft cluster under an
   open-loop workload plus the linearizable-register read checker,
   checking invariants continuously; then heal everything, let the ring
   settle, and require exact convergence.  [lease] toggles the leader
   lease fast path so CI exercises linearizability both ways. *)
let run ?(spec = Schedule.default) ?(quorum = Raft.Quorum.Single_region_dynamic)
    ?(lease = true) ?(max_clock_drift = 0.0) ?(step_duration = 0.25 *. Sim.Engine.s)
    ?(rate_per_s = 150.0) ?(echo = false) ?(auto_purge = false) ~seed ~steps () =
  let params =
    { Myraft.Params.default with
      raft =
        { Myraft.Params.default.Myraft.Params.raft with
          Raft.Node.quorum_mode = quorum;
          use_leader_lease = lease;
          max_clock_drift
        }
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~echo_trace:echo ~replicaset:"chaos"
      ~members:(chaos_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"my1";
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"chaos-client" ~region:"r1" ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s;
  let engine = Myraft.Cluster.engine cluster in
  let trace = Myraft.Cluster.trace cluster in
  let nemesis =
    create ~engine ~trace ~rng:(Sim.Rng.of_int (seed lxor 0x6e656d65)) ~spec
      ~ops:(ops_of_cluster cluster)
  in
  let inv =
    Invariants.create
      ~snapshot:(fun () -> Myraft.Cluster.metrics_snapshot cluster)
      ~now:(fun () -> Sim.Engine.now engine)
      ~probes:(probes_of_cluster cluster)
      ()
  in
  let linreg = Linreg.start ~backend ~invariants:inv () in
  (* Aggressive log maintenance under fire: rotate then purge on the
     current primary so crashed/partitioned peers come back to find
     their tail gone — the InstallSnapshot rescue path must keep the
     ring convergent.  Purge only drops closed files, hence the flush
     (rotate) first. *)
  let maybe_purge i =
    if auto_purge && i mod 3 = 0 then
      match Myraft.Cluster.primary cluster with
      | Some srv when not (Myraft.Server.is_crashed srv) ->
        ignore (Myraft.Server.flush_binary_logs srv);
        let purged = Myraft.Server.purge_binary_logs srv in
        if purged > 0 then
          Sim.Trace.record trace ~tag:"nemesis" "auto-purge: %d binlog files dropped on %s"
            purged (Myraft.Server.id srv)
      | _ -> ()
  in
  for i = 1 to steps do
    step nemesis;
    Myraft.Cluster.run_for cluster step_duration;
    maybe_purge i;
    Invariants.check inv
  done;
  (* Heal, stop traffic, let the ring settle, then require convergence. *)
  Workload.Generator.stop gen;
  Linreg.stop linreg;
  heal_now nemesis;
  let settled =
    Myraft.Cluster.run_until cluster ~timeout:(60.0 *. Sim.Engine.s) (fun () ->
        match Myraft.Cluster.raft_leader cluster with
        | None -> false
        | Some _ ->
          let raft_of id = Myraft.Cluster.raft_of cluster id in
          let ids = Myraft.Cluster.member_ids cluster in
          let indexes = List.filter_map (fun id -> Option.map Raft.Node.commit_index (raft_of id)) ids in
          let tails =
            List.filter_map
              (fun id -> Option.map (fun r -> Binlog.Opid.index (Raft.Node.last_opid r)) (raft_of id))
              ids
          in
          (match (indexes, tails) with
          | i :: rest, tl :: more ->
            List.for_all (fun j -> j = i) rest
            (* commit agreement alone can precede full log propagation
               (e.g. a long uncommitted suffix built up while the leader
               was ack-starved): the tails must equalize too, and the
               appliers must drain before checksums can be compared *)
            && List.for_all (fun j -> j = tl) more
            && List.for_all
                 (fun srv -> Myraft.Server.applied_through srv >= i)
                 (Myraft.Cluster.servers cluster)
          | _ -> false))
  in
  Invariants.check inv;
  if settled then Invariants.check_converged inv
  else
    Sim.Trace.record trace ~tag:"nemesis" "WARNING: ring did not reconverge within timeout";
  let net = Myraft.Cluster.network cluster in
  let report =
    {
      r_seed = seed;
      r_steps = steps;
      r_shards = 1;
      r_quorum = quorum;
      r_lease = lease;
      r_max_clock_drift = max_clock_drift;
      r_faults = Schedule.fault_names spec;
      r_injections = injections nemesis;
      r_total_injections = total_injections nemesis;
      r_committed = Invariants.max_committed inv;
      r_workload_committed = (Workload.Generator.stats gen).Workload.Generator.committed;
      r_lin_reads_ok = (Linreg.stats linreg).Linreg.lin_ok;
      r_lin_violations = (Linreg.stats linreg).Linreg.lin_violations;
      r_stale_eventual = (Linreg.stats linreg).Linreg.ev_stale;
      r_violations = Invariants.violations inv;
      r_trace_digest = digest_trace trace;
      r_fault_dropped = Sim.Network.fault_dropped net;
      r_duplicated = Sim.Network.duplicated net;
      r_reordered = Sim.Network.reordered net;
      r_metrics =
        Obs.Metrics.merge
          (Myraft.Cluster.metrics_snapshot cluster)
          (metrics_snapshot nemesis);
    }
  in
  if report.r_violations <> [] then begin
    let entries = Sim.Trace.entries trace in
    let tail =
      let n = List.length entries in
      List.filteri (fun i _ -> i >= n - 40) entries
    in
    Printf.eprintf "=== INVARIANT VIOLATIONS (seed %d) ===\n" seed;
    List.iter
      (fun v -> Printf.eprintf "  %s\n" (Invariants.violation_to_string v))
      report.r_violations;
    Printf.eprintf "--- trace tail ---\n";
    List.iter
      (fun (e : Sim.Trace.entry) ->
        Printf.eprintf "  [%10.0fus] %-12s %s\n" e.time e.tag e.message)
      tail;
    Printf.eprintf "repro: %s\n%!" (repro_command report)
  end;
  report

let report_summary r =
  Printf.sprintf
    "seed %d%s · %s · lease %s · %d steps · %d injections (%s) · committed idx %d · %d client commits · lin reads %d (%d stale-lin, %d stale-eventual) · drop/dup/reorder %d/%d/%d · %d violations · digest %ld"
    r.r_seed
    (if r.r_shards > 1 then Printf.sprintf " · %d shards" r.r_shards else "")
    (quorum_name r.r_quorum)
    (if r.r_lease then "on" else "off")
    r.r_steps r.r_total_injections
    (String.concat ", "
       (List.map
          (fun (k, n) -> Printf.sprintf "%s:%d" (Schedule.kind_to_string k) n)
          r.r_injections))
    r.r_committed r.r_workload_committed r.r_lin_reads_ok r.r_lin_violations
    r.r_stale_eventual r.r_fault_dropped r.r_duplicated r.r_reordered
    (List.length r.r_violations) r.r_trace_digest

(* ----- multi-Raft (sharded) chaos ----- *)

(* Physical control surface over a multi-Raft deployment: crash/restart/
   isolate hit a node's instance of every group at once (one process),
   clocks are per physical node, while the leader-aimed and disk fault
   families target group 0 as the representative shard — its invariant
   checker is the one that must catch any damage. *)
let ops_of_multi m =
  let net = Shard.Mux.network (Shard.Multi.mux m) in
  let g0 = Shard.Multi.cluster m 0 in
  let store_of id =
    match Myraft.Cluster.node g0 id with
    | Some (Myraft.Cluster.Mysql_node s) -> Some (Myraft.Server.log s)
    | Some (Myraft.Cluster.Tailer_node l) -> Some (Myraft.Logtailer.log l)
    | None -> None
  in
  {
    node_ids = Shard.Multi.member_ids m;
    region_of = (fun id -> Option.value (Shard.Multi.region_of m id) ~default:"?");
    is_up = (fun id -> not (Shard.Multi.is_crashed m id));
    leader = (fun () -> Myraft.Cluster.raft_leader g0);
    crash = Shard.Multi.crash_node m;
    restart = Shard.Multi.restart_node m;
    isolate = Shard.Multi.isolate_node m;
    heal_node = Shard.Multi.heal_node m;
    cut_regions = (fun r1 r2 -> Sim.Network.cut_regions net r1 r2);
    heal_regions = (fun r1 r2 -> Sim.Network.heal_regions net r1 r2);
    set_node_faults = Sim.Network.set_node_faults net;
    clear_node_faults = Sim.Network.clear_node_faults net;
    heal_all_network = (fun () -> Sim.Network.heal_all net);
    store_of;
    transfer = (fun ~target -> Myraft.Cluster.transfer_leadership g0 ~target);
    clock_of = (fun id -> Shard.Multi.clock_of m id);
    set_link_faults = (fun ~src ~dst spec -> Sim.Network.set_link_faults net ~src ~dst spec);
    clear_link_faults = (fun ~src ~dst -> Sim.Network.clear_link_faults net ~src ~dst);
    force_election =
      (fun id ->
        match Myraft.Cluster.raft_of g0 id with
        | Some r -> Raft.Node.trigger_election r
        | None -> ());
  }

(* One group's full convergence: commit indexes and log tails equal on
   every member, appliers drained. *)
let group_settled c =
  match Myraft.Cluster.raft_leader c with
  | None -> false
  | Some _ ->
    let raft_of id = Myraft.Cluster.raft_of c id in
    let ids = Myraft.Cluster.member_ids c in
    let indexes = List.filter_map (fun id -> Option.map Raft.Node.commit_index (raft_of id)) ids in
    let tails =
      List.filter_map
        (fun id -> Option.map (fun r -> Binlog.Opid.index (Raft.Node.last_opid r)) (raft_of id))
        ids
    in
    (match (indexes, tails) with
    | i :: rest, tl :: more ->
      List.for_all (fun j -> j = i) rest
      && List.for_all (fun j -> j = tl) more
      && List.for_all
           (fun srv -> Myraft.Server.applied_through srv >= i)
           (Myraft.Cluster.servers c)
    | _ -> false)

(* The sharded counterpart of {!run}: the same fault schedule against a
   multi-Raft deployment (every chaos member hosts [shards] groups behind
   the coalescing mux), routed workload traffic across all shards, and
   one invariant checker per group — safety is per consensus group, and
   every group must also reconverge after the final heal. *)
let run_sharded ?(spec = Schedule.default) ?(quorum = Raft.Quorum.Single_region_dynamic)
    ?(lease = true) ?(max_clock_drift = 0.0) ?(step_duration = 0.25 *. Sim.Engine.s)
    ?(rate_per_s = 150.0) ?(auto_purge = false) ~shards ~seed ~steps () =
  let params =
    { Myraft.Params.default with
      raft =
        { Myraft.Params.default.Myraft.Params.raft with
          Raft.Node.quorum_mode = quorum;
          use_leader_lease = lease;
          max_clock_drift
        }
    }
  in
  let multi =
    Shard.Multi.create ~seed ~params ~members:(chaos_members ()) ~groups:shards ()
  in
  Shard.Multi.bootstrap multi;
  let backend = Shard.Multi.backend multi in
  let gen =
    Workload.Generator.create ~backend ~client_id:"chaos-client" ~region:"r1" ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s;
  let engine = Shard.Multi.engine multi in
  let trace = Sim.Trace.create ~echo:false engine in
  let nemesis =
    create ~engine ~trace ~rng:(Sim.Rng.of_int (seed lxor 0x6e656d65)) ~spec
      ~ops:(ops_of_multi multi)
  in
  let invs =
    List.map
      (fun c ->
        Invariants.create
          ~snapshot:(fun () -> Myraft.Cluster.metrics_snapshot c)
          ~now:(fun () -> Sim.Engine.now engine)
          ~probes:(probes_of_cluster c) ())
      (Shard.Multi.clusters multi)
  in
  let check_all () = List.iter Invariants.check invs in
  let linreg = Linreg.start ~backend ~invariants:(List.hd invs) () in
  let maybe_purge i =
    if auto_purge && i mod 3 = 0 then
      List.iter
        (fun c ->
          match Myraft.Cluster.primary c with
          | Some srv when not (Myraft.Server.is_crashed srv) ->
            ignore (Myraft.Server.flush_binary_logs srv);
            ignore (Myraft.Server.purge_binary_logs srv)
          | _ -> ())
        (Shard.Multi.clusters multi)
  in
  for i = 1 to steps do
    step nemesis;
    Shard.Multi.run_for multi step_duration;
    maybe_purge i;
    check_all ()
  done;
  Workload.Generator.stop gen;
  Linreg.stop linreg;
  heal_now nemesis;
  let settled =
    Shard.Multi.run_until multi ~timeout:(90.0 *. Sim.Engine.s) (fun () ->
        List.for_all group_settled (Shard.Multi.clusters multi))
  in
  check_all ();
  if settled then List.iter Invariants.check_converged invs
  else
    Sim.Trace.record trace ~tag:"nemesis"
      "WARNING: some shard did not reconverge within timeout";
  let net = Shard.Mux.network (Shard.Multi.mux multi) in
  let report =
    {
      r_seed = seed;
      r_steps = steps;
      r_shards = shards;
      r_quorum = quorum;
      r_lease = lease;
      r_max_clock_drift = max_clock_drift;
      r_faults = Schedule.fault_names spec;
      r_injections = injections nemesis;
      r_total_injections = total_injections nemesis;
      r_committed =
        List.fold_left (fun acc inv -> max acc (Invariants.max_committed inv)) 0 invs;
      r_workload_committed = (Workload.Generator.stats gen).Workload.Generator.committed;
      r_lin_reads_ok = (Linreg.stats linreg).Linreg.lin_ok;
      r_lin_violations = (Linreg.stats linreg).Linreg.lin_violations;
      r_stale_eventual = (Linreg.stats linreg).Linreg.ev_stale;
      r_violations = List.concat_map Invariants.violations invs;
      r_trace_digest = digest_trace trace;
      r_fault_dropped = Sim.Network.fault_dropped net;
      r_duplicated = Sim.Network.duplicated net;
      r_reordered = Sim.Network.reordered net;
      r_metrics =
        Obs.Metrics.merge (Shard.Multi.metrics_snapshot multi) (metrics_snapshot nemesis);
    }
  in
  if report.r_violations <> [] then begin
    Printf.eprintf "=== INVARIANT VIOLATIONS (seed %d, %d shards) ===\n" seed shards;
    List.iter
      (fun v -> Printf.eprintf "  %s\n" (Invariants.violation_to_string v))
      report.r_violations;
    Printf.eprintf "repro: %s\n%!" (repro_command report)
  end;
  report

(* Seed sweep for CI smoke: run [seeds] and return the reports; the exit
   gate is simply "no report has violations".  [shards > 1] runs every
   seed against the multi-Raft deployment instead. *)
let sweep ?spec ?quorum ?lease ?max_clock_drift ?step_duration ?rate_per_s ?auto_purge
    ?(shards = 1) ~seeds ~steps () =
  List.map
    (fun seed ->
      if shards > 1 then
        run_sharded ?spec ?quorum ?lease ?max_clock_drift ?step_duration ?rate_per_s
          ?auto_purge ~shards ~seed ~steps ()
      else
        run ?spec ?quorum ?lease ?max_clock_drift ?step_duration ?rate_per_s ?auto_purge
          ~seed ~steps ())
    seeds
