(** Register-semantics linearizability checker for the consistency-tiered
    read path.

    A single monotone writer (one write outstanding at a time) appends
    increasing values to one register key while reader sessions issue
    [Linearizable] and [Eventual] reads against random MySQL members.  A
    linearizable read that returns a value older than a write
    acknowledged before the read was issued is a real-time ordering
    violation, reported into {!Invariants} under the ["linearizability"]
    invariant.  Eventual reads are only observed: [ev_stale] counts how
    often they return stale values, which a healthy chaos run should
    show is non-zero — evidence the checker distinguishes the tiers. *)

type stats = {
  mutable writes_acked : int;
  mutable lin_issued : int;
  mutable lin_ok : int;
  mutable lin_rejected : int;  (** rejected or timed out: no safety claim *)
  mutable lin_violations : int;
  mutable ev_issued : int;
  mutable ev_ok : int;
  mutable ev_stale : int;
}

type t

(** Start the writer and reader loops against [backend], reporting
    violations into [invariants].  Gaps and the per-op [timeout] are in
    virtual µs. *)
val start :
  ?region:string ->
  ?write_gap:float ->
  ?read_gap:float ->
  ?timeout:float ->
  ?lin_readers:int ->
  ?ev_readers:int ->
  backend:Workload.Backend.t ->
  invariants:Invariants.t ->
  unit ->
  t

val stop : t -> unit

val stats : t -> stats

(** Largest acknowledged value (the current linearized register value). *)
val floor_value : t -> int

val summary : t -> string
