(** The nemesis: draws faults from a {!Schedule}, applies them through
    an {!ops} record (so the same engine drives a full MyRaft cluster or
    the bare Raft test harness), bounds how many are outstanding, and
    auto-heals each after a random delay.  Everything stochastic flows
    through one RNG, so a chaos run is fully determined by its seed and
    the repro command printed on a violation replays the identical
    schedule. *)

(** Control surface over the system under test.  [Sim.Network.t] is
    typed over the protocol message, so the nemesis reaches it through
    closures rather than holding it directly. *)
type ops = {
  node_ids : string list;
  region_of : string -> string;
  is_up : string -> bool;
  leader : unit -> string option;
  crash : string -> unit;
  restart : string -> unit;
  isolate : string -> unit;
  heal_node : string -> unit;
  cut_regions : string -> string -> unit;
  heal_regions : string -> string -> unit;
  set_node_faults : string -> Sim.Network.fault_spec -> unit;
  clear_node_faults : string -> unit;
  heal_all_network : unit -> unit;
  store_of : string -> Binlog.Log_store.t option;
  transfer : target:string -> (unit, string) result;
  clock_of : string -> Sim.Clock.t option;
  set_link_faults : src:string -> dst:string -> Sim.Network.fault_spec -> unit;
  clear_link_faults : src:string -> dst:string -> unit;
  force_election : string -> unit;
}

type t

val create :
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  rng:Sim.Rng.t ->
  spec:Schedule.t ->
  ops:ops ->
  t

(** One scheduling tick: with probability [inject_p], draw a fault from
    the mix and apply it if its preconditions hold (never blocks). *)
val step : t -> unit

(** Force-heal everything: reconnect the network, flush every buffered
    store, resync every skewed clock, restart every down node. *)
val heal_now : t -> unit

(** The nemesis's own chaos.* injection counters (one
    [chaos.injected.<kind>] counter per fault kind). *)
val metrics_snapshot : t -> Obs.Metrics.snapshot

(** Outstanding (un-healed) faults. *)
val active : t -> int

val total_injections : t -> int

val injections : t -> (Schedule.fault_kind * int) list

(** {2 Adapters for a full MyRaft cluster} *)

val ops_of_cluster : Myraft.Cluster.t -> ops

val probes_of_cluster : Myraft.Cluster.t -> Invariants.probe list

(** {2 The full-cluster chaos runner} *)

type report = {
  r_seed : int;
  r_steps : int;
  r_shards : int;  (** Raft groups multiplexed on the ring (1 = classic) *)
  r_quorum : Raft.Quorum.mode;
  r_lease : bool;  (** leader-lease fast path enabled? *)
  r_max_clock_drift : float;
      (** drift margin the Raft layer was told to absorb *)
  r_faults : string list;
  r_injections : (Schedule.fault_kind * int) list;
  r_total_injections : int;
  r_committed : int;  (** highest Raft index the checker saw committed *)
  r_workload_committed : int;  (** client writes acknowledged committed *)
  r_lin_reads_ok : int;  (** linearizable register reads served *)
  r_lin_violations : int;  (** linearizable reads that saw stale values *)
  r_stale_eventual : int;  (** eventual reads that observed staleness *)
  r_violations : Invariants.violation list;
  r_trace_digest : int32;  (** digest of the full trace — seed-replay equality *)
  r_fault_dropped : int;
  r_duplicated : int;
  r_reordered : int;
  r_metrics : Obs.Metrics.snapshot;  (** end-of-run cluster-wide metrics *)
}

(** The canonical chaos topology: three regions, each a MySQL server
    plus two logtailers. *)
val chaos_members : unit -> Myraft.Cluster.member_spec list

val quorum_name : Raft.Quorum.mode -> string

(** The one-line command that replays a report's run. *)
val repro_command : report -> string

(** Run a seeded chaos schedule against a full MyRaft cluster under an
    open-loop workload plus the {!Linreg} linearizable-register read
    checker, checking invariants continuously; then heal everything, let
    the ring settle, and require exact convergence.  [lease] (default
    true) toggles the leader-lease read fast path; [max_clock_drift]
    (default 0.0) is handed to the Raft layer as the clock-drift margin
    its leases must absorb — run the clock-attack families with it at or
    above the schedule's [drift_rate].  [auto_purge] (default false)
    rotates and purges the primary's binlog every few steps, so peers
    that fall behind a fault find their tail compacted away and must be
    rescued by an engine-checkpoint InstallSnapshot — the
    purged-log-replication stress mode.  On violations, dumps the trace
    tail and the repro command to stderr. *)
val run :
  ?spec:Schedule.t ->
  ?quorum:Raft.Quorum.mode ->
  ?lease:bool ->
  ?max_clock_drift:float ->
  ?step_duration:float ->
  ?rate_per_s:float ->
  ?echo:bool ->
  ?auto_purge:bool ->
  seed:int ->
  steps:int ->
  unit ->
  report

val report_summary : report -> string

(** {2 Multi-Raft (sharded) chaos} *)

(** Physical control surface over a multi-Raft deployment: crash,
    restart, isolation and clock faults hit a node's instance of every
    group at once (one process); leader-aimed and disk fault families
    target group 0 as the representative shard. *)
val ops_of_multi : Shard.Multi.t -> ops

(** The sharded counterpart of {!run}: the same fault schedule against
    [shards] Raft groups multiplexed on the chaos ring behind the
    coalescing mux, with routed workload traffic and one invariant
    checker per group — safety holds per consensus group, and every
    group must reconverge after the final heal. *)
val run_sharded :
  ?spec:Schedule.t ->
  ?quorum:Raft.Quorum.mode ->
  ?lease:bool ->
  ?max_clock_drift:float ->
  ?step_duration:float ->
  ?rate_per_s:float ->
  ?auto_purge:bool ->
  shards:int ->
  seed:int ->
  steps:int ->
  unit ->
  report

(** Seed sweep for CI smoke: the gate is "no report has violations".
    [shards > 1] runs every seed via {!run_sharded}. *)
val sweep :
  ?spec:Schedule.t ->
  ?quorum:Raft.Quorum.mode ->
  ?lease:bool ->
  ?max_clock_drift:float ->
  ?step_duration:float ->
  ?rate_per_s:float ->
  ?auto_purge:bool ->
  ?shards:int ->
  seeds:int list ->
  steps:int ->
  unit ->
  report list
