(* Fault schedule: the declarative half of the nemesis.

   A schedule is a weighted mix of fault kinds plus the knobs each kind
   reads (probabilities for the message faults, tail budget for the
   torn-tail crash, heal-delay window).  The nemesis draws from the mix
   each step, bounded by [max_concurrent] outstanding faults and a
   [min_up] floor of live nodes, and auto-heals every fault after a
   random delay in [heal_after_lo, heal_after_hi]. *)

type fault_kind =
  | Crash_restart (* crash a random node; restart at heal *)
  | Leader_crash (* crash the current Raft leader; restart at heal *)
  | Graceful_transfer (* ask the leader to transfer to a random peer *)
  | Partition_regions (* cut a random region pair; reconnect at heal *)
  | Isolate_node (* disconnect one node; reconnect at heal *)
  | Msg_drop (* probabilistic loss on all of a node's traffic *)
  | Msg_duplicate (* probabilistic duplication *)
  | Msg_reorder (* probabilistic extra delivery delay *)
  | Latency_spike (* deterministic added latency *)
  | Torn_tail (* buffer fsyncs, crash, lose the unsynced tail *)
  | Fsync_stall (* buffer fsyncs; flush at heal *)
  | Clock_drift (* skew the leader's clock rate beyond the lease margin *)
  | Clock_step (* step the leader's clock by a fixed skew *)
  | Disk_corrupt (* flip bytes in a stored log entry, then crash *)
  | Asym_partition (* drop follower->leader traffic only (ack starvation) *)
  | Election_storm (* force simultaneous elections on several followers *)

let kind_to_string = function
  | Crash_restart -> "crash"
  | Leader_crash -> "leader-crash"
  | Graceful_transfer -> "transfer"
  | Partition_regions -> "partition"
  | Isolate_node -> "isolate"
  | Msg_drop -> "drop"
  | Msg_duplicate -> "dup"
  | Msg_reorder -> "reorder"
  | Latency_spike -> "spike"
  | Torn_tail -> "torn-tail"
  | Fsync_stall -> "fsync-stall"
  | Clock_drift -> "clock-drift"
  | Clock_step -> "clock-step"
  | Disk_corrupt -> "corrupt"
  | Asym_partition -> "asym-partition"
  | Election_storm -> "storm"

let kind_of_string = function
  | "crash" -> Some Crash_restart
  | "leader-crash" -> Some Leader_crash
  | "transfer" -> Some Graceful_transfer
  | "partition" -> Some Partition_regions
  | "isolate" -> Some Isolate_node
  | "drop" -> Some Msg_drop
  | "dup" | "duplicate" -> Some Msg_duplicate
  | "reorder" -> Some Msg_reorder
  | "spike" | "latency" -> Some Latency_spike
  | "torn-tail" -> Some Torn_tail
  | "fsync-stall" -> Some Fsync_stall
  | "clock-drift" -> Some Clock_drift
  | "clock-step" -> Some Clock_step
  | "corrupt" | "disk-corrupt" -> Some Disk_corrupt
  | "asym-partition" | "asym" -> Some Asym_partition
  | "storm" | "election-storm" -> Some Election_storm
  | _ -> None

(* The original nemesis repertoire: crash/partition/message faults. *)
let classic_kinds =
  [
    Crash_restart;
    Leader_crash;
    Graceful_transfer;
    Partition_regions;
    Isolate_node;
    Msg_drop;
    Msg_duplicate;
    Msg_reorder;
    Latency_spike;
    Torn_tail;
    Fsync_stall;
  ]

(* The adversarial attack families: clock, corruption, asymmetric
   partition and election-storm attacks. *)
let attack_kinds =
  [ Clock_drift; Clock_step; Disk_corrupt; Asym_partition; Election_storm ]

let all_kinds = classic_kinds @ attack_kinds

type t = {
  mix : (fault_kind * float) list; (* weighted fault mix, drawn each step *)
  inject_p : float; (* P(attempt an injection) per step *)
  max_concurrent : int; (* outstanding (un-healed) faults at once *)
  min_up : int; (* never crash below this many live nodes *)
  heal_after_lo : float; (* auto-heal delay window, µs *)
  heal_after_hi : float;
  drop_p : float; (* per-message probabilities for the Msg_* faults *)
  dup_p : float;
  reorder_p : float;
  reorder_delay : float; (* max extra delay for reordered/dup copies, µs *)
  spike_latency : float; (* added one-way latency for Latency_spike, µs *)
  torn_tail_k : int; (* max unsynced entries lost by Torn_tail *)
  drift_rate : float; (* Clock_drift: fractional rate skew (0.05 = 5% fast/slow) *)
  step_skew : float; (* Clock_step: magnitude of the one-shot jump, µs *)
  storm_nodes : int; (* Election_storm: followers forced to campaign at once *)
}

let default =
  {
    (* The default mix stays the classic repertoire, so the long-standing
       chaos-smoke behavior (and its seeds) is unchanged; opt into the
       adversarial families with [campaign] or --faults. *)
    mix = List.map (fun k -> (k, 1.0)) classic_kinds;
    inject_p = 0.6;
    max_concurrent = 2;
    min_up = 3;
    heal_after_lo = 1.0 *. Sim.Engine.s;
    heal_after_hi = 6.0 *. Sim.Engine.s;
    drop_p = 0.05;
    dup_p = 0.05;
    reorder_p = 0.10;
    reorder_delay = 50.0 *. Sim.Engine.ms;
    spike_latency = 80.0 *. Sim.Engine.ms;
    torn_tail_k = 5;
    drift_rate = 0.05;
    step_skew = 500.0 *. Sim.Engine.ms;
    storm_nodes = 2;
  }

(* The adversarial campaign: every attack family plus the classic kinds,
   uniformly weighted — so attacks land on an already-perturbed cluster,
   and `--faults <fault_names campaign>` replays the identical mix. *)
let campaign = { default with mix = List.map (fun k -> (k, 1.0)) all_kinds }

(* Restrict the mix to the named kinds (the CLI's --faults list). *)
let with_faults t names =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match kind_of_string name with
      | Some k -> parse (k :: acc) rest
      | None -> Error (Printf.sprintf "unknown fault kind %S" name))
  in
  match parse [] names with
  | Error _ as e -> e
  | Ok [] -> Error "empty fault list"
  | Ok kinds -> Ok { t with mix = List.map (fun k -> (k, 1.0)) kinds }

let fault_names t = List.map (fun (k, _) -> kind_to_string k) t.mix

(* Weighted draw from the mix.  Entries with weight <= 0 are never
   sampled (a 0.0 weight means "present in the mix but disabled"); if no
   entry has positive weight there is nothing to draw. *)
let draw t rng =
  let mix = List.filter (fun (_, w) -> w > 0.0) t.mix in
  match mix with
  | [] -> None
  | mix ->
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
    let x = Sim.Rng.float rng *. total in
    let rec pick acc = function
      | [ (k, _) ] -> k (* float rounding: x can graze total *)
      | (k, w) :: rest -> if x < acc +. w then k else pick (acc +. w) rest
      | [] -> assert false
    in
    Some (pick 0.0 mix)

let heal_delay t rng = Sim.Rng.uniform rng ~lo:t.heal_after_lo ~hi:t.heal_after_hi
