(* Structured trace ring buffer, correlated by Raft OpId.

   Every event carries the (term, index) pair Raft stamped on the
   transaction it concerns, so one transaction can be followed through
   its pipeline stages — flush, consensus-commit, engine-commit — across
   the primary and every replica writing into the same ring.  The ring
   is fixed-capacity: recording is O(1), old events are overwritten, and
   [dropped] says how many were lost to wraparound.

   Distinct from [Sim.Trace], the free-form printf debug trace: these
   events are structured (queryable by OpId) and bounded. *)

type event = {
  ev_seq : int; (* monotonically increasing record number *)
  ev_time : float;
  ev_node : string;
  ev_stage : string; (* "flush" | "consensus-commit" | "engine-commit" | ... *)
  ev_term : int;
  ev_index : int;
  ev_detail : string;
}

type t = {
  buf : event option array;
  cap : int;
  mutable total : int; (* events ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Tracebuf.create: capacity must be positive";
  { buf = Array.make capacity None; cap = capacity; total = 0 }

let record t ~time ~node ~stage ~term ~index ?(detail = "") () =
  let ev =
    { ev_seq = t.total; ev_time = time; ev_node = node; ev_stage = stage;
      ev_term = term; ev_index = index; ev_detail = detail }
  in
  t.buf.(t.total mod t.cap) <- Some ev;
  t.total <- t.total + 1

let capacity t = t.cap

let total t = t.total

let length t = min t.total t.cap

let dropped t = max 0 (t.total - t.cap)

(* Retained events, oldest first. *)
let events t =
  let n = length t in
  let first = t.total - n in
  List.init n (fun i ->
      match t.buf.((first + i) mod t.cap) with
      | Some ev -> ev
      | None -> assert false)

let filter t pred = List.filter pred (events t)

(* All retained events for one OpId, oldest first — one transaction's
   journey across stages and nodes. *)
let for_opid t ~term ~index =
  filter t (fun ev -> ev.ev_term = term && ev.ev_index = index)

let for_stage t ~stage = filter t (fun ev -> ev.ev_stage = stage)

let event_to_string ev =
  Printf.sprintf "[%12.0fus] %-10s %-18s opid=%d.%d%s" ev.ev_time ev.ev_node ev.ev_stage
    ev.ev_term ev.ev_index
    (if ev.ev_detail = "" then "" else " " ^ ev.ev_detail)

let render ?(last = max_int) t =
  let evs = events t in
  let n = List.length evs in
  let evs = if n > last then List.filteri (fun i _ -> i >= n - last) evs else evs in
  String.concat "\n" (List.map event_to_string evs)
