(** Structured trace ring buffer correlated by Raft OpId: every event
    carries the (term, index) of the transaction it concerns, so one
    transaction can be followed flush → consensus-commit → engine-commit
    across the primary and replicas sharing the ring.  Fixed capacity;
    recording is O(1) and old events are overwritten. *)

type event = {
  ev_seq : int;  (** monotonically increasing record number *)
  ev_time : float;
  ev_node : string;
  ev_stage : string;
  ev_term : int;
  ev_index : int;
  ev_detail : string;
}

type t

val create : ?capacity:int -> unit -> t

val record :
  t ->
  time:float ->
  node:string ->
  stage:string ->
  term:int ->
  index:int ->
  ?detail:string ->
  unit ->
  unit

val capacity : t -> int

(** Events ever recorded (including overwritten ones). *)
val total : t -> int

(** Events currently retained. *)
val length : t -> int

(** Events lost to ring wraparound. *)
val dropped : t -> int

(** Retained events, oldest first. *)
val events : t -> event list

val filter : t -> (event -> bool) -> event list

(** One transaction's retained events across stages and nodes. *)
val for_opid : t -> term:int -> index:int -> event list

val for_stage : t -> stage:string -> event list

val event_to_string : event -> string

(** Newest [last] retained events as text, oldest first. *)
val render : ?last:int -> t -> string
