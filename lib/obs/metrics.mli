(** Per-node metrics registry: named counters, gauges and latency
    histograms, cheap on the hot path (resolve a metric once, then each
    record is a field update), snapshottable and mergeable across nodes
    for cluster-wide views, text tables and JSON dumps. *)

type t

(** A live counter handle; resolve once with {!counter}, then {!incr} /
    {!add} are single field updates. *)
type counter

type gauge

type histogram

val create : ?node:string -> unit -> t

(** The node label stamped on snapshots ("" for anonymous registries). *)
val node : t -> string

(** {2 Counters} *)

(** Get-or-create by name. *)
val counter : t -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** One-shot convenience for cold paths (hashtable probe per call). *)
val bump : ?by:int -> t -> string -> unit

(** {2 Gauges} *)

val gauge : t -> string -> gauge

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

val set : t -> string -> float -> unit

(** {2 Histograms} *)

(** Get-or-create; backed by {!Stats.Histogram} (exact percentiles). *)
val histogram : t -> string -> histogram

val record : histogram -> float -> unit

val observe : t -> string -> float -> unit

(** {2 GC / allocator observability} *)

(** Sample [Gc.quick_stat] into [gc.*] gauges on [t]: minor/major/
    promoted words, minor/major collection counts, compactions, heap
    words.  Process-wide readings — sample into one dedicated registry
    per process (bench harness, CLI), never into per-node registries
    that are later merged (merged gauges sum and would overcount). *)
val sample_gc : t -> unit

(** {2 Snapshots} *)

(** An immutable, name-sorted view of a registry.  Merging sums counters
    and gauges and pools histogram samples. *)
type snapshot = {
  snap_node : string;
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * Stats.Histogram.t) list;
}

val snapshot : t -> snapshot

val empty_snapshot : ?node:string -> unit -> snapshot

val merge : snapshot -> snapshot -> snapshot

val merge_all : ?node:string -> snapshot list -> snapshot

(** Counter value by name; 0 when absent. *)
val counter_of : snapshot -> string -> int

val gauge_of : snapshot -> string -> float option

val histogram_of : snapshot -> string -> Stats.Histogram.t option

(** Text table: counters, gauges, histogram summary lines. *)
val render : snapshot -> string

(** One JSON object: {v {"node":..,"counters":{..},"gauges":{..},
    "histograms":{..}} v}; histograms serialize as count/mean/p50/p95/
    p99/max. *)
val to_json : snapshot -> string
