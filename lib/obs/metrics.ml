(* Per-node metrics registry: named counters, gauges and latency
   histograms.

   The registry is built for a hot path that is already instrumented by a
   discrete-event simulator: a metric is resolved (get-or-create, one
   hashtable probe) once at wiring time and then mutated through a direct
   record reference — recording is a single field update or a
   [Stats.Histogram.record].  Components that only touch a metric on cold
   paths can use the [bump]/[set]/[observe] conveniences instead.

   Snapshots decouple observation from the live registry: a snapshot is
   an immutable, name-sorted view that can be merged across nodes (the
   cluster-wide view the CLI prints), rendered as a text table, or
   serialized to JSON for the bench/chaos [--metrics-json] dumps. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = { h_name : string; h_data : Stats.Histogram.t }

type t = {
  node : string;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create ?(node = "") () =
  {
    node;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let node t = t.node

(* ----- counters ----- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let counter_value c = c.c_value

let bump ?(by = 1) t name = add (counter t name) by

(* ----- gauges ----- *)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace t.gauges name g;
    g

let set_gauge g v = g.g_value <- v

let gauge_value g = g.g_value

let set t name v = set_gauge (gauge t name) v

(* ----- histograms ----- *)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; h_data = Stats.Histogram.create () } in
    Hashtbl.replace t.histograms name h;
    h

let record h v = Stats.Histogram.record h.h_data v

let observe t name v = record (histogram t name) v

(* ----- GC / allocator observability ----- *)

(* Sample the process-wide allocator and collector state into gc.*
   gauges.  [Gc.quick_stat] is exact for collection counts and cheap
   (no heap traversal), which is what a bench harness wants to call
   once per cell.  The numbers are per-process, not per-node: sample
   into ONE dedicated registry (the bench harness's, or the CLI's
   "process" registry), never into per-node registries that later get
   merged — merged gauges sum, and summing a process-wide reading once
   per node would overcount by the node count. *)
let sample_gc t =
  let s = Gc.quick_stat () in
  set t "gc.minor_words" s.Gc.minor_words;
  set t "gc.promoted_words" s.Gc.promoted_words;
  set t "gc.major_words" s.Gc.major_words;
  set t "gc.minor_collections" (float_of_int s.Gc.minor_collections);
  set t "gc.major_collections" (float_of_int s.Gc.major_collections);
  set t "gc.compactions" (float_of_int s.Gc.compactions);
  set t "gc.heap_words" (float_of_int s.Gc.heap_words)

(* ----- snapshots ----- *)

type snapshot = {
  snap_node : string;
  snap_counters : (string * int) list; (* name-sorted *)
  snap_gauges : (string * float) list;
  snap_histograms : (string * Stats.Histogram.t) list;
}

let sorted_bindings table value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let copy_histogram h = Stats.Histogram.merge h (Stats.Histogram.create ())

let snapshot t =
  {
    snap_node = t.node;
    snap_counters = sorted_bindings t.counters (fun c -> c.c_value);
    snap_gauges = sorted_bindings t.gauges (fun g -> g.g_value);
    snap_histograms = sorted_bindings t.histograms (fun h -> copy_histogram h.h_data);
  }

let empty_snapshot ?(node = "") () =
  { snap_node = node; snap_counters = []; snap_gauges = []; snap_histograms = [] }

let counter_of snap name =
  Option.value (List.assoc_opt name snap.snap_counters) ~default:0

let gauge_of snap name = List.assoc_opt name snap.snap_gauges

let histogram_of snap name = List.assoc_opt name snap.snap_histograms

(* Merge two name-sorted association lists, combining values present in
   both. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ra, (kb, vb) :: rb ->
    if ka < kb then (ka, va) :: merge_assoc combine ra b
    else if kb < ka then (kb, vb) :: merge_assoc combine a rb
    else (ka, combine va vb) :: merge_assoc combine ra rb

(* Counters sum, gauges sum (queue depths and cache bytes aggregate
   meaningfully; a per-node view is always available unmerged),
   histograms pool their samples. *)
let merge a b =
  let node =
    match (a.snap_node, b.snap_node) with
    | "", n | n, "" -> n
    | na, nb when na = nb -> na
    | na, nb -> na ^ "+" ^ nb
  in
  {
    snap_node = node;
    snap_counters = merge_assoc ( + ) a.snap_counters b.snap_counters;
    snap_gauges = merge_assoc ( +. ) a.snap_gauges b.snap_gauges;
    snap_histograms = merge_assoc Stats.Histogram.merge a.snap_histograms b.snap_histograms;
  }

let merge_all ?(node = "") snaps =
  let merged = List.fold_left merge (empty_snapshot ()) snaps in
  { merged with snap_node = (if node = "" then merged.snap_node else node) }

(* ----- rendering ----- *)

let render snap =
  let buf = Buffer.create 2048 in
  if snap.snap_node <> "" then
    Buffer.add_string buf (Printf.sprintf "== metrics: %s ==\n" snap.snap_node);
  if snap.snap_counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-44s %d\n" name v))
      snap.snap_counters
  end;
  if snap.snap_gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-44s %.1f\n" name v))
      snap.snap_gauges
  end;
  if snap.snap_histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          ("  " ^ Stats.Histogram.summary_line ~label:(Printf.sprintf "%-34s" name) h ^ "\n"))
      snap.snap_histograms
  end;
  Buffer.contents buf

(* ----- JSON ----- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let histogram_json h =
  if Stats.Histogram.is_empty h then {|{"count":0}|}
  else
    Printf.sprintf
      {|{"count":%d,"mean":%s,"p50":%s,"p95":%s,"p99":%s,"max":%s}|}
      (Stats.Histogram.count h)
      (json_float (Stats.Histogram.mean h))
      (json_float (Stats.Histogram.percentile h 50.0))
      (json_float (Stats.Histogram.percentile h 95.0))
      (json_float (Stats.Histogram.percentile h 99.0))
      (json_float (Stats.Histogram.max_value h))

let to_json snap =
  let fields to_s bindings =
    String.concat ","
      (List.map (fun (name, v) -> Printf.sprintf {|"%s":%s|} (json_escape name) (to_s v)) bindings)
  in
  Printf.sprintf
    {|{"node":"%s","counters":{%s},"gauges":{%s},"histograms":{%s}}|}
    (json_escape snap.snap_node)
    (fields string_of_int snap.snap_counters)
    (fields json_float snap.snap_gauges)
    (fields histogram_json snap.snap_histograms)
