(** MyShadow-style failure injection (§5.1): repeatedly crash the
    current leader or repeatedly request graceful transfers, with
    checksum-based correctness checks across the ring. *)

type kind = Crash_leader | Graceful_transfer

type t

val start : ?interval:float -> ?restart_after:float -> Myraft.Cluster.t -> kind:kind -> t

val stop : t -> unit

val injections : t -> int

(** §5.1 checksum comparison: every live engine's commit history must be
    a prefix of the most advanced live engine's history (lagging replicas
    are compared at their own commit count through the per-commit digest
    chain).  [Ok n] returns the reference commit count. *)
val consistency_check : Myraft.Cluster.t -> (int, string) result
