(* A workload backend abstracts "a replicaset a client can talk to" so
   the same generators drive both MyRaft and the semi-sync prior setup —
   the A/B methodology of §6.1, extended to mixed read/write traffic. *)

type read_outcome =
  | Read_ok of string option
  | Read_rejected of { reason : string; retry_after : float option }

type t = {
  engine : Sim.Engine.t;
  label : string;
  (* Register a client node; [on_reply] is invoked per write reply
     ([gtid] carries the committed transaction's GTID, the session token
     for read-your-writes); [on_read_reply] per read reply. *)
  register_client :
    id:string ->
    region:string ->
    on_reply:(write_id:int -> ok:bool -> gtid:Binlog.Gtid.t option -> unit) ->
    on_read_reply:(read_id:int -> outcome:read_outcome -> unit) ->
    unit;
  (* Send one write; returns false when no primary is known. *)
  send_write :
    client:string -> write_id:int -> table:string -> ops:Binlog.Event.row_op list -> bool;
  (* Send one read to [target] (or the discovered primary when [None]);
     returns false when no target is known. *)
  send_read :
    client:string ->
    read_id:int ->
    level:Read.Level.t ->
    table:string ->
    key:string ->
    target:string option ->
    bool;
  (* Members that can serve reads (MySQL servers; log-only nodes can't). *)
  read_targets : unit -> string list;
  (* Pin the one-way latency between a client and every ring member. *)
  set_client_latency : client:string -> latency:float -> unit;
  member_ids : unit -> string list;
}

let myraft (cluster : Myraft.Cluster.t) =
  let primary () =
    Myraft.Service_discovery.primary_of (Myraft.Cluster.discovery cluster)
      ~replicaset:(Myraft.Cluster.replicaset_name cluster)
  in
  {
    engine = Myraft.Cluster.engine cluster;
    label = "MyRaft";
    register_client =
      (fun ~id ~region ~on_reply ~on_read_reply ->
        Myraft.Cluster.register_client cluster ~id ~region ~handler:(fun ~src:_ msg ->
            match msg with
            | Myraft.Wire.Write_reply { write_id; outcome } -> (
              match outcome with
              | Myraft.Wire.Committed { gtid } ->
                on_reply ~write_id ~ok:true ~gtid:(Some gtid)
              | Myraft.Wire.Rejected _ -> on_reply ~write_id ~ok:false ~gtid:None)
            | Myraft.Wire.Read_reply { read_id; outcome } ->
              let outcome =
                match outcome with
                | Myraft.Wire.Read_value v -> Read_ok v
                | Myraft.Wire.Read_rejected { reason; retry_after } ->
                  Read_rejected { reason; retry_after }
              in
              on_read_reply ~read_id ~outcome
            | _ -> ()));
    send_write =
      (fun ~client ~write_id ~table ~ops ->
        match primary () with
        | None -> false
        | Some dst ->
          Myraft.Cluster.send_from_client cluster ~client ~dst
            (Myraft.Wire.Write_request { write_id; table; ops; client });
          true);
    send_read =
      (fun ~client ~read_id ~level ~table ~key ~target ->
        match (match target with Some _ -> target | None -> primary ()) with
        | None -> false
        | Some dst ->
          Myraft.Cluster.send_from_client cluster ~client ~dst
            (Myraft.Wire.Read_request
               { read_id; level; read_table = table; key; read_client = client });
          true);
    read_targets = (fun () -> Myraft.Cluster.mysql_ids cluster);
    set_client_latency =
      (fun ~client ~latency ->
        List.iter
          (fun member ->
            Myraft.Cluster.set_link_latency cluster ~a:client ~b:member ~latency)
          (Myraft.Cluster.member_ids cluster));
    member_ids = (fun () -> Myraft.Cluster.member_ids cluster);
  }

let semisync (cluster : Semisync.Cluster.t) =
  let primary () =
    Myraft.Service_discovery.primary_of (Semisync.Cluster.discovery cluster)
      ~replicaset:(Semisync.Cluster.replicaset_name cluster)
  in
  {
    engine = Semisync.Cluster.engine cluster;
    label = "Semi-Sync";
    register_client =
      (fun ~id ~region ~on_reply ~on_read_reply ->
        Semisync.Cluster.register_client cluster ~id ~region ~handler:(fun ~src:_ msg ->
            match msg with
            | Semisync.Wire.Write_reply { write_id; ok; gtid } ->
              on_reply ~write_id ~ok ~gtid
            | Semisync.Wire.Read_reply { read_id; value } ->
              let outcome =
                match value with
                | Ok v -> Read_ok v
                | Error reason -> Read_rejected { reason; retry_after = None }
              in
              on_read_reply ~read_id ~outcome
            | _ -> ()));
    send_write =
      (fun ~client ~write_id ~table ~ops ->
        match primary () with
        | None -> false
        | Some dst ->
          Semisync.Cluster.send_from_client cluster ~client ~dst
            (Semisync.Wire.Write_request { write_id; table; ops; client });
          true);
    send_read =
      (fun ~client ~read_id ~level ~table ~key ~target ->
        match (match target with Some _ -> target | None -> primary ()) with
        | None -> false
        | Some dst ->
          Semisync.Cluster.send_from_client cluster ~client ~dst
            (Semisync.Wire.Read_request { read_id; level; table; key; client });
          true);
    read_targets = (fun () -> Semisync.Cluster.mysql_ids cluster);
    set_client_latency =
      (fun ~client ~latency ->
        List.iter
          (fun member ->
            Semisync.Cluster.set_link_latency cluster ~a:client ~b:member ~latency)
          (Semisync.Cluster.member_ids cluster));
    member_ids = (fun () -> Semisync.Cluster.member_ids cluster);
  }
