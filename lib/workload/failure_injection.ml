(* MyShadow-style failure injection (§5.1): repeatedly crash the current
   leader (failover testing) or repeatedly ask it to transfer leadership
   (functional testing), while correctness checks compare engine
   checksums across the ring. *)

type kind = Crash_leader | Graceful_transfer

type t = {
  cluster : Myraft.Cluster.t;
  rng : Sim.Rng.t;
  mutable running : bool;
  mutable injections : int;
  mutable restart_after : float;
}

let injections t = t.injections

let stop t = t.running <- false

let live_mysql_voters cluster =
  List.filter
    (fun srv ->
      (not (Myraft.Server.is_crashed srv))
      &&
      match Myraft.Cluster.raft_of cluster (Myraft.Server.id srv) with
      | Some r -> Raft.Node.is_voter r
      | None -> false)
    (Myraft.Cluster.servers cluster)

let inject t kind =
  match Myraft.Cluster.primary t.cluster with
  | None -> ()
  | Some primary -> (
    t.injections <- t.injections + 1;
    let primary_id = Myraft.Server.id primary in
    match kind with
    | Crash_leader ->
      Myraft.Cluster.crash t.cluster primary_id;
      ignore
        (Sim.Engine.schedule
           (Myraft.Cluster.engine t.cluster)
           ~delay:t.restart_after
           (fun () -> Myraft.Cluster.restart t.cluster primary_id))
    | Graceful_transfer -> (
      let candidates =
        List.filter (fun s -> Myraft.Server.id s <> primary_id) (live_mysql_voters t.cluster)
      in
      match candidates with
      | [] -> ()
      | _ ->
        let target = Myraft.Server.id (Sim.Rng.pick t.rng (Array.of_list candidates)) in
        ignore (Myraft.Cluster.transfer_leadership t.cluster ~target)))

let start ?(interval = 20.0 *. Sim.Engine.s) ?(restart_after = 5.0 *. Sim.Engine.s)
    cluster ~kind =
  let t =
    {
      cluster;
      rng = Sim.Rng.split (Sim.Engine.rng (Myraft.Cluster.engine cluster));
      running = true;
      injections = 0;
      restart_after;
    }
  in
  let engine = Myraft.Cluster.engine cluster in
  let rec tick () =
    if t.running then begin
      inject t kind;
      ignore (Sim.Engine.schedule engine ~delay:interval tick)
    end
  in
  ignore (Sim.Engine.schedule engine ~delay:interval tick);
  t

(* The shadow-testing correctness check (§5.1's checksum comparison):
   every live MySQL engine's commit history must be a prefix of the most
   advanced live engine's history.  Lagging replicas are compared through
   the per-commit digest chain at their own commit count, so a replica
   that diverged *and* fell behind is still caught.  Returns the
   reference commit count, or an error describing the first divergence. *)
let consistency_check cluster =
  let live =
    List.filter (fun s -> not (Myraft.Server.is_crashed s)) (Myraft.Cluster.servers cluster)
  in
  let by_count =
    List.sort
      (fun a b ->
        compare
          (Storage.Engine.committed_count (Myraft.Server.storage b))
          (Storage.Engine.committed_count (Myraft.Server.storage a)))
      live
  in
  match by_count with
  | [] -> Ok 0
  | reference :: rest ->
    let ref_engine = Myraft.Server.storage reference in
    let ref_count = Storage.Engine.committed_count ref_engine in
    let divergent =
      List.find_map
        (fun s ->
          let engine = Myraft.Server.storage s in
          let count = Storage.Engine.committed_count engine in
          if
            not
              (Int32.equal
                 (Storage.Engine.checksum_at engine ~count)
                 (Storage.Engine.checksum_at ref_engine ~count))
          then
            Some
              (Printf.sprintf "%s diverges from %s within its first %d committed txns"
                 (Myraft.Server.id s) (Myraft.Server.id reference) count)
          else if
            count = ref_count
            && not
                 (Int32.equal
                    (Storage.Engine.checksum engine)
                    (Storage.Engine.checksum ref_engine))
          then
            (* same history but different content — an apply bug *)
            Some
              (Printf.sprintf "%s content diverges from %s at %d committed txns"
                 (Myraft.Server.id s) (Myraft.Server.id reference) ref_count)
          else None)
        rest
    in
    (match divergent with Some msg -> Error msg | None -> Ok ref_count)
