(** A workload backend abstracts "a replicaset a client can talk to" so
    the same generators drive MyRaft and the semi-sync prior setup — the
    A/B methodology of §6.1, extended to mixed read/write traffic. *)

type read_outcome =
  | Read_ok of string option
  | Read_rejected of { reason : string; retry_after : float option }

type t = {
  engine : Sim.Engine.t;
  label : string;
  register_client :
    id:string ->
    region:string ->
    on_reply:(write_id:int -> ok:bool -> gtid:Binlog.Gtid.t option -> unit) ->
    on_read_reply:(read_id:int -> outcome:read_outcome -> unit) ->
    unit;
  send_write :
    client:string -> write_id:int -> table:string -> ops:Binlog.Event.row_op list -> bool;
  send_read :
    client:string ->
    read_id:int ->
    level:Read.Level.t ->
    table:string ->
    key:string ->
    target:string option ->
    bool;
  read_targets : unit -> string list;
  set_client_latency : client:string -> latency:float -> unit;
  member_ids : unit -> string list;
}

val myraft : Myraft.Cluster.t -> t

val semisync : Semisync.Cluster.t -> t
