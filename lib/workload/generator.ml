(* Workload generators.

   [Production]: MyShadow-style open-loop traffic — Poisson arrivals from
   a client ~10 ms away from the primary, transaction sizes drawn from a
   lognormal around the fleet's ~500-byte average (§4.2.2, §6.1).

   [Sysbench]: the sysbench OLTP benchmark — a closed loop of N worker
   threads colocated with the primary (§6.1 runs the clients on the
   primary's machine to remove client-side latency).

   Both loops mix reads into the write stream at [read_ratio], issued at
   [read_level] against [read_target] (default: the primary).  A
   [Read_your_writes] level automatically carries the session's last
   acknowledged GTID. *)

type stats = {
  latencies : Stats.Histogram.t; (* commit latency as seen by the client *)
  throughput : Stats.Timeseries.t; (* commits per bucket *)
  mutable issued : int;
  mutable committed : int;
  mutable rejected : int;
  mutable timed_out : int;
  (* read-side counters *)
  read_latencies : Stats.Histogram.t; (* served reads only *)
  mutable reads_issued : int;
  mutable reads_ok : int;
  mutable reads_rejected : int;
  mutable reads_timed_out : int;
}

let make_stats ~bucket_width =
  {
    latencies = Stats.Histogram.create ();
    throughput = Stats.Timeseries.create ~bucket_width;
    issued = 0;
    committed = 0;
    rejected = 0;
    timed_out = 0;
    read_latencies = Stats.Histogram.create ();
    reads_issued = 0;
    reads_ok = 0;
    reads_rejected = 0;
    reads_timed_out = 0;
  }

(* Key-skew models for [draw_key].  [Zipf theta] uses the standard
   Zipf(theta) pmf over ranks 1..key_space via a precomputed inverse CDF
   (row-0 hottest); [Hot_spot] sends [hot_fraction] of ops to the first
   [hot_keys] rows.  Skew concentrates the writeset, which is what makes
   dependency-tracked parallel apply stall — the apply bench sweeps it. *)
type key_dist =
  | Uniform
  | Zipf of float
  | Hot_spot of { hot_fraction : float; hot_keys : int }

type t = {
  backend : Backend.t;
  client_id : string;
  rng : Sim.Rng.t;
  stats : stats;
  write_timeout : float;
  read_timeout : float;
  outstanding : (int, float * (bool -> unit) option) Hashtbl.t;
    (* write id -> (send time, continuation) *)
  outstanding_reads : (int, float * (Backend.read_outcome -> unit) option) Hashtbl.t;
  mutable next_id : int;
  mutable next_read_id : int;
  mutable running : bool;
  key_space : int;
  key_dist : key_dist;
  tables : string array; (* tables ops draw from, uniformly *)
  zipf_cdf : float array; (* cumulative pmf over ranks; empty unless Zipf *)
  value_mu : float; (* lognormal of row payload size *)
  value_sigma : float;
  read_ratio : float; (* fraction of issued ops that are reads *)
  read_level : Read.Level.t;
  read_target : string option; (* None = primary *)
  mutable last_gtid : Binlog.Gtid.t option; (* session token for RYW *)
}

let stats t = t.stats

let last_gtid t = t.last_gtid

let stop t = t.running <- false

(* Cumulative Zipf(theta) weights over ranks 1..n, normalised to 1. *)
let zipf_cdf_table ~n ~theta =
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let create ~backend ~client_id ~region ?client_latency ?(write_timeout = 5.0 *. Sim.Engine.s)
    ?(key_space = 100_000) ?(key_dist = Uniform) ?(tables = [ "sbtest" ])
    ?(value_mu = log 420.0) ?(value_sigma = 0.4)
    ?(bucket_width = Sim.Engine.s) ?(read_ratio = 0.0)
    ?(read_level = Read.Level.Eventual) ?read_target ?(read_timeout = 5.0 *. Sim.Engine.s)
    () =
  let zipf_cdf =
    match key_dist with
    | Zipf theta -> zipf_cdf_table ~n:key_space ~theta
    | Uniform | Hot_spot _ -> [||]
  in
  let t =
    {
      backend;
      client_id;
      rng = Sim.Rng.split (Sim.Engine.rng backend.Backend.engine);
      stats = make_stats ~bucket_width;
      write_timeout;
      read_timeout;
      outstanding = Hashtbl.create 256;
      outstanding_reads = Hashtbl.create 256;
      next_id = 1;
      next_read_id = 1;
      running = true;
      key_space;
      key_dist;
      tables = (if tables = [] then [| "sbtest" |] else Array.of_list tables);
      zipf_cdf;
      value_mu;
      value_sigma;
      read_ratio;
      read_level;
      read_target;
      last_gtid = None;
    }
  in
  backend.Backend.register_client ~id:client_id ~region
    ~on_reply:(fun ~write_id ~ok ~gtid ->
      match Hashtbl.find_opt t.outstanding write_id with
      | None -> ()
      | Some (sent_at, k) ->
        Hashtbl.remove t.outstanding write_id;
        let now = Sim.Engine.now backend.Backend.engine in
        if ok then begin
          t.stats.committed <- t.stats.committed + 1;
          (match gtid with Some g -> t.last_gtid <- Some g | None -> ());
          Stats.Histogram.record t.stats.latencies (now -. sent_at);
          Stats.Timeseries.record t.stats.throughput now
        end
        else t.stats.rejected <- t.stats.rejected + 1;
        match k with Some k -> k ok | None -> ())
    ~on_read_reply:(fun ~read_id ~outcome ->
      match Hashtbl.find_opt t.outstanding_reads read_id with
      | None -> ()
      | Some (sent_at, k) ->
        Hashtbl.remove t.outstanding_reads read_id;
        let now = Sim.Engine.now backend.Backend.engine in
        (match outcome with
        | Backend.Read_ok _ ->
          t.stats.reads_ok <- t.stats.reads_ok + 1;
          Stats.Histogram.record t.stats.read_latencies (now -. sent_at)
        | Backend.Read_rejected _ -> t.stats.reads_rejected <- t.stats.reads_rejected + 1);
        match k with Some k -> k outcome | None -> ());
  (* With no explicit override the client's latency to the ring comes
     from the region-pair model. *)
  (match client_latency with
  | Some latency -> backend.Backend.set_client_latency ~client:client_id ~latency
  | None -> ());
  t

(* Issue one specific write; [k] runs when it settles (commit, reject or
   timeout).  Used directly by trace replay (Shadow). *)
let issue_op ?k t ~table ~key ~value_size =
  let engine = t.backend.Backend.engine in
  let write_id = t.next_id in
  t.next_id <- t.next_id + 1;
  t.stats.issued <- t.stats.issued + 1;
  let ops = [ Binlog.Event.Insert { key; value = String.make value_size 'd' } ] in
  Hashtbl.replace t.outstanding write_id (Sim.Engine.now engine, k);
  let sent = t.backend.Backend.send_write ~client:t.client_id ~write_id ~table ~ops in
  if not sent then begin
    Hashtbl.remove t.outstanding write_id;
    t.stats.rejected <- t.stats.rejected + 1;
    match k with Some k -> k false | None -> ()
  end
  else
    ignore
      (Sim.Engine.schedule engine ~delay:t.write_timeout (fun () ->
           match Hashtbl.find_opt t.outstanding write_id with
           | None -> () (* already settled *)
           | Some (_, k) ->
             Hashtbl.remove t.outstanding write_id;
             t.stats.timed_out <- t.stats.timed_out + 1;
             (match k with Some k -> k false | None -> ())))

(* Issue one read at [level] (defaults to the generator's configured
   level, with the session's last GTID attached for RYW). *)
let issue_read ?k ?level ?target t ~table ~key =
  let engine = t.backend.Backend.engine in
  let level =
    match (match level with Some l -> l | None -> t.read_level) with
    | Read.Level.Read_your_writes None -> Read.Level.Read_your_writes t.last_gtid
    | l -> l
  in
  let target = match target with Some _ as x -> x | None -> t.read_target in
  let read_id = t.next_read_id in
  t.next_read_id <- t.next_read_id + 1;
  t.stats.reads_issued <- t.stats.reads_issued + 1;
  Hashtbl.replace t.outstanding_reads read_id (Sim.Engine.now engine, k);
  let sent =
    t.backend.Backend.send_read ~client:t.client_id ~read_id ~level ~table ~key ~target
  in
  if not sent then begin
    Hashtbl.remove t.outstanding_reads read_id;
    t.stats.reads_rejected <- t.stats.reads_rejected + 1;
    match k with
    | Some k ->
      k (Backend.Read_rejected { reason = "no read target"; retry_after = None })
    | None -> ()
  end
  else
    ignore
      (Sim.Engine.schedule engine ~delay:t.read_timeout (fun () ->
           match Hashtbl.find_opt t.outstanding_reads read_id with
           | None -> () (* already settled *)
           | Some (_, k) ->
             Hashtbl.remove t.outstanding_reads read_id;
             t.stats.reads_timed_out <- t.stats.reads_timed_out + 1;
             (match k with
             | Some k ->
               k (Backend.Read_rejected { reason = "read timed out"; retry_after = None })
             | None -> ())))

(* Smallest rank whose cumulative weight covers [u] (inverse CDF). *)
let zipf_rank cdf u =
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let draw_key_index t =
  match t.key_dist with
  | Uniform -> Sim.Rng.int t.rng t.key_space
  | Zipf _ -> zipf_rank t.zipf_cdf (Sim.Rng.uniform t.rng ~lo:0.0 ~hi:1.0)
  | Hot_spot { hot_fraction; hot_keys } ->
    let hot_keys = max 1 (min hot_keys t.key_space) in
    if Sim.Rng.uniform t.rng ~lo:0.0 ~hi:1.0 < hot_fraction then
      Sim.Rng.int t.rng hot_keys
    else Sim.Rng.int t.rng t.key_space

let draw_key t = Printf.sprintf "row-%d" (draw_key_index t)

(* Multi-table workloads (shard routing hashes (table, key)): each op
   lands on a uniformly drawn table. *)
let draw_table t =
  if Array.length t.tables = 1 then t.tables.(0)
  else t.tables.(Sim.Rng.int t.rng (Array.length t.tables))

(* Issue one write with generator-drawn key and payload size. *)
let issue ?k t =
  let value_size =
    max 16 (int_of_float (Sim.Rng.lognormal t.rng ~mu:t.value_mu ~sigma:t.value_sigma))
  in
  issue_op ?k t ~table:(draw_table t) ~key:(draw_key t) ~value_size

(* One generator-drawn op: a read with probability [read_ratio], else a
   write.  [k] settles either way. *)
let issue_mixed ?k t =
  if t.read_ratio > 0.0 && Sim.Rng.uniform t.rng ~lo:0.0 ~hi:1.0 < t.read_ratio then
    issue_read
      ?k:(match k with Some k -> Some (fun (_ : Backend.read_outcome) -> k true) | None -> None)
      t ~table:(draw_table t) ~key:(draw_key t)
  else issue ?k t

(* Open-loop Poisson arrivals at [rate_per_s]. *)
let start_open_loop t ~rate_per_s =
  let engine = t.backend.Backend.engine in
  let mean_gap = Sim.Engine.s /. rate_per_s in
  let rec tick () =
    if t.running then begin
      issue_mixed t;
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Rng.exponential t.rng ~mean:mean_gap) tick)
    end
  in
  ignore (Sim.Engine.schedule engine ~delay:(Sim.Rng.exponential t.rng ~mean:mean_gap) tick)

(* Closed loop with [threads] workers (sysbench-style). *)
let start_closed_loop t ~threads =
  let engine = t.backend.Backend.engine in
  let rec worker () =
    if t.running then
      issue_mixed t ~k:(fun _ ->
          (* tiny think time to model the client library overhead *)
          ignore (Sim.Engine.schedule engine ~delay:(10.0 *. Sim.Engine.us) worker))
  in
  for _ = 1 to threads do
    ignore
      (Sim.Engine.schedule engine ~delay:(Sim.Rng.uniform t.rng ~lo:0.0 ~hi:Sim.Engine.ms)
         worker)
  done

let summary t =
  let st = t.stats in
  Printf.sprintf "%s/%s: issued=%d committed=%d rejected=%d timeout=%d%s%s"
    t.backend.Backend.label t.client_id st.issued st.committed st.rejected st.timed_out
    (if st.reads_issued = 0 then ""
     else
       Printf.sprintf " | reads issued=%d ok=%d rejected=%d timeout=%d" st.reads_issued
         st.reads_ok st.reads_rejected st.reads_timed_out)
    (if Stats.Histogram.is_empty st.latencies then ""
     else
       Printf.sprintf " | %s"
         (Stats.Histogram.summary_line ~label:"latency(us)" st.latencies))
