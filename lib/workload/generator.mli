(** Workload generators for the §6.1 experiments: MyShadow-style
    open-loop production traffic (Poisson arrivals, lognormal payload
    sizes) and the sysbench OLTP closed loop, both optionally mixing
    reads into the write stream. *)

type stats = {
  latencies : Stats.Histogram.t;
  throughput : Stats.Timeseries.t;
  mutable issued : int;
  mutable committed : int;
  mutable rejected : int;
  mutable timed_out : int;
  read_latencies : Stats.Histogram.t;  (** served reads only *)
  mutable reads_issued : int;
  mutable reads_ok : int;
  mutable reads_rejected : int;
  mutable reads_timed_out : int;
}

(** Key-skew model for generated keys: [Zipf theta] draws ranks from a
    Zipf(theta) pmf over [0, key_space) (rank 0 hottest) via a
    precomputed inverse CDF; [Hot_spot] sends [hot_fraction] of ops to
    the first [hot_keys] rows.  Skew concentrates the writeset and so
    stresses dependency-tracked parallel apply. *)
type key_dist =
  | Uniform
  | Zipf of float
  | Hot_spot of { hot_fraction : float; hot_keys : int }

type t

(** Register a client against a backend.  [client_latency] pins a fixed
    one-way latency to every ring member; omit it to use the region
    latency model.  [read_ratio] is the fraction of generated ops that
    are reads, issued at [read_level] against [read_target] (default:
    the primary).  A [Read_your_writes None] level automatically carries
    the session's last acknowledged GTID.  [tables] (default
    [["sbtest"]]) is the table set ops draw from uniformly — multi-table
    workloads exercise shard routing, which hashes (table, key). *)
val create :
  backend:Backend.t ->
  client_id:string ->
  region:string ->
  ?client_latency:float ->
  ?write_timeout:float ->
  ?key_space:int ->
  ?key_dist:key_dist ->
  ?tables:string list ->
  ?value_mu:float ->
  ?value_sigma:float ->
  ?bucket_width:float ->
  ?read_ratio:float ->
  ?read_level:Read.Level.t ->
  ?read_target:string ->
  ?read_timeout:float ->
  unit ->
  t

val stats : t -> stats

(** The session's last acknowledged write GTID (the RYW token). *)
val last_gtid : t -> Binlog.Gtid.t option

val stop : t -> unit

(** Issue one specific write (trace replay); [k] runs when it settles
    (commit/reject/timeout). *)
val issue_op : ?k:(bool -> unit) -> t -> table:string -> key:string -> value_size:int -> unit

(** Issue one write with generator-drawn key and payload size. *)
val issue : ?k:(bool -> unit) -> t -> unit

(** Draw a key index from the configured [key_dist] (exposed for
    distribution tests). *)
val draw_key_index : t -> int

(** Issue one read; [level]/[target] override the generator defaults.
    [k] also settles on timeout (as [Read_rejected]). *)
val issue_read :
  ?k:(Backend.read_outcome -> unit) ->
  ?level:Read.Level.t ->
  ?target:string ->
  t ->
  table:string ->
  key:string ->
  unit

(** One generator-drawn op: read with probability [read_ratio], else
    write. *)
val issue_mixed : ?k:(bool -> unit) -> t -> unit

(** Poisson arrivals at [rate_per_s]. *)
val start_open_loop : t -> rate_per_s:float -> unit

(** [threads] sysbench-style workers, each re-issuing on completion. *)
val start_closed_loop : t -> threads:int -> unit

val summary : t -> string
