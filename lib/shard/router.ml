(* Keyspace partitioning for the multi-Raft deployment.

   A write or read names a (table, key) pair; the router hashes it to
   one of the M Raft groups.  The hash is FNV-1a over the table name, a
   0x00 separator, and the key bytes — fixed constants, no seed, so the
   mapping is stable across processes, runs, and group lookups (a key
   observed in shard g at write time is in shard g forever; resharding
   is out of scope).

   The router also memoizes each group's last-known leader so clients
   hit the right node first and only pay a redirect on stale cache
   (NotLeader rejections invalidate the entry). *)

let fnv_offset_basis = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv1a_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv1a_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv1a_byte !h (Char.code c)) s;
  !h

(* The raw 64-bit FNV-1a digest of (table, key); exposed for the
   stability unit test. *)
let hash ~table ~key =
  let h = fnv1a_string fnv_offset_basis table in
  let h = fnv1a_byte h 0 in
  fnv1a_string h key

type t = { groups : int; leader_cache : (int, string) Hashtbl.t }

let create ~groups () =
  if groups <= 0 then invalid_arg "Shard.Router.create: groups must be positive";
  { groups; leader_cache = Hashtbl.create 16 }

let groups t = t.groups

let group_of t ~table ~key =
  (* Fold the digest to a bucket via unsigned modulo. *)
  Int64.to_int (Int64.unsigned_rem (hash ~table ~key) (Int64.of_int t.groups))

let cached_leader t ~group = Hashtbl.find_opt t.leader_cache group

let note_leader t ~group ~node = Hashtbl.replace t.leader_cache group node

let invalidate_leader t ~group = Hashtbl.remove t.leader_cache group
