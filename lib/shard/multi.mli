(** Multi-Raft deployment: M independent consensus groups — each a full
    [Myraft.Cluster] in shared mode — multiplexed on one set of physical
    nodes, with all traffic coalesced through one {!Mux}, leaders spread
    across regions via [Control.Rebalance], and a routed
    [Workload.Backend] front door. *)

type t

(** [members] is the {e physical} topology; every group instantiates a
    server/logtailer on each member.  [window] is the mux coalescing
    window (default scales with [groups], capped well under the
    in-region one-way latency); [hb_suppress_limit] tunes leader
    heartbeat suppression (default 5 when [groups > 1], else 0 — a lone
    group has no carrier to piggyback on). *)
val create :
  ?seed:int ->
  ?params:Myraft.Params.t ->
  ?latency:Sim.Latency.t ->
  ?window:float ->
  ?hb_suppress_limit:int ->
  ?members:Myraft.Cluster.member_spec list ->
  groups:int ->
  unit ->
  t

(** {2 Accessors} *)

val groups : t -> int

(** Group [g]'s cluster.  @raise Invalid_argument on an unknown group. *)
val cluster : t -> int -> Myraft.Cluster.t

val clusters : t -> Myraft.Cluster.t list

val engine : t -> Sim.Engine.t

val mux : t -> Mux.t

val router : t -> Router.t

val discovery : t -> Myraft.Service_discovery.t

val member_ids : t -> string list

val mysql_ids : t -> string list

val region_of : t -> string -> string option

(** The physical node's oscillator, shared by its instance of every
    group (chaos clock faults hit them all alike). *)
val clock_of : t -> string -> Sim.Clock.t option

val replicaset_of_group : int -> string

(** {2 Time control} *)

val run_for : t -> float -> unit

val now : t -> float

val run_until : t -> ?step:float -> timeout:float -> (unit -> bool) -> bool

(** {2 Leader placement} *)

(** Elect every group's planned leader (spread across regions, then
    nodes) and wait until each finished promotion and published itself.
    Raises on failure. *)
val bootstrap : t -> unit

(** Re-spread leaders with graceful transfers (after faults moved them);
    transfers settle asynchronously in simulation time. *)
val rebalance_leaders : t -> Control.Rebalance.plan * (int * string) list

(** (group, current leader) for every group. *)
val leader_placement : t -> (int * string option) list

(** {2 Physical fault injection}

    Crash granularity is the process: one mysqld hosts its instance of
    every group, so these apply to all groups of a node at once. *)

val crash_node : t -> string -> unit

(** Restart all group instances and re-install their heartbeat
    suppression hooks (restart rebuilds each raft). *)
val restart_node : t -> string -> unit

val isolate_node : t -> string -> unit

val heal_node : t -> string -> unit

val is_crashed : t -> string -> bool

(** {2 Clients and observability} *)

(** The routed front door: hashes each (table, key) through the
    {!Router}, sends to the owning group's leader (cached, invalidated
    both on request rejection and eagerly when a config change drops
    the cached node from the group's membership), and demultiplexes
    replies. *)
val backend : t -> Workload.Backend.t

(** Deployment-wide merged snapshot: all groups' registries plus
    shard.mux.* / net.* rows and shard-level placement gauges. *)
val metrics_snapshot : t -> Obs.Metrics.snapshot

val describe : t -> string
