(** The multiplexing transport of the multi-Raft deployment: one
    [Sim.Network] carrying packets, where a packet batches every
    group-tagged frame that accumulated towards the same (src, dst)
    physical link within one coalescing window.  Co-located groups thus
    share network messages, and one group's heartbeat carries liveness
    for all of them (the receive path fires a per-node liveness tap
    before demultiplexing). *)

type frame = { fr_group : int; fr_payload : Myraft.Wire.t }

type packet = frame list

(** Fixed per-packet / per-frame framing overhead charged on top of the
    payload wire sizes, so coalescing shows up in net.bytes as
    amortization. *)
val packet_header_bytes : int

val frame_tag_bytes : int

val packet_size : frame list -> int

type t

(** [window] is the coalescing window: the first frame towards an idle
    (src, dst) pair departs after [window]; everything pushed until then
    rides the same packet. *)
val create :
  engine:Sim.Engine.t ->
  topology:Sim.Topology.t ->
  ?latency:Sim.Latency.t ->
  window:float ->
  unit ->
  t

(** The underlying packet network (fault injection, stats). *)
val network : t -> packet Sim.Network.t

val window : t -> float

(** Idempotently add a physical node and install its demux handler. *)
val add_node : t -> id:string -> region:string -> unit

(** Attach group [group]'s handler for frames delivered to [node]. *)
val register : t -> group:int -> string -> (src:string -> Myraft.Wire.t -> unit) -> unit

(** Install [node]'s liveness tap: fired once per delivered packet with
    the sending node, before demultiplexing — the hook that resets every
    co-located follower's failover clock off one beat. *)
val set_liveness_tap : t -> string -> (from:string -> unit) -> unit

(** Queue one frame; departs with the (src, dst) pair's next flush. *)
val send : t -> group:int -> src:string -> dst:string -> Myraft.Wire.t -> unit

(** Heartbeat-suppression carrier check: did any {e other} group push a
    frame onto (src, dst) within [within]?  The asking group's own beats
    don't count, so a 1-group deployment never suppresses. *)
val carried_recently :
  t -> group:int -> src:string -> dst:string -> within:float -> bool

(** Drain the coalescing buffers immediately (deterministic endpoints in
    tests). *)
val flush_now : t -> unit

(** {2 Counters} *)

val packets_sent : t -> int

val frames_sent : t -> int

val bytes_sent : t -> int

val taps_fired : t -> int

val frames_per_packet : t -> Stats.Histogram.t

(** shard.mux.* rows plus the packet network's net.* rows. *)
val metrics : t -> Obs.Metrics.t
