(** Keyspace partitioning: hashes (table, key) to one of M Raft groups
    with seedless FNV-1a, so the mapping is stable across processes and
    runs.  Also memoizes each group's last-known leader so clients hit
    the right node first (NotLeader rejections invalidate the entry). *)

type t

val create : groups:int -> unit -> t

val groups : t -> int

(** The raw 64-bit FNV-1a digest of (table, 0x00, key bytes); exposed
    for the stability unit test. *)
val hash : table:string -> key:string -> int64

(** [hash] folded to a bucket in [0, groups) via unsigned modulo. *)
val group_of : t -> table:string -> key:string -> int

(** {2 Leader redirect cache} *)

val cached_leader : t -> group:int -> string option

val note_leader : t -> group:int -> node:string -> unit

val invalidate_leader : t -> group:int -> unit
