(* The multiplexing transport of the multi-Raft deployment.

   One [Sim.Network] carries *packets*; a packet is a batch of group-
   tagged frames that accumulated towards the same (src, dst) physical
   link within one coalescing window (Sim.Coalesce).  Many co-located
   Raft groups thus share one network message: batched AppendEntries
   from different groups ride together, and one group's beat doubles as
   liveness for every group on the link — the receive path fires a
   per-node liveness tap before demultiplexing, and the send path
   answers "did anything recently go to dst?" so idle leaders can
   suppress their own empty AEs (Raft.Node.hb_suppress_limit).

   Framing: a packet pays a fixed header plus a small per-frame tag on
   top of the payload wire sizes, so coalescing is visible in net.bytes
   as amortization, not magic. *)

type frame = { fr_group : int; fr_payload : Myraft.Wire.t }

type packet = frame list

let packet_header_bytes = 16

let frame_tag_bytes = 8

let packet_size frames =
  List.fold_left
    (fun acc fr -> acc + frame_tag_bytes + Myraft.Wire.size fr.fr_payload)
    packet_header_bytes frames

type t = {
  engine : Sim.Engine.t;
  topology : Sim.Topology.t;
  network : packet Sim.Network.t;
  coalesce : frame Sim.Coalesce.t;
  handlers : (int * string, src:string -> Myraft.Wire.t -> unit) Hashtbl.t;
  (* (group, node) -> handler; one physical node hosts every group *)
  liveness_taps : (string, from:string -> unit) Hashtbl.t;
  (* node -> tap, fired once per delivered packet before demux *)
  last_push : (string * string, (int, float) Hashtbl.t) Hashtbl.t;
  (* (src, dst) -> group -> last engine time a frame was pushed; feeds
     the heartbeat-suppression carrier check *)
  mutable packets_sent : int;
  mutable frames_sent : int;
  mutable bytes_sent : int;
  mutable taps_fired : int;
  frames_per_packet : Stats.Histogram.t;
}

let create ~engine ~topology ?latency ~window () =
  let network =
    match latency with
    | Some latency -> Sim.Network.create engine topology ~latency ()
    | None -> Sim.Network.create engine topology ()
  in
  let t_ref = ref None in
  let flush ~src ~dst frames =
    match !t_ref with
    | None -> ()
    | Some t ->
      t.packets_sent <- t.packets_sent + 1;
      t.frames_sent <- t.frames_sent + List.length frames;
      let size = packet_size frames in
      t.bytes_sent <- t.bytes_sent + size;
      Stats.Histogram.record t.frames_per_packet (float_of_int (List.length frames));
      Sim.Network.send t.network ~src ~dst ~size frames
  in
  let t =
    {
      engine;
      topology;
      network;
      coalesce = Sim.Coalesce.create ~engine ~window ~flush ();
      handlers = Hashtbl.create 64;
      liveness_taps = Hashtbl.create 16;
      last_push = Hashtbl.create 64;
      packets_sent = 0;
      frames_sent = 0;
      bytes_sent = 0;
      taps_fired = 0;
      frames_per_packet = Stats.Histogram.create ();
    }
  in
  t_ref := Some t;
  t

let network t = t.network

let window t = Sim.Coalesce.window t.coalesce

(* Register the physical node's demux handler once; groups then attach
   per-group handlers into the table.  The liveness tap fires once per
   packet — a frame from [src]'s process proves the process is alive,
   which is all a follower's failover clock needs. *)
let ensure_demux t node =
  Sim.Network.register t.network node (fun ~src frames ->
      (match Hashtbl.find_opt t.liveness_taps node with
      | Some tap ->
        t.taps_fired <- t.taps_fired + 1;
        tap ~from:src
      | None -> ());
      List.iter
        (fun fr ->
          match Hashtbl.find_opt t.handlers (fr.fr_group, node) with
          | Some handler -> handler ~src fr.fr_payload
          | None -> ())
        frames)

let add_node t ~id ~region =
  if not (Sim.Topology.mem t.topology id) then begin
    Sim.Topology.add_node t.topology ~id ~region;
    ensure_demux t id
  end

let register t ~group node handler =
  Hashtbl.replace t.handlers (group, node) handler;
  ensure_demux t node

let set_liveness_tap t node tap = Hashtbl.replace t.liveness_taps node tap

let note_push t ~group ~src ~dst =
  let key = (src, dst) in
  let per_group =
    match Hashtbl.find_opt t.last_push key with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.last_push key tbl;
      tbl
  in
  Hashtbl.replace per_group group (Sim.Engine.now t.engine)

let send t ~group ~src ~dst msg =
  note_push t ~group ~src ~dst;
  Sim.Coalesce.push t.coalesce ~src ~dst { fr_group = group; fr_payload = msg }

(* Heartbeat-suppression carrier check: did any *other* group push a
   frame onto (src, dst) within [within]?  The asking group's own past
   beats don't count — with nothing to piggyback on, it must keep
   beating itself (so a 1-group deployment never suppresses). *)
let carried_recently t ~group ~src ~dst ~within =
  match Hashtbl.find_opt t.last_push (src, dst) with
  | None -> false
  | Some per_group ->
    let now = Sim.Engine.now t.engine in
    Hashtbl.fold
      (fun g at acc -> acc || (g <> group && now -. at <= within))
      per_group false

(* Drain the coalescing buffers immediately (deterministic endpoints in
   tests; the armed flush events then no-op). *)
let flush_now t = Sim.Coalesce.flush_all t.coalesce

(* ----- counters ----- *)

let packets_sent t = t.packets_sent

let frames_sent t = t.frames_sent

let bytes_sent t = t.bytes_sent

let taps_fired t = t.taps_fired

let frames_per_packet t = t.frames_per_packet

(* Registry-shaped view of the transport's counters: the shard.* mux
   rows plus the packet network's net.* rows (the cluster cannot dress
   them itself in shared mode — it owns no network). *)
let metrics t =
  let m = Obs.Metrics.create ~node:"mux" () in
  Obs.Metrics.bump ~by:t.packets_sent m "shard.mux.packets";
  Obs.Metrics.bump ~by:t.frames_sent m "shard.mux.frames";
  Obs.Metrics.bump ~by:t.bytes_sent m "shard.mux.bytes";
  Obs.Metrics.bump ~by:(max 0 (t.frames_sent - t.packets_sent)) m "shard.mux.coalesced";
  Obs.Metrics.bump ~by:t.taps_fired m "shard.mux.liveness_taps";
  if not (Stats.Histogram.is_empty t.frames_per_packet) then
    Obs.Metrics.set m "shard.mux.frames_per_packet_mean"
      (Stats.Histogram.mean t.frames_per_packet);
  let net = t.network in
  Obs.Metrics.bump ~by:(Sim.Network.total_messages net) m "net.messages";
  Obs.Metrics.bump ~by:(Sim.Network.total_bytes net) m "net.bytes";
  Obs.Metrics.bump ~by:(Sim.Network.cross_region_bytes net) m "net.cross_region_bytes";
  Obs.Metrics.bump ~by:(Sim.Network.dropped net) m "net.dropped";
  Obs.Metrics.bump ~by:(Sim.Network.fault_dropped net) m "net.fault_dropped";
  Obs.Metrics.bump ~by:(Sim.Network.duplicated net) m "net.duplicated";
  Obs.Metrics.bump ~by:(Sim.Network.reordered net) m "net.reordered";
  m
