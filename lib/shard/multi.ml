(* Multi-Raft deployment: M independent consensus groups multiplexed on
   one set of physical nodes.

   Every group is a full [Myraft.Cluster] (server + logtailer instances
   per member, own applier, own binlog) created in shared mode: one
   engine, one discovery, one trace ring, and a [Cluster.transport]
   closing over the shared {!Mux}, which coalesces all groups' traffic
   into one packet per (src, dst) link per window and carries liveness
   for every co-located group on any frame.  Physical faults are
   physical: crashing a node crashes its instance of every group.

   Leader placement spreads group leaders across regions and nodes
   (initially and via {!rebalance_leaders}, both through
   [Control.Rebalance]); the {!backend} fronts the whole deployment as
   one [Workload.Backend], hashing each (table, key) through the
   {!Router} and caching per-group leaders with rejection-driven
   invalidation. *)

type t = {
  engine : Sim.Engine.t;
  mux : Mux.t;
  trace : Sim.Trace.t;
  discovery : Myraft.Service_discovery.t;
  tracebuf : Obs.Tracebuf.t;
  clocks : (string, Sim.Clock.t) Hashtbl.t; (* one oscillator per physical node *)
  region_of : (string, string) Hashtbl.t;
  clusters : Myraft.Cluster.t array; (* index = group *)
  router : Router.t;
  params : Myraft.Params.t; (* per-group params incl. hb_suppress_limit *)
  hb_within : float; (* carrier recency horizon for suppression *)
}

let groups t = Array.length t.clusters

let cluster t g =
  if g < 0 || g >= Array.length t.clusters then
    invalid_arg (Printf.sprintf "Shard.Multi.cluster: no group %d" g);
  t.clusters.(g)

let clusters t = Array.to_list t.clusters

let engine t = t.engine

let mux t = t.mux

let router t = t.router

let discovery t = t.discovery

let member_ids t = Myraft.Cluster.member_ids t.clusters.(0)

let mysql_ids t = Myraft.Cluster.mysql_ids t.clusters.(0)

let region_of t id = Hashtbl.find_opt t.region_of id

let clock_of t id = Hashtbl.find_opt t.clocks id

let replicaset_of_group g = Printf.sprintf "shard%d" g

(* The suppression carrier hook closes over the raft instance, and
   Server.restart builds a fresh raft — so hooks are (re)installed per
   node, at create and again after every restart. *)
let install_carrier t ~group id =
  match Myraft.Cluster.raft_of t.clusters.(group) id with
  | Some r ->
    Raft.Node.set_transport_carrier r (fun ~dst ->
        Mux.carried_recently t.mux ~group ~src:id ~dst ~within:t.hb_within)
  | None -> ()

(* Membership-change tap: when any instance of group [group] adopts a
   new config, drop the router's cached leader for the group if the
   cached node is no longer a member — reconfiguration can evict or
   demote the cached leader without a single client request being
   rejected (the rejection-driven invalidation in [backend] never
   fires for a node that simply stops answering). *)
let install_config_tap t ~group id =
  match Myraft.Cluster.raft_of t.clusters.(group) id with
  | Some r ->
    Raft.Node.subscribe_config_change r (fun cfg ->
        match Router.cached_leader t.router ~group with
        | Some cached when not (Raft.Types.is_member cfg cached) ->
          Router.invalidate_leader t.router ~group
        | _ -> ())
  | None -> ()

let create ?(seed = 7) ?(params = Myraft.Params.default) ?(latency = Sim.Latency.default)
    ?window ?hb_suppress_limit ?(members = Myraft.Cluster.small_members ()) ~groups () =
  if groups <= 0 then invalid_arg "Shard.Multi.create: groups must be positive";
  (* Coalescing window: scale with the number of co-located groups (more
     groups, more frames worth waiting for) but stay well under the
     in-region one-way latency so it reads as batching, not delay. *)
  let window =
    match window with
    | Some w -> w
    | None -> Float.min (20.0 *. float_of_int groups *. Sim.Engine.us) (150.0 *. Sim.Engine.us)
  in
  (* Heartbeat suppression only makes sense when other groups' frames can
     carry liveness; a single group must keep beating for itself. *)
  let hb_suppress_limit =
    match hb_suppress_limit with Some l -> l | None -> if groups > 1 then 5 else 0
  in
  let params =
    { params with Myraft.Params.raft = { params.Myraft.Params.raft with hb_suppress_limit } }
  in
  let engine = Sim.Engine.create ~seed () in
  let topology = Sim.Topology.create () in
  let mux = Mux.create ~engine ~topology ~latency ~window () in
  let trace = Sim.Trace.create ~echo:false engine in
  let discovery = Myraft.Service_discovery.create engine in
  let tracebuf = Obs.Tracebuf.create () in
  let clocks = Hashtbl.create 16 in
  let region_of = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace clocks s.Myraft.Cluster.spec_id (Sim.Clock.create ~engine ());
      Hashtbl.replace region_of s.Myraft.Cluster.spec_id s.Myraft.Cluster.spec_region)
    members;
  let transport_for group =
    let net = Mux.network mux in
    {
      Myraft.Cluster.tr_send = (fun ~src ~dst msg -> Mux.send mux ~group ~src ~dst msg);
      tr_register = (fun id handler -> Mux.register mux ~group id handler);
      tr_add_node = (fun ~id ~region -> Mux.add_node mux ~id ~region);
      tr_set_down = (fun id -> Sim.Network.set_down net id);
      tr_set_up = (fun id -> Sim.Network.set_up net id);
      tr_isolate = (fun id -> Sim.Network.isolate_node net id);
      tr_heal = (fun id -> Sim.Network.heal_node net id);
      tr_set_link_latency =
        (fun ~a ~b ~latency -> Sim.Network.set_link_latency net ~a ~b ~latency);
    }
  in
  let make_group g =
    let shared =
      {
        Myraft.Cluster.sh_engine = engine;
        sh_trace = trace;
        sh_discovery = discovery;
        sh_tracebuf = tracebuf;
        sh_group = g;
        sh_clock_of = (fun id -> Hashtbl.find_opt clocks id);
        sh_transport = transport_for g;
      }
    in
    Myraft.Cluster.create ~params ~shared ~replicaset:(replicaset_of_group g) ~members ()
  in
  let clusters = Array.init groups make_group in
  let t =
    {
      engine;
      mux;
      trace;
      discovery;
      tracebuf;
      clocks;
      region_of;
      clusters;
      router = Router.create ~groups ();
      params;
      hb_within = params.Myraft.Params.raft.Raft.Node.heartbeat_interval;
    }
  in
  Array.iteri
    (fun g c ->
      List.iter
        (fun id ->
          install_carrier t ~group:g id;
          install_config_tap t ~group:g id)
        (Myraft.Cluster.member_ids c))
    t.clusters;
  (* One liveness tap per physical node: any packet from the current
     leader's process resets every co-located follower instance's
     failover clock (the raft side re-checks role and leader identity). *)
  List.iter
    (fun s ->
      let id = s.Myraft.Cluster.spec_id in
      Mux.set_liveness_tap mux id (fun ~from ->
          Array.iter
            (fun c ->
              if not (Myraft.Cluster.is_crashed c id) then
                match Myraft.Cluster.raft_of c id with
                | Some r -> Raft.Node.note_transport_liveness r ~from
                | None -> ())
            t.clusters))
    members;
  t

(* ----- time control ----- *)

let run_for t duration = Sim.Engine.run_for t.engine duration

let now t = Sim.Engine.now t.engine

let run_until t ?(step = 10.0 *. Sim.Engine.ms) ~timeout pred =
  let deadline = Sim.Engine.now t.engine +. timeout in
  let rec loop () =
    if pred () then true
    else if Sim.Engine.now t.engine >= deadline then false
    else begin
      Sim.Engine.run_for t.engine step;
      loop ()
    end
  in
  loop ()

(* ----- leader placement ----- *)

let rebalance_groups t =
  Array.to_list
    (Array.mapi
       (fun gi c ->
         {
           Control.Rebalance.g_index = gi;
           g_leader = (fun () -> Myraft.Cluster.raft_leader c);
           g_region_of = (fun n -> Hashtbl.find_opt t.region_of n);
           g_candidates =
             (fun () ->
               List.filter
                 (fun id -> not (Myraft.Cluster.is_crashed c id))
                 (Myraft.Cluster.mysql_ids c));
           g_transfer = (fun ~target -> Myraft.Cluster.transfer_leadership c ~target);
         })
       t.clusters)

let planned_placement t =
  List.filter_map
    (fun (g, target) ->
      Option.map (fun n -> (g.Control.Rebalance.g_index, n)) target)
    (Control.Rebalance.desired_placement ~groups:(rebalance_groups t))

(* Elect every group's placed leader: elections trigger concurrently
   (slightly staggered so M RequestVote bursts don't land in lockstep),
   then one wait until every group's MySQL side finished promotion and
   published itself. *)
let bootstrap t =
  let placement = planned_placement t in
  if List.length placement < groups t then
    failwith "Shard.Multi.bootstrap: some group has no leader candidate";
  List.iter
    (fun (gi, node) ->
      match Myraft.Cluster.raft_of t.clusters.(gi) node with
      | Some r ->
        ignore
          (Sim.Engine.schedule t.engine
             ~delay:(Sim.Engine.ms +. (float_of_int gi *. 200.0 *. Sim.Engine.us))
             (fun () -> Raft.Node.trigger_election r))
      | None -> failwith ("Shard.Multi.bootstrap: unknown node " ^ node))
    placement;
  let settled () =
    List.for_all
      (fun (gi, node) ->
        let c = t.clusters.(gi) in
        (match Myraft.Cluster.primary c with
        | Some s -> Myraft.Server.id s = node
        | None -> false)
        && Myraft.Service_discovery.primary_of t.discovery
             ~replicaset:(Myraft.Cluster.replicaset_name c)
           = Some node)
      placement
  in
  if not (run_until t ~timeout:(60.0 *. Sim.Engine.s) settled) then
    failwith "Shard.Multi.bootstrap: groups did not elect their placed leaders"

let rebalance_leaders t = Control.Rebalance.rebalance ~groups:(rebalance_groups t)

let leader_placement t =
  Array.to_list
    (Array.mapi (fun gi c -> (gi, Myraft.Cluster.raft_leader c)) t.clusters)

(* ----- physical fault injection ----- *)

(* Crash granularity is the process: one mysqld hosts its instance of
   every group, so faults apply to all groups of a node at once. *)
let crash_node t id = Array.iter (fun c -> Myraft.Cluster.crash c id) t.clusters

let restart_node t id =
  Array.iter (fun c -> Myraft.Cluster.restart c id) t.clusters;
  (* restart rebuilt each group's raft instance: re-hook suppression
     and the router's config-change invalidation tap *)
  Array.iteri
    (fun g _ ->
      install_carrier t ~group:g id;
      install_config_tap t ~group:g id)
    t.clusters

let isolate_node t id = Array.iter (fun c -> Myraft.Cluster.isolate c id) t.clusters

let heal_node t id = Array.iter (fun c -> Myraft.Cluster.heal c id) t.clusters

let is_crashed t id = Myraft.Cluster.is_crashed t.clusters.(0) id

(* ----- the routed client surface ----- *)

let backend t =
  let leader_for g =
    match Router.cached_leader t.router ~group:g with
    | Some n -> Some n
    | None -> (
      match
        Myraft.Service_discovery.primary_of t.discovery
          ~replicaset:(replicaset_of_group g)
      with
      | Some n ->
        Router.note_leader t.router ~group:g ~node:n;
        Some n
      | None -> None)
  in
  {
    Workload.Backend.engine = t.engine;
    label = Printf.sprintf "MyRaft[%d shards]" (groups t);
    register_client =
      (fun ~id ~region ~on_reply ~on_read_reply ->
        (* One registration per group: replies arrive on the frame tagged
           with the group that served them, so each handler closure knows
           which leader-cache entry a rejection invalidates. *)
        Array.iteri
          (fun g c ->
            Myraft.Cluster.register_client c ~id ~region ~handler:(fun ~src:_ msg ->
                match msg with
                | Myraft.Wire.Write_reply { write_id; outcome } -> (
                  match outcome with
                  | Myraft.Wire.Committed { gtid } ->
                    on_reply ~write_id ~ok:true ~gtid:(Some gtid)
                  | Myraft.Wire.Rejected _ ->
                    (* stale route: drop the cached leader, rediscover *)
                    Router.invalidate_leader t.router ~group:g;
                    on_reply ~write_id ~ok:false ~gtid:None)
                | Myraft.Wire.Read_reply { read_id; outcome } ->
                  let outcome =
                    match outcome with
                    | Myraft.Wire.Read_value v -> Workload.Backend.Read_ok v
                    | Myraft.Wire.Read_rejected { reason; retry_after } ->
                      Workload.Backend.Read_rejected { reason; retry_after }
                  in
                  on_read_reply ~read_id ~outcome
                | _ -> ()))
          t.clusters);
    send_write =
      (fun ~client ~write_id ~table ~ops ->
        let key =
          match ops with op :: _ -> Binlog.Event.row_op_key op | [] -> ""
        in
        let g = Router.group_of t.router ~table ~key in
        match leader_for g with
        | None -> false
        | Some dst ->
          Myraft.Cluster.send_from_client t.clusters.(g) ~client ~dst
            (Myraft.Wire.Write_request { write_id; table; ops; client });
          true);
    send_read =
      (fun ~client ~read_id ~level ~table ~key ~target ->
        let g = Router.group_of t.router ~table ~key in
        let dst =
          (* an explicit replica target hosts every group, so the hash
             only picks which instance on it answers *)
          match target with Some _ as x -> x | None -> leader_for g
        in
        match dst with
        | None -> false
        | Some dst ->
          Myraft.Cluster.send_from_client t.clusters.(g) ~client ~dst
            (Myraft.Wire.Read_request
               { read_id; level; read_table = table; key; read_client = client });
          true);
    read_targets = (fun () -> mysql_ids t);
    set_client_latency =
      (fun ~client ~latency ->
        List.iter
          (fun member ->
            Sim.Network.set_link_latency (Mux.network t.mux) ~a:client ~b:member ~latency)
          (member_ids t));
    member_ids = (fun () -> member_ids t);
  }

(* ----- observability ----- *)

(* Deployment-wide snapshot: every group's merged registries (sums and
   pools across groups too — pipeline.txns_committed becomes the
   all-shard total), the mux's shard.mux.* / net.* rows, and shard-level
   placement gauges. *)
let metrics_snapshot t =
  let shard = Obs.Metrics.create ~node:"shard" () in
  Obs.Metrics.set shard "shard.groups" (float_of_int (groups t));
  let leaders = List.filter_map snd (leader_placement t) in
  Obs.Metrics.set shard "shard.leaders" (float_of_int (List.length leaders));
  let distinct_regions =
    List.sort_uniq compare (List.filter_map (fun n -> region_of t n) leaders)
  in
  Obs.Metrics.set shard "shard.leader_regions"
    (float_of_int (List.length distinct_regions));
  let distinct_nodes = List.sort_uniq compare leaders in
  Obs.Metrics.set shard "shard.leader_nodes" (float_of_int (List.length distinct_nodes));
  Obs.Metrics.merge_all ~node:"multi"
    (Array.to_list (Array.map Myraft.Cluster.metrics_snapshot t.clusters)
    @ [ Obs.Metrics.snapshot (Mux.metrics t.mux); Obs.Metrics.snapshot shard ])

let describe t =
  String.concat "\n"
    (Array.to_list
       (Array.mapi
          (fun g c ->
            Printf.sprintf "-- shard%d (leader=%s)\n%s" g
              (Option.value (Myraft.Cluster.raft_leader c) ~default:"?")
              (Myraft.Cluster.describe c))
          t.clusters))
