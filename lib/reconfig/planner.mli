(** Pure membership planner: decompose an arbitrary target config into
    safe single steps for the logless reconfiguration machinery.

    Each planned step moves at most one voter and every intermediate
    config quorum-overlaps its predecessor; promotions are ordered
    before demotions so even a full voter-set swap passes through the
    union.  The planner never talks to the cluster — {!Healer} executes
    plans (catch-up waits, leadership transfers, re-planning after
    leader changes). *)

type step =
  | Add_learner of Raft.Types.member  (** join the ring as a non-voter *)
  | Promote of string  (** learner -> voter *)
  | Demote of string  (** voter -> learner *)
  | Remove of string  (** drop a learner from the ring *)

val describe_step : step -> string

(** A config a plan may legally target: at least one voter, unique
    non-empty ids, a region on every member. *)
val validate : Raft.Types.config -> (unit, string) result

(** Ordered steps from [current] to [target].  Errors: invalid target,
    or a retained id changing region/kind (that is a replacement under a
    new id, not a reconfiguration).  [Ok []] means the memberships
    already agree. *)
val plan :
  current:Raft.Types.config ->
  target:Raft.Types.config ->
  (step list, string) result

(** Apply one step to a config, checking its precondition (e.g. only
    learners may be removed). *)
val apply_step :
  Raft.Types.config -> step -> (Raft.Types.config, string) result

val is_noop : current:Raft.Types.config -> target:Raft.Types.config -> bool
