(** Self-healing fleet driver over a {!Myraft.Cluster}.

    {!apply_target} executes a {!Planner} plan to an arbitrary target
    membership: provisions fresh nodes for add-learner steps, waits for
    catch-up before promotions (snapshot-fed when the join point is
    behind the purge boundary), and transfers leadership out of members
    the plan displaces, re-planning from the live config after every
    committed step.

    {!start} runs the reconcile loop: liveness telemetry against the
    current config declares a member dead after [dead_after] down, then
    a replacement is walked through provision -> join-as-learner ->
    catch-up -> promote -> evict, one idempotent action per tick and
    never while another change is pending.  Metrics are exported under
    [healer.*]. *)

(** The newest installed config across live nodes — the fleet's
    effective membership even while a leader election is in flight.
    [None] when every node is down. *)
val newest_config : Myraft.Cluster.t -> Raft.Types.config option

(** Drive the cluster's membership to [target].  Returns the number of
    committed steps (0 = already there).  [on_step] fires after each
    committed step — chaos harnesses hang invariant checks on it. *)
val apply_target :
  ?step_timeout:float ->
  ?on_step:(Planner.step -> unit) ->
  Myraft.Cluster.t ->
  target:Raft.Types.config ->
  (int, string) result

type replacement = {
  r_corpse : string;
  r_replacement : string;
  r_duration_us : float;
}

type t

(** Start the reconcile loop on the cluster's engine.
    [replacement_region] picks where a corpse's replacement lives
    (default: same region); [on_replaced] fires after each completed
    swap (leader placement hooks). *)
val start :
  ?check_interval:float ->
  ?dead_after:float ->
  ?replacement_region:(Raft.Types.member -> string) ->
  ?on_replaced:(removed:string -> added:string -> unit) ->
  Myraft.Cluster.t ->
  t

val stop : t -> unit

(** Completed replacements, oldest first. *)
val replacements : t -> replacement list

(** The (corpse, replacement) pair currently being driven, if any. *)
val in_flight : t -> (string * string) option

val metrics_snapshot : t -> Obs.Metrics.snapshot
