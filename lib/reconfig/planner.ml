(* Reconfiguration planner: sequence an arbitrary target membership as
   safe single steps.

   Logless reconfiguration (lib/raft) accepts one change at a time and
   each accepted config must quorum-overlap its predecessor.  Any jump
   between memberships can be decomposed into steps that each move at
   most one voter:

     1. every new member joins as a learner (no voter-set change);
     2. learners that the target wants voting are promoted one by one;
     3. voters the target demotes or drops leave the voter set one by
        one (a drop demotes on its way out);
     4. non-members are removed.

   Promotions before demotions, so the voter set grows through the
   union: at every intermediate step the old and new quorums intersect
   even when the target replaces every voter.  The planner is pure —
   executing a plan (with catch-up waits between promote steps and
   leadership transfers out of demoted leaders) is {!Healer}'s job. *)

type step =
  | Add_learner of Raft.Types.member (* join the ring as a non-voter *)
  | Promote of string (* learner -> voter *)
  | Demote of string (* voter -> learner *)
  | Remove of string (* drop a learner from the ring *)

let describe_step = function
  | Add_learner m -> "add-learner " ^ Raft.Types.describe_member m
  | Promote id -> "promote " ^ id
  | Demote id -> "demote " ^ id
  | Remove id -> "remove " ^ id

(* A config a plan may legally target: at least one voter, unique
   non-empty ids, a region on every member. *)
let validate cfg =
  let ids = Raft.Types.member_ids cfg in
  if Raft.Types.voters cfg = [] then Error "target has no voters"
  else if List.exists (fun id -> id = "") ids then Error "target has an empty member id"
  else if List.length (List.sort_uniq compare ids) <> List.length ids then
    Error "target has duplicate member ids"
  else if
    List.exists (fun m -> m.Raft.Types.region = "") (Raft.Types.config_members cfg)
  then Error "target has a member without a region"
  else Ok ()

(* Apply one step to a config, checking its precondition; the executor
   folds the real cluster through exactly this function's results. *)
let apply_step cfg step =
  let members = Raft.Types.config_members cfg in
  match step with
  | Add_learner m ->
    if Raft.Types.is_member cfg m.Raft.Types.id then
      Error (m.Raft.Types.id ^ " is already a member")
    else
      Ok { Raft.Types.members = members @ [ { m with Raft.Types.voter = false } ] }
  | Promote id -> (
    match Raft.Types.find_member cfg id with
    | None -> Error (id ^ " is not a member")
    | Some m when m.Raft.Types.voter -> Error (id ^ " is already a voter")
    | Some _ ->
      Ok
        {
          Raft.Types.members =
            List.map
              (fun m ->
                if m.Raft.Types.id = id then { m with Raft.Types.voter = true } else m)
              members;
        })
  | Demote id -> (
    match Raft.Types.find_member cfg id with
    | None -> Error (id ^ " is not a member")
    | Some m when not m.Raft.Types.voter -> Error (id ^ " is already a learner")
    | Some _ ->
      Ok
        {
          Raft.Types.members =
            List.map
              (fun m ->
                if m.Raft.Types.id = id then { m with Raft.Types.voter = false } else m)
              members;
        })
  | Remove id -> (
    match Raft.Types.find_member cfg id with
    | None -> Error (id ^ " is not a member")
    | Some m when m.Raft.Types.voter ->
      Error (id ^ " is still a voter (demote first)")
    | Some _ ->
      Ok { Raft.Types.members = List.filter (fun m -> m.Raft.Types.id <> id) members })

(* Order the target's member list relative to the current one is not
   meaningful; identity and voter flag are.  Region or kind moves under
   the same id are rejected — that is a replacement (new id), not a
   reconfiguration. *)
let plan ~current ~target =
  match validate target with
  | Error e -> Error e
  | Ok () -> (
    let retained_conflicts =
      List.filter_map
        (fun tm ->
          match Raft.Types.find_member current tm.Raft.Types.id with
          | Some cm
            when cm.Raft.Types.region <> tm.Raft.Types.region
                 || cm.Raft.Types.kind <> tm.Raft.Types.kind ->
            Some tm.Raft.Types.id
          | _ -> None)
        (Raft.Types.config_members target)
    in
    match retained_conflicts with
    | id :: _ ->
      Error (id ^ " changes region or kind; replace it under a new id instead")
    | [] ->
      let adds =
        List.filter
          (fun tm -> not (Raft.Types.is_member current tm.Raft.Types.id))
          (Raft.Types.config_members target)
      in
      let promotes =
        List.filter_map
          (fun tm ->
            if not tm.Raft.Types.voter then None
            else
              match Raft.Types.find_member current tm.Raft.Types.id with
              | Some cm when cm.Raft.Types.voter -> None
              | _ -> Some tm.Raft.Types.id (* retained learner or fresh add *))
          (Raft.Types.config_members target)
      in
      let demotes_retained =
        List.filter_map
          (fun cm ->
            match Raft.Types.find_member target cm.Raft.Types.id with
            | Some tm when cm.Raft.Types.voter && not tm.Raft.Types.voter ->
              Some cm.Raft.Types.id
            | _ -> None)
          (Raft.Types.config_members current)
      in
      let dropped =
        List.filter
          (fun cm -> not (Raft.Types.is_member target cm.Raft.Types.id))
          (Raft.Types.config_members current)
      in
      let steps =
        (* a fresh node always joins as a learner; Promote upgrades it *)
        List.map (fun m -> Add_learner { m with Raft.Types.voter = false }) adds
        @ List.map (fun id -> Promote id) promotes
        @ List.map (fun id -> Demote id) demotes_retained
        @ List.concat_map
            (fun m ->
              if m.Raft.Types.voter then
                [ Demote m.Raft.Types.id; Remove m.Raft.Types.id ]
              else [ Remove m.Raft.Types.id ])
            dropped
      in
      (* Self-check: folding the steps must land exactly on the target
         (same members, same voter flags), with every intermediate
         config valid and quorum-overlapping its predecessor. *)
      let rec verify cfg = function
        | [] ->
          if
            Raft.Types.same_members cfg target
            && List.sort compare (Raft.Types.voter_ids cfg)
               = List.sort compare (Raft.Types.voter_ids target)
          then Ok steps
          else Error "internal: plan does not reach the target"
        | st :: rest -> (
          match apply_step cfg st with
          | Error e -> Error ("internal: " ^ describe_step st ^ ": " ^ e)
          | Ok next ->
            if Raft.Types.voter_delta cfg next > 1 then
              Error ("internal: " ^ describe_step st ^ " moves more than one voter")
            else if not (Raft.Types.voters_overlap cfg next) then
              Error ("internal: " ^ describe_step st ^ " breaks quorum overlap")
            else verify next rest)
      in
      verify current steps)

let is_noop ~current ~target =
  match plan ~current ~target with Ok [] -> true | _ -> false
