(* Self-healing fleet driver.

   Two entry points over one execution discipline (one safe single step
   at a time, never while a change is pending):

   - {!apply_target}: drive the cluster to an arbitrary target config by
     executing a {!Planner} plan — provisioning fresh nodes for
     add-learner steps, waiting for catch-up before promotions (the
     InstallSnapshot rescue feeds a learner that joined behind the purge
     boundary), and transferring leadership out of a member the plan
     demotes or drops.  Re-plans from the live config after every step,
     so a leader change mid-flight just restarts the remainder.

   - {!start}: the reconcile loop.  Every tick it compares liveness
     telemetry against the current config, declares a member dead once
     it has been down past [dead_after], and walks a replacement through
     provision -> join-as-learner -> catch-up -> promote -> evict, one
     idempotent action per tick.  No operator input: the loop re-derives
     its next action from the config and the world, so leader failovers
     or its own crashes in mid-replacement cannot wedge it. *)

let s = Sim.Engine.s

let ms = Sim.Engine.ms

let leader_raft cluster =
  match Myraft.Cluster.raft_leader cluster with
  | Some id -> Myraft.Cluster.raft_of cluster id
  | None -> None

(* The newest installed config across live nodes — the fleet's effective
   membership even while a leader election is in flight. *)
let newest_config cluster =
  List.fold_left
    (fun acc id ->
      if Myraft.Cluster.is_crashed cluster id then acc
      else
        match Myraft.Cluster.raft_of cluster id with
        | None -> acc
        | Some r -> (
          let cid = Raft.Node.config_id r in
          match acc with
          | Some (best, _) when not (Raft.Types.cfg_id_newer cid best) -> acc
          | _ -> Some (cid, Raft.Node.config r)))
    None
    (Myraft.Cluster.member_ids cluster)
  |> Option.map snd

let spec_of_member m =
  match m.Raft.Types.kind with
  | Raft.Types.Mysql_server ->
    Myraft.Cluster.mysql ~voter:false m.Raft.Types.id m.Raft.Types.region
  | Raft.Types.Logtailer -> Myraft.Cluster.logtailer m.Raft.Types.id m.Raft.Types.region

let provision cluster m =
  if Myraft.Cluster.node cluster m.Raft.Types.id = None then
    Myraft.Cluster.add_server cluster (spec_of_member m)

let caught_up cluster ~leader id =
  match Myraft.Cluster.raft_of cluster id with
  | Some r ->
    Binlog.Opid.index (Raft.Node.last_opid r) >= Raft.Node.commit_index leader
  | None -> false

(* ----- plan execution ----- *)

(* Wait until some leader has no pending change and [pred] holds on its
   config. *)
let wait_settled cluster ~timeout pred =
  Myraft.Cluster.run_until cluster ~timeout (fun () ->
      match leader_raft cluster with
      | Some r ->
        (not (Raft.Node.has_pending_config_change r)) && pred (Raft.Node.config r)
      | None -> false)

(* A graceful transfer target when the next step displaces the leader:
   a voter retained by the target config (preferring MySQL members,
   which can serve as primary without an immediate re-transfer). *)
let transfer_target cluster ~leader_id ~current ~target =
  let keeps m =
    m.Raft.Types.id <> leader_id
    && (not (Myraft.Cluster.is_crashed cluster m.Raft.Types.id))
    &&
    match Raft.Types.find_member target m.Raft.Types.id with
    | Some tm -> tm.Raft.Types.voter
    | None -> false
  in
  let candidates = List.filter keeps (Raft.Types.voters current) in
  let mysqls =
    List.filter (fun m -> m.Raft.Types.kind = Raft.Types.Mysql_server) candidates
  in
  match (mysqls, candidates) with
  | m :: _, _ | [], m :: _ -> Some m.Raft.Types.id
  | [], [] -> None

let apply_target ?(step_timeout = 30.0 *. s) ?(on_step = fun _ -> ()) cluster ~target =
  match Planner.validate target with
  | Error e -> Error e
  | Ok () ->
    let budget =
      2
      * (List.length (Raft.Types.member_ids target)
        + List.length (Myraft.Cluster.member_ids cluster)
        + 4)
    in
    let rec drive done_steps =
      if done_steps > budget then Error "step budget exhausted (plan not converging)"
      else if
        not (wait_settled cluster ~timeout:step_timeout (fun _ -> true))
      then Error "no settled leader"
      else
        match leader_raft cluster with
        | None -> Error "leader vanished"
        | Some leader -> (
          let current = Raft.Node.config leader in
          match Planner.plan ~current ~target with
          | Error e -> Error e
          | Ok [] -> Ok done_steps
          | Ok (step :: _) -> (
            let leader_id = Raft.Node.id leader in
            let displaces_leader =
              match step with
              | Planner.Demote id | Planner.Remove id -> id = leader_id
              | _ -> false
            in
            if displaces_leader then (
              match transfer_target cluster ~leader_id ~current ~target with
              | None -> Error "no transfer target outside the displaced leader"
              | Some tgt -> (
                match Myraft.Cluster.transfer_leadership cluster ~target:tgt with
                | Error e -> Error ("transfer to " ^ tgt ^ ": " ^ e)
                | Ok () ->
                  if
                    Myraft.Cluster.run_until cluster ~timeout:step_timeout (fun () ->
                        match Myraft.Cluster.raft_leader cluster with
                        | Some l -> l <> leader_id
                        | None -> false)
                  then drive (done_steps + 1)
                  else Error "leadership transfer did not complete"))
            else
              let issue () =
                match step with
                | Planner.Add_learner m ->
                  provision cluster m;
                  Raft.Node.add_member leader { m with Raft.Types.voter = false }
                | Planner.Promote id ->
                  if
                    not
                      (Myraft.Cluster.run_until cluster ~timeout:step_timeout
                         (fun () -> caught_up cluster ~leader id))
                  then Error (id ^ " did not catch up for promotion")
                  else Raft.Node.promote_learner leader id
                | Planner.Demote id -> Raft.Node.demote_voter leader id
                | Planner.Remove id -> Raft.Node.remove_member leader id
              in
              match issue () with
              | Error e -> Error (Planner.describe_step step ^ ": " ^ e)
              | Ok _ ->
                let reached cfg =
                  match step with
                  | Planner.Add_learner m -> Raft.Types.is_member cfg m.Raft.Types.id
                  | Planner.Promote id -> (
                    match Raft.Types.find_member cfg id with
                    | Some m -> m.Raft.Types.voter
                    | None -> false)
                  | Planner.Demote id -> (
                    match Raft.Types.find_member cfg id with
                    | Some m -> not m.Raft.Types.voter
                    | None -> false)
                  | Planner.Remove id -> not (Raft.Types.is_member cfg id)
                in
                if not (wait_settled cluster ~timeout:step_timeout reached) then
                  Error (Planner.describe_step step ^ " did not commit")
                else begin
                  on_step step;
                  drive (done_steps + 1)
                end))
    in
    drive 0

(* ----- the reconcile loop ----- *)

type job = {
  j_corpse : string;
  j_replacement : string;
  j_was_voter : bool;
  j_member : Raft.Types.member; (* the replacement's member record *)
  j_started : float;
  mutable j_provisioned : bool;
}

type replacement = {
  r_corpse : string;
  r_replacement : string;
  r_duration_us : float;
}

type t = {
  cluster : Myraft.Cluster.t;
  engine : Sim.Engine.t;
  check_interval : float;
  dead_after : float;
  replacement_region : Raft.Types.member -> string;
  on_replaced : removed:string -> added:string -> unit;
  metrics : Obs.Metrics.t;
  down_since : (string, float) Hashtbl.t;
  mutable job : job option;
  mutable gen : int;
  mutable completed : replacement list;
  mutable running : bool;
}

let fresh_replacement_id t corpse =
  let rec pick () =
    t.gen <- t.gen + 1;
    let id = Printf.sprintf "%s-r%d" corpse t.gen in
    if Myraft.Cluster.node t.cluster id = None then id else pick ()
  in
  pick ()

(* Liveness telemetry: first-seen-down timestamps over the current
   membership; revived or evicted nodes drop out of the table. *)
let note_liveness t cfg =
  let now = Sim.Engine.now t.engine in
  let member_ids = Raft.Types.member_ids cfg in
  Hashtbl.iter
    (fun id _ -> if not (List.mem id member_ids) then Hashtbl.remove t.down_since id)
    (Hashtbl.copy t.down_since);
  List.iter
    (fun id ->
      if Myraft.Cluster.is_crashed t.cluster id then begin
        if not (Hashtbl.mem t.down_since id) then Hashtbl.replace t.down_since id now
      end
      else Hashtbl.remove t.down_since id)
    member_ids

let dead_members t cfg =
  let now = Sim.Engine.now t.engine in
  List.filter
    (fun m ->
      match Hashtbl.find_opt t.down_since m.Raft.Types.id with
      | Some since -> now -. since >= t.dead_after
      | None -> false)
    (Raft.Types.config_members cfg)

let bump t name = Obs.Metrics.bump t.metrics name

(* One idempotent action against the live job; progress is re-derived
   from the config each tick, so a leader failover mid-replacement (or a
   duplicate action swallowed by the one-change-at-a-time rule) costs
   one tick, not correctness. *)
let step_job t leader job =
  let cluster = t.cluster in
  let cfg = Raft.Node.config leader in
  let corpse = job.j_corpse and repl = job.j_replacement in
  let corpse_member = Raft.Types.is_member cfg corpse in
  let repl_member = Raft.Types.find_member cfg repl in
  let corpse_up = not (Myraft.Cluster.is_crashed cluster corpse) in
  if corpse_up && (not job.j_provisioned) && repl_member = None then begin
    (* The "dead" node came back before we spent anything on it. *)
    Hashtbl.remove t.down_since corpse;
    t.job <- None;
    bump t "healer.cancelled"
  end
  else
    match repl_member with
    | None ->
      if not job.j_provisioned then begin
        provision cluster job.j_member;
        job.j_provisioned <- true;
        bump t "healer.provisioned"
      end
      else (
        match Raft.Node.add_member leader job.j_member with
        | Ok _ -> bump t "healer.joined"
        | Error _ -> () (* e.g. change in progress; retry next tick *))
    | Some m when job.j_was_voter && not m.Raft.Types.voter ->
      if caught_up cluster ~leader repl then (
        match Raft.Node.promote_learner leader repl with
        | Ok _ -> bump t "healer.promoted"
        | Error _ -> ())
    | Some _ when corpse_member ->
      if Raft.Node.id leader = corpse then
        (* The corpse revived and won an election mid-eviction: move
           leadership off it so the eviction can finish. *)
        ignore
          (match transfer_target cluster ~leader_id:corpse ~current:cfg ~target:cfg with
          | Some tgt -> Myraft.Cluster.transfer_leadership cluster ~target:tgt
          | None -> Error "no target")
      else (
        match Raft.Node.remove_member leader corpse with
        | Ok _ -> bump t "healer.evicted"
        | Error _ -> ())
    | Some _ ->
      (* Replacement in (at the corpse's voter grade), corpse out. *)
      t.job <- None;
      Hashtbl.remove t.down_since corpse;
      let r =
        {
          r_corpse = corpse;
          r_replacement = repl;
          r_duration_us = Sim.Engine.now t.engine -. job.j_started;
        }
      in
      t.completed <- t.completed @ [ r ];
      bump t "healer.completed";
      t.on_replaced ~removed:corpse ~added:repl

let start_job t cfg corpse_m =
  let corpse = corpse_m.Raft.Types.id in
  let repl = fresh_replacement_id t corpse in
  let member =
    {
      Raft.Types.id = repl;
      region = t.replacement_region corpse_m;
      voter = false; (* joins as a learner; promoted after catch-up *)
      kind = corpse_m.Raft.Types.kind;
    }
  in
  t.job <-
    Some
      {
        j_corpse = corpse;
        j_replacement = repl;
        j_was_voter = corpse_m.Raft.Types.voter;
        j_member = member;
        j_started = Sim.Engine.now t.engine;
        j_provisioned = false;
      };
  bump t "healer.detected";
  ignore cfg

let tick t =
  bump t "healer.ticks";
  match leader_raft t.cluster with
  | None -> () (* elections first; liveness clocks keep their epoch *)
  | Some leader -> (
    let cfg = Raft.Node.config leader in
    note_liveness t cfg;
    if not (Raft.Node.has_pending_config_change leader) then
      match t.job with
      | Some job -> step_job t leader job
      | None -> (
        match dead_members t cfg with
        | [] -> ()
        | corpse :: _ -> start_job t cfg corpse))

let start ?(check_interval = 500.0 *. ms) ?(dead_after = 10.0 *. s)
    ?(replacement_region = fun m -> m.Raft.Types.region)
    ?(on_replaced = fun ~removed:_ ~added:_ -> ()) cluster =
  let t =
    {
      cluster;
      engine = Myraft.Cluster.engine cluster;
      check_interval;
      dead_after;
      replacement_region;
      on_replaced;
      metrics = Obs.Metrics.create ~node:"healer" ();
      down_since = Hashtbl.create 8;
      job = None;
      gen = 0;
      completed = [];
      running = true;
    }
  in
  let rec loop () =
    if t.running then begin
      tick t;
      ignore (Sim.Engine.schedule t.engine ~delay:t.check_interval loop)
    end
  in
  ignore (Sim.Engine.schedule t.engine ~delay:t.check_interval loop);
  t

let stop t = t.running <- false

let replacements t = t.completed

let in_flight t =
  Option.map (fun j -> (j.j_corpse, j.j_replacement)) t.job

let metrics_snapshot t = Obs.Metrics.snapshot t.metrics
