(** Everything that travels on a MyRaft replicaset's network: Raft RPCs
    between ring members, client write traffic to the primary, and
    client read traffic to any role. *)

type write_request = {
  write_id : int;
  table : string;
  ops : Binlog.Event.row_op list;
  client : Sim.Topology.node_id;
}

type write_outcome =
  | Committed of { gtid : Binlog.Gtid.t }
      (** the acknowledged transaction's GTID: the session token a
          client carries into [Read_your_writes] reads *)
  | Rejected of string  (** not primary / read-only / lock conflict *)

type read_request = {
  read_id : int;
  level : Read.Level.t;
  read_table : string;
  key : string;
  read_client : Sim.Topology.node_id;
}

type read_outcome =
  | Read_value of string option
  | Read_rejected of { reason : string; retry_after : float option }

type t =
  | Raft_msg of Raft.Message.t
  | Write_request of write_request
  | Write_reply of { write_id : int; outcome : write_outcome }
  | Read_request of read_request
  | Read_reply of { read_id : int; outcome : read_outcome }

(** Wire size in bytes for bandwidth accounting. *)
val size : t -> int
