(** A MyRaft MySQL server: storage engine + replication log + commit
    pipeline + applier, integrated with Raft through the mysql_raft_repl
    plugin surface (§3).

    Raft orchestrates the MySQL role through callbacks (promotion and
    demotion step sequences of §3.3) and reads/writes the binlog through
    the log abstraction.  Durable across crashes: engine contents, log
    files, Raft term/vote; everything else is rebuilt by {!restart}. *)

type role = Primary | Replica

val role_to_string : role -> string

type t

(** [metrics] receives all of this server's metric families — raft, pipeline,
    binlog, applier and server prefixes; a per-node registry is created
    when omitted.  [tracebuf] receives OpId-correlated
    flush / consensus-commit / engine-commit trace events. *)
val create :
  ?metrics:Obs.Metrics.t ->
  ?tracebuf:Obs.Tracebuf.t ->
  ?clock:Sim.Clock.t ->
  ?group:int ->
  engine:Sim.Engine.t ->
  id:string ->
  region:string ->
  replicaset:string ->
  send:(dst:string -> Wire.t -> unit) ->
  discovery:Service_discovery.t ->
  params:Params.t ->
  initial_config:Raft.Types.config ->
  trace:Sim.Trace.t ->
  unit ->
  t

val id : t -> string

(** This server's local clock — Raft timers, lease arithmetic and read
    staleness all run on it (fault-injection point for chaos; a pristine
    one is created when [create] is not handed one). *)
val clock : t -> Sim.Clock.t

val raft : t -> Raft.Node.t

val applier : t -> Applier.t

val role : t -> role

val writes_enabled : t -> bool

val is_crashed : t -> bool

val storage : t -> Storage.Engine.t

val log : t -> Binlog.Log_store.t

val pipeline : t -> Pipeline.t

(** Executed GTIDs: the binlog set on a primary, the engine set on a
    replica. *)
val gtid_executed : t -> Binlog.Gtid_set.t

(** {2 Client write path (§3.4)} *)

(** Prepare in the engine, assign a GTID, run the transaction through
    the three-stage pipeline; [reply] fires with the outcome. *)
val submit_write :
  t -> table:string -> ops:Binlog.Event.row_op list -> reply:(Wire.write_outcome -> unit) -> unit

(** {2 Read path} *)

(** Local engine read, served by any MySQL role (Table 1); replicas may
    be stale. *)
val read : t -> table:string -> key:string -> (string option, string) result

(** Serve a read at the requested consistency level through the
    {!Read.Service} tiering logic (ReadIndex / lease fast path for
    [Linearizable], GTID wait for [Read_your_writes], local age check
    for [Bounded_staleness], raw local read for [Eventual]).  The
    continuation fires exactly once — unless the server is crashed, in
    which case it never fires (the client times out). *)
val serve_read :
  t ->
  level:Read.Level.t ->
  table:string ->
  key:string ->
  (Read.Service.outcome -> unit) ->
  unit

(** WAIT_FOR_EXECUTED_GTID_SET: wait until [gtid] is engine-committed
    locally (read-your-writes on a replica); [k] receives whether it
    arrived before [timeout].  Event-driven: fires on the engine's
    commit notification, not on a poll tick. *)
val wait_for_executed_gtid : t -> Binlog.Gtid.t -> timeout:float -> k:(bool -> unit) -> unit

(** Highest log index the local engine has applied through (transaction
    entries engine-committed; noop/config entries pass freely).  Works
    on any role, including the primary. *)
val applied_through : t -> int

(** {2 Log maintenance (§A.1)} *)

(** FLUSH BINARY LOGS: replicate a rotate event through Raft, switch
    files once consensus committed.  Primary only. *)
val flush_binary_logs : t -> (unit, string) result

(** PURGE BINARY LOGS, gated on Raft's region watermarks, the
    cluster-wide peer floor (learners, in-flight windows, snapshot
    installs) and the local applied-through watermark; returns how many
    files were purged. *)
val purge_binary_logs : t -> int

(** Engine-checkpoint snapshot at the applied-through watermark (the
    source a wedged peer's InstallSnapshot rescue ships); [None] when no
    consistent boundary exists yet.  Also wired into the Raft node's
    [take_snapshot] callback. *)
val take_snapshot : t -> Raft.Snapshot.t option

(** {2 Lifecycle} *)

(** Process/host crash: volatile state is lost; the engine rolls back
    prepared transactions at {!restart} (§A.2). *)
val crash : t -> unit

val restart : t -> unit

(** Re-point the applier at the engine's recovery cursor after engine
    and log were seeded behind its back (backup restore into a fresh
    member).  No-op on a primary. *)
val reposition_applier : t -> unit

(** Network delivery entry point. *)
val handle_message : t -> src:string -> Wire.t -> unit

(** {2 Counters} *)

val promotions : t -> int

val demotions : t -> int

val writes_committed : t -> int

val writes_rejected : t -> int

(** The registry all of this server's components record into. *)
val metrics : t -> Obs.Metrics.t

(** GTIDs removed from metadata by log truncations (§3.3 step 4). *)
val truncated_gtids : t -> Binlog.Gtid.t list

val describe : t -> string
