(** Replicaset assembly: a full MyRaft ring (MySQL servers + logtailers)
    on a simulated multi-region network, with service discovery and the
    control operations the experiments use. *)

type member_spec = {
  spec_id : string;
  spec_region : string;
  spec_kind : Raft.Types.member_kind;
  spec_voter : bool;
}

(** A primary-capable MySQL member ([voter:false] makes a learner). *)
val mysql : ?voter:bool -> string -> string -> member_spec

(** A logtailer (witness: voter without a database). *)
val logtailer : string -> string -> member_spec

type node = Mysql_node of Server.t | Tailer_node of Logtailer.t

(** The wire/fault surface a group cluster needs from whoever owns the
    physical network.  Standalone clusters build one over their own
    [Sim.Network]; in multi-Raft mode [Shard.Multi] hands every group a
    transport over the shared mux.  [tr_add_node] must be idempotent —
    many groups register the same physical nodes. *)
type transport = {
  tr_send : src:string -> dst:string -> Wire.t -> unit;
  tr_register : string -> (src:string -> Wire.t -> unit) -> unit;
  tr_add_node : id:string -> region:string -> unit;
  tr_set_down : string -> unit;
  tr_set_up : string -> unit;
  tr_isolate : string -> unit;
  tr_heal : string -> unit;
  tr_set_link_latency : a:string -> b:string -> latency:float -> unit;
}

(** Shared infrastructure for one group of a multi-Raft deployment:
    engine, trace, discovery and trace ring are owned by the embedder
    and common to all groups; [sh_clock_of] returns the physical node's
    clock so every group instance on a node shares its oscillator. *)
type shared = {
  sh_engine : Sim.Engine.t;
  sh_trace : Sim.Trace.t;
  sh_discovery : Service_discovery.t;
  sh_tracebuf : Obs.Tracebuf.t;
  sh_group : int;
  sh_clock_of : string -> Sim.Clock.t option;
  sh_transport : transport;
}

type t

(** With [?shared] the cluster becomes one group of a multi-Raft
    deployment: it owns no engine or network ([seed], [latency] and
    [echo_trace] are ignored) and all wire/fault operations route
    through the shared transport. *)
val create :
  ?seed:int ->
  ?params:Params.t ->
  ?latency:Sim.Latency.t ->
  ?echo_trace:bool ->
  ?shared:shared ->
  replicaset:string ->
  members:member_spec list ->
  unit ->
  t

(** {2 Accessors} *)

val engine : t -> Sim.Engine.t

(** The cluster's own network.  @raise Invalid_argument in shared
    (multi-Raft) mode, where the mux owns the one network. *)
val network : t -> Wire.t Sim.Network.t

val transport : t -> transport

(** Multi-Raft group tag (0 for a standalone cluster). *)
val group : t -> int

val trace : t -> Sim.Trace.t

(** The OpId-correlated trace ring shared by every node in the cluster:
    one transaction's flush / consensus-commit / engine-commit events
    across primary and replicas. *)
val tracebuf : t -> Obs.Tracebuf.t

(** The live metrics registry of one node (MySQL server or logtailer). *)
val metrics_of : t -> string -> Obs.Metrics.t option

(** Cluster-wide view: every node's registry merged (counters sum,
    histograms pool) plus network-derived net.* counters. *)
val metrics_snapshot : t -> Obs.Metrics.snapshot

val discovery : t -> Service_discovery.t

val replicaset_name : t -> string

val initial_config : t -> Raft.Types.config

val params : t -> Params.t

val member_ids : t -> string list

val node : t -> string -> node option

val server : t -> string -> Server.t option

val tailer : t -> string -> Logtailer.t option

val servers : t -> Server.t list

(** MySQL members only — the nodes with a storage engine, i.e. valid
    client read targets (logtailers have no tables). *)
val mysql_ids : t -> string list

val tailers : t -> Logtailer.t list

val raft_of : t -> string -> Raft.Node.t option

(** The node's local clock (chaos fault-injection point); owned by the
    server/logtailer object, so it survives crash/restart cycles. *)
val clock_of : t -> string -> Sim.Clock.t option

val is_crashed : t -> string -> bool

(** The node currently acting as Raft leader, if any. *)
val raft_leader : t -> string option

(** The MySQL server currently serving as writable primary, if any. *)
val primary : t -> Server.t option

(** {2 Runtime membership} *)

(** Create and wire a brand-new node ("allocate and prepare a new
    member", §2.2); the caller then issues AddMember on the leader. *)
val add_server : t -> member_spec -> unit

(** {2 Clients} *)

val register_client :
  t -> id:string -> region:string -> handler:(src:string -> Wire.t -> unit) -> unit

val send_from_client : t -> client:string -> dst:string -> Wire.t -> unit

val set_link_latency : t -> a:string -> b:string -> latency:float -> unit

(** {2 Time control} *)

val run_for : t -> float -> unit

val now : t -> float

(** Advance time in [step] chunks until [pred] holds or [timeout]
    elapses; returns whether it held. *)
val run_until : t -> ?step:float -> timeout:float -> (unit -> bool) -> bool

(** Deterministically elect [leader_id] and wait for its MySQL side to
    finish promotion.  Raises on failure. *)
val bootstrap : t -> leader_id:string -> unit

(** {2 Fault injection / control} *)

val crash : t -> string -> unit

val restart : t -> string -> unit

val isolate : t -> string -> unit

val heal : t -> string -> unit

(** Ask the current leader for a graceful transfer (§2.2). *)
val transfer_leadership : t -> target:string -> (unit, string) result

val describe : t -> string

(** {2 Canonical topologies} *)

(** Three MySQL voters in one region. *)
val small_members : unit -> member_spec list

(** One region: MySQL + two logtailers (the minimal FlexiRaft data
    quorum) + one more MySQL. *)
val single_region_members : unit -> member_spec list

(** The §6.1 evaluation topology: a primary with two in-region
    logtailers, five follower regions with two logtailers each, and two
    learners. *)
val paper_members : unit -> member_spec list
