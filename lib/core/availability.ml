(* Client-side availability probe for a MyRaft replicaset.

   A probe client repeatedly attempts a small write against whichever
   node service discovery currently advertises as primary.  Write
   downtime is *measured*, not inferred: it is the largest gap between
   consecutive successful commits in an observation window — exactly the
   client-side downtime metric of the paper's shadow testing (§5.1) and
   the promotion/failover evaluation (Table 2).

   The measurement machinery is the generic [Sim.Probe]; this module only
   supplies the MyRaft-specific issue path (resolve primary through
   service discovery, send a Wire write, match the reply). *)

type t = {
  probe : Sim.Probe.t;
  client_id : string;
  outstanding : (int, bool -> unit) Hashtbl.t;
  mutable next_id : int;
}

let successes t = Sim.Probe.successes t.probe

let failures t = Sim.Probe.failures t.probe

let stop t = Sim.Probe.stop t.probe

let max_downtime t = Sim.Probe.max_downtime t.probe

let start ?(region = "r1") ?(probe_interval = 5.0 *. Sim.Engine.ms)
    ?(write_timeout = 1.0 *. Sim.Engine.s) ?(client_latency = 500.0 *. Sim.Engine.us)
    cluster ~client_id =
  let outstanding = Hashtbl.create 64 in
  Cluster.register_client cluster ~id:client_id ~region ~handler:(fun ~src:_ msg ->
      match msg with
      | Wire.Write_reply { write_id; outcome } -> (
        match Hashtbl.find_opt outstanding write_id with
        | Some settle ->
          Hashtbl.remove outstanding write_id;
          settle (match outcome with Wire.Committed _ -> true | Wire.Rejected _ -> false)
        | None -> ())
      | Wire.Raft_msg _ | Wire.Write_request _ | Wire.Read_request _ | Wire.Read_reply _
        -> ());
  (* Pin the probe close to every ring member so probe RTT does not
     dominate the measured downtime. *)
  List.iter
    (fun member ->
      Cluster.set_link_latency cluster ~a:client_id ~b:member ~latency:client_latency)
    (Cluster.member_ids cluster);
  let next_id = ref 1 in
  let issue ~on_outcome =
    match
      Service_discovery.primary_of (Cluster.discovery cluster)
        ~replicaset:(Cluster.replicaset_name cluster)
    with
    | None -> on_outcome false
    | Some primary ->
      let write_id = !next_id in
      incr next_id;
      Hashtbl.replace outstanding write_id on_outcome;
      let key = Printf.sprintf "probe-%s-%d" client_id write_id in
      Cluster.send_from_client cluster ~client:client_id ~dst:primary
        (Wire.Write_request
           {
             write_id;
             table = "probe";
             ops = [ Binlog.Event.Insert { key; value = "x" } ];
             client = client_id;
           })
  in
  let probe =
    Sim.Probe.start ~interval:probe_interval ~timeout:write_timeout
      (Cluster.engine cluster) ~issue
  in
  { probe; client_id; outstanding; next_id = 1 }
