(** A logtailer: a Raft witness — a full voter with a replication log
    but no storage engine (§2.1, Table 1).  In-region logtailers make
    FlexiRaft's small data quorums durable; when one wins an election
    (longest log) it immediately transfers leadership to the most
    caught-up MySQL voter (§2.2). *)

type t

(** [metrics] and [tracebuf] are threaded to the embedded Raft node and
    log store. *)
val create :
  ?metrics:Obs.Metrics.t ->
  ?tracebuf:Obs.Tracebuf.t ->
  ?clock:Sim.Clock.t ->
  ?group:int ->
  engine:Sim.Engine.t ->
  id:string ->
  region:string ->
  send:(dst:string -> Wire.t -> unit) ->
  params:Params.t ->
  initial_config:Raft.Types.config ->
  trace:Sim.Trace.t ->
  unit ->
  t

val id : t -> string

(** The local clock its Raft timers run on (chaos fault-injection
    point). *)
val clock : t -> Sim.Clock.t

val metrics : t -> Obs.Metrics.t

val raft : t -> Raft.Node.t

val log : t -> Binlog.Log_store.t

val is_crashed : t -> bool

(** How many times this logtailer won an interim leadership and handed
    it off. *)
val interim_leaderships : t -> int

val handle_message : t -> src:string -> Wire.t -> unit

val crash : t -> unit

val restart : t -> unit
