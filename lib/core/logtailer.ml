(* A logtailer: a Raft witness — a full voter with a replication log but
   no storage engine and no database (§2.1, Table 1).

   In-region logtailers are what make FlexiRaft's small data-commit
   quorums durable: the leader's self-vote plus one logtailer ack commits
   a transaction.  Because a logtailer often has the longest log, Raft's
   longest-log-wins voting can elect it as a *temporary* leader; its
   leader-start orchestration immediately transfers leadership to the
   most caught-up MySQL voter (§2.2 failover). *)

type t = {
  id : string;
  region : string;
  group : int; (* multi-Raft group tag; 0 outside shard mode *)
  engine : Sim.Engine.t;
  clock : Sim.Clock.t; (* local clock: Raft timers run on it *)
  trace : Sim.Trace.t;
  params : Params.t;
  send : dst:string -> Wire.t -> unit;
  log : Binlog.Log_store.t;
  durable : Raft.Node.durable;
  initial_config : Raft.Types.config;
  mutable raft : Raft.Node.t option;
  mutable crashed : bool;
  mutable interim_leaderships : int;
  metrics : Obs.Metrics.t;
  tracebuf : Obs.Tracebuf.t option;
}

let id t = t.id

let clock t = t.clock

let raft t = match t.raft with Some r -> r | None -> failwith (t.id ^ ": raft not wired")

let log t = t.log

let is_crashed t = t.crashed

let metrics t = t.metrics

let interim_leaderships t = t.interim_leaderships

let tracef t fmt = Sim.Trace.record t.trace ~tag:"logtailer" fmt

(* When a logtailer wins an election it hands leadership to a MySQL
   server: wait for a MySQL voter to be fully caught up, then run a
   regular graceful transfer.  After a bounded wait, transfer to the most
   caught-up MySQL voter regardless. *)
let orchestrate_handoff t =
  t.interim_leaderships <- t.interim_leaderships + 1;
  tracef t "%s: elected as interim leader; handing off to a MySQL server" t.id;
  let deadline = Sim.Engine.now t.engine +. (5.0 *. Sim.Engine.s) in
  let rec attempt () =
    if (not t.crashed) && Raft.Node.is_leader (raft t) then begin
      let r = raft t in
      let cfg = Raft.Node.config r in
      let last = Binlog.Opid.index (Raft.Node.last_opid r) in
      let mysql_voters =
        List.filter
          (fun m -> m.Raft.Types.voter && m.Raft.Types.kind = Raft.Types.Mysql_server)
          cfg.Raft.Types.members
      in
      let ranked =
        List.filter_map
          (fun m ->
            Option.map
              (fun match_index -> (match_index, m.Raft.Types.id))
              (Raft.Node.match_index_of r ~peer:m.Raft.Types.id))
          mysql_voters
        |> List.sort (fun a b -> compare b a)
      in
      match ranked with
      | (best_match, best) :: _
        when best_match >= last || Sim.Engine.now t.engine >= deadline -> (
        match Raft.Node.transfer_leadership r ~target:best with
        | Ok () -> ()
        | Error reason ->
          tracef t "%s: handoff transfer failed (%s); retrying" t.id reason;
          ignore (Sim.Engine.schedule t.engine ~delay:(100.0 *. Sim.Engine.ms) attempt))
      | _ -> ignore (Sim.Engine.schedule t.engine ~delay:(50.0 *. Sim.Engine.ms) attempt)
    end
  in
  attempt ()

let make_callbacks t =
  let cb = Raft.Node.default_callbacks () in
  cb.Raft.Node.on_leader_start <- (fun ~noop_index:_ -> orchestrate_handoff t);
  cb

let make_raft t =
  Raft.Node.create ~metrics:t.metrics ?tracebuf:t.tracebuf ~clock:t.clock
    ~group:t.group ~engine:t.engine ~id:t.id ~region:t.region
    ~send:(fun ~dst msg -> t.send ~dst (Wire.Raft_msg msg))
    ~log:(Raft.Node.log_ops_of_store t.log)
    ~callbacks:(make_callbacks t) ~params:t.params.Params.raft
    ~initial_config:t.initial_config ~durable:t.durable ~trace:t.trace ()

let create ?metrics ?tracebuf ?clock ?(group = 0) ~engine ~id ~region ~send ~params
    ~initial_config ~trace () =
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create ~node:id () in
  let clock = match clock with Some c -> c | None -> Sim.Clock.create ~engine () in
  let t =
    {
      id;
      region;
      group;
      engine;
      clock;
      trace;
      params;
      send;
      log = Binlog.Log_store.create ~metrics ~mode:Binlog.Log_store.Relay ();
      durable = Raft.Node.fresh_durable ();
      initial_config;
      raft = None;
      crashed = false;
      interim_leaderships = 0;
      metrics;
      tracebuf;
    }
  in
  t.raft <- Some (make_raft t);
  t

let handle_message t ~src msg =
  if not t.crashed then
    match msg with
    | Wire.Raft_msg m -> Raft.Node.handle_message (raft t) ~src m
    | Wire.Write_request { write_id; client; _ } ->
      t.send ~dst:client
        (Wire.Write_reply { write_id; outcome = Wire.Rejected "logtailer has no database" })
    | Wire.Read_request { read_id; read_client; _ } ->
      (* Logtailers hold logs, not tables: no engine to read from. *)
      t.send ~dst:read_client
        (Wire.Read_reply
           {
             read_id;
             outcome =
               Wire.Read_rejected
                 { reason = "logtailer has no database"; retry_after = None };
           })
    | Wire.Write_reply _ | Wire.Read_reply _ -> ()

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    Raft.Node.stop (raft t);
    tracef t "%s: CRASHED" t.id
  end

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    let torn = Binlog.Log_store.crash_recover_log t.log in
    let corruption = Binlog.Log_store.scan_for_corruption t.log in
    t.raft <- Some (make_raft t);
    (match corruption with
    | Some r ->
      tracef t "%s: recovery truncated %d corrupt-suffix entries from index %d" t.id
        (List.length r.Binlog.Log_store.cr_dropped)
        r.Binlog.Log_store.cr_first_corrupt;
      Raft.Node.set_vote_floor (raft t) r.Binlog.Log_store.cr_pre_truncation_tail
    | None -> ());
    tracef t "%s: restarted (lost %d torn log entries)" t.id (List.length torn)
  end
