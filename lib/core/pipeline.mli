(** The three-stage commit pipeline (§3.4, §3.5): group flush, wait for
    Raft consensus commit, engine group commit.  One implementation
    serves both the primary (flush = binlog append through Raft) and
    replicas (the applier feeds it), preserving the paper's symmetry. *)

type item = {
  label : string;
  flush : unit -> (int, string) result;
      (** perform the flush work; returns the Raft index to wait on *)
  finish : ok:bool -> unit;
      (** runs at engine commit ([ok = true]) or on abort/failure *)
}

type t

(** [is_primary_path] selects whether groups pay the MyRaft stamping
    cost (checksum + compression + OpId, §3.4).  [metrics] receives the
    pipeline.* counters, the queue-depth gauge and the per-stage latency
    histograms (flush_us, consensus_wait_us, engine_commit_us,
    txn_total_us, group_size). *)
val create :
  ?metrics:Obs.Metrics.t ->
  engine:Sim.Engine.t ->
  params:Params.t ->
  is_primary_path:bool ->
  unit ->
  t

val submit : t -> item -> unit

(** Install the group-commit scope: the flush stage runs each group's
    appends inside [f], so the embedder can coalesce their fsyncs into
    one (and tell Raft the log advanced afterwards).  Default: run
    directly. *)
val set_coalesce : t -> ((unit -> unit) -> unit) -> unit

(** Raft's commit marker advanced: release covered groups, in order. *)
val notify_commit_index : t -> int -> unit

(** Demotion step 1 (§3.3): fail everything in flight; returns the count.
    Until {!reset}, new submissions fail immediately. *)
val abort_all : t -> int

(** Re-arm after a role change. *)
val reset : t -> unit

val in_flight : t -> int

val committed_txns : t -> int

val groups_formed : t -> int

(** Average flush group size: > 1 under load means group commit works. *)
val mean_group_size : t -> float
