(** The replica's applier thread (§3.5): picks transactions from the
    relay log in order, executes their RBR payloads, and pushes them
    through the commit pipeline where they wait for the consensus-commit
    marker.

    [applied_index] is the highest log index durably in the engine with
    nothing earlier missing — what promotion step 2 waits on, and what
    positions the cursor after a role change (§3.3). *)

type t

(** [process entry ~on_submitted ~on_done] must execute the entry
    (prepare + pipeline submission).  [on_submitted] must fire exactly
    once, when the entry's commit order is pinned (it entered the FIFO
    pipeline, or its outcome is terminal) — the applier stalls later
    entries until then, preserving engine commit order
    (slave_preserve_commit_order).  [on_done] fires after engine
    commit. *)
val create :
  ?metrics:Obs.Metrics.t ->
  engine:Sim.Engine.t ->
  params:Params.t ->
  process:
    (Binlog.Entry.t -> on_submitted:(unit -> unit) -> on_done:(ok:bool -> unit) -> unit) ->
  unit ->
  t

(** Start (or restart) with the cursor at [from_index]; [backlog] is the
    relay-log suffix from that point. *)
val start : t -> from_index:int -> backlog:Binlog.Entry.t list -> unit

val stop : t -> unit

val is_running : t -> bool

(** Raft signal: new entries are in the relay log (duplicates and gaps
    are filtered). *)
val signal : t -> Binlog.Entry.t list -> unit

(** Log truncation: drop queued entries at/above the point and rewind. *)
val handle_truncation : t -> from_index:int -> unit

val applied_index : t -> int

val applied_txns : t -> int

val queue_length : t -> int
