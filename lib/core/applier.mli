(** The replica's applier (§3.5) as a WRITESET-driven parallel
    scheduler: a coordinator walks the relay log in order and dispatches
    entries to [Params.applier_workers] simulated worker lanes once
    their dependency interval allows ([last_committed] at or below the
    engine-committed low-water-mark).  Only the execute phase overlaps;
    submission into the FIFO commit pipeline stays in log order, so
    engine commit order is preserved (slave_preserve_commit_order).
    Unstamped entries (no-ops, config changes, rotates) are scheduling
    barriers — the serial applier's schedule.

    [applied_index] is a true low-water-mark over out-of-order engine
    commits: the highest log index durably in the engine with nothing
    earlier missing — what promotion step 2 waits on, and what positions
    the cursor after a role change (§3.3). *)

type t

(** [process entry ~live ~on_submitted ~on_done] must execute the entry
    (prepare + pipeline submission).  [live] is the applier's fencing
    token: any retry loop must consult it and abandon the entry when it
    turns false (truncation, applier restart).  [on_submitted] must fire
    exactly once, when the entry's commit order is pinned (it entered
    the FIFO pipeline, or its outcome is terminal) — the applier keeps
    later entries out of the pipeline until then.  [on_done] fires after
    engine commit. *)
val create :
  ?metrics:Obs.Metrics.t ->
  engine:Sim.Engine.t ->
  params:Params.t ->
  process:
    (Binlog.Entry.t ->
    live:(unit -> bool) ->
    on_submitted:(unit -> unit) ->
    on_done:(ok:bool -> unit) ->
    unit) ->
  unit ->
  t

(** Start (or restart) with the cursor at [from_index]; [backlog] is the
    relay-log suffix from that point. *)
val start : t -> from_index:int -> backlog:Binlog.Entry.t list -> unit

val stop : t -> unit

val is_running : t -> bool

(** Raft signal: new entries are in the relay log (duplicates and gaps
    are filtered). *)
val signal : t -> Binlog.Entry.t list -> unit

(** Log truncation: fence every lane at/above the point (in-flight
    executes, pipeline callbacks and server-side retry loops all become
    no-ops), salvage unsubmitted entries below it back onto the queue,
    and rewind the cursors.  Entries below the point already submitted
    to the pipeline stay live: their commits still advance the mark. *)
val handle_truncation : t -> from_index:int -> unit

(** Consensus commit index as last reported, for the replica-lag gauge. *)
val note_commit_index : t -> int -> unit

val applied_index : t -> int

val applied_txns : t -> int

(** Distinct head-of-line dependency stalls observed (a free lane idled
    because the head's [last_committed] was above the mark). *)
val dep_stalls : t -> int

(** Worker lanes currently owning an entry (executing, parked ready, or
    submitting — a lane is released when its entry enters the
    pipeline). *)
val busy_workers : t -> int

(** Configured lane count (at least 1). *)
val workers : t -> int

val queue_length : t -> int
