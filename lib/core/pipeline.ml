(* The three-stage commit pipeline (§3.4, §3.5).

   Stage 1 (Flush): transactions queued while the flusher is busy are
   flushed together — MySQL group commit.  On the primary the flush
   appends each transaction to the binlog *through Raft*; on a replica it
   writes the applier's local log.  The stage's [flush] closure performs
   that work and returns the Raft index the item must wait for.

   Stage 2 (Wait for Raft consensus commit): a flushed group blocks until
   Raft's commit marker covers its last index.  On the leader the marker
   advances when the data quorum's acknowledgements arrive; on a follower
   when the leader's piggybacked marker arrives — the same wait in both
   cases, preserving the paper's primary/replica symmetry.

   Stage 3 (Engine commit): the group is durably committed to the storage
   engine and each item's completion callback runs (returning success to
   the client, releasing row locks).

   Groups move through stages strictly in order, one group at a time per
   stage, mirroring the per-stage mutexes in MySQL.

   Each stage boundary is timestamped so the per-stage latency histograms
   (pipeline.flush_us / consensus_wait_us / engine_commit_us and the
   end-to-end pipeline.txn_total_us) decompose a transaction's commit
   latency the way Figure 4 does. *)

type item = {
  label : string;
  flush : unit -> (int, string) result; (* returns raft index to wait on *)
  finish : ok:bool -> unit;
}

(* An item plus its submission time, for stage latency accounting. *)
type pending = { it : item; submitted_at : float }

type group = {
  items : (pending * int) list;
  group_max_index : int;
  flushed_at : float;
  mutable released_at : float; (* when consensus released it to stage 3 *)
}

type meters = {
  m_txns_committed : Obs.Metrics.counter;
  m_txns_aborted : Obs.Metrics.counter;
  m_groups_formed : Obs.Metrics.counter;
  m_queue_depth : Obs.Metrics.gauge;
  m_flush : Obs.Metrics.histogram; (* us, submit -> group flushed *)
  m_consensus_wait : Obs.Metrics.histogram; (* us, flushed -> released *)
  m_engine_commit : Obs.Metrics.histogram; (* us, released -> finished *)
  m_txn_total : Obs.Metrics.histogram; (* us, submit -> finished *)
  m_group_size : Obs.Metrics.histogram;
}

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  mutable flush_queue : pending list; (* reversed: newest first *)
  mutable flushing : bool;
  mutable wait_queue : group list; (* reversed *)
  mutable commit_queue : group list; (* reversed *)
  mutable committing : bool;
  mutable commit_watermark : int; (* raft commit index *)
  mutable aborted : bool;
  (* Runs the whole flush group's appends as one unit; the embedder
     points it at the log's group-commit scope (one fsync per group
     instead of one per transaction) and at Raft's post-sync notifier. *)
  mutable coalesce : (unit -> unit) -> unit;
  mutable flushed_txns : int;
  mutable committed_txns : int;
  mutable groups_formed : int;
  is_primary_path : bool; (* primaries pay the Raft stamping cost *)
  meters : meters;
}

let create ?metrics ~engine ~params ~is_primary_path () =
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    engine;
    params;
    flush_queue = [];
    flushing = false;
    wait_queue = [];
    commit_queue = [];
    committing = false;
    commit_watermark = 0;
    aborted = false;
    coalesce = (fun f -> f ());
    flushed_txns = 0;
    committed_txns = 0;
    groups_formed = 0;
    is_primary_path;
    meters =
      {
        m_txns_committed = Obs.Metrics.counter m "pipeline.txns_committed";
        m_txns_aborted = Obs.Metrics.counter m "pipeline.txns_aborted";
        m_groups_formed = Obs.Metrics.counter m "pipeline.groups_formed";
        m_queue_depth = Obs.Metrics.gauge m "pipeline.queue_depth";
        m_flush = Obs.Metrics.histogram m "pipeline.flush_us";
        m_consensus_wait = Obs.Metrics.histogram m "pipeline.consensus_wait_us";
        m_engine_commit = Obs.Metrics.histogram m "pipeline.engine_commit_us";
        m_txn_total = Obs.Metrics.histogram m "pipeline.txn_total_us";
        m_group_size = Obs.Metrics.histogram m "pipeline.group_size";
      };
  }

let set_coalesce t f = t.coalesce <- f

let committed_txns t = t.committed_txns

let groups_formed t = t.groups_formed

let mean_group_size t =
  if t.groups_formed = 0 then 0.0
  else float_of_int t.flushed_txns /. float_of_int t.groups_formed

let in_flight t =
  List.length t.flush_queue
  + List.fold_left (fun acc g -> acc + List.length g.items) 0 t.wait_queue
  + List.fold_left (fun acc g -> acc + List.length g.items) 0 t.commit_queue
  + (if t.flushing then 1 else 0)

let update_depth t =
  Obs.Metrics.set_gauge t.meters.m_queue_depth (float_of_int (in_flight t))

let rec start_commit_cycle t =
  if (not t.committing) && t.commit_queue <> [] && not t.aborted then begin
    t.committing <- true;
    let groups = List.rev t.commit_queue in
    t.commit_queue <- [];
    let group = List.hd groups in
    t.commit_queue <- List.rev (List.tl groups);
    let n = List.length group.items in
    let cost =
      t.params.Params.commit_base_us
      +. (t.params.Params.commit_per_txn_us *. float_of_int n)
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay:cost (fun () ->
           let now = Sim.Engine.now t.engine in
           Obs.Metrics.record t.meters.m_engine_commit (now -. group.released_at);
           List.iter
             (fun (p, _) ->
               p.it.finish ~ok:true;
               Obs.Metrics.record t.meters.m_txn_total (now -. p.submitted_at))
             group.items;
           t.committed_txns <- t.committed_txns + n;
           Obs.Metrics.add t.meters.m_txns_committed n;
           t.committing <- false;
           update_depth t;
           start_commit_cycle t))
  end

(* Move consensus-committed groups from the wait stage to the commit
   stage, preserving order. *)
let rec drain_wait t =
  match List.rev t.wait_queue with
  | group :: rest when group.group_max_index <= t.commit_watermark ->
    t.wait_queue <- List.rev rest;
    let now = Sim.Engine.now t.engine in
    group.released_at <- now;
    Obs.Metrics.record t.meters.m_consensus_wait (now -. group.flushed_at);
    t.commit_queue <- group :: t.commit_queue;
    drain_wait t
  | _ -> start_commit_cycle t

let notify_commit_index t index =
  if index > t.commit_watermark then begin
    t.commit_watermark <- index;
    drain_wait t
  end

let rec start_flush_cycle t =
  if (not t.flushing) && t.flush_queue <> [] && not t.aborted then begin
    t.flushing <- true;
    let batch = List.rev t.flush_queue in
    t.flush_queue <- [];
    let n = List.length batch in
    let stamp = if t.is_primary_path then t.params.Params.raft_stamp_us else 0.0 in
    let cost =
      t.params.Params.flush_base_us
      +. ((t.params.Params.flush_per_txn_us +. stamp) *. float_of_int n)
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay:cost (fun () ->
           if t.aborted then List.iter (fun p -> p.it.finish ~ok:false) batch
           else begin
             let flushed = ref [] in
             t.coalesce (fun () ->
                 flushed :=
                   List.filter_map
                     (fun p ->
                       match p.it.flush () with
                       | Ok index -> Some (p, index)
                       | Error _ ->
                         p.it.finish ~ok:false;
                         None)
                     batch);
             let flushed = !flushed in
             if flushed <> [] then begin
               let group_max_index =
                 List.fold_left (fun acc (_, i) -> max acc i) 0 flushed
               in
               let now = Sim.Engine.now t.engine in
               List.iter
                 (fun (p, _) ->
                   Obs.Metrics.record t.meters.m_flush (now -. p.submitted_at))
                 flushed;
               Obs.Metrics.record t.meters.m_group_size
                 (float_of_int (List.length flushed));
               t.flushed_txns <- t.flushed_txns + List.length flushed;
               t.groups_formed <- t.groups_formed + 1;
               Obs.Metrics.incr t.meters.m_groups_formed;
               t.wait_queue <-
                 { items = flushed; group_max_index; flushed_at = now; released_at = now }
                 :: t.wait_queue;
               drain_wait t
             end;
             t.flushing <- false;
             start_flush_cycle t
           end))
  end

let submit t item =
  if t.aborted then item.finish ~ok:false
  else begin
    t.flush_queue <- { it = item; submitted_at = Sim.Engine.now t.engine } :: t.flush_queue;
    update_depth t;
    start_flush_cycle t
  end

(* Abort everything in flight: demotion step 1 (§3.3) — the prepared
   transactions behind these items are rolled back by the caller. *)
let abort_all t =
  t.aborted <- true;
  let pending =
    List.rev_append t.flush_queue
      (List.concat_map
         (fun g -> List.map fst g.items)
         (List.rev_append t.wait_queue (List.rev t.commit_queue)))
  in
  t.flush_queue <- [];
  t.wait_queue <- [];
  t.commit_queue <- [];
  List.iter (fun p -> p.it.finish ~ok:false) pending;
  Obs.Metrics.add t.meters.m_txns_aborted (List.length pending);
  update_depth t;
  List.length pending

(* Re-arm after a role change (the pipeline object survives demote +
   promote cycles). *)
let reset t =
  t.aborted <- false;
  t.flushing <- false;
  t.committing <- false;
  t.commit_watermark <- 0
