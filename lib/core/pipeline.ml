(* The three-stage commit pipeline (§3.4, §3.5).

   Stage 1 (Flush): transactions queued while the flusher is busy are
   flushed together — MySQL group commit.  On the primary the flush
   appends each transaction to the binlog *through Raft*; on a replica it
   writes the applier's local log.  The stage's [flush] closure performs
   that work and returns the Raft index the item must wait for.

   Stage 2 (Wait for Raft consensus commit): a flushed group blocks until
   Raft's commit marker covers its last index.  On the leader the marker
   advances when the data quorum's acknowledgements arrive; on a follower
   when the leader's piggybacked marker arrives — the same wait in both
   cases, preserving the paper's primary/replica symmetry.

   Stage 3 (Engine commit): the group is durably committed to the storage
   engine and each item's completion callback runs (returning success to
   the client, releasing row locks).  Groups released by consensus while
   a commit cycle is running are MERGED into the next cycle — one fsync
   ([commit_base_us]) covers them all, up to [group_commit_max]
   transactions — which is how the engine side of group commit widens
   under load (§3.5).

   Groups move through stages strictly in order, mirroring the per-stage
   mutexes in MySQL.

   Memory discipline: the flush stage accumulates submissions into a
   reusable double-buffered array (no per-submit list cells), each
   flushed group carries its items as one right-sized array, and an
   item's Raft index is stored in a mutable field of its pending record
   rather than a per-item pair.  Steady state allocates one pending
   record per transaction and one array + group record per group.

   Each stage boundary is timestamped so the per-stage latency histograms
   (pipeline.flush_us / consensus_wait_us / engine_commit_us and the
   end-to-end pipeline.txn_total_us) decompose a transaction's commit
   latency the way Figure 4 does. *)

type item = {
  label : string;
  flush : unit -> (int, string) result; (* returns raft index to wait on *)
  finish : ok:bool -> unit;
}

(* An item plus its submission time (for stage latency accounting) and,
   once flushed, the Raft index it waits on. *)
type pending = { it : item; submitted_at : float; mutable raft_index : int }

type group = {
  items : pending array;
  group_max_index : int;
  flushed_at : float;
  mutable released_at : float; (* when consensus released it to stage 3 *)
}

(* Growable array of pendings, reused across flush cycles. *)
type accum = { mutable buf : pending option array; mutable len : int }

type meters = {
  m_txns_committed : Obs.Metrics.counter;
  m_txns_aborted : Obs.Metrics.counter;
  m_groups_formed : Obs.Metrics.counter;
  m_groups_merged : Obs.Metrics.counter; (* commit cycles covering > 1 group *)
  m_queue_depth : Obs.Metrics.gauge;
  m_flush : Obs.Metrics.histogram; (* us, submit -> group flushed *)
  m_consensus_wait : Obs.Metrics.histogram; (* us, flushed -> released *)
  m_engine_commit : Obs.Metrics.histogram; (* us, released -> finished *)
  m_txn_total : Obs.Metrics.histogram; (* us, submit -> finished *)
  m_group_size : Obs.Metrics.histogram;
  m_commit_cycle_txns : Obs.Metrics.histogram; (* txns per merged engine cycle *)
}

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  mutable submit_acc : accum; (* incoming submissions (stage-1 accumulator) *)
  mutable flush_acc : accum; (* the batch currently flushing (double buffer) *)
  mutable flushing : bool;
  wait_queue : group Queue.t;
  commit_queue : group Queue.t;
  mutable committing : bool;
  mutable commit_deadline_armed : bool;
  mutable commit_watermark : int; (* raft commit index *)
  mutable aborted : bool;
  (* Runs the whole flush group's appends as one unit; the embedder
     points it at the log's group-commit scope (one fsync per group
     instead of one per transaction) and at Raft's post-sync notifier. *)
  mutable coalesce : (unit -> unit) -> unit;
  mutable flushed_txns : int;
  mutable committed_txns : int;
  mutable groups_formed : int;
  is_primary_path : bool; (* primaries pay the Raft stamping cost *)
  meters : meters;
}

let create ?metrics ~engine ~params ~is_primary_path () =
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    engine;
    params;
    submit_acc = { buf = Array.make 64 None; len = 0 };
    flush_acc = { buf = Array.make 64 None; len = 0 };
    flushing = false;
    wait_queue = Queue.create ();
    commit_queue = Queue.create ();
    committing = false;
    commit_deadline_armed = false;
    commit_watermark = 0;
    aborted = false;
    coalesce = (fun f -> f ());
    flushed_txns = 0;
    committed_txns = 0;
    groups_formed = 0;
    is_primary_path;
    meters =
      {
        m_txns_committed = Obs.Metrics.counter m "pipeline.txns_committed";
        m_txns_aborted = Obs.Metrics.counter m "pipeline.txns_aborted";
        m_groups_formed = Obs.Metrics.counter m "pipeline.groups_formed";
        m_groups_merged = Obs.Metrics.counter m "pipeline.groups_merged";
        m_queue_depth = Obs.Metrics.gauge m "pipeline.queue_depth";
        m_flush = Obs.Metrics.histogram m "pipeline.flush_us";
        m_consensus_wait = Obs.Metrics.histogram m "pipeline.consensus_wait_us";
        m_engine_commit = Obs.Metrics.histogram m "pipeline.engine_commit_us";
        m_txn_total = Obs.Metrics.histogram m "pipeline.txn_total_us";
        m_group_size = Obs.Metrics.histogram m "pipeline.group_size";
        m_commit_cycle_txns = Obs.Metrics.histogram m "pipeline.commit_cycle_txns";
      };
  }

let accum_push a p =
  if a.len = Array.length a.buf then begin
    let bigger = Array.make (2 * Array.length a.buf) None in
    Array.blit a.buf 0 bigger 0 a.len;
    a.buf <- bigger
  end;
  a.buf.(a.len) <- Some p;
  a.len <- a.len + 1

let accum_get a i = match a.buf.(i) with Some p -> p | None -> assert false

let accum_clear a =
  Array.fill a.buf 0 a.len None;
  a.len <- 0

let set_coalesce t f = t.coalesce <- f

let committed_txns t = t.committed_txns

let groups_formed t = t.groups_formed

let mean_group_size t =
  if t.groups_formed = 0 then 0.0
  else float_of_int t.flushed_txns /. float_of_int t.groups_formed

let in_flight t =
  t.submit_acc.len
  + Queue.fold (fun acc g -> acc + Array.length g.items) 0 t.wait_queue
  + Queue.fold (fun acc g -> acc + Array.length g.items) 0 t.commit_queue
  + (if t.flushing then 1 else 0)

let update_depth t =
  Obs.Metrics.set_gauge t.meters.m_queue_depth (float_of_int (in_flight t))

(* One engine commit cycle over every released group waiting at stage 3,
   merged up to [group_commit_max] transactions: [commit_base_us] (the
   engine fsync) is paid once for the whole merged set. *)
let rec start_commit_cycle t =
  if (not t.committing) && (not (Queue.is_empty t.commit_queue)) && not t.aborted
  then begin
    t.committing <- true;
    let cap = max 1 t.params.Params.group_commit_max in
    let rec take acc n =
      match Queue.peek_opt t.commit_queue with
      | Some g when n = 0 || n + Array.length g.items <= cap ->
        ignore (Queue.pop t.commit_queue);
        take (g :: acc) (n + Array.length g.items)
      | _ -> (List.rev acc, n)
    in
    let groups, n = take [] 0 in
    if List.length groups > 1 then Obs.Metrics.incr t.meters.m_groups_merged;
    Obs.Metrics.record t.meters.m_commit_cycle_txns (float_of_int n);
    let cost =
      t.params.Params.commit_base_us
      +. (t.params.Params.commit_per_txn_us *. float_of_int n)
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay:cost (fun () ->
           let now = Sim.Engine.now t.engine in
           List.iter
             (fun group ->
               Obs.Metrics.record t.meters.m_engine_commit (now -. group.released_at);
               Array.iter
                 (fun p ->
                   p.it.finish ~ok:true;
                   Obs.Metrics.record t.meters.m_txn_total (now -. p.submitted_at))
                 group.items)
             groups;
           t.committed_txns <- t.committed_txns + n;
           Obs.Metrics.add t.meters.m_txns_committed n;
           t.committing <- false;
           update_depth t;
           start_commit_cycle t))
  end

(* With a positive deadline an idle commit stage waits that long before
   its first fsync so more released groups can pile in. *)
and arm_commit t =
  if t.params.Params.group_commit_deadline_us <= 0.0 then start_commit_cycle t
  else if (not t.committing) && not t.commit_deadline_armed then begin
    t.commit_deadline_armed <- true;
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.params.Params.group_commit_deadline_us
         (fun () ->
           t.commit_deadline_armed <- false;
           start_commit_cycle t))
  end

(* Move consensus-committed groups from the wait stage to the commit
   stage, preserving order. *)
let drain_wait t =
  let rec drain () =
    match Queue.peek_opt t.wait_queue with
    | Some group when group.group_max_index <= t.commit_watermark ->
      ignore (Queue.pop t.wait_queue);
      let now = Sim.Engine.now t.engine in
      group.released_at <- now;
      Obs.Metrics.record t.meters.m_consensus_wait (now -. group.flushed_at);
      Queue.push group t.commit_queue;
      drain ()
    | _ -> arm_commit t
  in
  drain ()

let notify_commit_index t index =
  if index > t.commit_watermark then begin
    t.commit_watermark <- index;
    drain_wait t
  end

let rec start_flush_cycle t =
  if (not t.flushing) && t.submit_acc.len > 0 && not t.aborted then begin
    t.flushing <- true;
    (* Double buffer: the submit accumulator becomes this cycle's batch;
       new submissions land in the (cleared) other buffer. *)
    let batch = t.submit_acc in
    t.submit_acc <- t.flush_acc;
    t.flush_acc <- batch;
    let n = batch.len in
    let stamp = if t.is_primary_path then t.params.Params.raft_stamp_us else 0.0 in
    let cost =
      t.params.Params.flush_base_us
      +. ((t.params.Params.flush_per_txn_us +. stamp) *. float_of_int n)
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay:cost (fun () ->
           if t.aborted then begin
             for i = 0 to n - 1 do
               (accum_get batch i).it.finish ~ok:false
             done;
             accum_clear batch
           end
           else begin
             let flushed = ref 0 in
             let group_max_index = ref 0 in
             t.coalesce (fun () ->
                 for i = 0 to n - 1 do
                   let p = accum_get batch i in
                   match p.it.flush () with
                   | Ok index ->
                     p.raft_index <- index;
                     if index > !group_max_index then group_max_index := index;
                     (* compact survivors to the front, in order *)
                     batch.buf.(!flushed) <- Some p;
                     incr flushed
                   | Error _ -> p.it.finish ~ok:false
                 done);
             let flushed = !flushed in
             if flushed > 0 then begin
               let items = Array.init flushed (fun i -> accum_get batch i) in
               let now = Sim.Engine.now t.engine in
               Array.iter
                 (fun p -> Obs.Metrics.record t.meters.m_flush (now -. p.submitted_at))
                 items;
               Obs.Metrics.record t.meters.m_group_size (float_of_int flushed);
               t.flushed_txns <- t.flushed_txns + flushed;
               t.groups_formed <- t.groups_formed + 1;
               Obs.Metrics.incr t.meters.m_groups_formed;
               Queue.push
                 {
                   items;
                   group_max_index = !group_max_index;
                   flushed_at = now;
                   released_at = now;
                 }
                 t.wait_queue;
               drain_wait t
             end;
             accum_clear batch;
             t.flushing <- false;
             start_flush_cycle t
           end))
  end

let submit t item =
  if t.aborted then item.finish ~ok:false
  else begin
    accum_push t.submit_acc
      { it = item; submitted_at = Sim.Engine.now t.engine; raft_index = 0 };
    update_depth t;
    start_flush_cycle t
  end

(* Abort everything in flight: demotion step 1 (§3.3) — the prepared
   transactions behind these items are rolled back by the caller.  The
   group items are plain pending arrays, so this walks them in place (no
   per-item list rebuilding). *)
let abort_all t =
  t.aborted <- true;
  let count = ref 0 in
  for i = 0 to t.submit_acc.len - 1 do
    (accum_get t.submit_acc i).it.finish ~ok:false;
    incr count
  done;
  accum_clear t.submit_acc;
  let abort_group g =
    Array.iter
      (fun p ->
        p.it.finish ~ok:false;
        incr count)
      g.items
  in
  Queue.iter abort_group t.wait_queue;
  Queue.iter abort_group t.commit_queue;
  Queue.clear t.wait_queue;
  Queue.clear t.commit_queue;
  Obs.Metrics.add t.meters.m_txns_aborted !count;
  update_depth t;
  !count

(* Re-arm after a role change (the pipeline object survives demote +
   promote cycles). *)
let reset t =
  t.aborted <- false;
  t.flushing <- false;
  t.committing <- false;
  t.commit_deadline_armed <- false;
  t.commit_watermark <- 0
