(* A MyRaft MySQL server: storage engine + replication log + commit
   pipeline + applier, integrated with Raft through the mysql_raft_repl
   plugin (§3).

   The plugin surface is the [callbacks] record handed to the Raft node:
   Raft orchestrates MySQL's role through it (promotion/demotion of
   §3.3), advances the pipeline's consensus-commit watermark, signals the
   applier about new relay-log entries, and reports truncations so GTID
   metadata can be cleaned up.  Raft reads and writes the server's
   binlog/relay-log through the log abstraction ([Raft.Node.log_ops]
   specialised to [Binlog.Log_store]).

   Durable state (survives crash/restart): storage engine contents, log
   files, Raft term/vote.  Everything else is rebuilt by [restart]. *)

type role = Primary | Replica

let role_to_string = function Primary -> "primary" | Replica -> "replica"

type pending_retry = { mutable attempts : int }

type t = {
  id : string;
  region : string;
  group : int; (* multi-Raft group tag; 0 outside shard mode *)
  replicaset : string;
  engine : Sim.Engine.t;
  clock : Sim.Clock.t;
    (* this server's local clock: Raft timers, lease arithmetic and the
       read path's staleness anchors all run on it, so injected clock
       faults distort exactly what they would on a real host.  Trace and
       metrics timestamps intentionally stay on engine (true) time. *)
  trace : Sim.Trace.t;
  params : Params.t;
  send : dst:string -> Wire.t -> unit;
  discovery : Service_discovery.t;
  initial_config : Raft.Types.config;
  (* durable across crashes *)
  storage : Storage.Engine.t;
  log : Binlog.Log_store.t;
  durable : Raft.Node.durable;
  (* volatile *)
  mutable raft : Raft.Node.t option;
  mutable pipeline : Pipeline.t;
  mutable applier : Applier.t option;
  mutable role : role;
  mutable writes_enabled : bool;
  mutable crashed : bool;
  mutable next_gno : int;
  mutable next_xid : int64;
  mutable orchestration_epoch : int; (* invalidates in-flight orchestrations *)
  rng : Sim.Rng.t;
  (* counters *)
  writeset : Binlog.Writeset.t; (* primary-side dependency tracker *)
  mutable promotions : int;
  mutable demotions : int;
  mutable writes_committed : int;
  mutable writes_rejected : int;
  mutable truncated_gtids : Binlog.Gtid.t list;
  (* observability *)
  metrics : Obs.Metrics.t;
  tracebuf : Obs.Tracebuf.t option;
  (* read path *)
  mutable exec_index : int;
  (* Highest log index i such that every transaction entry <= i is
     committed in the local engine: the applied-through watermark a read
     at index i waits on.  Non-transaction entries (noop/config/rotate)
     don't change engine state and pass through freely.  Unlike
     [Applier.applied_index] this cursor also works on the primary
     (whose applier is stopped) and across role changes. *)
  mutable apply_waiters : (int * (unit -> unit)) list;
  gtid_waiters : (Binlog.Gtid.t, gtid_waiter list) Hashtbl.t;
  mutable read_service : Read.Service.t option;
  (* At-most-once session layer for client writes: highest write_id
     executed per client.  Client write_ids are monotone per session and
     healthy links are FIFO, so a Write_request at or below the floor can
     only be a frame the chaos network duplicated (or re-ordered past its
     successor) — re-executing it would mint a fresh GTID for a stale
     payload and silently roll the row backwards, which is exactly the
     write regression the linearizable-register checker flags.  A real
     SQL session (one TCP stream) can never replay a transaction this
     way.  In-memory only: a crash loses the floors, like a real server
     losing its sessions. *)
  client_write_floor : (string, int) Hashtbl.t;
}

and gtid_waiter = {
  gw_done : bool ref;
  gw_timer : Sim.Engine.handle;
  gw_k : bool -> unit;
}

let id t = t.id

let clock t = t.clock

let raft t = match t.raft with Some r -> r | None -> failwith (t.id ^ ": raft not wired")

let applier t =
  match t.applier with Some a -> a | None -> failwith (t.id ^ ": applier not wired")

let role t = t.role

let writes_enabled t = t.writes_enabled

let is_crashed t = t.crashed

let storage t = t.storage

let log t = t.log

let pipeline t = t.pipeline

let promotions t = t.promotions

let demotions t = t.demotions

let writes_committed t = t.writes_committed

let writes_rejected t = t.writes_rejected

let truncated_gtids t = List.rev t.truncated_gtids

let metrics t = t.metrics

(* OpId-correlated trace event on the shared ring (when wired). *)
let trace_event t ~stage ~term ~index =
  match t.tracebuf with
  | Some tb ->
    Obs.Tracebuf.record tb ~time:(Sim.Engine.now t.engine) ~node:t.id ~stage ~term
      ~index ()
  | None -> ()

let gtid_executed t =
  match t.role with
  | Primary -> Binlog.Log_store.gtid_set t.log
  | Replica -> Storage.Engine.gtid_executed t.storage

let tracef t fmt = Sim.Trace.record t.trace ~tag:"mysql" fmt

(* ----- applied-through cursor + commit-event waiters (read path) ----- *)

(* Advance [exec_index] over contiguous entries whose effects the engine
   already holds, then release apply waiters the advance satisfied. *)
let advance_exec_cursor t =
  let rec scan i =
    match Binlog.Log_store.entry_at t.log i with
    | None -> i - 1
    | Some e -> (
      match Binlog.Entry.gtid e with
      | Some gtid ->
        if Storage.Engine.has_committed t.storage gtid then scan (i + 1) else i - 1
      | None -> scan (i + 1))
  in
  let advanced = scan (t.exec_index + 1) in
  if advanced > t.exec_index then begin
    t.exec_index <- advanced;
    let ready, waiting =
      List.partition (fun (index, _) -> index <= advanced) t.apply_waiters
    in
    t.apply_waiters <- waiting;
    List.iter (fun (_, k) -> k ()) ready
  end

(* The engine-applied watermark for reads (recomputed lazily: commits by
   the client path, the applier, and noop passthrough all move it). *)
let applied_through t =
  advance_exec_cursor t;
  t.exec_index

let wait_applied t index k =
  advance_exec_cursor t;
  if t.exec_index >= index then k ()
  else t.apply_waiters <- (index, k) :: t.apply_waiters

(* WAIT_FOR_EXECUTED_GTID_SET: block until the transaction is in the
   local engine — the MySQL primitive behind read-your-writes on a
   replica.  Event-driven: the waiter parks on the engine's commit
   notification and fires the instant the GTID commits (or at
   [timeout]), not on the next poll tick.  [k] receives whether the GTID
   arrived in time. *)
let wait_for_executed_gtid t gtid ~timeout ~k =
  if t.crashed then k false
  else if Storage.Engine.has_committed t.storage gtid then k true
  else begin
    let done_ = ref false in
    let timer =
      Sim.Engine.schedule t.engine ~delay:timeout (fun () ->
          if not !done_ then begin
            done_ := true;
            (match Hashtbl.find_opt t.gtid_waiters gtid with
            | Some ws ->
              let ws = List.filter (fun w -> not !(w.gw_done)) ws in
              if ws = [] then Hashtbl.remove t.gtid_waiters gtid
              else Hashtbl.replace t.gtid_waiters gtid ws
            | None -> ());
            k false
          end)
    in
    let waiter = { gw_done = done_; gw_timer = timer; gw_k = k } in
    let bucket =
      match Hashtbl.find_opt t.gtid_waiters gtid with Some ws -> ws | None -> []
    in
    Hashtbl.replace t.gtid_waiters gtid (waiter :: bucket)
  end

(* One subscription per server lifetime (the engine outlives restarts):
   every engine commit advances the cursor and wakes matching GTID
   waiters. *)
let install_commit_listener t =
  Storage.Engine.subscribe_commit t.storage (fun gtid _opid ->
      advance_exec_cursor t;
      match Hashtbl.find_opt t.gtid_waiters gtid with
      | Some ws ->
        Hashtbl.remove t.gtid_waiters gtid;
        List.iter
          (fun w ->
            if not !(w.gw_done) then begin
              w.gw_done := true;
              Sim.Engine.cancel w.gw_timer;
              w.gw_k true
            end)
          ws
      | None -> ())

(* Orchestration steps run over a live fleet; their durations vary run to
   run (I/O, scheduling, service-discovery load).  Scale a nominal step
   cost by a lognormal factor with median 1. *)
let jittered t nominal = nominal *. Sim.Rng.lognormal t.rng ~mu:0.0 ~sigma:0.35

(* ----- applier wiring (§3.5) ----- *)

(* Execute one relay-log entry: prepare the transaction in the engine and
   push it into the commit pipeline, where it awaits the consensus-commit
   marker before engine commit.  [live] is the applier's fencing token:
   retry loops consult it so a transaction truncated out of the log while
   its prepare waited on a row lock cannot zombie-prepare later. *)
let applier_process t entry ~live ~on_submitted ~on_done =
  match Binlog.Entry.payload entry with
  | Binlog.Entry.Transaction { gtid; events } ->
    if Storage.Engine.has_committed t.storage gtid then begin
      (* idempotent replay *)
      on_done ~ok:true;
      on_submitted ()
    end
    else begin
      let writes =
        List.filter_map
          (fun ev ->
            match Binlog.Event.body ev with
            | Binlog.Event.Write_rows { table; ops } ->
              Some (List.map (fun op -> (table, op)) ops)
            | _ -> None)
          events
        |> List.concat
      in
      let rec try_prepare (retry : pending_retry) =
        let retry_later () =
          retry.attempts <- retry.attempts + 1;
          if retry.attempts > 100_000 then begin
            on_done ~ok:false;
            on_submitted () (* give up; unwedge the applier *)
          end
          else
            ignore
              (Sim.Engine.schedule t.engine ~delay:(50.0 *. Sim.Engine.us) (fun () ->
                   try_prepare retry))
        in
        if not (live ()) then
          () (* entry truncated / applier restarted while waiting: abandon *)
        else if Storage.Engine.has_committed t.storage gtid then begin
          on_done ~ok:true;
          on_submitted ()
        end
        else if Storage.Engine.is_prepared t.storage gtid then
          (* An in-flight copy of the same transaction (e.g. submitted by
             the client path before a role change) is already in the
             pipeline; wait for it to settle. *)
          retry_later ()
        else
          match Storage.Engine.prepare t.storage ~gtid ~writes with
          | () ->
            let index = Binlog.Entry.index entry in
            let term = Binlog.Entry.term entry in
            Pipeline.submit t.pipeline
              {
                Pipeline.label = Binlog.Gtid.to_string gtid;
                flush =
                  (fun () ->
                    trace_event t ~stage:"flush" ~term ~index;
                    Ok index);
                finish =
                  (fun ~ok ->
                    (* The prepared copy may have been rolled back by a log
                       truncation while this item waited for consensus; a
                       truncated transaction must not commit. *)
                    if ok && Storage.Engine.is_prepared t.storage gtid then begin
                      Storage.Engine.commit_prepared t.storage ~gtid
                        ~opid:(Binlog.Entry.opid entry);
                      trace_event t ~stage:"engine-commit" ~term ~index;
                      on_done ~ok:true
                    end
                    else begin
                      Storage.Engine.rollback_prepared t.storage ~gtid;
                      on_done ~ok:false
                    end);
              };
            on_submitted ()
          | exception Storage.Engine.Lock_conflict _ ->
            (* A row lock is held by an in-pipeline transaction; it will
               be released at its engine commit.  Retry shortly — and do
               NOT release the applier: letting later entries into the
               pipeline first would engine-commit them ahead of this one,
               breaking commit order (slave_preserve_commit_order) and
               the recovery cursor's prefix assumption. *)
            retry_later ()
      in
      try_prepare { attempts = 0 }
    end
  | Binlog.Entry.Rotate_marker _ ->
    (* Replicated rotate event (§A.1): close the current relay-log file
       once the event is consensus committed. *)
    Pipeline.submit t.pipeline
      {
        Pipeline.label = "rotate";
        flush = (fun () -> Ok (Binlog.Entry.index entry));
        finish =
          (fun ~ok ->
            if ok then Binlog.Log_store.rotate t.log;
            on_done ~ok);
      };
    on_submitted ()
  | Binlog.Entry.Noop | Binlog.Entry.Config_change _ ->
    (* Nothing to execute, but order through the pipeline so
       applied_index remains a committed-prefix watermark. *)
    Pipeline.submit t.pipeline
      {
        Pipeline.label = "noop";
        flush = (fun () -> Ok (Binlog.Entry.index entry));
        finish = (fun ~ok -> on_done ~ok);
      };
    on_submitted ()

(* ----- orchestration: replica -> primary (§3.3) ----- *)

let rec promotion_catchup t ~epoch ~noop_index =
  if t.orchestration_epoch = epoch && not t.crashed then begin
    let r = raft t in
    if not (Raft.Node.is_leader r) then tracef t "%s: promotion cancelled (lost leadership)" t.id
    else if
      Raft.Node.commit_index r >= noop_index
      && Applier.applied_index (applier t) >= noop_index
    then promotion_rewire t ~epoch
    else
      ignore
        (Sim.Engine.schedule t.engine ~delay:t.params.Params.catchup_check_interval_us
           (fun () -> promotion_catchup t ~epoch ~noop_index))
  end

and promotion_rewire t ~epoch =
  (* Step 3: stop the applier and rewire relay-log -> binlog. *)
  Applier.stop (applier t);
  ignore
    (Sim.Engine.schedule t.engine ~delay:(jittered t t.params.Params.rewire_logs_us) (fun () ->
         if t.orchestration_epoch = epoch && not t.crashed && Raft.Node.is_leader (raft t)
         then begin
           Binlog.Log_store.switch_mode t.log Binlog.Log_store.Binlog;
           ignore
             (Sim.Engine.schedule t.engine ~delay:(jittered t t.params.Params.enable_writes_us)
                (fun () ->
                  if
                    t.orchestration_epoch = epoch && not t.crashed
                    && Raft.Node.is_leader (raft t)
                  then begin
                    (* Step 4: allow client writes.  A fresh primary starts
                       a new dependency-tracking epoch: the term-opening
                       no-op is a scheduling barrier on every replica, so
                       intervals never span leaderships. *)
                    Binlog.Writeset.clear t.writeset;
                    t.role <- Primary;
                    t.writes_enabled <- true;
                    t.next_gno <-
                      Binlog.Gtid_set.max_gno (Binlog.Log_store.gtid_set t.log)
                        ~source:t.id
                      + 1;
                    t.promotions <- t.promotions + 1;
                    Obs.Metrics.bump t.metrics "server.promotions";
                    tracef t "%s: promoted to primary (term %d)" t.id
                      (Raft.Node.current_term (raft t));
                    (* Step 5: publish the new role to service discovery. *)
                    Service_discovery.publish_primary t.discovery
                      ~replicaset:t.replicaset ~primary:t.id
                      ~delay:(jittered t t.params.Params.publish_discovery_us)
                  end))
         end))

let begin_promotion t ~noop_index =
  t.orchestration_epoch <- t.orchestration_epoch + 1;
  let epoch = t.orchestration_epoch in
  tracef t "%s: promotion orchestration started (noop %d)" t.id noop_index;
  (* Step 1 is the no-op Raft already appended.  Step 2: catch the applier
     up to it.  The no-op (and possibly a relay-log backlog) was appended
     locally by Raft itself, so the applier is re-pointed at the engine's
     recovery cursor and fed the whole local log suffix — which includes
     the no-op. *)
  Applier.stop (applier t);
  let from_index = Binlog.Opid.index (Storage.Engine.last_committed_opid t.storage) + 1 in
  let backlog = Binlog.Log_store.entries_from t.log ~from_index ~max_count:max_int in
  Applier.start (applier t) ~from_index ~backlog;
  promotion_catchup t ~epoch ~noop_index

(* ----- orchestration: primary -> replica (§3.3) ----- *)

let start_applier_from_recovery_point t =
  (* Step 5: position the applier from the engine's recovery protocol —
     the last transaction committed in engine determines the cursor.  A
     compacted log cannot replay below its purge boundary; everything
     there is covered by the engine state that came with the
     snapshot/backup, so the cursor starts at the boundary at least. *)
  let recovered =
    Binlog.Opid.index (Storage.Engine.last_committed_opid t.storage) + 1
  in
  let from_index = max recovered (Binlog.Log_store.purged_below t.log) in
  let backlog = Binlog.Log_store.entries_from t.log ~from_index ~max_count:max_int in
  Applier.start (applier t) ~from_index ~backlog

(* Re-point the applier at the engine's recovery cursor after engine and
   log were seeded behind its back (backup restore into a fresh member):
   the applier's low-water-mark must start at the seeded position, not
   the empty-server one it was created with. *)
let reposition_applier t = if t.role = Replica then start_applier_from_recovery_point t

let begin_demotion t =
  t.orchestration_epoch <- t.orchestration_epoch + 1;
  let epoch = t.orchestration_epoch in
  tracef t "%s: demotion orchestration started" t.id;
  (* Step 1: abort in-flight transactions (waiting for consensus): they
     are prepared in the engine, so roll them back online. *)
  let aborted_items = Pipeline.abort_all t.pipeline in
  let pending = Storage.Engine.prepared_gtids t.storage in
  List.iter (fun gtid -> Storage.Engine.rollback_prepared t.storage ~gtid) pending;
  (* Step 2: disable client writes. *)
  t.writes_enabled <- false;
  if t.role = Primary then begin
    t.demotions <- t.demotions + 1;
    Obs.Metrics.bump t.metrics "server.demotions"
  end;
  t.role <- Replica;
  tracef t "%s: demoted (aborted %d in-flight, rolled back %d prepared)" t.id
    aborted_items (List.length pending);
  ignore
    (Sim.Engine.schedule t.engine
       ~delay:(jittered t (t.params.Params.abort_in_flight_us +. t.params.Params.disable_writes_us))
       (fun () ->
         if t.orchestration_epoch = epoch && not t.crashed then begin
           (* Step 3: rewire binlog -> relay-log. *)
           Binlog.Log_store.switch_mode t.log Binlog.Log_store.Relay;
           ignore
             (Sim.Engine.schedule t.engine
                ~delay:(jittered t (t.params.Params.rewire_logs_us +. t.params.Params.applier_start_us))
                (fun () ->
                  if t.orchestration_epoch = epoch && not t.crashed then begin
                    Pipeline.reset t.pipeline;
                    Pipeline.notify_commit_index t.pipeline
                      (Raft.Node.commit_index (raft t));
                    start_applier_from_recovery_point t
                  end))
         end))

(* ----- snapshots (engine checkpoints for log compaction, §A.1) ----- *)

(* Produce an engine-checkpoint snapshot at the applied-through
   watermark: every transaction at or below the boundary is committed in
   the engine, so the checkpoint plus the log tail above the boundary is
   the complete replica state.  None when the boundary's term is not
   answerable (nothing applied yet, or the cursor fell behind the
   store's own purge boundary — no consistent snapshot exists). *)
let take_snapshot t =
  let boundary = applied_through t in
  if boundary <= 0 then None
  else
    match Binlog.Log_store.term_at t.log boundary with
    | None -> None
    | Some term ->
      let last = Binlog.Opid.make ~term ~index:boundary in
      let data =
        Storage.Engine.encode_checkpoint (Storage.Engine.checkpoint t.storage)
      in
      Obs.Metrics.bump t.metrics "server.snapshots_taken";
      tracef t "%s: engine checkpoint at %s (%d bytes)" t.id
        (Binlog.Opid.to_string last) (String.length data);
      Some
        (Raft.Snapshot.make ~last
           ~gtids:(Storage.Engine.gtid_executed t.storage)
           ~config:(Raft.Node.config (raft t))
           ~cfg_id:(Raft.Node.config_id (raft t))
           ~data ())

(* Restore the engine from a received, verified checkpoint (the Raft
   node has already rebased the log at the boundary).  In-flight
   prepared transactions belong to the pre-install state and are rolled
   back; the applier is re-pointed at the restored recovery cursor. *)
let install_snapshot t ~snapshot =
  let meta = Raft.Snapshot.meta snapshot in
  let b = Binlog.Opid.index meta.Raft.Snapshot.last in
  ignore (Pipeline.abort_all t.pipeline);
  (* Re-arm immediately: abort_all leaves the pipeline rejecting
     submissions until reset, but post-install tailing resumes through
     the same pipeline on a replica. *)
  Pipeline.reset t.pipeline;
  List.iter
    (fun gtid -> Storage.Engine.rollback_prepared t.storage ~gtid)
    (Storage.Engine.prepared_gtids t.storage);
  if Binlog.Opid.index (Storage.Engine.last_committed_opid t.storage) < b then begin
    let ck = Storage.Engine.decode_checkpoint (Raft.Snapshot.data snapshot) in
    Storage.Engine.restore t.storage ck;
    Obs.Metrics.bump t.metrics "server.snapshots_installed";
    tracef t "%s: engine restored from snapshot at %s" t.id
      (Binlog.Opid.to_string meta.Raft.Snapshot.last)
  end
  else
    (* The engine already covers the boundary (e.g. only the log lagged);
       restoring would regress it. *)
    tracef t "%s: snapshot at %s skipped engine restore (already applied)" t.id
      (Binlog.Opid.to_string meta.Raft.Snapshot.last);
  (* Everything through the boundary is applied by construction. *)
  t.exec_index <- max t.exec_index b;
  let ready, waiting =
    List.partition (fun (index, _) -> index <= t.exec_index) t.apply_waiters
  in
  t.apply_waiters <- waiting;
  List.iter (fun (_, k) -> k ()) ready;
  advance_exec_cursor t;
  if t.role = Replica && not t.crashed then begin
    Applier.stop (applier t);
    start_applier_from_recovery_point t
  end

(* ----- raft wiring (the mysql_raft_repl plugin, §3.1) ----- *)

let make_callbacks t =
  let cb = Raft.Node.default_callbacks () in
  cb.Raft.Node.on_leader_start <- (fun ~noop_index -> begin_promotion t ~noop_index);
  cb.Raft.Node.on_step_down <- (fun () -> begin_demotion t);
  cb.Raft.Node.on_commit_advance <-
    (fun ~commit_index ->
      Pipeline.notify_commit_index t.pipeline commit_index;
      (match t.applier with
      | Some a -> Applier.note_commit_index a commit_index
      | None -> ());
      (* noop/config entries below the commit index count as applied *)
      advance_exec_cursor t);
  cb.Raft.Node.on_entries_appended <-
    (fun entries ->
      if t.role = Replica then Applier.signal (applier t) entries;
      advance_exec_cursor t);
  cb.Raft.Node.on_truncated <-
    (fun removed ->
      (* §3.3 demotion step 4: GTIDs of truncated transactions are removed
         from all GTID metadata; prepared copies are rolled back. *)
      let from_index =
        List.fold_left (fun acc e -> min acc (Binlog.Entry.index e)) max_int removed
      in
      List.iter
        (fun e ->
          match Binlog.Entry.gtid e with
          | Some gtid ->
            Storage.Engine.rollback_prepared t.storage ~gtid;
            t.truncated_gtids <- gtid :: t.truncated_gtids
          | None -> ())
        removed;
      if t.applier <> None then Applier.handle_truncation (applier t) ~from_index;
      (* the applied-through cursor must not point past the new log end *)
      t.exec_index <- min t.exec_index (from_index - 1);
      tracef t "%s: truncated %d entries from index %d" t.id (List.length removed)
        from_index);
  cb.Raft.Node.on_quiesce <-
    (fun () ->
      tracef t "%s: quiesced for leadership transfer" t.id;
      t.writes_enabled <- false);
  cb.Raft.Node.on_transfer_aborted <-
    (fun ~reason ->
      tracef t "%s: transfer aborted (%s); re-enabling writes" t.id reason;
      if t.role = Primary && Raft.Node.is_leader (raft t) then t.writes_enabled <- true);
  cb.Raft.Node.take_snapshot <- (fun () -> take_snapshot t);
  cb.Raft.Node.install_snapshot <- (fun ~snapshot -> install_snapshot t ~snapshot);
  cb

let make_raft t =
  Raft.Node.create ~metrics:t.metrics ?tracebuf:t.tracebuf ~clock:t.clock
    ~group:t.group ~engine:t.engine ~id:t.id ~region:t.region
    ~send:(fun ~dst msg -> t.send ~dst (Wire.Raft_msg msg))
    ~log:(Raft.Node.log_ops_of_store t.log)
    ~callbacks:(make_callbacks t) ~params:t.params.Params.raft
    ~initial_config:t.initial_config ~durable:t.durable ~trace:t.trace ()

(* Group commit across the Raft boundary: a flush group's appends share
   one binlog fsync, and Raft re-checks commit afterwards because its
   own vote only counts up to the durable index. *)
let install_coalesce t =
  Pipeline.set_coalesce t.pipeline (fun f ->
      Binlog.Log_store.with_batched_fsync t.log f;
      Raft.Node.notify_log_synced (raft t))

(* ----- client write path (§3.4) ----- *)

let reject t ~reason ~reply =
  t.writes_rejected <- t.writes_rejected + 1;
  Obs.Metrics.bump t.metrics "server.writes_rejected";
  reply (Wire.Rejected reason)

let submit_write t ~table ~ops ~reply =
  if t.crashed then () (* no response: the client times out *)
  else if t.role <> Primary || not t.writes_enabled then
    reject t ~reason:"server is read-only" ~reply
  else if not (Raft.Node.is_leader (raft t)) then
    reject t ~reason:"not the raft leader" ~reply
  else begin
    (* Prepare in the engine on the client connection's thread. *)
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.params.Params.prepare_us (fun () ->
           if t.crashed || t.role <> Primary || not t.writes_enabled then
             reject t ~reason:"demoted during prepare" ~reply
           else begin
             let gtid = Binlog.Gtid.make ~source:t.id ~gno:t.next_gno in
             let writes = List.map (fun op -> (table, op)) ops in
             match Storage.Engine.prepare t.storage ~gtid ~writes with
             | exception Storage.Engine.Lock_conflict _ ->
               reject t ~reason:"lock wait conflict" ~reply
             | () ->
               (* Claim the gno only once the prepare sticks: burning it
                  on a lock-conflict reject would leave a permanent hole
                  in every gtid_executed set, fragmenting the interval
                  lists that each binlog append updates. *)
               t.next_gno <- t.next_gno + 1;
               let xid = t.next_xid in
               t.next_xid <- Int64.add t.next_xid 1L;
               let events =
                 [
                   Binlog.Event.make (Binlog.Event.Gtid_event gtid);
                   Binlog.Event.make (Binlog.Event.Table_map { table });
                   Binlog.Event.make (Binlog.Event.Write_rows { table; ops });
                   Binlog.Event.make (Binlog.Event.Xid { xid });
                 ]
               in
               let payload = Binlog.Entry.Transaction { gtid; events } in
               let opid = ref Binlog.Opid.zero in
               Pipeline.submit t.pipeline
                 {
                   Pipeline.label = Binlog.Gtid.to_string gtid;
                   flush =
                     (fun () ->
                       match Raft.Node.client_append (raft t) payload with
                       | Ok assigned ->
                         opid := assigned;
                         let index = Binlog.Opid.index assigned in
                         (* Stamp the WRITESET dependency interval into the
                            entry's Gtid_event metadata at flush time, like
                            binlog_transaction_dependency_tracking=WRITESET.
                            The entry was only just appended; Raft sends it
                            by reference on future network events, so the
                            stamp replicates with it. *)
                         (match Binlog.Log_store.entry_at t.log index with
                         | Some entry ->
                           let keys =
                             List.map
                               (fun op -> (table, Binlog.Event.row_op_key op))
                               ops
                           in
                           Binlog.Entry.set_deps entry
                             ~last_committed:
                               (Binlog.Writeset.stamp t.writeset ~index ~keys)
                             ~sequence_number:index
                         | None -> ());
                         trace_event t ~stage:"flush" ~term:(Binlog.Opid.term assigned)
                           ~index;
                         Ok index
                       | Error e -> Error e);
                   finish =
                     (fun ~ok ->
                       if ok && Storage.Engine.is_prepared t.storage gtid then begin
                         Storage.Engine.commit_prepared t.storage ~gtid ~opid:!opid;
                         t.writes_committed <- t.writes_committed + 1;
                         Obs.Metrics.bump t.metrics "server.writes_committed";
                         trace_event t ~stage:"engine-commit"
                           ~term:(Binlog.Opid.term !opid) ~index:(Binlog.Opid.index !opid);
                         reply (Wire.Committed { gtid })
                       end
                       else begin
                         Storage.Engine.rollback_prepared t.storage ~gtid;
                         reject t ~reason:"aborted (role change)" ~reply
                       end);
                 }
           end))
  end

(* ----- read path (consistency tiers, Read.Service) ----- *)

(* Reads are served from the local engine on any MySQL role (Table 1:
   leader, follower and learner all serve reads; replicas may lag). *)
let read t ~table ~key =
  if t.crashed then Error "server is down"
  else Ok (Storage.Engine.get t.storage ~table ~key)

(* The ops closures capture [t], not the current Raft node: [restart]
   swaps in a fresh node and the service must follow it. *)
let make_read_service t =
  let ops =
    {
      (* The service measures staleness and retry windows on the host's
         clock: a drifting clock misjudges anchor age exactly as a real
         bounded-staleness implementation would. *)
      Read.Service.now = (fun () -> Sim.Clock.now t.clock);
      schedule = (fun ~delay f -> ignore (Sim.Clock.schedule t.clock ~delay f));
      read_index = (fun k -> Raft.Node.remote_read_index (raft t) k);
      lease_valid = (fun () -> Raft.Node.lease_valid (raft t));
      staleness_anchor = (fun () -> Raft.Node.staleness_anchor (raft t));
      applied_index = (fun () -> applied_through t);
      wait_applied = (fun index k -> wait_applied t index k);
      wait_gtid = (fun gtid ~timeout k -> wait_for_executed_gtid t gtid ~timeout ~k);
      get = (fun ~table ~key -> Storage.Engine.get t.storage ~table ~key);
    }
  in
  let params =
    {
      Read.Service.default_params with
      retry_hint = t.params.Params.raft.Raft.Node.heartbeat_interval;
    }
  in
  Read.Service.create ~params ~metrics:t.metrics ~ops ()

let read_service t =
  match t.read_service with
  | Some s -> s
  | None ->
    let s = make_read_service t in
    t.read_service <- Some s;
    s

(* Serve one read at the requested consistency level.  [k] fires exactly
   once unless the server is down (then the client times out). *)
let serve_read t ~level ~table ~key k =
  if t.crashed then ()
  else Read.Service.serve (read_service t) ~level ~table ~key k

(* ----- log maintenance (§A.1) ----- *)

(* FLUSH BINARY LOGS on the primary: the rotate event goes through the
   commit pipeline and Raft; the file switch happens once it is
   consensus committed. *)
let flush_binary_logs t =
  if t.role <> Primary || not (Raft.Node.is_leader (raft t)) then
    Error "FLUSH BINARY LOGS: not the primary"
  else begin
    Pipeline.submit t.pipeline
      {
        Pipeline.label = "rotate";
        flush =
          (fun () ->
            match
              Raft.Node.client_append (raft t)
                (Binlog.Entry.Rotate_marker { next_file = "next" })
            with
            | Ok opid -> Ok (Binlog.Opid.index opid)
            | Error e -> Error e);
        finish = (fun ~ok -> if ok then Binlog.Log_store.rotate t.log);
      };
    Ok ()
  end

(* PURGE BINARY LOGS: MySQL only purges by consulting Raft's
   region-watermark heuristic (§A.1), so severely lagging out-of-region
   members can still request old files.  Whole closed files whose last
   entry is at or below the safe index are dropped; returns the number of
   files purged.

   The local applier's watermark floors the purge: entries the engine
   has not applied yet are the only replayable copy of that data on this
   host, and any future engine-checkpoint snapshot must cover everything
   purged — a checkpoint can only cover what has been applied. *)
let purge_binary_logs t =
  let safe = min (Raft.Node.safe_purge_index (raft t)) (applied_through t) in
  let rec boundary purged = function
    | (name, first, last, closed) :: rest ->
      if closed && first > 0 && last <= safe && rest <> [] then boundary (purged + 1) rest
      else (purged, Some name)
    | [] -> (purged, None)
  in
  match boundary 0 (Binlog.Log_store.file_ranges t.log) with
  | 0, _ | _, None -> 0
  | purged, Some keep_from ->
    Binlog.Log_store.purge_to t.log ~file:keep_from;
    tracef t "%s: purged %d binlog files (safe index %d)" t.id purged safe;
    purged

(* ----- crash / restart ----- *)

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    t.orchestration_epoch <- t.orchestration_epoch + 1;
    Raft.Node.stop (raft t);
    Applier.stop (applier t);
    ignore (Pipeline.abort_all t.pipeline);
    (* Fail parked readers: their sessions died with the server. *)
    t.apply_waiters <- [];
    Hashtbl.iter
      (fun _ ws ->
        List.iter
          (fun w ->
            if not !(w.gw_done) then begin
              w.gw_done := true;
              Sim.Engine.cancel w.gw_timer;
              w.gw_k false
            end)
          ws)
      t.gtid_waiters;
    Hashtbl.reset t.gtid_waiters;
    (* In-memory state is gone; prepared transactions will be rolled back
       by recovery at restart (§A.2). *)
    t.writes_enabled <- false;
    t.role <- Replica;
    tracef t "%s: CRASHED" t.id
  end

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    t.orchestration_epoch <- t.orchestration_epoch + 1;
    let rolled_back = Storage.Engine.crash_recover t.storage in
    (* Log recovery: an unsynced binlog tail may be gone after the crash
       (torn-tail fault); Raft never acked those entries, so losing them
       is safe — the leader re-replicates them. *)
    let torn = Binlog.Log_store.crash_recover_log t.log in
    (* CRC sweep: unlike the torn tail, bit rot can hit entries this node
       already acked toward commit.  Truncate from the first corrupt
       entry (normal replication re-fetches the suffix) and clean up the
       GTID metadata of dropped transactions, like any truncation. *)
    let corruption = Binlog.Log_store.scan_for_corruption t.log in
    (match corruption with
    | Some r ->
      List.iter
        (fun e ->
          match Binlog.Entry.gtid e with
          | Some gtid -> t.truncated_gtids <- gtid :: t.truncated_gtids
          | None -> ())
        r.Binlog.Log_store.cr_dropped;
      tracef t "%s: recovery found corrupt entry at index %d; truncated %d entries"
        t.id r.Binlog.Log_store.cr_first_corrupt
        (List.length r.Binlog.Log_store.cr_dropped)
    | None -> ());
    Binlog.Writeset.clear t.writeset;
    t.pipeline <-
      Pipeline.create ~metrics:t.metrics ~engine:t.engine ~params:t.params
        ~is_primary_path:true ();
    Binlog.Log_store.switch_mode t.log Binlog.Log_store.Relay;
    t.raft <- Some (make_raft t);
    install_coalesce t;
    (* The dropped suffix may contain committed data: fence this node's
       votes below the pre-truncation tail until replication restores it,
       so no quorum ignorant of those entries can form. *)
    (match corruption with
    | Some r ->
      Raft.Node.set_vote_floor (raft t) r.Binlog.Log_store.cr_pre_truncation_tail
    | None -> ());
    Pipeline.notify_commit_index t.pipeline (Raft.Node.commit_index (raft t));
    start_applier_from_recovery_point t;
    (* Rebuild the applied-through cursor: the crash may have torn
       entries the old cursor had passed.  It cannot be re-walked from
       index 1 on a compacted log — the purged prefix has no entries to
       scan — so restart it from what the engine provably holds: the
       last committed transaction, and the purge boundary (purging below
       the applied watermark is refused, so the purged prefix was
       applied). *)
    t.exec_index <-
      max
        (Binlog.Opid.index (Storage.Engine.last_committed_opid t.storage))
        (Binlog.Log_store.purged_below t.log - 1);
    advance_exec_cursor t;
    tracef t "%s: restarted (recovery rolled back %d prepared txns, lost %d torn log entries)"
      t.id rolled_back (List.length torn)
  end

(* ----- message handling ----- *)

let handle_message t ~src msg =
  if not t.crashed then
    match msg with
    | Wire.Raft_msg m -> Raft.Node.handle_message (raft t) ~src m
    | Wire.Write_request { write_id; table; ops; client } ->
      let floor = Option.value (Hashtbl.find_opt t.client_write_floor client) ~default:0 in
      if write_id <= floor then
        (* duplicated (or artifact-reordered) frame: already executed or
           superseded — never re-execute; the client's timeout covers the
           no-reply case *)
        ()
      else begin
        Hashtbl.replace t.client_write_floor client write_id;
        submit_write t ~table ~ops ~reply:(fun outcome ->
            t.send ~dst:client (Wire.Write_reply { write_id; outcome }))
      end
    | Wire.Read_request { read_id; level; read_table; key; read_client } ->
      serve_read t ~level ~table:read_table ~key (fun outcome ->
          if not t.crashed then
            let outcome =
              match outcome with
              | Read.Service.Value v -> Wire.Read_value v
              | Read.Service.Rejected { reason; retry_after } ->
                Wire.Read_rejected { reason; retry_after }
            in
            t.send ~dst:read_client (Wire.Read_reply { read_id; outcome }))
    | Wire.Write_reply _ | Wire.Read_reply _ -> () (* servers don't issue requests *)

(* ----- construction ----- *)

let create ?metrics ?tracebuf ?clock ?(group = 0) ~engine ~id ~region ~replicaset
    ~send ~discovery ~params ~initial_config ~trace () =
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create ~node:id () in
  let clock = match clock with Some c -> c | None -> Sim.Clock.create ~engine () in
  let t =
    {
      id;
      region;
      group;
      replicaset;
      engine;
      clock;
      trace;
      params;
      send;
      discovery;
      initial_config;
      storage = Storage.Engine.create ();
      log = Binlog.Log_store.create ~metrics ~mode:Binlog.Log_store.Relay ();
      durable = Raft.Node.fresh_durable ();
      writeset = Binlog.Writeset.create ~capacity:params.Params.writeset_history_size;
      raft = None;
      pipeline = Pipeline.create ~metrics ~engine ~params ~is_primary_path:true ();
      applier = None;
      role = Replica;
      writes_enabled = false;
      crashed = false;
      next_gno = 1;
      next_xid = 1L;
      orchestration_epoch = 0;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      promotions = 0;
      demotions = 0;
      writes_committed = 0;
      writes_rejected = 0;
      truncated_gtids = [];
      metrics;
      tracebuf;
      exec_index = 0;
      apply_waiters = [];
      gtid_waiters = Hashtbl.create 32;
      read_service = None;
      client_write_floor = Hashtbl.create 16;
    }
  in
  install_commit_listener t;
  t.applier <-
    Some
      (Applier.create ~metrics ~engine ~params
         ~process:(fun entry ~live ~on_submitted ~on_done ->
           applier_process t entry ~live ~on_submitted ~on_done)
         ());
  t.raft <- Some (make_raft t);
  install_coalesce t;
  start_applier_from_recovery_point t;
  t

let describe t =
  Printf.sprintf "%s [%s%s] %s | engine: %d txns | %s" t.id (role_to_string t.role)
    (if t.writes_enabled then ",rw" else ",ro")
    (Raft.Node.describe (raft t))
    (Storage.Engine.committed_count t.storage)
    (Binlog.Log_store.describe t.log)
