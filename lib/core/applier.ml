(* The replica's applier thread (§3.5).

   Raft writes incoming transactions to the relay log and signals the
   applier; the applier picks them up in log order, executes the RBR
   payload (preparing the transaction in the engine), and pushes it into
   the same three-stage commit pipeline used by the primary, where it
   waits for the consensus-commit marker before engine commit.

   [applied_index] is the highest log index whose effects are durably in
   the engine with nothing earlier missing — what promotion step 2 waits
   on to reach the no-op, and what positions the applier cursor after a
   role change (§3.3 demotion step 5). *)

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  mutable running : bool;
  mutable queue : Binlog.Entry.t Queue.t;
  mutable busy : bool;
  mutable applied_index : int;
  mutable next_expected : int; (* next log index to enqueue *)
  mutable applied_txns : int;
  mutable generation : int; (* bumped on start/stop to fence stale callbacks *)
  process :
    Binlog.Entry.t -> on_submitted:(unit -> unit) -> on_done:(ok:bool -> unit) -> unit;
    (* prepare + pipeline submission; [on_submitted] fires once the entry
       is in the pipeline (its commit order is pinned), [on_done] after
       engine commit *)
  m_applied : Obs.Metrics.counter;
  m_queue_depth : Obs.Metrics.gauge;
}

let create ?metrics ~engine ~params ~process () =
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    engine;
    params;
    running = false;
    queue = Queue.create ();
    busy = false;
    applied_index = 0;
    next_expected = 1;
    applied_txns = 0;
    generation = 0;
    process;
    m_applied = Obs.Metrics.counter m "applier.txns_applied";
    m_queue_depth = Obs.Metrics.gauge m "applier.queue_depth";
  }

let applied_index t = t.applied_index

let applied_txns t = t.applied_txns

let is_running t = t.running

let update_depth t =
  Obs.Metrics.set_gauge t.m_queue_depth (float_of_int (Queue.length t.queue))

(* Execute entries serially (the applier thread).  The next entry is not
   picked up until the current one is *submitted* to the commit pipeline
   ([on_submitted]) — but without waiting for engine commit: the pipeline
   is FIFO, so submission order pins commit order (MySQL's
   slave_preserve_commit_order) while completions still overlap, which is
   what lets a replica keep up with a group-committing primary.  Waiting
   for submission rather than returning immediately matters when a
   prepare hits a row-lock conflict and must retry: later entries must
   not slip into the pipeline ahead of it, or the replica would engine-
   commit out of log order and the recovery cursor (§3.3 step 5) could
   skip the stalled transaction after a crash. *)
let rec work t =
  if t.running && not t.busy then
    match Queue.take_opt t.queue with
    | None -> ()
    | Some entry ->
      t.busy <- true;
      update_depth t;
      let index = Binlog.Entry.index entry in
      let gen = t.generation in
      let cost =
        match Binlog.Entry.payload entry with
        | Binlog.Entry.Transaction _ -> t.params.Params.apply_per_txn_us
        | _ -> 1.0 (* noop / rotate / config: nothing to execute *)
      in
      ignore
        (Sim.Engine.schedule t.engine ~delay:cost (fun () ->
             let submitted = ref false in
             t.process entry
               ~on_submitted:(fun () ->
                 if (not !submitted) && t.generation = gen then begin
                   submitted := true;
                   t.busy <- false;
                   work t
                 end)
               ~on_done:(fun ~ok ->
                 if ok && t.running && t.generation = gen then begin
                   t.applied_index <- max t.applied_index index;
                   if Binlog.Entry.is_transaction entry then begin
                     t.applied_txns <- t.applied_txns + 1;
                     Obs.Metrics.incr t.m_applied
                   end
                 end)))

(* Raft signal: new entries are in the relay log. *)
let signal t entries =
  if t.running then begin
    List.iter
      (fun e ->
        if Binlog.Entry.index e >= t.next_expected then begin
          Queue.add e t.queue;
          t.next_expected <- Binlog.Entry.index e + 1
        end)
      entries;
    update_depth t;
    ignore (Sim.Engine.schedule t.engine ~delay:t.params.Params.applier_wakeup_us (fun () -> work t))
  end

(* Truncation: drop queued entries at/above the truncation point and
   rewind the cursor. *)
let handle_truncation t ~from_index =
  let keep = Queue.create () in
  Queue.iter
    (fun e -> if Binlog.Entry.index e < from_index then Queue.add e keep)
    t.queue;
  t.queue <- keep;
  if t.next_expected > from_index then t.next_expected <- from_index;
  if t.applied_index >= from_index then t.applied_index <- from_index - 1

(* Start (or restart) the applier with its cursor positioned from the
   engine's recovery point; [backlog] is the relay-log suffix after that
   point. *)
let start t ~from_index ~backlog =
  t.running <- true;
  t.generation <- t.generation + 1;
  Queue.clear t.queue;
  t.busy <- false;
  t.applied_index <- from_index - 1;
  t.next_expected <- from_index;
  signal t backlog

let stop t =
  t.running <- false;
  t.generation <- t.generation + 1;
  Queue.clear t.queue;
  t.busy <- false;
  update_depth t

let queue_length t = Queue.length t.queue
