(* The replica's applier (§3.5), as a WRITESET-driven parallel scheduler.

   Raft writes incoming transactions to the relay log and signals the
   applier.  A coordinator walks the relay log strictly in order and
   dispatches each entry to one of [applier_workers] simulated worker
   lanes once its dependency interval allows: a transaction stamped
   (last_committed, sequence_number) by the primary's writeset tracker
   may start executing as soon as last_committed <= applied_index (the
   low-water-mark of engine-committed indexes), because every earlier
   transaction it conflicts with is at or below that mark.  Unstamped
   entries (no-ops, config changes, rotates, pre-writeset transactions)
   act as barriers: they wait until everything earlier has been
   submitted, which is exactly the old serial applier's schedule.

   Only the *execute* phase (apply_per_txn_us) runs concurrently.
   Submission into the three-stage commit pipeline stays in log order —
   a worker that finishes executing entry i+1 parks it until entry i has
   been submitted — so the FIFO pipeline still pins engine-commit order
   (MySQL's slave_preserve_commit_order) and the recovery cursor
   argument of §3.3 step 5 is untouched.

   [applied_index] is a true low-water-mark over out-of-order engine
   commits: completions above a gap are parked in [done_set] and the
   mark only advances while contiguous.  It remains what promotion
   step 2 waits on and what positions the cursor after a role change.

   Fencing: every dispatched entry carries a liveness token.  stop/start
   invalidate all tokens; log truncation invalidates only tokens at or
   above the truncation point (plus unsubmitted entries below it, which
   are salvaged back onto the queue to re-execute) while entries already
   submitted to the pipeline below the point stay live — their commits
   are real and must still advance the mark.  The token is also handed
   to [process] so the server can abandon row-lock retry loops whose
   entry has been truncated away. *)

type token = { mutable live : bool }

type lane_state =
  | Executing (* worker lane busy simulating apply_per_txn_us *)
  | Ready (* executed; parked until its turn to submit *)
  | Submitting (* process called; prepare may be retrying a row lock *)
  | Submitted (* in the pipeline; lane released; awaiting engine commit *)

type inflight = { entry : Binlog.Entry.t; tok : token; mutable state : lane_state }

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  mutable running : bool;
  mutable queue : Binlog.Entry.t Queue.t; (* relay-log order, not yet dispatched *)
  inflight : (int, inflight) Hashtbl.t; (* index -> dispatched, not yet done *)
  done_set : (int, unit) Hashtbl.t; (* committed above the low-water-mark *)
  mutable applied_index : int; (* lwm of engine-committed indexes *)
  mutable next_expected : int; (* next log index to enqueue *)
  mutable next_to_submit : int; (* submission cursor (log order) *)
  mutable applied_txns : int;
  mutable commit_index : int; (* last consensus commit index seen, for lag *)
  mutable dep_stalls : int;
  mutable last_stall_index : int; (* dedup stall counting per head entry *)
  process :
    Binlog.Entry.t ->
    live:(unit -> bool) ->
    on_submitted:(unit -> unit) ->
    on_done:(ok:bool -> unit) ->
    unit;
    (* prepare + pipeline submission; [live] lets retry loops check the
       entry is still wanted, [on_submitted] fires once the entry is in
       the pipeline (its commit order is pinned), [on_done] after engine
       commit *)
  m_applied : Obs.Metrics.counter;
  m_queue_depth : Obs.Metrics.gauge;
  m_workers_busy : Obs.Metrics.gauge;
  m_dep_stalls : Obs.Metrics.counter;
  m_lag : Obs.Metrics.gauge;
}

let create ?metrics ~engine ~params ~process () =
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    engine;
    params;
    running = false;
    queue = Queue.create ();
    inflight = Hashtbl.create 64;
    done_set = Hashtbl.create 64;
    applied_index = 0;
    next_expected = 1;
    next_to_submit = 1;
    applied_txns = 0;
    commit_index = 0;
    dep_stalls = 0;
    last_stall_index = -1;
    process;
    m_applied = Obs.Metrics.counter m "applier.txns_applied";
    m_queue_depth = Obs.Metrics.gauge m "applier.queue_depth";
    m_workers_busy = Obs.Metrics.gauge m "applier.workers_busy";
    m_dep_stalls = Obs.Metrics.counter m "applier.dep_stalls";
    m_lag = Obs.Metrics.gauge m "applier.lag";
  }

let applied_index t = t.applied_index

let applied_txns t = t.applied_txns

let dep_stalls t = t.dep_stalls

let is_running t = t.running

let workers t = max 1 t.params.Params.applier_workers

(* Lanes are held from dispatch until on_submitted (a worker owns its
   transaction through execution, parking and prepare, like a real MTS
   worker thread); submitted entries wait in the pipeline lane-free. *)
let busy_workers t =
  Hashtbl.fold
    (fun _ fl acc -> match fl.state with Submitted -> acc | _ -> acc + 1)
    t.inflight 0

let queue_length t = Queue.length t.queue

let update_gauges t =
  Obs.Metrics.set_gauge t.m_queue_depth (float_of_int (Queue.length t.queue));
  Obs.Metrics.set_gauge t.m_workers_busy (float_of_int (busy_workers t))

let update_lag t =
  Obs.Metrics.set_gauge t.m_lag (float_of_int (max 0 (t.commit_index - t.applied_index)))

let note_commit_index t ci =
  if ci > t.commit_index then begin
    t.commit_index <- ci;
    update_lag t
  end

(* May the relay-log head start executing?  Stamped transactions gate on
   the engine-committed low-water-mark; everything else (and pre-writeset
   transactions) is a barrier that waits for all earlier submissions —
   the serial applier's schedule. *)
let dep_ok t entry =
  let barrier () = Binlog.Entry.index entry = t.next_to_submit in
  match Binlog.Entry.payload entry with
  | Binlog.Entry.Transaction _ -> (
    match Binlog.Entry.deps entry with
    | Some d -> d.Binlog.Entry.last_committed <= t.applied_index
    | None -> barrier ())
  | _ -> barrier ()

let record_done t index entry =
  if index > t.applied_index && not (Hashtbl.mem t.done_set index) then begin
    Hashtbl.replace t.done_set index ();
    while Hashtbl.mem t.done_set (t.applied_index + 1) do
      Hashtbl.remove t.done_set (t.applied_index + 1);
      t.applied_index <- t.applied_index + 1
    done;
    if Binlog.Entry.is_transaction entry then begin
      t.applied_txns <- t.applied_txns + 1;
      Obs.Metrics.incr t.m_applied
    end;
    update_lag t
  end

(* Submit ready entries to the commit pipeline strictly in log order.
   At most one entry is in the Submitting window at a time: on_submitted
   fires synchronously unless prepare hits a row-lock conflict, so the
   window is exactly the conflict-retry loop — later entries must not
   slip into the pipeline ahead of it (commit order), which also means a
   retrying prepare head-of-line-blocks submission just like the serial
   applier did. *)
let rec try_submit t =
  if t.running && not (Hashtbl.fold (fun _ fl acc -> acc || fl.state = Submitting) t.inflight false)
  then
    match Hashtbl.find_opt t.inflight t.next_to_submit with
    | Some fl when fl.state = Ready ->
      fl.state <- Submitting;
      let index = Binlog.Entry.index fl.entry in
      let tok = fl.tok in
      let submitted = ref false in
      t.process fl.entry
        ~live:(fun () -> tok.live)
        ~on_submitted:(fun () ->
          if (not !submitted) && tok.live then begin
            submitted := true;
            fl.state <- Submitted;
            t.next_to_submit <- index + 1;
            update_gauges t;
            try_submit t;
            pump t
          end)
        ~on_done:(fun ~ok ->
          if tok.live then begin
            Hashtbl.remove t.inflight index;
            if ok then record_done t index fl.entry;
            pump t
          end)
    | _ -> ()

(* The coordinator: dispatch relay-log-head entries to free worker lanes
   while their dependency intervals allow. *)
and pump t =
  if t.running then begin
    let continue = ref true in
    while !continue do
      match Queue.peek_opt t.queue with
      | None -> continue := false
      | Some entry ->
        if busy_workers t >= workers t then continue := false
        else if not (dep_ok t entry) then begin
          (* A free lane is idle because of a dependency stall: count it
             once per head entry so the metric reflects distinct stalls,
             not scheduler wakeups. *)
          let index = Binlog.Entry.index entry in
          if t.last_stall_index <> index then begin
            t.last_stall_index <- index;
            t.dep_stalls <- t.dep_stalls + 1;
            Obs.Metrics.incr t.m_dep_stalls
          end;
          continue := false
        end
        else begin
          ignore (Queue.pop t.queue);
          let index = Binlog.Entry.index entry in
          let tok = { live = true } in
          let fl = { entry; tok; state = Executing } in
          Hashtbl.replace t.inflight index fl;
          let cost =
            match Binlog.Entry.payload entry with
            | Binlog.Entry.Transaction _ -> t.params.Params.apply_per_txn_us
            | _ -> 1.0 (* noop / rotate / config: nothing to execute *)
          in
          ignore
            (Sim.Engine.schedule t.engine ~delay:cost (fun () ->
                 if tok.live then begin
                   fl.state <- Ready;
                   try_submit t
                 end))
        end
    done;
    update_gauges t;
    try_submit t
  end

(* Raft signal: new entries are in the relay log. *)
let signal t entries =
  if t.running then begin
    List.iter
      (fun e ->
        if Binlog.Entry.index e >= t.next_expected then begin
          Queue.add e t.queue;
          t.next_expected <- Binlog.Entry.index e + 1
        end)
      entries;
    update_gauges t;
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.params.Params.applier_wakeup_us (fun () -> pump t))
  end

(* Truncation (a Raft rewind): everything at/above the truncation point
   is gone and must be fenced across all lanes — tokens are invalidated
   so in-flight execute timers, pipeline callbacks and server-side
   row-lock retry loops all become no-ops.  Unsubmitted entries *below*
   the point are still wanted: salvage them back onto the queue (they
   re-execute, a minor timing cost).  Entries below the point already in
   the pipeline keep their tokens — their engine commits are real and
   must still advance the low-water-mark. *)
let handle_truncation t ~from_index =
  let salvaged = ref [] in
  Hashtbl.iter
    (fun index fl ->
      if index >= from_index then fl.tok.live <- false
      else
        match fl.state with
        | Executing | Ready | Submitting ->
          fl.tok.live <- false;
          salvaged := fl.entry :: !salvaged
        | Submitted -> ())
    t.inflight;
  let keep =
    Hashtbl.fold
      (fun index fl acc -> if index < from_index && fl.state = Submitted then (index, fl) :: acc else acc)
      t.inflight []
  in
  Hashtbl.reset t.inflight;
  List.iter (fun (index, fl) -> Hashtbl.replace t.inflight index fl) keep;
  let requeue =
    List.sort (fun a b -> compare (Binlog.Entry.index a) (Binlog.Entry.index b)) !salvaged
  in
  let old_queue = t.queue in
  t.queue <- Queue.create ();
  List.iter (fun e -> Queue.add e t.queue) requeue;
  Queue.iter (fun e -> if Binlog.Entry.index e < from_index then Queue.add e t.queue) old_queue;
  Hashtbl.iter (fun index () -> if index >= from_index then Hashtbl.remove t.done_set index)
    (Hashtbl.copy t.done_set);
  if t.next_expected > from_index then t.next_expected <- from_index;
  if t.applied_index >= from_index then t.applied_index <- from_index - 1;
  if t.next_to_submit > from_index then t.next_to_submit <- from_index;
  t.last_stall_index <- -1;
  update_gauges t;
  if t.running && not (Queue.is_empty t.queue) then
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.params.Params.applier_wakeup_us (fun () -> pump t))

let invalidate_all t =
  Hashtbl.iter (fun _ fl -> fl.tok.live <- false) t.inflight;
  Hashtbl.reset t.inflight;
  Hashtbl.reset t.done_set

(* Start (or restart) the applier with its cursor positioned from the
   engine's recovery point; [backlog] is the relay-log suffix after that
   point. *)
let start t ~from_index ~backlog =
  t.running <- true;
  invalidate_all t;
  Queue.clear t.queue;
  t.applied_index <- from_index - 1;
  t.next_expected <- from_index;
  t.next_to_submit <- from_index;
  t.last_stall_index <- -1;
  signal t backlog

let stop t =
  t.running <- false;
  invalidate_all t;
  Queue.clear t.queue;
  update_gauges t
