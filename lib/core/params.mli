(** Tunable costs of the simulated MySQL server, in microseconds: the
    CPU/storage work that is not network latency.  Defaults are
    calibrated so the sysbench experiment of §6.1 lands in the paper's
    regime (sub-millisecond commits under in-region quorums). *)

type t = {
  prepare_us : float;  (** engine prepare incl. locks + WAL markers *)
  flush_base_us : float;  (** binlog group flush: fixed fsync cost *)
  flush_per_txn_us : float;  (** marginal cost per txn in a flush group *)
  raft_stamp_us : float;  (** MyRaft extra: checksum + compress + OpId (§3.4) *)
  commit_base_us : float;  (** engine group commit: fixed cost *)
  commit_per_txn_us : float;
  group_commit_max : int;
      (** max transactions merged into one engine commit cycle: groups
          released by consensus while a cycle runs share the next cycle's
          [commit_base_us] up to this many transactions *)
  group_commit_deadline_us : float;
      (** > 0 holds an otherwise-idle commit stage open this long before
          the fsync, widening groups under light load at a latency cost *)
  apply_per_txn_us : float;  (** applier executing an RBR payload *)
  applier_wakeup_us : float;
  applier_workers : int;  (** parallel apply worker lanes (1 = serial) *)
  writeset_history_size : int;  (** primary-side writeset history capacity *)
  rewire_logs_us : float;  (** §3.3 promotion step costs... *)
  enable_writes_us : float;
  publish_discovery_us : float;
  catchup_check_interval_us : float;
  abort_in_flight_us : float;  (** ...and demotion step costs *)
  disable_writes_us : float;
  applier_start_us : float;
  max_binlog_bytes : int;  (** rotation budget consulted by the janitor *)
  raft : Raft.Node.params;
}

val default : t
