(* Replicaset assembly: builds a full MyRaft ring (MySQL servers +
   logtailers) on a simulated multi-region network, wires service
   discovery, and exposes the control operations the experiments use
   (bootstrap, crash/restart, partitions, leadership transfer).

   Two modes:
   - standalone (the default): the cluster owns its engine, topology,
     network, trace, discovery and trace ring — one consensus group in
     the world, exactly the pre-shard behaviour;
   - shared (multi-Raft): the embedder (Shard.Multi) hands in one
     engine/trace/discovery plus a [transport] — closures over a shared
     multiplexing network — and many group clusters ride the same
     physical nodes.  The cluster then owns no network of its own and
     every wire/fault operation routes through the transport. *)

type member_spec = {
  spec_id : string;
  spec_region : string;
  spec_kind : Raft.Types.member_kind;
  spec_voter : bool;
}

let mysql ?(voter = true) id region =
  { spec_id = id; spec_region = region; spec_kind = Raft.Types.Mysql_server; spec_voter = voter }

let logtailer id region =
  { spec_id = id; spec_region = region; spec_kind = Raft.Types.Logtailer; spec_voter = true }

type node = Mysql_node of Server.t | Tailer_node of Logtailer.t

(* The wire/fault surface a group cluster needs from whoever owns the
   physical network.  In standalone mode these close over the cluster's
   own [Sim.Network]; in shared mode over the shard mux. *)
type transport = {
  tr_send : src:string -> dst:string -> Wire.t -> unit;
  tr_register : string -> (src:string -> Wire.t -> unit) -> unit;
  tr_add_node : id:string -> region:string -> unit; (* must be idempotent *)
  tr_set_down : string -> unit;
  tr_set_up : string -> unit;
  tr_isolate : string -> unit;
  tr_heal : string -> unit;
  tr_set_link_latency : a:string -> b:string -> latency:float -> unit;
}

(* Shared infrastructure for one group of a multi-Raft deployment. *)
type shared = {
  sh_engine : Sim.Engine.t;
  sh_trace : Sim.Trace.t;
  sh_discovery : Service_discovery.t;
  sh_tracebuf : Obs.Tracebuf.t;
  sh_group : int; (* this cluster's group tag *)
  sh_clock_of : string -> Sim.Clock.t option;
      (* per-physical-node clocks: every group instance on a node shares
         its oscillator, so injected clock faults hit them all alike *)
  sh_transport : transport;
}

type t = {
  engine : Sim.Engine.t;
  network : Wire.t Sim.Network.t option; (* None in shared (multi-Raft) mode *)
  transport : transport;
  trace : Sim.Trace.t;
  discovery : Service_discovery.t;
  replicaset : string;
  group : int;
  clock_override : string -> Sim.Clock.t option;
  params : Params.t;
  nodes : (string, node) Hashtbl.t;
  mutable member_order : string list;
  initial_config : Raft.Types.config;
  tracebuf : Obs.Tracebuf.t; (* one OpId-correlated ring shared by all nodes *)
}

let engine t = t.engine

let network t =
  match t.network with
  | Some n -> n
  | None -> invalid_arg "Cluster.network: shared-transport (multi-Raft) mode"

let transport t = t.transport

let group t = t.group

let trace t = t.trace

let tracebuf t = t.tracebuf

let discovery t = t.discovery

let replicaset_name t = t.replicaset

let initial_config t = t.initial_config

let params t = t.params

let member_ids t = t.member_order

let node t id = Hashtbl.find_opt t.nodes id

let server t id =
  match node t id with Some (Mysql_node s) -> Some s | _ -> None

let tailer t id =
  match node t id with Some (Tailer_node l) -> Some l | _ -> None

let servers t =
  List.filter_map (fun id -> server t id) t.member_order

(* MySQL members only: the nodes with a storage engine, i.e. the valid
   targets for client reads (logtailers hold logs, not tables). *)
let mysql_ids t =
  List.filter (fun id -> server t id <> None) t.member_order

let tailers t =
  List.filter_map (fun id -> tailer t id) t.member_order

let raft_of t id =
  match node t id with
  | Some (Mysql_node s) -> Some (Server.raft s)
  | Some (Tailer_node l) -> Some (Logtailer.raft l)
  | None -> None

(* The node's local clock (fault-injection point): owned by the
   server/logtailer object, so it survives crash/restart cycles — bit
   like the host's oscillator surviving a process restart. *)
let clock_of t id =
  match node t id with
  | Some (Mysql_node s) -> Some (Server.clock s)
  | Some (Tailer_node l) -> Some (Logtailer.clock l)
  | None -> None

let is_crashed t id =
  match node t id with
  | Some (Mysql_node s) -> Server.is_crashed s
  | Some (Tailer_node l) -> Logtailer.is_crashed l
  | None -> true

let metrics_of t id =
  match node t id with
  | Some (Mysql_node s) -> Some (Server.metrics s)
  | Some (Tailer_node l) -> Some (Logtailer.metrics l)
  | None -> None

(* A registry-shaped view of the network's counters, built on demand:
   sim cannot depend on obs (obs sits above sim), so the network exports
   raw stat rows and the cluster dresses them as metrics.  In shared
   mode the mux owns the network and exports these itself. *)
let network_metrics t =
  let m = Obs.Metrics.create ~node:"network" () in
  (match t.network with
  | None -> ()
  | Some net ->
    Obs.Metrics.bump ~by:(Sim.Network.total_messages net) m "net.messages";
    Obs.Metrics.bump ~by:(Sim.Network.total_bytes net) m "net.bytes";
    Obs.Metrics.bump ~by:(Sim.Network.cross_region_bytes net) m "net.cross_region_bytes";
    Obs.Metrics.bump ~by:(Sim.Network.dropped net) m "net.dropped";
    Obs.Metrics.bump ~by:(Sim.Network.fault_dropped net) m "net.fault_dropped";
    Obs.Metrics.bump ~by:(Sim.Network.duplicated net) m "net.duplicated";
    Obs.Metrics.bump ~by:(Sim.Network.reordered net) m "net.reordered";
    List.iter
      (fun (src, dst, msgs, bytes) ->
        Obs.Metrics.bump ~by:msgs m (Printf.sprintf "net.link.%s->%s.messages" src dst);
        Obs.Metrics.bump ~by:bytes m (Printf.sprintf "net.link.%s->%s.bytes" src dst))
      (Sim.Network.link_stat_rows net);
    List.iter
      (fun (rs, rd, msgs, bytes) ->
        Obs.Metrics.bump ~by:msgs m (Printf.sprintf "net.region.%s->%s.messages" rs rd);
        Obs.Metrics.bump ~by:bytes m (Printf.sprintf "net.region.%s->%s.bytes" rs rd))
      (Sim.Network.region_stat_rows net));
  m

(* Cluster-wide snapshot: every node's registry merged with the
   network-derived one.  Counters sum and histograms pool, so e.g.
   pipeline.txns_committed is the fleet total. *)
let metrics_snapshot t =
  let node_snaps =
    List.filter_map
      (fun id -> Option.map Obs.Metrics.snapshot (metrics_of t id))
      t.member_order
  in
  Obs.Metrics.merge_all ~node:t.replicaset
    (node_snaps @ [ Obs.Metrics.snapshot (network_metrics t) ])

(* The node currently acting as Raft leader, if any. *)
let raft_leader t =
  List.find_opt
    (fun id ->
      (not (is_crashed t id))
      && match raft_of t id with Some r -> Raft.Node.is_leader r | None -> false)
    t.member_order

(* The MySQL server currently serving as writable primary, if any. *)
let primary t =
  List.find_map
    (fun s ->
      if Server.role s = Server.Primary && Server.writes_enabled s && not (Server.is_crashed s)
      then Some s
      else None)
    (servers t)

let config_of_specs specs =
  {
    Raft.Types.members =
      List.map
        (fun s ->
          {
            Raft.Types.id = s.spec_id;
            region = s.spec_region;
            voter = s.spec_voter;
            kind = s.spec_kind;
          })
        specs;
  }

(* A standalone cluster's transport: closures over its own network. *)
let transport_of_network topology network =
  {
    tr_send =
      (fun ~src ~dst msg -> Sim.Network.send network ~src ~dst ~size:(Wire.size msg) msg);
    tr_register = (fun id handler -> Sim.Network.register network id handler);
    tr_add_node =
      (fun ~id ~region ->
        if not (Sim.Topology.mem topology id) then
          Sim.Topology.add_node topology ~id ~region);
    tr_set_down = (fun id -> Sim.Network.set_down network id);
    tr_set_up = (fun id -> Sim.Network.set_up network id);
    tr_isolate = (fun id -> Sim.Network.isolate_node network id);
    tr_heal = (fun id -> Sim.Network.heal_node network id);
    tr_set_link_latency =
      (fun ~a ~b ~latency -> Sim.Network.set_link_latency network ~a ~b ~latency);
  }

(* Construct and wire one node object, register its message handler. *)
let make_node t spec ~initial_config =
  let id = spec.spec_id in
  let send_from ~dst msg = t.transport.tr_send ~src:id ~dst msg in
  let clock = t.clock_override id in
  let n =
    match spec.spec_kind with
    | Raft.Types.Mysql_server ->
      Mysql_node
        (Server.create ~tracebuf:t.tracebuf ?clock ~group:t.group ~engine:t.engine ~id
           ~region:spec.spec_region ~replicaset:t.replicaset ~send:send_from
           ~discovery:t.discovery ~params:t.params ~initial_config ~trace:t.trace ())
    | Raft.Types.Logtailer ->
      Tailer_node
        (Logtailer.create ~tracebuf:t.tracebuf ?clock ~group:t.group ~engine:t.engine
           ~id ~region:spec.spec_region ~send:send_from ~params:t.params
           ~initial_config ~trace:t.trace ())
  in
  Hashtbl.replace t.nodes id n;
  t.transport.tr_register id (fun ~src msg ->
      match Hashtbl.find_opt t.nodes id with
      | Some (Mysql_node server) -> Server.handle_message server ~src msg
      | Some (Tailer_node l) -> Logtailer.handle_message l ~src msg
      | None -> ())

let create ?(seed = 7) ?(params = Params.default) ?(latency = Sim.Latency.default)
    ?(echo_trace = false) ?shared ~replicaset ~members () =
  let engine, network, transport, trace, discovery, tracebuf, group, clock_override =
    match shared with
    | None ->
      let engine = Sim.Engine.create ~seed () in
      let topology = Sim.Topology.create () in
      List.iter
        (fun s -> Sim.Topology.add_node topology ~id:s.spec_id ~region:s.spec_region)
        members;
      let network = Sim.Network.create engine topology ~latency () in
      let trace = Sim.Trace.create ~echo:echo_trace engine in
      let discovery = Service_discovery.create engine in
      ( engine,
        Some network,
        transport_of_network topology network,
        trace,
        discovery,
        Obs.Tracebuf.create (),
        0,
        fun _ -> None )
    | Some sh ->
      (* Physical nodes may already exist (another group registered
         them); tr_add_node is idempotent by contract. *)
      List.iter
        (fun s -> sh.sh_transport.tr_add_node ~id:s.spec_id ~region:s.spec_region)
        members;
      ( sh.sh_engine,
        None,
        sh.sh_transport,
        sh.sh_trace,
        sh.sh_discovery,
        sh.sh_tracebuf,
        sh.sh_group,
        sh.sh_clock_of )
  in
  let initial_config = config_of_specs members in
  let t =
    {
      engine;
      network;
      transport;
      trace;
      discovery;
      replicaset;
      group;
      clock_override;
      params;
      nodes = Hashtbl.create 16;
      member_order = List.map (fun s -> s.spec_id) members;
      initial_config;
      tracebuf;
    }
  in
  List.iter (fun s -> make_node t s ~initial_config) members;
  t

(* Create and wire a brand-new node at runtime (the "allocate and prepare
   a new member" step of §2.2's membership changes).  The node starts
   outside the ring; the caller then issues AddMember on the leader. *)
let add_server t spec =
  if Hashtbl.mem t.nodes spec.spec_id then invalid_arg "Cluster.add_server: duplicate id";
  t.transport.tr_add_node ~id:spec.spec_id ~region:spec.spec_region;
  (* The newcomer's view of the ring: the current leader's config (it is
     not a member yet; the AddMember entry will make it one). *)
  let base_config =
    match raft_leader t with
    | Some leader_id -> (
      match raft_of t leader_id with Some r -> Raft.Node.config r | None -> t.initial_config)
    | None -> t.initial_config
  in
  make_node t spec ~initial_config:base_config;
  t.member_order <- t.member_order @ [ spec.spec_id ]

(* ----- clients ----- *)

let register_client t ~id ~region ~handler =
  t.transport.tr_add_node ~id ~region;
  t.transport.tr_register id handler

let send_from_client t ~client ~dst msg = t.transport.tr_send ~src:client ~dst msg

let set_link_latency t ~a ~b ~latency = t.transport.tr_set_link_latency ~a ~b ~latency

(* ----- time control ----- *)

let run_for t duration = Sim.Engine.run_for t.engine duration

let now t = Sim.Engine.now t.engine

(* Advance time in [step]-sized chunks until [pred] holds or [timeout]
   virtual time elapses.  Returns whether the predicate held. *)
let run_until t ?(step = 10.0 *. Sim.Engine.ms) ~timeout pred =
  let deadline = Sim.Engine.now t.engine +. timeout in
  let rec loop () =
    if pred () then true
    else if Sim.Engine.now t.engine >= deadline then false
    else begin
      Sim.Engine.run_for t.engine step;
      loop ()
    end
  in
  loop ()

(* ----- bootstrap ----- *)

(* Deterministically elect [leader_id] and wait until its MySQL side
   finished promotion (writes enabled, discovery published). *)
let bootstrap t ~leader_id =
  (match raft_of t leader_id with
  | Some r -> ignore (Sim.Engine.schedule t.engine ~delay:Sim.Engine.ms (fun () ->
                          Raft.Node.trigger_election r))
  | None -> invalid_arg ("Cluster.bootstrap: unknown node " ^ leader_id));
  let ok =
    run_until t ~timeout:(30.0 *. Sim.Engine.s) (fun () ->
        match primary t with
        | Some s ->
          Server.id s = leader_id
          && Service_discovery.primary_of t.discovery ~replicaset:t.replicaset
             = Some leader_id
        | None -> false)
  in
  if not ok then failwith ("Cluster.bootstrap: " ^ leader_id ^ " did not become primary")

(* ----- fault injection / control ----- *)

let crash t id =
  (match node t id with
  | Some (Mysql_node s) -> Server.crash s
  | Some (Tailer_node l) -> Logtailer.crash l
  | None -> invalid_arg ("Cluster.crash: unknown node " ^ id));
  t.transport.tr_set_down id

let restart t id =
  t.transport.tr_set_up id;
  match node t id with
  | Some (Mysql_node s) -> Server.restart s
  | Some (Tailer_node l) -> Logtailer.restart l
  | None -> invalid_arg ("Cluster.restart: unknown node " ^ id)

let isolate t id = t.transport.tr_isolate id

let heal t id = t.transport.tr_heal id

(* Ask the current leader to gracefully transfer leadership to [target].
   Returns an error when there is no leader or Raft rejects the call. *)
let transfer_leadership t ~target =
  match raft_leader t with
  | None -> Error "no current leader"
  | Some leader_id -> (
    match raft_of t leader_id with
    | Some r -> Raft.Node.transfer_leadership r ~target
    | None -> Error "leader vanished")

let describe t =
  let lines =
    List.map
      (fun id ->
        match node t id with
        | Some (Mysql_node s) when Server.is_crashed s -> Server.id s ^ " [DOWN]"
        | Some (Mysql_node s) -> Server.describe s
        | Some (Tailer_node l) when Logtailer.is_crashed l -> Logtailer.id l ^ " [DOWN]"
        | Some (Tailer_node l) ->
          Printf.sprintf "%s [logtailer] %s" (Logtailer.id l)
            (Raft.Node.describe (Logtailer.raft l))
        | None -> id ^ ": ?")
      t.member_order
  in
  String.concat "\n" lines

(* ----- canonical topologies ----- *)

(* A compact single-region ring: 1 primary-capable + 2 more MySQL voters. *)
let small_members () =
  [ mysql "mysql1" "r1"; mysql "mysql2" "r1"; mysql "mysql3" "r1" ]

(* One region, MySQL + two logtailers: the minimal FlexiRaft data quorum. *)
let single_region_members () =
  [
    mysql "mysql1" "r1";
    logtailer "lt1a" "r1";
    logtailer "lt1b" "r1";
    mysql "mysql2" "r1";
  ]

(* The evaluation topology of §6.1: a primary with two in-region
   logtailers, five followers in five other regions (two logtailers
   each), and two learners. *)
let paper_members () =
  let region i = Printf.sprintf "r%d" i in
  let per_region i =
    [
      mysql (Printf.sprintf "mysql%d" i) (region i);
      logtailer (Printf.sprintf "lt%da" i) (region i);
      logtailer (Printf.sprintf "lt%db" i) (region i);
    ]
  in
  List.concat_map per_region [ 1; 2; 3; 4; 5; 6 ]
  @ [ mysql ~voter:false "learner1" (region 2); mysql ~voter:false "learner2" (region 3) ]
