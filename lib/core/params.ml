(* Tunable costs of the simulated MySQL server, in microseconds.

   These model CPU / storage work that is not network latency: engine
   prepare, binlog flush (fsync), engine group commit, applier work, and
   the orchestration steps of promotion/demotion.  Defaults are calibrated
   so the sysbench experiment of §6.1 lands in the paper's regime
   (sub-millisecond commits with in-region quorums). *)

type t = {
  prepare_us : float; (* engine prepare incl. locks + WAL markers *)
  flush_base_us : float; (* binlog group flush: fixed fsync cost *)
  flush_per_txn_us : float; (* marginal cost per txn in a flush group *)
  raft_stamp_us : float; (* MyRaft extra: checksum + compress + OpId (§3.4) *)
  commit_base_us : float; (* engine group commit: fixed cost *)
  commit_per_txn_us : float;
  (* Engine-side group-commit widening: when consensus releases several
     flush groups while a commit cycle is running, the next cycle merges
     them and pays [commit_base_us] once, up to [group_commit_max]
     transactions per merged cycle.  A positive
     [group_commit_deadline_us] additionally holds an otherwise-idle
     commit stage open that long before the fsync, trading a little
     latency for wider groups under light load. *)
  group_commit_max : int;
  group_commit_deadline_us : float;
  apply_per_txn_us : float; (* applier executing an RBR payload *)
  applier_wakeup_us : float; (* applier thread scheduling delay *)
  applier_workers : int; (* parallel apply worker lanes (1 = serial) *)
  writeset_history_size : int; (* primary-side writeset history capacity *)
  (* Promotion orchestration step costs (§3.3) *)
  rewire_logs_us : float;
  enable_writes_us : float;
  publish_discovery_us : float;
  catchup_check_interval_us : float;
  (* Demotion orchestration step costs *)
  abort_in_flight_us : float;
  disable_writes_us : float;
  applier_start_us : float;
  (* Binlog rotation policy *)
  max_binlog_bytes : int;
  raft : Raft.Node.params;
}

let default =
  {
    prepare_us = 40.0;
    flush_base_us = 150.0;
    (* The marginal per-txn CPU costs dropped with the zero-allocation
       pass (flush 4 -> 2.5, stamp 5 -> 1.5, engine commit 4 -> 3): the
       payload is marshalled exactly once at entry construction, the
       flush stage writes those memoized bytes as-is, the OpId-time CRC
       runs unboxed over them instead of re-serializing, and the engine
       commit digest streams field-by-field through the same native-int
       CRC rather than building an intermediate Marshal buffer.  The
       fixed fsync costs (flush_base, commit_base) model hardware and
       are unchanged. *)
    flush_per_txn_us = 2.5;
    raft_stamp_us = 1.5;
    commit_base_us = 100.0;
    commit_per_txn_us = 3.0;
    group_commit_max = 512;
    group_commit_deadline_us = 0.0;
    apply_per_txn_us = 60.0;
    applier_wakeup_us = 20.0;
    applier_workers = 4;
    writeset_history_size = 10_000;
    rewire_logs_us = 15_000.0;
    enable_writes_us = 5_000.0;
    publish_discovery_us = 30_000.0;
    catchup_check_interval_us = 5_000.0;
    abort_in_flight_us = 10_000.0;
    disable_writes_us = 3_000.0;
    applier_start_us = 20_000.0;
    max_binlog_bytes = 64 * 1024 * 1024;
    raft = Raft.Node.default_params;
  }
