(* myraft_cli — drive MyRaft scenarios from the command line.

     myraft_cli demo                # quickstart ring + writes
     myraft_cli failover --seed 3   # crash the primary, report downtime
     myraft_cli promote             # graceful transfer, report downtime
     myraft_cli status              # print a ring and its Table-1 roles
     myraft_cli read                # tour the four read consistency levels *)

open Cmdliner

let s = Sim.Engine.s
let ms = Sim.Engine.ms

let default_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let make_cluster ~seed ~echo =
  let cluster =
    Myraft.Cluster.create ~seed ~echo_trace:echo ~replicaset:"cli"
      ~members:(default_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  cluster

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Echo the simulation trace.")

let with_load cluster f =
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"cli-load" ~region:"r1"
      ~client_latency:(200.0 *. Sim.Engine.us) ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:200.0;
  let result = f () in
  Workload.Generator.stop gen;
  Printf.printf "\nworkload: %s\n" (Workload.Generator.summary gen);
  result

let demo seed echo =
  let cluster = make_cluster ~seed ~echo in
  with_load cluster (fun () -> Myraft.Cluster.run_for cluster (5.0 *. s));
  Printf.printf "\nring after 5s of traffic:\n%s\n" (Myraft.Cluster.describe cluster)

let failover seed echo =
  let cluster = make_cluster ~seed ~echo in
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  with_load cluster (fun () ->
      Myraft.Cluster.run_for cluster (2.0 *. s);
      let crash_at = Myraft.Cluster.now cluster in
      Printf.printf ">>> crashing mysql1\n%!";
      Myraft.Cluster.crash cluster "mysql1";
      ignore
        (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
             match Myraft.Cluster.primary cluster with
             | Some srv -> Myraft.Server.id srv <> "mysql1"
             | None -> false));
      Myraft.Cluster.run_for cluster (3.0 *. s);
      let downtime =
        Myraft.Availability.max_downtime probe ~start_time:crash_at
          ~end_time:(Myraft.Cluster.now cluster)
      in
      Printf.printf "\nmeasured failover downtime: %.0f ms\n" (downtime /. ms));
  Printf.printf "\n%s\n" (Myraft.Cluster.describe cluster)

let promote seed echo =
  let cluster = make_cluster ~seed ~echo in
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  with_load cluster (fun () ->
      Myraft.Cluster.run_for cluster (2.0 *. s);
      let start_at = Myraft.Cluster.now cluster in
      Printf.printf ">>> transferring leadership to mysql2\n%!";
      (match Myraft.Cluster.transfer_leadership cluster ~target:"mysql2" with
      | Ok () -> ()
      | Error e -> failwith e);
      ignore
        (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
             match Myraft.Cluster.primary cluster with
             | Some srv -> Myraft.Server.id srv = "mysql2"
             | None -> false));
      Myraft.Cluster.run_for cluster (2.0 *. s);
      let downtime =
        Myraft.Availability.max_downtime probe ~start_time:start_at
          ~end_time:(Myraft.Cluster.now cluster)
      in
      Printf.printf "\nmeasured promotion downtime: %.0f ms\n" (downtime /. ms));
  Printf.printf "\n%s\n" (Myraft.Cluster.describe cluster)

let status seed echo =
  let cluster = make_cluster ~seed ~echo in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Printf.printf "%s\n\n%s" (Myraft.Cluster.describe cluster) (Myraft.Roles.render ())

(* Tour the consistency-tiered read path: seed one row, then read it
   back at every level from the primary and from a remote follower;
   finally isolate the follower so bounded-staleness reads start
   rejecting while eventual reads keep serving. *)
let read_demo seed echo =
  let cluster = make_cluster ~seed ~echo in
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"cli-read" ~region:"r2"
      ~client_latency:(200.0 *. Sim.Engine.us) ()
  in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let settled = ref None in
  Workload.Generator.issue_op
    ~k:(fun ok -> settled := Some ok)
    gen ~table:"demo" ~key:"answer" ~value_size:42;
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(10.0 *. s) (fun () -> !settled <> None));
  Printf.printf "seeded demo/answer (committed: %b)\n"
    (match !settled with Some true -> true | _ -> false);
  let levels =
    [
      Read.Level.Linearizable;
      Read.Level.Read_your_writes None;
      Read.Level.Bounded_staleness (50.0 *. ms);
      Read.Level.Eventual;
    ]
  in
  let probe target =
    Printf.printf "\nreads served by %s:\n" target;
    List.iter
      (fun level ->
        let t0 = Myraft.Cluster.now cluster in
        let result = ref None in
        Workload.Generator.issue_read
          ~k:(fun o -> result := Some o)
          ~level ~target gen ~table:"demo" ~key:"answer";
        ignore
          (Myraft.Cluster.run_until cluster ~timeout:(10.0 *. s) (fun () ->
               !result <> None));
        let dt = Myraft.Cluster.now cluster -. t0 in
        let shown =
          match !result with
          | Some (Workload.Backend.Read_ok (Some v)) ->
            Printf.sprintf "value (%d bytes)" (String.length v)
          | Some (Workload.Backend.Read_ok None) -> "null (no row)"
          | Some (Workload.Backend.Read_rejected { reason; retry_after }) ->
            Printf.sprintf "rejected: %s%s" reason
              (match retry_after with
              | Some d -> Printf.sprintf " (retry in %.1f ms)" (d /. ms)
              | None -> "")
          | None -> "no reply"
        in
        Printf.printf "  %-12s %-48s %8.2f ms\n" (Read.Level.to_string level) shown
          (dt /. ms))
      levels
  in
  let mysqls = Myraft.Cluster.mysql_ids cluster in
  List.iter probe mysqls;
  (match List.filter (fun id -> Some id <> Myraft.Cluster.raft_leader cluster) mysqls with
  | follower :: _ ->
    Printf.printf
      "\n>>> cutting r1 <-> r2: %s can no longer prove freshness or reach the leader\n"
      follower;
    Sim.Network.cut_regions (Myraft.Cluster.network cluster) "r1" "r2";
    Myraft.Cluster.run_for cluster (1.0 *. s);
    probe follower
  | [] -> ());
  let contains line sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  let snap = Myraft.Cluster.metrics_snapshot cluster in
  Printf.printf "\nread-path metrics:\n";
  List.iter
    (fun line ->
      if contains line "read." || contains line "readindex" || contains line "lease" then
        Printf.printf "%s\n" line)
    (String.split_on_char '\n' (Obs.Metrics.render snap))

(* Serial vs parallel replica apply, side by side: run the same traffic
   with a deliberately expensive apply step (so one lane cannot keep up
   with the primary's commit rate), sampling the remote follower's lane
   occupancy and replication lag each second. *)
let apply_demo seed echo =
  let run workers =
    let params =
      {
        Myraft.Params.default with
        Myraft.Params.applier_workers = workers;
        apply_per_txn_us = 300.0;
      }
    in
    let cluster =
      Myraft.Cluster.create ~seed ~echo_trace:echo ~params ~replicaset:"cli"
        ~members:(default_members ()) ()
    in
    Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
    let follower =
      match Myraft.Cluster.server cluster "mysql2" with
      | Some srv -> srv
      | None -> failwith "mysql2 missing"
    in
    let applier = Myraft.Server.applier follower in
    let backend = Workload.Backend.myraft cluster in
    let gen =
      Workload.Generator.create ~backend ~client_id:"cli-apply" ~region:"r1"
        ~client_latency:(200.0 *. Sim.Engine.us) ()
    in
    Printf.printf "\n--- %d worker lane%s (apply cost 300 us/txn) ---\n" workers
      (if workers = 1 then "" else "s");
    Printf.printf "  %-6s %10s %10s %10s %12s\n" "t_s" "applied" "lag" "busy" "dep_stalls";
    Workload.Generator.start_closed_loop gen ~threads:16;
    let lag () =
      let commit =
        match Myraft.Cluster.raft_of cluster "mysql1" with
        | Some raft -> Raft.Node.commit_index raft
        | None -> 0
      in
      commit - Myraft.Server.applied_through follower
    in
    let final_lag = ref 0 in
    for tick = 1 to 6 do
      Myraft.Cluster.run_for cluster (1.0 *. s);
      final_lag := lag ();
      Printf.printf "  %-6d %10d %10d %6d/%-3d %12d\n%!" tick
        (Myraft.Applier.applied_txns applier)
        !final_lag
        (Myraft.Applier.busy_workers applier)
        (Myraft.Applier.workers applier)
        (Myraft.Applier.dep_stalls applier)
    done;
    Workload.Generator.stop gen;
    (Workload.Generator.stats gen).Workload.Generator.committed,
    Myraft.Applier.applied_txns applier, !final_lag
  in
  let committed1, applied1, lag1 = run 1 in
  let committed4, applied4, lag4 = run 4 in
  Printf.printf
    "\nserial:   %d committed on the primary, %d applied on mysql2, final lag %d\n"
    committed1 applied1 lag1;
  Printf.printf
    "parallel: %d committed on the primary, %d applied on mysql2, final lag %d\n"
    committed4 applied4 lag4;
  Printf.printf
    "writeset scheduling let 4 lanes apply %.1fx the serial rate on the same traffic\n"
    (float_of_int applied4 /. float_of_int (max applied1 1))

let write_metrics_json path snap =
  let oc = open_out path in
  output_string oc (Obs.Metrics.to_json snap);
  output_char oc '\n';
  close_out oc

(* Run traffic for a few seconds, then dump the cluster-wide metrics
   snapshot (every node's registry merged, plus net.* from the network)
   and the tail of the OpId-correlated trace ring. *)
let metrics seed echo secs json =
  let cluster = make_cluster ~seed ~echo in
  with_load cluster (fun () -> Myraft.Cluster.run_for cluster (secs *. s));
  let snap = Myraft.Cluster.metrics_snapshot cluster in
  Printf.printf "\n%s\n" (Obs.Metrics.render snap);
  Printf.printf "recent trace events (opid = term.index):\n%s\n"
    (Obs.Tracebuf.render ~last:12 (Myraft.Cluster.tracebuf cluster));
  Option.iter
    (fun path ->
      write_metrics_json path snap;
      Printf.printf "metrics snapshot written to %s\n" path)
    json

(* Nemesis-driven chaos: a seeded, composable fault schedule with the
   continuous Raft invariant checker; identical seed → identical run. *)
let chaos seed echo steps faults quorum seeds metrics_json no_lease campaign
    max_clock_drift shards auto_purge =
  if shards < 1 then begin
    Printf.eprintf "chaos: --shards must be >= 1\n%!";
    exit 2
  end;
  let base = if campaign then Chaos.Schedule.campaign else Chaos.Schedule.default in
  let spec =
    match faults with
    | [] -> base
    | names -> (
      match Chaos.Schedule.with_faults base names with
      | Ok spec -> spec
      | Error e ->
        Printf.eprintf "chaos: %s\n%!" e;
        exit 2)
  in
  let quorum =
    match quorum with
    | "majority" -> Raft.Quorum.Majority
    | "flexi" | "single-region-dynamic" -> Raft.Quorum.Single_region_dynamic
    | "region-majorities" -> Raft.Quorum.Region_majorities
    | other ->
      Printf.eprintf "chaos: unknown quorum mode %S (majority|flexi|region-majorities)\n%!"
        other;
      exit 2
  in
  let seed_list = if seeds = [] then [ seed ] else seeds in
  let reports =
    List.map
      (fun seed ->
        let r =
          if shards > 1 then
            Chaos.Nemesis.run_sharded ~spec ~quorum ~lease:(not no_lease)
              ~max_clock_drift ~auto_purge ~shards ~seed ~steps ()
          else
            Chaos.Nemesis.run ~spec ~quorum ~lease:(not no_lease) ~max_clock_drift ~echo
              ~auto_purge ~seed ~steps ()
        in
        Printf.printf "%s\n%!" (Chaos.Nemesis.report_summary r);
        r)
      seed_list
  in
  Option.iter
    (fun path ->
      let snap =
        Obs.Metrics.merge_all ~node:"chaos"
          (List.map (fun r -> r.Chaos.Nemesis.r_metrics) reports)
      in
      write_metrics_json path snap;
      Printf.printf "metrics snapshot written to %s\n" path)
    metrics_json;
  let violations =
    List.fold_left (fun acc r -> acc + List.length r.Chaos.Nemesis.r_violations) 0 reports
  in
  if violations = 0 then
    Printf.printf "chaos: %d run(s), zero invariant violations\n"
      (List.length reports)
  else begin
    Printf.printf "chaos: %d invariant violation(s) across %d run(s)\n" violations
      (List.length reports);
    exit 1
  end

(* Membership-churn chaos: directed reconfiguration scenarios (rolling
   region evacuation, self-healing replacement under partition, churn
   under election storms, per-group sharded churn) gated on zero
   violations plus convergence over the final membership. *)
let churn seed seeds scenarios =
  let scenario_list = if scenarios = [] then Chaos.Churn.scenario_names else scenarios in
  let seed_list = if seeds = [] then [ seed ] else seeds in
  let reports =
    List.concat_map
      (fun name ->
        List.map
          (fun seed ->
            match Chaos.Churn.run_scenario ~name ~seed with
            | Ok r ->
              Printf.printf "%s\n%!" (Chaos.Churn.report_summary r);
              r
            | Error e ->
              Printf.eprintf "churn: %s (known: %s)\n%!" e
                (String.concat ", " Chaos.Churn.scenario_names);
              exit 2)
          seed_list)
      scenario_list
  in
  let violations =
    List.fold_left (fun acc r -> acc + List.length r.Chaos.Churn.c_violations) 0 reports
  in
  let unconverged =
    List.filter (fun r -> not r.Chaos.Churn.c_converged) reports
  in
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          Printf.printf "  VIOLATION [%s seed %d] %s\n" r.Chaos.Churn.c_scenario
            r.Chaos.Churn.c_seed
            (Chaos.Invariants.violation_to_string v))
        r.Chaos.Churn.c_violations)
    reports;
  List.iter
    (fun r ->
      Printf.printf "  UNCONVERGED %s seed %d\n" r.Chaos.Churn.c_scenario
        r.Chaos.Churn.c_seed)
    unconverged;
  if violations = 0 && unconverged = [] then
    Printf.printf "churn: %d run(s), zero invariant violations, all converged\n"
      (List.length reports)
  else begin
    Printf.printf "churn: %d violation(s), %d unconverged across %d run(s)\n" violations
      (List.length unconverged) (List.length reports);
    exit 1
  end

let steps_arg =
  Arg.(value & opt int 200 & info [ "steps" ] ~docv:"N" ~doc:"Chaos steps (250 ms each).")

let churn_scenarios_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "scenarios" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated churn scenarios: evacuation, replace-partitioned, \
           storm-churn, sharded-churn.  Default: all of them.")

let faults_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "faults" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated fault kinds: crash, leader-crash, transfer, partition, \
           isolate, drop, dup, reorder, spike, torn-tail, fsync-stall, plus the \
           adversarial families clock-drift, clock-step, corrupt, asym-partition, \
           storm.  Default: the classic kinds (all 16 with $(b,--campaign)).")

let campaign_arg =
  Arg.(
    value & flag
    & info [ "campaign" ]
        ~doc:
          "Use the adversarial campaign mix (clock, corruption, asymmetric-partition \
           and election-storm attacks on top of the classic kinds).")

let max_clock_drift_arg =
  Arg.(
    value & opt float 0.0
    & info [ "max-clock-drift" ] ~docv:"RATE"
        ~doc:
          "Clock-drift margin the Raft layer absorbs in its lease arithmetic (e.g. \
           0.05 = 5%).  Run clock attacks with this at or above the schedule's drift \
           rate; at 0.0 leases trust the local clock blindly.")

let auto_purge_arg =
  Arg.(
    value & flag
    & info [ "auto-purge" ]
        ~doc:
          "Rotate and purge the primary's binlog every few steps, so peers that fall \
           behind a fault find their tail compacted away and must be rescued by an \
           engine-checkpoint InstallSnapshot (the purged-log-replication stress mode).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"M"
        ~doc:
          "Run the schedule against $(docv) Raft groups multiplexed on the ring \
           (multi-Raft mode with the coalescing mux); invariants are checked per \
           group.  Default 1 = the classic single-group run.")

let quorum_arg =
  Arg.(
    value & opt string "flexi"
    & info [ "quorum" ] ~docv:"MODE" ~doc:"Quorum mode: majority, flexi, region-majorities.")

let seeds_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Sweep these seeds instead of --seed.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write the merged metrics snapshot to $(docv) as JSON.")

let no_lease_arg =
  Arg.(
    value & flag
    & info [ "no-lease" ]
        ~doc:"Disable the leader-lease read fast path (every linearizable read pays a \
              ReadIndex confirmation round).")

let metrics_secs_arg =
  Arg.(
    value & opt float 5.0
    & info [ "secs" ] ~docv:"SECONDS" ~doc:"How long to run traffic before snapshotting.")

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ seed_arg $ trace_arg)

let () =
  let root =
    Cmd.group
      (Cmd.info "myraft_cli" ~version:"1.0"
         ~doc:"Drive MyRaft replicaset scenarios on the simulator")
      [
        cmd "demo" "Bring up a ring and run traffic." demo;
        cmd "failover" "Crash the primary and measure downtime." failover;
        cmd "promote" "Graceful leadership transfer with downtime." promote;
        cmd "status" "Show ring status and Table-1 roles." status;
        cmd "read"
          "Tour the four read consistency levels against the primary and a remote \
           follower, then show bounded-staleness rejection under a region cut."
          read_demo;
        cmd "apply"
          "Serial vs writeset-parallel replica apply on the same traffic: lane \
           occupancy and replication lag, sampled each second."
          apply_demo;
        Cmd.v
          (Cmd.info "metrics"
             ~doc:
               "Run traffic, then print the cluster-wide metrics snapshot (raft/pipeline/\
                binlog counters, stage-latency histograms) and recent OpId-correlated \
                trace events.")
          Term.(const metrics $ seed_arg $ trace_arg $ metrics_secs_arg $ metrics_json_arg);
        Cmd.v
          (Cmd.info "chaos"
             ~doc:
               "Seeded nemesis fault schedule under load with continuous Raft invariant \
                checking; exits non-zero on any violation.")
          Term.(
            const chaos $ seed_arg $ trace_arg $ steps_arg $ faults_arg $ quorum_arg
            $ seeds_arg $ metrics_json_arg $ no_lease_arg $ campaign_arg
            $ max_clock_drift_arg $ shards_arg $ auto_purge_arg);
        Cmd.v
          (Cmd.info "churn"
             ~doc:
               "Membership-churn chaos: rolling region evacuation, self-healing \
                replacement of a dead voter while partitioned, churn under election \
                storms, and per-group sharded churn — under the invariant checker \
                (including the logless-reconfiguration oracles); exits non-zero on \
                any violation or non-convergence.")
          Term.(const churn $ seed_arg $ seeds_arg $ churn_scenarios_arg);
      ]
  in
  exit (Cmd.eval root)
