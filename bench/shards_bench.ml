(* Multi-Raft shard bench: aggregate commit throughput and per-node
   message rate as a function of consensus-group count and key skew.

     dune exec bench/main.exe -- shards            # full sweep
     dune exec bench/main.exe -- shards --quick    # CI cells only

   Each cell stands up [groups] independent Raft groups multiplexed on
   the same three-region trio behind the coalescing {!Shard.Mux}, routes
   a closed-loop workload through the {!Shard.Router} front door, and
   measures the steady-state window.  One group serializes every commit
   through a single leader pipeline; more groups spread leaders across
   the regions and commit independent shards in parallel, so aggregate
   throughput should scale near-linearly while cross-group coalescing
   (shared packets, piggybacked heartbeats) keeps the per-node message
   rate sublinear in the group count.

   Each cell measures two windows: a loaded one for aggregate tps, and
   an idle tail for the steady-state background message rate — the
   traffic (heartbeats, lease renewals) that would scale linearly with
   group count without coalescing, and that dominates a real fleet where
   most of thousands of groups are quiet at any instant.

   Writes BENCH_SHARDS.json and, for CI, gates on the uniform cells:
   4 groups must commit at least [gate_tps_ratio] times the 1-group
   aggregate, and the coalesced idle per-node message rate at 4 groups
   must stay under [gate_msg_ratio] times the 1-group baseline. *)

open Common

(* Closed-loop clients scale with the group count (weak scaling, the
   usual scale-out methodology): enough that every cell's leaders are
   pipeline-bound — a fixed pool would cap offered load below what 16
   groups can absorb and misreport the scaling as sublinear.  Each
   cell's pool size is recorded in the JSON. *)
let threads_for groups = 64 * groups

let warmup = 0.5 *. s

let measure = 2.0 *. s

(* After the loaded window: drain in-flight writes, then watch the
   steady-state background traffic (heartbeats, lease renewals) — the
   window where cross-group coalescing and heartbeat suppression are the
   claim.  Long enough to average over the suppressed beat cadence
   (hb_suppress_limit beats can ride carriers before a leader must beat
   for itself). *)
let idle_drain = 1.0 *. s

let idle_measure = 8.0 *. s

(* Per-txn costs heavy enough that one leader's serial flush+commit
   pipeline caps well below what the closed loop offers — throughput
   scaling with group count then measures real parallelism, not client
   round-trip latency. *)
let cell_costs () =
  {
    Myraft.Params.default with
    Myraft.Params.flush_per_txn_us = 60.0;
    commit_per_txn_us = 60.0;
  }

let gate_tps_ratio = 2.5

let gate_msg_ratio = 2.0

type skew = Sk_uniform | Sk_zipf

let skew_name = function Sk_uniform -> "uniform" | Sk_zipf -> "zipf"

(* theta 0.8: hot rows hash to *some* shard, so skew shows up as load
   imbalance between groups rather than lock conflicts on one row. *)
let dist_of_skew = function
  | Sk_uniform -> Workload.Generator.Uniform
  | Sk_zipf -> Workload.Generator.Zipf 0.8

type cell = {
  c_groups : int;
  c_skew : skew;
  c_threads : int; (* closed-loop client pool for this cell *)
  c_committed : int; (* client writes acknowledged in the window *)
  c_tps : float; (* aggregate across all groups *)
  c_packets : int; (* coalesced network messages in the window *)
  c_frames : int; (* per-group protocol messages carried inside them *)
  c_frames_per_packet : float;
  c_node_msgs_per_s : float; (* packets / node / second, loaded window *)
  c_idle_node_msgs_per_s : float; (* packets / node / second, idle window *)
}

let run_cell ~groups ~skew ~seed =
  let multi = Shard.Multi.create ~seed ~params:(cell_costs ()) ~groups () in
  Shard.Multi.bootstrap multi;
  let backend = Shard.Multi.backend multi in
  let gen =
    Workload.Generator.create ~backend ~client_id:"shard-load" ~region:"r1"
      ~client_latency:(1.0 *. ms) ~key_space:50_000 ~key_dist:(dist_of_skew skew)
      ~value_mu:(log 300.0) ~value_sigma:0.2 ()
  in
  let threads = threads_for groups in
  Workload.Generator.start_closed_loop gen ~threads;
  Shard.Multi.run_for multi warmup;
  let stats = Workload.Generator.stats gen in
  let committed0 = stats.Workload.Generator.committed in
  let mux = Shard.Multi.mux multi in
  let packets0 = Shard.Mux.packets_sent mux in
  let frames0 = Shard.Mux.frames_sent mux in
  Shard.Multi.run_for multi measure;
  let committed = stats.Workload.Generator.committed - committed0 in
  let packets = Shard.Mux.packets_sent mux - packets0 in
  let frames = Shard.Mux.frames_sent mux - frames0 in
  Workload.Generator.stop gen;
  Shard.Multi.run_for multi idle_drain;
  let idle_packets0 = Shard.Mux.packets_sent mux in
  Shard.Multi.run_for multi idle_measure;
  let idle_packets = Shard.Mux.packets_sent mux - idle_packets0 in
  let n_nodes = List.length (Shard.Multi.member_ids multi) in
  let span_s = measure /. s in
  {
    c_groups = groups;
    c_skew = skew;
    c_threads = threads;
    c_committed = committed;
    c_tps = float_of_int committed /. span_s;
    c_packets = packets;
    c_frames = frames;
    c_frames_per_packet = float_of_int frames /. Float.max (float_of_int packets) 1.0;
    c_node_msgs_per_s = float_of_int packets /. float_of_int n_nodes /. span_s;
    c_idle_node_msgs_per_s =
      float_of_int idle_packets /. float_of_int n_nodes /. (idle_measure /. s);
  }

let json_of_cell c =
  Printf.sprintf
    "    {\"groups\": %d, \"skew\": \"%s\", \"threads\": %d, \"committed\": %d, \
     \"tps\": %.1f, \"packets\": %d, \"frames\": %d, \"frames_per_packet\": %.2f, \
     \"node_msgs_per_s\": %.1f, \"idle_node_msgs_per_s\": %.1f}"
    c.c_groups (skew_name c.c_skew) c.c_threads c.c_committed c.c_tps c.c_packets
    c.c_frames
    c.c_frames_per_packet c.c_node_msgs_per_s c.c_idle_node_msgs_per_s

let write_json ~path ~quick ~cells ~gate_pass ~g1 ~g4 =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"experiment\": \"shards\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"cells\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_cell cells));
  Printf.fprintf oc
    "  \"gate\": {\"g1_tps\": %.1f, \"g4_tps\": %.1f, \"tps_ratio\": %.2f, \
     \"min_tps_ratio\": %g, \"g1_idle_node_msgs_per_s\": %.1f, \
     \"g4_idle_node_msgs_per_s\": %.1f, \"idle_msg_ratio\": %.2f, \"max_msg_ratio\": \
     %g, \"pass\": %b}\n"
    g1.c_tps g4.c_tps
    (g4.c_tps /. Float.max g1.c_tps 1e-9)
    gate_tps_ratio g1.c_idle_node_msgs_per_s g4.c_idle_node_msgs_per_s
    (g4.c_idle_node_msgs_per_s /. Float.max g1.c_idle_node_msgs_per_s 1e-9)
    gate_msg_ratio gate_pass;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "results written to %s\n%!" path

let run () =
  let quick = !Common.quick in
  header
    (if quick then "Shards — multi-Raft scaling, CI cells (uniform)"
     else "Shards — multi-Raft scaling: group count x key-skew sweep");
  let group_counts = if quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let skews = if quick then [ Sk_uniform ] else [ Sk_uniform; Sk_zipf ] in
  Printf.printf
    "  closed loop, %d client threads per group, %.0f s measured per cell\n\n%!"
    (threads_for 1) (measure /. s);
  Printf.printf "  %-8s %-8s %8s %10s %10s %10s %10s %10s %13s %13s\n" "groups" "skew"
    "threads" "committed" "tps" "packets" "frames" "fr/pkt" "node_msgs/s" "idle_msgs/s";
  let cells =
    List.concat_map
      (fun skew ->
        List.map
          (fun groups ->
            let c = run_cell ~groups ~skew ~seed:73 in
            Printf.printf
              "  %-8d %-8s %8d %10d %10.0f %10d %10d %10.2f %13.0f %13.1f\n%!" groups
              (skew_name skew) c.c_threads c.c_committed c.c_tps c.c_packets c.c_frames
              c.c_frames_per_packet c.c_node_msgs_per_s c.c_idle_node_msgs_per_s;
            c)
          group_counts)
      skews
  in
  let find g = List.find (fun c -> c.c_groups = g && c.c_skew = Sk_uniform) cells in
  let g1 = find 1 and g4 = find 4 in
  let tps_ratio = g4.c_tps /. Float.max g1.c_tps 1e-9 in
  let msg_ratio =
    g4.c_idle_node_msgs_per_s /. Float.max g1.c_idle_node_msgs_per_s 1e-9
  in
  let gate_pass = tps_ratio >= gate_tps_ratio && msg_ratio < gate_msg_ratio in
  write_json ~path:"BENCH_SHARDS.json" ~quick ~cells ~gate_pass ~g1 ~g4;
  Printf.printf
    "\n  gate @ uniform: 4 groups = %.0f tps / %.1f idle msgs/node/s, 1 group = %.0f \
     tps / %.1f idle msgs/node/s — %.2fx tps (need >= %.1fx), %.2fx idle msgs (need < \
     %.1fx)\n%!"
    g4.c_tps g4.c_idle_node_msgs_per_s g1.c_tps g1.c_idle_node_msgs_per_s tps_ratio
    gate_tps_ratio msg_ratio gate_msg_ratio;
  if gate_pass then Printf.printf "  shards gate: PASS\n%!"
  else begin
    Printf.printf "  shards gate: FAIL\n%!";
    exit 1
  end
