(* Parallel-apply bench: replica apply throughput and lag as a function
   of worker lanes, key skew and per-transaction apply cost, on the §6.1
   topology.

     dune exec bench/main.exe -- apply            # full sweep
     dune exec bench/main.exe -- apply --quick    # CI cells only

   The leader is mysql1 in r1; mysql2 (r2) is the observed follower.  A
   serial applier (workers = 1) executes row events one at a time, so
   its apply rate caps near 1e6 / apply_per_txn_us and the follower
   falls behind whenever the primary commits faster than that.
   Writeset-scheduled lanes overlap execution of independent
   transactions; skewed keys shrink the schedulable set and show the
   dependency-stall cost.

   Writes BENCH_APPLY.json and, for CI, gates on the uniform-skew
   default-cost cells: 4 lanes must apply at least [gate_ratio] times
   the serial rate, and parallel lag must stay bounded where serial lag
   diverges. *)

open Common

(* 256 closed-loop threads a millisecond from the primary push commit
   throughput far past the serial apply cap (1e6 / apply_per_txn_us)
   without the event count of the full production A/B load; short
   windows keep the 20-member topology affordable for a CI gate. *)
let threads = 256

let warmup = 0.5 *. s

let measure = 2.0 *. s

let gate_ratio = 2.5

let gate_lag_bound = 2_000 (* entries; parallel follower stays this close *)

type skew = Sk_uniform | Sk_zipf

let skew_name = function Sk_uniform -> "uniform" | Sk_zipf -> "zipf"

(* theta 0.6 keeps the hottest row well under the per-row commit ceiling
   (one lock holder per pipeline round trip) so the *primary* stays
   healthy and the skew cost shows up where this bench looks: dependency
   chains on the replica scheduler.  Hotter exponents melt the primary
   into lock-conflict retries instead. *)
let dist_of_skew = function
  | Sk_uniform -> Workload.Generator.Uniform
  | Sk_zipf -> Workload.Generator.Zipf 0.6

type cell = {
  c_workers : int;
  c_skew : skew;
  c_cost_us : float;
  c_committed : int; (* primary-side commits in the window *)
  c_applied : int; (* follower engine commits in the window *)
  c_applied_tps : float;
  c_lag_end : int; (* leader commit_index - follower applied_through *)
  c_dep_stalls : int;
}

let run_cell ~workers ~skew ~cost_us ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.applier_workers = workers;
      apply_per_txn_us = cost_us;
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-apply" ~members:(ab_members ())
      ()
  in
  (* Pin the replication legs toward the observed follower low (direct
     and via its region's proxy logtailers): mysql2 acts as a close
     standby, so the sliding window delivers entries faster than any
     applier drains them and the *applier* is the measured constraint —
     with cross-region WAN latency the follower is replication-bound and
     every worker count looks identical. *)
  List.iter
    (fun (a, b) ->
      Myraft.Cluster.set_link_latency cluster ~a ~b ~latency:(500.0 *. us))
    [
      ("mysql1", "mysql2");
      ("mysql1", "lt2a");
      ("mysql1", "lt2b");
      ("lt2a", "mysql2");
      ("lt2b", "mysql2");
    ];
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let follower =
    match Myraft.Cluster.server cluster "mysql2" with
    | Some s -> s
    | None -> failwith "mysql2 missing from the paper topology"
  in
  let applier = Myraft.Server.applier follower in
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"apply-load" ~region:"r1"
      ~client_latency:(1.0 *. ms) ~key_space:50_000 ~key_dist:(dist_of_skew skew)
      ~value_mu:(log 300.0) ~value_sigma:0.2 ()
  in
  Workload.Generator.start_closed_loop gen ~threads;
  Myraft.Cluster.run_for cluster warmup;
  let stats = Workload.Generator.stats gen in
  let committed0 = stats.Workload.Generator.committed in
  let applied0 = Myraft.Applier.applied_txns applier in
  Myraft.Cluster.run_for cluster measure;
  let committed = stats.Workload.Generator.committed - committed0 in
  let applied = Myraft.Applier.applied_txns applier - applied0 in
  Workload.Generator.stop gen;
  let leader_commit =
    match Myraft.Cluster.raft_of cluster "mysql1" with
    | Some raft -> Raft.Node.commit_index raft
    | None -> 0
  in
  {
    c_workers = workers;
    c_skew = skew;
    c_cost_us = cost_us;
    c_committed = committed;
    c_applied = applied;
    c_applied_tps = float_of_int applied /. (measure /. s);
    c_lag_end = leader_commit - Myraft.Server.applied_through follower;
    c_dep_stalls = Myraft.Applier.dep_stalls applier;
  }

let json_of_cell c =
  Printf.sprintf
    "    {\"workers\": %d, \"skew\": \"%s\", \"apply_cost_us\": %g, \"committed\": %d, \
     \"applied\": %d, \"applied_tps\": %.1f, \"lag_end\": %d, \"dep_stalls\": %d}"
    c.c_workers (skew_name c.c_skew) c.c_cost_us c.c_committed c.c_applied
    c.c_applied_tps c.c_lag_end c.c_dep_stalls

let write_json ~path ~quick ~cells ~gate_pass ~w1 ~w4 =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"experiment\": \"apply\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"cells\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_cell cells));
  Printf.fprintf oc
    "  \"gate\": {\"w1_tps\": %.1f, \"w4_tps\": %.1f, \"ratio\": %.2f, \"min_ratio\": \
     %g, \"w1_lag\": %d, \"w4_lag\": %d, \"lag_bound\": %d, \"pass\": %b}\n"
    w1.c_applied_tps w4.c_applied_tps
    (w4.c_applied_tps /. Float.max w1.c_applied_tps 1e-9)
    gate_ratio w1.c_lag_end w4.c_lag_end gate_lag_bound gate_pass;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "results written to %s\n%!" path

let run () =
  let quick = !Common.quick in
  header
    (if quick then "Apply — parallel replica apply, CI cells (uniform, default cost)"
     else "Apply — parallel replica apply: workers x key-skew x apply-cost sweep");
  let worker_counts = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let skews = if quick then [ Sk_uniform ] else [ Sk_uniform; Sk_zipf ] in
  let costs = if quick then [ 60.0 ] else [ 60.0; 240.0 ] in
  Printf.printf "  closed loop, %d client threads, %.0f s measured per cell\n\n%!"
    threads (measure /. s);
  Printf.printf "  %-8s %-8s %-8s %10s %10s %12s %10s %10s\n" "workers" "skew"
    "cost_us" "committed" "applied" "applied_tps" "lag_end" "stalls";
  let cells =
    List.concat_map
      (fun cost_us ->
        List.concat_map
          (fun skew ->
            List.map
              (fun workers ->
                let c = run_cell ~workers ~skew ~cost_us ~seed:73 in
                Printf.printf "  %-8d %-8s %-8g %10d %10d %12.0f %10d %10d\n%!"
                  workers (skew_name skew) cost_us c.c_committed c.c_applied
                  c.c_applied_tps c.c_lag_end c.c_dep_stalls;
                c)
              worker_counts)
          skews)
      costs
  in
  let find w =
    List.find
      (fun c -> c.c_workers = w && c.c_skew = Sk_uniform && c.c_cost_us = 60.0)
      cells
  in
  let w1 = find 1 and w4 = find 4 in
  let ratio = w4.c_applied_tps /. Float.max w1.c_applied_tps 1e-9 in
  (* serial must demonstrably fall behind for the comparison to mean
     anything; parallel must stay within the bound *)
  let gate_pass =
    ratio >= gate_ratio && w4.c_lag_end <= gate_lag_bound && w1.c_lag_end > gate_lag_bound
  in
  write_json ~path:"BENCH_APPLY.json" ~quick ~cells ~gate_pass ~w1 ~w4;
  Printf.printf
    "\n  gate @ uniform/60us: 4 lanes = %.0f tps (lag %d), serial = %.0f tps (lag %d) \
     — %.2fx, need >= %.1fx, parallel lag <= %d, serial lag > %d\n%!"
    w4.c_applied_tps w4.c_lag_end w1.c_applied_tps w1.c_lag_end ratio gate_ratio
    gate_lag_bound gate_lag_bound;
  if gate_pass then Printf.printf "  apply gate: PASS\n%!"
  else begin
    Printf.printf "  apply gate: FAIL\n%!";
    exit 1
  end
