(* Chaos smoke: a short nemesis seed sweep over both quorum modes, plus
   a membership-churn leg (classic + sharded scenarios), for CI to gate
   on zero invariant violations.

     dune exec bench/main.exe -- chaos-smoke *)

let seeds = [ 101; 102; 103; 104; 105 ]

(* One seed over every churn scenario keeps the smoke gate fast; the
   nightly churn campaign sweeps more. *)
let churn_seeds = [ 101 ]

(* Multi-Raft mode is heavier (4 groups, one checker each), so the
   sharded leg sweeps fewer seeds. *)
let sharded_seeds = [ 101; 102; 103 ]

let sharded_groups = 4

let steps = 60

let run () =
  Common.header "Chaos smoke — nemesis seed sweep with invariant checking";
  let total_violations = ref 0 in
  let runs = ref 0 in
  let snapshots = ref [] in
  let tally reports =
    List.iter
      (fun r ->
        incr runs;
        total_violations := !total_violations + List.length r.Chaos.Nemesis.r_violations;
        snapshots := r.Chaos.Nemesis.r_metrics :: !snapshots;
        Printf.printf "  %s\n%!" (Chaos.Nemesis.report_summary r))
      reports
  in
  List.iter
    (fun quorum ->
      Printf.printf "\n%s quorum:\n" (Chaos.Nemesis.quorum_name quorum);
      tally (Chaos.Nemesis.sweep ~quorum ~seeds ~steps ()))
    [ Raft.Quorum.Single_region_dynamic; Raft.Quorum.Majority ];
  Printf.printf "\n%d-shard multi-Raft (flexi quorum):\n" sharded_groups;
  tally (Chaos.Nemesis.sweep ~shards:sharded_groups ~seeds:sharded_seeds ~steps ());
  Printf.printf "\nmembership churn (classic + sharded):\n";
  List.iter
    (fun r ->
      incr runs;
      total_violations := !total_violations + List.length r.Chaos.Churn.c_violations;
      (if not r.Chaos.Churn.c_converged then begin
         (* non-convergence gates the smoke run like a violation *)
         incr total_violations;
         Printf.printf "  UNCONVERGED %s seed %d\n" r.Chaos.Churn.c_scenario
           r.Chaos.Churn.c_seed
       end);
      snapshots := r.Chaos.Churn.c_metrics :: !snapshots;
      Printf.printf "  %s\n%!" (Chaos.Churn.report_summary r))
    (Chaos.Churn.sweep ~seeds:churn_seeds ());
  Common.write_metrics_json (Obs.Metrics.merge_all ~node:"chaos-smoke" !snapshots);
  if !total_violations = 0 then
    Printf.printf "\nchaos smoke: %d runs, zero invariant violations\n%!" !runs
  else begin
    Printf.printf "\nchaos smoke: %d INVARIANT VIOLATIONS\n%!" !total_violations;
    exit 1
  end
