(* Chaos smoke: a short nemesis seed sweep over both quorum modes, for
   CI to gate on zero invariant violations.

     dune exec bench/main.exe -- chaos-smoke *)

let seeds = [ 101; 102; 103; 104; 105 ]

let steps = 60

let run () =
  Common.header "Chaos smoke — nemesis seed sweep with invariant checking";
  let total_violations = ref 0 in
  let snapshots = ref [] in
  List.iter
    (fun quorum ->
      Printf.printf "\n%s quorum:\n" (Chaos.Nemesis.quorum_name quorum);
      let reports = Chaos.Nemesis.sweep ~quorum ~seeds ~steps () in
      List.iter
        (fun r ->
          total_violations := !total_violations + List.length r.Chaos.Nemesis.r_violations;
          snapshots := r.Chaos.Nemesis.r_metrics :: !snapshots;
          Printf.printf "  %s\n%!" (Chaos.Nemesis.report_summary r))
        reports)
    [ Raft.Quorum.Single_region_dynamic; Raft.Quorum.Majority ];
  Common.write_metrics_json (Obs.Metrics.merge_all ~node:"chaos-smoke" !snapshots);
  if !total_violations = 0 then
    Printf.printf "\nchaos smoke: %d runs, zero invariant violations\n%!"
      (2 * List.length seeds)
  else begin
    Printf.printf "\nchaos smoke: %d INVARIANT VIOLATIONS\n%!" !total_violations;
    exit 1
  end
