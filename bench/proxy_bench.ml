(* Giant-scale proxy fan-out bench: hierarchical PROXY_OP trees versus
   flat leader fan-out on an 8-region, 104-replica replicaset.

     dune exec bench/main.exe -- proxy-scale            # full run
     dune exec bench/main.exe -- proxy-scale --quick    # CI cell

   Topology: region r1 holds the primary, its two logtailers (the
   FlexiRaft in-region data quorum) and ten learner MySQLs; regions
   r2..r8 each hold one voter MySQL and twelve learners — 104 replicas,
   10 voters.  Commits only wait on the r1 logtailers, so both variants
   sustain the same client throughput; what differs is the replication
   fan-out behind the commit point:

   - flat (proxying off): the leader ships every AppendEntries payload
     to all 103 peers itself, 91 of them across a region boundary;
   - tree (proxying on, §4.2): the leader ships the payload once per
     remote region to a designated proxy, which forwards PROXY_OP
     metadata to its region-mates; each mate reconstitutes the payload
     from the proxy's stream — a 2-level fan-out tree.

   Every variant runs inside a [Gc.quick_stat] delta so the JSON also
   records the real allocator cost of simulating a 104-node fleet.

   Writes BENCH_PROXY.json and gates on:
   - cross-region replication bytes: flat must spend at least
     [gate_min_saving]x what the proxy tree spends;
   - equal throughput: the tree must hold >= [gate_min_tps_ratio] of the
     flat variant's committed tps. *)

open Common

let regions = 8

let per_region = 13 (* 104 replicas *)

let threads = 256

let warmup = 1.5 *. s

let gate_min_saving = 3.0

let gate_min_tps_ratio = 0.9

(* r1: primary + 2 logtailers + 10 learners; r2..r8: 1 voter + 12
   learners.  104 members, 10 voters. *)
let members () =
  List.concat_map
    (fun r ->
      let region = Printf.sprintf "r%d" r in
      if r = 1 then
        Myraft.Cluster.mysql "mysql1" region
        :: Myraft.Cluster.logtailer "lt1a" region
        :: Myraft.Cluster.logtailer "lt1b" region
        :: List.init (per_region - 3) (fun i ->
               Myraft.Cluster.mysql ~voter:false (Printf.sprintf "m1-%02d" i) region)
      else
        Myraft.Cluster.mysql (Printf.sprintf "mysql%d" r) region
        :: List.init (per_region - 1) (fun i ->
               Myraft.Cluster.mysql ~voter:false (Printf.sprintf "m%d-%02d" r i) region))
    (List.init regions (fun i -> i + 1))

type variant = {
  v_label : string;
  v_proxying : bool;
  v_committed : int;
  v_tps : float;
  v_p50_us : float;
  v_p99_us : float;
  v_cross_bytes : int;
  v_total_bytes : int;
  v_proxy_forwards : int;
  v_proxy_reconstitutions : int;
  v_proxy_degraded : int;
  v_alloc : Common.alloc_stats;
  v_words_per_txn : float;
  v_node_kwords_per_s : float;  (* minor-heap kwords/s per simulated node *)
}

let run_variant ~proxying ~measure ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft = { Myraft.Params.default.Myraft.Params.raft with proxying };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-proxy-scale" ~members:(members ())
      ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"proxy-load" ~region:"r1"
      ~client_latency:(100.0 *. us) ~value_mu:(log 300.0) ~value_sigma:0.2 ()
  in
  Workload.Generator.start_closed_loop gen ~threads;
  Myraft.Cluster.run_for cluster warmup;
  (* Count only steady-state replication traffic: reset byte counters
     after warmup so bootstrap catch-up does not pollute the comparison. *)
  Sim.Network.reset_stats (Myraft.Cluster.network cluster);
  let stats = Workload.Generator.stats gen in
  let committed0 = stats.Workload.Generator.committed in
  let (), alloc =
    Common.with_alloc_stats (fun () -> Myraft.Cluster.run_for cluster measure)
  in
  let committed = stats.Workload.Generator.committed - committed0 in
  Workload.Generator.stop gen;
  let net = Myraft.Cluster.network cluster in
  let snap = Myraft.Cluster.metrics_snapshot cluster in
  let lat = stats.Workload.Generator.latencies in
  let nodes = regions * per_region in
  {
    v_label = (if proxying then "tree" else "flat");
    v_proxying = proxying;
    v_committed = committed;
    v_tps = float_of_int committed /. (measure /. s);
    v_p50_us = pct lat 50.0;
    v_p99_us = pct lat 99.0;
    v_cross_bytes = Sim.Network.cross_region_bytes net;
    v_total_bytes = Sim.Network.total_bytes net;
    v_proxy_forwards = Obs.Metrics.counter_of snap "raft.proxy_forwards";
    v_proxy_reconstitutions = Obs.Metrics.counter_of snap "raft.proxy_reconstitutions";
    v_proxy_degraded = Obs.Metrics.counter_of snap "raft.proxy_degraded";
    v_alloc = alloc;
    v_words_per_txn = Common.words_per_txn alloc ~txns:committed;
    v_node_kwords_per_s =
      alloc.al_minor_words /. float_of_int nodes /. (measure /. s) /. 1000.0;
  }

let json_of_variant v =
  Printf.sprintf
    "    {\"variant\": \"%s\", \"proxying\": %b, \"committed\": %d, \"tps\": %.1f, \
     \"p50_us\": %.1f, \"p99_us\": %.1f, \"cross_region_bytes\": %d, \
     \"total_bytes\": %d, \"proxy_forwards\": %d, \"proxy_reconstitutions\": %d, \
     \"proxy_degraded\": %d, \"node_kwords_per_s\": %.1f, %s}"
    v.v_label v.v_proxying v.v_committed v.v_tps v.v_p50_us v.v_p99_us v.v_cross_bytes
    v.v_total_bytes v.v_proxy_forwards v.v_proxy_reconstitutions v.v_proxy_degraded
    v.v_node_kwords_per_s
    (Common.alloc_json v.v_alloc ~txns:v.v_committed)

let write_json ~path ~quick ~flat ~tree ~saving ~tps_ratio ~pass =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"experiment\": \"proxy-scale\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"regions\": %d,\n" regions;
  Printf.fprintf oc "  \"replicas\": %d,\n" (regions * per_region);
  Printf.fprintf oc "  \"variants\": [\n%s\n  ],\n"
    (String.concat ",\n" [ json_of_variant flat; json_of_variant tree ]);
  Printf.fprintf oc
    "  \"gate\": {\"cross_region_saving\": %.2f, \"min_saving\": %g, \"tps_ratio\": \
     %.3f, \"min_tps_ratio\": %g, \"pass\": %b}\n"
    saving gate_min_saving tps_ratio gate_min_tps_ratio pass;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "results written to %s\n%!" path

let run () =
  let quick = !Common.quick in
  header
    (Printf.sprintf
       "Proxy fan-out at scale — %d regions x %d replicas, flat vs 2-level tree%s"
       regions per_region
       (if quick then " (CI cell)" else ""));
  let measure = if quick then 1.5 *. s else 4.0 *. s in
  Printf.printf "  closed loop, %d client threads in r1, %.1f s measured per variant\n\n%!"
    threads (measure /. s);
  Printf.printf "  %-6s %10s %10s %9s %9s %14s %12s %12s\n" "fanout" "committed" "tps"
    "p50_ms" "p99_ms" "xregion_MB" "fwd" "reconst";
  let show v =
    Printf.printf "  %-6s %10d %10.0f %9.2f %9.2f %14.2f %12d %12d\n%!" v.v_label
      v.v_committed v.v_tps (v.v_p50_us /. ms) (v.v_p99_us /. ms)
      (float_of_int v.v_cross_bytes /. 1e6)
      v.v_proxy_forwards v.v_proxy_reconstitutions
  in
  let flat = run_variant ~proxying:false ~measure ~seed:83 in
  show flat;
  let tree = run_variant ~proxying:true ~measure ~seed:83 in
  show tree;
  let saving = float_of_int flat.v_cross_bytes /. float_of_int (max tree.v_cross_bytes 1) in
  let tps_ratio = tree.v_tps /. Float.max flat.v_tps 1e-9 in
  let pass = saving >= gate_min_saving && tps_ratio >= gate_min_tps_ratio in
  write_json ~path:"BENCH_PROXY.json" ~quick ~flat ~tree ~saving ~tps_ratio ~pass;
  Printf.printf
    "\n  gate: cross-region bytes flat/tree = %.1fx (need >= %.0fx); tree tps = %.2f \
     of flat (need >= %.2f)\n%!"
    saving gate_min_saving tps_ratio gate_min_tps_ratio;
  Printf.printf "  per-node alloc: flat %.0f kwords/s, tree %.0f kwords/s\n%!"
    flat.v_node_kwords_per_s tree.v_node_kwords_per_s;
  if pass then Printf.printf "  proxy-scale gate: PASS\n%!"
  else begin
    Printf.printf "  proxy-scale gate: FAIL\n%!";
    exit 1
  end
