(* Consistency-tiered read bench: served-read throughput and latency as
   a function of the consistency level, the read fraction, the client's
   region and the quorum round-trip time, on the §6.1 topology.

     dune exec bench/main.exe -- read            # full sweep
     dune exec bench/main.exe -- read --quick    # CI cells only

   The leader is mysql1 in r1; under the Single_region_dynamic quorum a
   ReadIndex confirmation round needs an ack from one of the two r1
   logtailers, so the mysql1<->lt1a and mysql1<->lt1b links set the
   quorum RTT a leaseless linearizable read must pay.  With the leader
   lease on, a valid lease serves the same read locally — the rounds
   disappear and throughput decouples from the quorum RTT.  Follower
   cells (client and target in r3) show forwarding cost vs local
   bounded/eventual serving.

   Writes BENCH_READ.json and, for CI, gates the 10 ms-RTT read-mostly
   cells: lease-served linearizable reads must clear [gate_ratio] times
   the leaseless ReadIndex throughput. *)

open Common

let threads = 256

let warmup = 1.0 *. s

let measure = 4.0 *. s

let gate_rtt_ms = 10.0

let gate_ratio = 5.0

let gate_ratio_read = 0.9

type spec = {
  s_name : string;  (** cell label, e.g. "lin+lease" *)
  s_lease : bool;
  s_level : Read.Level.t;
}

let lin_lease = { s_name = "lin+lease"; s_lease = true; s_level = Read.Level.Linearizable }

let lin_quorum =
  { s_name = "lin+quorum"; s_lease = false; s_level = Read.Level.Linearizable }

let all_specs =
  [
    lin_lease;
    lin_quorum;
    { s_name = "ryw"; s_lease = true; s_level = Read.Level.Read_your_writes None };
    (* one heartbeat interval: tight enough to reject a lagging replica,
       loose enough to absorb one cross-region propagation delay *)
    {
      s_name = "bounded:600ms";
      s_lease = true;
      s_level = Read.Level.Bounded_staleness (600.0 *. ms);
    };
    { s_name = "eventual"; s_lease = true; s_level = Read.Level.Eventual };
  ]

type cell = {
  c_name : string;
  c_ratio : float;
  c_region : string;
  c_target : string;
  c_rtt_ms : float;
  c_reads_ok : int;
  c_read_tps : float;
  c_rejected : int;
  c_p50_us : float;
  c_p99_us : float;
  c_write_tps : float;
  c_lease_served : int;
  c_quorum_served : int;
}

let run_cell ~spec ~read_ratio ~region ~target ~rtt_ms ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft =
        { Myraft.Params.default.Myraft.Params.raft with
          Raft.Node.use_leader_lease = spec.s_lease
        };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-read" ~members:(ab_members ()) ()
  in
  (* One-way latency = RTT/2 on both quorum links. *)
  let one_way = rtt_ms /. 2.0 *. ms in
  Myraft.Cluster.set_link_latency cluster ~a:"mysql1" ~b:"lt1a" ~latency:one_way;
  Myraft.Cluster.set_link_latency cluster ~a:"mysql1" ~b:"lt1b" ~latency:one_way;
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"read-load" ~region
      ~client_latency:(100.0 *. us) ~value_mu:(log 300.0) ~value_sigma:0.2 ~read_ratio
      ~read_level:spec.s_level ~read_target:target ()
  in
  Workload.Generator.start_closed_loop gen ~threads;
  Myraft.Cluster.run_for cluster warmup;
  let stats = Workload.Generator.stats gen in
  let reads0 = stats.Workload.Generator.reads_ok in
  let committed0 = stats.Workload.Generator.committed in
  Myraft.Cluster.run_for cluster measure;
  let reads_ok = stats.Workload.Generator.reads_ok - reads0 in
  let committed = stats.Workload.Generator.committed - committed0 in
  Workload.Generator.stop gen;
  let snap = Myraft.Cluster.metrics_snapshot cluster in
  let lat = stats.Workload.Generator.read_latencies in
  {
    c_name = spec.s_name;
    c_ratio = read_ratio;
    c_region = region;
    c_target = target;
    c_rtt_ms = rtt_ms;
    c_reads_ok = reads_ok;
    c_read_tps = float_of_int reads_ok /. (measure /. s);
    c_rejected = stats.Workload.Generator.reads_rejected;
    c_p50_us = pct lat 50.0;
    c_p99_us = pct lat 99.0;
    c_write_tps = float_of_int committed /. (measure /. s);
    c_lease_served = Obs.Metrics.counter_of snap "read.lease_served";
    c_quorum_served = Obs.Metrics.counter_of snap "read.quorum_served";
  }

let print_cell c =
  Printf.printf "  %-13s %-6g %-4s %-8s %-7g %10d %10.0f %8d %10.2f %10.2f %9.0f\n%!"
    c.c_name c.c_ratio c.c_region c.c_target c.c_rtt_ms c.c_reads_ok c.c_read_tps
    c.c_rejected (c.c_p50_us /. ms) (c.c_p99_us /. ms) c.c_write_tps

let print_header () =
  Printf.printf "  %-13s %-6s %-4s %-8s %-7s %10s %10s %8s %10s %10s %9s\n" "level"
    "ratio" "src" "target" "rtt_ms" "reads_ok" "read_tps" "rej" "p50_ms" "p99_ms"
    "write_tps"

let json_of_cell c =
  Printf.sprintf
    "    {\"level\": \"%s\", \"read_ratio\": %g, \"region\": \"%s\", \"target\": \
     \"%s\", \"rtt_ms\": %g, \"reads_ok\": %d, \"read_tps\": %.1f, \"rejected\": %d, \
     \"p50_us\": %.1f, \"p99_us\": %.1f, \"write_tps\": %.1f, \"lease_served\": %d, \
     \"quorum_served\": %d}"
    c.c_name c.c_ratio c.c_region c.c_target c.c_rtt_ms c.c_reads_ok c.c_read_tps
    c.c_rejected c.c_p50_us c.c_p99_us c.c_write_tps c.c_lease_served c.c_quorum_served

let write_json ~path ~quick ~cells ~gate_pass ~lease ~quorum =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"experiment\": \"read\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"cells\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_cell cells));
  Printf.fprintf oc
    "  \"gate\": {\"rtt_ms\": %g, \"read_ratio\": %g, \"lease_tps\": %.1f, \
     \"quorum_tps\": %.1f, \"ratio\": %.2f, \"min_ratio\": %g, \"pass\": %b}\n"
    gate_rtt_ms gate_ratio_read lease.c_read_tps quorum.c_read_tps
    (lease.c_read_tps /. Float.max quorum.c_read_tps 1e-9)
    gate_ratio gate_pass;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "results written to %s\n%!" path

let run () =
  let quick = !Common.quick in
  header
    (if quick then "Read path — lease vs ReadIndex, CI cells (10 ms quorum RTT)"
     else "Read path — consistency level x read-ratio x region x quorum-RTT sweep");
  Printf.printf "  closed loop, %d client threads, %.0f s measured per cell\n\n%!" threads
    (measure /. s);
  print_header ();
  let seed = 73 in
  let cell ~spec ~read_ratio ~region ~target ~rtt_ms =
    let c = run_cell ~spec ~read_ratio ~region ~target ~rtt_ms ~seed in
    print_cell c;
    c
  in
  (* the CI pair: read-mostly linearizable traffic at the leader, lease
     on vs off, quorum RTT pinned at 10 ms *)
  let gate_lease =
    cell ~spec:lin_lease ~read_ratio:gate_ratio_read ~region:"r1" ~target:"mysql1"
      ~rtt_ms:gate_rtt_ms
  in
  let gate_quorum =
    cell ~spec:lin_quorum ~read_ratio:gate_ratio_read ~region:"r1" ~target:"mysql1"
      ~rtt_ms:gate_rtt_ms
  in
  let gate_cells = [ gate_lease; gate_quorum ] in
  let cells =
    if quick then gate_cells
    else begin
      (* every tier, leader-local and follower-local, read-mostly *)
      let level_sweep =
        List.concat_map
          (fun spec ->
            List.map
              (fun (region, target) ->
                if spec == lin_lease || spec == lin_quorum then
                  (* already measured at the leader in the gate pair *)
                  if region = "r1" then None
                  else
                    Some
                      (cell ~spec ~read_ratio:gate_ratio_read ~region ~target
                         ~rtt_ms:gate_rtt_ms)
                else
                  Some
                    (cell ~spec ~read_ratio:gate_ratio_read ~region ~target
                       ~rtt_ms:gate_rtt_ms))
              [ ("r1", "mysql1"); ("r3", "mysql3") ])
          all_specs
        |> List.filter_map Fun.id
      in
      (* how the write fraction loads the lease vs the rounds *)
      let ratio_sweep =
        List.concat_map
          (fun read_ratio ->
            List.map
              (fun spec ->
                cell ~spec ~read_ratio ~region:"r1" ~target:"mysql1" ~rtt_ms:gate_rtt_ms)
              [ lin_lease; lin_quorum ])
          [ 0.5; 0.99 ]
      in
      (* quorum-RTT sensitivity: the leaseless rounds pay it, the lease
         does not *)
      let rtt_sweep =
        List.concat_map
          (fun rtt_ms ->
            List.map
              (fun spec ->
                cell ~spec ~read_ratio:gate_ratio_read ~region:"r1" ~target:"mysql1"
                  ~rtt_ms)
              [ lin_lease; lin_quorum ])
          [ 2.0; 30.0 ]
      in
      gate_cells @ level_sweep @ ratio_sweep @ rtt_sweep
    end
  in
  let lease = List.nth gate_cells 0 and quorum = List.nth gate_cells 1 in
  let ratio = lease.c_read_tps /. Float.max quorum.c_read_tps 1e-9 in
  let gate_pass = ratio >= gate_ratio in
  write_json ~path:"BENCH_READ.json" ~quick ~cells ~gate_pass ~lease ~quorum;
  Printf.printf
    "\n  gate @ %.0f ms quorum RTT: lease = %.0f reads/s, readindex = %.0f reads/s \
     (%.2fx, need >= %.1fx)\n%!"
    gate_rtt_ms lease.c_read_tps quorum.c_read_tps ratio gate_ratio;
  if gate_pass then Printf.printf "  read gate: PASS\n%!"
  else begin
    Printf.printf "  read gate: FAIL\n%!";
    exit 1
  end
