(* Chaos campaign: the adversarial attack families (clock drift/step,
   disk corruption, asymmetric partitions, election storms) run first in
   isolation — so a failure names its family — and then combined, each
   over fixed seeds, for CI to gate on zero invariant violations.
   Clock-attack runs hand the Raft layer the drift margin its leases
   must absorb ([max_clock_drift] at the schedule's [drift_rate]); the
   unmargined variant of that scenario is the regression test in
   test/test_chaos.ml, not a CI gate.

     dune exec bench/main.exe -- chaos-campaign [--quick] *)

let steps () = if !Common.quick then 40 else 60

let seeds () = if !Common.quick then [ 211 ] else [ 211; 212; 213 ]

(* One spec per attack family, plus the combined mix.  Clock families
   need the drift margin; the others run with the default zero. *)
let families =
  [
    ( "clock",
      [ (Chaos.Schedule.Clock_drift, 1.0); (Chaos.Schedule.Clock_step, 1.0) ],
      0.05 );
    ("corrupt", [ (Chaos.Schedule.Disk_corrupt, 1.0) ], 0.0);
    ("asym-partition", [ (Chaos.Schedule.Asym_partition, 1.0) ], 0.0);
    ("storm", [ (Chaos.Schedule.Election_storm, 1.0) ], 0.0);
    ("campaign", Chaos.Schedule.campaign.Chaos.Schedule.mix, 0.05);
  ]

let run () =
  Common.header "Chaos campaign — adversarial attack families, isolated then combined";
  let total_violations = ref 0 in
  let snapshots = ref [] in
  let runs = ref 0 in
  List.iter
    (fun (name, mix, max_clock_drift) ->
      Printf.printf "\n%s attacks:\n" name;
      let spec = { Chaos.Schedule.campaign with Chaos.Schedule.mix } in
      (* auto_purge keeps compacting the primary's binlog mid-attack, so
         recovering peers routinely land behind the purge horizon and
         must be rescued by InstallSnapshot — every family now also
         exercises the snapshot path. *)
      let reports =
        Chaos.Nemesis.sweep ~spec ~max_clock_drift ~auto_purge:true ~seeds:(seeds ())
          ~steps:(steps ()) ()
      in
      List.iter
        (fun r ->
          incr runs;
          total_violations := !total_violations + List.length r.Chaos.Nemesis.r_violations;
          snapshots := r.Chaos.Nemesis.r_metrics :: !snapshots;
          Printf.printf "  %s\n%!" (Chaos.Nemesis.report_summary r))
        reports)
    families;
  Common.write_metrics_json (Obs.Metrics.merge_all ~node:"chaos-campaign" !snapshots);
  if !total_violations = 0 then
    Printf.printf "\nchaos campaign: %d runs, zero invariant violations\n%!" !runs
  else begin
    Printf.printf "\nchaos campaign: %d INVARIANT VIOLATIONS\n%!" !total_violations;
    exit 1
  end
