(* M1 — Bechamel micro-benchmarks (real wall-clock time) of the hot data
   structures: GTID-set operations, log append, CRC-32 checksumming,
   quorum evaluation, and histogram recording. *)

open Bechamel
open Toolkit

let gtid_set_add =
  Test.make ~name:"gtid_set.add (1k gnos)"
    (Staged.stage (fun () ->
         let set = ref Binlog.Gtid_set.empty in
         for g = 1 to 1000 do
           set := Binlog.Gtid_set.add !set (Binlog.Gtid.make ~source:"srv" ~gno:g)
         done;
         !set))

let gtid_set_contains =
  let set =
    let s = ref Binlog.Gtid_set.empty in
    for g = 1 to 10_000 do
      if g mod 3 <> 0 then s := Binlog.Gtid_set.add !s (Binlog.Gtid.make ~source:"srv" ~gno:g)
    done;
    !s
  in
  Test.make ~name:"gtid_set.contains (10k-gno set)"
    (Staged.stage (fun () ->
         Binlog.Gtid_set.contains set (Binlog.Gtid.make ~source:"srv" ~gno:7777)))

let log_append =
  Test.make ~name:"log_store.append (100 txns)"
    (Staged.stage (fun () ->
         let log = Binlog.Log_store.create () in
         for i = 1 to 100 do
           Binlog.Log_store.append log
             (Binlog.Entry.make
                ~opid:(Binlog.Opid.make ~term:1 ~index:i)
                (Binlog.Entry.Transaction
                   {
                     gtid = Binlog.Gtid.make ~source:"srv" ~gno:i;
                     events =
                       [
                         Binlog.Event.make
                           (Binlog.Event.Write_rows
                              {
                                table = "t";
                                ops = [ Binlog.Event.Insert { key = "k"; value = "v" } ];
                              });
                       ];
                   }))
         done;
         log))

let crc32 =
  let payload = String.make 512 'x' in
  Test.make ~name:"crc32 (512B payload)" (Staged.stage (fun () -> Binlog.Checksum.string payload))

let quorum_check =
  let cfg =
    {
      Raft.Types.members =
        List.concat_map
          (fun r ->
            List.map
              (fun i ->
                {
                  Raft.Types.id = Printf.sprintf "n%s%d" r i;
                  region = r;
                  voter = true;
                  kind = Raft.Types.Mysql_server;
                })
              [ 1; 2; 3 ])
          [ "r1"; "r2"; "r3"; "r4"; "r5"; "r6" ];
    }
  in
  let acks = [ "nr11"; "nr12" ] in
  Test.make ~name:"flexiraft data-quorum check (18 voters)"
    (Staged.stage (fun () ->
         Raft.Quorum.data_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
           ~leader_region:"r1" ~acks))

let pipeline_group_drain =
  (* submit → flush group → consensus release → engine commit for 100
     txns; exercises the preallocated group accumulator end to end *)
  Test.make ~name:"pipeline group drain (100 txns)"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let p =
           Myraft.Pipeline.create ~engine ~params:Myraft.Params.default ~is_primary_path:true
             ()
         in
         let done_count = ref 0 in
         for i = 1 to 100 do
           Myraft.Pipeline.submit p
             {
               Myraft.Pipeline.label = "txn";
               flush = (fun () -> Ok i);
               finish = (fun ~ok:_ -> incr done_count);
             }
         done;
         Myraft.Pipeline.notify_commit_index p 100;
         Sim.Engine.run_for engine 0.1;
         assert (!done_count = 100);
         !done_count))

let histogram_record =
  Test.make ~name:"histogram.record (1k samples)"
    (Staged.stage (fun () ->
         let h = Stats.Histogram.create () in
         for i = 1 to 1000 do
           Stats.Histogram.record h (float_of_int i)
         done;
         h))

let run () =
  Common.header "M1 — micro-benchmarks (Bechamel, real time)";
  let tests =
    [
      gtid_set_add;
      gtid_set_contains;
      log_append;
      crc32;
      quorum_check;
      pipeline_group_drain;
      histogram_record;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n%!" name)
        analyzed)
    tests
