(* Design-choice ablations called out in DESIGN.md:
   - P1: Raft Proxying cross-region bandwidth (§4.2.2's 2-5% overhead
     claim and the bandwidth the hierarchy saves);
   - A1: mock elections vs transfers into a lagging region (§4.3);
   - A2: FlexiRaft quorum modes vs commit latency (§4.1). *)

open Common

(* ----- P1: proxying bandwidth ----- *)

let proxy_workload ~proxying ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft = { Myraft.Params.default.Myraft.Params.raft with proxying };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-proxy"
      ~members:(ab_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  Sim.Network.reset_stats (Myraft.Cluster.network cluster);
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"load" ~region:"r1"
      ~client_latency:(100.0 *. us) ~value_mu:(log 500.0) ~value_sigma:0.1 ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:400.0;
  Myraft.Cluster.run_for cluster (20.0 *. s);
  Workload.Generator.stop gen;
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let net = Myraft.Cluster.network cluster in
  let committed = (Workload.Generator.stats gen).Workload.Generator.committed in
  (Sim.Network.cross_region_bytes net, Sim.Network.total_bytes net, committed)

let proxy ?(seed = 41) () =
  header "P1 — Raft Proxying: cross-region bandwidth (§4.2.2)";
  Printf.printf
    "Six-region evaluation ring, ~500-byte entries.  Proxying ships the payload\n\
     once per region plus metadata-only PROXY_OPs for region-mates.\n%!";
  let on_cross, on_total, on_committed = proxy_workload ~proxying:true ~seed in
  let off_cross, off_total, off_committed = proxy_workload ~proxying:false ~seed in
  Printf.printf "  %-28s %14s %14s %10s\n" "" "cross-region B" "total B" "commits";
  Printf.printf "  %-28s %14d %14d %10d\n" "proxying ON" on_cross on_total on_committed;
  Printf.printf "  %-28s %14d %14d %10d\n" "proxying OFF (vanilla)" off_cross off_total
    off_committed;
  let savings = 100.0 *. (1.0 -. (float_of_int on_cross /. float_of_int off_cross)) in
  (* Per-connection burden of a proxied downstream member: metadata-only
     PROXY_OPs instead of full payloads.  In this topology each remote
     region has 3 members: 1 gets the payload, 2 get PROXY_OPs, so
     cross-region data bytes shrink to ~1/3 plus the metadata burden. *)
  paper_vs_measured ~label:"cross-region bandwidth saved by proxying"
    ~paper:"~2/3 in a 3-member region" ~measured:(Printf.sprintf "%.1f%%" savings);
  (* §4.2.2's back-of-the-envelope: the per-connection burden of serving
     a proxied downstream member is the PROXY_OP metadata instead of full
     ~500-byte entries.  A PROXY_OP references a batch of entries, so the
     per-entry burden depends on how many ops ride in one message. *)
  let proxy_op_bytes =
    Raft.Message.size
      (Raft.Message.Proxied
         {
           next_hops = [ "x" ];
           inner =
             Raft.Message.Append_entries
               {
                 term = 1;
                 leader_id = "leader";
                 leader_region = "r1";
                 prev_opid = Binlog.Opid.zero;
                 payload = Raft.Message.Refs { first_index = 1; last_index = 1; last_term = 1 };
                 commit_index = 1;
                 seq = 1;
                 reply_route = [ "x" ];
                 leader_time = 0.0;
                 leader_last_index = 1;
                 cfg_id = Raft.Types.cfg_id_zero;
                 cfg = None;
               };
         })
  in
  let vanilla_bytes ~batch =
    Raft.Message.size
      (Raft.Message.Append_entries
         {
           term = 1;
           leader_id = "leader";
           leader_region = "r1";
           prev_opid = Binlog.Opid.zero;
           payload =
             Raft.Message.Entries
               (Array.init batch (fun i ->
                    Binlog.Entry.make
                      ~opid:(Binlog.Opid.make ~term:1 ~index:(i + 1))
                      (Binlog.Entry.Transaction
                         {
                           gtid = Binlog.Gtid.make ~source:"s" ~gno:(i + 1);
                           events =
                             [
                               Binlog.Event.make
                                 (Binlog.Event.Write_rows
                                    {
                                      table = "t";
                                      ops =
                                        [
                                          Binlog.Event.Insert
                                            { key = "k"; value = String.make 500 'x' };
                                        ];
                                    });
                             ];
                         })));
           commit_index = 1;
           seq = 1;
           reply_route = [];
           leader_time = 0.0;
           leader_last_index = 1;
           cfg_id = Raft.Types.cfg_id_zero;
           cfg = None;
         })
  in
  let burden batch =
    100.0 *. float_of_int proxy_op_bytes /. float_of_int (vanilla_bytes ~batch)
  in
  paper_vs_measured ~label:"PROXY_OP burden vs vanilla (500B entries)"
    ~paper:"2-5%"
    ~measured:
      (Printf.sprintf "%.1f%% at 1 op/msg, %.1f%% at 4, %.1f%% at 8 (PROXY_OP=%dB)"
         (burden 1) (burden 4) (burden 8) proxy_op_bytes);
  (on_cross, off_cross)

(* ----- A1: mock elections ----- *)

let mock_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let mock_trial ~use_mock ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft =
        { Myraft.Params.default.Myraft.Params.raft with use_mock_elections = use_mock };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-mock" ~members:(mock_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  (* Lag r2's logtailers: the transfer target's region quorum cannot
     function.  An unhealthy-logtailer situation automation has not yet
     repaired (§4.3). *)
  Myraft.Cluster.isolate cluster "lt2a";
  Myraft.Cluster.isolate cluster "lt2b";
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let incident_at = Myraft.Cluster.now cluster in
  ignore (Myraft.Cluster.transfer_leadership cluster ~target:"mysql2");
  Myraft.Cluster.run_for cluster (20.0 *. s);
  (* automation heals the logtailers eventually *)
  Myraft.Cluster.heal cluster "lt2a";
  Myraft.Cluster.heal cluster "lt2b";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
         Myraft.Cluster.primary cluster <> None));
  Myraft.Cluster.run_for cluster (3.0 *. s);
  let end_at = Myraft.Cluster.now cluster in
  Myraft.Availability.stop probe;
  Myraft.Availability.max_downtime probe ~start_time:incident_at ~end_time:end_at

let mock ?(trials = 10) () =
  header "A1 — Mock elections: transfer into a region with lagging logtailers (§4.3)";
  let with_mock = Stats.Histogram.create () in
  let without_mock = Stats.Histogram.create () in
  for i = 1 to trials do
    Stats.Histogram.record with_mock (mock_trial ~use_mock:true ~seed:(5000 + i));
    Stats.Histogram.record without_mock (mock_trial ~use_mock:false ~seed:(5000 + i))
  done;
  dist_row ~label:"mock ON" with_mock;
  dist_row ~label:"mock OFF" without_mock;
  paper_vs_measured ~label:"availability loss with mock elections"
    ~paper:"eliminated"
    ~measured:(Printf.sprintf "avg %.0fms downtime" (Stats.Histogram.mean with_mock /. ms));
  paper_vs_measured ~label:"availability loss without mock elections"
    ~paper:"write unavailability until logtailers heal"
    ~measured:(Printf.sprintf "avg %.0fms downtime" (Stats.Histogram.mean without_mock /. ms));
  (with_mock, without_mock)

(* ----- P2: leader NIC hotspot ----- *)

(* §4.2's second motivation: without proxying the leader replicates every
   payload to every global member directly, making its NIC the fleet's
   hotspot.  Measure the leader's egress under identical committed
   workloads with and without the hierarchy.  (The simulator's FIFO
   egress model cannot fairly arbitrate small quorum-critical AEs against
   bulk catch-up transfers the way per-connection TCP does, so this
   experiment reports offered NIC load rather than queueing-delay
   claims.) *)
let hotspot_run ~proxying ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft = { Myraft.Params.default.Myraft.Params.raft with proxying };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-hot" ~members:(ab_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Sim.Network.reset_stats (Myraft.Cluster.network cluster);
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"load" ~region:"r1"
      ~client_latency:(100.0 *. us) ~value_mu:(log 1500.0) ~value_sigma:0.2 ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:800.0;
  let duration = 15.0 *. s in
  Myraft.Cluster.run_for cluster duration;
  Workload.Generator.stop gen;
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let st = Workload.Generator.stats gen in
  let net = Myraft.Cluster.network cluster in
  let leader_egress =
    List.fold_left
      (fun acc m -> acc + Sim.Network.link_bytes net ~src:"mysql1" ~dst:m)
      0
      (Myraft.Cluster.member_ids cluster)
  in
  ( float_of_int leader_egress /. (duration /. s) /. 1e6 (* MB/s *),
    float_of_int leader_egress /. float_of_int (max 1 st.Workload.Generator.committed),
    st.Workload.Generator.committed,
    Stats.Histogram.mean st.Workload.Generator.latencies )

let hotspot ?(seed = 53) () =
  header "P2 — leader NIC hotspot relief (§4.2)";
  Printf.printf
    "Six-region ring, 800 writes/s of ~1.5KB rows.  Without proxying every\n\
     payload leaves the leader once per member (19x); with the hierarchy it\n\
     leaves once per region plus metadata-only PROXY_OPs.\n";
  let on_mbs, on_per_commit, on_committed, on_avg = hotspot_run ~proxying:true ~seed in
  let off_mbs, off_per_commit, off_committed, off_avg = hotspot_run ~proxying:false ~seed in
  Printf.printf "  %-26s %14s %18s %10s %12s\n" "" "leader egress" "bytes/commit" "commits"
    "avg commit";
  Printf.printf "  %-26s %11.1f MB/s %18.0f %10d %10.0fus\n" "proxying ON" on_mbs
    on_per_commit on_committed on_avg;
  Printf.printf "  %-26s %11.1f MB/s %18.0f %10d %10.0fus\n" "proxying OFF (vanilla)"
    off_mbs off_per_commit off_committed off_avg;
  paper_vs_measured ~label:"leader-hotspot relief"
    ~paper:"prevent the leader from becoming a hotspot"
    ~measured:
      (Printf.sprintf "leader egress %.1f -> %.1f MB/s (%.1fx less) at equal throughput"
         off_mbs on_mbs (off_mbs /. on_mbs));
  ((on_mbs, on_per_commit), (off_mbs, off_per_commit))

(* ----- A4: automatic step-down (extension) ----- *)

(* kuduraft has no automatic step down (§4.1): clients of an isolated
   leader block on consensus commit until they time out.  With the
   optional extension enabled, the stranded leader abdicates and aborts
   its in-flight transactions, so clients get fast, clean errors. *)
let stepdown_trial ~auto ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft =
        {
          Myraft.Params.default.Myraft.Params.raft with
          auto_step_down_after = (if auto then 2.0 *. s else 0.0);
        };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-sd"
      ~members:(Myraft.Cluster.small_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Myraft.Cluster.isolate cluster "mysql1";
  let settle_times = Stats.Histogram.create () in
  let pending = ref 0 in
  let t0 = Myraft.Cluster.now cluster in
  for i = 1 to 20 do
    incr pending;
    Myraft.Server.submit_write primary ~table:"t"
      ~ops:[ Binlog.Event.Insert { key = Printf.sprintf "sd%d" i; value = "v" } ]
      ~reply:(fun _ ->
        decr pending;
        Stats.Histogram.record settle_times (Myraft.Cluster.now cluster -. t0))
  done;
  ignore (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () -> !pending = 0));
  let settled = Stats.Histogram.count settle_times in
  let mean_settle =
    if settled = 0 then infinity else Stats.Histogram.mean settle_times
  in
  (settled, mean_settle)

let stepdown ?(seed = 83) () =
  header "A4 — automatic leader step-down (optional extension; §4.1 gap)";
  Printf.printf
    "20 writes against a leader that is isolated from its quorum; 30s window.\n";
  let on_settled, on_mean = stepdown_trial ~auto:true ~seed in
  let off_settled, off_mean = stepdown_trial ~auto:false ~seed in
  Printf.printf "  %-26s %10s %18s\n" "" "settled" "mean time to error";
  Printf.printf "  %-26s %10d %18s\n" "auto step-down ON" on_settled
    (if on_mean = infinity then "-" else Printf.sprintf "%.1fs" (on_mean /. s));
  Printf.printf "  %-26s %10d %18s\n" "auto step-down OFF (paper)" off_settled
    (if off_mean = infinity then "-" else Printf.sprintf "%.1fs" (off_mean /. s));
  paper_vs_measured ~label:"isolated-leader client experience"
    ~paper:"writes block; kuduraft has no auto step down"
    ~measured:
      (Printf.sprintf "OFF: %d/20 settle in 30s; ON: %d/20 with fast errors" off_settled
         on_settled);
  (on_settled, off_settled)

(* ----- A3: group-commit pipeline scaling ----- *)

(* The three-stage pipeline's group commit (§3.4) is what lets one fsync
   and one consensus round amortize across concurrent clients: as offered
   concurrency grows, flush groups grow and throughput scales while
   per-transaction latency stays bounded by the quorum RTT. *)
let group_commit_run ~threads ~seed =
  let cluster =
    Myraft.Cluster.create ~seed ~replicaset:"rs-gc"
      ~members:(Myraft.Cluster.single_region_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"gc" ~region:"r1"
      ~client_latency:(5.0 *. us) ~value_mu:(log 180.0) ~value_sigma:0.25 ()
  in
  Workload.Generator.start_closed_loop gen ~threads;
  Myraft.Cluster.run_for cluster (10.0 *. s);
  Workload.Generator.stop gen;
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let st = Workload.Generator.stats gen in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let pipeline = Myraft.Server.pipeline primary in
  ( st.Workload.Generator.committed,
    Stats.Histogram.mean st.Workload.Generator.latencies,
    Myraft.Pipeline.mean_group_size pipeline )

let group_commit ?(seed = 71) () =
  header "A3 — group-commit pipeline scaling (§3.4)";
  Printf.printf
    "Single-region ring, colocated closed-loop clients; 10s of load per point.\n";
  Printf.printf "  %8s %14s %16s %18s\n" "threads" "commits/s" "avg latency us" "mean group size";
  let rows =
    List.map
      (fun threads ->
        let committed, avg_latency, group = group_commit_run ~threads ~seed in
        Printf.printf "  %8d %14.0f %16.1f %18.2f\n%!" threads
          (float_of_int committed /. 10.0)
          avg_latency group;
        (threads, committed, group))
      [ 1; 4; 16; 64 ]
  in
  (match (List.nth rows 0, List.nth rows 3) with
  | (_, c1, g1), (_, c64, g64) ->
    paper_vs_measured ~label:"throughput scaling, 1 -> 64 threads"
      ~paper:"group commit amortizes flush + consensus"
      ~measured:
        (Printf.sprintf "%.1fx throughput, group size %.1f -> %.1f"
           (float_of_int c64 /. float_of_int c1)
           g1 g64));
  rows

(* ----- A2: FlexiRaft quorum modes ----- *)

let flexi_mode_latency ~mode ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft = { Myraft.Params.default.Myraft.Params.raft with quorum_mode = mode };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-flexi" ~members:(ab_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"load" ~region:"r1"
      ~client_latency:(5.0 *. us) ~value_mu:(log 180.0) ~value_sigma:0.25 ()
  in
  Workload.Generator.start_closed_loop gen ~threads:4;
  Myraft.Cluster.run_for cluster (20.0 *. s);
  Workload.Generator.stop gen;
  Myraft.Cluster.run_for cluster (2.0 *. s);
  (Workload.Generator.stats gen).Workload.Generator.latencies

let flexi ?(seed = 61) () =
  header "A2 — FlexiRaft quorum modes vs commit latency (§4.1)";
  Printf.printf
    "Same six-region ring and colocated closed-loop load; only the commit quorum\n\
     rule changes.  Single-region-dynamic is the paper's production mode.\n%!";
  let srd = flexi_mode_latency ~mode:Raft.Quorum.Single_region_dynamic ~seed in
  let maj = flexi_mode_latency ~mode:Raft.Quorum.Majority ~seed in
  let reg = flexi_mode_latency ~mode:Raft.Quorum.Region_majorities ~seed in
  dist_row ~label:"single-region-dynamic" srd;
  dist_row ~label:"majority-of-all" maj;
  dist_row ~label:"region-majorities" reg;
  paper_vs_measured ~label:"single-region commits"
    ~paper:"hundreds of microseconds"
    ~measured:(Printf.sprintf "avg %.0fus" (Stats.Histogram.mean srd));
  paper_vs_measured ~label:"multi-region quorums"
    ~paper:"cross-region RTT bound (tens of ms)"
    ~measured:
      (Printf.sprintf "majority avg %.1fms, region-majorities avg %.1fms"
         (Stats.Histogram.mean maj /. ms)
         (Stats.Histogram.mean reg /. ms));
  (srd, maj, reg)
