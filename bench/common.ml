(* Shared plumbing for the reproduction benches: the paper's evaluation
   topology on both stacks, experiment headers, and paper-vs-measured
   rows. *)

let s = Sim.Engine.s
let ms = Sim.Engine.ms
let us = Sim.Engine.us

(* Set by main's [--metrics-json FILE]: experiments that gather metrics
   snapshots dump the merged JSON there via {!write_metrics_json}. *)
let metrics_json : string option ref = ref None

(* Set by main's [--quick]: experiments that support it run a reduced
   sweep suitable for a CI gate. *)
let quick = ref false

let write_metrics_json snap =
  Option.iter
    (fun path ->
      (* Every dump carries the process-wide gc.* gauges: one dedicated
         registry sampled at write time (never per node — merged gauges
         sum, and a per-process reading must appear exactly once). *)
      let proc = Obs.Metrics.create ~node:"process" () in
      Obs.Metrics.sample_gc proc;
      let snap = Obs.Metrics.merge snap (Obs.Metrics.snapshot proc) in
      let oc = open_out path in
      output_string oc (Obs.Metrics.to_json snap);
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics snapshot written to %s\n%!" path)
    !metrics_json

let header title =
  Printf.printf "\n=======================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=======================================================================\n%!"

let section title = Printf.printf "\n--- %s ---\n%!" title

let paper_vs_measured ~label ~paper ~measured =
  Printf.printf "  %-44s paper: %-14s measured: %s\n%!" label paper measured

(* The §6.1 A/B topology: primary + 2 in-region logtailers, five follower
   regions with 2 logtailers each, two learners. *)
let ab_members () = Myraft.Cluster.paper_members ()

(* Latency model with production clients pinned ~10 ms RTT from every
   server region (the paper reports "about 10ms" client->primary). *)
let ab_latency () =
  List.fold_left
    (fun model region ->
      Sim.Latency.override model ~region_a:"clients" ~region_b:region ~lo:(4_600.0 *. us)
        ~hi:(5_400.0 *. us))
    Sim.Latency.default
    [ "r1"; "r2"; "r3"; "r4"; "r5"; "r6" ]

(* Cost model for the production A/B: loaded fleet machines with large
   row-based payloads (heavier prepare/flush/commit than the dedicated
   sysbench box). *)
let production_costs () =
  {
    Myraft.Params.default with
    Myraft.Params.prepare_us = 1_300.0;
    flush_base_us = 2_200.0;
    flush_per_txn_us = 40.0;
    (* checksum + compression scale with the production payloads (§3.4) *)
    raft_stamp_us = 120.0;
    commit_base_us = 1_600.0;
    commit_per_txn_us = 30.0;
    apply_per_txn_us = 500.0;
  }

let myraft_ab_cluster ~seed ~costs =
  let cluster =
    Myraft.Cluster.create ~seed ~params:costs ~latency:(ab_latency ())
      ~replicaset:"rs-ab" ~members:(ab_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  cluster

let semisync_ab_cluster ~seed ~costs =
  let cluster =
    Semisync.Cluster.create ~seed ~costs ~latency:(ab_latency ()) ~replicaset:"rs-ab"
      ~members:(ab_members ()) ()
  in
  Semisync.Cluster.bootstrap cluster ~leader_id:"mysql1";
  cluster

(* ----- per-cell allocation accounting -----

   Every closed-loop cell runs inside a [Gc.quick_stat] delta so the
   benches report real allocator pressure next to the virtual-time
   throughput numbers: minor-heap words tell us what the hot path costs
   the collector, and words-per-committed-transaction is the figure the
   bench-regression gate locks in.  All stats are process-wide deltas —
   run one cell at a time. *)

type alloc_stats = {
  al_minor_words : float;
  al_promoted_words : float;
  al_major_words : float;
  al_minor_collections : int;
  al_major_collections : int;
}

let with_alloc_stats f =
  let a = Gc.quick_stat () in
  let v = f () in
  let b = Gc.quick_stat () in
  ( v,
    {
      al_minor_words = b.Gc.minor_words -. a.Gc.minor_words;
      al_promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
      al_major_words = b.Gc.major_words -. a.Gc.major_words;
      al_minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      al_major_collections = b.Gc.major_collections - a.Gc.major_collections;
    } )

let words_per_txn st ~txns =
  if txns <= 0 then 0.0 else st.al_minor_words /. float_of_int txns

(* JSON fragment (no surrounding braces) recording a cell's gc.* figures,
   ready to splice into a bench cell object. *)
let alloc_json st ~txns =
  Printf.sprintf
    "\"gc\": {\"minor_words\": %.0f, \"promoted_words\": %.0f, \"major_words\": %.0f, \
     \"minor_collections\": %d, \"major_collections\": %d, \"minor_words_per_txn\": %.1f}"
    st.al_minor_words st.al_promoted_words st.al_major_words st.al_minor_collections
    st.al_major_collections (words_per_txn st ~txns)

let pct h p = Stats.Histogram.percentile h p

let dist_row ~label h =
  Printf.printf "  %-12s n=%-6d avg=%10.1f  p50=%10.1f  p95=%10.1f  p99=%10.1f (us)\n%!"
    label (Stats.Histogram.count h) (Stats.Histogram.mean h) (pct h 50.0) (pct h 95.0)
    (pct h 99.0)

let dist_row_ms ~label h =
  Printf.printf "  %-10s %-10s pct99=%8.0f  pct95=%8.0f  median=%8.0f  avg=%8.0f (ms)\n%!"
    (fst label) (snd label)
    (pct h 99.0 /. ms)
    (pct h 95.0 /. ms)
    (pct h 50.0 /. ms)
    (Stats.Histogram.mean h /. ms)
