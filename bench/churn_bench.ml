(* A8: membership churn / evacuation / self-healing campaign.

   Every churn scenario (rolling region evacuation, replacement of a
   permanently dead voter while a region is partitioned away, membership
   churn under election storms, per-group churn on a sharded deployment)
   over a seed sweep, gated on zero invariant violations — including the
   logless-reconfig oracles — and full convergence.

     dune exec bench/main.exe -- churn *)

let seeds = [ 7; 8; 9; 10; 11 ]

let run () =
  Common.header "A8: membership churn + self-healing campaign";
  let reports = Chaos.Churn.sweep ~seeds () in
  let by_scenario = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key = r.Chaos.Churn.c_scenario in
      Hashtbl.replace by_scenario key
        (r :: (Option.value ~default:[] (Hashtbl.find_opt by_scenario key))))
    reports;
  Printf.printf "\n%-24s %8s %9s %13s %10s %10s\n" "scenario" "runs" "reconfigs"
    "replacements" "commits" "violations";
  Hashtbl.iter
    (fun scenario rs ->
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
      Printf.printf "%-24s %8d %9d %13d %10d %10d\n" scenario (List.length rs)
        (sum (fun r -> r.Chaos.Churn.c_reconfigs))
        (sum (fun r -> List.length r.Chaos.Churn.c_replacements))
        (sum (fun r -> r.Chaos.Churn.c_workload_committed))
        (sum (fun r -> List.length r.Chaos.Churn.c_violations)))
    by_scenario;
  print_newline ();
  List.iter (fun r -> Printf.printf "  %s\n%!" (Chaos.Churn.report_summary r)) reports;
  let violations =
    List.concat_map (fun r -> r.Chaos.Churn.c_violations) reports
  in
  let unconverged =
    List.filter (fun r -> not r.Chaos.Churn.c_converged) reports
  in
  Common.write_metrics_json
    (Obs.Metrics.merge_all ~node:"churn"
       (List.map (fun r -> r.Chaos.Churn.c_metrics) reports));
  let json_of_report r =
    Printf.sprintf
      "    {\"scenario\": \"%s\", \"seed\": %d, \"reconfigs\": %d, \"replacements\": \
       %d, \"committed_index\": %d, \"client_commits\": %d, \"converged\": %b, \
       \"violations\": %d}"
      r.Chaos.Churn.c_scenario r.Chaos.Churn.c_seed r.Chaos.Churn.c_reconfigs
      (List.length r.Chaos.Churn.c_replacements)
      r.Chaos.Churn.c_committed r.Chaos.Churn.c_workload_committed
      r.Chaos.Churn.c_converged
      (List.length r.Chaos.Churn.c_violations)
  in
  let oc = open_out "BENCH_CHURN.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"churn\",\n";
  Printf.fprintf oc "  \"runs\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_report reports));
  Printf.fprintf oc
    "  \"gate\": {\"runs\": %d, \"violations\": %d, \"unconverged\": %d, \"pass\": %b}\n"
    (List.length reports) (List.length violations) (List.length unconverged)
    (violations = [] && unconverged = []);
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "results written to BENCH_CHURN.json\n%!";
  List.iter
    (fun v -> Printf.printf "  VIOLATION %s\n" (Chaos.Invariants.violation_to_string v))
    violations;
  List.iter
    (fun r ->
      Printf.printf "  UNCONVERGED %s seed %d\n" r.Chaos.Churn.c_scenario
        r.Chaos.Churn.c_seed)
    unconverged;
  if violations = [] && unconverged = [] then
    Printf.printf "\nchurn campaign: %d runs, zero invariant violations, all converged\n%!"
      (List.length reports)
  else begin
    Printf.printf "\nchurn campaign: %d violations, %d unconverged runs\n%!"
      (List.length violations) (List.length unconverged);
    exit 1
  end
