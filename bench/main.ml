(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus the DESIGN.md ablations.

     dune exec bench/main.exe               # run everything
     dune exec bench/main.exe -- table2     # one experiment
     dune exec bench/main.exe -- --list     # what exists

   Experiment ids follow DESIGN.md: table1, fig5a (5a+5b), fig5c (5c+5d),
   table2, proxy, mock, flexi, micro. *)

let table1 () =
  Common.header "Table 1 — roles in MyRaft compared to the prior setup";
  print_string (Myraft.Roles.render ())

let fig5ab () = ignore (Fig5.production ())

let fig5cd () = ignore (Fig5.sysbench ())

let table2 () = ignore (Table2.run ())

let proxy () = ignore (Ablations.proxy ())

let hotspot () = ignore (Ablations.hotspot ())

let mock () = ignore (Ablations.mock ())

let flexi () = ignore (Ablations.flexi ())

let groupcommit () = ignore (Ablations.group_commit ())

let stepdown () = ignore (Ablations.stepdown ())

let micro () = Micro.run ()

let chaos_smoke () = Chaos_smoke.run ()

let chaos_campaign () = Chaos_campaign.run ()

let pipeline () = Pipeline_bench.run ()

let read_bench () = Read_bench.run ()

let apply_bench () = Apply_bench.run ()

let snapshot_bench () = Snapshot_bench.run ()

let shards_bench () = Shards_bench.run ()

let churn_bench () = Churn_bench.run ()

let proxy_scale () = Proxy_bench.run ()

let experiments =
  [
    ("table1", "Table 1: role mapping", table1);
    ("fig5a", "Fig 5a/5b: production A/B latency + throughput", fig5ab);
    ("fig5c", "Fig 5c/5d: sysbench latency + throughput", fig5cd);
    ("table2", "Table 2: promotion/failover downtime", table2);
    ("proxy", "P1: proxying bandwidth ablation", proxy);
    ("hotspot", "P2: leader NIC hotspot relief", hotspot);
    ("mock", "A1: mock election ablation", mock);
    ("flexi", "A2: FlexiRaft quorum mode ablation", flexi);
    ("groupcommit", "A3: group-commit pipeline scaling", groupcommit);
    ("stepdown", "A4: automatic step-down extension", stepdown);
    ("micro", "M1: Bechamel micro-benchmarks", micro);
    ("chaos-smoke", "C1: nemesis seed sweep, gate on zero invariant violations", chaos_smoke);
    ( "chaos-campaign",
      "A6: adversarial attack families (clock/corrupt/asym/storm), gate on zero violations",
      chaos_campaign );
    ("pipeline", "P3: windowed replication window x RTT sweep, gate on w8 >= 2x w1", pipeline);
    ("read", "R1: tiered read path sweep, gate on lease >= 5x readindex reads", read_bench);
    ( "apply",
      "A5: parallel apply workers x skew x cost sweep, gate on 4 lanes >= 2.5x serial",
      apply_bench );
    ( "snapshot",
      "A7: purged-log rejoin, gate on InstallSnapshot >= 5x faster than full replay",
      snapshot_bench );
    ( "shards",
      "S1: multi-Raft groups x skew sweep, gate on 4 groups >= 2.5x tps at < 2x msgs",
      shards_bench );
    ( "churn",
      "A8: membership churn / evacuation / self-healing campaign, gate on zero violations",
      churn_bench );
    ( "proxy-scale",
      "P4: 8-region x 104-replica fan-out, gate on tree saving >= 3x cross-region bytes",
      proxy_scale );
  ]

let run_all () =
  Printf.printf "MyRaft reproduction bench harness — running all experiments\n%!";
  List.iter (fun (_, _, f) -> f ()) experiments;
  Printf.printf "\nAll experiments complete.\n%!"

(* Peel [--metrics-json FILE] and [--quick] off the argument list (they
   apply to any experiment that honours them); the rest are experiment
   ids. *)
let rec extract_flags acc = function
  | "--metrics-json" :: path :: rest ->
    Common.metrics_json := Some path;
    extract_flags acc rest
  | "--quick" :: rest ->
    Common.quick := true;
    extract_flags acc rest
  | "--metrics-json" :: [] ->
    Printf.eprintf "--metrics-json needs a FILE argument\n";
    exit 1
  | x :: rest -> extract_flags (x :: acc) rest
  | [] -> List.rev acc

let () =
  match extract_flags [] (List.tl (Array.to_list Sys.argv)) with
  | [] -> run_all ()
  | [ "--list" ] ->
    List.iter (fun (id, descr, _) -> Printf.printf "%-8s %s\n" id descr) experiments
  | ids ->
    List.iter
      (fun id ->
        match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
        | Some (_, _, f) -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; try --list\n" id;
          exit 1)
      ids
