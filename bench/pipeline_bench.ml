(* Windowed-replication bench: committed-transaction throughput as a
   function of the per-peer send window and the quorum round-trip time,
   on the §6.1 topology.

     dune exec bench/main.exe -- pipeline            # full sweep
     dune exec bench/main.exe -- pipeline --quick    # CI cells only

   The leader is mysql1 in r1; under the Single_region_dynamic quorum a
   data commit needs one of the two r1 logtailers, so the mysql1<->lt1a
   and mysql1<->lt1b links set the replication RTT.  Stop-and-wait
   (window 1) caps committed throughput near one AppendEntries batch per
   round trip; the sliding window keeps the pipe full.

   Every cell runs inside a [Gc.quick_stat] delta, so the JSON also
   records the real allocator cost of the closed loop — minor-heap words
   per committed transaction is the figure the hot-path work of the
   zero-allocation pass is gated on.

   Writes BENCH_PIPELINE.json and, for CI, gates on:
   - the 10 ms cells: window 8 must commit at least [gate_ratio] times
     what window 1 does and clear an absolute throughput floor;
   - the 2 ms window-8 cell: throughput must clear [gate_floor_tps_2ms]
     (the pre-hot-path-pass baseline times [gate_speedup_2ms]);
   - allocation: minor-heap words per committed txn in the 2 ms window-8
     cell must not regress more than 10% over the budget recorded in the
     committed BENCH_PIPELINE.json. *)

open Common

let threads = 768

let warmup = 1.0 *. s

(* BENCH_MEASURE_S overrides the per-cell measure time (in seconds) for
   faster local iteration; CI always runs the 4 s default. *)
let measure =
  match Sys.getenv_opt "BENCH_MEASURE_S" with
  | Some v -> float_of_string v *. s
  | None -> 4.0 *. s

let gate_rtt_ms = 10.0

let gate_ratio = 2.0

let gate_floor_tps = 3000.0

(* Hot-path gate (2 ms RTT, window 8): the pre-pass baseline was
   79,913 tps; the serialize-once flush path must hold at least a 1.3x
   speedup over it. *)
let baseline_tps_2ms = 79_913.0

let gate_speedup_2ms = 1.3

let gate_floor_tps_2ms = baseline_tps_2ms *. gate_speedup_2ms

(* Allocation regression budget: >10% growth of minor-heap words per
   committed txn over the recorded value fails the gate. *)
let alloc_slack = 1.10

type cell = {
  c_window : int;
  c_rtt_ms : float;
  c_committed : int;
  c_tps : float;
  c_p50_us : float;
  c_p99_us : float;
  c_retransmits : int;
  c_nacks : int;
  c_alloc : Common.alloc_stats;
  c_words_per_txn : float;
}

let run_cell ~window ~rtt_ms ~seed =
  let params =
    {
      Myraft.Params.default with
      Myraft.Params.raft =
        { Myraft.Params.default.Myraft.Params.raft with
          Raft.Node.max_inflight_aes = window
        };
    }
  in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"rs-pipeline"
      ~members:(ab_members ()) ()
  in
  (* One-way latency = RTT/2 on both quorum links. *)
  let one_way = rtt_ms /. 2.0 *. ms in
  Myraft.Cluster.set_link_latency cluster ~a:"mysql1" ~b:"lt1a" ~latency:one_way;
  Myraft.Cluster.set_link_latency cluster ~a:"mysql1" ~b:"lt1b" ~latency:one_way;
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"pipe-load" ~region:"r1"
      ~client_latency:(100.0 *. us) ~value_mu:(log 300.0) ~value_sigma:0.2 ()
  in
  Workload.Generator.start_closed_loop gen ~threads;
  Myraft.Cluster.run_for cluster warmup;
  let stats = Workload.Generator.stats gen in
  let committed0 = stats.Workload.Generator.committed in
  let (), alloc =
    Common.with_alloc_stats (fun () -> Myraft.Cluster.run_for cluster measure)
  in
  let committed = stats.Workload.Generator.committed - committed0 in
  Workload.Generator.stop gen;
  let snap = Myraft.Cluster.metrics_snapshot cluster in
  (* BENCH_DEBUG dumps the merged metrics snapshot per cell — handy when
     chasing a regression down to a specific counter. *)
  (match Sys.getenv_opt "BENCH_DEBUG" with
  | Some _ -> print_string (Obs.Metrics.render snap)
  | None -> ());
  let lat = stats.Workload.Generator.latencies in
  {
    c_window = window;
    c_rtt_ms = rtt_ms;
    c_committed = committed;
    c_tps = float_of_int committed /. (measure /. s);
    c_p50_us = pct lat 50.0;
    c_p99_us = pct lat 99.0;
    c_retransmits = Obs.Metrics.counter_of snap "raft.retransmits";
    c_nacks = Obs.Metrics.counter_of snap "raft.nacks";
    c_alloc = alloc;
    c_words_per_txn = Common.words_per_txn alloc ~txns:committed;
  }

let json_of_cell c =
  Printf.sprintf
    "    {\"window\": %d, \"rtt_ms\": %g, \"committed\": %d, \"tps\": %.1f, \
     \"p50_us\": %.1f, \"p99_us\": %.1f, \"retransmits\": %d, \"nacks\": %d, %s}"
    c.c_window c.c_rtt_ms c.c_committed c.c_tps c.c_p50_us c.c_p99_us c.c_retransmits
    c.c_nacks
    (Common.alloc_json c.c_alloc ~txns:c.c_committed)

(* The alloc budget previously recorded in BENCH_PIPELINE.json (the
   committed file, i.e. the state of the world before this run).  None
   when the file or field is missing — first run, no gate. *)
let recorded_alloc_budget ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception _ -> None
  | body ->
    (* substring scan; the file is machine-written by this bench *)
    let key = "\"words_per_txn_budget\": " in
    let rec find i =
      if i + String.length key > String.length body then None
      else if String.sub body i (String.length key) = key then begin
        let j = i + String.length key in
        let k = ref j in
        while
          !k < String.length body
          && (match body.[!k] with '0' .. '9' | '.' | '-' | 'e' -> true | _ -> false)
        do
          incr k
        done;
        float_of_string_opt (String.sub body j (!k - j))
      end
      else find (i + 1)
    in
    find 0

let write_json ~path ~quick ~cells ~gate_pass ~w1 ~w8 ~hot ~alloc_budget =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"experiment\": \"pipeline\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"cells\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_cell cells));
  Printf.fprintf oc
    "  \"gate\": {\"rtt_ms\": %g, \"w1_tps\": %.1f, \"w8_tps\": %.1f, \"ratio\": %.2f, \
     \"min_ratio\": %g, \"floor_tps\": %g, \"pass\": %b},\n"
    gate_rtt_ms w1.c_tps w8.c_tps
    (w8.c_tps /. Float.max w1.c_tps 1e-9)
    gate_ratio gate_floor_tps gate_pass;
  Printf.fprintf oc
    "  \"hot_path_gate\": {\"rtt_ms\": 2, \"window\": 8, \"tps\": %.1f, \
     \"baseline_tps\": %g, \"speedup\": %.2f, \"min_speedup\": %g, \
     \"words_per_txn\": %.1f, \"words_per_txn_budget\": %.1f}\n"
    hot.c_tps baseline_tps_2ms
    (hot.c_tps /. baseline_tps_2ms)
    gate_speedup_2ms hot.c_words_per_txn
    (match alloc_budget with Some b -> Float.min b hot.c_words_per_txn | None -> hot.c_words_per_txn);
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "results written to %s\n%!" path

let run () =
  let quick = !Common.quick in
  header
    (if quick then "Pipeline — windowed replication, CI cells (2 + 10 ms RTT)"
     else "Pipeline — windowed replication: window x quorum-RTT sweep");
  let windows = if quick then [ 1; 8 ] else [ 1; 2; 8; 32 ] in
  let rtts = if quick then [ 2.0; 10.0 ] else [ 2.0; 10.0; 30.0 ] in
  let path = "BENCH_PIPELINE.json" in
  let alloc_budget = recorded_alloc_budget ~path in
  Printf.printf "  closed loop, %d client threads, %.0f s measured per cell\n\n%!"
    threads (measure /. s);
  Printf.printf "  %-8s %-8s %10s %10s %10s %10s %6s %6s %10s\n" "window" "rtt_ms"
    "committed" "tps" "p50_ms" "p99_ms" "rtx" "nack" "words/txn";
  let cells =
    List.concat_map
      (fun rtt_ms ->
        List.map
          (fun window ->
            let c = run_cell ~window ~rtt_ms ~seed:71 in
            Printf.printf "  %-8d %-8g %10d %10.0f %10.2f %10.2f %6d %6d %10.0f\n%!"
              window rtt_ms c.c_committed c.c_tps (c.c_p50_us /. ms) (c.c_p99_us /. ms)
              c.c_retransmits c.c_nacks c.c_words_per_txn;
            c)
          windows)
      rtts
  in
  let find w rtt =
    List.find (fun c -> c.c_window = w && c.c_rtt_ms = rtt) cells
  in
  let w1 = find 1 gate_rtt_ms and w8 = find 8 gate_rtt_ms in
  let hot = find 8 2.0 in
  let ratio = w8.c_tps /. Float.max w1.c_tps 1e-9 in
  let gate_pass = ratio >= gate_ratio && w8.c_tps >= gate_floor_tps in
  write_json ~path ~quick ~cells ~gate_pass ~w1 ~w8 ~hot ~alloc_budget;
  Printf.printf
    "\n  gate @ %.0f ms RTT: window 8 = %.0f tps, window 1 = %.0f tps (%.2fx, need \
     >= %.1fx and >= %.0f tps)\n%!"
    gate_rtt_ms w8.c_tps w1.c_tps ratio gate_ratio gate_floor_tps;
  Printf.printf
    "  hot-path gate @ 2 ms RTT: window 8 = %.0f tps (%.2fx baseline %.0f, need >= \
     %.1fx); %.0f minor words/txn%s\n%!"
    hot.c_tps
    (hot.c_tps /. baseline_tps_2ms)
    baseline_tps_2ms gate_speedup_2ms hot.c_words_per_txn
    (match alloc_budget with
    | Some b -> Printf.sprintf " (budget %.0f, +10%% slack)" b
    | None -> " (no recorded budget; first run)");
  let hot_pass = hot.c_tps >= gate_floor_tps_2ms in
  let alloc_pass =
    match alloc_budget with
    | Some b -> hot.c_words_per_txn <= b *. alloc_slack
    | None -> true
  in
  if gate_pass && hot_pass && alloc_pass then Printf.printf "  pipeline gate: PASS\n%!"
  else begin
    Printf.printf "  pipeline gate: FAIL%s%s%s\n%!"
      (if gate_pass then "" else " [window ratio]")
      (if hot_pass then "" else " [hot-path tps]")
      (if alloc_pass then "" else " [alloc regression]");
    exit 1
  end
