(* Snapshot bench: rejoin time for a replica that fell behind the
   primary's purged binlog — InstallSnapshot rescue vs full log replay.

     dune exec bench/main.exe -- snapshot            # full sweep
     dune exec bench/main.exe -- snapshot --quick    # CI cell only

   The replica crashes right after bootstrap; the primary then commits
   [entries] transactions over a bounded key space (state stays small
   while the log grows — the regime where compaction pays).  For
   purge-fraction 0 the log is kept whole and the rejoiner catches up by
   ordinary replay: every entry is shipped through the AppendEntries
   window and re-executed by the applier.  For purge-fraction f the
   primary flushes and purges once f·entries are committed, so the
   rejoiner comes back behind the purge horizon, wedges, and is rescued
   by an engine-checkpoint InstallSnapshot — transfer cost scales with
   the (bounded) state, not the log.

   Writes BENCH_SNAPSHOT.json and gates on the largest log: the
   snapshot-path rejoin must be at least [gate_ratio] times faster than
   full replay of the same log. *)

open Common

let threads = 128

let key_space = 2_000

(* Crash-to-load gap: the rejoiner must be past the leader's liveness
   grace (2 x missed_heartbeats x heartbeat_interval = 3 s at defaults)
   before the purge, or safe_purge_index still floors on its
   match_index and nothing is dropped. *)
let grace_gap = 4.0 *. s

let gate_ratio () = if !Common.quick then 2.0 else 5.0

type cell = {
  c_entries : int;
  c_frac : float;
  c_rejoin_s : float;
  c_target : int; (* commit index the rejoiner had to reach *)
  c_purged_files : int;
  c_installs : int; (* snapshots installed on the rejoiner *)
  c_converged : bool;
}

let run_cell ~entries ~frac ~seed =
  (* Loaded-fleet cost model: replay pays the production per-transaction
     apply cost, the regime the paper's provisioning numbers describe. *)
  let cluster =
    Myraft.Cluster.create ~seed ~params:(production_costs ()) ~replicaset:"rs-snap"
      ~members:(Myraft.Cluster.small_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let server id =
    match Myraft.Cluster.server cluster id with
    | Some s -> s
    | None -> failwith (id ^ " missing from small topology")
  in
  let primary = server "mysql1" and rejoiner = server "mysql3" in
  Myraft.Cluster.crash cluster "mysql3";
  Myraft.Cluster.run_for cluster grace_gap;
  let backend = Workload.Backend.myraft cluster in
  (* One generator per phase: the purge needs a quiesced primary —
     under active load safe_purge_index trails the tip by the in-flight
     replication windows, so the freshly-closed file is never whole
     below it and nothing drops. *)
  let load ~phase target =
    let gen =
      Workload.Generator.create ~backend ~client_id:("snap-load-" ^ phase)
        ~region:"r1" ~client_latency:(1.0 *. ms) ~key_space
        ~key_dist:Workload.Generator.Uniform ~value_mu:(log 300.0) ~value_sigma:0.2 ()
    in
    Workload.Generator.start_closed_loop gen ~threads;
    while (Workload.Generator.stats gen).Workload.Generator.committed < target do
      Myraft.Cluster.run_for cluster (0.25 *. s)
    done;
    Workload.Generator.stop gen;
    Myraft.Cluster.run_for cluster (0.5 *. s) (* drain the pipeline *)
  in
  let purge_point = int_of_float (frac *. float_of_int entries) in
  let purged_files = ref 0 in
  if frac > 0.0 then begin
    load ~phase:"a" purge_point;
    (match Myraft.Server.flush_binary_logs primary with
    | Ok () -> ()
    | Error e -> failwith ("flush failed: " ^ e));
    (* the rotate is a replicated event: the file only closes once it
       is consensus committed *)
    Myraft.Cluster.run_for cluster (0.5 *. s);
    purged_files := Myraft.Server.purge_binary_logs primary
  end;
  load ~phase:"b" (entries - purge_point);
  let target =
    match Myraft.Cluster.raft_of cluster "mysql1" with
    | Some raft -> Raft.Node.commit_index raft
    | None -> 0
  in
  let t0 = Myraft.Cluster.now cluster in
  Myraft.Cluster.restart cluster "mysql3";
  let converged =
    Myraft.Cluster.run_until cluster ~timeout:(300.0 *. s) (fun () ->
        Myraft.Server.applied_through rejoiner >= target)
  in
  {
    c_entries = entries;
    c_frac = frac;
    c_rejoin_s = (Myraft.Cluster.now cluster -. t0) /. s;
    c_target = target;
    c_purged_files = !purged_files;
    c_installs = Raft.Node.snapshots_installed (Myraft.Server.raft rejoiner);
    c_converged = converged;
  }

let json_of_cell c =
  Printf.sprintf
    "    {\"entries\": %d, \"purge_frac\": %g, \"rejoin_s\": %.3f, \"target_index\": %d, \
     \"purged_files\": %d, \"snapshot_installs\": %d, \"converged\": %b}"
    c.c_entries c.c_frac c.c_rejoin_s c.c_target c.c_purged_files c.c_installs
    c.c_converged

let write_json ~quick ~cells ~replay ~snap ~ratio ~pass =
  let oc = open_out "BENCH_SNAPSHOT.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"experiment\": \"snapshot\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"cells\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_cell cells));
  Printf.fprintf oc
    "  \"gate\": {\"entries\": %d, \"replay_s\": %.3f, \"snapshot_s\": %.3f, \"ratio\": \
     %.2f, \"min_ratio\": %g, \"pass\": %b}\n"
    replay.c_entries replay.c_rejoin_s snap.c_rejoin_s ratio (gate_ratio ()) pass;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "results written to BENCH_SNAPSHOT.json\n%!"

let run () =
  let quick = !Common.quick in
  header
    (if quick then "Snapshot — rejoin after purge, CI cell (replay vs InstallSnapshot)"
     else "Snapshot — rejoin time: full replay vs InstallSnapshot, log x purge sweep");
  let lengths = if quick then [ 8_000 ] else [ 10_000; 50_000 ] in
  let fracs = if quick then [ 0.0; 0.9 ] else [ 0.0; 0.5; 0.9 ] in
  Printf.printf "  %d keys, %d closed-loop threads; rejoiner crashed for the whole load\n\n%!"
    key_space threads;
  Printf.printf "  %-9s %-10s %10s %10s %8s %9s %10s\n" "entries" "purge_frac"
    "rejoin_s" "target" "files" "installs" "converged";
  let cells =
    List.concat_map
      (fun entries ->
        List.map
          (fun frac ->
            let c = run_cell ~entries ~frac ~seed:41 in
            Printf.printf "  %-9d %-10g %10.3f %10d %8d %9d %10b\n%!" c.c_entries
              c.c_frac c.c_rejoin_s c.c_target c.c_purged_files c.c_installs
              c.c_converged;
            c)
          fracs)
      lengths
  in
  let biggest = List.fold_left (fun acc c -> max acc c.c_entries) 0 cells in
  let find frac = List.find (fun c -> c.c_entries = biggest && c.c_frac = frac) cells in
  let replay = find 0.0 and snap = find 0.9 in
  let ratio = replay.c_rejoin_s /. Float.max snap.c_rejoin_s 1e-9 in
  (* the comparison only means something if both sides converged and the
     purge cell actually took the snapshot path *)
  let pass =
    ratio >= gate_ratio ()
    && List.for_all (fun c -> c.c_converged) cells
    && snap.c_installs >= 1 && replay.c_installs = 0
  in
  write_json ~quick ~cells ~replay ~snap ~ratio ~pass;
  Printf.printf
    "\n  gate @ %d entries: replay %.3f s vs snapshot %.3f s — %.1fx, need >= %gx\n%!"
    biggest replay.c_rejoin_s snap.c_rejoin_s ratio (gate_ratio ());
  if pass then Printf.printf "  snapshot gate: PASS\n%!"
  else begin
    Printf.printf "  snapshot gate: FAIL\n%!";
    exit 1
  end
