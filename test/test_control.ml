(* Control-plane tests: enable-raft rollout, Quorum Fixer, member
   replacement automation, lock service. *)

let ms = Helpers.ms
let s = Helpers.s

let two_region_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

(* ----- lock service ----- *)

let test_lock_exclusive () =
  let engine = Sim.Engine.create () in
  let locks = Control.Lock_service.create engine in
  let r1 = ref None and r2 = ref None in
  Control.Lock_service.acquire locks ~name:"rs1" ~owner:"tool-a" (fun r -> r1 := Some r);
  Sim.Engine.run_for engine (1.0 *. s);
  Control.Lock_service.acquire locks ~name:"rs1" ~owner:"tool-b" (fun r -> r2 := Some r);
  Sim.Engine.run_for engine (1.0 *. s);
  Alcotest.(check bool) "first acquires" true (!r1 = Some (Ok ()));
  Alcotest.(check bool) "second denied" true (match !r2 with Some (Error _) -> true | _ -> false);
  Alcotest.(check bool) "release by non-holder fails" true
    (Result.is_error (Control.Lock_service.release locks ~name:"rs1" ~owner:"tool-b"));
  Alcotest.(check bool) "release by holder ok" true
    (Result.is_ok (Control.Lock_service.release locks ~name:"rs1" ~owner:"tool-a"))

(* ----- enable-raft ----- *)

let test_enable_raft_migrates () =
  let members = two_region_members () in
  let ss = Semisync.Cluster.create ~seed:5 ~replicaset:"rs-mig" ~members () in
  Semisync.Cluster.bootstrap ss ~leader_id:"mysql1";
  (* some committed history to migrate *)
  let primary = Option.get (Semisync.Cluster.primary ss) in
  let written = ref 0 in
  for i = 1 to 20 do
    Semisync.Server.submit_write primary ~table:"t"
      ~ops:[ Binlog.Event.Insert { key = Printf.sprintf "k%d" i; value = "v" } ]
      ~reply:(fun gtid -> if gtid <> None then incr written)
  done;
  ignore (Semisync.Cluster.run_until ss ~timeout:(10.0 *. s) (fun () -> !written = 20));
  let locks = Control.Lock_service.create (Semisync.Cluster.engine ss) in
  match Control.Enable_raft.run ~members ~lock_service:locks ss with
  | Error e -> Alcotest.failf "enable-raft: %s" e
  | Ok (cluster, report) ->
    Alcotest.(check int) "all txns migrated" 20
      report.Control.Enable_raft.transactions_migrated;
    Alcotest.(check bool) "unavailability bounded (< 5s)" true
      (report.Control.Enable_raft.write_unavailability_us < 5.0 *. s);
    (* data survived with GTIDs intact and the ring is writable *)
    let new_primary = Option.get (Myraft.Cluster.primary cluster) in
    Alcotest.(check string) "same primary" "mysql1" (Myraft.Server.id new_primary);
    Alcotest.(check (option string)) "migrated row present" (Some "v")
      (Storage.Engine.get (Myraft.Server.storage new_primary) ~table:"t" ~key:"k13");
    Alcotest.(check bool) "gtids preserved" true
      (Binlog.Gtid_set.contains
         (Myraft.Server.gtid_executed new_primary)
         (Binlog.Gtid.make ~source:"mysql1" ~gno:20));
    Helpers.check_ok "write on converted ring"
      (Helpers.direct_write cluster ~key:"post" ~value:"raft")

let test_enable_raft_refuses_unhealthy () =
  let members = two_region_members () in
  let ss = Semisync.Cluster.create ~seed:6 ~replicaset:"rs-bad" ~members () in
  Semisync.Cluster.bootstrap ss ~leader_id:"mysql1";
  Semisync.Cluster.crash ss "mysql2";
  let locks = Control.Lock_service.create (Semisync.Cluster.engine ss) in
  match Control.Enable_raft.run ~members ~lock_service:locks ss with
  | Error e ->
    Alcotest.(check bool) "safety check refused" true (Helpers.contains e "safety")
  | Ok _ -> Alcotest.fail "enable-raft ran on an unhealthy replicaset"

(* ----- quorum fixer ----- *)

let shattered_cluster () =
  let cluster =
    Helpers.bootstrapped ~members:(two_region_members ()) ()
  in
  ignore (Helpers.write_n cluster 5);
  (* correlated failure of the data quorum: the leader and one in-region
     logtailer die together *)
  Myraft.Cluster.crash cluster "mysql1";
  Myraft.Cluster.crash cluster "lt1a";
  Myraft.Cluster.run_for cluster (10.0 *. s);
  cluster

let test_quorum_fixer_restores_leader () =
  let cluster = shattered_cluster () in
  Alcotest.(check (option string)) "shattered: no leader" None
    (Myraft.Cluster.raft_leader cluster);
  (match Control.Quorum_fixer.run cluster with
  | Ok report ->
    (* lt1b has the longest log (it acked the committed writes) *)
    Alcotest.(check string) "chose the longest log" "lt1b"
      report.Control.Quorum_fixer.chosen
  | Error e -> Alcotest.failf "quorum fixer: %s" e);
  (* the logtailer interim leader hands off to a MySQL server and the
     ring becomes writable again *)
  let writable () =
    match Myraft.Cluster.primary cluster with Some _ -> true | None -> false
  in
  Alcotest.(check bool) "ring writable again" true
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) writable);
  (* committed writes survived the incident *)
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Alcotest.(check (option string)) "committed data intact" (Some "v")
    (Storage.Engine.get (Myraft.Server.storage primary) ~table:"t" ~key:"k3")

let test_quorum_fixer_conservative_mode () =
  let cluster = Helpers.bootstrapped ~members:(two_region_members ()) () in
  match Control.Quorum_fixer.run cluster with
  | Error e -> Alcotest.(check bool) "refuses healthy ring" true (Helpers.contains e "leader")
  | Ok _ -> Alcotest.fail "quorum fixer acted on a healthy ring"

(* ----- automation ----- *)

let test_replace_member () =
  let cluster = Helpers.bootstrapped ~members:(two_region_members ()) () in
  ignore (Helpers.write_n cluster 5);
  Myraft.Cluster.crash cluster "lt2a";
  Myraft.Cluster.run_for cluster (2.0 *. s);
  (match Control.Automation.replace_member cluster ~dead:"lt2a" ~replacement_id:"lt2c" with
  | Ok r ->
    Alcotest.(check string) "removed" "lt2a" r.Control.Automation.removed;
    Alcotest.(check string) "added" "lt2c" r.Control.Automation.added
  | Error e -> Alcotest.failf "replace: %s" e);
  (* the replacement is a voter in everyone's config and caught up *)
  let leader = Option.get (Myraft.Cluster.raft_leader cluster) in
  let cfg = Raft.Node.config (Option.get (Myraft.Cluster.raft_of cluster leader)) in
  Alcotest.(check bool) "lt2c in config" true (Raft.Types.is_member cfg "lt2c");
  Alcotest.(check bool) "lt2a gone" false (Raft.Types.is_member cfg "lt2a");
  Helpers.check_ok "ring still writable" (Helpers.direct_write cluster ~key:"post" ~value:"v")

let test_replace_unknown_member_fails () =
  let cluster = Helpers.bootstrapped ~members:(two_region_members ()) () in
  match Control.Automation.replace_member cluster ~dead:"ghost" ~replacement_id:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replaced a non-member"

(* ----- shard-leader rebalancer ----- *)

(* A synthetic deployment: leaders live in refs, transfers mutate them
   (or fail, modeling a group that is mid-reconfig). *)
let mk_groups ?(reconfiguring = []) ~leaders ~candidates ~region_of () =
  List.mapi
    (fun i leader ->
      {
        Control.Rebalance.g_index = i;
        g_leader = (fun () -> !leader);
        g_region_of = (fun n -> List.assoc_opt n region_of);
        g_candidates = (fun () -> candidates);
        g_transfer =
          (fun ~target ->
            if List.mem i reconfiguring then Error "membership change in progress"
            else begin
              leader := Some target;
              Ok ()
            end);
      })
    leaders

let three_region_nodes = [ ("n1", "r1"); ("n2", "r2"); ("n3", "r3") ]

let test_rebalance_spreads_across_regions () =
  (* all six leaders piled on one node *)
  let leaders = List.init 6 (fun _ -> ref (Some "n1")) in
  let groups =
    mk_groups ~leaders ~candidates:[ "n1"; "n2"; "n3" ] ~region_of:three_region_nodes ()
  in
  let plan, errors = Control.Rebalance.rebalance ~groups in
  Alcotest.(check (list (pair int string))) "no transfer errors" [] errors;
  Alcotest.(check bool) "had to move" false plan.Control.Rebalance.balanced;
  let count node =
    List.length (List.filter (fun l -> !l = Some node) leaders)
  in
  List.iter
    (fun (n, _) -> Alcotest.(check int) ("two leaders on " ^ n) 2 (count n))
    three_region_nodes

let test_rebalance_noop_when_balanced () =
  let leaders = [ ref (Some "n1"); ref (Some "n2"); ref (Some "n3") ] in
  let groups =
    mk_groups ~leaders ~candidates:[ "n1"; "n2"; "n3" ] ~region_of:three_region_nodes ()
  in
  (* settle to the deterministic desired placement... *)
  ignore (Control.Rebalance.rebalance ~groups);
  (* ...after which another pass must not move anything (no oscillation) *)
  let before = List.map (fun l -> !l) leaders in
  let plan, errors = Control.Rebalance.rebalance ~groups in
  Alcotest.(check (list (pair int string))) "no errors" [] errors;
  Alcotest.(check bool) "balanced" true plan.Control.Rebalance.balanced;
  Alcotest.(check int) "no moves" 0 (List.length plan.Control.Rebalance.moves);
  Alcotest.(check bool) "leaders untouched" true (before = List.map (fun l -> !l) leaders)

(* A group whose transfer is refused (membership change in flight)
   reports the error without derailing the other groups' moves. *)
let test_rebalance_skips_reconfiguring_group () =
  let leaders = List.init 3 (fun _ -> ref (Some "n1")) in
  let groups =
    mk_groups ~reconfiguring:[ 1 ] ~leaders ~candidates:[ "n1"; "n2"; "n3" ]
      ~region_of:three_region_nodes ()
  in
  let plan, errors = Control.Rebalance.rebalance ~groups in
  Alcotest.(check bool) "plan wanted moves" false plan.Control.Rebalance.balanced;
  (match errors with
  | [ (1, reason) ] ->
    Alcotest.(check bool) "reason surfaced" true
      (Helpers.contains reason "membership change")
  | other -> Alcotest.failf "expected exactly group 1 to fail, got %d errors"
               (List.length other));
  (* the groups that could move did *)
  let moved =
    List.filter
      (fun l -> !l <> Some "n1")
      [ List.nth leaders 0; List.nth leaders 2 ]
  in
  Alcotest.(check bool) "other groups progressed" true (moved <> [])

let suites =
  [
    ( "control.lock",
      [ Alcotest.test_case "exclusive acquire/release" `Quick test_lock_exclusive ] );
    ( "control.enable_raft",
      [
        Alcotest.test_case "migrates a replicaset" `Quick test_enable_raft_migrates;
        Alcotest.test_case "refuses unhealthy replicaset" `Quick
          test_enable_raft_refuses_unhealthy;
      ] );
    ( "control.quorum_fixer",
      [
        Alcotest.test_case "restores a shattered quorum" `Quick
          test_quorum_fixer_restores_leader;
        Alcotest.test_case "conservative on healthy ring" `Quick
          test_quorum_fixer_conservative_mode;
      ] );
    ( "control.automation",
      [
        Alcotest.test_case "replace member" `Quick test_replace_member;
        Alcotest.test_case "unknown member rejected" `Quick test_replace_unknown_member_fails;
      ] );
    ( "control.rebalance",
      [
        Alcotest.test_case "spreads leaders across regions" `Quick
          test_rebalance_spreads_across_regions;
        Alcotest.test_case "no-op when balanced" `Quick test_rebalance_noop_when_balanced;
        Alcotest.test_case "mid-reconfig group skipped, others move" `Quick
          test_rebalance_skips_reconfiguring_group;
      ] );
  ]
