(* Full-cluster chaos tests: Chaos.Nemesis driving a complete MyRaft
   cluster (MySQL servers + logtailers + engines) under an open-loop
   workload while Chaos.Invariants checks continuously.

   Covers the acceptance gates: lossy links (5% drop + duplication +
   reordering) in both quorum modes, torn-tail crash recovery (no
   consensus-committed transaction may ever be lost), a 200-step
   drop+dup+reorder+partition+torn-tail run in both modes, and
   seed-replay determinism (same seed, identical trace digest). *)

let spec_with faults overrides =
  match Chaos.Schedule.with_faults overrides faults with
  | Ok s -> s
  | Error e -> failwith e

let check_clean ~what (r : Chaos.Nemesis.report) =
  (match r.Chaos.Nemesis.r_violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d invariant violations (seed %d), first: %s" what
      (List.length r.Chaos.Nemesis.r_violations)
      r.Chaos.Nemesis.r_seed
      (Chaos.Invariants.violation_to_string v));
  if r.Chaos.Nemesis.r_workload_committed < 20 then
    Alcotest.failf "%s: too little progress (%d client commits, seed %d)" what
      r.Chaos.Nemesis.r_workload_committed r.Chaos.Nemesis.r_seed

(* ----- lossy links: 5% drop + duplication + reordering ----- *)

let lossy_spec () =
  spec_with [ "drop"; "dup"; "reorder" ] { Chaos.Schedule.default with drop_p = 0.05 }

let test_lossy_links_majority () =
  let r =
    Chaos.Nemesis.run ~spec:(lossy_spec ()) ~quorum:Raft.Quorum.Majority ~seed:21 ~steps:120 ()
  in
  check_clean ~what:"lossy links (majority)" r

let test_lossy_links_flexiraft () =
  let r =
    Chaos.Nemesis.run ~spec:(lossy_spec ()) ~quorum:Raft.Quorum.Single_region_dynamic ~seed:22
      ~steps:120 ()
  in
  check_clean ~what:"lossy links (flexi)" r

(* ----- torn-tail crash recovery ----- *)

(* Buffered appends + crash lose up to K unsynced log entries on
   restart.  Ack gating on the durable index means no consensus-committed
   transaction may be among them — which is exactly what the commit-
   safety invariant asserts across every crash/restart. *)
let test_torn_tail_loses_no_committed_txn () =
  let spec = spec_with [ "torn-tail"; "crash" ] Chaos.Schedule.default in
  let r = Chaos.Nemesis.run ~spec ~quorum:Raft.Quorum.Single_region_dynamic ~seed:23 ~steps:150 () in
  check_clean ~what:"torn tail" r;
  let torn =
    Option.value
      (List.assoc_opt Chaos.Schedule.Torn_tail r.Chaos.Nemesis.r_injections)
      ~default:0
  in
  if torn = 0 then Alcotest.fail "schedule never injected a torn tail; test proves nothing"

(* ----- acceptance run + seed-replay determinism ----- *)

(* The ISSUE's acceptance gate: >=200 steps of drop + dup + reorder +
   partition + torn-tail, zero violations in both quorum modes, and the
   same seed must reproduce the identical trace (digest equality). *)
let test_acceptance_run_and_determinism () =
  let spec =
    spec_with [ "drop"; "dup"; "reorder"; "partition"; "torn-tail" ] Chaos.Schedule.default
  in
  List.iter
    (fun quorum ->
      let name = Chaos.Nemesis.quorum_name quorum in
      let run () = Chaos.Nemesis.run ~spec ~quorum ~seed:42 ~steps:200 () in
      let a = run () in
      check_clean ~what:("acceptance (" ^ name ^ ")") a;
      let b = run () in
      Alcotest.(check int32)
        (name ^ ": same seed, same trace digest")
        a.Chaos.Nemesis.r_trace_digest b.Chaos.Nemesis.r_trace_digest;
      Alcotest.(check int)
        (name ^ ": same seed, same commit count")
        a.Chaos.Nemesis.r_workload_committed b.Chaos.Nemesis.r_workload_committed)
    [ Raft.Quorum.Majority; Raft.Quorum.Single_region_dynamic ]

(* ----- schedule: zero-weight faults are never sampled ----- *)

(* A weight of exactly 0.0 means "in the mix but disabled"; the old
   weighted draw could still return such a kind through its fallback
   arm.  Also: a mix with no positive weight draws nothing. *)
let test_schedule_zero_weight_never_drawn () =
  let rng = Sim.Rng.of_int 1234 in
  let spec =
    { Chaos.Schedule.default with
      mix = [ (Chaos.Schedule.Crash_restart, 0.0); (Chaos.Schedule.Leader_crash, 1.0) ]
    }
  in
  for _ = 1 to 1000 do
    match Chaos.Schedule.draw spec rng with
    | Some Chaos.Schedule.Leader_crash -> ()
    | Some k -> Alcotest.failf "zero-weight kind drawn: %s" (Chaos.Schedule.kind_to_string k)
    | None -> Alcotest.fail "draw returned None with a positive weight present"
  done;
  let dead =
    { spec with
      mix = [ (Chaos.Schedule.Crash_restart, 0.0); (Chaos.Schedule.Torn_tail, -1.0) ]
    }
  in
  Alcotest.(check bool) "all-zero mix draws nothing" true (Chaos.Schedule.draw dead rng = None)

(* ----- lease attack regression: slow clock + ack starvation ----- *)

(* The adversarial scenario the per-node clock model exists for: slow
   the leader's oscillator to 0.8x (its lease now looks valid 25%
   longer than it really is) and drop every follower->leader link so no
   ack can re-extend the lease; keep requesting lease reads throughout.
   A rate change is the stealthy variant of the attack — unlike a
   backward step it never violates local monotonicity, so the always-on
   backward-step watchdog cannot see it.  With [max_clock_drift = 0]
   the leader trusts its local clock blindly and serves reads past the
   lease's true expiry — the bug this PR's clock-fault detectors fix.
   With the margin configured, the heartbeat tick-interval watchdog
   catches the rate transition, revokes the lease, and not one stale
   read is served. *)
let ms = Sim.Engine.ms
let s = Sim.Engine.s

let lease_attack_stale_serves ~max_clock_drift =
  let params =
    { Myraft.Params.default with
      raft =
        { Myraft.Params.default.Myraft.Params.raft with
          Raft.Node.use_leader_lease = true;
          max_clock_drift
        }
    }
  in
  let c =
    Myraft.Cluster.create ~seed:7 ~params ~replicaset:"lease-attack"
      ~members:(Myraft.Cluster.single_region_members ()) ()
  in
  Myraft.Cluster.bootstrap c ~leader_id:"mysql1";
  Myraft.Cluster.run_for c (2.0 *. s);
  let raft =
    match Myraft.Cluster.raft_of c "mysql1" with
    | Some r -> r
    | None -> Alcotest.fail "no raft on mysql1"
  in
  Alcotest.(check bool) "mysql1 leads" true (Raft.Node.is_leader raft);
  let clock =
    match Myraft.Cluster.clock_of c "mysql1" with
    | Some k -> k
    | None -> Alcotest.fail "no clock on mysql1"
  in
  Sim.Clock.set_rate clock 0.8;
  let net = Myraft.Cluster.network c in
  List.iter
    (fun id ->
      if id <> "mysql1" then
        Sim.Network.set_link_faults net ~src:id ~dst:"mysql1"
          { Sim.Network.no_faults with drop = 1.0 })
    (Myraft.Cluster.member_ids c);
  let engine = Myraft.Cluster.engine c in
  let rec reader () =
    if Raft.Node.is_leader raft then Raft.Node.read_index raft (fun _ -> ());
    ignore (Sim.Engine.schedule engine ~delay:(20.0 *. ms) reader)
  in
  reader ();
  Myraft.Cluster.run_for c (4.0 *. s);
  Raft.Node.lease_stale_serves raft

let test_lease_attack_unmargined_serves_stale () =
  let stale = lease_attack_stale_serves ~max_clock_drift:0.0 in
  if stale = 0 then
    Alcotest.fail
      "attack failed to reproduce the pre-fix bug: no stale lease read was served with \
       a zero drift margin (the regression scenario proves nothing)"

let test_lease_attack_margined_serves_none () =
  Alcotest.(check int) "no stale lease reads with the drift margin configured" 0
    (lease_attack_stale_serves ~max_clock_drift:0.05)

(* ----- disk corruption: detection live, recovery on restart ----- *)

(* Rot an entry in a follower's committed prefix.  While the node is
   still serving that log, the corrupt-entry-served invariant must flag
   it (this is the checker's pre-fix demonstration: without the recovery
   scan the rot would persist forever).  Then crash + restart the node:
   recovery must detect the CRC failure, truncate the suffix, refetch it
   from the leader, and reconverge byte-identically. *)
let test_corruption_recovery_regression () =
  let c =
    Myraft.Cluster.create ~seed:9 ~replicaset:"rot"
      ~members:(Myraft.Cluster.single_region_members ()) ()
  in
  Myraft.Cluster.bootstrap c ~leader_id:"mysql1";
  let backend = Workload.Backend.myraft c in
  let gen = Workload.Generator.create ~backend ~client_id:"rot-client" ~region:"r1" () in
  Workload.Generator.start_open_loop gen ~rate_per_s:200.0;
  Myraft.Cluster.run_for c (3.0 *. s);
  Workload.Generator.stop gen;
  Myraft.Cluster.run_for c (1.0 *. s);
  let store =
    match Myraft.Cluster.server c "mysql2" with
    | Some srv -> Myraft.Server.log srv
    | None -> Alcotest.fail "no mysql2"
  in
  let ci =
    match Myraft.Cluster.raft_of c "mysql2" with
    | Some r -> Raft.Node.commit_index r
    | None -> Alcotest.fail "no raft on mysql2"
  in
  Alcotest.(check bool) "enough committed traffic" true (ci > 50);
  let idx = ci / 2 in
  Alcotest.(check bool) "rot injected" true
    (Binlog.Log_store.corrupt_entry store ~index:idx ~flavor:Binlog.Entry.Body);
  (* live detection: the checker must flag the corrupt committed entry *)
  let inv =
    Chaos.Invariants.create
      ~now:(fun () -> Myraft.Cluster.now c)
      ~probes:(Chaos.Nemesis.probes_of_cluster c)
      ()
  in
  for _ = 1 to (ci / 128) + 2 do
    Chaos.Invariants.check inv
  done;
  (match
     List.find_opt
       (fun v -> v.Chaos.Invariants.v_invariant = "corrupt-entry-served")
       (Chaos.Invariants.violations inv)
   with
  | Some _ -> ()
  | None -> Alcotest.fail "checker missed a corrupt entry inside a committed prefix");
  (* recovery: crash + restart must scan, truncate and refetch *)
  Myraft.Cluster.crash c "mysql2";
  Myraft.Cluster.restart c "mysql2";
  let detected =
    match Myraft.Cluster.metrics_of c "mysql2" with
    | Some m -> Obs.Metrics.counter_of (Obs.Metrics.snapshot m) "binlog.corruption_detected"
    | None -> 0
  in
  Alcotest.(check bool) "recovery scan detected the rot" true (detected >= 1);
  let leader_tail () =
    match Myraft.Cluster.raft_of c "mysql1" with
    | Some r -> Binlog.Opid.index (Raft.Node.last_opid r)
    | None -> 0
  in
  let converged =
    Myraft.Cluster.run_until c ~timeout:(30.0 *. s) (fun () ->
        Binlog.Log_store.last_index store = leader_tail () && leader_tail () > 0)
  in
  Alcotest.(check bool) "mysql2 refetched the truncated suffix" true converged;
  (* every entry it now serves verifies clean *)
  let lo = max 1 (Binlog.Log_store.purged_below store) in
  for i = lo to Binlog.Log_store.last_index store do
    match Binlog.Log_store.entry_at store i with
    | Some e ->
      if not (Binlog.Entry.verify e) then
        Alcotest.failf "entry %d still fails its checksum after recovery" i
    | None -> ()
  done;
  (* and the cluster as a whole is clean again *)
  let inv2 =
    Chaos.Invariants.create
      ~now:(fun () -> Myraft.Cluster.now c)
      ~probes:(Chaos.Nemesis.probes_of_cluster c)
      ()
  in
  for _ = 1 to (ci / 128) + 2 do
    Chaos.Invariants.check inv2
  done;
  Alcotest.(check int) "no violations after recovery" 0
    (Chaos.Invariants.violation_count inv2)

(* ----- storm + ack starvation: commit over a divergent suffix ----- *)

(* The second pre-fix bug the campaign surfaced (seed 21): election
   storms depose a leader that an asymmetric partition keeps ignorant —
   it cannot hear the new terms, so it keeps appending a divergent
   suffix no ack will ever commit.  When the partition heals, the new
   leader's heartbeats anchor at match_index 0 (trivially matching
   prev), carry a high commit index — and the deposed leader adopted
   [min leader_commit (raw log tail)], committing its own never-chosen
   entries to the engine before truncation could arrive
   (engine-convergence violation at the first divergent commit).  The
   fix caps commit adoption and the freshness anchor at the prefix the
   request actually VERIFIED (prev + entries carried). *)
let test_storm_starved_leader_commits_nothing_divergent () =
  let spec = spec_with [ "asym-partition"; "storm" ] Chaos.Schedule.campaign in
  let r = Chaos.Nemesis.run ~spec ~quorum:Raft.Quorum.Single_region_dynamic ~seed:21 ~steps:40 () in
  check_clean ~what:"storm + asym ack starvation" r;
  let count k =
    Option.value (List.assoc_opt k r.Chaos.Nemesis.r_injections) ~default:0
  in
  if count Chaos.Schedule.Election_storm = 0 || count Chaos.Schedule.Asym_partition = 0
  then Alcotest.fail "schedule never paired a storm with an asym partition; test proves nothing"

(* Regression (seed 32): a forced election could depose a leader whose
   lease was still live.  The lease-safety argument assumes no Real
   quorum forms within the stickiness window of the last quorum ack, but
   leader stickiness was only enforced on Pre-votes — and a chaos storm
   (trigger_election) goes straight to Real.  Voters who were still
   receiving the old leader's heartbeats (asym partitions cut only the
   ack direction) elected the storm candidate; it committed writes while
   the partitioned old leader, unaware of the new term, kept serving
   lease reads its arithmetic said were safe — stale by linearizability
   though not past global lease expiry, so only the linearizability
   checker caught it.  The fix applies stickiness to Real votes too,
   exempting only TimeoutNow transfers (whose initiating leader has
   already voided its lease). *)
let test_storm_cannot_depose_live_leaseholder () =
  let spec = spec_with [ "asym-partition"; "storm" ] Chaos.Schedule.campaign in
  let r = Chaos.Nemesis.run ~spec ~quorum:Raft.Quorum.Single_region_dynamic ~seed:32 ~steps:80 () in
  check_clean ~what:"storm vs live lease" r;
  let count k =
    Option.value (List.assoc_opt k r.Chaos.Nemesis.r_injections) ~default:0
  in
  if count Chaos.Schedule.Election_storm = 0 || count Chaos.Schedule.Asym_partition = 0
  then Alcotest.fail "schedule never paired a storm with an asym partition; test proves nothing"

(* ----- the checker itself must catch violations ----- *)

(* Negative control: two identically seeded single-node rings elect the
   same term independently; pointing one checker at both must produce an
   election-safety violation.  Guards against the checker silently
   checking nothing. *)
let test_invariants_catch_two_leaders () =
  let harness id =
    Test_raft.make_harness ~seed:11 ~params:Test_raft.majority_params
      [ (id, "r1", true, Raft.Types.Mysql_server) ]
  in
  let ha = harness "xa" and hb = harness "xb" in
  let elected h id =
    Test_raft.run_until h ~timeout:(10.0 *. Sim.Engine.s) (fun () ->
        Test_raft.leaders h = [ id ])
  in
  Alcotest.(check bool) "xa elected" true (elected ha "xa");
  Alcotest.(check bool) "xb elected" true (elected hb "xb");
  let term h id = Raft.Node.current_term (Test_raft.raft (Test_raft.get h id)) in
  Alcotest.(check int) "same seed, same term" (term ha "xa") (term hb "xb");
  let probe h id =
    let n = Test_raft.get h id in
    {
      Chaos.Invariants.probe_id = id;
      probe_up = (fun () -> n.Test_raft.up);
      probe_raft = (fun () -> Some (Test_raft.raft n));
      probe_store = (fun () -> Some n.Test_raft.store);
      probe_engine = (fun () -> None);
    }
  in
  let inv =
    Chaos.Invariants.create
      ~snapshot:(fun () ->
        let m = Obs.Metrics.create ~node:"harness" () in
        Obs.Metrics.bump m "checker.polls";
        Obs.Metrics.snapshot m)
      ~now:(fun () -> Sim.Engine.now ha.Test_raft.engine)
      ~probes:[ probe ha "xa"; probe hb "xb" ]
      ()
  in
  Chaos.Invariants.check inv;
  match Chaos.Invariants.violations inv with
  | [] -> Alcotest.fail "checker missed two leaders sharing a term"
  | v :: _ -> (
    Alcotest.(check string)
      "flagged as election safety" "election-safety" v.Chaos.Invariants.v_invariant;
    match v.Chaos.Invariants.v_metrics with
    | None -> Alcotest.fail "violation carries no metrics snapshot"
    | Some snap ->
      Alcotest.(check int) "snapshot captured at detection" 1
        (Obs.Metrics.counter_of snap "checker.polls"))

let suites =
  [
    ( "chaos.cluster",
      [
        Alcotest.test_case "lossy links: majority" `Slow test_lossy_links_majority;
        Alcotest.test_case "lossy links: flexiraft" `Slow test_lossy_links_flexiraft;
        Alcotest.test_case "torn tail loses nothing committed" `Slow
          test_torn_tail_loses_no_committed_txn;
        Alcotest.test_case "acceptance run + determinism" `Slow
          test_acceptance_run_and_determinism;
        Alcotest.test_case "checker catches two leaders" `Quick
          test_invariants_catch_two_leaders;
        Alcotest.test_case "zero-weight faults never drawn" `Quick
          test_schedule_zero_weight_never_drawn;
        Alcotest.test_case "lease attack: unmargined leader serves stale" `Quick
          test_lease_attack_unmargined_serves_stale;
        Alcotest.test_case "lease attack: margined leader serves none" `Quick
          test_lease_attack_margined_serves_none;
        Alcotest.test_case "storm + asym: no divergent suffix committed" `Quick
          test_storm_starved_leader_commits_nothing_divergent;
        Alcotest.test_case "storm cannot depose a live leaseholder" `Quick
          test_storm_cannot_depose_live_leaseholder;
        Alcotest.test_case "disk corruption: detect live, recover on restart" `Quick
          test_corruption_recovery_regression;
      ] );
  ]
