(* Full-cluster chaos tests: Chaos.Nemesis driving a complete MyRaft
   cluster (MySQL servers + logtailers + engines) under an open-loop
   workload while Chaos.Invariants checks continuously.

   Covers the acceptance gates: lossy links (5% drop + duplication +
   reordering) in both quorum modes, torn-tail crash recovery (no
   consensus-committed transaction may ever be lost), a 200-step
   drop+dup+reorder+partition+torn-tail run in both modes, and
   seed-replay determinism (same seed, identical trace digest). *)

let spec_with faults overrides =
  match Chaos.Schedule.with_faults overrides faults with
  | Ok s -> s
  | Error e -> failwith e

let check_clean ~what (r : Chaos.Nemesis.report) =
  (match r.Chaos.Nemesis.r_violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d invariant violations (seed %d), first: %s" what
      (List.length r.Chaos.Nemesis.r_violations)
      r.Chaos.Nemesis.r_seed
      (Chaos.Invariants.violation_to_string v));
  if r.Chaos.Nemesis.r_workload_committed < 20 then
    Alcotest.failf "%s: too little progress (%d client commits, seed %d)" what
      r.Chaos.Nemesis.r_workload_committed r.Chaos.Nemesis.r_seed

(* ----- lossy links: 5% drop + duplication + reordering ----- *)

let lossy_spec () =
  spec_with [ "drop"; "dup"; "reorder" ] { Chaos.Schedule.default with drop_p = 0.05 }

let test_lossy_links_majority () =
  let r =
    Chaos.Nemesis.run ~spec:(lossy_spec ()) ~quorum:Raft.Quorum.Majority ~seed:21 ~steps:120 ()
  in
  check_clean ~what:"lossy links (majority)" r

let test_lossy_links_flexiraft () =
  let r =
    Chaos.Nemesis.run ~spec:(lossy_spec ()) ~quorum:Raft.Quorum.Single_region_dynamic ~seed:22
      ~steps:120 ()
  in
  check_clean ~what:"lossy links (flexi)" r

(* ----- torn-tail crash recovery ----- *)

(* Buffered appends + crash lose up to K unsynced log entries on
   restart.  Ack gating on the durable index means no consensus-committed
   transaction may be among them — which is exactly what the commit-
   safety invariant asserts across every crash/restart. *)
let test_torn_tail_loses_no_committed_txn () =
  let spec = spec_with [ "torn-tail"; "crash" ] Chaos.Schedule.default in
  let r = Chaos.Nemesis.run ~spec ~quorum:Raft.Quorum.Single_region_dynamic ~seed:23 ~steps:150 () in
  check_clean ~what:"torn tail" r;
  let torn =
    Option.value
      (List.assoc_opt Chaos.Schedule.Torn_tail r.Chaos.Nemesis.r_injections)
      ~default:0
  in
  if torn = 0 then Alcotest.fail "schedule never injected a torn tail; test proves nothing"

(* ----- acceptance run + seed-replay determinism ----- *)

(* The ISSUE's acceptance gate: >=200 steps of drop + dup + reorder +
   partition + torn-tail, zero violations in both quorum modes, and the
   same seed must reproduce the identical trace (digest equality). *)
let test_acceptance_run_and_determinism () =
  let spec =
    spec_with [ "drop"; "dup"; "reorder"; "partition"; "torn-tail" ] Chaos.Schedule.default
  in
  List.iter
    (fun quorum ->
      let name = Chaos.Nemesis.quorum_name quorum in
      let run () = Chaos.Nemesis.run ~spec ~quorum ~seed:42 ~steps:200 () in
      let a = run () in
      check_clean ~what:("acceptance (" ^ name ^ ")") a;
      let b = run () in
      Alcotest.(check int32)
        (name ^ ": same seed, same trace digest")
        a.Chaos.Nemesis.r_trace_digest b.Chaos.Nemesis.r_trace_digest;
      Alcotest.(check int)
        (name ^ ": same seed, same commit count")
        a.Chaos.Nemesis.r_workload_committed b.Chaos.Nemesis.r_workload_committed)
    [ Raft.Quorum.Majority; Raft.Quorum.Single_region_dynamic ]

(* ----- the checker itself must catch violations ----- *)

(* Negative control: two identically seeded single-node rings elect the
   same term independently; pointing one checker at both must produce an
   election-safety violation.  Guards against the checker silently
   checking nothing. *)
let test_invariants_catch_two_leaders () =
  let harness id =
    Test_raft.make_harness ~seed:11 ~params:Test_raft.majority_params
      [ (id, "r1", true, Raft.Types.Mysql_server) ]
  in
  let ha = harness "xa" and hb = harness "xb" in
  let elected h id =
    Test_raft.run_until h ~timeout:(10.0 *. Sim.Engine.s) (fun () ->
        Test_raft.leaders h = [ id ])
  in
  Alcotest.(check bool) "xa elected" true (elected ha "xa");
  Alcotest.(check bool) "xb elected" true (elected hb "xb");
  let term h id = Raft.Node.current_term (Test_raft.raft (Test_raft.get h id)) in
  Alcotest.(check int) "same seed, same term" (term ha "xa") (term hb "xb");
  let probe h id =
    let n = Test_raft.get h id in
    {
      Chaos.Invariants.probe_id = id;
      probe_up = (fun () -> n.Test_raft.up);
      probe_raft = (fun () -> Some (Test_raft.raft n));
      probe_store = (fun () -> Some n.Test_raft.store);
      probe_engine = (fun () -> None);
    }
  in
  let inv =
    Chaos.Invariants.create
      ~snapshot:(fun () ->
        let m = Obs.Metrics.create ~node:"harness" () in
        Obs.Metrics.bump m "checker.polls";
        Obs.Metrics.snapshot m)
      ~now:(fun () -> Sim.Engine.now ha.Test_raft.engine)
      ~probes:[ probe ha "xa"; probe hb "xb" ]
      ()
  in
  Chaos.Invariants.check inv;
  match Chaos.Invariants.violations inv with
  | [] -> Alcotest.fail "checker missed two leaders sharing a term"
  | v :: _ -> (
    Alcotest.(check string)
      "flagged as election safety" "election-safety" v.Chaos.Invariants.v_invariant;
    match v.Chaos.Invariants.v_metrics with
    | None -> Alcotest.fail "violation carries no metrics snapshot"
    | Some snap ->
      Alcotest.(check int) "snapshot captured at detection" 1
        (Obs.Metrics.counter_of snap "checker.polls"))

let suites =
  [
    ( "chaos.cluster",
      [
        Alcotest.test_case "lossy links: majority" `Slow test_lossy_links_majority;
        Alcotest.test_case "lossy links: flexiraft" `Slow test_lossy_links_flexiraft;
        Alcotest.test_case "torn tail loses nothing committed" `Slow
          test_torn_tail_loses_no_committed_txn;
        Alcotest.test_case "acceptance run + determinism" `Slow
          test_acceptance_run_and_determinism;
        Alcotest.test_case "checker catches two leaders" `Quick
          test_invariants_catch_two_leaders;
      ] );
  ]
