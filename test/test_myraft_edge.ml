(* Edge-case integration tests: repeated failovers, FlexiRaft's
   consistency-over-availability choice under a full leader-region
   partition, learner promotion to failover-capable voter, row-lock
   contention on the primary, and commit-pipeline behaviour under
   concurrent clients. *)

let ms = Helpers.ms
let s = Helpers.s

let two_region_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let wait_new_primary ?(timeout = 40.0 *. s) cluster ~not_this =
  Myraft.Cluster.run_until cluster ~timeout (fun () ->
      match Myraft.Cluster.primary cluster with
      | Some srv -> Myraft.Server.id srv <> not_this
      | None -> false)

let test_repeated_failovers_converge () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  ignore (Helpers.write_n cluster 5);
  for round = 1 to 3 do
    let victim = Myraft.Server.id (Option.get (Myraft.Cluster.primary cluster)) in
    Myraft.Cluster.crash cluster victim;
    Alcotest.(check bool)
      (Printf.sprintf "round %d: new primary" round)
      true
      (wait_new_primary cluster ~not_this:victim);
    ignore (Helpers.write_n ~prefix:(Printf.sprintf "r%d-" round) cluster 5);
    Myraft.Cluster.restart cluster victim;
    Myraft.Cluster.run_for cluster (5.0 *. s)
  done;
  Myraft.Cluster.run_for cluster (5.0 *. s);
  match Workload.Failure_injection.consistency_check cluster with
  | Ok n -> Alcotest.(check int) "all 20 txns everywhere" 20 n
  | Error e -> Alcotest.failf "divergence after 3 failovers: %s" e

let test_leader_region_partition_chooses_consistency () =
  (* §4.1: when the leader's whole region partitions away, FlexiRaft
     waits for the partition to heal rather than electing unsafely. *)
  let cluster = Helpers.bootstrapped ~members:(two_region_members ()) () in
  ignore (Helpers.write_n cluster 5);
  Sim.Network.cut_regions (Myraft.Cluster.network cluster) "r1" "r2";
  (* the isolated leader can still commit with its in-region quorum *)
  Helpers.check_ok "in-region commit during partition"
    (Helpers.direct_write cluster ~key:"during" ~value:"v");
  (* r2 cannot elect: it would need a majority of r1 (the last leader's
     region) *)
  Myraft.Cluster.run_for cluster (20.0 *. s);
  (match Myraft.Cluster.raft_of cluster "mysql2" with
  | Some r -> Alcotest.(check bool) "r2 did not elect" false (Raft.Node.is_leader r)
  | None -> Alcotest.fail "mysql2 missing");
  Alcotest.(check (option string)) "mysql1 still the leader" (Some "mysql1")
    (Myraft.Cluster.raft_leader cluster);
  (* heal: r2 converges on everything written during the partition *)
  Sim.Network.heal_regions (Myraft.Cluster.network cluster) "r1" "r2";
  let converged () =
    match Myraft.Cluster.server cluster "mysql2" with
    | Some srv ->
      Storage.Engine.get (Myraft.Server.storage srv) ~table:"t" ~key:"during" = Some "v"
    | None -> false
  in
  Alcotest.(check bool) "r2 catches up after heal" true
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) converged)

let test_learner_promoted_then_leads () =
  (* A learner is a non-failover replica; after automation promotes it to
     voter it can receive leadership. *)
  let members = Myraft.Cluster.small_members () @ [ Myraft.Cluster.mysql ~voter:false "learner1" "r1" ] in
  let cluster = Helpers.bootstrapped ~members () in
  ignore (Helpers.write_n cluster 5);
  (* leadership cannot be transferred to a learner *)
  (match Myraft.Cluster.transfer_leadership cluster ~target:"learner1" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "transfer to a learner must be rejected");
  let leader = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  (match Raft.Node.promote_learner leader "learner1" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "promote_learner: %s" e);
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Helpers.check_ok "transfer to promoted learner"
    (Myraft.Cluster.transfer_leadership cluster ~target:"learner1");
  let ok =
    Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
        match Myraft.Cluster.primary cluster with
        | Some srv -> Myraft.Server.id srv = "learner1"
        | None -> false)
  in
  Alcotest.(check bool) "former learner serves writes" true ok;
  Helpers.check_ok "write on former learner"
    (Helpers.direct_write cluster ~key:"on-learner" ~value:"v")

let test_conflicting_writes_same_key () =
  (* Two clients writing the same row: the second prepare hits the row
     lock held by the first in-pipeline transaction and is rejected
     (MySQL would block; our model surfaces it as a lock-wait error). *)
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let outcomes = ref [] in
  for i = 1 to 2 do
    Myraft.Server.submit_write primary ~table:"t"
      ~ops:[ Binlog.Event.Insert { key = "hot"; value = string_of_int i } ]
      ~reply:(fun o -> outcomes := o :: !outcomes)
  done;
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(5.0 *. s) (fun () ->
         List.length !outcomes = 2));
  let committed =
    List.length
      (List.filter (fun o -> match o with Myraft.Wire.Committed _ -> true | _ -> false)
         !outcomes)
  in
  Alcotest.(check int) "exactly one commits" 1 committed;
  (* after the first settles, the key is writable again *)
  Helpers.check_ok "retry succeeds" (Helpers.direct_write cluster ~key:"hot" ~value:"3")

let test_group_commit_under_concurrency () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let done_count = ref 0 in
  for i = 1 to 64 do
    Myraft.Server.submit_write primary ~table:"t"
      ~ops:[ Binlog.Event.Insert { key = Printf.sprintf "c%d" i; value = "v" } ]
      ~reply:(fun _ -> incr done_count)
  done;
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(10.0 *. s) (fun () -> !done_count = 64));
  Alcotest.(check int) "all 64 settle" 64 !done_count;
  let p = Myraft.Server.pipeline primary in
  Alcotest.(check bool) "grouped into fewer flushes" true
    (Myraft.Pipeline.groups_formed p < 64 + 5 (* bootstrap overhead slack *));
  Alcotest.(check bool) "mean group size > 1" true (Myraft.Pipeline.mean_group_size p > 1.5)

let test_demoted_primary_aborts_in_flight () =
  (* Writes waiting for consensus on a quiesced/demoted primary are
     aborted and rolled back online (§3.3 demotion step 1). *)
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  (* cut the primary off so its writes can never reach consensus *)
  Myraft.Cluster.isolate cluster "mysql1";
  let outcome = ref None in
  Myraft.Server.submit_write primary ~table:"t"
    ~ops:[ Binlog.Event.Insert { key = "doomed"; value = "v" } ]
    ~reply:(fun o -> outcome := Some o);
  Myraft.Cluster.run_for cluster (300.0 *. ms);
  Alcotest.(check bool) "txn parked in pipeline" true
    (Myraft.Pipeline.in_flight (Myraft.Server.pipeline primary) > 0);
  (* failover happens elsewhere; the healed old primary sees the higher
     term and demotes, aborting the write *)
  ignore (wait_new_primary cluster ~not_this:"mysql1");
  Myraft.Cluster.heal cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(15.0 *. s) (fun () -> !outcome <> None));
  (match !outcome with
  | Some (Myraft.Wire.Rejected _) -> ()
  | Some (Myraft.Wire.Committed _) -> Alcotest.fail "doomed write committed"
  | None -> Alcotest.fail "doomed write never settled");
  Alcotest.(check int) "nothing left prepared" 0
    (List.length (Storage.Engine.prepared_gtids (Myraft.Server.storage primary)))

let test_read_your_writes_on_replica () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  Helpers.check_ok "write" (Helpers.direct_write cluster ~key:"ryw" ~value:"42");
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  (* the client knows its write's GTID (mysql1:1); session consistency on
     the replica = WAIT_FOR_EXECUTED_GTID_SET then read *)
  let result = ref None in
  Myraft.Server.wait_for_executed_gtid replica
    (Binlog.Gtid.make ~source:"mysql1" ~gno:1)
    ~timeout:(5.0 *. s)
    ~k:(fun arrived ->
      result := Some (if arrived then Myraft.Server.read replica ~table:"t" ~key:"ryw"
                      else Error "gtid wait timed out"));
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(10.0 *. s) (fun () -> !result <> None));
  (match !result with
  | Some (Ok (Some "42")) -> ()
  | Some (Ok other) ->
    Alcotest.failf "stale read: %s" (Option.value other ~default:"<none>")
  | Some (Error e) -> Alcotest.failf "read failed: %s" e
  | None -> Alcotest.fail "wait never completed")

let test_gtid_wait_times_out_for_unknown () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  let result = ref None in
  Myraft.Server.wait_for_executed_gtid replica
    (Binlog.Gtid.make ~source:"ghost" ~gno:1)
    ~timeout:(200.0 *. ms)
    ~k:(fun arrived -> result := Some arrived);
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(5.0 *. s) (fun () -> !result <> None));
  Alcotest.(check (option bool)) "times out" (Some false) !result

let test_reads_on_crashed_server_fail () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  Myraft.Cluster.crash cluster "mysql2";
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  match Myraft.Server.read replica ~table:"t" ~key:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read served by a crashed server"

let suites =
  [
    ( "myraft.edge",
      [
        Alcotest.test_case "repeated failovers converge" `Quick
          test_repeated_failovers_converge;
        Alcotest.test_case "leader-region partition: consistency over availability" `Quick
          test_leader_region_partition_chooses_consistency;
        Alcotest.test_case "learner promoted then leads" `Quick
          test_learner_promoted_then_leads;
        Alcotest.test_case "conflicting writes on one key" `Quick
          test_conflicting_writes_same_key;
        Alcotest.test_case "group commit under concurrency" `Quick
          test_group_commit_under_concurrency;
        Alcotest.test_case "demoted primary aborts in-flight" `Quick
          test_demoted_primary_aborts_in_flight;
        Alcotest.test_case "read-your-writes on replica" `Quick
          test_read_your_writes_on_replica;
        Alcotest.test_case "gtid wait times out" `Quick test_gtid_wait_times_out_for_unknown;
        Alcotest.test_case "reads fail on crashed server" `Quick
          test_reads_on_crashed_server_fail;
      ] );
  ]
