(* Snapshot / log-compaction tests: the purged-hole replication wedge,
   the engine-checkpoint InstallSnapshot rescue (bare Raft nodes and a
   full MyRaft cluster), the safe_purge_index cluster floor, and the
   engine checkpoint/restore roundtrip. *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s

(* ----- bare-node harness (test_raft.ml pattern + snapshot callbacks) ----- *)

type sim_node = {
  id : string;
  node_region : string;
  store : Binlog.Log_store.t;
  durable : Raft.Node.durable;
  mutable raft : Raft.Node.t option;
  mutable installs : int; (* install_snapshot callback firings *)
  mutable up : bool;
}

type harness = {
  engine : Sim.Engine.t;
  net : Raft.Message.t Sim.Network.t;
  nodes : (string, sim_node) Hashtbl.t;
  order : string list;
  config : Raft.Types.config;
  params : Raft.Node.params;
  trace : Sim.Trace.t;
  with_snapshots : bool; (* wire take_snapshot/install_snapshot callbacks *)
}

let raft n = Option.get n.raft

let make_raft h n =
  let callbacks = Raft.Node.default_callbacks () in
  let node =
    Raft.Node.create ~engine:h.engine ~id:n.id ~region:n.node_region
      ~send:(fun ~dst msg ->
        Sim.Network.send h.net ~src:n.id ~dst ~size:(Raft.Message.size msg) msg)
      ~log:(Raft.Node.log_ops_of_store n.store)
      ~callbacks ~params:h.params ~initial_config:h.config ~durable:n.durable
      ~trace:h.trace ()
  in
  if h.with_snapshots then begin
    (* A bare node has no engine: the "checkpoint" is an opaque blob at
       the commit boundary, sized to force a multi-chunk transfer. *)
    callbacks.Raft.Node.take_snapshot <-
      (fun () ->
        let boundary = Raft.Node.commit_index node in
        if boundary <= 0 then None
        else
          match Binlog.Log_store.term_at n.store boundary with
          | None -> None
          | Some term ->
            Some
              (Raft.Snapshot.make
                 ~last:(Binlog.Opid.make ~term ~index:boundary)
                 ~gtids:(Binlog.Log_store.gtid_set n.store)
                 ~config:(Raft.Node.config node) ~data:(String.make 2048 'x') ()));
    callbacks.Raft.Node.install_snapshot <-
      (fun ~snapshot:_ -> n.installs <- n.installs + 1)
  end;
  node

(* members: (id, region, voter, kind) *)
let make_harness ?(seed = 5) ?(params = Raft.Node.default_params) ?(with_snapshots = false)
    members =
  let engine = Sim.Engine.create ~seed () in
  let topo = Sim.Topology.create () in
  List.iter (fun (id, region, _, _) -> Sim.Topology.add_node topo ~id ~region) members;
  let net = Sim.Network.create engine topo () in
  let trace = Sim.Trace.create engine in
  let config =
    {
      Raft.Types.members =
        List.map
          (fun (id, region, voter, kind) -> { Raft.Types.id; region; voter; kind })
          members;
    }
  in
  let h =
    {
      engine;
      net;
      nodes = Hashtbl.create 8;
      order = List.map (fun (id, _, _, _) -> id) members;
      config;
      params;
      trace;
      with_snapshots;
    }
  in
  List.iter
    (fun (id, region, _, _) ->
      let n =
        {
          id;
          node_region = region;
          store = Binlog.Log_store.create ~mode:Binlog.Log_store.Relay ();
          durable = Raft.Node.fresh_durable ();
          raft = None;
          installs = 0;
          up = true;
        }
      in
      n.raft <- Some (make_raft h n);
      Hashtbl.replace h.nodes id n;
      Sim.Network.register net id (fun ~src msg ->
          match Hashtbl.find_opt h.nodes id with
          | Some n when n.up -> Raft.Node.handle_message (raft n) ~src msg
          | _ -> ()))
    members;
  h

let get h id = Hashtbl.find h.nodes id

let crash h id =
  let n = get h id in
  n.up <- false;
  Raft.Node.stop (raft n);
  Sim.Network.set_down h.net id

let restart h id =
  let n = get h id in
  n.up <- true;
  ignore (Binlog.Log_store.crash_recover_log n.store);
  n.raft <- Some (make_raft h n);
  Sim.Network.set_up h.net id

let leaders h =
  List.filter
    (fun id ->
      let n = get h id in
      n.up && Raft.Node.is_leader (raft n))
    h.order

let run_until h ~timeout pred =
  let deadline = Sim.Engine.now h.engine +. timeout in
  let rec loop () =
    if pred () then true
    else if Sim.Engine.now h.engine >= deadline then false
    else begin
      Sim.Engine.run_for h.engine (10.0 *. ms);
      loop ()
    end
  in
  loop ()

let elect h id =
  Raft.Node.trigger_election (raft (get h id));
  let ok = run_until h ~timeout:(10.0 *. s) (fun () -> leaders h = [ id ]) in
  if not ok then Alcotest.failf "failed to elect %s" id

let append h id =
  match Raft.Node.client_append (raft (get h id)) Binlog.Entry.Noop with
  | Ok opid -> opid
  | Error e -> Alcotest.failf "append on %s failed: %s" id e

let append_n h id n =
  let last = ref Binlog.Opid.zero in
  for _ = 1 to n do
    last := append h id
  done;
  !last

let wait_commit h id index =
  if
    not
      (run_until h ~timeout:(10.0 *. s) (fun () ->
           Raft.Node.commit_index (raft (get h id)) >= index))
  then Alcotest.failf "%s never committed index %d" id index

(* Rotate the store, then drop every closed file whose entries all sit at
   or below [below] — the raw file-level purge, bypassing the §A.1 safety
   heuristics on purpose (this is how the wedge happens). *)
let compact_store store ~below =
  Binlog.Log_store.rotate store;
  let keep =
    List.find_map
      (fun (name, first, last, closed) ->
        if closed && first > 0 && last <= below then None else Some name)
      (Binlog.Log_store.file_ranges store)
  in
  match keep with Some file -> Binlog.Log_store.purge_to store ~file | None -> ()

let mysql = Raft.Types.Mysql_server

let three_nodes = [ ("n1", "r1", true, mysql); ("n2", "r1", true, mysql); ("n3", "r1", true, mysql) ]

(* ----- wedge detection without a snapshot provider (satellite: the bug
   is at least *visible* when no checkpoint source is wired) ----- *)

let test_wedge_counter_without_provider () =
  let h = make_harness three_nodes in
  elect h "n1";
  let tail = append_n h "n1" 10 in
  wait_commit h "n3" (Binlog.Opid.index tail);
  crash h "n3";
  let tail = append_n h "n1" 10 in
  let last = Binlog.Opid.index tail in
  wait_commit h "n2" last;
  let leader = raft (get h "n1") in
  compact_store (get h "n1").store ~below:(Raft.Node.commit_index leader);
  Alcotest.(check bool) "prefix actually purged" true
    (Binlog.Log_store.purged_below (get h "n1").store > 1);
  (* drain in-flight AppendEntries sent before the purge, so the restarted
     follower cannot be revived by a stale pre-compaction batch *)
  Sim.Engine.run_for h.engine (2.0 *. s);
  restart h "n3";
  ignore (run_until h ~timeout:(5.0 *. s) (fun () -> Raft.Node.purge_wedges leader > 0));
  Alcotest.(check bool) "wedge counted" true (Raft.Node.purge_wedges leader > 0);
  Alcotest.(check bool) "no transfer without a provider" false
    (Raft.Node.snapshot_in_flight leader ~peer:"n3");
  Alcotest.(check int) "n3 stays behind the hole" 0
    (Raft.Node.commit_index (raft (get h "n3")));
  (* the rest of the ring is unharmed *)
  let tail = append_n h "n1" 2 in
  wait_commit h "n2" (Binlog.Opid.index tail)

(* ----- the rescue: behind-purge follower re-converges via a chunked
   InstallSnapshot transfer, then resumes tailing ----- *)

let test_snapshot_rescue_reconverges () =
  (* tiny chunks so the 2 KiB payload takes multiple paced round trips *)
  let params = { Raft.Node.default_params with snapshot_chunk_bytes = 512 } in
  let h = make_harness ~params ~with_snapshots:true three_nodes in
  elect h "n1";
  let tail = append_n h "n1" 10 in
  wait_commit h "n3" (Binlog.Opid.index tail);
  crash h "n3";
  let tail = append_n h "n1" 10 in
  let last = Binlog.Opid.index tail in
  wait_commit h "n2" last;
  let leader = raft (get h "n1") in
  compact_store (get h "n1").store ~below:(Raft.Node.commit_index leader);
  Sim.Engine.run_for h.engine (2.0 *. s);
  restart h "n3";
  let caught_up () =
    let n3 = raft (get h "n3") in
    Raft.Node.commit_index n3 >= last && Binlog.Opid.index (Raft.Node.last_opid n3) >= last
  in
  Alcotest.(check bool) "n3 reconverges via snapshot" true
    (run_until h ~timeout:(20.0 *. s) caught_up);
  Alcotest.(check bool) "leader completed a send" true (Raft.Node.snapshots_sent leader >= 1);
  let n3 = get h "n3" in
  Alcotest.(check bool) "raft-level install recorded" true
    (Raft.Node.snapshots_installed (raft n3) >= 1);
  Alcotest.(check bool) "install callback fired" true (n3.installs >= 1);
  Alcotest.(check bool) "follower log rebased" true
    (Binlog.Log_store.purged_below n3.store > 1);
  (* tailing resumed: ordinary replication carries new entries again *)
  let tail = append_n h "n1" 3 in
  wait_commit h "n3" (Binlog.Opid.index tail);
  Alcotest.(check bool) "transfer done, window back to AE" false
    (Raft.Node.snapshot_in_flight leader ~peer:"n3")

(* ----- safe_purge_index floors on a learner's confirmed prefix while
   the learner is live, and releases it once the learner goes silent
   (the snapshot rescue covers it when it returns) ----- *)

let test_safe_purge_learner_floor () =
  let members =
    [ ("n1", "r1", true, mysql); ("n2", "r1", true, mysql); ("lr", "r1", false, mysql) ]
  in
  let h = make_harness members in
  elect h "n1";
  let tail = append_n h "n1" 5 in
  let synced = Binlog.Opid.index tail in
  let leader = raft (get h "n1") in
  ignore
    (run_until h ~timeout:(10.0 *. s) (fun () ->
         Raft.Node.match_index_of leader ~peer:"lr" = Some synced));
  crash h "lr";
  let tail = append_n h "n1" 5 in
  let last = Binlog.Opid.index tail in
  wait_commit h "n2" last;
  (* within the liveness grace the learner's match still floors the purge *)
  Alcotest.(check int) "floored at the learner's prefix" synced
    (Raft.Node.safe_purge_index leader);
  (* silent past the grace window: presumed down, floor released *)
  Sim.Engine.run_for h.engine (4.0 *. s);
  Alcotest.(check int) "floor released once silent" (Raft.Node.commit_index leader)
    (Raft.Node.safe_purge_index leader)

(* ----- engine checkpoint/restore roundtrip ----- *)

let test_engine_checkpoint_roundtrip () =
  let gtid gno = Binlog.Gtid.make ~source:"srv1" ~gno in
  let opid index = Binlog.Opid.make ~term:1 ~index in
  let e = Storage.Engine.create () in
  for i = 1 to 3 do
    Storage.Engine.prepare e ~gtid:(gtid i)
      ~writes:[ ("t", Binlog.Event.Insert { key = Printf.sprintf "k%d" i; value = "v" }) ];
    Storage.Engine.commit_prepared e ~gtid:(gtid i) ~opid:(opid i)
  done;
  let blob = Storage.Engine.encode_checkpoint (Storage.Engine.checkpoint e) in
  let fresh = Storage.Engine.create () in
  Storage.Engine.restore fresh (Storage.Engine.decode_checkpoint blob);
  Alcotest.(check (option string)) "row restored" (Some "v")
    (Storage.Engine.get fresh ~table:"t" ~key:"k2");
  Alcotest.(check bool) "gtid executed carried" true
    (Storage.Engine.has_committed fresh (gtid 3));
  Alcotest.(check int) "recovery cursor carried" 3
    (Binlog.Opid.index (Storage.Engine.last_committed_opid fresh));
  Alcotest.(check int) "commit count carried" 3 (Storage.Engine.committed_count fresh);
  Alcotest.(check int32) "content checksum identical" (Storage.Engine.checksum e)
    (Storage.Engine.checksum fresh)

(* ----- full MyRaft cluster: compact the primary's binlog while a
   replica is down, restart it, and require the engine-checkpoint
   InstallSnapshot to bring data AND log back in line ----- *)

let test_cluster_purged_replica_rescue () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  Alcotest.(check int) "first writes" 8 (Helpers.write_n ~prefix:"a" cluster 8);
  Myraft.Cluster.crash cluster "mysql3";
  Alcotest.(check int) "writes while down" 8 (Helpers.write_n ~prefix:"b" cluster 8);
  (* past the liveness grace, the silent replica no longer floors the purge *)
  Myraft.Cluster.run_for cluster (4.0 *. s);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Helpers.check_ok "flush" (Myraft.Server.flush_binary_logs primary);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let purged = Myraft.Server.purge_binary_logs primary in
  Alcotest.(check bool) "files purged" true (purged >= 1);
  Alcotest.(check bool) "prefix gone on the primary" true
    (Binlog.Log_store.purged_below (Myraft.Server.log primary) > 1);
  (* the local applier floors the purge: nothing unapplied was dropped *)
  Alcotest.(check bool) "purge respects applied-through" true
    (Binlog.Log_store.purged_below (Myraft.Server.log primary) - 1
    <= Myraft.Server.applied_through primary);
  Myraft.Cluster.restart cluster "mysql3";
  let target () = Raft.Node.commit_index (Myraft.Server.raft primary) in
  let caught_up () =
    match Myraft.Cluster.server cluster "mysql3" with
    | None -> false
    | Some srv -> Myraft.Server.applied_through srv >= target ()
  in
  Alcotest.(check bool) "replica reconverges" true
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) caught_up);
  let replica = Option.get (Myraft.Cluster.server cluster "mysql3") in
  Alcotest.(check bool) "rescued by InstallSnapshot" true
    (Raft.Node.snapshots_installed (Myraft.Server.raft replica) >= 1);
  (* data that only ever existed behind the purge horizon arrived via the
     engine checkpoint, not log replay *)
  Alcotest.(check (result (option string) string)) "pre-purge row present"
    (Ok (Some "v"))
    (Myraft.Server.read replica ~table:"t" ~key:"a3");
  Alcotest.(check (result (option string) string)) "post-crash row present"
    (Ok (Some "v"))
    (Myraft.Server.read replica ~table:"t" ~key:"b5");
  (* and ordinary replication carries new writes again *)
  Alcotest.(check int) "writes after rescue" 3 (Helpers.write_n ~prefix:"c" cluster 3);
  let after () =
    match Myraft.Server.read replica ~table:"t" ~key:"c3" with
    | Ok (Some _) -> true
    | _ -> false
  in
  Alcotest.(check bool)
    "tailing resumed" true
    (Myraft.Cluster.run_until cluster ~timeout:(10.0 *. s) after)

(* ----- purge gating: replicas refuse (no leader floor), and the
   primary's own unapplied suffix is never dropped ----- *)

let test_purge_refused_off_primary () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  Alcotest.(check int) "writes" 4 (Helpers.write_n cluster 4);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Helpers.check_ok "flush" (Myraft.Server.flush_binary_logs primary);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  Alcotest.(check int) "replica purges nothing" 0 (Myraft.Server.purge_binary_logs replica);
  Alcotest.(check int) "replica log intact" 1
    (Binlog.Log_store.purged_below (Myraft.Server.log replica))

let suites =
  [
    ( "snapshot.node",
      [
        Alcotest.test_case "wedge counter without provider" `Quick
          test_wedge_counter_without_provider;
        Alcotest.test_case "snapshot rescue reconverges" `Quick
          test_snapshot_rescue_reconverges;
        Alcotest.test_case "safe purge floors on live learner" `Quick
          test_safe_purge_learner_floor;
      ] );
    ( "snapshot.engine",
      [ Alcotest.test_case "checkpoint roundtrip" `Quick test_engine_checkpoint_roundtrip ] );
    ( "snapshot.cluster",
      [
        Alcotest.test_case "purged replica rescued" `Quick test_cluster_purged_replica_rescue;
        Alcotest.test_case "purge refused off-primary" `Quick test_purge_refused_off_primary;
      ] );
  ]
