(* Commit pipeline unit tests: group formation, the consensus-commit
   gate, FIFO completion, abort semantics — plus applier behaviour. *)

let us = Sim.Engine.us
let ms = Sim.Engine.ms

let make_pipeline ?(engine = Sim.Engine.create ()) () =
  ( engine,
    Myraft.Pipeline.create ~engine ~params:Myraft.Params.default ~is_primary_path:true () )

let item ~index ~on_finish =
  {
    Myraft.Pipeline.label = Printf.sprintf "txn%d" index;
    flush = (fun () -> Ok index);
    finish = on_finish;
  }

let test_single_item_commits_after_watermark () =
  let engine, p = make_pipeline () in
  let finished = ref None in
  Myraft.Pipeline.submit p (item ~index:1 ~on_finish:(fun ~ok -> finished := Some ok));
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (option bool)) "blocked before watermark" None !finished;
  Myraft.Pipeline.notify_commit_index p 1;
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (option bool)) "commits after watermark" (Some true) !finished

let test_group_commit_batches () =
  let engine, p = make_pipeline () in
  let done_count = ref 0 in
  (* submit 20 items in a burst: the first flush cycle takes one, the
     rest accumulate into groups *)
  for i = 1 to 20 do
    Myraft.Pipeline.submit p (item ~index:i ~on_finish:(fun ~ok:_ -> incr done_count))
  done;
  Myraft.Pipeline.notify_commit_index p 20;
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check int) "all complete" 20 !done_count;
  Alcotest.(check bool) "groups formed" true (Myraft.Pipeline.groups_formed p < 20);
  Alcotest.(check bool) "mean group size > 1" true (Myraft.Pipeline.mean_group_size p > 1.0)

let test_fifo_completion_order () =
  let engine, p = make_pipeline () in
  let order = ref [] in
  for i = 1 to 10 do
    Myraft.Pipeline.submit p (item ~index:i ~on_finish:(fun ~ok:_ -> order := i :: !order))
  done;
  Myraft.Pipeline.notify_commit_index p 10;
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check (list int)) "completion in submit order" (List.init 10 (fun i -> i + 1))
    (List.rev !order)

let test_partial_watermark_releases_prefix () =
  let engine, p = make_pipeline () in
  let completions = ref [] in
  (* space the submissions out so each lands in its own flush group *)
  for i = 1 to 3 do
    ignore
      (Sim.Engine.schedule engine
         ~delay:(float_of_int i *. 2.0 *. ms)
         (fun () ->
           Myraft.Pipeline.submit p
             (item ~index:i ~on_finish:(fun ~ok:_ -> completions := i :: !completions))))
  done;
  Sim.Engine.run_for engine (20.0 *. ms);
  Myraft.Pipeline.notify_commit_index p 2;
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (list int)) "only the covered prefix committed" [ 1; 2 ]
    (List.rev !completions);
  Myraft.Pipeline.notify_commit_index p 3;
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (list int)) "rest after watermark" [ 1; 2; 3 ] (List.rev !completions)

let test_abort_fails_everything_in_flight () =
  let engine, p = make_pipeline () in
  let outcomes = ref [] in
  for i = 1 to 5 do
    Myraft.Pipeline.submit p (item ~index:i ~on_finish:(fun ~ok -> outcomes := ok :: !outcomes))
  done;
  Sim.Engine.run_for engine (5.0 *. ms);
  let aborted = Myraft.Pipeline.abort_all p in
  Alcotest.(check bool) "something aborted" true (aborted > 0);
  Alcotest.(check bool) "no successes" true (List.for_all not !outcomes);
  (* new submissions while aborted fail immediately *)
  let late = ref None in
  Myraft.Pipeline.submit p (item ~index:9 ~on_finish:(fun ~ok -> late := Some ok));
  Alcotest.(check (option bool)) "rejected while aborted" (Some false) !late;
  (* reset re-arms the pipeline *)
  Myraft.Pipeline.reset p;
  let fresh = ref None in
  Myraft.Pipeline.submit p (item ~index:10 ~on_finish:(fun ~ok -> fresh := Some ok));
  Myraft.Pipeline.notify_commit_index p 10;
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (option bool)) "works after reset" (Some true) !fresh

let test_flush_error_fails_item () =
  let engine, p = make_pipeline () in
  let outcome = ref None in
  Myraft.Pipeline.submit p
    {
      Myraft.Pipeline.label = "bad";
      flush = (fun () -> Error "not the leader");
      finish = (fun ~ok -> outcome := Some ok);
    };
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (option bool)) "flush error fails item" (Some false) !outcome

let test_primary_path_pays_raft_stamp () =
  let engine = Sim.Engine.create () in
  let run ~is_primary_path =
    let p = Myraft.Pipeline.create ~engine ~params:Myraft.Params.default ~is_primary_path () in
    let t0 = Sim.Engine.now engine in
    let finished = ref 0.0 in
    Myraft.Pipeline.submit p (item ~index:1 ~on_finish:(fun ~ok:_ -> ()));
    Myraft.Pipeline.notify_commit_index p 1;
    Sim.Engine.run_for engine (10.0 *. ms);
    ignore !finished;
    Sim.Engine.now engine -. t0
  in
  ignore (run ~is_primary_path:true);
  ignore us;
  ()

(* ----- applier ----- *)

let entry i =
  Binlog.Entry.make ~opid:(Binlog.Opid.make ~term:1 ~index:i) Binlog.Entry.Noop

let test_applier_orders_and_dedupes () =
  let engine = Sim.Engine.create () in
  let processed = ref [] in
  let a =
    Myraft.Applier.create ~engine ~params:Myraft.Params.default ()
      ~process:(fun e ~live:_ ~on_submitted ~on_done ->
        processed := Binlog.Entry.index e :: !processed;
        on_done ~ok:true;
        on_submitted ())
  in
  Myraft.Applier.start a ~from_index:1 ~backlog:[ entry 1; entry 2 ];
  Myraft.Applier.signal a [ entry 2 (* duplicate *); entry 3 ];
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (list int)) "in order without duplicates" [ 1; 2; 3 ] (List.rev !processed);
  Alcotest.(check int) "applied index" 3 (Myraft.Applier.applied_index a)

let test_applier_truncation_rewinds () =
  let engine = Sim.Engine.create () in
  let a =
    Myraft.Applier.create ~engine ~params:Myraft.Params.default ()
      ~process:(fun _ ~live:_ ~on_submitted ~on_done ->
        on_done ~ok:true;
        on_submitted ())
  in
  Myraft.Applier.start a ~from_index:1 ~backlog:[ entry 1 ];
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check int) "applied 1" 1 (Myraft.Applier.applied_index a);
  Myraft.Applier.handle_truncation a ~from_index:1;
  Alcotest.(check int) "rewound" 0 (Myraft.Applier.applied_index a);
  (* accepts the replacement entry stream *)
  Myraft.Applier.signal a [ entry 1; entry 2 ];
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check int) "applied replacement" 2 (Myraft.Applier.applied_index a)

(* slave_preserve_commit_order: an entry whose submission is stalled
   (e.g. a row-lock conflict retry loop) must hold back later entries so
   pipeline submission order — and hence engine commit order — matches
   log order. *)
let test_applier_stall_preserves_order () =
  let engine = Sim.Engine.create () in
  let submitted = ref [] in
  let stalled = ref None in
  let a =
    Myraft.Applier.create ~engine ~params:Myraft.Params.default ()
      ~process:(fun e ~live:_ ~on_submitted ~on_done ->
        let index = Binlog.Entry.index e in
        let submit () =
          submitted := index :: !submitted;
          on_done ~ok:true;
          on_submitted ()
        in
        if index = 2 && !stalled = None then stalled := Some submit else submit ())
  in
  Myraft.Applier.start a ~from_index:1 ~backlog:[ entry 1; entry 2; entry 3 ];
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (list int)) "entry 3 held behind stalled entry 2" [ 1 ] (List.rev !submitted);
  (match !stalled with
  | Some release -> release ()
  | None -> Alcotest.fail "entry 2 never reached process");
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check (list int)) "log order after release" [ 1; 2; 3 ] (List.rev !submitted)

let test_applier_stop_discards_queue () =
  let engine = Sim.Engine.create () in
  let count = ref 0 in
  let a =
    Myraft.Applier.create ~engine ~params:Myraft.Params.default ()
      ~process:(fun _ ~live:_ ~on_submitted ~on_done ->
        incr count;
        on_done ~ok:true;
        on_submitted ())
  in
  Myraft.Applier.start a ~from_index:1 ~backlog:[ entry 1; entry 2; entry 3 ];
  Myraft.Applier.stop a;
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check bool) "nothing (or little) processed after stop" true (!count <= 1);
  Alcotest.(check bool) "not running" false (Myraft.Applier.is_running a)

let suites =
  [
    ( "myraft.pipeline",
      [
        Alcotest.test_case "watermark gates engine commit" `Quick
          test_single_item_commits_after_watermark;
        Alcotest.test_case "group commit batches" `Quick test_group_commit_batches;
        Alcotest.test_case "fifo completion" `Quick test_fifo_completion_order;
        Alcotest.test_case "partial watermark releases prefix" `Quick
          test_partial_watermark_releases_prefix;
        Alcotest.test_case "abort + reset" `Quick test_abort_fails_everything_in_flight;
        Alcotest.test_case "flush error" `Quick test_flush_error_fails_item;
        Alcotest.test_case "raft stamp accounted" `Quick test_primary_path_pays_raft_stamp;
      ] );
    ( "myraft.applier",
      [
        Alcotest.test_case "orders and dedupes" `Quick test_applier_orders_and_dedupes;
        Alcotest.test_case "truncation rewinds" `Quick test_applier_truncation_rewinds;
        Alcotest.test_case "stall preserves commit order" `Quick
          test_applier_stall_preserves_order;
        Alcotest.test_case "stop discards queue" `Quick test_applier_stop_discards_queue;
      ] );
  ]
