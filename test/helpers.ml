(* Shared helpers for the test suites. *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s

(* Build and bootstrap a cluster, returning it with mysql1 as primary. *)
let bootstrapped ?(seed = 11) ?(params = Myraft.Params.default) ~members () =
  let cluster = Myraft.Cluster.create ~seed ~params ~replicaset:"rs-test" ~members () in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  cluster

(* Synchronous-looking write: submit through an ephemeral client-less
   direct call and run the engine until the outcome arrives. *)
let direct_write ?(table = "t") ?(timeout = 5.0 *. s) cluster ~key ~value =
  match Myraft.Cluster.primary cluster with
  | None -> Error "no primary"
  | Some server ->
    let result = ref None in
    Myraft.Server.submit_write server ~table
      ~ops:[ Binlog.Event.Insert { key; value } ]
      ~reply:(fun outcome -> result := Some outcome);
    let ok =
      Myraft.Cluster.run_until cluster ~step:ms ~timeout (fun () -> !result <> None)
    in
    if not ok then Error "write timed out"
    else
      match !result with
      | Some (Myraft.Wire.Committed _) -> Ok ()
      | Some (Myraft.Wire.Rejected reason) -> Error reason
      | None -> Error "unreachable"

(* Substring search (no external deps). *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let check_ok label = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e

(* Run [n] writes with distinct keys; returns how many committed. *)
let write_n ?(prefix = "k") cluster n =
  let committed = ref 0 in
  for i = 1 to n do
    match direct_write cluster ~key:(Printf.sprintf "%s%d" prefix i) ~value:"v" with
    | Ok () -> incr committed
    | Error _ -> ()
  done;
  !committed
