(* Simulation kernel tests: RNG determinism, heap ordering, engine
   scheduling semantics, network delivery/partitions/accounting. *)

let test_rng_deterministic () =
  let a = Sim.Rng.of_int 42 and b = Sim.Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a) (Sim.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let parent = Sim.Rng.of_int 42 in
  let child = Sim.Rng.split parent in
  let v1 = Sim.Rng.next_int64 child in
  (* Drawing from the parent must not affect an already-split child's
     determinism relative to an identical reconstruction. *)
  let parent2 = Sim.Rng.of_int 42 in
  let child2 = Sim.Rng.split parent2 in
  Alcotest.(check int64) "split deterministic" v1 (Sim.Rng.next_int64 child2)

let test_rng_float_range () =
  let rng = Sim.Rng.of_int 1 in
  for _ = 1 to 10_000 do
    let f = Sim.Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_int_bound () =
  let rng = Sim.Rng.of_int 2 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done

let test_rng_exponential_mean () =
  let rng = Sim.Rng.of_int 3 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential rng ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 10.0) > 0.5 then Alcotest.failf "exponential mean off: %f" mean

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  let rng = Sim.Rng.of_int 4 in
  for i = 1 to 1000 do
    Sim.Heap.push h ~key:(Sim.Rng.float rng) ~seq:i i
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  while not (Sim.Heap.is_empty h) do
    let key = Sim.Heap.min_key h in
    let _v = Sim.Heap.pop_min h in
    if key < !last then Alcotest.fail "heap order violated";
    last := key;
    incr count
  done;
  Alcotest.(check int) "all popped" 1000 !count

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  for i = 1 to 50 do
    Sim.Heap.push h ~key:1.0 ~seq:i i
  done;
  for i = 1 to 50 do
    if Sim.Heap.is_empty h then Alcotest.fail "missing entry"
    else Alcotest.(check int) "tie broken by seq" i (Sim.Heap.pop_min h)
  done

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  ignore (Sim.Engine.schedule e ~delay:30.0 (fun () -> order := 3 :: !order));
  ignore (Sim.Engine.schedule e ~delay:10.0 (fun () -> order := 1 :: !order));
  ignore (Sim.Engine.schedule e ~delay:20.0 (fun () -> order := 2 :: !order));
  Sim.Engine.run_until e 100.0;
  Alcotest.(check (list int)) "fired in time order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check (float 0.001)) "time at horizon" 100.0 (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:5.0 (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Sim.Engine.run_until e 10.0;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_engine_nested_schedule () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:5.0 (fun () ->
         times := Sim.Engine.now e :: !times;
         ignore
           (Sim.Engine.schedule e ~delay:5.0 (fun () ->
                times := Sim.Engine.now e :: !times))));
  Sim.Engine.run_until e 100.0;
  Alcotest.(check (list (float 0.001))) "nested timing" [ 5.0; 10.0 ] (List.rev !times)

let test_engine_run_until_horizon () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  ignore (Sim.Engine.schedule e ~delay:50.0 (fun () -> fired := true));
  Sim.Engine.run_until e 20.0;
  Alcotest.(check bool) "future event pending" false !fired;
  Sim.Engine.run_until e 60.0;
  Alcotest.(check bool) "fires after horizon advance" true !fired

let make_net ?(latency = Sim.Latency.fixed ~same:100.0 ~cross:10_000.0) () =
  let e = Sim.Engine.create () in
  let topo = Sim.Topology.create () in
  Sim.Topology.add_node topo ~id:"a" ~region:"r1";
  Sim.Topology.add_node topo ~id:"b" ~region:"r1";
  Sim.Topology.add_node topo ~id:"c" ~region:"r2";
  let net = Sim.Network.create e topo ~latency () in
  (e, net)

let test_network_delivery () =
  let e, net = make_net () in
  let got = ref [] in
  Sim.Network.register net "b" (fun ~src msg -> got := (src, msg) :: !got);
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:100 "hello";
  Sim.Engine.run_until e 1_000.0;
  Alcotest.(check (list (pair string string))) "delivered" [ ("a", "hello") ] !got

let test_network_latency_applied () =
  let e, net = make_net () in
  let at = ref 0.0 in
  Sim.Network.register net "c" (fun ~src:_ _ -> at := Sim.Engine.now e);
  Sim.Network.send net ~src:"a" ~dst:"c" ~size:10 "x";
  Sim.Engine.run_until e 100_000.0;
  Alcotest.(check (float 0.001)) "cross-region latency" 10_000.0 !at

let test_network_down_node_drops () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net "b" (fun ~src:_ _ -> incr got);
  Sim.Network.set_down net "b";
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:10 "x";
  Sim.Engine.run_until e 1_000.0;
  Alcotest.(check int) "dropped to down node" 0 !got;
  Sim.Network.set_up net "b";
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:10 "y";
  Sim.Engine.run_until e 2_000.0;
  Alcotest.(check int) "delivered after set_up" 1 !got

let test_network_partition () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net "c" (fun ~src:_ _ -> incr got);
  Sim.Network.cut_regions net "r1" "r2";
  Sim.Network.send net ~src:"a" ~dst:"c" ~size:10 "x";
  Sim.Engine.run_until e 100_000.0;
  Alcotest.(check int) "partitioned" 0 !got;
  Sim.Network.heal_regions net "r1" "r2";
  Sim.Network.send net ~src:"a" ~dst:"c" ~size:10 "y";
  Sim.Engine.run_until e 200_000.0;
  Alcotest.(check int) "healed" 1 !got

let test_network_isolate_node () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net "b" (fun ~src:_ _ -> incr got);
  Sim.Network.isolate_node net "a";
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:10 "x";
  Sim.Engine.run_until e 1_000.0;
  Alcotest.(check int) "isolated sender drops" 0 !got

let test_network_fault_drop_accounting () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net "b" (fun ~src:_ _ -> incr got);
  Sim.Network.set_node_faults net "a" { Sim.Network.no_faults with drop = 1.0 };
  for _ = 1 to 20 do
    Sim.Network.send net ~src:"a" ~dst:"b" ~size:10 "x"
  done;
  Sim.Engine.run_until e 100_000.0;
  Alcotest.(check int) "all lost" 0 !got;
  Alcotest.(check int) "fault_dropped counts them" 20 (Sim.Network.fault_dropped net);
  Alcotest.(check int) "dropped counter fed too" 20 (Sim.Network.dropped net)

let test_network_fault_duplicate_delivers_twice () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net "b" (fun ~src:_ _ -> incr got);
  Sim.Network.set_link_faults net ~src:"a" ~dst:"b"
    { Sim.Network.no_faults with duplicate = 1.0; reorder_delay = 50.0 };
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:10 "x";
  Sim.Engine.run_until e 100_000.0;
  Alcotest.(check int) "two copies" 2 !got;
  Alcotest.(check int) "duplicated counter" 1 (Sim.Network.duplicated net)

(* Fault rolls come from a split RNG keyed by the engine seed: the same
   seed must produce the same losses, duplicates and delivery times. *)
let test_network_fault_determinism () =
  let observe () =
    let e = Sim.Engine.create ~seed:77 () in
    let topo = Sim.Topology.create () in
    Sim.Topology.add_node topo ~id:"a" ~region:"r1";
    Sim.Topology.add_node topo ~id:"b" ~region:"r1";
    let net = Sim.Network.create e topo ~latency:(Sim.Latency.fixed ~same:100.0 ~cross:100.0) () in
    let log = ref [] in
    Sim.Network.register net "b" (fun ~src:_ msg -> log := (msg, Sim.Engine.now e) :: !log);
    Sim.Network.set_node_faults net "a"
      { Sim.Network.drop = 0.2; duplicate = 0.3; reorder = 0.4; reorder_delay = 500.0;
        extra_latency = 0.0 };
    for i = 1 to 50 do
      Sim.Network.send net ~src:"a" ~dst:"b" ~size:10 (string_of_int i)
    done;
    Sim.Engine.run_until e 100_000.0;
    (List.rev !log, Sim.Network.fault_dropped net, Sim.Network.duplicated net,
     Sim.Network.reordered net)
  in
  let (log1, d1, dup1, r1) = observe () and (log2, d2, dup2, r2) = observe () in
  Alcotest.(check (list (pair string (float 0.0)))) "same deliveries, same times" log1 log2;
  Alcotest.(check int) "same drops" d1 d2;
  Alcotest.(check int) "same duplicates" dup1 dup2;
  Alcotest.(check int) "same reorders" r1 r2;
  if d1 = 0 && dup1 = 0 && r1 = 0 then Alcotest.fail "faults never fired; test proves nothing"

let test_network_heal_all_clears_faults () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net "c" (fun ~src:_ _ -> incr got);
  Sim.Network.set_node_faults net "a" { Sim.Network.no_faults with drop = 1.0 };
  Sim.Network.set_link_faults net ~src:"b" ~dst:"c" { Sim.Network.no_faults with drop = 1.0 };
  Sim.Network.cut_regions net "r1" "r2";
  Sim.Network.isolate_node net "b";
  Alcotest.(check (list string)) "faulted nodes listed" [ "a" ] (Sim.Network.faulted_nodes net);
  Sim.Network.heal_all net;
  Alcotest.(check (list string)) "fault table cleared" [] (Sim.Network.faulted_nodes net);
  Alcotest.(check (float 0.0)) "node spec back to zero" 0.0
    (Sim.Network.node_faults net "a").Sim.Network.drop;
  Sim.Network.send net ~src:"a" ~dst:"c" ~size:10 "x";
  Sim.Network.send net ~src:"b" ~dst:"c" ~size:10 "y";
  Sim.Engine.run_until e 100_000.0;
  Alcotest.(check int) "partition, isolation and faults all healed" 2 !got;
  Alcotest.(check int) "nothing fault-dropped after heal" 0 (Sim.Network.fault_dropped net)

let test_network_byte_accounting () =
  let e, net = make_net () in
  Sim.Network.register net "b" (fun ~src:_ _ -> ());
  Sim.Network.register net "c" (fun ~src:_ _ -> ());
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:100 "x";
  Sim.Network.send net ~src:"a" ~dst:"c" ~size:250 "y";
  Sim.Network.send net ~src:"a" ~dst:"c" ~size:250 "z";
  Sim.Engine.run_until e 100_000.0;
  Alcotest.(check int) "link bytes" 100 (Sim.Network.link_bytes net ~src:"a" ~dst:"b");
  Alcotest.(check int) "cross-region bytes" 500 (Sim.Network.cross_region_bytes net);
  Alcotest.(check int) "total bytes" 600 (Sim.Network.total_bytes net);
  Alcotest.(check int) "messages" 3 (Sim.Network.total_messages net)

let test_link_latency_override () =
  let e, net = make_net () in
  let at = ref 0.0 in
  Sim.Network.register net "c" (fun ~src:_ _ -> at := Sim.Engine.now e);
  Sim.Network.set_link_latency net ~a:"a" ~b:"c" ~latency:42.0;
  Sim.Network.send net ~src:"a" ~dst:"c" ~size:10 "x";
  Sim.Engine.run_until e 100_000.0;
  Alcotest.(check (float 0.001)) "override applied" 42.0 !at

let test_egress_capacity_serializes () =
  let e, net = make_net () in
  let arrivals = ref [] in
  Sim.Network.register net "b" (fun ~src:_ _ -> arrivals := Sim.Engine.now e :: !arrivals);
  (* 1 MB/s = 1 byte/us: a 1000-byte message serializes for 1000us *)
  Sim.Network.set_egress_rate net "a" ~bytes_per_s:1_000_000.0;
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:1000 "m1";
  Sim.Network.send net ~src:"a" ~dst:"b" ~size:1000 "m2";
  Sim.Engine.run_until e 1_000_000.0;
  (match List.rev !arrivals with
  | [ t1; t2 ] ->
    (* m1: serialization 1000 + latency 100; m2 queues behind m1 *)
    Alcotest.(check (float 1.0)) "first arrival" 1100.0 t1;
    Alcotest.(check (float 1.0)) "second queues" 2100.0 t2
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l));
  Alcotest.(check bool) "queue delay recorded" true
    (Sim.Network.egress_queue_delay net "a" >= 999.0)

let test_egress_uncapped_nodes_unaffected () =
  let e, net = make_net () in
  let at = ref 0.0 in
  Sim.Network.register net "b" (fun ~src:_ _ -> at := Sim.Engine.now e);
  Sim.Network.set_egress_rate net "a" ~bytes_per_s:1_000_000.0;
  (* c has no cap: only the latency model applies *)
  Sim.Network.register net "c" (fun ~src:_ _ -> ());
  Sim.Network.send net ~src:"c" ~dst:"b" ~size:100_000 "big";
  Sim.Engine.run_until e 100_000.0;
  (* c->b is cross-region (10ms): only the latency model applies, no
     serialization despite the 100KB size *)
  Alcotest.(check (float 1.0)) "no serialization on uncapped sender" 10_000.0 !at

let test_topology_queries () =
  let topo = Sim.Topology.create () in
  Sim.Topology.add_node topo ~id:"a" ~region:"r1";
  Sim.Topology.add_node topo ~id:"b" ~region:"r2";
  Sim.Topology.add_node topo ~id:"c" ~region:"r1";
  Alcotest.(check (list string)) "regions" [ "r1"; "r2" ] (Sim.Topology.regions topo);
  Alcotest.(check (list string)) "in region" [ "a"; "c" ]
    (Sim.Topology.nodes_in_region topo "r1");
  Alcotest.(check bool) "same region" true (Sim.Topology.same_region topo "a" "c");
  Alcotest.(check string) "region_of" "r2" (Sim.Topology.region_of topo "b")

let test_vec_basics () =
  let v = Vec.create ~dummy:0 in
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 41);
  let removed = Vec.truncate_to v 90 in
  Alcotest.(check int) "removed count" 10 (List.length removed);
  Alcotest.(check (list int)) "removed order" [ 91; 92; 93; 94; 95; 96; 97; 98; 99; 100 ]
    removed;
  Alcotest.(check (list int)) "slice" [ 1; 2; 3 ] (Vec.slice v ~lo:0 ~hi:3)

let suites =
  [
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "float in [0,1)" `Quick test_rng_float_range;
        Alcotest.test_case "int bound" `Quick test_rng_int_bound;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "min ordering" `Quick test_heap_ordering;
        Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_ties;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "event ordering" `Quick test_engine_ordering;
        Alcotest.test_case "cancellation" `Quick test_engine_cancel;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
        Alcotest.test_case "run_until horizon" `Quick test_engine_run_until_horizon;
      ] );
    ( "sim.network",
      [
        Alcotest.test_case "delivery" `Quick test_network_delivery;
        Alcotest.test_case "latency applied" `Quick test_network_latency_applied;
        Alcotest.test_case "down node drops" `Quick test_network_down_node_drops;
        Alcotest.test_case "region partition" `Quick test_network_partition;
        Alcotest.test_case "isolate node" `Quick test_network_isolate_node;
        Alcotest.test_case "fault drop accounting" `Quick test_network_fault_drop_accounting;
        Alcotest.test_case "fault duplicate delivers twice" `Quick
          test_network_fault_duplicate_delivers_twice;
        Alcotest.test_case "fault determinism under seed" `Quick test_network_fault_determinism;
        Alcotest.test_case "heal_all clears faults" `Quick test_network_heal_all_clears_faults;
        Alcotest.test_case "byte accounting" `Quick test_network_byte_accounting;
        Alcotest.test_case "link latency override" `Quick test_link_latency_override;
      ] );
    ( "sim.egress",
      [
        Alcotest.test_case "capacity serializes sends" `Quick test_egress_capacity_serializes;
        Alcotest.test_case "uncapped unaffected" `Quick test_egress_uncapped_nodes_unaffected;
      ] );
    ( "sim.topology",
      [ Alcotest.test_case "queries" `Quick test_topology_queries ] );
    ("util.vec", [ Alcotest.test_case "basics" `Quick test_vec_basics ]);
  ]
