(* Raft protocol tests over a harness of bare Raft nodes (plain log
   stores, no MySQL): elections, replication, FlexiRaft quorums,
   proxying, mock elections, membership changes, and randomized safety
   checks. *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s

type sim_node = {
  id : string;
  node_region : string;
  store : Binlog.Log_store.t;
  durable : Raft.Node.durable;
  mutable raft : Raft.Node.t option;
  mutable leader_terms : int list; (* terms at which this node became leader *)
  mutable truncations : int; (* entries truncated *)
  mutable committed_watermark : int;
  mutable up : bool;
}

type harness = {
  engine : Sim.Engine.t;
  net : Raft.Message.t Sim.Network.t;
  nodes : (string, sim_node) Hashtbl.t;
  order : string list;
  config : Raft.Types.config;
  params : Raft.Node.params;
  trace : Sim.Trace.t;
}

let raft n = Option.get n.raft

let make_raft h n =
  let callbacks = Raft.Node.default_callbacks () in
  let node =
    Raft.Node.create ~engine:h.engine ~id:n.id ~region:n.node_region
      ~send:(fun ~dst msg ->
        Sim.Network.send h.net ~src:n.id ~dst ~size:(Raft.Message.size msg) msg)
      ~log:(Raft.Node.log_ops_of_store n.store)
      ~callbacks ~params:h.params ~initial_config:h.config ~durable:n.durable
      ~trace:h.trace ()
  in
  callbacks.Raft.Node.on_leader_start <-
    (fun ~noop_index:_ -> n.leader_terms <- Raft.Node.current_term node :: n.leader_terms);
  callbacks.Raft.Node.on_truncated <-
    (fun removed -> n.truncations <- n.truncations + List.length removed);
  callbacks.Raft.Node.on_commit_advance <-
    (fun ~commit_index -> n.committed_watermark <- max n.committed_watermark commit_index);
  node

(* members: (id, region, voter, kind) *)
let make_harness ?(seed = 5) ?(params = Raft.Node.default_params) members =
  let engine = Sim.Engine.create ~seed () in
  let topo = Sim.Topology.create () in
  List.iter (fun (id, region, _, _) -> Sim.Topology.add_node topo ~id ~region) members;
  let net = Sim.Network.create engine topo () in
  let trace = Sim.Trace.create engine in
  let config =
    {
      Raft.Types.members =
        List.map
          (fun (id, region, voter, kind) -> { Raft.Types.id; region; voter; kind })
          members;
    }
  in
  let h =
    { engine; net; nodes = Hashtbl.create 8; order = List.map (fun (id, _, _, _) -> id) members;
      config; params; trace }
  in
  List.iter
    (fun (id, region, _, _) ->
      let n =
        {
          id;
          node_region = region;
          store = Binlog.Log_store.create ~mode:Binlog.Log_store.Relay ();
          durable = Raft.Node.fresh_durable ();
          raft = None;
          leader_terms = [];
          truncations = 0;
          committed_watermark = 0;
          up = true;
        }
      in
      n.raft <- Some (make_raft h n);
      Hashtbl.replace h.nodes id n;
      Sim.Network.register net id (fun ~src msg ->
          match Hashtbl.find_opt h.nodes id with
          | Some n when n.up -> Raft.Node.handle_message (raft n) ~src msg
          | _ -> ()))
    members;
  h

let get h id = Hashtbl.find h.nodes id

let crash h id =
  let n = get h id in
  n.up <- false;
  Raft.Node.stop (raft n);
  Sim.Network.set_down h.net id

let restart h id =
  let n = get h id in
  n.up <- true;
  (* same restart semantics as a real server: unsynced tail may be torn *)
  ignore (Binlog.Log_store.crash_recover_log n.store);
  n.raft <- Some (make_raft h n);
  Sim.Network.set_up h.net id

let leaders h =
  List.filter
    (fun id ->
      let n = get h id in
      n.up && Raft.Node.is_leader (raft n))
    h.order

let run_until h ~timeout pred =
  let deadline = Sim.Engine.now h.engine +. timeout in
  let rec loop () =
    if pred () then true
    else if Sim.Engine.now h.engine >= deadline then false
    else begin
      Sim.Engine.run_for h.engine (10.0 *. ms);
      loop ()
    end
  in
  loop ()

let elect h id =
  Raft.Node.trigger_election (raft (get h id));
  let ok = run_until h ~timeout:(10.0 *. s) (fun () -> leaders h = [ id ]) in
  if not ok then Alcotest.failf "failed to elect %s" id

let append h id =
  match Raft.Node.client_append (raft (get h id)) Binlog.Entry.Noop with
  | Ok opid -> opid
  | Error e -> Alcotest.failf "append on %s failed: %s" id e

let mysql = Raft.Types.Mysql_server
let tailer = Raft.Types.Logtailer

let three_nodes () =
  [ ("n1", "r1", true, mysql); ("n2", "r1", true, mysql); ("n3", "r1", true, mysql) ]

let majority_params =
  { Raft.Node.default_params with quorum_mode = Raft.Quorum.Majority; proxying = false }

(* ----- basic elections ----- *)

let test_single_leader_emerges () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  let ok = run_until h ~timeout:(10.0 *. s) (fun () -> List.length (leaders h) = 1) in
  Alcotest.(check bool) "one leader" true ok;
  (* followers agree on who the leader is *)
  let leader = List.hd (leaders h) in
  Sim.Engine.run_for h.engine (2.0 *. s);
  List.iter
    (fun id ->
      Alcotest.(check (option string))
        (id ^ " knows leader")
        (Some leader)
        (Raft.Node.leader_id (raft (get h id))))
    h.order

let test_single_node_ring () =
  let h = make_harness ~params:majority_params [ ("n1", "r1", true, mysql) ] in
  let ok = run_until h ~timeout:(10.0 *. s) (fun () -> leaders h = [ "n1" ]) in
  Alcotest.(check bool) "self-elects" true ok;
  let opid = append h "n1" in
  Sim.Engine.run_for h.engine (100.0 *. ms);
  Alcotest.(check bool) "self-commits" true
    (Raft.Node.commit_index (raft (get h "n1")) >= Binlog.Opid.index opid)

let test_failover_elects_new_leader () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  crash h "n1";
  let ok =
    run_until h ~timeout:(15.0 *. s) (fun () ->
        match leaders h with [ l ] -> l <> "n1" | _ -> false)
  in
  Alcotest.(check bool) "new leader after crash" true ok

let test_old_leader_demotes_on_rejoin () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  (* Isolate rather than crash: the old leader keeps believing it leads
     (kuduraft has no auto step-down) until it hears a higher term. *)
  Sim.Network.isolate_node h.net "n1";
  let ok =
    run_until h ~timeout:(15.0 *. s) (fun () ->
        List.exists (fun id -> id <> "n1") (leaders h))
  in
  Alcotest.(check bool) "replacement elected" true ok;
  Alcotest.(check bool) "old leader still thinks it leads" true
    (Raft.Node.is_leader (raft (get h "n1")));
  Sim.Network.heal_node h.net "n1";
  let ok =
    run_until h ~timeout:(10.0 *. s) (fun () ->
        not (Raft.Node.is_leader (raft (get h "n1"))))
  in
  Alcotest.(check bool) "old leader fenced by term" true ok;
  Alcotest.(check int) "exactly one leader" 1 (List.length (leaders h))

let test_election_safety_terms_unique () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  crash h "n1";
  ignore (run_until h ~timeout:(15.0 *. s) (fun () -> leaders h <> []));
  restart h "n1";
  Sim.Engine.run_for h.engine (5.0 *. s);
  let all_terms =
    List.concat_map (fun id -> (get h id).leader_terms) h.order
  in
  let sorted = List.sort compare all_terms in
  Alcotest.(check (list int)) "no term elected two leaders" (List.sort_uniq compare sorted)
    sorted

(* ----- replication ----- *)

let test_replication_converges () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  for _ = 1 to 10 do
    ignore (append h "n1")
  done;
  let converged () =
    List.for_all
      (fun id ->
        let n = get h id in
        Binlog.Opid.index (Binlog.Log_store.last_opid n.store)
        = Binlog.Opid.index (Binlog.Log_store.last_opid (get h "n1").store)
        && Raft.Node.commit_index (raft n) = Raft.Node.commit_index (raft (get h "n1")))
      h.order
  in
  Alcotest.(check bool) "all logs converge" true (run_until h ~timeout:(10.0 *. s) converged);
  Alcotest.(check bool) "commit covers appends" true
    (Raft.Node.commit_index (raft (get h "n1")) >= 11 (* noop + 10 *))

let test_lagging_follower_catches_up () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  crash h "n3";
  for _ = 1 to 20 do
    ignore (append h "n1")
  done;
  Sim.Engine.run_for h.engine (2.0 *. s);
  restart h "n3";
  let target = Binlog.Opid.index (Binlog.Log_store.last_opid (get h "n1").store) in
  let ok =
    run_until h ~timeout:(15.0 *. s) (fun () ->
        Binlog.Opid.index (Binlog.Log_store.last_opid (get h "n3").store) = target)
  in
  Alcotest.(check bool) "restarted follower backfills" true ok

let test_uncommitted_suffix_truncated () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  ignore (append h "n1");
  Sim.Engine.run_for h.engine s;
  (* Writes that reach only the isolated leader's log must be truncated
     when it rejoins (§A.2 case 2). *)
  Sim.Network.isolate_node h.net "n1";
  Sim.Engine.run_for h.engine (50.0 *. ms);
  ignore (append h "n1");
  ignore (append h "n1");
  ignore
    (run_until h ~timeout:(15.0 *. s) (fun () ->
         List.exists (fun id -> id <> "n1") (leaders h)));
  (* new leader commits something of its own *)
  let new_leader = List.find (fun id -> id <> "n1") (leaders h) in
  ignore (append h new_leader);
  Sim.Network.heal_node h.net "n1";
  let n1 = get h "n1" in
  let ok =
    run_until h ~timeout:(15.0 *. s) (fun () ->
        n1.truncations >= 2
        && Binlog.Opid.index (Binlog.Log_store.last_opid n1.store)
           = Binlog.Opid.index (Binlog.Log_store.last_opid (get h new_leader).store))
  in
  Alcotest.(check bool) "suffix truncated and log converged" true ok

let test_committed_entries_never_lost () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  let opid = append h "n1" in
  let ok =
    run_until h ~timeout:(5.0 *. s) (fun () ->
        Raft.Node.commit_index (raft (get h "n1")) >= Binlog.Opid.index opid)
  in
  Alcotest.(check bool) "committed" true ok;
  crash h "n1";
  ignore
    (run_until h ~timeout:(15.0 *. s) (fun () ->
         List.exists (fun id -> id <> "n1") (leaders h)));
  let new_leader = List.hd (leaders h) in
  let entry = Binlog.Log_store.entry_at (get h new_leader).store (Binlog.Opid.index opid) in
  (match entry with
  | Some e ->
    Alcotest.(check int) "same term at committed index" (Binlog.Opid.term opid)
      (Binlog.Entry.term e)
  | None -> Alcotest.fail "committed entry missing from new leader")

(* ----- FlexiRaft ----- *)

let flexi_params =
  { Raft.Node.default_params with quorum_mode = Raft.Quorum.Single_region_dynamic;
    proxying = false }

let two_region_members () =
  [
    ("a1", "r1", true, mysql);
    ("a2", "r1", true, tailer);
    ("a3", "r1", true, tailer);
    ("b1", "r2", true, mysql);
    ("b2", "r2", true, tailer);
    ("b3", "r2", true, tailer);
  ]

let test_flexiraft_commits_in_region () =
  let h = make_harness ~params:flexi_params (two_region_members ()) in
  elect h "a1";
  Sim.Engine.run_for h.engine s;
  (* Cut off the remote region entirely: in-region data quorum must still
     commit (that is the whole point of single-region-dynamic, §4.1). *)
  Sim.Network.cut_regions h.net "r1" "r2";
  let opid = append h "a1" in
  let ok =
    run_until h ~timeout:(5.0 *. s) (fun () ->
        Raft.Node.commit_index (raft (get h "a1")) >= Binlog.Opid.index opid)
  in
  Alcotest.(check bool) "committed with only in-region acks" true ok

let test_majority_mode_blocks_across_partition () =
  let params = { flexi_params with quorum_mode = Raft.Quorum.Majority } in
  (* 2 voters in r1, 4 in r2: a majority (4/6) needs r2. *)
  let members =
    [
      ("a1", "r1", true, mysql);
      ("a2", "r1", true, tailer);
      ("b1", "r2", true, mysql);
      ("b2", "r2", true, mysql);
      ("b3", "r2", true, tailer);
      ("b4", "r2", true, tailer);
    ]
  in
  let h = make_harness ~params members in
  elect h "a1";
  Sim.Engine.run_for h.engine s;
  Sim.Network.cut_regions h.net "r1" "r2";
  let opid = append h "a1" in
  let committed =
    run_until h ~timeout:(5.0 *. s) (fun () ->
        Raft.Node.commit_index (raft (get h "a1")) >= Binlog.Opid.index opid)
  in
  Alcotest.(check bool) "majority mode cannot commit" false committed

let test_flexiraft_election_needs_last_leader_region () =
  let h = make_harness ~params:flexi_params (two_region_members ()) in
  elect h "a1";
  ignore (append h "a1");
  Sim.Engine.run_for h.engine s;
  (* Kill the entire leader region: r2 cannot form the intersection
     quorum (it needs a majority of r1, the last leader's region), so no
     leader can emerge — FlexiRaft chooses consistency (§4.1). *)
  crash h "a1";
  crash h "a2";
  crash h "a3";
  Sim.Engine.run_for h.engine (15.0 *. s);
  Alcotest.(check (list string)) "no leader electable" [] (leaders h);
  (* Healing a majority of r1's voters restores the intersection quorum
     (a candidate needs a majority of the last leader's region). *)
  restart h "a2";
  restart h "a3";
  let ok =
    run_until h ~timeout:(20.0 *. s) (fun () ->
        match leaders h with [ _ ] -> true | _ -> false)
  in
  Alcotest.(check bool) "leader after partial heal" true ok

let test_flexiraft_failover_within_leader_region () =
  let h = make_harness ~params:flexi_params (two_region_members ()) in
  elect h "a1";
  ignore (append h "a1");
  Sim.Engine.run_for h.engine s;
  crash h "a1";
  (* Election quorum: candidate region majority + last-leader region (r1)
     majority.  a2/a3 survive in r1, so a new leader can emerge; with the
     longest log it is typically an r1 logtailer. *)
  let ok =
    run_until h ~timeout:(15.0 *. s) (fun () ->
        match leaders h with [ l ] -> l <> "a1" | _ -> false)
  in
  Alcotest.(check bool) "failover succeeds" true ok

let test_quorum_unit_rules () =
  let cfg =
    {
      Raft.Types.members =
        List.map
          (fun (id, region, voter, kind) -> { Raft.Types.id; region; voter; kind })
          (two_region_members ());
    }
  in
  (* data quorum in SRD: majority of leader region's 3 voters = 2 *)
  Alcotest.(check bool) "self+1 tailer commits" true
    (Raft.Quorum.data_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~leader_region:"r1" ~acks:[ "a1"; "a3" ]);
  Alcotest.(check bool) "self alone does not" false
    (Raft.Quorum.data_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~leader_region:"r1" ~acks:[ "a1" ]);
  Alcotest.(check bool) "remote acks don't help SRD" false
    (Raft.Quorum.data_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~leader_region:"r1" ~acks:[ "a1"; "b1"; "b2"; "b3" ]);
  (* election quorum: candidate in r2 with last leader in r1 needs both *)
  Alcotest.(check bool) "r2-only votes insufficient" false
    (Raft.Quorum.election_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~candidate_region:"r2" ~last_leader:(Some (3, "r1")) ~vote_constraint:None
       ~votes:[ "b1"; "b2"; "b3" ]);
  Alcotest.(check bool) "r2 majority + r1 majority sufficient" true
    (Raft.Quorum.election_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~candidate_region:"r2" ~last_leader:(Some (3, "r1")) ~vote_constraint:None
       ~votes:[ "b1"; "b2"; "a2"; "a3" ]);
  (* unknown last leader: pessimistic, every region — even when a vote
     was granted somewhere (a grant can only tighten, never relax) *)
  Alcotest.(check bool) "pessimistic requires all regions" false
    (Raft.Quorum.election_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~candidate_region:"r2" ~last_leader:None ~vote_constraint:None
       ~votes:[ "b1"; "b2"; "b3" ]);
  Alcotest.(check bool) "vote grant alone stays pessimistic" false
    (Raft.Quorum.election_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~candidate_region:"r2" ~last_leader:None ~vote_constraint:(Some (1, "r2"))
       ~votes:[ "b1"; "b2"; "b3" ]);
  (* a granted vote newer than the last leader adds its region *)
  Alcotest.(check bool) "newer grant region required too" false
    (Raft.Quorum.election_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~candidate_region:"r1" ~last_leader:(Some (3, "r1"))
       ~vote_constraint:(Some (4, "r2"))
       ~votes:[ "a1"; "a2"; "a3" ]);
  Alcotest.(check bool) "newer grant satisfied with both regions" true
    (Raft.Quorum.election_quorum_satisfied Raft.Quorum.Single_region_dynamic cfg
       ~candidate_region:"r1" ~last_leader:(Some (3, "r1"))
       ~vote_constraint:(Some (4, "r2"))
       ~votes:[ "a1"; "a2"; "b1"; "b2" ]);
  (* min data quorum sizes *)
  Alcotest.(check int) "SRD quorum size" 2
    (Raft.Quorum.min_data_quorum_size Raft.Quorum.Single_region_dynamic cfg
       ~leader_region:"r1");
  Alcotest.(check int) "majority quorum size" 4
    (Raft.Quorum.min_data_quorum_size Raft.Quorum.Majority cfg ~leader_region:"r1")

(* ----- leadership transfer & mock elections ----- *)

let test_graceful_transfer () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  for _ = 1 to 5 do
    ignore (append h "n1")
  done;
  (match Raft.Node.transfer_leadership (raft (get h "n1")) ~target:"n2" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "transfer refused: %s" e);
  let ok = run_until h ~timeout:(10.0 *. s) (fun () -> leaders h = [ "n2" ]) in
  Alcotest.(check bool) "target becomes leader" true ok

let test_transfer_rejects_bad_targets () =
  let h =
    make_harness ~params:majority_params
      (three_nodes () @ [ ("lrn", "r1", false, mysql) ])
  in
  elect h "n1";
  let r = raft (get h "n1") in
  Alcotest.(check bool) "to self" true (Result.is_error (Raft.Node.transfer_leadership r ~target:"n1"));
  Alcotest.(check bool) "to learner" true
    (Result.is_error (Raft.Node.transfer_leadership r ~target:"lrn"));
  Alcotest.(check bool) "to stranger" true
    (Result.is_error (Raft.Node.transfer_leadership r ~target:"nope"))

let test_mock_election_blocks_lagging_region () =
  let h = make_harness ~params:flexi_params (two_region_members ()) in
  elect h "a1";
  ignore (append h "a1");
  Sim.Engine.run_for h.engine s;
  (* Lag b2/b3 (the r2 logtailers): isolate them, then write more. *)
  Sim.Network.isolate_node h.net "b2";
  Sim.Network.isolate_node h.net "b3";
  ignore (append h "a1");
  Sim.Engine.run_for h.engine s;
  (* Transfer to b1: its region majority needs one of the lagging
     logtailers; the mock election must fail and leadership must stay at
     a1 with no write outage (§4.3). *)
  (match Raft.Node.transfer_leadership (raft (get h "a1")) ~target:"b1" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "transfer call failed: %s" e);
  Sim.Engine.run_for h.engine (3.0 *. s);
  Alcotest.(check (list string)) "a1 still leader" [ "a1" ] (leaders h)

let test_mock_election_allows_caught_up_region () =
  let h = make_harness ~params:flexi_params (two_region_members ()) in
  elect h "a1";
  ignore (append h "a1");
  Sim.Engine.run_for h.engine (2.0 *. s);
  (match Raft.Node.transfer_leadership (raft (get h "a1")) ~target:"b1" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "transfer call failed: %s" e);
  let ok = run_until h ~timeout:(10.0 *. s) (fun () -> leaders h = [ "b1" ]) in
  Alcotest.(check bool) "cross-region transfer succeeds" true ok

(* ----- membership changes ----- *)

let test_add_member () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  (* Create the new node's infrastructure first (automation "allocates
     and prepares a new member", §2.2). *)
  Sim.Topology.add_node (Sim.Network.topology h.net) ~id:"n4" ~region:"r1";
  let n4 =
    {
      id = "n4";
      node_region = "r1";
      store = Binlog.Log_store.create ~mode:Binlog.Log_store.Relay ();
      durable = Raft.Node.fresh_durable ();
      raft = None;
      leader_terms = [];
      truncations = 0;
      committed_watermark = 0;
      up = true;
    }
  in
  n4.raft <- Some (make_raft h n4);
  Hashtbl.replace h.nodes "n4" n4;
  Sim.Network.register h.net "n4" (fun ~src msg ->
      if n4.up then Raft.Node.handle_message (raft n4) ~src msg);
  (match
     Raft.Node.add_member (raft (get h "n1"))
       { Raft.Types.id = "n4"; region = "r1"; voter = true; kind = mysql }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "add_member: %s" e);
  let ok =
    run_until h ~timeout:(10.0 *. s) (fun () ->
        Binlog.Opid.index (Binlog.Log_store.last_opid n4.store) > 0
        && Raft.Types.is_member (Raft.Node.config (raft (get h "n2"))) "n4")
  in
  Alcotest.(check bool) "n4 replicated to and in config everywhere" true ok

let test_remove_member () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  (match Raft.Node.remove_member (raft (get h "n1")) "n3" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "remove_member: %s" e);
  let ok =
    run_until h ~timeout:(10.0 *. s) (fun () ->
        not (Raft.Types.is_member (Raft.Node.config (raft (get h "n1"))) "n3")
        && not (Raft.Types.is_member (Raft.Node.config (raft (get h "n2"))) "n3"))
  in
  Alcotest.(check bool) "n3 removed from configs" true ok;
  (* ring of 2 still commits *)
  let opid = append h "n1" in
  let ok =
    run_until h ~timeout:(5.0 *. s) (fun () ->
        Raft.Node.commit_index (raft (get h "n1")) >= Binlog.Opid.index opid)
  in
  Alcotest.(check bool) "2-node ring commits" true ok

let test_one_change_at_a_time () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  let r = raft (get h "n1") in
  (match Raft.Node.remove_member r "n3" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first change: %s" e);
  (* immediately, before the first change commits *)
  (match Raft.Node.remove_member r "n2" with
  | Ok _ -> Alcotest.fail "second concurrent change must be rejected"
  | Error _ -> ());
  (* after the first commits, a second change is fine (the new node's
     infrastructure must exist first: config gossip starts immediately) *)
  Sim.Engine.run_for h.engine (2.0 *. s);
  Sim.Topology.add_node (Sim.Network.topology h.net) ~id:"n5" ~region:"r1";
  match
    Raft.Node.add_member r { Raft.Types.id = "n5"; region = "r1"; voter = false; kind = mysql }
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "change after commit: %s" e

let test_leader_cannot_remove_self () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  match Raft.Node.remove_member (raft (get h "n1")) "n1" with
  | Ok _ -> Alcotest.fail "leader self-removal must be rejected"
  | Error _ -> ()

let test_promote_learner () =
  let members = three_nodes () @ [ ("n4", "r1", false, mysql) ] in
  let h = make_harness ~params:majority_params members in
  elect h "n1";
  (match Raft.Node.promote_learner (raft (get h "n1")) "n4" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "promote: %s" e);
  let ok =
    run_until h ~timeout:(10.0 *. s) (fun () ->
        match Raft.Types.find_member (Raft.Node.config (raft (get h "n2"))) "n4" with
        | Some m -> m.Raft.Types.voter
        | None -> false)
  in
  Alcotest.(check bool) "learner promoted to voter" true ok

(* ----- proxying ----- *)

let proxy_members () =
  [
    ("a1", "r1", true, mysql);
    ("a2", "r1", true, tailer);
    ("a3", "r1", true, tailer);
    ("b1", "r2", true, mysql);
    ("b2", "r2", true, tailer);
    ("b3", "r2", true, tailer);
  ]

let run_proxy_workload ~proxying =
  let params =
    { flexi_params with proxying; max_entries_per_ae = 8 }
  in
  let h = make_harness ~params (proxy_members ()) in
  elect h "a1";
  Sim.Engine.run_for h.engine s;
  Sim.Network.reset_stats h.net;
  for i = 1 to 100 do
    ignore
      (Raft.Node.client_append (raft (get h "a1"))
         (Binlog.Entry.Transaction
            {
              gtid = Binlog.Gtid.make ~source:"a1" ~gno:i;
              events =
                [
                  Binlog.Event.make
                    (Binlog.Event.Write_rows
                       {
                         table = "t";
                         ops =
                           [
                             Binlog.Event.Insert
                               { key = Printf.sprintf "k%d" i; value = String.make 400 'x' };
                           ];
                       });
                ];
            }));
    Sim.Engine.run_for h.engine (20.0 *. ms)
  done;
  ignore
    (run_until h ~timeout:(20.0 *. s) (fun () ->
         List.for_all
           (fun id ->
             Binlog.Opid.index (Binlog.Log_store.last_opid (get h id).store)
             = Binlog.Opid.index (Binlog.Log_store.last_opid (get h "a1").store))
           h.order));
  (h, Sim.Network.cross_region_bytes h.net)

let test_proxying_reduces_cross_region_bytes () =
  let h_on, bytes_on = run_proxy_workload ~proxying:true in
  let h_off, bytes_off = run_proxy_workload ~proxying:false in
  (* all replicas converged in both runs *)
  List.iter
    (fun (h, label) ->
      List.iter
        (fun id ->
          Alcotest.(check int)
            (label ^ ": " ^ id ^ " converged")
            (Binlog.Opid.index (Binlog.Log_store.last_opid (get h "a1").store))
            (Binlog.Opid.index (Binlog.Log_store.last_opid (get h id).store)))
        h.order)
    [ (h_on, "proxy"); (h_off, "direct") ];
  if not (float_of_int bytes_on < 0.7 *. float_of_int bytes_off) then
    Alcotest.failf "proxying did not reduce cross-region bytes: %d vs %d" bytes_on
      bytes_off

let test_proxy_failure_routes_around () =
  let params = { flexi_params with proxying = true } in
  let h = make_harness ~params (proxy_members ()) in
  elect h "a1";
  Sim.Engine.run_for h.engine s;
  (* Kill both r2 logtailers: b1 must still receive entries directly. *)
  crash h "b2";
  crash h "b3";
  Sim.Engine.run_for h.engine (3.0 *. s) (* let health checks notice *);
  for _ = 1 to 5 do
    ignore (append h "a1")
  done;
  let target = Binlog.Opid.index (Binlog.Log_store.last_opid (get h "a1").store) in
  let ok =
    run_until h ~timeout:(15.0 *. s) (fun () ->
        Binlog.Opid.index (Binlog.Log_store.last_opid (get h "b1").store) = target)
  in
  Alcotest.(check bool) "b1 converges despite dead proxies" true ok

let test_catchup_bandwidth_no_duplication () =
  (* Regression: stale duplicate AE responses must not grow the per-peer
     send window — a restarted follower's backfill should cost about one
     copy of the backlog, not ten. *)
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  crash h "n3";
  let payload_bytes = ref 0 in
  for i = 1 to 200 do
    let entry_payload =
      Binlog.Entry.Transaction
        {
          gtid = Binlog.Gtid.make ~source:"n1" ~gno:i;
          events =
            [
              Binlog.Event.make
                (Binlog.Event.Write_rows
                   {
                     table = "t";
                     ops = [ Binlog.Event.Insert { key = "k"; value = String.make 400 'x' } ];
                   });
            ];
        }
    in
    (match Raft.Node.client_append (raft (get h "n1")) entry_payload with
    | Ok opid ->
      payload_bytes :=
        !payload_bytes
        + Binlog.Entry.size
            (Option.get (Binlog.Log_store.entry_at (get h "n1").store (Binlog.Opid.index opid)))
    | Error e -> Alcotest.failf "append: %s" e);
    Sim.Engine.run_for h.engine (5.0 *. ms)
  done;
  Sim.Network.reset_stats h.net;
  restart h "n3";
  let target = Binlog.Opid.index (Binlog.Log_store.last_opid (get h "n1").store) in
  ignore
    (run_until h ~timeout:(30.0 *. s) (fun () ->
         Binlog.Opid.index (Binlog.Log_store.last_opid (get h "n3").store) = target));
  let shipped = Sim.Network.link_bytes h.net ~src:"n1" ~dst:"n3" in
  if float_of_int shipped > 2.0 *. float_of_int !payload_bytes then
    Alcotest.failf "catch-up shipped %dB for a %dB backlog (duplication!)" shipped
      !payload_bytes

(* Regression: with stop-and-wait bookkeeping, one lost AppendEntries
   *response* left the peer marked busy forever — replication to it
   stalled until a leadership change.  The per-peer retransmit timer
   must recover without any election. *)
let test_retransmit_recovers_dropped_response () =
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  Sim.Engine.run_for h.engine s;
  (* Lose every n3 -> n1 message: entries still reach n3, their
     acknowledgements do not. *)
  Sim.Network.set_link_faults h.net ~src:"n3" ~dst:"n1"
    { Sim.Network.no_faults with drop = 1.0 };
  let target = Binlog.Opid.index (append h "n1") in
  ignore
    (run_until h ~timeout:(2.0 *. s) (fun () ->
         Binlog.Opid.index (Binlog.Log_store.last_opid (get h "n3").store) = target));
  Alcotest.(check int) "entry reached n3" target
    (Binlog.Opid.index (Binlog.Log_store.last_opid (get h "n3").store));
  (match Raft.Node.match_index_of (raft (get h "n1")) ~peer:"n3" with
  | Some m when m >= target -> Alcotest.fail "ack arrived despite the drop fault"
  | _ -> ());
  Sim.Network.clear_link_faults h.net ~src:"n3" ~dst:"n1";
  let ok =
    run_until h ~timeout:(5.0 *. s) (fun () ->
        match Raft.Node.match_index_of (raft (get h "n1")) ~peer:"n3" with
        | Some m -> m >= target
        | None -> false)
  in
  Alcotest.(check bool) "retransmit recovered the ack" true ok;
  let snap = Obs.Metrics.snapshot (Raft.Node.metrics (raft (get h "n1"))) in
  Alcotest.(check bool) "retransmits counted" true
    (Obs.Metrics.counter_of snap "raft.retransmits" > 0);
  Alcotest.(check bool) "n1 kept the lease the whole time" true
    (Raft.Node.is_leader (raft (get h "n1")));
  Alcotest.(check int) "no election happened" 1
    (List.length (get h "n1").leader_terms)

(* ----- auto step-down (optional extension) ----- *)

let test_auto_step_down_disabled_by_default () =
  (* kuduraft behaviour (§4.1): an isolated leader with a stuck tail
     keeps the role indefinitely. *)
  let h = make_harness ~params:majority_params (three_nodes ()) in
  elect h "n1";
  Sim.Network.isolate_node h.net "n1";
  ignore (append h "n1") (* uncommittable tail *);
  Sim.Engine.run_for h.engine (20.0 *. s);
  Alcotest.(check bool) "still leader" true (Raft.Node.is_leader (raft (get h "n1")))

let test_auto_step_down_abdicates () =
  let params =
    { majority_params with Raft.Node.auto_step_down_after = 3.0 *. s }
  in
  let h = make_harness ~params (three_nodes ()) in
  elect h "n1";
  ignore (append h "n1");
  Sim.Engine.run_for h.engine (2.0 *. s);
  Sim.Network.isolate_node h.net "n1";
  ignore (append h "n1") (* this one can never commit *);
  Sim.Engine.run_for h.engine (10.0 *. s);
  Alcotest.(check bool) "abdicated without seeing a higher term" false
    (Raft.Node.is_leader (raft (get h "n1")));
  (* the rest of the ring elected a replacement as usual *)
  Alcotest.(check bool) "replacement exists" true
    (List.exists (fun id -> id <> "n1") (leaders h))

let test_auto_step_down_quiet_leader_keeps_role () =
  (* without an uncommittable tail there is no reason to abdicate: a
     fully committed, isolated leader just sits there harmlessly *)
  let params =
    { majority_params with Raft.Node.auto_step_down_after = 3.0 *. s }
  in
  let h = make_harness ~params (three_nodes ()) in
  elect h "n1";
  ignore (append h "n1");
  Sim.Engine.run_for h.engine (2.0 *. s) (* commit it *);
  Sim.Network.isolate_node h.net "n1";
  Sim.Engine.run_for h.engine (10.0 *. s);
  Alcotest.(check bool) "no tail, no abdication" true
    (Raft.Node.is_leader (raft (get h "n1")))

(* ----- log cache ----- *)

let test_log_cache_eviction_and_fallback () =
  let cache = Raft.Log_cache.create ~max_bytes:2_000 () in
  let store = Binlog.Log_store.create () in
  for i = 1 to 50 do
    let entry =
      Binlog.Entry.make
        ~opid:(Binlog.Opid.make ~term:1 ~index:i)
        (Binlog.Entry.Transaction
           {
             gtid = Binlog.Gtid.make ~source:"s" ~gno:i;
             events =
               [
                 Binlog.Event.make
                   (Binlog.Event.Write_rows
                      {
                        table = "t";
                        ops = [ Binlog.Event.Insert { key = "k"; value = String.make 200 'x' } ];
                      });
               ];
           })
    in
    Binlog.Log_store.append store entry;
    Raft.Log_cache.put cache entry
  done;
  (* early entries were evicted from the 2KB cache *)
  Alcotest.(check bool) "oldest evicted" false (Raft.Log_cache.contains cache ~index:1);
  Alcotest.(check bool) "newest cached" true (Raft.Log_cache.contains cache ~index:50);
  (* reading from the start falls back to "parsing historical binlog
     files" (§3.1) and still returns everything in order *)
  let entries =
    Raft.Log_cache.read cache ~from_index:1 ~max_count:50
      ~read_log:(Binlog.Log_store.entry_at store) ()
  in
  Alcotest.(check int) "all entries read" 50 (List.length entries);
  Alcotest.(check bool) "disk reads happened" true (Raft.Log_cache.disk_reads cache > 0);
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1))
    (List.map Binlog.Entry.index entries)

let test_log_cache_truncate () =
  let cache = Raft.Log_cache.create () in
  for i = 1 to 10 do
    Raft.Log_cache.put cache
      (Binlog.Entry.make ~opid:(Binlog.Opid.make ~term:1 ~index:i) Binlog.Entry.Noop)
  done;
  Raft.Log_cache.truncate_from cache ~index:6;
  Alcotest.(check bool) "kept below" true (Raft.Log_cache.contains cache ~index:5);
  Alcotest.(check bool) "dropped at" false (Raft.Log_cache.contains cache ~index:6)

(* Regression: [put] on an already-cached index must replace the old
   entry's byte accounting, not add on top of it — re-appends during
   leader changes used to inflate [cached_bytes] until spurious
   evictions set in. *)
let test_log_cache_duplicate_put_bytes () =
  let mk index payload =
    Binlog.Entry.make
      ~opid:(Binlog.Opid.make ~term:1 ~index)
      (Binlog.Entry.Transaction
         {
           gtid = Binlog.Gtid.make ~source:"s" ~gno:index;
           events =
             [
               Binlog.Event.make
                 (Binlog.Event.Write_rows
                    { table = "t"; ops = [ Binlog.Event.Insert { key = "k"; value = payload } ] });
             ];
         })
  in
  let cache = Raft.Log_cache.create () in
  let e1 = mk 1 (String.make 100 'a') in
  Raft.Log_cache.put cache e1;
  Alcotest.(check int) "one entry accounted exactly" (Binlog.Entry.size e1)
    (Raft.Log_cache.cached_bytes cache);
  Raft.Log_cache.put cache e1;
  Alcotest.(check int) "re-insert does not double-count" (Binlog.Entry.size e1)
    (Raft.Log_cache.cached_bytes cache);
  let e1' = mk 1 (String.make 300 'b') in
  Raft.Log_cache.put cache e1';
  Alcotest.(check int) "replacement swaps the accounting" (Binlog.Entry.size e1')
    (Raft.Log_cache.cached_bytes cache);
  let e2 = mk 2 (String.make 50 'c') in
  Raft.Log_cache.put cache e2;
  Alcotest.(check int) "distinct index adds its size"
    (Binlog.Entry.size e1' + Binlog.Entry.size e2)
    (Raft.Log_cache.cached_bytes cache)

(* The adaptive batcher trims reads to its byte budget — but at least
   one entry always ships, or a budget below the next entry's size
   would wedge replication. *)
let test_log_cache_byte_budget () =
  let mk index =
    Binlog.Entry.make
      ~opid:(Binlog.Opid.make ~term:1 ~index)
      (Binlog.Entry.Transaction
         {
           gtid = Binlog.Gtid.make ~source:"s" ~gno:index;
           events =
             [
               Binlog.Event.make
                 (Binlog.Event.Write_rows
                    {
                      table = "t";
                      ops = [ Binlog.Event.Insert { key = "k"; value = String.make 200 'x' } ];
                    });
             ];
         })
  in
  let cache = Raft.Log_cache.create () in
  for i = 1 to 10 do
    Raft.Log_cache.put cache (mk i)
  done;
  let no_log _ = None in
  let per_entry = Binlog.Entry.size (mk 1) in
  let read ~max_bytes =
    Raft.Log_cache.read cache ~max_bytes ~from_index:1 ~max_count:10 ~read_log:no_log ()
  in
  Alcotest.(check int) "budget of 3 entries returns 3" 3
    (List.length (read ~max_bytes:(3 * per_entry)));
  Alcotest.(check int) "budget just under 3 entries returns 2" 2
    (List.length (read ~max_bytes:((3 * per_entry) - 1)));
  Alcotest.(check int) "tiny budget still ships the first entry" 1
    (List.length (read ~max_bytes:1));
  Alcotest.(check int) "unlimited budget honours max_count" 10
    (List.length (read ~max_bytes:max_int))

let suites =
  [
    ( "raft.election",
      [
        Alcotest.test_case "single leader emerges" `Quick test_single_leader_emerges;
        Alcotest.test_case "single-node ring" `Quick test_single_node_ring;
        Alcotest.test_case "failover elects new leader" `Quick test_failover_elects_new_leader;
        Alcotest.test_case "old leader demotes on rejoin" `Quick test_old_leader_demotes_on_rejoin;
        Alcotest.test_case "election safety (unique terms)" `Quick test_election_safety_terms_unique;
      ] );
    ( "raft.replication",
      [
        Alcotest.test_case "logs converge" `Quick test_replication_converges;
        Alcotest.test_case "lagging follower catches up" `Quick test_lagging_follower_catches_up;
        Alcotest.test_case "uncommitted suffix truncated" `Quick test_uncommitted_suffix_truncated;
        Alcotest.test_case "committed entries survive failover" `Quick test_committed_entries_never_lost;
      ] );
    ( "raft.flexiraft",
      [
        Alcotest.test_case "quorum unit rules" `Quick test_quorum_unit_rules;
        Alcotest.test_case "commits with in-region quorum" `Quick test_flexiraft_commits_in_region;
        Alcotest.test_case "majority mode blocks across partition" `Quick
          test_majority_mode_blocks_across_partition;
        Alcotest.test_case "election needs last-leader region" `Quick
          test_flexiraft_election_needs_last_leader_region;
        Alcotest.test_case "failover within leader region" `Quick
          test_flexiraft_failover_within_leader_region;
      ] );
    ( "raft.transfer",
      [
        Alcotest.test_case "graceful transfer" `Quick test_graceful_transfer;
        Alcotest.test_case "rejects bad targets" `Quick test_transfer_rejects_bad_targets;
        Alcotest.test_case "mock election blocks lagging region" `Quick
          test_mock_election_blocks_lagging_region;
        Alcotest.test_case "mock election allows healthy region" `Quick
          test_mock_election_allows_caught_up_region;
      ] );
    ( "raft.membership",
      [
        Alcotest.test_case "add member" `Quick test_add_member;
        Alcotest.test_case "remove member" `Quick test_remove_member;
        Alcotest.test_case "one change at a time" `Quick test_one_change_at_a_time;
        Alcotest.test_case "leader cannot remove self" `Quick test_leader_cannot_remove_self;
        Alcotest.test_case "promote learner" `Quick test_promote_learner;
      ] );
    ( "raft.proxy",
      [
        Alcotest.test_case "reduces cross-region bytes" `Quick
          test_proxying_reduces_cross_region_bytes;
        Alcotest.test_case "routes around dead proxies" `Quick test_proxy_failure_routes_around;
      ] );
    ( "raft.window",
      [
        Alcotest.test_case "catch-up without duplication" `Quick
          test_catchup_bandwidth_no_duplication;
        Alcotest.test_case "retransmit recovers dropped response" `Quick
          test_retransmit_recovers_dropped_response;
      ] );
    ( "raft.step_down",
      [
        Alcotest.test_case "disabled by default (kuduraft)" `Quick
          test_auto_step_down_disabled_by_default;
        Alcotest.test_case "abdicates with stuck tail" `Quick test_auto_step_down_abdicates;
        Alcotest.test_case "quiet leader keeps role" `Quick
          test_auto_step_down_quiet_leader_keeps_role;
      ] );
    ( "raft.log_cache",
      [
        Alcotest.test_case "eviction and disk fallback" `Quick
          test_log_cache_eviction_and_fallback;
        Alcotest.test_case "truncate" `Quick test_log_cache_truncate;
        Alcotest.test_case "duplicate put keeps exact bytes" `Quick
          test_log_cache_duplicate_put_bytes;
        Alcotest.test_case "byte budget" `Quick test_log_cache_byte_budget;
      ] );
  ]
