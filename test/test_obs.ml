(* Observability layer: metrics registry, OpId-correlated trace ring,
   and end-to-end commit-path instrumentation. *)

let s = Sim.Engine.s

(* ----- metrics registry ----- *)

let test_counters_gauges_histograms () =
  let m = Obs.Metrics.create ~node:"n1" () in
  let c = Obs.Metrics.counter m "a.count" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  (* bump resolves the same underlying counter by name *)
  Obs.Metrics.bump m "a.count";
  Obs.Metrics.set m "a.depth" 3.0;
  Obs.Metrics.observe m "a.lat_us" 100.0;
  Obs.Metrics.observe m "a.lat_us" 300.0;
  let snap = Obs.Metrics.snapshot m in
  Alcotest.(check string) "node label" "n1" snap.Obs.Metrics.snap_node;
  Alcotest.(check int) "counter" 6 (Obs.Metrics.counter_of snap "a.count");
  Alcotest.(check int) "absent counter reads 0" 0 (Obs.Metrics.counter_of snap "nope");
  Alcotest.(check (option (float 1e-6))) "gauge" (Some 3.0)
    (Obs.Metrics.gauge_of snap "a.depth");
  match Obs.Metrics.histogram_of snap "a.lat_us" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some h ->
    Alcotest.(check int) "samples" 2 (Stats.Histogram.count h);
    Alcotest.(check (float 1e-6)) "mean" 200.0 (Stats.Histogram.mean h)

let test_snapshot_merge () =
  let a = Obs.Metrics.create ~node:"a" () in
  let b = Obs.Metrics.create ~node:"b" () in
  Obs.Metrics.bump ~by:2 a "x";
  Obs.Metrics.bump ~by:3 b "x";
  Obs.Metrics.bump b "only_b";
  Obs.Metrics.set a "g" 1.5;
  Obs.Metrics.set b "g" 2.5;
  Obs.Metrics.observe a "h" 10.0;
  Obs.Metrics.observe b "h" 30.0;
  let merged = Obs.Metrics.merge (Obs.Metrics.snapshot a) (Obs.Metrics.snapshot b) in
  Alcotest.(check int) "counters sum" 5 (Obs.Metrics.counter_of merged "x");
  Alcotest.(check int) "one-sided counter kept" 1 (Obs.Metrics.counter_of merged "only_b");
  Alcotest.(check (option (float 1e-6))) "gauges sum" (Some 4.0)
    (Obs.Metrics.gauge_of merged "g");
  (match Obs.Metrics.histogram_of merged "h" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
    Alcotest.(check int) "histogram samples pooled" 2 (Stats.Histogram.count h);
    Alcotest.(check (float 1e-6)) "pooled mean" 20.0 (Stats.Histogram.mean h));
  let all =
    Obs.Metrics.merge_all ~node:"all"
      [ Obs.Metrics.snapshot a; Obs.Metrics.snapshot b ]
  in
  Alcotest.(check string) "merge_all node label" "all" all.Obs.Metrics.snap_node;
  Alcotest.(check int) "merge_all sums" 5 (Obs.Metrics.counter_of all "x")

let test_render_and_json () =
  let m = Obs.Metrics.create ~node:"n" () in
  Obs.Metrics.bump ~by:7 m "writes";
  Obs.Metrics.observe m "lat" 42.0;
  let snap = Obs.Metrics.snapshot m in
  let text = Obs.Metrics.render snap in
  Alcotest.(check bool) "render names the counter" true (Helpers.contains text "writes");
  Alcotest.(check bool) "render shows the value" true (Helpers.contains text "7");
  let json = Obs.Metrics.to_json snap in
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" key) true
        (Helpers.contains json key))
    [ "\"node\""; "\"counters\""; "\"gauges\""; "\"histograms\""; "\"writes\":7"; "\"p99\"" ]

(* ----- trace ring ----- *)

let test_trace_ring_wraparound () =
  let tb = Obs.Tracebuf.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Tracebuf.record tb ~time:(float_of_int i) ~node:"n" ~stage:"flush" ~term:1 ~index:i
      ()
  done;
  Alcotest.(check int) "capacity" 4 (Obs.Tracebuf.capacity tb);
  Alcotest.(check int) "total ever recorded" 6 (Obs.Tracebuf.total tb);
  Alcotest.(check int) "retained" 4 (Obs.Tracebuf.length tb);
  Alcotest.(check int) "dropped to wraparound" 2 (Obs.Tracebuf.dropped tb);
  Alcotest.(check (list int)) "oldest two overwritten, rest in order" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.Obs.Tracebuf.ev_index) (Obs.Tracebuf.events tb))

let test_trace_opid_correlation () =
  let tb = Obs.Tracebuf.create () in
  Obs.Tracebuf.record tb ~time:1.0 ~node:"p" ~stage:"flush" ~term:2 ~index:7 ();
  Obs.Tracebuf.record tb ~time:2.0 ~node:"p" ~stage:"consensus-commit" ~term:2 ~index:7 ();
  Obs.Tracebuf.record tb ~time:2.5 ~node:"r" ~stage:"consensus-commit" ~term:2 ~index:8 ();
  Obs.Tracebuf.record tb ~time:3.0 ~node:"r" ~stage:"engine-commit" ~term:2 ~index:7 ();
  let evs = Obs.Tracebuf.for_opid tb ~term:2 ~index:7 in
  Alcotest.(check (list string)) "one opid's stages, in record order"
    [ "flush"; "consensus-commit"; "engine-commit" ]
    (List.map (fun e -> e.Obs.Tracebuf.ev_stage) evs);
  Alcotest.(check int) "stage filter spans opids" 2
    (List.length (Obs.Tracebuf.for_stage tb ~stage:"consensus-commit"));
  Alcotest.(check bool) "rendered event names the opid" true
    (Helpers.contains (Obs.Tracebuf.render tb) "opid=2.7")

(* ----- end-to-end: the commit path populates metrics and traces ----- *)

let test_commit_path_instrumented () =
  let cluster =
    Helpers.bootstrapped ~members:(Myraft.Cluster.single_region_members ()) ()
  in
  let n = Helpers.write_n cluster 20 in
  Alcotest.(check int) "all writes committed" 20 n;
  (* let the replica's applier drain *)
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let snap = Myraft.Cluster.metrics_snapshot cluster in
  List.iter
    (fun name ->
      if Obs.Metrics.counter_of snap name = 0 then
        Alcotest.failf "expected nonzero %s after a committed workload" name)
    [
      "server.writes_committed";
      "pipeline.txns_committed";
      "raft.ae_sent";
      "raft.commit_advances";
      "binlog.appends";
      "binlog.fsyncs";
      "net.messages";
    ];
  List.iter
    (fun name ->
      match Obs.Metrics.histogram_of snap name with
      | None -> Alcotest.failf "stage histogram %s missing" name
      | Some h ->
        if Stats.Histogram.count h = 0 then Alcotest.failf "stage histogram %s empty" name)
    [ "pipeline.flush_us"; "pipeline.consensus_wait_us"; "pipeline.engine_commit_us" ];
  (* per-node registries are reachable individually *)
  (match Myraft.Cluster.metrics_of cluster "mysql1" with
  | None -> Alcotest.fail "mysql1 has no registry"
  | Some m ->
    Alcotest.(check bool) "primary counted its own commits" true
      (Obs.Metrics.counter_of (Obs.Metrics.snapshot m) "server.writes_committed" > 0));
  (* OpId correlation: a transaction that engine-committed on the replica
     must show a flush + engine-commit on the primary and consensus
     commits from a data quorum, all under the same (term, index). *)
  let tb = Myraft.Cluster.tracebuf cluster in
  let on_node node = List.filter (fun e -> e.Obs.Tracebuf.ev_node = node) in
  match on_node "mysql2" (Obs.Tracebuf.for_stage tb ~stage:"engine-commit") with
  | [] -> Alcotest.fail "replica recorded no engine-commit trace events"
  | e :: _ -> (
    let opid =
      Obs.Tracebuf.for_opid tb ~term:e.Obs.Tracebuf.ev_term ~index:e.Obs.Tracebuf.ev_index
    in
    let stages_on node =
      List.map (fun ev -> ev.Obs.Tracebuf.ev_stage) (on_node node opid)
    in
    Alcotest.(check bool) "primary flushed the same opid" true
      (List.mem "flush" (stages_on "mysql1"));
    Alcotest.(check bool) "primary engine-committed the same opid" true
      (List.mem "engine-commit" (stages_on "mysql1"));
    let committers =
      List.sort_uniq compare
        (List.filter_map
           (fun ev ->
             if ev.Obs.Tracebuf.ev_stage = "consensus-commit" then
               Some ev.Obs.Tracebuf.ev_node
             else None)
           opid)
    in
    match committers with
    | _ :: _ :: _ -> ()
    | _ -> Alcotest.failf "consensus-commit seen on %d node(s), wanted >= 2"
             (List.length committers))

let suites =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counters, gauges, histograms" `Quick
          test_counters_gauges_histograms;
        Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
        Alcotest.test_case "render + json" `Quick test_render_and_json;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
        Alcotest.test_case "opid correlation" `Quick test_trace_opid_correlation;
      ] );
    ( "obs.e2e",
      [
        Alcotest.test_case "commit path populates metrics and traces" `Quick
          test_commit_path_instrumented;
      ] );
  ]
