(* Coverage for the smaller modules: Trace, the generic Probe,
   Service_discovery, Latency models, Raft message sizing/rendering, and
   the Table-1 classifier. *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s

(* ----- trace ----- *)

let test_trace_records_with_virtual_time () =
  let e = Sim.Engine.create () in
  let trace = Sim.Trace.create e in
  Sim.Trace.record trace ~tag:"a" "first %d" 1;
  ignore
    (Sim.Engine.schedule e ~delay:(5.0 *. ms) (fun () ->
         Sim.Trace.record trace ~tag:"b" "second"));
  Sim.Engine.run_for e (10.0 *. ms);
  match Sim.Trace.entries trace with
  | [ e1; e2 ] ->
    Alcotest.(check string) "message formatted" "first 1" e1.Sim.Trace.message;
    Alcotest.(check (float 0.01)) "timestamped" (5.0 *. ms) e2.Sim.Trace.time;
    Alcotest.(check int) "tag filter" 1 (List.length (Sim.Trace.entries_with_tag trace "b"))
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let test_trace_disabled_records_nothing () =
  let e = Sim.Engine.create () in
  let trace = Sim.Trace.create e in
  Sim.Trace.set_enabled trace false;
  Sim.Trace.record trace ~tag:"x" "dropped";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Sim.Trace.entries trace))

(* ----- generic probe ----- *)

let test_probe_counts_and_downtime () =
  let e = Sim.Engine.create () in
  (* succeed until t=100ms, fail until 300ms, then succeed again *)
  let issue ~on_outcome =
    let now = Sim.Engine.now e in
    on_outcome (now < 100.0 *. ms || now > 300.0 *. ms)
  in
  let probe = Sim.Probe.start ~interval:(10.0 *. ms) e ~issue in
  Sim.Engine.run_for e (500.0 *. ms);
  Sim.Probe.stop probe;
  Alcotest.(check bool) "successes" true (Sim.Probe.successes probe > 20);
  Alcotest.(check bool) "failures" true (Sim.Probe.failures probe >= 19);
  let downtime = Sim.Probe.max_downtime probe ~start_time:0.0 ~end_time:(500.0 *. ms) in
  if downtime < 180.0 *. ms || downtime > 240.0 *. ms then
    Alcotest.failf "downtime %.1fms outside the outage window" (downtime /. ms)

let test_probe_timeout_counts_failure () =
  let e = Sim.Engine.create () in
  let issue ~on_outcome = ignore on_outcome (* never answers *) in
  let probe = Sim.Probe.start ~interval:(10.0 *. ms) ~timeout:(20.0 *. ms) e ~issue in
  Sim.Engine.run_for e (200.0 *. ms);
  Sim.Probe.stop probe;
  Alcotest.(check int) "no successes" 0 (Sim.Probe.successes probe);
  Alcotest.(check bool) "timeouts recorded" true (Sim.Probe.failures probe > 10)

(* Regression: stopping with a probe still in flight must not let the
   late answer or the pending timeout record an outcome — a stopped
   probe's counters are final. *)
let test_probe_stop_mid_probe () =
  let e = Sim.Engine.create () in
  let pending = ref [] in
  let issue ~on_outcome = pending := on_outcome :: !pending in
  let probe = Sim.Probe.start ~interval:(10.0 *. ms) ~timeout:(20.0 *. ms) e ~issue in
  Sim.Engine.run_for e (12.0 *. ms);
  Alcotest.(check bool) "a probe is in flight" true (!pending <> []);
  Alcotest.(check int) "nothing settled yet" 0
    (Sim.Probe.successes probe + Sim.Probe.failures probe);
  Sim.Probe.stop probe;
  (* late answers arrive after stop... *)
  List.iter (fun answer -> answer false) !pending;
  (* ...and virtual time runs well past every pending timeout *)
  Sim.Engine.run_for e (200.0 *. ms);
  Alcotest.(check int) "no post-stop successes" 0 (Sim.Probe.successes probe);
  Alcotest.(check int) "no post-stop failures" 0 (Sim.Probe.failures probe)

(* ----- service discovery ----- *)

let test_discovery_publish_delay () =
  let e = Sim.Engine.create () in
  let d = Myraft.Service_discovery.create e in
  Myraft.Service_discovery.publish_primary d ~replicaset:"rs" ~primary:"m1"
    ~delay:(30.0 *. ms);
  Alcotest.(check (option string)) "not yet visible" None
    (Myraft.Service_discovery.primary_of d ~replicaset:"rs");
  Sim.Engine.run_for e (50.0 *. ms);
  Alcotest.(check (option string)) "visible after delay" (Some "m1")
    (Myraft.Service_discovery.primary_of d ~replicaset:"rs");
  (* later publication supersedes *)
  Myraft.Service_discovery.publish_primary d ~replicaset:"rs" ~primary:"m2"
    ~delay:(10.0 *. ms);
  Sim.Engine.run_for e (20.0 *. ms);
  Alcotest.(check (option string)) "superseded" (Some "m2")
    (Myraft.Service_discovery.primary_of d ~replicaset:"rs");
  Alcotest.(check int) "history kept" 2
    (List.length (Myraft.Service_discovery.publications d))

(* ----- latency models ----- *)

let test_latency_pair_base_stable () =
  let a = Sim.Latency.pair_base ~lo:10.0 ~hi:20.0 "r1" "r2" in
  let b = Sim.Latency.pair_base ~lo:10.0 ~hi:20.0 "r2" "r1" in
  Alcotest.(check (float 0.001)) "symmetric" a b;
  Alcotest.(check bool) "within bounds" true (a >= 10.0 && a <= 20.0)

let test_latency_override_scopes_to_pair () =
  let rng = Sim.Rng.of_int 1 in
  let model =
    Sim.Latency.override Sim.Latency.default ~region_a:"clients" ~region_b:"r1" ~lo:100.0
      ~hi:101.0
  in
  let v = Sim.Latency.one_way model ~src_region:"clients" ~dst_region:"r1" rng in
  Alcotest.(check bool) "override applies" true (v >= 100.0 && v <= 101.0);
  let w = Sim.Latency.one_way model ~src_region:"r1" ~dst_region:"r2" rng in
  Alcotest.(check bool) "other pairs untouched" true (w > 1_000.0)

(* ----- raft messages ----- *)

let sample_entry size =
  Binlog.Entry.make
    ~opid:(Binlog.Opid.make ~term:1 ~index:1)
    (Binlog.Entry.Transaction
       {
         gtid = Binlog.Gtid.make ~source:"s" ~gno:1;
         events =
           [
             Binlog.Event.make
               (Binlog.Event.Write_rows
                  { table = "t"; ops = [ Binlog.Event.Insert { key = "k"; value = String.make size 'x' } ] });
           ];
       })

let ae payload =
  Raft.Message.Append_entries
    {
      term = 3;
      leader_id = "n1";
      leader_region = "r1";
      prev_opid = Binlog.Opid.zero;
      payload;
      commit_index = 7;
      seq = 9;
      reply_route = [];
      leader_time = 0.0;
      leader_last_index = 9;
      cfg_id = Raft.Types.cfg_id_zero;
      cfg = None;
    }

let test_message_sizes_scale_with_payload () =
  let small = Raft.Message.size (ae (Raft.Message.Entries [| sample_entry 10 |])) in
  let big = Raft.Message.size (ae (Raft.Message.Entries [| sample_entry 1000 |])) in
  let refs =
    Raft.Message.size (ae (Raft.Message.Refs { first_index = 1; last_index = 64; last_term = 3 }))
  in
  Alcotest.(check bool) "payload dominates" true (big > small + 900);
  Alcotest.(check bool) "PROXY_OP is metadata-sized" true (refs < 100);
  Alcotest.(check bool) "heartbeat smaller than data" true
    (Raft.Message.size (ae (Raft.Message.Entries [||])) < small)

let test_message_describe_mentions_key_facts () =
  let text = Raft.Message.describe (ae (Raft.Message.Refs { first_index = 5; last_index = 9; last_term = 3 })) in
  Alcotest.(check bool) "PROXY_OP named" true (Helpers.contains text "PROXY_OP");
  let hb = Raft.Message.describe (ae (Raft.Message.Entries [||])) in
  Alcotest.(check bool) "heartbeat named" true (Helpers.contains hb "heartbeat");
  let proxied =
    Raft.Message.describe (Raft.Message.Proxied { next_hops = [ "x"; "y" ]; inner = ae (Raft.Message.Entries [||]) })
  in
  Alcotest.(check bool) "route shown" true (Helpers.contains proxied "x,y")

(* ----- Table-1 classifier ----- *)

let member ~voter ~kind =
  { Raft.Types.id = "m"; region = "r1"; voter; kind }

let test_roles_classify () =
  Alcotest.(check string) "leader" "Leader"
    (Myraft.Roles.classify (member ~voter:true ~kind:Raft.Types.Mysql_server) ~is_leader:true);
  Alcotest.(check string) "follower" "Follower"
    (Myraft.Roles.classify (member ~voter:true ~kind:Raft.Types.Mysql_server) ~is_leader:false);
  Alcotest.(check string) "learner" "Learner"
    (Myraft.Roles.classify (member ~voter:false ~kind:Raft.Types.Mysql_server) ~is_leader:false);
  Alcotest.(check string) "witness" "Witness"
    (Myraft.Roles.classify (member ~voter:true ~kind:Raft.Types.Logtailer) ~is_leader:false)

(* ----- CDC attachment point ----- *)

let test_cdc_from_index_skips_history () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  ignore (Helpers.write_n cluster 10);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  (* attach after the first 5 transactions (bootstrap noop is index 1) *)
  let cdc = Downstream.Cdc.start ~source:"mysql1" ~from_index:7 cluster in
  ignore (Helpers.write_n ~prefix:"late" cluster 5);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  Downstream.Cdc.stop cdc;
  Alcotest.(check int) "only the suffix streamed" 10 (Downstream.Cdc.record_count cdc);
  Alcotest.(check bool) "early txns absent" false
    (Binlog.Gtid_set.contains (Downstream.Cdc.seen_gtids cdc)
       (Binlog.Gtid.make ~source:"mysql1" ~gno:3))

let suites =
  [
    ( "sim.trace",
      [
        Alcotest.test_case "records with virtual time" `Quick
          test_trace_records_with_virtual_time;
        Alcotest.test_case "disabled records nothing" `Quick test_trace_disabled_records_nothing;
      ] );
    ( "sim.probe",
      [
        Alcotest.test_case "counts and downtime window" `Quick test_probe_counts_and_downtime;
        Alcotest.test_case "timeout counts failure" `Quick test_probe_timeout_counts_failure;
        Alcotest.test_case "stop mid-probe records nothing" `Quick test_probe_stop_mid_probe;
      ] );
    ( "myraft.discovery",
      [ Alcotest.test_case "publish delay + supersede" `Quick test_discovery_publish_delay ] );
    ( "sim.latency",
      [
        Alcotest.test_case "pair base stable" `Quick test_latency_pair_base_stable;
        Alcotest.test_case "override scopes to pair" `Quick test_latency_override_scopes_to_pair;
      ] );
    ( "raft.message",
      [
        Alcotest.test_case "sizes scale with payload" `Quick test_message_sizes_scale_with_payload;
        Alcotest.test_case "describe mentions key facts" `Quick
          test_message_describe_mentions_key_facts;
      ] );
    ("myraft.roles_classify", [ Alcotest.test_case "table-1 mapping" `Quick test_roles_classify ]);
    ( "downstream.cdc_attach",
      [ Alcotest.test_case "from_index skips history" `Quick test_cdc_from_index_skips_history ] );
  ]
