(* Property-based suites over the core data structures:

   - Log_store: random append/rotate/truncate/purge sequences preserve
     the store invariants (contiguity, tail opid, GTID-set consistency,
     file-range partitioning).
   - Quorum: FlexiRaft intersection — any satisfied election quorum
     shares a voter with any satisfiable data quorum of the last
     leader's region. *)

(* ----- log store ----- *)

type op = Append | Rotate | Truncate of int | Purge

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (12, return Append);
        (2, return Rotate);
        (2, map (fun n -> Truncate n) (1 -- 10));
        (1, return Purge);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Append -> "A"
             | Rotate -> "R"
             | Truncate n -> Printf.sprintf "T%d" n
             | Purge -> "P")
           ops))
    QCheck.Gen.(list_size (5 -- 60) op_gen)

let txn_entry ~term ~index =
  Binlog.Entry.make
    ~opid:(Binlog.Opid.make ~term ~index)
    (Binlog.Entry.Transaction
       {
         gtid = Binlog.Gtid.make ~source:"src" ~gno:index;
         events =
           [
             Binlog.Event.make
               (Binlog.Event.Write_rows
                  { table = "t"; ops = [ Binlog.Event.Insert { key = "k"; value = "v" } ] });
           ];
       })

(* Replay ops against the store and a naive model (list of live
   entries), then compare observable state. *)
let run_ops ops =
  let log = Binlog.Log_store.create () in
  let term = ref 1 in
  List.iter
    (fun op ->
      match op with
      | Append ->
        let index = Binlog.Log_store.last_index log + 1 in
        Binlog.Log_store.append log (txn_entry ~term:!term ~index)
      | Rotate ->
        Binlog.Log_store.rotate log;
        incr term (* new terms land in new files now and then *)
      | Truncate back ->
        let last = Binlog.Log_store.last_index log in
        let from_index = max (Binlog.Log_store.purged_below log) (last - back + 1) in
        if from_index >= 1 && from_index <= last then
          ignore (Binlog.Log_store.truncate_from log ~from_index)
      | Purge -> (
        (* purge everything except the final file, like the janitor *)
        match List.rev (Binlog.Log_store.file_names log) with
        | keep :: _ :: _ -> Binlog.Log_store.purge_to log ~file:keep
        | _ -> ()))
    ops;
  log

let prop_log_store_invariants =
  QCheck.Test.make ~name:"log store invariants under random ops" ~count:500 ops_arb
    (fun ops ->
      let log = run_ops ops in
      let last = Binlog.Log_store.last_index log in
      (* tail opid matches the tail entry when it exists *)
      (match Binlog.Log_store.entry_at log last with
      | Some e ->
        Binlog.Opid.equal (Binlog.Entry.opid e) (Binlog.Log_store.last_opid log)
      | None -> last = 0 || Binlog.Log_store.purged_below log > last)
      && (* indexes are self-consistent and contiguous where present *)
      List.for_all
        (fun i ->
          match Binlog.Log_store.entry_at log i with
          | Some e -> Binlog.Entry.index e = i
          | None -> i < Binlog.Log_store.purged_below log)
        (List.init last (fun i -> i + 1))
      && (* the GTID set matches exactly the live transaction entries *)
      (let live_gnos =
         List.filter_map
           (fun e -> Option.map Binlog.Gtid.gno (Binlog.Entry.gtid e))
           (Binlog.Log_store.all_entries log)
       in
       List.for_all
         (fun gno ->
           Binlog.Gtid_set.contains (Binlog.Log_store.gtid_set log)
             (Binlog.Gtid.make ~source:"src" ~gno))
         live_gnos)
      && (* file ranges partition the live index space in order *)
      (let ranges =
         List.filter (fun (_, first, _, _) -> first > 0) (Binlog.Log_store.file_ranges log)
       in
       let rec contiguous = function
         | (_, _, last_a, _) :: ((_, first_b, _, _) :: _ as rest) ->
           first_b = last_a + 1 && contiguous rest
         | _ -> true
       in
       contiguous ranges))

let prop_log_store_append_after_anything =
  QCheck.Test.make ~name:"append always works at tail+1" ~count:500 ops_arb (fun ops ->
      let log = run_ops ops in
      let index = Binlog.Log_store.last_index log + 1 in
      Binlog.Log_store.append log (txn_entry ~term:1000 ~index);
      Binlog.Opid.index (Binlog.Log_store.last_opid log) = index)

let prop_log_store_term_at_boundary =
  QCheck.Test.make ~name:"term_at answers at the purge boundary" ~count:500 ops_arb
    (fun ops ->
      let log = run_ops ops in
      let boundary = Binlog.Log_store.purge_boundary_opid log in
      Binlog.Opid.equal boundary Binlog.Opid.zero
      || Binlog.Log_store.term_at log (Binlog.Opid.index boundary)
         = Some (Binlog.Opid.term boundary))

(* ----- quorum intersection ----- *)

let config_gen =
  QCheck.Gen.(
    let* region_count = 2 -- 4 in
    let* sizes = list_repeat region_count (1 -- 4) in
    let members =
      List.concat
        (List.mapi
           (fun r size ->
             List.init size (fun i ->
                 {
                   Raft.Types.id = Printf.sprintf "n%d_%d" r i;
                   region = Printf.sprintf "r%d" r;
                   voter = true;
                   kind = Raft.Types.Mysql_server;
                 }))
           sizes)
    in
    return { Raft.Types.members })

let subset_gen cfg =
  QCheck.Gen.(
    let ids = Raft.Types.voter_ids cfg in
    let* bits = list_repeat (List.length ids) bool in
    return (List.filter_map (fun (id, b) -> if b then Some id else None)
              (List.combine ids bits)))

let intersection_case_gen =
  QCheck.Gen.(
    let* cfg = config_gen in
    let regions = Raft.Types.regions_with_voters cfg in
    let* leader_region = oneofl regions in
    let* candidate_region = oneofl regions in
    let* votes = subset_gen cfg in
    let* acks = subset_gen cfg in
    return (cfg, leader_region, candidate_region, votes, acks))

let intersection_arb =
  QCheck.make
    ~print:(fun (cfg, lr, cr, votes, acks) ->
      Printf.sprintf "cfg=[%s] leader_region=%s cand_region=%s votes=[%s] acks=[%s]"
        (Raft.Types.describe_config cfg) lr cr (String.concat "," votes)
        (String.concat "," acks))
    intersection_case_gen

(* The safety core of FlexiRaft: if a data quorum committed in the last
   leader's region, any successful election quorum (with that leader as
   the authoritative constraint) must share at least one voter with it. *)
let prop_flexiraft_quorum_intersection =
  QCheck.Test.make ~name:"flexiraft election/data quorums intersect" ~count:1000
    intersection_arb (fun (cfg, leader_region, candidate_region, votes, acks) ->
      let mode = Raft.Quorum.Single_region_dynamic in
      let election_ok =
        Raft.Quorum.election_quorum_satisfied mode cfg ~candidate_region
          ~last_leader:(Some (5, leader_region)) ~vote_constraint:None ~votes
      in
      let data_ok = Raft.Quorum.data_quorum_satisfied mode cfg ~leader_region ~acks in
      (not (election_ok && data_ok))
      || List.exists (fun v -> List.mem v acks) votes)

(* Majority mode: two satisfied quorums of any kind always intersect. *)
let prop_majority_quorums_intersect =
  QCheck.Test.make ~name:"majority quorums intersect" ~count:1000 intersection_arb
    (fun (cfg, leader_region, candidate_region, votes, acks) ->
      let mode = Raft.Quorum.Majority in
      let election_ok =
        Raft.Quorum.election_quorum_satisfied mode cfg ~candidate_region
          ~last_leader:(Some (5, leader_region)) ~vote_constraint:None ~votes
      in
      let data_ok = Raft.Quorum.data_quorum_satisfied mode cfg ~leader_region ~acks in
      (not (election_ok && data_ok)) || List.exists (fun v -> List.mem v acks) votes)

(* Pessimistic bootstrap: with no known leader, a satisfied election
   quorum intersects EVERY region's possible data quorum. *)
let prop_pessimistic_election_intersects_all_regions =
  QCheck.Test.make ~name:"pessimistic election intersects all regions" ~count:1000
    intersection_arb (fun (cfg, leader_region, candidate_region, votes, acks) ->
      let mode = Raft.Quorum.Single_region_dynamic in
      let election_ok =
        Raft.Quorum.election_quorum_satisfied mode cfg ~candidate_region
          ~last_leader:None ~vote_constraint:None ~votes
      in
      let data_ok = Raft.Quorum.data_quorum_satisfied mode cfg ~leader_region ~acks in
      (not (election_ok && data_ok)) || List.exists (fun v -> List.mem v acks) votes)

(* ----- log cache: sliced reads ----- *)

(* The ring-backed [read_slice] must return byte-for-byte what the
   pre-slice copying implementation returned: walk from [from_index]
   preferring the cache, fall back to the log, stop at the first missing
   index, stop before the entry that would blow the byte budget — except
   that the first entry always ships. *)

let cache_case_gen =
  QCheck.Gen.(
    let* n = 1 -- 60 in
    let* sizes = list_repeat n (0 -- 800) in
    let* cache_budget = 200 -- 20_000 in
    let* log_hole = 0 -- 3 in
    let* from_index = 1 -- n in
    let* max_count = 0 -- 20 in
    let* byte_budget = 50 -- 5_000 in
    return (sizes, cache_budget, log_hole, from_index, max_count, byte_budget))

let cache_arb =
  QCheck.make
    ~print:(fun (sizes, cb, hole, fi, mc, bb) ->
      Printf.sprintf "n=%d cache=%dB hole=%d from=%d count=%d budget=%dB"
        (List.length sizes) cb hole fi mc bb)
    cache_case_gen

let cache_entry ~index ~size =
  Binlog.Entry.make
    ~opid:(Binlog.Opid.make ~term:1 ~index)
    (Binlog.Entry.Transaction
       {
         gtid = Binlog.Gtid.make ~source:"src" ~gno:index;
         events =
           [
             Binlog.Event.make
               (Binlog.Event.Write_rows
                  {
                    table = "t";
                    ops = [ Binlog.Event.Insert { key = "k"; value = String.make size 'x' } ];
                  });
           ];
       })

(* Reference copying read, straight from the pre-slice implementation. *)
let reference_read cache entries ~read_log ~from_index ~max_count ~max_bytes =
  let rec collect idx n bytes acc =
    if n = 0 then List.rev acc
    else
      let e =
        if Raft.Log_cache.contains cache ~index:idx then Some entries.(idx - 1)
        else read_log idx
      in
      match e with
      | None -> List.rev acc
      | Some e ->
        let sz = Binlog.Entry.size e in
        if acc <> [] && bytes + sz > max_bytes then List.rev acc
        else collect (idx + 1) (n - 1) (bytes + sz) (e :: acc)
  in
  collect from_index max_count 0 []

let prop_cache_slice_equals_copying_read =
  QCheck.Test.make ~name:"sliced reads equal copying reads" ~count:500 cache_arb
    (fun (sizes, cache_budget, log_hole, from_index, max_count, byte_budget) ->
      let n = List.length sizes in
      let entries =
        Array.of_list (List.mapi (fun i size -> cache_entry ~index:(i + 1) ~size) sizes)
      in
      let cache = Raft.Log_cache.create ~max_bytes:cache_budget () in
      Array.iter (Raft.Log_cache.put cache) entries;
      (* the log is missing the last [log_hole] entries, so a cold read
         past the hole stops early *)
      let read_log idx =
        if idx >= 1 && idx <= n - log_hole then Some entries.(idx - 1) else None
      in
      let expected =
        reference_read cache entries ~read_log ~from_index ~max_count
          ~max_bytes:byte_budget
      in
      let got =
        Raft.Log_cache.read_slice cache ~max_bytes:byte_budget ~from_index ~max_count
          ~read_log ()
      in
      Array.length got = List.length expected
      && List.for_all2
           (fun e g ->
             Binlog.Entry.opid e = Binlog.Entry.opid g
             && String.equal (Binlog.Entry.payload_bytes e) (Binlog.Entry.payload_bytes g))
           expected (Array.to_list got))

(* A slice handed to the transport must survive the cache evicting (or
   truncating) the range under it: the slice holds the entries, not ring
   slots. *)
let test_slice_survives_eviction () =
  let cache = Raft.Log_cache.create ~max_bytes:4_000 () in
  let no_log _ = None in
  for i = 1 to 10 do
    Raft.Log_cache.put cache (cache_entry ~index:i ~size:100)
  done;
  let slice =
    Raft.Log_cache.read_slice cache ~from_index:1 ~max_count:10 ~read_log:no_log ()
  in
  Alcotest.(check int) "sliced all ten" 10 (Array.length slice);
  (* stuff the cache until indexes 1..10 are gone *)
  let i = ref 11 in
  while Raft.Log_cache.contains cache ~index:10 do
    Raft.Log_cache.put cache (cache_entry ~index:!i ~size:600);
    incr i
  done;
  Alcotest.(check bool) "evicted under the slice" false
    (Raft.Log_cache.contains cache ~index:1);
  Array.iteri
    (fun k e ->
      Alcotest.(check int) "index intact" (k + 1) (Binlog.Entry.index e);
      Alcotest.(check bool) "entry still verifies" true (Binlog.Entry.verify e))
    slice

(* ----- windowed replication equivalence ----- *)

(* Pipelining is a transport optimisation: under drop/duplicate/reorder
   link faults, a window of 8 must deliver exactly the same committed
   transaction sequence as stop-and-wait (window 1), and every replica's
   log must match the leader's once the faults heal. *)

let window_case_gen =
  QCheck.Gen.(
    let* seed = 1 -- 10_000 in
    let* drop = 0 -- 20 in
    let* dup = 0 -- 20 in
    let* reorder = 0 -- 30 in
    let* txns = 10 -- 30 in
    return (seed, float_of_int drop /. 100.0, float_of_int dup /. 100.0,
            float_of_int reorder /. 100.0, txns))

let window_arb =
  QCheck.make
    ~print:(fun (seed, drop, dup, reorder, txns) ->
      Printf.sprintf "seed=%d drop=%.2f dup=%.2f reorder=%.2f txns=%d" seed drop dup
        reorder txns)
    window_case_gen

(* One run: returns (committed gtid gnos on the leader, per-node log opids). *)
let run_windowed ~window ~seed ~drop ~dup ~reorder ~txns =
  let params =
    { Test_raft.majority_params with
      Raft.Node.max_inflight_aes = window;
      (* keep n1 leader for the whole run so both runs accept the same
         writes: the property compares transports, not elections *)
      missed_heartbeats = 1_000_000
    }
  in
  let h = Test_raft.make_harness ~seed ~params (Test_raft.three_nodes ()) in
  Test_raft.elect h "n1";
  let spec =
    { Sim.Network.no_faults with
      drop;
      duplicate = dup;
      reorder;
      reorder_delay = 5.0 *. Sim.Engine.ms
    }
  in
  List.iter (fun id -> Sim.Network.set_node_faults h.Test_raft.net id spec)
    [ "n1"; "n2"; "n3" ];
  for i = 1 to txns do
    ignore
      (Raft.Node.client_append
         (Test_raft.raft (Test_raft.get h "n1"))
         (txn_entry ~term:1 ~index:i |> Binlog.Entry.payload));
    Sim.Engine.run_for h.Test_raft.engine (2.0 *. Sim.Engine.ms)
  done;
  Sim.Engine.run_for h.Test_raft.engine Sim.Engine.s;
  Sim.Network.heal_all h.Test_raft.net;
  let n1 = Test_raft.get h "n1" in
  let target = Binlog.Log_store.last_index n1.Test_raft.store in
  let converged =
    Test_raft.run_until h ~timeout:(60.0 *. Sim.Engine.s) (fun () ->
        List.for_all
          (fun id ->
            let n = Test_raft.get h id in
            Raft.Node.commit_index (Test_raft.raft n) = target
            && Binlog.Log_store.last_index n.Test_raft.store = target)
          [ "n1"; "n2"; "n3" ])
  in
  let committed =
    List.filter_map
      (fun e ->
        if Binlog.Entry.index e <= Raft.Node.commit_index (Test_raft.raft n1) then
          Option.map Binlog.Gtid.gno (Binlog.Entry.gtid e)
        else None)
      (Binlog.Log_store.all_entries n1.Test_raft.store)
  in
  let logs =
    List.map
      (fun id ->
        List.map Binlog.Entry.opid
          (Binlog.Log_store.all_entries (Test_raft.get h id).Test_raft.store))
      [ "n1"; "n2"; "n3" ]
  in
  (converged, committed, logs)

let prop_window_equivalence =
  QCheck.Test.make ~name:"window=8 commits exactly what window=1 commits" ~count:15
    window_arb (fun (seed, drop, dup, reorder, txns) ->
      let c1, committed1, logs1 = run_windowed ~window:1 ~seed ~drop ~dup ~reorder ~txns in
      let c8, committed8, logs8 = run_windowed ~window:8 ~seed ~drop ~dup ~reorder ~txns in
      (* both transports converge once healed *)
      c1 && c8
      (* every replica's log matches its leader's (log matching) *)
      && List.for_all (fun l -> l = List.hd logs1) logs1
      && List.for_all (fun l -> l = List.hd logs8) logs8
      (* and the committed transaction sequence is identical *)
      && committed1 = List.init txns (fun i -> i + 1)
      && committed8 = committed1)

let suites =
  [
    ( "properties.log_store",
      [
        QCheck_alcotest.to_alcotest prop_log_store_invariants;
        QCheck_alcotest.to_alcotest prop_log_store_append_after_anything;
        QCheck_alcotest.to_alcotest prop_log_store_term_at_boundary;
      ] );
    ( "properties.quorum",
      [
        QCheck_alcotest.to_alcotest prop_flexiraft_quorum_intersection;
        QCheck_alcotest.to_alcotest prop_majority_quorums_intersect;
        QCheck_alcotest.to_alcotest prop_pessimistic_election_intersects_all_regions;
      ] );
    ( "properties.log_cache",
      [
        QCheck_alcotest.to_alcotest prop_cache_slice_equals_copying_read;
        Alcotest.test_case "slice survives eviction" `Quick test_slice_survives_eviction;
      ] );
    ( "properties.window",
      [ QCheck_alcotest.to_alcotest prop_window_equivalence ] );
  ]
