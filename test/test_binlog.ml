(* Binlog substrate tests: OpIds, GTID sets (with qcheck properties),
   entries/checksums, and the log store (append/rotate/truncate/purge/
   rewire). *)

let gtid source gno = Binlog.Gtid.make ~source ~gno

let sample_txn_payload ?(source = "srv1") ?(gno = 1) () =
  let g = gtid source gno in
  Binlog.Entry.Transaction
    {
      gtid = g;
      events =
        [
          Binlog.Event.make (Binlog.Event.Gtid_event g);
          Binlog.Event.make
            (Binlog.Event.Write_rows
               { table = "t"; ops = [ Binlog.Event.Insert { key = "k"; value = "v" } ] });
          Binlog.Event.make (Binlog.Event.Xid { xid = 1L });
        ];
    }

let entry ~term ~index ?source ?gno () =
  Binlog.Entry.make
    ~opid:(Binlog.Opid.make ~term ~index)
    (sample_txn_payload ?source ~gno:(Option.value gno ~default:index) ())

(* ----- Opid ----- *)

let test_opid_ordering () =
  let a = Binlog.Opid.make ~term:2 ~index:5 in
  let b = Binlog.Opid.make ~term:3 ~index:1 in
  let c = Binlog.Opid.make ~term:3 ~index:2 in
  Alcotest.(check bool) "higher term wins" true (Binlog.Opid.compare b a > 0);
  Alcotest.(check bool) "same term by index" true (Binlog.Opid.compare c b > 0);
  Alcotest.(check bool) "up-to-date reflexive" true
    (Binlog.Opid.at_least_as_up_to_date_as a a)

(* ----- Gtid_set ----- *)

let test_gtid_set_add_contains () =
  let s = Binlog.Gtid_set.add Binlog.Gtid_set.empty (gtid "a" 5) in
  Alcotest.(check bool) "contains added" true (Binlog.Gtid_set.contains s (gtid "a" 5));
  Alcotest.(check bool) "not other gno" false (Binlog.Gtid_set.contains s (gtid "a" 4));
  Alcotest.(check bool) "not other source" false (Binlog.Gtid_set.contains s (gtid "b" 5))

let test_gtid_set_interval_merge () =
  let s =
    List.fold_left Binlog.Gtid_set.add Binlog.Gtid_set.empty
      [ gtid "a" 1; gtid "a" 3; gtid "a" 2 ]
  in
  Alcotest.(check string) "merged to one interval" "a:1-3" (Binlog.Gtid_set.to_string s)

let test_gtid_set_remove_splits () =
  let s = Binlog.Gtid_set.add_interval Binlog.Gtid_set.empty ~source:"a" ~lo:1 ~hi:5 in
  let s = Binlog.Gtid_set.remove s (gtid "a" 3) in
  Alcotest.(check string) "split" "a:1-2:4-5" (Binlog.Gtid_set.to_string s);
  Alcotest.(check int) "cardinal" 4 (Binlog.Gtid_set.cardinal s)

let test_gtid_set_union_subset () =
  let a = Binlog.Gtid_set.add_interval Binlog.Gtid_set.empty ~source:"x" ~lo:1 ~hi:3 in
  let b = Binlog.Gtid_set.add_interval Binlog.Gtid_set.empty ~source:"x" ~lo:3 ~hi:6 in
  let u = Binlog.Gtid_set.union a b in
  Alcotest.(check string) "union merged" "x:1-6" (Binlog.Gtid_set.to_string u);
  Alcotest.(check bool) "a subset u" true (Binlog.Gtid_set.subset a u);
  Alcotest.(check bool) "u not subset a" false (Binlog.Gtid_set.subset u a)

let test_gtid_set_max_gno () =
  let s = Binlog.Gtid_set.add_interval Binlog.Gtid_set.empty ~source:"a" ~lo:2 ~hi:9 in
  Alcotest.(check int) "max gno" 9 (Binlog.Gtid_set.max_gno s ~source:"a");
  Alcotest.(check int) "missing source" 0 (Binlog.Gtid_set.max_gno s ~source:"b")

let gtid_list_gen =
  QCheck.(list_of_size Gen.(1 -- 60) (pair (oneofl [ "s1"; "s2"; "s3" ]) (1 -- 30)))

let prop_gtid_set_contains_all_added =
  QCheck.Test.make ~name:"set contains everything added" ~count:300 gtid_list_gen
    (fun pairs ->
      let set =
        List.fold_left
          (fun acc (src, gno) -> Binlog.Gtid_set.add acc (gtid src gno))
          Binlog.Gtid_set.empty pairs
      in
      List.for_all (fun (src, gno) -> Binlog.Gtid_set.contains set (gtid src gno)) pairs)

let prop_gtid_set_cardinal_matches =
  QCheck.Test.make ~name:"cardinal = distinct count" ~count:300 gtid_list_gen
    (fun pairs ->
      let set =
        List.fold_left
          (fun acc (src, gno) -> Binlog.Gtid_set.add acc (gtid src gno))
          Binlog.Gtid_set.empty pairs
      in
      Binlog.Gtid_set.cardinal set = List.length (List.sort_uniq compare pairs))

let prop_gtid_set_remove_then_absent =
  QCheck.Test.make ~name:"remove makes absent, keeps others" ~count:300 gtid_list_gen
    (fun pairs ->
      QCheck.assume (pairs <> []);
      let set =
        List.fold_left
          (fun acc (src, gno) -> Binlog.Gtid_set.add acc (gtid src gno))
          Binlog.Gtid_set.empty pairs
      in
      let src, gno = List.hd pairs in
      let removed = Binlog.Gtid_set.remove set (gtid src gno) in
      (not (Binlog.Gtid_set.contains removed (gtid src gno)))
      && List.for_all
           (fun (s, g) ->
             (s, g) = (src, gno) || Binlog.Gtid_set.contains removed (gtid s g))
           pairs)

let prop_gtid_set_union_commutes =
  QCheck.Test.make ~name:"union commutes" ~count:300 (QCheck.pair gtid_list_gen gtid_list_gen)
    (fun (pa, pb) ->
      let mk pairs =
        List.fold_left
          (fun acc (src, gno) -> Binlog.Gtid_set.add acc (gtid src gno))
          Binlog.Gtid_set.empty pairs
      in
      let a = mk pa and b = mk pb in
      Binlog.Gtid_set.equal (Binlog.Gtid_set.union a b) (Binlog.Gtid_set.union b a))

(* ----- checksum / entry ----- *)

let test_crc32_known_value () =
  (* CRC-32 of "123456789" is 0xCBF43926 (IEEE). *)
  Alcotest.(check int32) "crc32 vector" 0xCBF43926l (Binlog.Checksum.string "123456789")

let test_entry_checksum_roundtrip () =
  let e = entry ~term:1 ~index:1 () in
  Alcotest.(check bool) "verifies" true (Binlog.Entry.verify e)

let test_entry_size_positive () =
  let e = entry ~term:1 ~index:1 () in
  Alcotest.(check bool) "has size" true (Binlog.Entry.size e > 0)

(* ----- corruption detection (the chaos disk-rot model) ----- *)

(* Every Event variant, wrapped in a transaction entry: the CRC stamped
   at make-time must verify clean, and both corruption flavours (payload
   rot under a stale checksum, bit-rot inside the checksum field) must
   make [verify] fail. *)
let all_event_bodies () =
  let g = gtid "srv1" 7 in
  [
    ("format-description", Binlog.Event.Format_description);
    ( "previous-gtids",
      Binlog.Event.Previous_gtids (Binlog.Gtid_set.add Binlog.Gtid_set.empty g) );
    ("gtid-event", Binlog.Event.Gtid_event g);
    ("table-map", Binlog.Event.Table_map { table = "t" });
    ( "write-rows",
      Binlog.Event.Write_rows
        {
          table = "t";
          ops =
            [
              Binlog.Event.Insert { key = "k"; value = "v" };
              Binlog.Event.Update { key = "k"; before = "v"; after = "w" };
              Binlog.Event.Delete { key = "k"; before = "w" };
            ];
        } );
    ("query", Binlog.Event.Query { sql = "UPDATE t SET v = 1" });
    ("xid", Binlog.Event.Xid { xid = 42L });
    ("rotate", Binlog.Event.Rotate { next_file = "binlog.000002" });
  ]

let test_corruption_detected_every_event_variant () =
  List.iter
    (fun (name, body) ->
      let payload =
        Binlog.Entry.Transaction
          {
            gtid = gtid "srv1" 7;
            events = [ Binlog.Event.make body; Binlog.Event.make (Binlog.Event.Xid { xid = 9L }) ];
          }
      in
      let e = Binlog.Entry.make ~opid:(Binlog.Opid.make ~term:1 ~index:1) payload in
      Alcotest.(check bool) (name ^ ": clean verifies") true (Binlog.Entry.verify e);
      Alcotest.(check bool)
        (name ^ ": body rot detected") false
        (Binlog.Entry.verify (Binlog.Entry.corrupt e Binlog.Entry.Body));
      Alcotest.(check bool)
        (name ^ ": header rot detected") false
        (Binlog.Entry.verify (Binlog.Entry.corrupt e Binlog.Entry.Header)))
    (all_event_bodies ())

(* Serialized bytes are memoized at make time: repeated reads return the
   SAME physical string (the hot path never re-marshals), the memo is the
   marshalled payload, and re-stamping the OpId shares it. *)
let test_payload_bytes_memoized () =
  let payload =
    Binlog.Entry.Transaction
      {
        gtid = gtid "srv1" 3;
        events =
          [
            Binlog.Event.make
              (Binlog.Event.Write_rows
                 { table = "t"; ops = [ Binlog.Event.Insert { key = "k"; value = "v" } ] });
          ];
      }
  in
  let e = Binlog.Entry.make ~opid:(Binlog.Opid.make ~term:1 ~index:1) payload in
  let b1 = Binlog.Entry.payload_bytes e in
  let b2 = Binlog.Entry.payload_bytes e in
  Alcotest.(check bool) "physically equal across reads" true (b1 == b2);
  Alcotest.(check string) "memo is the marshalled payload" (Marshal.to_string payload []) b1;
  let restamped = Binlog.Entry.with_opid e ~opid:(Binlog.Opid.make ~term:2 ~index:9) in
  Alcotest.(check bool)
    "re-stamping shares the memo" true
    (Binlog.Entry.payload_bytes restamped == b1);
  Alcotest.(check bool) "restamped still verifies" true (Binlog.Entry.verify restamped)

let test_corruption_detected_non_txn_payloads () =
  List.iter
    (fun (name, payload) ->
      let e = Binlog.Entry.make ~opid:(Binlog.Opid.make ~term:1 ~index:1) payload in
      Alcotest.(check bool) (name ^ ": clean verifies") true (Binlog.Entry.verify e);
      List.iter
        (fun flavor ->
          Alcotest.(check bool)
            (name ^ ": rot detected") false
            (Binlog.Entry.verify (Binlog.Entry.corrupt e flavor)))
        [ Binlog.Entry.Header; Binlog.Entry.Body ])
    [
      ("noop", Binlog.Entry.Noop);
      ("config-change", Binlog.Entry.Config_change { description = "add my9"; encoded = "+my9" });
      ("rotate-marker", Binlog.Entry.Rotate_marker { next_file = "binlog.000003" });
    ]

(* CRC-32 guarantee the recovery scan leans on: ANY single-bit flip in
   an entry's stored payload bytes changes the checksum, so corruption
   of one bit can never slip through [verify] on re-read. *)
let prop_single_bit_flip_detected =
  QCheck.Test.make ~name:"single-bit flip in stored payload bytes is always detected"
    ~count:500
    QCheck.(
      triple
        (pair small_nat (string_of_size Gen.(1 -- 20)))
        (string_of_size Gen.(0 -- 40))
        small_nat)
    (fun ((gno, key), value, bitpos) ->
      let payload =
        Binlog.Entry.Transaction
          {
            gtid = gtid "srv1" (gno + 1);
            events =
              [
                Binlog.Event.make (Binlog.Event.Gtid_event (gtid "srv1" (gno + 1)));
                Binlog.Event.make
                  (Binlog.Event.Write_rows
                     { table = "t"; ops = [ Binlog.Event.Insert { key; value } ] });
              ];
          }
      in
      let e = Binlog.Entry.make ~opid:(Binlog.Opid.make ~term:1 ~index:1) payload in
      (* the byte image [Entry.make] checksummed, as stored on disk *)
      let bytes = Bytes.of_string (Marshal.to_string (Binlog.Entry.payload e) []) in
      let bit = bitpos mod (8 * Bytes.length bytes) in
      let i = bit / 8 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (bit mod 8))));
      not
        (Int32.equal
           (Binlog.Checksum.string (Bytes.to_string bytes))
           (Binlog.Entry.checksum e)))

let test_event_sizes () =
  let small = Binlog.Event.make (Binlog.Event.Xid { xid = 1L }) in
  let big =
    Binlog.Event.make
      (Binlog.Event.Write_rows
         {
           table = "t";
           ops = [ Binlog.Event.Insert { key = String.make 100 'k'; value = String.make 300 'v' } ];
         })
  in
  Alcotest.(check bool) "rows event bigger than xid" true
    (Binlog.Event.size big > Binlog.Event.size small)

(* ----- log store ----- *)

let test_log_append_and_read () =
  let log = Binlog.Log_store.create () in
  for i = 1 to 10 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  Alcotest.(check int) "last index" 10 (Binlog.Opid.index (Binlog.Log_store.last_opid log));
  (match Binlog.Log_store.entry_at log 5 with
  | Some e -> Alcotest.(check int) "entry index" 5 (Binlog.Entry.index e)
  | None -> Alcotest.fail "missing entry");
  Alcotest.(check int) "entries_from" 3
    (List.length (Binlog.Log_store.entries_from log ~from_index:8 ~max_count:100))

(* Recovery-time corruption scan: a CRC-failing entry mid-log truncates
   everything from it onward (the suffix is untrustworthy) and the
   report carries the pre-truncation tail (the vote-floor fence). *)
let test_log_corruption_scan_truncates_suffix () =
  let log = Binlog.Log_store.create () in
  for i = 1 to 10 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  Alcotest.(check (option pass)) "clean log scans clean" None
    (Binlog.Log_store.scan_for_corruption log);
  Alcotest.(check bool) "corrupt injects" true
    (Binlog.Log_store.corrupt_entry log ~index:6 ~flavor:Binlog.Entry.Body);
  match Binlog.Log_store.scan_for_corruption log with
  | None -> Alcotest.fail "scan missed the corrupt entry"
  | Some r ->
    Alcotest.(check int) "first corrupt index" 6 r.Binlog.Log_store.cr_first_corrupt;
    Alcotest.(check int) "suffix dropped" 5 (List.length r.Binlog.Log_store.cr_dropped);
    Alcotest.(check int) "log truncated to 5" 5 (Binlog.Log_store.last_index log);
    Alcotest.(check int) "pre-truncation tail preserved" 10
      (Binlog.Opid.index r.Binlog.Log_store.cr_pre_truncation_tail);
    Alcotest.(check bool) "detected counted" true (r.Binlog.Log_store.cr_detected >= 1)

let test_log_append_gap_rejected () =
  let log = Binlog.Log_store.create () in
  Binlog.Log_store.append log (entry ~term:1 ~index:1 ());
  Alcotest.check_raises "gap" (Invalid_argument "Log_store.append: index 3 but log ends at 1")
    (fun () -> Binlog.Log_store.append log (entry ~term:1 ~index:3 ()))

let test_log_truncate () =
  let log = Binlog.Log_store.create () in
  for i = 1 to 10 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  let removed = Binlog.Log_store.truncate_from log ~from_index:6 in
  Alcotest.(check int) "removed" 5 (List.length removed);
  Alcotest.(check int) "new last" 5 (Binlog.Opid.index (Binlog.Log_store.last_opid log));
  (* GTIDs of truncated transactions are gone from the log's set (§3.3) *)
  Alcotest.(check bool) "gtid removed" false
    (Binlog.Gtid_set.contains (Binlog.Log_store.gtid_set log) (gtid "srv1" 7));
  Alcotest.(check bool) "kept gtid present" true
    (Binlog.Gtid_set.contains (Binlog.Log_store.gtid_set log) (gtid "srv1" 3));
  (* can append again after truncation *)
  Binlog.Log_store.append log (entry ~term:2 ~index:6 ~gno:100 ());
  Alcotest.(check int) "append after truncate" 6
    (Binlog.Opid.index (Binlog.Log_store.last_opid log))

let test_log_rotation_and_file_list () =
  let log = Binlog.Log_store.create () in
  for i = 1 to 5 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  Binlog.Log_store.rotate log;
  for i = 6 to 8 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  let files = Binlog.Log_store.file_list log in
  Alcotest.(check int) "two files" 2 (List.length files);
  (match files with
  | [ (_, _, n1); (_, _, n2) ] ->
    Alcotest.(check int) "first file entries" 5 n1;
    Alcotest.(check int) "second file entries" 3 n2
  | _ -> Alcotest.fail "unexpected files")

let test_log_purge () =
  let log = Binlog.Log_store.create () in
  for i = 1 to 5 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  Binlog.Log_store.rotate log;
  for i = 6 to 8 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  let second_file =
    match Binlog.Log_store.file_names log with [ _; f2 ] -> f2 | _ -> Alcotest.fail "files"
  in
  Binlog.Log_store.purge_to log ~file:second_file;
  Alcotest.(check int) "one file left" 1 (List.length (Binlog.Log_store.file_names log));
  Alcotest.(check bool) "purged entry gone" true (Binlog.Log_store.entry_at log 3 = None);
  Alcotest.(check bool) "kept entry present" true (Binlog.Log_store.entry_at log 7 <> None);
  Alcotest.(check int) "last index unchanged" 8
    (Binlog.Opid.index (Binlog.Log_store.last_opid log))

let test_log_switch_mode_rewires_names () =
  let log = Binlog.Log_store.create ~mode:Binlog.Log_store.Relay () in
  Binlog.Log_store.append log (entry ~term:1 ~index:1 ());
  Binlog.Log_store.switch_mode log Binlog.Log_store.Binlog;
  Binlog.Log_store.append log (entry ~term:1 ~index:2 ());
  let names = Binlog.Log_store.file_names log in
  Alcotest.(check bool) "relay file kept" true
    (List.exists (fun n -> String.length n >= 8 && String.sub n 0 8 = "relaylog") names);
  Alcotest.(check bool) "new binlog file" true
    (List.exists (fun n -> String.length n >= 6 && String.sub n 0 6 = "binlog") names);
  (* entries survive the rewiring *)
  Alcotest.(check bool) "entries intact" true (Binlog.Log_store.entry_at log 1 <> None)

(* ----- InstallSnapshot rebase (log compaction §A.1) ----- *)

let test_install_snapshot_retain_tail () =
  let log = Binlog.Log_store.create () in
  for i = 1 to 8 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  (* boundary entry present with matching term: purge-in-place, keep tail *)
  let dropped =
    Binlog.Log_store.install_snapshot log
      ~last:(Binlog.Opid.make ~term:1 ~index:5)
      ~gtids:(Binlog.Gtid_set.add_interval Binlog.Gtid_set.empty ~source:"snap" ~lo:1 ~hi:5)
  in
  Alcotest.(check int) "no conflicting tail" 0 (List.length dropped);
  Alcotest.(check int) "purged below" 6 (Binlog.Log_store.purged_below log);
  Alcotest.(check int) "boundary opid" 5
    (Binlog.Opid.index (Binlog.Log_store.purge_boundary_opid log));
  Alcotest.(check (option int)) "boundary term answerable" (Some 1)
    (Binlog.Log_store.term_at log 5);
  Alcotest.(check bool) "prefix gone" true (Binlog.Log_store.entry_at log 3 = None);
  Alcotest.(check bool) "tail retained" true (Binlog.Log_store.entry_at log 7 <> None);
  Alcotest.(check int) "tail index unchanged" 8 (Binlog.Log_store.last_index log);
  Alcotest.(check bool) "snapshot gtids merged" true
    (Binlog.Gtid_set.contains (Binlog.Log_store.gtid_set log) (gtid "snap" 3))

let test_install_snapshot_discard_rebase () =
  let log = Binlog.Log_store.create () in
  for i = 1 to 8 do
    Binlog.Log_store.append log (entry ~term:1 ~index:i ())
  done;
  (* boundary unknown locally: the whole log conflicts and is dropped *)
  let gtids = Binlog.Gtid_set.add_interval Binlog.Gtid_set.empty ~source:"snap" ~lo:1 ~hi:50 in
  let dropped =
    Binlog.Log_store.install_snapshot log ~last:(Binlog.Opid.make ~term:3 ~index:50) ~gtids
  in
  Alcotest.(check int) "whole log dropped" 8 (List.length dropped);
  Alcotest.(check int) "rebased tail" 50 (Binlog.Log_store.last_index log);
  Alcotest.(check int) "purged below" 51 (Binlog.Log_store.purged_below log);
  Alcotest.(check (option int)) "boundary term answerable" (Some 3)
    (Binlog.Log_store.term_at log 50);
  Alcotest.(check string) "gtid set replaced" (Binlog.Gtid_set.to_string gtids)
    (Binlog.Gtid_set.to_string (Binlog.Log_store.gtid_set log));
  (* tailing resumes at the boundary: the next append must be b+1 *)
  Binlog.Log_store.append log (entry ~term:3 ~index:51 ~gno:51 ());
  Alcotest.(check int) "append after rebase" 51
    (Binlog.Opid.index (Binlog.Log_store.last_opid log))

(* Interleave purge_to / truncate_from / rotate / install_snapshot and
   check the compaction bookkeeping never drifts: [purged_below] is
   always [purge_boundary_opid + 1], the boundary term stays answerable,
   purged slots read as absent, and the tail never retreats into the
   purged range. *)
let prop_compaction_invariants =
  let op_gen = QCheck.(list_of_size Gen.(1 -- 40) (pair (0 -- 4) (0 -- 10))) in
  QCheck.Test.make ~name:"compaction invariants under interleaved ops" ~count:300 op_gen
    (fun ops ->
      let log = Binlog.Log_store.create () in
      let next_gno = ref 0 in
      let max_term = ref 1 in
      let append term =
        incr next_gno;
        Binlog.Log_store.append log
          (entry ~term ~index:(Binlog.Log_store.last_index log + 1) ~gno:!next_gno ())
      in
      append 1;
      let check_invariants () =
        let pb = Binlog.Log_store.purged_below log in
        let boundary = Binlog.Log_store.purge_boundary_opid log in
        pb >= 1
        && Binlog.Opid.index boundary = pb - 1
        && Binlog.Log_store.last_index log >= pb - 1
        && (pb = 1
           || Binlog.Log_store.term_at log (pb - 1) = Some (Binlog.Opid.term boundary))
        && Binlog.Log_store.entry_at log (pb - 1) = None
        && Binlog.Log_store.entry_at log (pb / 2) = None
      in
      List.for_all
        (fun (kind, arg) ->
          let last = Binlog.Log_store.last_index log in
          let pb = Binlog.Log_store.purged_below log in
          (match kind with
          | 0 -> append !max_term
          | 1 -> Binlog.Log_store.rotate log
          | 2 ->
            (* purge to a file picked from the current list: everything
               strictly older is dropped *)
            let files = Binlog.Log_store.file_names log in
            let file = List.nth files (arg mod List.length files) in
            Binlog.Log_store.purge_to log ~file
          | 3 ->
            (* truncate somewhere in the un-purged range *)
            let from_index = pb + (arg mod (last - pb + 2)) in
            ignore (Binlog.Log_store.truncate_from log ~from_index)
          | _ ->
            (* install: half the time at a held index with its real term
               (retain), otherwise past the tail at a new term (discard) *)
            if arg mod 2 = 0 && last >= pb then begin
              let b = pb + (arg mod (last - pb + 1)) in
              match Binlog.Log_store.term_at log b with
              | Some term ->
                ignore
                  (Binlog.Log_store.install_snapshot log
                     ~last:(Binlog.Opid.make ~term ~index:b)
                     ~gtids:Binlog.Gtid_set.empty)
              | None -> ()
            end
            else begin
              let b = last + 1 + (arg mod 5) in
              let term = !max_term + 1 in
              max_term := term;
              ignore
                (Binlog.Log_store.install_snapshot log
                   ~last:(Binlog.Opid.make ~term ~index:b)
                   ~gtids:
                     (Binlog.Gtid_set.add_interval Binlog.Gtid_set.empty ~source:"snap"
                        ~lo:1 ~hi:b))
            end);
          check_invariants ())
        ops
      &&
      (* the store still extends: one more append at the tail goes in *)
      let tail = Binlog.Log_store.last_index log in
      max_term := !max_term + 1;
      append !max_term;
      Binlog.Log_store.last_index log = tail + 1)

let test_log_term_regression_rejected () =
  let log = Binlog.Log_store.create () in
  Binlog.Log_store.append log (entry ~term:3 ~index:1 ());
  Alcotest.check_raises "term regression"
    (Invalid_argument "Log_store.append: term regression") (fun () ->
      Binlog.Log_store.append log (entry ~term:2 ~index:2 ()))

let suites =
  [
    ("binlog.opid", [ Alcotest.test_case "ordering" `Quick test_opid_ordering ]);
    ( "binlog.gtid_set",
      [
        Alcotest.test_case "add/contains" `Quick test_gtid_set_add_contains;
        Alcotest.test_case "interval merge" `Quick test_gtid_set_interval_merge;
        Alcotest.test_case "remove splits" `Quick test_gtid_set_remove_splits;
        Alcotest.test_case "union/subset" `Quick test_gtid_set_union_subset;
        Alcotest.test_case "max gno" `Quick test_gtid_set_max_gno;
        QCheck_alcotest.to_alcotest prop_gtid_set_contains_all_added;
        QCheck_alcotest.to_alcotest prop_gtid_set_cardinal_matches;
        QCheck_alcotest.to_alcotest prop_gtid_set_remove_then_absent;
        QCheck_alcotest.to_alcotest prop_gtid_set_union_commutes;
      ] );
    ( "binlog.entry",
      [
        Alcotest.test_case "crc32 known vector" `Quick test_crc32_known_value;
        Alcotest.test_case "checksum roundtrip" `Quick test_entry_checksum_roundtrip;
        Alcotest.test_case "entry size" `Quick test_entry_size_positive;
        Alcotest.test_case "event sizes" `Quick test_event_sizes;
        Alcotest.test_case "payload bytes memoized" `Quick test_payload_bytes_memoized;
        Alcotest.test_case "corruption detected per event variant" `Quick
          test_corruption_detected_every_event_variant;
        Alcotest.test_case "corruption detected per payload kind" `Quick
          test_corruption_detected_non_txn_payloads;
        QCheck_alcotest.to_alcotest prop_single_bit_flip_detected;
      ] );
    ( "binlog.log_store",
      [
        Alcotest.test_case "append and read" `Quick test_log_append_and_read;
        Alcotest.test_case "corruption scan truncates suffix" `Quick
          test_log_corruption_scan_truncates_suffix;
        Alcotest.test_case "gap rejected" `Quick test_log_append_gap_rejected;
        Alcotest.test_case "truncate" `Quick test_log_truncate;
        Alcotest.test_case "rotation and SHOW BINARY LOGS" `Quick test_log_rotation_and_file_list;
        Alcotest.test_case "purge" `Quick test_log_purge;
        Alcotest.test_case "binlog/relay rewiring" `Quick test_log_switch_mode_rewires_names;
        Alcotest.test_case "term regression rejected" `Quick test_log_term_regression_rejected;
        Alcotest.test_case "install snapshot retains tail" `Quick
          test_install_snapshot_retain_tail;
        Alcotest.test_case "install snapshot discard-rebases" `Quick
          test_install_snapshot_discard_rebase;
        QCheck_alcotest.to_alcotest prop_compaction_invariants;
      ] );
  ]
