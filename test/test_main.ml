(* Test entry point: every suite registers here. *)

let () =
  let suites =
    List.concat
      [
        Test_sim.suites;
        Test_stats.suites;
        Test_obs.suites;
        Test_binlog.suites;
        Test_storage.suites;
        Test_raft.suites;
        Test_raft_safety.suites;
        Test_snapshot.suites;
        Test_chaos.suites;
        Test_pipeline.suites;
        Test_myraft.suites;
        Test_commands.suites;
        Test_myraft_edge.suites;
        Test_properties.suites;
        Test_downstream.suites;
        Test_semisync.suites;
        Test_control.suites;
        Test_workload.suites;
        Test_shard.suites;
        Test_reconfig.suites;
        Test_apply.suites;
        Test_read.suites;
        Test_misc.suites;
      ]
  in
  Alcotest.run "myraft-repro" suites
